//! Phase explorer: watch the governor track a program phase change.
//!
//! ```bash
//! cargo run --release -p memscale-simulator --example phase_explorer
//! ```
//!
//! Reproduces the dynamic behaviour of Fig 7: the MID3 workload opens with
//! apsi in a compute-dominated phase (the governor parks the memory at its
//! lowest frequency), then apsi turns memory-intensive mid-run and the
//! governor raises the frequency within one epoch. Prints an ASCII timeline
//! of the bus frequency, apsi's CPI and channel utilization.

use memscale::policies::PolicyKind;
use memscale_simulator::{SimConfig, Simulation};
use memscale_types::freq::MemFreq;
use memscale_types::time::Picos;
use memscale_workloads::Mix;

fn main() {
    let mix = Mix::by_name("MID3").expect("MID3");
    let cfg = SimConfig::default()
        .with_duration(Picos::from_ms(100))
        .with_timeline(Picos::from_ms(2));
    println!("running {mix} for 100 ms under MemScale ...\n");
    let run = Simulation::new(&mix, PolicyKind::MemScale, &cfg)
        .unwrap()
        .run_for(cfg.duration, 0.0)
        .unwrap();

    println!(
        "{:>6} {:>8} {:>9} {:>9}  frequency ladder (200..800 MHz)",
        "t(ms)", "bus MHz", "apsi CPI", "avg util"
    );
    for s in &run.timeline {
        // apsi runs on cores 0, 4, 8, 12 (instance rotation).
        let apsi: Vec<f64> = s
            .core_cpi
            .iter()
            .enumerate()
            .filter(|(c, _)| c % 4 == 0)
            .map(|(_, &v)| v)
            .filter(|&v| v > 0.0)
            .collect();
        let apsi_cpi = if apsi.is_empty() {
            0.0
        } else {
            apsi.iter().sum::<f64>() / apsi.len() as f64
        };
        let util = s.channel_util.iter().sum::<f64>() / s.channel_util.len().max(1) as f64;
        let ladder_pos = MemFreq::ALL
            .iter()
            .position(|f| f.mhz() == s.bus_mhz)
            .unwrap_or(0);
        let ladder: String = (0..MemFreq::ALL.len())
            .map(|i| if i == ladder_pos { '#' } else { '.' })
            .collect();
        println!(
            "{:>6.0} {:>8} {:>9.1} {:>8.0}%  {}",
            s.at.as_ms_f64(),
            s.bus_mhz,
            apsi_cpi,
            util * 100.0,
            ladder
        );
    }

    // Summarize the phase change the run should exhibit.
    let early: Vec<u32> = run
        .timeline
        .iter()
        .filter(|s| s.at <= Picos::from_ms(30))
        .map(|s| s.bus_mhz)
        .collect();
    let late: Vec<u32> = run
        .timeline
        .iter()
        .filter(|s| s.at >= Picos::from_ms(70))
        .map(|s| s.bus_mhz)
        .collect();
    let avg = |v: &[u32]| v.iter().map(|&x| x as f64).sum::<f64>() / v.len().max(1) as f64;
    println!("\nquiet phase mean frequency : {:.0} MHz", avg(&early));
    println!("memory phase mean frequency: {:.0} MHz", avg(&late));
    println!(
        "governor reaction: {}",
        if avg(&late) > avg(&early) {
            "raised frequency after apsi's phase change (Fig 7 behaviour)"
        } else {
            "no frequency change observed (unexpected)"
        }
    );
}
