//! Datacenter scenario: how much energy does MemScale return across a rack
//! whose servers host different workload classes?
//!
//! ```bash
//! cargo run --release -p memscale-simulator --example datacenter_consolidation
//! ```
//!
//! The paper's motivation (§1) is server fleets whose memory accounts for up
//! to 40% of power. This example models a small rack slice: some servers run
//! compute-heavy services (ILP), some balanced ones (MID), some memory-bound
//! analytics (MEM), each with a per-tenant SLA expressed as the maximum CPI
//! degradation (γ). It totals the rack-level savings and verifies every
//! tenant's SLA.

use memscale::policies::PolicyKind;
use memscale_simulator::harness::Experiment;
use memscale_simulator::SimConfig;
use memscale_types::time::Picos;
use memscale_workloads::Mix;

struct Server {
    name: &'static str,
    mix: &'static str,
    /// SLA: tolerated CPI degradation.
    gamma: f64,
}

fn main() {
    // A rack slice: latency-sensitive front-ends get tight SLAs, batch
    // analytics are lenient.
    let servers = [
        Server {
            name: "web-1 (front-end)",
            mix: "ILP2",
            gamma: 0.05,
        },
        Server {
            name: "web-2 (front-end)",
            mix: "ILP4",
            gamma: 0.05,
        },
        Server {
            name: "app-1 (business logic)",
            mix: "MID1",
            gamma: 0.10,
        },
        Server {
            name: "app-2 (business logic)",
            mix: "MID4",
            gamma: 0.10,
        },
        Server {
            name: "batch-1 (analytics)",
            mix: "MEM2",
            gamma: 0.15,
        },
        Server {
            name: "batch-2 (analytics)",
            mix: "MEM4",
            gamma: 0.15,
        },
    ];

    let mut base_total_j = 0.0;
    let mut managed_total_j = 0.0;
    let mut sla_violations = 0;

    println!(
        "{:<26} {:>6} {:>10} {:>10} {:>9} {:>8}",
        "server", "SLA", "base (J)", "saved (J)", "sys sav", "worstCPI"
    );
    for server in &servers {
        let mix = Mix::by_name(server.mix).expect("table 1 mix");
        let mut cfg = SimConfig::default().with_duration(Picos::from_ms(15));
        cfg.governor.gamma = server.gamma;
        let exp = Experiment::calibrate(&mix, &cfg).unwrap();
        let (run, cmp) = exp.evaluate(PolicyKind::MemScale).unwrap();

        let base_j = exp.baseline().energy.system_total_j();
        let run_j = run.energy.system_total_j();
        base_total_j += base_j;
        managed_total_j += run_j;
        let violated = cmp.max_cpi_increase() > server.gamma + 0.015;
        if violated {
            sla_violations += 1;
        }
        println!(
            "{:<26} {:>5.0}% {:>10.2} {:>10.2} {:>8.1}% {:>7.1}%{}",
            server.name,
            server.gamma * 100.0,
            base_j,
            base_j - run_j,
            cmp.system_savings * 100.0,
            cmp.max_cpi_increase() * 100.0,
            if violated { "  <-- SLA MISS" } else { "" }
        );
    }

    let saved = 1.0 - managed_total_j / base_total_j;
    println!(
        "\nrack slice: {:.2} J -> {:.2} J  ({:.1}% system energy returned)",
        base_total_j,
        managed_total_j,
        saved * 100.0
    );
    println!("SLA violations: {sla_violations}");
    assert_eq!(sla_violations, 0, "MemScale must respect every tenant SLA");
}
