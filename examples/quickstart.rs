//! Quickstart: run one workload under MemScale and print what happened.
//!
//! ```bash
//! cargo run --release -p memscale-simulator --example quickstart
//! ```
//!
//! This walks the library's main path end-to-end: build a Table 1 workload,
//! calibrate a baseline at maximum memory frequency, run the MemScale OS
//! policy over the same work, and report energy savings, per-application
//! slowdown and the frequencies the governor chose.

use memscale::policies::PolicyKind;
use memscale_simulator::harness::Experiment;
use memscale_simulator::SimConfig;
use memscale_types::freq::MemFreq;
use memscale_types::time::Picos;
use memscale_workloads::Mix;

fn main() {
    // 1. Pick a workload: MID1 = ammp, gap, wupwise, vpr (x4 instances each
    //    on the default 16-core server of Table 2).
    let mix = Mix::by_name("MID1").expect("MID1 is a Table 1 workload");
    println!("workload: {mix}  (apps: {})", mix.apps.join(", "));

    // 2. Calibrate the baseline: memory pinned at 800 MHz, no management.
    //    This also derives the fixed rest-of-system power from the paper's
    //    40% DIMM power fraction.
    let cfg = SimConfig::default().with_duration(Picos::from_ms(20));
    let exp = Experiment::calibrate(&mix, &cfg).unwrap();
    println!(
        "baseline: {:.1} W memory average, {:.1} W rest of system",
        exp.baseline().energy.memory_avg_w(),
        exp.rest_w(),
    );

    // 3. Run the MemScale policy over the exact same work (fixed-work
    //    comparison) with the default 10% CPI-degradation bound.
    let (run, cmp) = exp.evaluate(PolicyKind::MemScale).unwrap();

    println!("\nMemScale results vs baseline:");
    println!("  memory energy saved : {:.1}%", cmp.memory_savings * 100.0);
    println!("  system energy saved : {:.1}%", cmp.system_savings * 100.0);
    println!(
        "  CPI increase        : avg {:.1}%, worst {:.1}% (bound 10%)",
        cmp.avg_cpi_increase() * 100.0,
        cmp.max_cpi_increase() * 100.0,
    );
    println!(
        "  mean bus frequency  : {:.0} MHz (residency below)",
        run.mean_frequency_mhz()
    );
    for f in MemFreq::ALL.iter().rev() {
        let share = run.residency(*f);
        if share > 0.005 {
            println!("    {f}: {:5.1}%  {}", share * 100.0, bar(share));
        }
    }
    println!(
        "\nmemory accesses: {} reads, {} writebacks, mean read latency {}",
        run.counters.reads,
        run.counters.writes,
        run.counters
            .mean_read_latency()
            .map(|l| l.to_string())
            .unwrap_or_else(|| "n/a".into())
    );
}

#[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)] // frac is in [0, 1]
fn bar(frac: f64) -> String {
    "#".repeat((frac * 40.0).round() as usize)
}
