//! Policy shootout: every §4.2.3 energy-management scheme on one workload.
//!
//! ```bash
//! cargo run --release -p memscale-simulator --example policy_shootout [MIX]
//! ```
//!
//! Runs the full comparison zoo — Fast-PD, Slow-PD, Decoupled DIMMs, Static,
//! MemScale, MemScale(MemEnergy) and MemScale+Fast-PD — against the max-
//! frequency baseline on the chosen Table 1 workload (default MID3) and
//! prints the Fig 9/11-style summary.

use memscale::policies::PolicyKind;
use memscale_simulator::harness::Experiment;
use memscale_simulator::SimConfig;
use memscale_types::time::Picos;
use memscale_workloads::Mix;

fn main() {
    let mix_name = std::env::args().nth(1).unwrap_or_else(|| "MID3".into());
    let Ok(mix) = Mix::by_name(&mix_name) else {
        eprintln!(
            "unknown workload {mix_name}; pick one of: {}",
            Mix::table1()
                .iter()
                .map(|m| m.name)
                .collect::<Vec<_>>()
                .join(" ")
        );
        std::process::exit(2);
    };

    let cfg = SimConfig::default().with_duration(Picos::from_ms(20));
    println!("calibrating baseline for {mix} ...");
    let exp = Experiment::calibrate(&mix, &cfg).unwrap();
    println!(
        "baseline: {:.1} W memory, {:.1} W rest, {} reads\n",
        exp.baseline().energy.memory_avg_w(),
        exp.rest_w(),
        exp.baseline().counters.reads
    );

    println!(
        "{:<22} {:>8} {:>8} {:>8} {:>8} {:>9}",
        "policy", "mem sav", "sys sav", "avg CPI", "max CPI", "mean MHz"
    );
    let mut best: Option<(String, f64)> = None;
    for policy in PolicyKind::comparison_set() {
        let (run, cmp) = exp.evaluate(policy).unwrap();
        println!(
            "{:<22} {:>7.1}% {:>7.1}% {:>7.1}% {:>7.1}% {:>9.0}",
            run.policy,
            cmp.memory_savings * 100.0,
            cmp.system_savings * 100.0,
            cmp.avg_cpi_increase() * 100.0,
            cmp.max_cpi_increase() * 100.0,
            run.mean_frequency_mhz()
        );
        if best.as_ref().is_none_or(|(_, s)| cmp.system_savings > *s) {
            best = Some((run.policy.clone(), cmp.system_savings));
        }
    }
    let (name, savings) = best.expect("at least one policy");
    println!(
        "\nwinner: {name} at {:.1}% system energy savings",
        savings * 100.0
    );
}
