//! Demonstrates the DDR3 protocol conformance checker.
//!
//! Drives the real channel engine twice — once with the strict default
//! timing and once with a deliberately corrupted `tRCD` — and replays both
//! recorded command streams through `memscale-audit`. The first stream
//! audits clean; the second produces a structured violation report naming
//! the rule, the rank/bank and the offending timestamps.
//!
//! Run with:
//! `cargo run -p memscale-simulator --features audit --example audit_demo`

use memscale_audit::ProtocolAuditor;
use memscale_dram::channel::{AccessKind, DramChannel};
use memscale_types::config::DramTimingConfig;
use memscale_types::freq::MemFreq;
use memscale_types::ids::{BankId, RankId};
use memscale_types::time::Picos;

const RANKS: usize = 2;
const BANKS: usize = 8;

/// Runs a short mixed workload on `cfg`, then audits the recorded stream
/// against the strict default timing.
fn replay(label: &str, cfg: &DramTimingConfig) {
    let mut ch = DramChannel::new(cfg, RANKS, BANKS, MemFreq::F800);
    ch.set_event_recording(true);
    for i in 0..6usize {
        ch.service(
            RankId(i % RANKS),
            BankId(i % BANKS),
            i as u64,
            AccessKind::Read,
            Picos::from_ns(40 * i as u64),
            false,
        );
    }
    ch.set_frequency(MemFreq::F400, Picos::from_us(1));
    ch.service(
        RankId(0),
        BankId(0),
        9,
        AccessKind::Write,
        Picos::from_us(2),
        false,
    );

    let events = ch.drain_events();
    let mut auditor =
        ProtocolAuditor::new(&DramTimingConfig::default(), 1, RANKS, BANKS, MemFreq::F800);
    auditor.ingest(&events);
    let report = auditor.finalize();
    println!("{label}:\n{}\n", report.summary());
}

fn main() {
    replay("engine with strict timing", &DramTimingConfig::default());

    let broken = DramTimingConfig {
        // A silent off-by-several in the row-activate latency.
        t_rcd_ns: 3.0,
        ..DramTimingConfig::default()
    };
    replay("engine with corrupted tRCD", &broken);
}
