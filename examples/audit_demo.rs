//! Demonstrates the generation-aware protocol conformance checker.
//!
//! Drives the real channel engine three times — once with the strict DDR3
//! default timing, once with a deliberately corrupted `tRCD`, and once as a
//! DDR4 device whose same-bank-group CAS spacing (`tCCD_L`) has been
//! weakened — and replays each recorded command stream through
//! `memscale-audit` against the strict rule pack for its generation. The
//! first stream audits clean; the others produce structured violation
//! reports naming the rule, the rank/bank and the offending timestamps.
//!
//! Run with:
//! `cargo run -p memscale-simulator --features audit --example audit_demo`

use memscale_audit::ProtocolAuditor;
use memscale_dram::channel::{AccessKind, DramChannel};
use memscale_types::config::DramTimingConfig;
use memscale_types::freq::MemFreq;
use memscale_types::ids::{BankId, RankId};
use memscale_types::time::Picos;

const RANKS: usize = 2;
const BANKS: usize = 8;

/// Runs a short mixed workload on `cfg`, then audits the recorded stream
/// against `strict` (the generation's reference timing).
fn replay(label: &str, strict: &DramTimingConfig, cfg: &DramTimingConfig) {
    let mut ch = DramChannel::new(cfg, RANKS, BANKS, MemFreq::F800);
    ch.set_event_recording(true);
    for i in 0..6usize {
        ch.service(
            RankId(i % RANKS),
            BankId(i % BANKS),
            i as u64,
            AccessKind::Read,
            Picos::from_ns(40 * i as u64),
            false,
        );
    }
    ch.set_frequency(MemFreq::F400, Picos::from_us(1));
    ch.service(
        RankId(0),
        BankId(0),
        9,
        AccessKind::Write,
        Picos::from_us(2),
        false,
    );

    let events = ch.drain_events();
    let mut auditor = ProtocolAuditor::new(strict, 1, RANKS, BANKS, MemFreq::F800);
    auditor.ingest(&events);
    let report = auditor.finalize();
    println!("{label}:\n{}\n", report.summary());
}

/// Drives row-hit CAS pairs on the two group-0 banks of a DDR4 rank, so the
/// weakened same-group CAS spacing becomes visible to the `tCCD_L` rule
/// (row hits decouple CAS spacing from the ACT-side `tRRD_L` constraint).
fn replay_ddr4(label: &str, cfg: &DramTimingConfig) {
    let mut ch = DramChannel::new(cfg, RANKS, 16, MemFreq::F800);
    ch.set_event_recording(true);
    for bank in [0usize, 4] {
        ch.service(
            RankId(0),
            BankId(bank),
            1,
            AccessKind::Read,
            Picos::ZERO,
            true,
        );
    }
    for bank in [0usize, 4] {
        ch.service(
            RankId(0),
            BankId(bank),
            1,
            AccessKind::Read,
            Picos::from_ns(300),
            false,
        );
    }

    let events = ch.drain_events();
    let mut auditor = ProtocolAuditor::new(&DramTimingConfig::ddr4(), 1, RANKS, 16, MemFreq::F800);
    auditor.ingest(&events);
    let report = auditor.finalize();
    println!("{label}:\n{}\n", report.summary());
}

fn main() {
    let ddr3 = DramTimingConfig::default();
    replay("DDR3 engine with strict timing", &ddr3, &ddr3);

    let broken = DramTimingConfig {
        // A silent off-by-several in the row-activate latency.
        t_rcd_ns: 3.0,
        ..DramTimingConfig::default()
    };
    replay("DDR3 engine with corrupted tRCD", &ddr3, &broken);

    let lax = DramTimingConfig {
        // Same-group CAS pairs collapse to the burst: a DDR4 bank-group
        // violation the DDR3 rules would never notice.
        t_ccd_l_cycles: 4,
        ..DramTimingConfig::ddr4()
    };
    replay_ddr4("DDR4 engine with weakened tCCD_L", &lax);
}
