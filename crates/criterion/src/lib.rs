//! Offline stand-in for the [`criterion`](https://docs.rs/criterion)
//! benchmark harness.
//!
//! The growth container builds without network access, so this crate
//! provides the small API surface the workspace's `benches/` targets use:
//! [`Criterion`], [`BenchmarkGroup`], [`Bencher::iter`], [`black_box`] and
//! the `criterion_group!` / `criterion_main!` macros. Under `cargo test`
//! each benchmark body runs exactly once (a smoke test); under
//! `cargo bench` (detected via the `--bench` argument cargo passes) each
//! benchmark is timed over a fixed iteration count and a one-line summary
//! is printed.

#![forbid(unsafe_code)]

use std::time::Instant;

/// Re-export of the standard optimization barrier.
pub use std::hint::black_box;

const BENCH_ITERS: u64 = 50;

fn bench_mode() -> bool {
    std::env::args().any(|a| a == "--bench")
}

/// Timing context handed to each benchmark closure.
#[derive(Debug)]
pub struct Bencher {
    bench: bool,
}

impl Bencher {
    /// Runs `f` once (test mode) or `BENCH_ITERS` times while timing it
    /// (bench mode), returning the mean wall-clock nanoseconds per call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) -> Option<f64> {
        if !self.bench {
            black_box(f());
            return None;
        }
        let start = Instant::now();
        for _ in 0..BENCH_ITERS {
            black_box(f());
        }
        #[allow(clippy::cast_precision_loss)]
        Some(start.elapsed().as_nanos() as f64 / BENCH_ITERS as f64)
    }
}

/// A named set of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup {
    name: String,
    bench: bool,
}

impl BenchmarkGroup {
    /// Sets the sample count (accepted for API compatibility; no-op).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Registers and immediately runs one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher { bench: self.bench };
        f(&mut b);
        if self.bench {
            println!("bench {}/{id}: ran", self.name);
        }
        self
    }

    /// Ends the group (accepted for API compatibility; no-op).
    pub fn finish(&mut self) {}
}

/// Benchmark registry and runner.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            bench: bench_mode(),
        }
    }

    /// Registers and immediately runs one ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let bench = bench_mode();
        let mut b = Bencher { bench };
        let start = Instant::now();
        f(&mut b);
        if bench {
            println!(
                "bench {id}: {:.1} ms total",
                start.elapsed().as_secs_f64() * 1e3
            );
        }
        self
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the benchmark entry point, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(c: &mut Criterion) {
        c.bench_function("add", |b| {
            b.iter(|| black_box(2u64) + black_box(3u64));
        });
        let mut g = c.benchmark_group("grp");
        g.bench_function("mul", |b| {
            b.iter(|| black_box(6u64) * black_box(7u64));
        });
        g.finish();
    }

    criterion_group!(benches, sample);

    #[test]
    fn runs_once_in_test_mode() {
        benches();
    }
}
