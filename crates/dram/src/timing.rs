//! Frequency-resolved timing parameters.
//!
//! A [`TimingSet`] is a [`DramTimingConfig`] evaluated at one operating point
//! of the [`MemFreq`] grid: DRAM-core latencies stay at their wall-clock
//! values while burst and MC-pipeline latencies are converted from cycles at
//! the selected frequency (§2.2 of the paper).

use memscale_types::config::DramTimingConfig;
use memscale_types::freq::MemFreq;
use memscale_types::time::Picos;

/// All latencies the access engine needs, resolved at one frequency.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimingSet {
    /// The operating point these latencies were resolved at.
    pub freq: MemFreq,
    /// ACT → CAS.
    pub t_rcd: Picos,
    /// PRE duration.
    pub t_rp: Picos,
    /// CAS → first data beat.
    pub t_cl: Picos,
    /// Minimum ACT → PRE.
    pub t_ras: Picos,
    /// Minimum ACT → ACT, same rank.
    pub t_rrd: Picos,
    /// Four-activate window, same rank.
    pub t_faw: Picos,
    /// Read CAS → PRE.
    pub t_rtp: Picos,
    /// End of write burst → PRE.
    pub t_wr: Picos,
    /// Data burst duration (scales with bus period).
    pub burst: Picos,
    /// MC request-processing latency (scales with MC period).
    pub mc_proc: Picos,
    /// Fast-exit powerdown exit latency.
    pub t_xp: Picos,
    /// Slow-exit powerdown exit latency.
    pub t_xpdll: Picos,
    /// Mean refresh-command interval.
    pub t_refi: Picos,
    /// Refresh-command duration.
    pub t_rfc: Picos,
}

impl TimingSet {
    /// Resolves `cfg` at `freq`.
    ///
    /// # Example
    ///
    /// ```
    /// use memscale_dram::timing::TimingSet;
    /// use memscale_types::{config::DramTimingConfig, freq::MemFreq, time::Picos};
    ///
    /// let slow = TimingSet::resolve(&DramTimingConfig::default(), MemFreq::F400);
    /// let fast = TimingSet::resolve(&DramTimingConfig::default(), MemFreq::F800);
    /// assert_eq!(slow.t_rcd, fast.t_rcd);        // DRAM core unaffected
    /// assert_eq!(slow.burst, fast.burst * 2);    // bursts stretch linearly
    /// ```
    pub fn resolve(cfg: &DramTimingConfig, freq: MemFreq) -> Self {
        TimingSet {
            freq,
            t_rcd: cfg.t_rcd(),
            t_rp: cfg.t_rp(),
            t_cl: cfg.t_cl(),
            t_ras: cfg.t_ras(),
            t_rrd: cfg.t_rrd(),
            t_faw: cfg.t_faw(),
            t_rtp: cfg.t_rtp(),
            t_wr: cfg.t_wr(),
            burst: freq.cycle() * cfg.burst_cycles as u64,
            mc_proc: freq.mc_cycle() * cfg.mc_pipeline_cycles as u64,
            t_xp: cfg.t_xp(),
            t_xpdll: cfg.t_xpdll(),
            t_refi: cfg.t_refi(),
            t_rfc: cfg.t_rfc(),
        }
    }

    /// Latency of a frequency re-lock *to* `freq`: `relock_cycles` at the new
    /// bus period plus the fixed overhead (§4.1: 512 cycles + 28 ns).
    pub fn relock_penalty(cfg: &DramTimingConfig, freq: MemFreq) -> Picos {
        freq.cycle() * cfg.relock_cycles + Picos::from_ns_f64(cfg.relock_extra_ns)
    }

    /// The raw device access latency of a closed-bank read without any
    /// queueing: tRCD + tCL + burst.
    pub fn closed_read_latency(&self) -> Picos {
        self.t_rcd + self.t_cl + self.burst
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> DramTimingConfig {
        DramTimingConfig::default()
    }

    #[test]
    fn core_timings_are_frequency_invariant() {
        for f in MemFreq::ALL {
            let t = TimingSet::resolve(&cfg(), f);
            assert_eq!(t.t_rcd, Picos::from_ns(15));
            assert_eq!(t.t_rp, Picos::from_ns(15));
            assert_eq!(t.t_cl, Picos::from_ns(15));
            assert_eq!(t.t_ras, Picos::from_ns(35));
        }
    }

    #[test]
    fn burst_scales_with_period() {
        let t800 = TimingSet::resolve(&cfg(), MemFreq::F800);
        let t200 = TimingSet::resolve(&cfg(), MemFreq::F200);
        assert_eq!(t800.burst, Picos::from_ns(5));
        assert_eq!(t200.burst, Picos::from_ns(20));
    }

    #[test]
    fn mc_latency_scales_with_mc_period() {
        let t800 = TimingSet::resolve(&cfg(), MemFreq::F800);
        // 5 cycles at 1600 MHz = 5 * 625 ps.
        assert_eq!(t800.mc_proc, Picos::from_ps(3_125));
        let t400 = TimingSet::resolve(&cfg(), MemFreq::F400);
        assert_eq!(t400.mc_proc, t800.mc_proc * 2);
    }

    #[test]
    fn relock_penalty_matches_paper() {
        // 512 cycles at 800 MHz = 640 ns, plus 28 ns.
        assert_eq!(
            TimingSet::relock_penalty(&cfg(), MemFreq::F800),
            Picos::from_ns(668)
        );
        // Slower target -> longer relock.
        assert!(
            TimingSet::relock_penalty(&cfg(), MemFreq::F200)
                > TimingSet::relock_penalty(&cfg(), MemFreq::F800)
        );
    }

    #[test]
    fn closed_read_latency_is_the_sum() {
        let t = TimingSet::resolve(&cfg(), MemFreq::F800);
        assert_eq!(t.closed_read_latency(), Picos::from_ns(35));
    }
}
