//! Frequency-resolved timing parameters.
//!
//! A [`TimingSet`] is a [`DramTimingConfig`] evaluated at one operating point
//! of the [`MemFreq`] grid: DRAM-core latencies stay at their wall-clock
//! values while burst and MC-pipeline latencies are converted from cycles at
//! the selected frequency (§2.2 of the paper).

use memscale_types::config::DramTimingConfig;
use memscale_types::freq::MemFreq;
use memscale_types::time::Picos;

/// All latencies the access engine needs, resolved at one frequency.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimingSet {
    /// The operating point these latencies were resolved at.
    pub freq: MemFreq,
    /// ACT → CAS.
    pub t_rcd: Picos,
    /// PRE duration.
    pub t_rp: Picos,
    /// CAS → first data beat.
    pub t_cl: Picos,
    /// Minimum ACT → PRE.
    pub t_ras: Picos,
    /// Minimum ACT → ACT, same rank.
    pub t_rrd: Picos,
    /// Four-activate window, same rank.
    pub t_faw: Picos,
    /// Read CAS → PRE.
    pub t_rtp: Picos,
    /// End of write burst → PRE.
    pub t_wr: Picos,
    /// Data burst duration (scales with bus period).
    pub burst: Picos,
    /// MC request-processing latency (scales with MC period).
    pub mc_proc: Picos,
    /// Fast-exit powerdown exit latency.
    pub t_xp: Picos,
    /// Slow-exit powerdown exit latency.
    pub t_xpdll: Picos,
    /// Mean refresh-command interval.
    pub t_refi: Picos,
    /// Refresh-command duration.
    pub t_rfc: Picos,
    /// Same-bank-group CAS → CAS spacing (scales with the bus period; equals
    /// the burst on generations without bank groups, where it is subsumed by
    /// data-bus serialization).
    pub t_ccd_l: Picos,
    /// Same-bank-group ACT → ACT spacing (DDR4 `tRRD_L`; equals `t_rrd` on
    /// generations without bank groups).
    pub t_rrd_l: Picos,
    /// Deep power-down exit latency (LPDDR generations; zero otherwise).
    pub t_xdpd: Picos,
    /// Whether refresh issues per bank (LPDDR `REFpb`) instead of all-bank.
    pub per_bank_refresh: bool,
    /// Per-bank refresh-command duration (meaningful when
    /// `per_bank_refresh`).
    pub t_rfc_pb: Picos,
}

impl TimingSet {
    /// Resolves `cfg` at `freq`.
    ///
    /// # Example
    ///
    /// ```
    /// use memscale_dram::timing::TimingSet;
    /// use memscale_types::{config::DramTimingConfig, freq::MemFreq, time::Picos};
    ///
    /// let slow = TimingSet::resolve(&DramTimingConfig::default(), MemFreq::F400);
    /// let fast = TimingSet::resolve(&DramTimingConfig::default(), MemFreq::F800);
    /// assert_eq!(slow.t_rcd, fast.t_rcd);        // DRAM core unaffected
    /// assert_eq!(slow.burst, fast.burst * 2);    // bursts stretch linearly
    /// ```
    pub fn resolve(cfg: &DramTimingConfig, freq: MemFreq) -> Self {
        let burst = freq.cycle() * cfg.burst_cycles as u64;
        // Bank-group spacings only bind on generations that have bank
        // groups. With a single group they collapse to the baseline tCCD
        // (== the burst, already enforced by data-bus serialization) and
        // tRRD, so DDR3 scheduling is bit-identical to the pre-generation
        // model even when the config carries stale `_l` values.
        let grouped = cfg.bank_groups > 1;
        TimingSet {
            freq,
            t_rcd: cfg.t_rcd(),
            t_rp: cfg.t_rp(),
            t_cl: cfg.t_cl(),
            t_ras: cfg.t_ras(),
            t_rrd: cfg.t_rrd(),
            t_faw: cfg.t_faw(),
            t_rtp: cfg.t_rtp(),
            t_wr: cfg.t_wr(),
            burst,
            mc_proc: freq.mc_cycle() * cfg.mc_pipeline_cycles as u64,
            t_xp: cfg.t_xp(),
            t_xpdll: cfg.t_xpdll(),
            t_refi: cfg.t_refi(),
            t_rfc: cfg.t_rfc(),
            t_ccd_l: if grouped {
                freq.cycle() * u64::from(cfg.t_ccd_l_cycles)
            } else {
                burst
            },
            t_rrd_l: if grouped { cfg.t_rrd_l() } else { cfg.t_rrd() },
            t_xdpd: cfg.t_xdpd(),
            per_bank_refresh: cfg.per_bank_refresh,
            t_rfc_pb: cfg.t_rfc_pb(),
        }
    }

    /// Latency of a frequency re-lock *to* `freq`: `relock_cycles` at the new
    /// bus period plus the fixed overhead (§4.1: 512 cycles + 28 ns).
    pub fn relock_penalty(cfg: &DramTimingConfig, freq: MemFreq) -> Picos {
        freq.cycle() * cfg.relock_cycles + Picos::from_ns_f64(cfg.relock_extra_ns)
    }

    /// The raw device access latency of a closed-bank read without any
    /// queueing: tRCD + tCL + burst.
    pub fn closed_read_latency(&self) -> Picos {
        self.t_rcd + self.t_cl + self.burst
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> DramTimingConfig {
        DramTimingConfig::default()
    }

    #[test]
    fn core_timings_are_frequency_invariant() {
        for f in MemFreq::ALL {
            let t = TimingSet::resolve(&cfg(), f);
            assert_eq!(t.t_rcd, Picos::from_ns(15));
            assert_eq!(t.t_rp, Picos::from_ns(15));
            assert_eq!(t.t_cl, Picos::from_ns(15));
            assert_eq!(t.t_ras, Picos::from_ns(35));
        }
    }

    #[test]
    fn burst_scales_with_period() {
        let t800 = TimingSet::resolve(&cfg(), MemFreq::F800);
        let t200 = TimingSet::resolve(&cfg(), MemFreq::F200);
        assert_eq!(t800.burst, Picos::from_ns(5));
        assert_eq!(t200.burst, Picos::from_ns(20));
    }

    #[test]
    fn mc_latency_scales_with_mc_period() {
        let t800 = TimingSet::resolve(&cfg(), MemFreq::F800);
        // 5 cycles at 1600 MHz = 5 * 625 ps.
        assert_eq!(t800.mc_proc, Picos::from_ps(3_125));
        let t400 = TimingSet::resolve(&cfg(), MemFreq::F400);
        assert_eq!(t400.mc_proc, t800.mc_proc * 2);
    }

    #[test]
    fn relock_penalty_matches_paper() {
        // 512 cycles at 800 MHz = 640 ns, plus 28 ns.
        assert_eq!(
            TimingSet::relock_penalty(&cfg(), MemFreq::F800),
            Picos::from_ns(668)
        );
        // Slower target -> longer relock.
        assert!(
            TimingSet::relock_penalty(&cfg(), MemFreq::F200)
                > TimingSet::relock_penalty(&cfg(), MemFreq::F800)
        );
    }

    #[test]
    fn closed_read_latency_is_the_sum() {
        let t = TimingSet::resolve(&cfg(), MemFreq::F800);
        assert_eq!(t.closed_read_latency(), Picos::from_ns(35));
    }

    #[test]
    fn ddr3_collapses_bank_group_spacings() {
        let t = TimingSet::resolve(&cfg(), MemFreq::F800);
        assert_eq!(t.t_ccd_l, t.burst); // tCCD == burst on DDR3
        assert_eq!(t.t_rrd_l, t.t_rrd);
        assert_eq!(t.t_xdpd, Picos::ZERO);
        assert!(!t.per_bank_refresh);
    }

    #[test]
    fn ddr4_tccd_l_scales_with_period() {
        let ddr4 = DramTimingConfig::ddr4();
        let t800 = TimingSet::resolve(&ddr4, MemFreq::F800);
        let t400 = TimingSet::resolve(&ddr4, MemFreq::F400);
        // 6 cycles at 1.25 ns / 2.5 ns.
        assert_eq!(t800.t_ccd_l, Picos::from_ps(7_500));
        assert_eq!(t400.t_ccd_l, Picos::from_ns(15));
        assert!(t800.t_ccd_l > t800.burst, "tCCD_L binds beyond the burst");
        // tRRD_L is a DRAM-core latency: frequency-invariant.
        assert_eq!(t800.t_rrd_l, t400.t_rrd_l);
        assert!(t800.t_rrd_l > t800.t_rrd);
    }

    #[test]
    fn lpddr3_resolves_deep_powerdown_and_per_bank_refresh() {
        let t = TimingSet::resolve(&DramTimingConfig::lpddr3(), MemFreq::F800);
        assert_eq!(t.t_xdpd, Picos::from_ns(500));
        assert!(t.t_xdpd > t.t_xpdll);
        assert!(t.per_bank_refresh);
        assert_eq!(t.t_rfc_pb, Picos::from_ns(60));
        assert!(t.t_rfc_pb < t.t_rfc);
    }
}
