//! Monotonic activity accumulators consumed by the power model.
//!
//! Every counter only ever increases; callers snapshot (`Clone`) at window
//! boundaries and subtract with [`RankStats::delta`] / [`ChannelStats::delta`]
//! to obtain per-window activity — exactly how the paper's PTC/PTCKEL/ATCKEL
//! power-modeling counters are sampled each epoch (§3.1).

use memscale_types::time::Picos;

/// Activity accumulated by one rank since construction.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct RankStats {
    /// ACT commands issued.
    pub act_count: u64,
    /// Read bursts serviced.
    pub read_bursts: u64,
    /// Write bursts serviced.
    pub write_bursts: u64,
    /// Total wall time spent driving read bursts.
    pub read_burst_time: Picos,
    /// Total wall time spent driving write bursts.
    pub write_burst_time: Picos,
    /// Union of intervals during which at least one bank held an open row
    /// or was activating/precharging ("some bank active", 1 − PTC).
    pub active_time: Picos,
    /// Time spent in fast-exit precharge powerdown (CKE low), including
    /// frequency-relock windows.
    pub fast_pd_time: Picos,
    /// Time spent in slow-exit precharge powerdown (CKE low).
    pub slow_pd_time: Picos,
    /// Time spent in deep power-down (LPDDR generations). Charged at the
    /// `i_dpd` background-current floor, so deliberately *excluded* from
    /// [`pd_time`](Self::pd_time).
    pub deep_pd_time: Picos,
    /// Powerdown exits (the paper's EPDC counter; excludes deep exits).
    pub pd_exits: u64,
    /// Deep power-down exits (the EDPC counter).
    pub deep_pd_exits: u64,
    /// Refresh commands issued.
    pub refresh_count: u64,
    /// Wall time spent refreshing.
    pub refresh_time: Picos,
    /// High-water mark of the interval-union accumulator (internal).
    active_until: Picos,
}

impl RankStats {
    /// Fresh, all-zero statistics.
    pub fn new() -> Self {
        RankStats::default()
    }

    /// Adds a bank-activity interval `[start, end)` to the union.
    ///
    /// Intervals are expected to arrive with (approximately) nondecreasing
    /// start times, which holds for dispatch-ordered access streams. An
    /// interval starting before the current high-water mark contributes only
    /// its portion beyond the mark, so overlapping bank activity is not
    /// double-counted.
    pub fn add_active_interval(&mut self, start: Picos, end: Picos) {
        if end <= start {
            return;
        }
        if start >= self.active_until {
            self.active_time += end - start;
            self.active_until = end;
        } else if end > self.active_until {
            self.active_time += end - self.active_until;
            self.active_until = end;
        }
    }

    /// Total precharge-powerdown (CKE-low) time. Deep power-down residency
    /// is tracked separately in [`deep_pd_time`](Self::deep_pd_time) because
    /// the power model prices it at the `i_dpd` floor, not `IDD2P`.
    #[inline]
    pub fn pd_time(&self) -> Picos {
        self.fast_pd_time + self.slow_pd_time
    }

    /// Per-window activity: `self` minus an `earlier` snapshot.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `earlier` is not actually an earlier
    /// snapshot of the same accumulator (a counter would underflow).
    pub fn delta(&self, earlier: &RankStats) -> RankStats {
        RankStats {
            act_count: self.act_count - earlier.act_count,
            read_bursts: self.read_bursts - earlier.read_bursts,
            write_bursts: self.write_bursts - earlier.write_bursts,
            read_burst_time: self.read_burst_time - earlier.read_burst_time,
            write_burst_time: self.write_burst_time - earlier.write_burst_time,
            active_time: self.active_time - earlier.active_time,
            fast_pd_time: self.fast_pd_time - earlier.fast_pd_time,
            slow_pd_time: self.slow_pd_time - earlier.slow_pd_time,
            deep_pd_time: self.deep_pd_time - earlier.deep_pd_time,
            pd_exits: self.pd_exits - earlier.pd_exits,
            deep_pd_exits: self.deep_pd_exits - earlier.deep_pd_exits,
            refresh_count: self.refresh_count - earlier.refresh_count,
            refresh_time: self.refresh_time - earlier.refresh_time,
            active_until: self.active_until,
        }
    }

    /// Record a read burst of duration `burst`.
    pub fn record_read_burst(&mut self, burst: Picos) {
        self.read_bursts += 1;
        self.read_burst_time += burst;
    }

    /// Record a write burst of duration `burst`.
    pub fn record_write_burst(&mut self, burst: Picos) {
        self.write_bursts += 1;
        self.write_burst_time += burst;
    }
}

/// Activity accumulated by one channel since construction.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct ChannelStats {
    /// Read requests serviced.
    pub reads: u64,
    /// Write requests serviced.
    pub writes: u64,
    /// Total data-bus busy time (read + write bursts).
    pub burst_time: Picos,
    /// Frequency re-lock events.
    pub relocks: u64,
    /// Wall time lost to frequency re-locks.
    pub relock_time: Picos,
    /// Row-buffer hits (same row already open; the paper's RBHC).
    pub row_hits: u64,
    /// Accesses that found a *different* row open (the paper's OBMC).
    pub open_row_misses: u64,
    /// Accesses that found the bank closed (the paper's CBMC).
    pub closed_misses: u64,
}

impl ChannelStats {
    /// Fresh, all-zero statistics.
    pub fn new() -> Self {
        ChannelStats::default()
    }

    /// Per-window activity: `self` minus an `earlier` snapshot.
    pub fn delta(&self, earlier: &ChannelStats) -> ChannelStats {
        ChannelStats {
            reads: self.reads - earlier.reads,
            writes: self.writes - earlier.writes,
            burst_time: self.burst_time - earlier.burst_time,
            relocks: self.relocks - earlier.relocks,
            relock_time: self.relock_time - earlier.relock_time,
            row_hits: self.row_hits - earlier.row_hits,
            open_row_misses: self.open_row_misses - earlier.open_row_misses,
            closed_misses: self.closed_misses - earlier.closed_misses,
        }
    }

    /// Total accesses classified by row-buffer outcome.
    #[inline]
    pub fn total_accesses(&self) -> u64 {
        self.row_hits + self.open_row_misses + self.closed_misses
    }

    /// Data-bus utilization over a window of length `window`.
    #[inline]
    pub fn utilization(&self, window: Picos) -> f64 {
        self.burst_time.ratio(window).min(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interval_union_disjoint() {
        let mut s = RankStats::new();
        s.add_active_interval(Picos::from_ns(0), Picos::from_ns(10));
        s.add_active_interval(Picos::from_ns(20), Picos::from_ns(30));
        assert_eq!(s.active_time, Picos::from_ns(20));
    }

    #[test]
    fn interval_union_overlapping() {
        let mut s = RankStats::new();
        s.add_active_interval(Picos::from_ns(0), Picos::from_ns(10));
        s.add_active_interval(Picos::from_ns(5), Picos::from_ns(15));
        assert_eq!(s.active_time, Picos::from_ns(15));
    }

    #[test]
    fn interval_union_contained() {
        let mut s = RankStats::new();
        s.add_active_interval(Picos::from_ns(0), Picos::from_ns(30));
        s.add_active_interval(Picos::from_ns(5), Picos::from_ns(15));
        assert_eq!(s.active_time, Picos::from_ns(30));
    }

    #[test]
    fn empty_or_inverted_intervals_ignored() {
        let mut s = RankStats::new();
        s.add_active_interval(Picos::from_ns(10), Picos::from_ns(10));
        s.add_active_interval(Picos::from_ns(10), Picos::from_ns(5));
        assert_eq!(s.active_time, Picos::ZERO);
    }

    #[test]
    fn rank_delta_subtracts() {
        let mut s = RankStats::new();
        s.act_count = 5;
        s.record_read_burst(Picos::from_ns(5));
        let snap = s.clone();
        s.act_count = 9;
        s.record_read_burst(Picos::from_ns(5));
        let d = s.delta(&snap);
        assert_eq!(d.act_count, 4);
        assert_eq!(d.read_bursts, 1);
        assert_eq!(d.read_burst_time, Picos::from_ns(5));
    }

    #[test]
    fn channel_delta_and_utilization() {
        let mut s = ChannelStats::new();
        s.burst_time = Picos::from_ns(50);
        s.reads = 10;
        let snap = s.clone();
        s.burst_time = Picos::from_ns(150);
        s.reads = 30;
        let d = s.delta(&snap);
        assert_eq!(d.reads, 20);
        assert_eq!(d.utilization(Picos::from_ns(200)), 0.5);
        assert_eq!(d.utilization(Picos::ZERO), 0.0);
    }

    #[test]
    fn pd_time_sums_modes() {
        let s = RankStats {
            fast_pd_time: Picos::from_ns(10),
            slow_pd_time: Picos::from_ns(5),
            ..RankStats::new()
        };
        assert_eq!(s.pd_time(), Picos::from_ns(15));
    }

    #[test]
    fn deep_pd_time_is_excluded_from_pd_time() {
        let mut s = RankStats {
            fast_pd_time: Picos::from_ns(10),
            deep_pd_time: Picos::from_us(3),
            deep_pd_exits: 2,
            ..RankStats::new()
        };
        assert_eq!(s.pd_time(), Picos::from_ns(10));
        let snap = s.clone();
        s.deep_pd_time += Picos::from_us(1);
        s.deep_pd_exits += 1;
        let d = s.delta(&snap);
        assert_eq!(d.deep_pd_time, Picos::from_us(1));
        assert_eq!(d.deep_pd_exits, 1);
    }
}
