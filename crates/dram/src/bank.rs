//! Per-bank state.
//!
//! Under the closed-page policy of the paper (§4.1), a bank is precharged
//! after every column access unless the memory controller already has a
//! pending request for the same row; only in that case does the row stay in
//! the row buffer and the next access is a *row hit*.

use memscale_types::time::Picos;

/// A closed-page *reopen opportunity*: after an access schedules its
/// auto-precharge, a same-row request arriving before the CAS actually
/// issues (`until`) may cancel the precharge and proceed as a row hit, with
/// its own CAS no earlier than `cas_from` (the previous CAS plus one burst).
///
/// This reproduces the paper's closed-page policy: "a bank is kept open
/// after an access only if another access for the same bank is already
/// pending" (§4.1) — the keep-open decision is made when the previous
/// access's CAS (with or without auto-precharge) must be encoded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HitWindow {
    /// The row that would stay open.
    pub row: u64,
    /// Earliest CAS time for the follow-up access.
    pub cas_from: Picos,
    /// Arrival deadline for the follow-up request.
    pub until: Picos,
}

/// State of one DRAM bank.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct Bank {
    /// The row currently latched in the row buffer, if any.
    open_row: Option<u64>,
    /// Earliest time the bank can begin its next operation.
    free_at: Picos,
    /// Time of the most recent ACT to this bank (enforces tRAS).
    last_act: Picos,
    /// Whether an ACT has ever been issued (so `last_act` is meaningful).
    activated: bool,
    /// Pending reopen opportunity (closed-page keep-open semantics).
    hit_window: Option<HitWindow>,
    /// Earliest time the *next* precharge may issue (read-to-precharge and
    /// write-recovery constraints, tRTP/tWR). Accumulates across row hits on
    /// the same open row; reset by the next ACT.
    pre_constraint: Picos,
}

impl Bank {
    /// A closed, idle bank.
    pub fn new() -> Self {
        Bank::default()
    }

    /// The row currently open, if any.
    #[inline]
    pub fn open_row(&self) -> Option<u64> {
        self.open_row
    }

    /// Earliest time the bank can begin a new operation.
    #[inline]
    pub fn free_at(&self) -> Picos {
        self.free_at
    }

    /// Time of the last ACT command, if any.
    #[inline]
    pub fn last_act(&self) -> Option<Picos> {
        self.activated.then_some(self.last_act)
    }

    /// The pending reopen opportunity, if any.
    #[inline]
    pub fn hit_window(&self) -> Option<HitWindow> {
        self.hit_window
    }

    /// Earliest time the next precharge may issue (tRTP/tWR constraints of
    /// the accesses since the last ACT).
    #[inline]
    pub fn pre_after(&self) -> Picos {
        self.pre_constraint
    }

    /// Defers the next precharge to at least `t` (a read's tRTP or a write's
    /// tWR recovery point). Accumulates the maximum across row hits.
    pub fn defer_pre_until(&mut self, t: Picos) {
        self.pre_constraint = self.pre_constraint.max(t);
    }

    /// Records an ACT that opens `row` at `at`.
    pub fn record_act(&mut self, row: u64, at: Picos) {
        self.open_row = Some(row);
        self.last_act = at;
        self.activated = true;
        self.hit_window = None;
        self.pre_constraint = Picos::ZERO;
    }

    /// Completes an access, leaving the row open (a same-row request is
    /// already pending at the controller). The bank may start the pending
    /// CAS as soon as `free_at`.
    pub fn finish_keep_open(&mut self, row: u64, free_at: Picos) {
        self.open_row = Some(row);
        self.free_at = free_at;
        self.hit_window = None;
    }

    /// Completes an access with an (auto-)precharge finishing at `free_at`,
    /// optionally arming a reopen opportunity.
    pub fn finish_precharge(&mut self, free_at: Picos) {
        self.open_row = None;
        self.free_at = free_at;
        self.hit_window = None;
    }

    /// Arms a reopen opportunity after an auto-precharging access.
    pub fn arm_hit_window(&mut self, window: HitWindow) {
        self.hit_window = Some(window);
    }

    /// Takes (consumes) the reopen opportunity, re-marking the row open.
    /// The caller has decided the follow-up access proceeds as a row hit.
    pub fn reopen(&mut self, row: u64) {
        self.open_row = Some(row);
        self.hit_window = None;
    }

    /// Pushes `free_at` forward (refresh, powerdown exit, relock).
    pub fn stall_until(&mut self, until: Picos) {
        self.free_at = self.free_at.max(until);
    }

    /// Force-closes the row (used when quiescing for refresh or relock).
    pub fn close(&mut self) {
        self.open_row = None;
        self.hit_window = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_bank_is_closed_and_free() {
        let b = Bank::new();
        assert_eq!(b.open_row(), None);
        assert_eq!(b.free_at(), Picos::ZERO);
        assert_eq!(b.last_act(), None);
    }

    #[test]
    fn act_opens_row_and_tracks_time() {
        let mut b = Bank::new();
        b.record_act(7, Picos::from_ns(10));
        assert_eq!(b.open_row(), Some(7));
        assert_eq!(b.last_act(), Some(Picos::from_ns(10)));
    }

    #[test]
    fn precharge_closes_row() {
        let mut b = Bank::new();
        b.record_act(7, Picos::from_ns(10));
        b.finish_precharge(Picos::from_ns(60));
        assert_eq!(b.open_row(), None);
        assert_eq!(b.free_at(), Picos::from_ns(60));
    }

    #[test]
    fn keep_open_retains_row() {
        let mut b = Bank::new();
        b.record_act(3, Picos::from_ns(10));
        b.finish_keep_open(3, Picos::from_ns(40));
        assert_eq!(b.open_row(), Some(3));
        assert_eq!(b.free_at(), Picos::from_ns(40));
    }

    #[test]
    fn stall_only_moves_forward() {
        let mut b = Bank::new();
        b.stall_until(Picos::from_ns(100));
        b.stall_until(Picos::from_ns(50));
        assert_eq!(b.free_at(), Picos::from_ns(100));
    }

    #[test]
    fn hit_window_arms_and_reopens() {
        let mut b = Bank::new();
        b.record_act(5, Picos::ZERO);
        b.finish_precharge(Picos::from_ns(50));
        let w = HitWindow {
            row: 5,
            cas_from: Picos::from_ns(20),
            until: Picos::from_ns(15),
        };
        b.arm_hit_window(w);
        assert_eq!(b.hit_window(), Some(w));
        b.reopen(5);
        assert_eq!(b.open_row(), Some(5));
        assert_eq!(b.hit_window(), None);
    }

    #[test]
    fn pre_constraint_accumulates_and_resets_on_act() {
        let mut b = Bank::new();
        b.record_act(1, Picos::ZERO);
        b.defer_pre_until(Picos::from_ns(40));
        b.defer_pre_until(Picos::from_ns(25));
        assert_eq!(b.pre_after(), Picos::from_ns(40));
        // A reopen (precharge cancelled) must keep the constraint...
        b.finish_precharge(Picos::from_ns(60));
        b.reopen(1);
        assert_eq!(b.pre_after(), Picos::from_ns(40));
        // ...but a fresh ACT starts a new window.
        b.record_act(2, Picos::from_ns(100));
        assert_eq!(b.pre_after(), Picos::ZERO);
    }

    #[test]
    fn act_and_close_clear_hit_window() {
        let mut b = Bank::new();
        b.arm_hit_window(HitWindow {
            row: 1,
            cas_from: Picos::ZERO,
            until: Picos::from_ns(10),
        });
        b.record_act(2, Picos::ZERO);
        assert_eq!(b.hit_window(), None);
        b.arm_hit_window(HitWindow {
            row: 2,
            cas_from: Picos::ZERO,
            until: Picos::from_ns(10),
        });
        b.close();
        assert_eq!(b.hit_window(), None);
    }
}
