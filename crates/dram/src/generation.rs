//! Engine-facing view of the memory generation in effect.
//!
//! [`GenerationModel`] is the single extension point through which the
//! channel/rank state machines learn what the selected standard adds on top
//! of the DDR3 baseline: DDR4 contributes bank groups (split `tCCD_S` /
//! `tCCD_L` CAS spacing and same-group `tRRD_L`), LPDDR3 contributes deep
//! power-down and per-bank refresh. The mapping from banks to groups lives
//! in `memscale-types` ([`DramTimingConfig::bank_group_of`]) so the
//! independent `memscale-audit` oracle shares it without depending on this
//! crate.

use crate::rank::PowerDownMode;
use memscale_types::config::{DramTimingConfig, MemGeneration};
use memscale_types::ids::BankId;

/// Resolved per-generation behavior: which scheduling constraints and
/// low-power states the device model enforces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GenerationModel {
    generation: MemGeneration,
    bank_groups: usize,
}

impl GenerationModel {
    /// Derives the model from a validated timing configuration.
    pub fn from_config(cfg: &DramTimingConfig) -> Self {
        GenerationModel {
            generation: cfg.generation,
            bank_groups: usize::from(cfg.bank_groups.max(1)),
        }
    }

    /// The memory standard in effect.
    #[inline]
    pub fn generation(&self) -> MemGeneration {
        self.generation
    }

    /// Number of bank groups per rank (1 on generations without them).
    #[inline]
    pub fn bank_groups(&self) -> usize {
        self.bank_groups
    }

    /// The bank group `bank` belongs to (round-robin, matching the
    /// types-level mapping the auditor uses).
    #[inline]
    pub fn group_of(&self, bank: BankId) -> usize {
        bank.index() % self.bank_groups
    }

    /// The low-power states this generation's ranks can enter.
    pub fn low_power_modes(&self) -> &'static [PowerDownMode] {
        if self.generation.has_deep_power_down() {
            &[
                PowerDownMode::Fast,
                PowerDownMode::Slow,
                PowerDownMode::Deep,
            ]
        } else {
            &[PowerDownMode::Fast, PowerDownMode::Slow]
        }
    }

    /// Whether `mode` exists on this generation (deep power-down is
    /// LPDDR-only; policies must check before requesting it).
    pub fn supports_power_down(&self, mode: PowerDownMode) -> bool {
        self.low_power_modes().contains(&mode)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ddr3_is_the_single_group_baseline() {
        let m = GenerationModel::from_config(&DramTimingConfig::default());
        assert_eq!(m.generation(), MemGeneration::Ddr3);
        assert_eq!(m.bank_groups(), 1);
        assert_eq!(m.group_of(BankId(7)), 0);
        assert!(!m.supports_power_down(PowerDownMode::Deep));
    }

    #[test]
    fn ddr4_maps_banks_round_robin_over_four_groups() {
        let m = GenerationModel::from_config(&DramTimingConfig::ddr4());
        assert_eq!(m.bank_groups(), 4);
        assert_eq!(m.group_of(BankId(5)), 1);
        assert_eq!(m.group_of(BankId(15)), 3);
        assert!(!m.supports_power_down(PowerDownMode::Deep));
        // Engine mapping agrees with the auditor's types-level mapping.
        let cfg = DramTimingConfig::ddr4();
        for b in 0..16 {
            assert_eq!(m.group_of(BankId(b)), cfg.bank_group_of(BankId(b)));
        }
    }

    #[test]
    fn lpddr3_adds_deep_power_down() {
        let m = GenerationModel::from_config(&DramTimingConfig::lpddr3());
        assert_eq!(m.low_power_modes().len(), 3);
        assert!(m.supports_power_down(PowerDownMode::Deep));
        assert!(m.supports_power_down(PowerDownMode::Fast));
    }
}
