//! Rank state: banks, activate-window constraints, refresh and powerdown.
//!
//! A rank is the unit of power management in DDR3 (§1 of the paper): CKE-low
//! powerdown states apply to all chips of the rank at once, and the
//! tRRD/tFAW activate constraints are rank-wide.

use crate::bank::Bank;
use crate::stats::RankStats;
use crate::timing::TimingSet;
#[cfg(feature = "audit")]
use memscale_types::events::{CmdEvent, CmdKind};
use memscale_types::ids::BankId;
#[cfg(feature = "audit")]
use memscale_types::ids::{ChannelId, RankId};
use memscale_types::invariants::{FsmFeature, FsmSpec, FsmTransition, TimingParam};
use memscale_types::time::Picos;
use std::collections::VecDeque;

/// Which low-power state a rank is put into.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PowerDownMode {
    /// Fast-exit precharge powerdown (exit costs tXP ≈ 6 ns).
    Fast,
    /// Slow-exit precharge powerdown (exit costs tXPDLL ≈ 24 ns).
    Slow,
    /// Deep power-down (LPDDR generations only): background power collapses
    /// to the `i_dpd` floor, but exit costs `t_xdpd` ≫ tXPDLL.
    Deep,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PowerState {
    Up,
    Down(PowerDownMode),
}

/// The rank power-state machine as a declarative transition table.
///
/// This is the executable [`Rank`] machine lifted into data so the
/// `memscale-check` model checker can enumerate it: determinism, full
/// reachability, no sink states, and a timed exit (whose latency parameter
/// must exist in the generation's table) for every low-power state. Unit
/// tests below pin the table to the implementation.
///
/// Conventions mirrored from the implementation:
///
/// * `(state, event)` pairs without a row are refusals — e.g. powerdown
///   entry from a powered-down rank asserts in [`Rank::enter_power_down`].
/// * `refresh-due` self-loops in powerdown states because refresh
///   bookkeeping continues while CKE is low (a documented model
///   approximation, see the audit crate's module docs).
/// * `relock` exits through the re-lock penalty window
///   ([`TimingParam::RelockCycles`] plus the fixed extra), which subsumes
///   the mode's own exit latency.
pub const RANK_POWER_FSM: FsmSpec = FsmSpec {
    name: "rank-power",
    states: &["up", "fast-pd", "slow-pd", "deep-pd"],
    events: &[
        "access",
        "enter-fast",
        "enter-slow",
        "enter-deep",
        "relock",
        "refresh-due",
    ],
    initial: "up",
    operational: "up",
    low_power: &["fast-pd", "slow-pd", "deep-pd"],
    state_requires: &[("deep-pd", FsmFeature::DeepPowerDown)],
    transitions: &[
        FsmTransition {
            from: "up",
            event: "access",
            to: "up",
            exit_param: None,
            requires: None,
        },
        FsmTransition {
            from: "up",
            event: "refresh-due",
            to: "up",
            exit_param: None,
            requires: None,
        },
        FsmTransition {
            from: "up",
            event: "relock",
            to: "up",
            exit_param: Some(TimingParam::RelockCycles),
            requires: None,
        },
        FsmTransition {
            from: "up",
            event: "enter-fast",
            to: "fast-pd",
            exit_param: None,
            requires: None,
        },
        FsmTransition {
            from: "up",
            event: "enter-slow",
            to: "slow-pd",
            exit_param: None,
            requires: None,
        },
        FsmTransition {
            from: "up",
            event: "enter-deep",
            to: "deep-pd",
            exit_param: None,
            requires: Some(FsmFeature::DeepPowerDown),
        },
        FsmTransition {
            from: "fast-pd",
            event: "access",
            to: "up",
            exit_param: Some(TimingParam::TXp),
            requires: None,
        },
        FsmTransition {
            from: "fast-pd",
            event: "relock",
            to: "up",
            exit_param: Some(TimingParam::RelockCycles),
            requires: None,
        },
        FsmTransition {
            from: "fast-pd",
            event: "refresh-due",
            to: "fast-pd",
            exit_param: None,
            requires: None,
        },
        FsmTransition {
            from: "slow-pd",
            event: "access",
            to: "up",
            exit_param: Some(TimingParam::TXpdll),
            requires: None,
        },
        FsmTransition {
            from: "slow-pd",
            event: "relock",
            to: "up",
            exit_param: Some(TimingParam::RelockCycles),
            requires: None,
        },
        FsmTransition {
            from: "slow-pd",
            event: "refresh-due",
            to: "slow-pd",
            exit_param: None,
            requires: None,
        },
        FsmTransition {
            from: "deep-pd",
            event: "access",
            to: "up",
            exit_param: Some(TimingParam::TXdpd),
            requires: Some(FsmFeature::DeepPowerDown),
        },
        FsmTransition {
            from: "deep-pd",
            event: "relock",
            to: "up",
            exit_param: Some(TimingParam::RelockCycles),
            requires: Some(FsmFeature::DeepPowerDown),
        },
        FsmTransition {
            from: "deep-pd",
            event: "refresh-due",
            to: "deep-pd",
            exit_param: None,
            requires: Some(FsmFeature::DeepPowerDown),
        },
    ],
};

impl PowerDownMode {
    /// The [`RANK_POWER_FSM`] state this mode occupies.
    pub const fn fsm_state(self) -> &'static str {
        match self {
            PowerDownMode::Fast => "fast-pd",
            PowerDownMode::Slow => "slow-pd",
            PowerDownMode::Deep => "deep-pd",
        }
    }
}

/// Maximum refresh commands a rank catches up with in one burst; DDR3
/// permits postponing at most eight REF commands.
const MAX_PENDING_REFRESH: u64 = 8;

/// One DRAM rank: a set of banks plus rank-wide constraints and state.
#[derive(Debug, Clone)]
pub struct Rank {
    banks: Vec<Bank>,
    /// Issue times of recent ACTs (bounded by 4 for the tFAW window).
    act_window: VecDeque<Picos>,
    last_act: Option<Picos>,
    /// Last ACT per bank group (`tRRD_L`; one slot on bank-group-less
    /// generations, where it coincides with `last_act`).
    last_act_group: Vec<Option<Picos>>,
    /// Last CAS per bank group (`tCCD_L`).
    last_cas_group: Vec<Option<Picos>>,
    /// Next bank a recorded per-bank refresh addresses (round-robin).
    #[cfg(feature = "audit")]
    refresh_rr: usize,
    state: PowerState,
    /// When the current powerdown interval started (valid while Down).
    pd_since: Picos,
    /// Next scheduled refresh command.
    next_refresh: Picos,
    /// Rank-wide stall horizon (refresh, relock).
    busy_until: Picos,
    /// Aggressive powerdown policy: the rank is considered to drop into this
    /// mode the instant it goes idle (today's MCs; §4.2.3 Fast-PD/Slow-PD).
    auto_pd: Option<PowerDownMode>,
    /// End of the last known activity (bank busy, burst, refresh, relock);
    /// beyond this point an auto-powerdown rank is CKE-low.
    activity_horizon: Picos,
    /// Time up to which auto-powerdown residency has been accounted.
    pd_accounted_until: Picos,
    /// Armed fault-injection spike: extra latency the next powerdown exit
    /// pays on top of tXP/tXPDLL/tXDPD (consumed one-shot).
    pd_exit_extra: Picos,
    /// Powerdown exits that consumed an armed latency spike.
    spiked_exits: u64,
    stats: RankStats,
    /// Recorded command events; channel/rank ids are placeholders re-tagged
    /// by the owning channel and controller.
    #[cfg(feature = "audit")]
    events: Vec<CmdEvent>,
    /// Whether events are currently being recorded.
    #[cfg(feature = "audit")]
    recording: bool,
    /// End of the last emitted REF event, so replayed refreshes stay
    /// non-overlapping in the audit stream.
    #[cfg(feature = "audit")]
    audit_last_ref_end: Picos,
}

impl Rank {
    /// Creates a powered-up rank of `banks` closed banks spread over
    /// `groups` bank groups (1 on generations without bank groups), whose
    /// first refresh is due at `first_refresh` (staggered across ranks by
    /// the channel).
    pub fn new(banks: usize, groups: usize, first_refresh: Picos) -> Self {
        let groups = groups.max(1);
        Rank {
            banks: vec![Bank::new(); banks],
            act_window: VecDeque::with_capacity(4),
            last_act: None,
            last_act_group: vec![None; groups],
            last_cas_group: vec![None; groups],
            #[cfg(feature = "audit")]
            refresh_rr: 0,
            state: PowerState::Up,
            pd_since: Picos::ZERO,
            next_refresh: first_refresh,
            busy_until: Picos::ZERO,
            auto_pd: None,
            activity_horizon: Picos::ZERO,
            pd_accounted_until: Picos::ZERO,
            pd_exit_extra: Picos::ZERO,
            spiked_exits: 0,
            stats: RankStats::new(),
            #[cfg(feature = "audit")]
            events: Vec::new(),
            #[cfg(feature = "audit")]
            recording: false,
            #[cfg(feature = "audit")]
            audit_last_ref_end: Picos::ZERO,
        }
    }

    /// Starts or stops recording command events for the protocol auditor.
    #[cfg(feature = "audit")]
    pub fn set_event_recording(&mut self, on: bool) {
        self.recording = on;
    }

    /// Drains the recorded events. Rank ids are left at `RankId(0)` for the
    /// owning channel to re-tag.
    #[cfg(feature = "audit")]
    pub fn drain_events(&mut self) -> Vec<CmdEvent> {
        std::mem::take(&mut self.events)
    }

    /// Records one command event (no-op unless recording). `bank` is set for
    /// per-bank refreshes; rank-wide commands leave it `None`.
    #[cfg(feature = "audit")]
    fn emit(&mut self, at: Picos, bank: Option<BankId>, kind: CmdKind) {
        if self.recording {
            self.events.push(CmdEvent {
                at,
                channel: ChannelId(0),
                rank: RankId(0),
                bank,
                kind,
            });
        }
    }

    /// Enables or disables the aggressive idle-powerdown policy: with a mode
    /// set, the rank enters that powerdown state the instant all its banks
    /// are precharged and idle, and pays the exit latency on the next
    /// access.
    pub fn set_auto_power_down(&mut self, mode: Option<PowerDownMode>) {
        self.auto_pd = mode;
    }

    /// Extends the known-activity horizon (the channel calls this for every
    /// access, refresh and relock it schedules on this rank).
    pub fn note_activity(&mut self, until: Picos) {
        self.activity_horizon = self.activity_horizon.max(until);
    }

    /// Accounts auto-powerdown residency in `[horizon, now)` and reports
    /// whether the rank had actually dropped into powerdown.
    fn settle_auto_pd(&mut self, now: Picos) -> bool {
        let Some(mode) = self.auto_pd else {
            return false;
        };
        if !matches!(self.state, PowerState::Up) {
            return false;
        }
        let was_down = self.activity_horizon < now;
        let start = self.activity_horizon.max(self.pd_accounted_until);
        if start < now {
            let dur = now - start;
            self.accrue_pd(mode, dur);
            self.pd_accounted_until = now;
        }
        was_down
    }

    /// Adds powerdown residency to the mode's accumulator.
    fn accrue_pd(&mut self, mode: PowerDownMode, dur: Picos) {
        match mode {
            PowerDownMode::Fast => self.stats.fast_pd_time += dur,
            PowerDownMode::Slow => self.stats.slow_pd_time += dur,
            PowerDownMode::Deep => self.stats.deep_pd_time += dur,
        }
    }

    /// The exit latency of `mode` at the current timing.
    fn exit_latency(mode: PowerDownMode, t: &TimingSet) -> Picos {
        match mode {
            PowerDownMode::Fast => t.t_xp,
            PowerDownMode::Slow => t.t_xpdll,
            PowerDownMode::Deep => t.t_xdpd,
        }
    }

    /// Fault-injection hook: arms a one-shot latency spike the next
    /// powerdown exit pays on top of its tXP/tXPDLL/tXDPD budget. The spike
    /// extends the exit's `ready` horizon (and the recorded exit event), so
    /// the overrun stays visible to the protocol auditor without violating
    /// its lower-bound exit rule.
    pub fn arm_pd_exit_spike(&mut self, extra: Picos) {
        self.pd_exit_extra = extra;
    }

    /// Powerdown exits that consumed an armed latency spike so far.
    #[inline]
    pub fn spiked_pd_exits(&self) -> u64 {
        self.spiked_exits
    }

    /// Consumes the armed exit spike, if any (one-shot).
    fn take_pd_exit_spike(&mut self) -> Picos {
        let extra = self.pd_exit_extra;
        if extra > Picos::ZERO {
            self.pd_exit_extra = Picos::ZERO;
            self.spiked_exits += 1;
        }
        extra
    }

    /// Fault-injection hook: slips the next scheduled REF later by `by` (a
    /// late REF; for a dropped REF the caller passes one full interval so
    /// the command is skipped without catch-up accounting). The slip only
    /// lands while the rank is fully caught up — never while REFs are
    /// already in arrears — so the postponement window the audit rule packs
    /// enforce cannot be breached. Returns whether the fault landed.
    pub fn delay_refresh(&mut self, by: Picos, now: Picos) -> bool {
        if self.next_refresh <= now {
            return false;
        }
        self.next_refresh += by;
        true
    }

    /// Shared view of a bank.
    ///
    /// # Panics
    ///
    /// Panics if `bank` is out of range.
    #[inline]
    pub fn bank(&self, bank: BankId) -> &Bank {
        &self.banks[bank.index()]
    }

    /// Mutable view of a bank.
    ///
    /// # Panics
    ///
    /// Panics if `bank` is out of range.
    #[inline]
    pub fn bank_mut(&mut self, bank: BankId) -> &mut Bank {
        &mut self.banks[bank.index()]
    }

    /// Number of banks in this rank.
    #[inline]
    pub fn bank_count(&self) -> usize {
        self.banks.len()
    }

    /// Rank-wide stall horizon.
    #[inline]
    pub fn busy_until(&self) -> Picos {
        self.busy_until
    }

    /// Horizon past every settled refresh: the stall horizon, extended under
    /// audit recording to the end of the last *emitted* REF (bulk-accounted
    /// arrears can replay slightly past `busy_until`). A frequency re-lock
    /// must not begin before this point, or a REF would land in its window.
    #[inline]
    pub fn refresh_horizon(&self) -> Picos {
        #[cfg(feature = "audit")]
        {
            self.busy_until.max(self.audit_last_ref_end)
        }
        #[cfg(not(feature = "audit"))]
        {
            self.busy_until
        }
    }

    /// The rank's cumulative statistics.
    #[inline]
    pub fn stats(&self) -> &RankStats {
        &self.stats
    }

    /// Mutable statistics access (the channel records per-access activity).
    #[inline]
    pub(crate) fn stats_mut(&mut self) -> &mut RankStats {
        &mut self.stats
    }

    /// Whether the rank is currently in a powerdown state.
    #[inline]
    pub fn is_powered_down(&self) -> bool {
        matches!(self.state, PowerState::Down(_))
    }

    /// Earliest time an ACT to bank group `group` may issue given a
    /// `candidate` time and the rank's tRRD / `tRRD_L` / tFAW history.
    pub fn earliest_act(&self, group: usize, candidate: Picos, t: &TimingSet) -> Picos {
        let mut at = candidate;
        if let Some(last) = self.last_act {
            at = at.max(last + t.t_rrd);
        }
        if let Some(last) = self.last_act_group[group % self.last_act_group.len()] {
            at = at.max(last + t.t_rrd_l);
        }
        if self.act_window.len() == 4 {
            at = at.max(self.act_window[0] + t.t_faw);
        }
        at
    }

    /// Records an ACT to bank group `group` at `at` in the rank-wide
    /// history.
    pub fn record_act(&mut self, group: usize, at: Picos) {
        self.last_act = Some(at);
        let slot = group % self.last_act_group.len();
        self.last_act_group[slot] = Some(at);
        if self.act_window.len() == 4 {
            self.act_window.pop_front();
        }
        self.act_window.push_back(at);
        self.stats.act_count += 1;
    }

    /// Earliest time a CAS to bank group `group` may issue given a
    /// `candidate` time and the same-group `tCCD_L` history. On generations
    /// without bank groups `t_ccd_l` equals the burst, which data-bus
    /// serialization already guarantees.
    pub fn earliest_cas(&self, group: usize, candidate: Picos, t: &TimingSet) -> Picos {
        match self.last_cas_group[group % self.last_cas_group.len()] {
            Some(last) => candidate.max(last + t.t_ccd_l),
            None => candidate,
        }
    }

    /// Records a CAS to bank group `group` at `at`.
    pub fn record_cas(&mut self, group: usize, at: Picos) {
        let slot = group % self.last_cas_group.len();
        self.last_cas_group[slot] = Some(at);
    }

    /// The effective refresh interval and command duration: all-bank
    /// tREFI/tRFC, or — under LPDDR per-bank refresh — tREFI divided across
    /// the banks with the shorter per-bank tRFCpb.
    fn refresh_params(&self, t: &TimingSet) -> (Picos, Picos) {
        if t.per_bank_refresh {
            let interval = t.t_refi.scale(1.0 / self.banks.len() as f64);
            (interval, t.t_rfc_pb)
        } else {
            (t.t_refi, t.t_rfc)
        }
    }

    /// The bank the next per-bank refresh addresses (round-robin), or `None`
    /// for an all-bank refresh.
    #[cfg(feature = "audit")]
    fn next_refresh_bank(&mut self, t: &TimingSet) -> Option<BankId> {
        if t.per_bank_refresh {
            let bank = BankId(self.refresh_rr);
            self.refresh_rr = (self.refresh_rr + 1) % self.banks.len();
            Some(bank)
        } else {
            None
        }
    }

    /// Processes refresshes that became due at or before `now`, stalling the
    /// rank for tRFC per command (up to the DDR3 postponing limit of eight;
    /// further arrears are dropped, as their energy is modeled analytically
    /// from wall time by the power crate). Under LPDDR per-bank refresh the
    /// same schedule runs at `tREFI / banks` with the shorter `tRFCpb` per
    /// command, rotating through the banks.
    pub fn catch_up_refresh(&mut self, now: Picos, t: &TimingSet) {
        if self.next_refresh > now {
            return;
        }
        let (t_refi, t_rfc) = self.refresh_params(t);
        // Refreshes that became due while the rank sat idle completed in the
        // background at their scheduled times; bulk-account truly ancient
        // arrears without touching the stall horizon.
        let refi = t_refi.as_ps().max(1);
        let behind = (now - self.next_refresh).as_ps() / refi;
        if behind > 2 * MAX_PENDING_REFRESH {
            let skip = behind - MAX_PENDING_REFRESH;
            self.stats.refresh_count += skip;
            self.stats.refresh_time += t_rfc * skip;
            #[cfg(feature = "audit")]
            if self.recording {
                let mut sched = self.next_refresh;
                for _ in 0..skip {
                    let at = sched.max(self.busy_until).max(self.audit_last_ref_end);
                    let bank = self.next_refresh_bank(t);
                    self.emit(at, bank, CmdKind::Refresh { end: at + t_rfc });
                    self.audit_last_ref_end = at + t_rfc;
                    sched += t_refi;
                }
            }
            self.next_refresh += Picos::from_ps(skip * refi);
        }
        // Remaining commands run back-to-back from their due times; only a
        // refresh still in flight at `now` stalls the arriving request.
        while self.next_refresh <= now {
            let start = self.next_refresh.max(self.busy_until);
            let end = start + t_rfc;
            #[cfg(feature = "audit")]
            if self.recording {
                let at = start.max(self.audit_last_ref_end);
                let bank = self.next_refresh_bank(t);
                self.emit(at, bank, CmdKind::Refresh { end: at + t_rfc });
                self.audit_last_ref_end = at + t_rfc;
            }
            self.busy_until = self.busy_until.max(end);
            self.stats.refresh_count += 1;
            self.stats.refresh_time += t_rfc;
            self.next_refresh += t_refi;
        }
        self.note_activity(self.busy_until);
    }

    /// The event recorded when `mode` is entered.
    #[cfg(feature = "audit")]
    fn enter_event(mode: PowerDownMode) -> CmdKind {
        match mode {
            PowerDownMode::Deep => CmdKind::DeepPowerDownEnter,
            _ => CmdKind::PowerDownEnter {
                fast: matches!(mode, PowerDownMode::Fast),
            },
        }
    }

    /// The event recorded when `mode` is exited.
    #[cfg(feature = "audit")]
    fn exit_event(mode: PowerDownMode, entered_at: Picos, ready: Picos) -> CmdKind {
        match mode {
            PowerDownMode::Deep => CmdKind::DeepPowerDownExit { entered_at, ready },
            _ => CmdKind::PowerDownExit {
                fast: matches!(mode, PowerDownMode::Fast),
                entered_at,
                ready,
            },
        }
    }

    /// Counts one exit from `mode` (EPDC, or EDPC for deep power-down).
    fn count_exit(&mut self, mode: PowerDownMode) {
        if matches!(mode, PowerDownMode::Deep) {
            self.stats.deep_pd_exits += 1;
        } else {
            self.stats.pd_exits += 1;
        }
    }

    /// Makes sure the rank is out of powerdown, returning the time at which
    /// it can accept a command and which low-power mode (if any) was exited
    /// (explicit powerdown state *or* the auto-powerdown policy).
    pub fn ensure_awake(&mut self, now: Picos, t: &TimingSet) -> (Picos, Option<PowerDownMode>) {
        match self.state {
            PowerState::Up => {
                if self.settle_auto_pd(now) {
                    let mode = self.auto_pd.expect("settled implies mode");
                    let exit = Self::exit_latency(mode, t) + self.take_pd_exit_spike();
                    self.count_exit(mode);
                    let ready = now.max(self.busy_until) + exit;
                    // The auto-powerdown entry is synthesized retroactively:
                    // the rank dropped CKE at its last activity horizon.
                    #[cfg(feature = "audit")]
                    {
                        let entered_at = self.activity_horizon;
                        self.emit(entered_at, None, Self::enter_event(mode));
                        self.emit(now, None, Self::exit_event(mode, entered_at, ready));
                    }
                    (ready, Some(mode))
                } else {
                    (now.max(self.busy_until), None)
                }
            }
            PowerState::Down(mode) => {
                // A wake at the very instant of entry cancels the entry: CKE
                // never effectively dropped, so no exit latency is owed and
                // the enter event is retracted.
                if self.pd_since == now {
                    self.state = PowerState::Up;
                    #[cfg(feature = "audit")]
                    if self.recording {
                        if let Some(pos) = self.events.iter().rposition(|e| {
                            e.at == now
                                && matches!(
                                    e.kind,
                                    CmdKind::PowerDownEnter { .. } | CmdKind::DeepPowerDownEnter
                                )
                        }) {
                            self.events.remove(pos);
                        }
                    }
                    return (now.max(self.busy_until), None);
                }
                let exit = Self::exit_latency(mode, t) + self.take_pd_exit_spike();
                #[cfg(feature = "audit")]
                let entered_at = self.pd_since;
                self.flush_pd(now);
                self.state = PowerState::Up;
                self.count_exit(mode);
                let ready = now.max(self.busy_until) + exit;
                #[cfg(feature = "audit")]
                self.emit(now, None, Self::exit_event(mode, entered_at, ready));
                (ready, Some(mode))
            }
        }
    }

    /// Whether the rank may enter powerdown at `now`: powered up, every bank
    /// precharged and idle, and no rank-wide stall pending.
    pub fn can_power_down(&self, now: Picos) -> bool {
        matches!(self.state, PowerState::Up)
            && self.busy_until <= now
            && self
                .banks
                .iter()
                .all(|b| b.open_row().is_none() && b.free_at() <= now)
    }

    /// Enters powerdown at `now`.
    ///
    /// # Panics
    ///
    /// Panics if [`can_power_down`](Self::can_power_down) is false.
    pub fn enter_power_down(&mut self, mode: PowerDownMode, now: Picos) {
        assert!(self.can_power_down(now), "rank not idle at {now}");
        self.state = PowerState::Down(mode);
        self.pd_since = now;
        #[cfg(feature = "audit")]
        self.emit(now, None, Self::enter_event(mode));
    }

    /// Flushes accumulated powerdown residency into the statistics without
    /// changing state. Call at sampling boundaries.
    pub fn sync(&mut self, now: Picos) {
        self.flush_pd(now);
        self.settle_auto_pd(now);
    }

    fn flush_pd(&mut self, now: Picos) {
        if let PowerState::Down(mode) = self.state {
            let dur = now.saturating_sub(self.pd_since);
            self.accrue_pd(mode, dur);
            self.pd_since = now;
        }
    }

    /// Quiesces the rank for a frequency re-lock spanning `[now, ready)`:
    /// exits powerdown bookkeeping, closes all banks, stalls until `ready`,
    /// and accounts the window as fast-exit powerdown residency (the paper
    /// re-locks from precharge powerdown, §3.1).
    pub fn relock(&mut self, now: Picos, ready: Picos) {
        self.flush_pd(now);
        self.settle_auto_pd(now);
        self.state = PowerState::Up;
        for bank in &mut self.banks {
            bank.close();
            bank.stall_until(ready);
        }
        self.busy_until = self.busy_until.max(ready);
        self.stats.fast_pd_time += ready.saturating_sub(now);
        self.note_activity(ready);
        self.pd_accounted_until = self.pd_accounted_until.max(ready);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memscale_types::config::DramTimingConfig;
    use memscale_types::freq::MemFreq;

    fn timing() -> TimingSet {
        TimingSet::resolve(&DramTimingConfig::default(), MemFreq::F800)
    }

    fn rank() -> Rank {
        Rank::new(8, 1, Picos::from_us(7))
    }

    #[test]
    fn fsm_table_matches_implementation() {
        use memscale_types::config::MemGeneration;
        let cfg = DramTimingConfig::lpddr3();
        let t = TimingSet::resolve(&cfg, MemFreq::F800);
        for (mode, param) in [
            (PowerDownMode::Fast, TimingParam::TXp),
            (PowerDownMode::Slow, TimingParam::TXpdll),
            (PowerDownMode::Deep, TimingParam::TXdpd),
        ] {
            let row = RANK_POWER_FSM
                .transitions
                .iter()
                .find(|tr| tr.from == mode.fsm_state() && tr.event == "access")
                .expect("access exit row");
            assert_eq!(row.to, "up");
            assert_eq!(row.exit_param, Some(param));
            // The executable machine pays exactly that parameter.
            let mut r = rank();
            r.enter_power_down(mode, Picos::from_ns(10));
            let (ready, exited) = r.ensure_awake(Picos::from_ns(100), &t);
            assert_eq!(exited, Some(mode));
            let expected = match param {
                TimingParam::TXp => t.t_xp,
                TimingParam::TXpdll => t.t_xpdll,
                TimingParam::TXdpd => t.t_xdpd,
                _ => unreachable!(),
            };
            assert_eq!(ready, Picos::from_ns(100) + expected);
        }
        // Deep power-down exists only behind the generation gate.
        assert!(RANK_POWER_FSM
            .active_transitions(MemGeneration::Ddr3)
            .all(|tr| tr.from != "deep-pd" && tr.to != "deep-pd"));
        assert!(RANK_POWER_FSM
            .active_transitions(MemGeneration::Lpddr3)
            .any(|tr| tr.to == "deep-pd"));
    }

    #[test]
    fn trrd_spaces_activates() {
        let t = timing();
        let mut r = rank();
        r.record_act(0, Picos::from_ns(100));
        let earliest = r.earliest_act(0, Picos::from_ns(100), &t);
        assert_eq!(earliest, Picos::from_ns(105)); // tRRD = 5 ns
    }

    #[test]
    fn tfaw_limits_four_activates() {
        let t = timing();
        let mut r = rank();
        for i in 0..4 {
            r.record_act(0, Picos::from_ns(i * 5));
        }
        // Fifth ACT must wait until first + tFAW = 0 + 25 ns.
        let earliest = r.earliest_act(0, Picos::from_ns(16), &t);
        assert_eq!(earliest, Picos::from_ns(25));
    }

    #[test]
    fn trrd_l_binds_same_group_only() {
        let t = TimingSet::resolve(&DramTimingConfig::ddr4(), MemFreq::F800);
        let mut r = Rank::new(16, 4, Picos::from_us(7));
        r.record_act(2, Picos::from_ns(100));
        // Same group: tRRD_L = 7.5 ns; other group: plain tRRD = 5 ns.
        assert_eq!(
            r.earliest_act(2, Picos::from_ns(100), &t),
            Picos::from_ps(107_500)
        );
        assert_eq!(
            r.earliest_act(3, Picos::from_ns(100), &t),
            Picos::from_ns(105)
        );
    }

    #[test]
    fn tccd_l_spaces_same_group_cas() {
        let t = TimingSet::resolve(&DramTimingConfig::ddr4(), MemFreq::F800);
        let mut r = Rank::new(16, 4, Picos::from_us(7));
        r.record_cas(1, Picos::from_ns(200));
        // Same group: + tCCD_L (6 × 1.25 ns); other group unconstrained.
        assert_eq!(
            r.earliest_cas(1, Picos::from_ns(200), &t),
            Picos::from_ps(207_500)
        );
        assert_eq!(
            r.earliest_cas(0, Picos::from_ns(200), &t),
            Picos::from_ns(200)
        );
    }

    #[test]
    fn per_bank_refresh_runs_shorter_more_often() {
        let t = TimingSet::resolve(&DramTimingConfig::lpddr3(), MemFreq::F800);
        let mut all = Rank::new(8, 1, Picos::from_us(1));
        let mut ddr3 = Rank::new(8, 1, Picos::from_us(1));
        all.catch_up_refresh(Picos::from_ms(1), &t);
        ddr3.catch_up_refresh(Picos::from_ms(1), &timing());
        // tREFI/8 interval: about 8× the all-bank command count.
        assert!(all.stats().refresh_count > 6 * ddr3.stats().refresh_count);
        // Each command is the short per-bank tRFCpb.
        let per_cmd = all.stats().refresh_time.as_ps() / all.stats().refresh_count;
        assert_eq!(per_cmd, t.t_rfc_pb.as_ps());
    }

    #[test]
    fn deep_powerdown_exit_pays_txdpd() {
        let t = TimingSet::resolve(&DramTimingConfig::lpddr3(), MemFreq::F800);
        let mut r = rank();
        r.enter_power_down(PowerDownMode::Deep, Picos::ZERO);
        assert!(r.is_powered_down());
        let (ready, exited) = r.ensure_awake(Picos::from_us(10), &t);
        assert_eq!(exited, Some(PowerDownMode::Deep));
        assert_eq!(ready, Picos::from_us(10) + Picos::from_ns(500)); // + tXDPD
        assert_eq!(r.stats().deep_pd_time, Picos::from_us(10));
        assert_eq!(r.stats().pd_time(), Picos::ZERO);
        assert_eq!(r.stats().deep_pd_exits, 1);
        assert_eq!(r.stats().pd_exits, 0);
    }

    #[test]
    fn in_flight_refresh_stalls_rank() {
        let t = timing();
        let mut r = Rank::new(8, 1, Picos::from_us(1));
        // Arrive 50 ns after the refresh became due: it is still running.
        r.catch_up_refresh(Picos::from_us(1) + Picos::from_ns(50), &t);
        assert_eq!(r.stats().refresh_count, 1);
        assert_eq!(r.busy_until(), Picos::from_us(1) + t.t_rfc);
    }

    #[test]
    fn completed_background_refresh_does_not_stall() {
        let t = timing();
        let mut r = Rank::new(8, 1, Picos::from_us(1));
        // Arrive long after the refresh finished in the background.
        let now = Picos::from_us(5);
        r.catch_up_refresh(now, &t);
        assert_eq!(r.stats().refresh_count, 1);
        assert!(r.busy_until() < now, "background refresh must not stall");
    }

    #[test]
    fn long_idle_accounts_all_refreshes_without_stalling() {
        let t = timing();
        let mut r = Rank::new(8, 1, Picos::from_us(1));
        // Rank idle for a full millisecond: ~128 refreshes ran in the
        // background; all are counted, none stalls the arriving request.
        r.catch_up_refresh(Picos::from_ms(1), &t);
        let count = r.stats().refresh_count;
        assert!((120..=130).contains(&count), "count {count}");
        assert!(r.busy_until() < Picos::from_ms(1));
        // Idempotent at the same instant.
        r.catch_up_refresh(Picos::from_ms(1), &t);
        assert_eq!(r.stats().refresh_count, count);
    }

    #[test]
    fn powerdown_accounting_and_exit_latency() {
        let t = timing();
        let mut r = rank();
        assert!(r.can_power_down(Picos::from_ns(50)));
        r.enter_power_down(PowerDownMode::Fast, Picos::from_ns(50));
        assert!(r.is_powered_down());
        let (ready, exited) = r.ensure_awake(Picos::from_ns(150), &t);
        assert_eq!(exited, Some(PowerDownMode::Fast));
        assert_eq!(ready, Picos::from_ns(156)); // + tXP
        assert_eq!(r.stats().fast_pd_time, Picos::from_ns(100));
        assert_eq!(r.stats().pd_exits, 1);
        assert!(!r.is_powered_down());
    }

    #[test]
    fn slow_powerdown_has_longer_exit() {
        let t = timing();
        let mut r = rank();
        r.enter_power_down(PowerDownMode::Slow, Picos::ZERO);
        let (ready, _) = r.ensure_awake(Picos::from_ns(100), &t);
        assert_eq!(ready, Picos::from_ns(124)); // + tXPDLL
        assert_eq!(r.stats().slow_pd_time, Picos::from_ns(100));
    }

    #[test]
    fn cannot_power_down_with_open_bank() {
        let mut r = rank();
        r.bank_mut(BankId(0)).record_act(5, Picos::ZERO);
        assert!(!r.can_power_down(Picos::from_ns(100)));
    }

    #[test]
    fn sync_flushes_residency_without_exiting() {
        let mut r = rank();
        r.enter_power_down(PowerDownMode::Fast, Picos::ZERO);
        r.sync(Picos::from_us(1));
        assert_eq!(r.stats().fast_pd_time, Picos::from_us(1));
        assert!(r.is_powered_down());
        r.sync(Picos::from_us(2));
        assert_eq!(r.stats().fast_pd_time, Picos::from_us(2));
    }

    #[test]
    fn relock_counts_as_fast_pd_and_stalls() {
        let mut r = rank();
        r.relock(Picos::from_ns(100), Picos::from_ns(768));
        assert_eq!(r.stats().fast_pd_time, Picos::from_ns(668));
        assert_eq!(r.busy_until(), Picos::from_ns(768));
        assert!(!r.is_powered_down());
    }

    #[test]
    fn pd_exit_spike_is_one_shot_and_extends_ready() {
        let t = timing();
        let mut r = rank();
        r.enter_power_down(PowerDownMode::Fast, Picos::ZERO);
        r.arm_pd_exit_spike(Picos::from_ns(100));
        let (ready, _) = r.ensure_awake(Picos::from_ns(150), &t);
        // tXP (6 ns) + injected 100 ns spike.
        assert_eq!(ready, Picos::from_ns(256));
        assert_eq!(r.spiked_pd_exits(), 1);
        // Spike consumed: the next exit pays only tXP.
        r.enter_power_down(PowerDownMode::Fast, Picos::from_ns(300));
        let (ready, _) = r.ensure_awake(Picos::from_ns(400), &t);
        assert_eq!(ready, Picos::from_ns(406));
        assert_eq!(r.spiked_pd_exits(), 1);
    }

    #[test]
    fn refresh_slip_lands_only_when_caught_up() {
        let t = timing();
        let mut r = Rank::new(8, 1, Picos::from_us(10));
        // Caught up (next REF in the future): the slip lands.
        assert!(r.delay_refresh(Picos::from_ns(500), Picos::from_us(5)));
        r.catch_up_refresh(Picos::from_us(10), &t);
        assert_eq!(r.stats().refresh_count, 0, "slipped REF not yet due");
        r.catch_up_refresh(Picos::from_us(11), &t);
        assert_eq!(r.stats().refresh_count, 1);
        // In arrears (next REF already due): the slip is refused.
        let mut r = Rank::new(8, 1, Picos::from_us(1));
        assert!(!r.delay_refresh(Picos::from_ns(500), Picos::from_us(2)));
    }

    #[test]
    fn awake_rank_respects_busy_until() {
        let t = timing();
        let mut r = rank();
        r.relock(Picos::ZERO, Picos::from_ns(500));
        let (ready, exited) = r.ensure_awake(Picos::from_ns(100), &t);
        assert_eq!(exited, None);
        assert_eq!(ready, Picos::from_ns(500));
    }
}
