//! Rank state: banks, activate-window constraints, refresh and powerdown.
//!
//! A rank is the unit of power management in DDR3 (§1 of the paper): CKE-low
//! powerdown states apply to all chips of the rank at once, and the
//! tRRD/tFAW activate constraints are rank-wide.

use crate::bank::Bank;
use crate::stats::RankStats;
use crate::timing::TimingSet;
#[cfg(feature = "audit")]
use memscale_types::events::{CmdEvent, CmdKind};
use memscale_types::ids::BankId;
#[cfg(feature = "audit")]
use memscale_types::ids::{ChannelId, RankId};
use memscale_types::time::Picos;
use std::collections::VecDeque;

/// Which precharge-powerdown flavor a rank is put into.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PowerDownMode {
    /// Fast-exit precharge powerdown (exit costs tXP ≈ 6 ns).
    Fast,
    /// Slow-exit precharge powerdown (exit costs tXPDLL ≈ 24 ns).
    Slow,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PowerState {
    Up,
    Down(PowerDownMode),
}

/// Maximum refresh commands a rank catches up with in one burst; DDR3
/// permits postponing at most eight REF commands.
const MAX_PENDING_REFRESH: u64 = 8;

/// One DRAM rank: a set of banks plus rank-wide constraints and state.
#[derive(Debug, Clone)]
pub struct Rank {
    banks: Vec<Bank>,
    /// Issue times of recent ACTs (bounded by 4 for the tFAW window).
    act_window: VecDeque<Picos>,
    last_act: Option<Picos>,
    state: PowerState,
    /// When the current powerdown interval started (valid while Down).
    pd_since: Picos,
    /// Next scheduled refresh command.
    next_refresh: Picos,
    /// Rank-wide stall horizon (refresh, relock).
    busy_until: Picos,
    /// Aggressive powerdown policy: the rank is considered to drop into this
    /// mode the instant it goes idle (today's MCs; §4.2.3 Fast-PD/Slow-PD).
    auto_pd: Option<PowerDownMode>,
    /// End of the last known activity (bank busy, burst, refresh, relock);
    /// beyond this point an auto-powerdown rank is CKE-low.
    activity_horizon: Picos,
    /// Time up to which auto-powerdown residency has been accounted.
    pd_accounted_until: Picos,
    stats: RankStats,
    /// Recorded command events; channel/rank ids are placeholders re-tagged
    /// by the owning channel and controller.
    #[cfg(feature = "audit")]
    events: Vec<CmdEvent>,
    /// Whether events are currently being recorded.
    #[cfg(feature = "audit")]
    recording: bool,
    /// End of the last emitted REF event, so replayed refreshes stay
    /// non-overlapping in the audit stream.
    #[cfg(feature = "audit")]
    audit_last_ref_end: Picos,
}

impl Rank {
    /// Creates a powered-up rank of `banks` closed banks whose first refresh
    /// is due at `first_refresh` (staggered across ranks by the channel).
    pub fn new(banks: usize, first_refresh: Picos) -> Self {
        Rank {
            banks: vec![Bank::new(); banks],
            act_window: VecDeque::with_capacity(4),
            last_act: None,
            state: PowerState::Up,
            pd_since: Picos::ZERO,
            next_refresh: first_refresh,
            busy_until: Picos::ZERO,
            auto_pd: None,
            activity_horizon: Picos::ZERO,
            pd_accounted_until: Picos::ZERO,
            stats: RankStats::new(),
            #[cfg(feature = "audit")]
            events: Vec::new(),
            #[cfg(feature = "audit")]
            recording: false,
            #[cfg(feature = "audit")]
            audit_last_ref_end: Picos::ZERO,
        }
    }

    /// Starts or stops recording command events for the protocol auditor.
    #[cfg(feature = "audit")]
    pub fn set_event_recording(&mut self, on: bool) {
        self.recording = on;
    }

    /// Drains the recorded events. Rank ids are left at `RankId(0)` for the
    /// owning channel to re-tag.
    #[cfg(feature = "audit")]
    pub fn drain_events(&mut self) -> Vec<CmdEvent> {
        std::mem::take(&mut self.events)
    }

    /// Records one command event (no-op unless recording).
    #[cfg(feature = "audit")]
    fn emit(&mut self, at: Picos, kind: CmdKind) {
        if self.recording {
            self.events.push(CmdEvent {
                at,
                channel: ChannelId(0),
                rank: RankId(0),
                bank: None,
                kind,
            });
        }
    }

    /// Enables or disables the aggressive idle-powerdown policy: with a mode
    /// set, the rank enters that powerdown state the instant all its banks
    /// are precharged and idle, and pays the exit latency on the next
    /// access.
    pub fn set_auto_power_down(&mut self, mode: Option<PowerDownMode>) {
        self.auto_pd = mode;
    }

    /// Extends the known-activity horizon (the channel calls this for every
    /// access, refresh and relock it schedules on this rank).
    pub fn note_activity(&mut self, until: Picos) {
        self.activity_horizon = self.activity_horizon.max(until);
    }

    /// Accounts auto-powerdown residency in `[horizon, now)` and reports
    /// whether the rank had actually dropped into powerdown.
    fn settle_auto_pd(&mut self, now: Picos) -> bool {
        let Some(mode) = self.auto_pd else {
            return false;
        };
        if !matches!(self.state, PowerState::Up) {
            return false;
        }
        let was_down = self.activity_horizon < now;
        let start = self.activity_horizon.max(self.pd_accounted_until);
        if start < now {
            let dur = now - start;
            match mode {
                PowerDownMode::Fast => self.stats.fast_pd_time += dur,
                PowerDownMode::Slow => self.stats.slow_pd_time += dur,
            }
            self.pd_accounted_until = now;
        }
        was_down
    }

    /// Shared view of a bank.
    ///
    /// # Panics
    ///
    /// Panics if `bank` is out of range.
    #[inline]
    pub fn bank(&self, bank: BankId) -> &Bank {
        &self.banks[bank.index()]
    }

    /// Mutable view of a bank.
    ///
    /// # Panics
    ///
    /// Panics if `bank` is out of range.
    #[inline]
    pub fn bank_mut(&mut self, bank: BankId) -> &mut Bank {
        &mut self.banks[bank.index()]
    }

    /// Number of banks in this rank.
    #[inline]
    pub fn bank_count(&self) -> usize {
        self.banks.len()
    }

    /// Rank-wide stall horizon.
    #[inline]
    pub fn busy_until(&self) -> Picos {
        self.busy_until
    }

    /// The rank's cumulative statistics.
    #[inline]
    pub fn stats(&self) -> &RankStats {
        &self.stats
    }

    /// Mutable statistics access (the channel records per-access activity).
    #[inline]
    pub(crate) fn stats_mut(&mut self) -> &mut RankStats {
        &mut self.stats
    }

    /// Whether the rank is currently in a powerdown state.
    #[inline]
    pub fn is_powered_down(&self) -> bool {
        matches!(self.state, PowerState::Down(_))
    }

    /// Earliest time an ACT may issue given a `candidate` time and the
    /// rank's tRRD / tFAW history.
    pub fn earliest_act(&self, candidate: Picos, t: &TimingSet) -> Picos {
        let mut at = candidate;
        if let Some(last) = self.last_act {
            at = at.max(last + t.t_rrd);
        }
        if self.act_window.len() == 4 {
            at = at.max(self.act_window[0] + t.t_faw);
        }
        at
    }

    /// Records an ACT at `at` in the rank-wide history.
    pub fn record_act(&mut self, at: Picos) {
        self.last_act = Some(at);
        if self.act_window.len() == 4 {
            self.act_window.pop_front();
        }
        self.act_window.push_back(at);
        self.stats.act_count += 1;
    }

    /// Processes refresshes that became due at or before `now`, stalling the
    /// rank for tRFC per command (up to the DDR3 postponing limit of eight;
    /// further arrears are dropped, as their energy is modeled analytically
    /// from wall time by the power crate).
    pub fn catch_up_refresh(&mut self, now: Picos, t: &TimingSet) {
        if self.next_refresh > now {
            return;
        }
        // Refreshes that became due while the rank sat idle completed in the
        // background at their scheduled times; bulk-account truly ancient
        // arrears without touching the stall horizon.
        let refi = t.t_refi.as_ps().max(1);
        let behind = (now - self.next_refresh).as_ps() / refi;
        if behind > 2 * MAX_PENDING_REFRESH {
            let skip = behind - MAX_PENDING_REFRESH;
            self.stats.refresh_count += skip;
            self.stats.refresh_time += t.t_rfc * skip;
            #[cfg(feature = "audit")]
            if self.recording {
                let mut sched = self.next_refresh;
                for _ in 0..skip {
                    let at = sched.max(self.busy_until).max(self.audit_last_ref_end);
                    self.emit(at, CmdKind::Refresh { end: at + t.t_rfc });
                    self.audit_last_ref_end = at + t.t_rfc;
                    sched += t.t_refi;
                }
            }
            self.next_refresh += Picos::from_ps(skip * refi);
        }
        // Remaining commands run back-to-back from their due times; only a
        // refresh still in flight at `now` stalls the arriving request.
        while self.next_refresh <= now {
            let start = self.next_refresh.max(self.busy_until);
            let end = start + t.t_rfc;
            #[cfg(feature = "audit")]
            {
                let at = start.max(self.audit_last_ref_end);
                self.emit(at, CmdKind::Refresh { end: at + t.t_rfc });
                if self.recording {
                    self.audit_last_ref_end = at + t.t_rfc;
                }
            }
            self.busy_until = self.busy_until.max(end);
            self.stats.refresh_count += 1;
            self.stats.refresh_time += t.t_rfc;
            self.next_refresh += t.t_refi;
        }
        self.note_activity(self.busy_until);
    }

    /// Makes sure the rank is out of powerdown, returning the time at which
    /// it can accept a command and whether an exit was performed (explicit
    /// powerdown state *or* the auto-powerdown policy).
    pub fn ensure_awake(&mut self, now: Picos, t: &TimingSet) -> (Picos, bool) {
        match self.state {
            PowerState::Up => {
                if self.settle_auto_pd(now) {
                    let mode = self.auto_pd.expect("settled implies mode");
                    let exit = match mode {
                        PowerDownMode::Fast => t.t_xp,
                        PowerDownMode::Slow => t.t_xpdll,
                    };
                    self.stats.pd_exits += 1;
                    let ready = now.max(self.busy_until) + exit;
                    // The auto-powerdown entry is synthesized retroactively:
                    // the rank dropped CKE at its last activity horizon.
                    #[cfg(feature = "audit")]
                    {
                        let fast = matches!(mode, PowerDownMode::Fast);
                        let entered_at = self.activity_horizon;
                        self.emit(entered_at, CmdKind::PowerDownEnter { fast });
                        self.emit(
                            now,
                            CmdKind::PowerDownExit {
                                fast,
                                entered_at,
                                ready,
                            },
                        );
                    }
                    (ready, true)
                } else {
                    (now.max(self.busy_until), false)
                }
            }
            PowerState::Down(mode) => {
                let exit = match mode {
                    PowerDownMode::Fast => t.t_xp,
                    PowerDownMode::Slow => t.t_xpdll,
                };
                #[cfg(feature = "audit")]
                let entered_at = self.pd_since;
                self.flush_pd(now);
                self.state = PowerState::Up;
                self.stats.pd_exits += 1;
                let ready = now.max(self.busy_until) + exit;
                #[cfg(feature = "audit")]
                self.emit(
                    now,
                    CmdKind::PowerDownExit {
                        fast: matches!(mode, PowerDownMode::Fast),
                        entered_at,
                        ready,
                    },
                );
                (ready, true)
            }
        }
    }

    /// Whether the rank may enter powerdown at `now`: powered up, every bank
    /// precharged and idle, and no rank-wide stall pending.
    pub fn can_power_down(&self, now: Picos) -> bool {
        matches!(self.state, PowerState::Up)
            && self.busy_until <= now
            && self
                .banks
                .iter()
                .all(|b| b.open_row().is_none() && b.free_at() <= now)
    }

    /// Enters powerdown at `now`.
    ///
    /// # Panics
    ///
    /// Panics if [`can_power_down`](Self::can_power_down) is false.
    pub fn enter_power_down(&mut self, mode: PowerDownMode, now: Picos) {
        assert!(self.can_power_down(now), "rank not idle at {now}");
        self.state = PowerState::Down(mode);
        self.pd_since = now;
        #[cfg(feature = "audit")]
        self.emit(
            now,
            CmdKind::PowerDownEnter {
                fast: matches!(mode, PowerDownMode::Fast),
            },
        );
    }

    /// Flushes accumulated powerdown residency into the statistics without
    /// changing state. Call at sampling boundaries.
    pub fn sync(&mut self, now: Picos) {
        self.flush_pd(now);
        self.settle_auto_pd(now);
    }

    fn flush_pd(&mut self, now: Picos) {
        if let PowerState::Down(mode) = self.state {
            let dur = now.saturating_sub(self.pd_since);
            match mode {
                PowerDownMode::Fast => self.stats.fast_pd_time += dur,
                PowerDownMode::Slow => self.stats.slow_pd_time += dur,
            }
            self.pd_since = now;
        }
    }

    /// Quiesces the rank for a frequency re-lock spanning `[now, ready)`:
    /// exits powerdown bookkeeping, closes all banks, stalls until `ready`,
    /// and accounts the window as fast-exit powerdown residency (the paper
    /// re-locks from precharge powerdown, §3.1).
    pub fn relock(&mut self, now: Picos, ready: Picos) {
        self.flush_pd(now);
        self.settle_auto_pd(now);
        self.state = PowerState::Up;
        for bank in &mut self.banks {
            bank.close();
            bank.stall_until(ready);
        }
        self.busy_until = self.busy_until.max(ready);
        self.stats.fast_pd_time += ready.saturating_sub(now);
        self.note_activity(ready);
        self.pd_accounted_until = self.pd_accounted_until.max(ready);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memscale_types::config::DramTimingConfig;
    use memscale_types::freq::MemFreq;

    fn timing() -> TimingSet {
        TimingSet::resolve(&DramTimingConfig::default(), MemFreq::F800)
    }

    fn rank() -> Rank {
        Rank::new(8, Picos::from_us(7))
    }

    #[test]
    fn trrd_spaces_activates() {
        let t = timing();
        let mut r = rank();
        r.record_act(Picos::from_ns(100));
        let earliest = r.earliest_act(Picos::from_ns(100), &t);
        assert_eq!(earliest, Picos::from_ns(105)); // tRRD = 5 ns
    }

    #[test]
    fn tfaw_limits_four_activates() {
        let t = timing();
        let mut r = rank();
        for i in 0..4 {
            r.record_act(Picos::from_ns(i * 5));
        }
        // Fifth ACT must wait until first + tFAW = 0 + 25 ns.
        let earliest = r.earliest_act(Picos::from_ns(16), &t);
        assert_eq!(earliest, Picos::from_ns(25));
    }

    #[test]
    fn in_flight_refresh_stalls_rank() {
        let t = timing();
        let mut r = Rank::new(8, Picos::from_us(1));
        // Arrive 50 ns after the refresh became due: it is still running.
        r.catch_up_refresh(Picos::from_us(1) + Picos::from_ns(50), &t);
        assert_eq!(r.stats().refresh_count, 1);
        assert_eq!(r.busy_until(), Picos::from_us(1) + t.t_rfc);
    }

    #[test]
    fn completed_background_refresh_does_not_stall() {
        let t = timing();
        let mut r = Rank::new(8, Picos::from_us(1));
        // Arrive long after the refresh finished in the background.
        let now = Picos::from_us(5);
        r.catch_up_refresh(now, &t);
        assert_eq!(r.stats().refresh_count, 1);
        assert!(r.busy_until() < now, "background refresh must not stall");
    }

    #[test]
    fn long_idle_accounts_all_refreshes_without_stalling() {
        let t = timing();
        let mut r = Rank::new(8, Picos::from_us(1));
        // Rank idle for a full millisecond: ~128 refreshes ran in the
        // background; all are counted, none stalls the arriving request.
        r.catch_up_refresh(Picos::from_ms(1), &t);
        let count = r.stats().refresh_count;
        assert!((120..=130).contains(&count), "count {count}");
        assert!(r.busy_until() < Picos::from_ms(1));
        // Idempotent at the same instant.
        r.catch_up_refresh(Picos::from_ms(1), &t);
        assert_eq!(r.stats().refresh_count, count);
    }

    #[test]
    fn powerdown_accounting_and_exit_latency() {
        let t = timing();
        let mut r = rank();
        assert!(r.can_power_down(Picos::from_ns(50)));
        r.enter_power_down(PowerDownMode::Fast, Picos::from_ns(50));
        assert!(r.is_powered_down());
        let (ready, exited) = r.ensure_awake(Picos::from_ns(150), &t);
        assert!(exited);
        assert_eq!(ready, Picos::from_ns(156)); // + tXP
        assert_eq!(r.stats().fast_pd_time, Picos::from_ns(100));
        assert_eq!(r.stats().pd_exits, 1);
        assert!(!r.is_powered_down());
    }

    #[test]
    fn slow_powerdown_has_longer_exit() {
        let t = timing();
        let mut r = rank();
        r.enter_power_down(PowerDownMode::Slow, Picos::ZERO);
        let (ready, _) = r.ensure_awake(Picos::from_ns(100), &t);
        assert_eq!(ready, Picos::from_ns(124)); // + tXPDLL
        assert_eq!(r.stats().slow_pd_time, Picos::from_ns(100));
    }

    #[test]
    fn cannot_power_down_with_open_bank() {
        let mut r = rank();
        r.bank_mut(BankId(0)).record_act(5, Picos::ZERO);
        assert!(!r.can_power_down(Picos::from_ns(100)));
    }

    #[test]
    fn sync_flushes_residency_without_exiting() {
        let mut r = rank();
        r.enter_power_down(PowerDownMode::Fast, Picos::ZERO);
        r.sync(Picos::from_us(1));
        assert_eq!(r.stats().fast_pd_time, Picos::from_us(1));
        assert!(r.is_powered_down());
        r.sync(Picos::from_us(2));
        assert_eq!(r.stats().fast_pd_time, Picos::from_us(2));
    }

    #[test]
    fn relock_counts_as_fast_pd_and_stalls() {
        let mut r = rank();
        r.relock(Picos::from_ns(100), Picos::from_ns(768));
        assert_eq!(r.stats().fast_pd_time, Picos::from_ns(668));
        assert_eq!(r.busy_until(), Picos::from_ns(768));
        assert!(!r.is_powered_down());
    }

    #[test]
    fn awake_rank_respects_busy_until() {
        let t = timing();
        let mut r = rank();
        r.relock(Picos::ZERO, Picos::from_ns(500));
        let (ready, exited) = r.ensure_awake(Picos::from_ns(100), &t);
        assert!(!exited);
        assert_eq!(ready, Picos::from_ns(500));
    }
}
