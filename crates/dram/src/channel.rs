//! The per-channel access engine.
//!
//! A [`DramChannel`] owns its ranks and the shared data bus, and resolves
//! each dispatched access into an [`AccessTimeline`]. The engine implements
//! the transfer-blocking structure of the paper's queueing model (Fig 4): a
//! request occupies its bank from activate to precharge and cannot complete
//! until the data bus accepts its burst.

use crate::generation::GenerationModel;
use crate::rank::{PowerDownMode, Rank};
use crate::stats::ChannelStats;
use crate::timing::TimingSet;
use memscale_types::config::DramTimingConfig;
#[cfg(feature = "audit")]
use memscale_types::events::{CmdEvent, CmdKind};
use memscale_types::freq::MemFreq;
#[cfg(feature = "audit")]
use memscale_types::ids::ChannelId;
use memscale_types::ids::{BankId, RankId};
use memscale_types::time::Picos;

/// Whether an access reads a cache line from DRAM or writes one back.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// LLC miss fill (demand read).
    Read,
    /// LLC writeback.
    Write,
}

/// How an access met the row buffer (feeds the paper's RBHC/OBMC/CBMC
/// counters).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RowOutcome {
    /// Target row already open — CAS only.
    Hit,
    /// A different row was open — precharge, activate, CAS.
    OpenMiss,
    /// Bank was precharged — activate, CAS (the common closed-page case).
    ClosedMiss,
}

/// The resolved schedule of one access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessTimeline {
    /// Row-buffer outcome.
    pub outcome: RowOutcome,
    /// Whether servicing required a powerdown exit.
    pub pd_exit: bool,
    /// Whether the exit was from deep power-down (LPDDR generations).
    pub deep_pd_exit: bool,
    /// When the ACT command issued (None on a row hit).
    pub act_at: Option<Picos>,
    /// When the column access effectively issued (after bus back-pressure).
    pub cas_at: Picos,
    /// First beat of the data burst on the bus.
    pub data_start: Picos,
    /// Last beat of the data burst; a read's fill reaches the LLC here.
    pub data_end: Picos,
    /// When the bank can begin its next operation.
    pub bank_free_at: Picos,
}

/// One memory channel: ranks, the shared data bus, and the current
/// frequency-resolved timing.
#[derive(Debug, Clone)]
pub struct DramChannel {
    cfg: DramTimingConfig,
    timing: TimingSet,
    generation: GenerationModel,
    ranks: Vec<Rank>,
    bus_free_at: Picos,
    stats: ChannelStats,
    /// Armed fault-injection overrun: extra latency the next frequency
    /// re-lock pays on top of its 512-cycle + settle budget (one-shot).
    relock_extra: Picos,
    /// Re-locks that consumed an armed overrun.
    relock_overruns: u64,
    /// Recorded command events; channel ids are placeholders re-tagged by
    /// the controller.
    #[cfg(feature = "audit")]
    events: Vec<CmdEvent>,
    /// Whether events are currently being recorded.
    #[cfg(feature = "audit")]
    recording: bool,
    /// Future-dated auto-precharge events not yet committed: a same-row
    /// reopen may still cancel them. Slot = rank index × banks + bank index.
    #[cfg(feature = "audit")]
    pending_pre: Vec<Option<CmdEvent>>,
}

impl DramChannel {
    /// Creates a channel of `ranks` ranks × `banks` banks at `freq`, with
    /// refresh schedules staggered across ranks.
    ///
    /// # Panics
    ///
    /// Panics if `ranks` or `banks` is zero.
    pub fn new(cfg: &DramTimingConfig, ranks: usize, banks: usize, freq: MemFreq) -> Self {
        assert!(ranks > 0 && banks > 0, "channel needs ranks and banks");
        let timing = TimingSet::resolve(cfg, freq);
        let generation = GenerationModel::from_config(cfg);
        #[cfg(feature = "audit")]
        let slots = ranks * banks;
        let ranks = (0..ranks)
            .map(|i| {
                let stagger = Picos::from_ps(timing.t_refi.as_ps() * (i as u64 + 1) / ranks as u64);
                Rank::new(banks, generation.bank_groups(), stagger)
            })
            .collect();
        DramChannel {
            cfg: cfg.clone(),
            timing,
            generation,
            ranks,
            bus_free_at: Picos::ZERO,
            stats: ChannelStats::new(),
            relock_extra: Picos::ZERO,
            relock_overruns: 0,
            #[cfg(feature = "audit")]
            events: Vec::new(),
            #[cfg(feature = "audit")]
            recording: false,
            #[cfg(feature = "audit")]
            pending_pre: vec![None; slots],
        }
    }

    /// Starts or stops recording command events for the protocol auditor on
    /// this channel and all its ranks.
    #[cfg(feature = "audit")]
    pub fn set_event_recording(&mut self, on: bool) {
        self.recording = on;
        for rank in &mut self.ranks {
            rank.set_event_recording(on);
        }
    }

    /// Commits every still-pending auto-precharge into the event log (their
    /// reopen windows are being abandoned).
    #[cfg(feature = "audit")]
    fn commit_pending_pre(&mut self) {
        for slot in &mut self.pending_pre {
            if let Some(e) = slot.take() {
                self.events.push(e);
            }
        }
    }

    /// Drains all recorded events, committing outstanding auto-precharges
    /// and re-tagging rank-level events with their rank id. Channel ids stay
    /// `ChannelId(0)` for the controller to re-tag.
    ///
    /// Drain once, at end of simulation: committing an auto-precharge
    /// forfeits its reopen window in the audit stream, so a later same-row
    /// reopen would disagree with the replay.
    #[cfg(feature = "audit")]
    pub fn drain_events(&mut self) -> Vec<CmdEvent> {
        self.commit_pending_pre();
        let mut events = std::mem::take(&mut self.events);
        for (i, rank) in self.ranks.iter_mut().enumerate() {
            for mut e in rank.drain_events() {
                e.rank = RankId(i);
                events.push(e);
            }
        }
        events
    }

    /// Current operating point.
    #[inline]
    pub fn frequency(&self) -> MemFreq {
        self.timing.freq
    }

    /// The generation model (bank groups, available low-power states) in
    /// effect on this channel.
    #[inline]
    pub fn generation(&self) -> &GenerationModel {
        &self.generation
    }

    /// Current frequency-resolved timing.
    #[inline]
    pub fn timing(&self) -> &TimingSet {
        &self.timing
    }

    /// Cumulative channel statistics.
    #[inline]
    pub fn stats(&self) -> &ChannelStats {
        &self.stats
    }

    /// Cumulative statistics of one rank.
    ///
    /// # Panics
    ///
    /// Panics if `rank` is out of range.
    #[inline]
    pub fn rank_stats(&self, rank: RankId) -> &crate::stats::RankStats {
        self.ranks[rank.index()].stats()
    }

    /// Number of ranks on the channel.
    #[inline]
    pub fn rank_count(&self) -> usize {
        self.ranks.len()
    }

    /// Earliest time the data bus is free.
    #[inline]
    pub fn bus_free_at(&self) -> Picos {
        self.bus_free_at
    }

    /// Earliest time `bank` on `rank` can begin a new operation, ignoring
    /// powerdown/refresh (used by the controller's dispatch heuristics).
    #[inline]
    pub fn bank_free_at(&self, rank: RankId, bank: BankId) -> Picos {
        self.ranks[rank.index()]
            .bank(bank.index().into())
            .free_at()
            .max(self.ranks[rank.index()].busy_until())
    }

    /// Services one access dispatched at `now`, reserving bank, rank-window
    /// and bus resources. `keep_open` tells the engine that the controller
    /// already holds another request for the *same row*, so the row should
    /// stay open (closed-page policy, §4.1).
    ///
    /// # Panics
    ///
    /// Panics if `rank`/`bank` are out of range.
    pub fn service(
        &mut self,
        rank: RankId,
        bank: BankId,
        row: u64,
        kind: AccessKind,
        now: Picos,
        keep_open: bool,
    ) -> AccessTimeline {
        let t = self.timing;
        let group = self.generation.group_of(bank);
        #[cfg(feature = "audit")]
        let slot = rank.index() * self.ranks[0].bank_count() + bank.index();
        let r = &mut self.ranks[rank.index()];
        // Wake first (powerdown exit + residency accounting anchors at the
        // pre-refresh idle horizon), then catch up on refresh arrears.
        let (ready, woke) = r.ensure_awake(now, &t);
        r.catch_up_refresh(now, &t);
        let ready = ready.max(r.busy_until());

        // A same-row request arriving before the previous access's CAS
        // cancels that access's auto-precharge (closed-page keep-open).
        let reopen = r
            .bank(bank)
            .hit_window()
            .filter(|w| w.row == row && now < w.until);

        // A reopen cancels the stashed auto-precharge event; any other
        // access to the bank makes it definitive.
        #[cfg(feature = "audit")]
        if self.recording {
            if reopen.is_some() {
                self.pending_pre[slot] = None;
            } else if let Some(e) = self.pending_pre[slot].take() {
                self.events.push(e);
            }
        }

        // Resolve the row-buffer outcome and the command schedule.
        let (outcome, act_at, cas_ready) = if let Some(w) = reopen {
            r.bank_mut(bank).reopen(row);
            (RowOutcome::Hit, None, ready.max(w.cas_from))
        } else {
            let t0 = ready.max(r.bank(bank).free_at());
            match r.bank(bank).open_row() {
                Some(open) if open == row => (RowOutcome::Hit, None, t0),
                Some(_) => {
                    // Explicit precharge, then activate. The precharge must
                    // clear the open row's tRAS/tRTP/tWR constraints.
                    let last_act = r.bank(bank).last_act().unwrap_or(t0);
                    let pre_at = t0.max(last_act + t.t_ras).max(r.bank(bank).pre_after());
                    #[cfg(feature = "audit")]
                    if self.recording {
                        self.events.push(CmdEvent {
                            at: pre_at,
                            channel: ChannelId(0),
                            rank,
                            bank: Some(bank),
                            kind: CmdKind::Precharge,
                        });
                    }
                    let act = r.earliest_act(group, pre_at + t.t_rp, &t);
                    (RowOutcome::OpenMiss, Some(act), act + t.t_rcd)
                }
                None => {
                    let act = r.earliest_act(group, t0, &t);
                    (RowOutcome::ClosedMiss, Some(act), act + t.t_rcd)
                }
            }
        };
        if let Some(act) = act_at {
            r.record_act(group, act);
            r.bank_mut(bank).record_act(row, act);
            #[cfg(feature = "audit")]
            if self.recording {
                self.events.push(CmdEvent {
                    at: act,
                    channel: ChannelId(0),
                    rank,
                    bank: Some(bank),
                    kind: CmdKind::Activate { row },
                });
            }
        }

        // Same-bank-group CAS pairs respect tCCD_L (binding on DDR4, where
        // it exceeds the burst; elsewhere subsumed by bus serialization).
        let cas_ready = r.earliest_cas(group, cas_ready, &t);
        // Data burst: CAS latency, then wait for the bus (transfer blocking).
        let data_ready = cas_ready + t.t_cl;
        let data_start = data_ready.max(self.bus_free_at);
        let data_end = data_start + t.burst;
        self.bus_free_at = data_end;
        // The CAS the device actually saw, accounting for bus back-pressure.
        let cas_at = data_start - t.t_cl;
        r.record_cas(group, cas_at);
        #[cfg(feature = "audit")]
        if self.recording {
            self.events.push(CmdEvent {
                at: cas_at,
                channel: ChannelId(0),
                rank,
                bank: Some(bank),
                kind: match kind {
                    AccessKind::Read => CmdKind::CasRead {
                        burst_start: data_start,
                        burst_end: data_end,
                    },
                    AccessKind::Write => CmdKind::CasWrite {
                        burst_start: data_start,
                        burst_end: data_end,
                    },
                },
            });
        }

        // Row management: keep open for a pending same-row request, else
        // auto-precharge and arm a reopen opportunity. Either way the bank's
        // next precharge must respect this access's read-to-precharge or
        // write-recovery point (it accumulates across row hits).
        let activity_start = act_at.unwrap_or(cas_at);
        let pre_term = match kind {
            AccessKind::Read => cas_at + t.t_rtp,
            AccessKind::Write => data_end + t.t_wr,
        };
        r.bank_mut(bank).defer_pre_until(pre_term);
        let bank_free_at;
        if keep_open {
            bank_free_at = data_end;
            r.bank_mut(bank).finish_keep_open(row, bank_free_at);
            r.stats_mut().add_active_interval(activity_start, data_end);
        } else {
            let anchor = act_at.or(r.bank(bank).last_act()).unwrap_or(cas_at);
            let pre_at = r.bank(bank).pre_after().max(anchor + t.t_ras);
            bank_free_at = pre_at + t.t_rp;
            r.bank_mut(bank).finish_precharge(bank_free_at);
            #[cfg(feature = "audit")]
            if self.recording {
                self.pending_pre[slot] = Some(CmdEvent {
                    at: pre_at,
                    channel: ChannelId(0),
                    rank,
                    bank: Some(bank),
                    kind: CmdKind::Precharge,
                });
            }
            r.bank_mut(bank).arm_hit_window(crate::bank::HitWindow {
                row,
                cas_from: cas_at + t.burst,
                until: cas_at,
            });
            r.stats_mut()
                .add_active_interval(activity_start, bank_free_at);
        }
        r.note_activity(bank_free_at.max(data_end));

        // Statistics.
        match kind {
            AccessKind::Read => {
                r.stats_mut().record_read_burst(t.burst);
                self.stats.reads += 1;
            }
            AccessKind::Write => {
                r.stats_mut().record_write_burst(t.burst);
                self.stats.writes += 1;
            }
        }
        self.stats.burst_time += t.burst;
        match outcome {
            RowOutcome::Hit => self.stats.row_hits += 1,
            RowOutcome::OpenMiss => self.stats.open_row_misses += 1,
            RowOutcome::ClosedMiss => self.stats.closed_misses += 1,
        }

        AccessTimeline {
            outcome,
            pd_exit: woke.is_some(),
            deep_pd_exit: woke == Some(PowerDownMode::Deep),
            act_at,
            cas_at,
            data_start,
            data_end,
            bank_free_at,
        }
    }

    /// Re-locks the channel to `freq` starting at `now`, returning when the
    /// channel is operational again. The window is spent in precharge
    /// powerdown (§3.1); all banks close and the bus stalls.
    pub fn set_frequency(&mut self, freq: MemFreq, now: Picos) -> Picos {
        if freq == self.timing.freq {
            return now;
        }
        // The switch cannot begin while data is still in flight: drained
        // writebacks may hold the bus past `now`.
        let mut start = now.max(self.bus_free_at);
        // Refresh obligations gate the switch: arrears that became due
        // before it completed in the background at the old timing, and any
        // still in flight push the window's start — a REF may never land
        // inside the re-lock window, nor be starved across a switch chain.
        let old_timing = self.timing;
        for rank in &mut self.ranks {
            rank.catch_up_refresh(start, &old_timing);
            start = start.max(rank.refresh_horizon());
        }
        let mut penalty = TimingSet::relock_penalty(&self.cfg, freq);
        // An armed fault-injection overrun stretches this re-lock (one-shot);
        // the longer window flows into the emitted FreqSwitch event's `ready`
        // horizon, keeping the audit replay consistent with the slow relock.
        if self.relock_extra > Picos::ZERO {
            penalty += self.relock_extra;
            self.relock_extra = Picos::ZERO;
            self.relock_overruns += 1;
        }
        let ready = start + penalty;
        #[cfg(feature = "audit")]
        if self.recording {
            // The relock quiesces every bank, abandoning reopen windows.
            self.commit_pending_pre();
            self.events.push(CmdEvent {
                at: start,
                channel: ChannelId(0),
                rank: RankId(0),
                bank: None,
                kind: CmdKind::FreqSwitch {
                    from_mhz: self.timing.freq.mhz(),
                    to_mhz: freq.mhz(),
                    ready,
                },
            });
        }
        self.timing = TimingSet::resolve(&self.cfg, freq);
        for rank in &mut self.ranks {
            rank.relock(start, ready);
        }
        self.bus_free_at = ready;
        self.stats.relocks += 1;
        self.stats.relock_time += penalty;
        ready
    }

    /// Fault-injection hook: arms a one-shot relock overrun the next
    /// frequency switch pays on top of its budgeted penalty.
    pub fn arm_relock_overrun(&mut self, extra: Picos) {
        self.relock_extra = extra;
    }

    /// Fault-injection hook: arms a one-shot powerdown-exit latency spike on
    /// every rank of the channel (a rank-wide VR droop).
    pub fn arm_pd_exit_spike(&mut self, extra: Picos) {
        for rank in &mut self.ranks {
            rank.arm_pd_exit_spike(extra);
        }
    }

    /// Fault-injection hook: slips the next scheduled REF on every caught-up
    /// rank later by `by` (or, when `by` is one full tREFI, drops one
    /// interval). Returns how many ranks the fault landed on.
    pub fn delay_refresh(&mut self, by: Picos, now: Picos) -> u64 {
        let mut landed = 0;
        for rank in &mut self.ranks {
            if rank.delay_refresh(by, now) {
                landed += 1;
            }
        }
        landed
    }

    /// Re-locks that consumed an armed fault-injection overrun.
    #[inline]
    pub fn relock_overruns(&self) -> u64 {
        self.relock_overruns
    }

    /// Powerdown exits across all ranks that consumed an armed spike.
    pub fn spiked_pd_exits(&self) -> u64 {
        self.ranks.iter().map(Rank::spiked_pd_exits).sum()
    }

    /// Whether `rank` is idle enough to enter powerdown at `now`.
    #[inline]
    pub fn can_power_down(&self, rank: RankId, now: Picos) -> bool {
        self.ranks[rank.index()].can_power_down(now)
    }

    /// Puts `rank` into powerdown at `now`.
    ///
    /// # Panics
    ///
    /// Panics if the rank is not idle (see
    /// [`can_power_down`](Self::can_power_down)).
    pub fn enter_power_down(&mut self, rank: RankId, mode: PowerDownMode, now: Picos) {
        self.ranks[rank.index()].enter_power_down(mode, now);
    }

    /// Whether `rank` is currently powered down.
    #[inline]
    pub fn is_powered_down(&self, rank: RankId) -> bool {
        self.ranks[rank.index()].is_powered_down()
    }

    /// Enables or disables the aggressive idle-powerdown policy on every
    /// rank of the channel (the Fast-PD / Slow-PD baselines of §4.2.3).
    pub fn set_auto_power_down(&mut self, mode: Option<PowerDownMode>) {
        for rank in &mut self.ranks {
            rank.set_auto_power_down(mode);
        }
    }

    /// Flushes time-based accounting (powerdown residency) up to `now` on
    /// every rank. Call at sampling boundaries before reading statistics.
    pub fn sync(&mut self, now: Picos) {
        for rank in &mut self.ranks {
            rank.sync(now);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn channel() -> DramChannel {
        DramChannel::new(&DramTimingConfig::default(), 4, 8, MemFreq::F800)
    }

    fn read(ch: &mut DramChannel, rank: usize, bank: usize, row: u64, now: u64) -> AccessTimeline {
        ch.service(
            RankId(rank),
            BankId(bank),
            row,
            AccessKind::Read,
            Picos::from_ns(now),
            false,
        )
    }

    #[test]
    fn closed_read_takes_trcd_tcl_burst() {
        let mut ch = channel();
        let t = read(&mut ch, 0, 0, 1, 0);
        assert_eq!(t.outcome, RowOutcome::ClosedMiss);
        assert_eq!(t.act_at, Some(Picos::ZERO));
        assert_eq!(t.data_end, Picos::from_ns(35)); // 15 + 15 + 5
    }

    #[test]
    fn row_hit_skips_activate() {
        let mut ch = channel();
        // First access keeps the row open for a pending same-row request.
        ch.service(RankId(0), BankId(0), 7, AccessKind::Read, Picos::ZERO, true);
        let t = read(&mut ch, 0, 0, 7, 40);
        assert_eq!(t.outcome, RowOutcome::Hit);
        assert_eq!(t.act_at, None);
        // CAS + burst only.
        assert_eq!(t.data_end, Picos::from_ns(40 + 15 + 5));
    }

    #[test]
    fn open_miss_pays_precharge() {
        let mut ch = channel();
        ch.service(RankId(0), BankId(0), 7, AccessKind::Read, Picos::ZERO, true);
        // Different row: must wait tRAS from ACT(0), precharge, activate.
        let t = read(&mut ch, 0, 0, 9, 40);
        assert_eq!(t.outcome, RowOutcome::OpenMiss);
        // pre at max(40, 0+35)=40, act at 55, cas 70, data 85..90.
        assert_eq!(t.act_at, Some(Picos::from_ns(55)));
        assert_eq!(t.data_end, Picos::from_ns(90));
    }

    #[test]
    fn bus_serializes_bursts_across_banks() {
        let mut ch = channel();
        let a = read(&mut ch, 0, 0, 1, 0);
        let b = read(&mut ch, 0, 1, 1, 0);
        // Both banks proceed in parallel but bursts may not overlap.
        assert!(b.data_start >= a.data_end);
        assert_eq!(ch.stats().burst_time, Picos::from_ns(10));
    }

    #[test]
    fn same_bank_requests_serialize_on_the_bank() {
        let mut ch = channel();
        let a = read(&mut ch, 0, 0, 1, 0);
        let b = read(&mut ch, 0, 0, 2, 0);
        assert!(b.act_at.unwrap() >= a.bank_free_at);
    }

    #[test]
    fn trrd_spaces_activates_across_banks() {
        let mut ch = channel();
        let a = read(&mut ch, 0, 0, 1, 0);
        let b = read(&mut ch, 0, 1, 1, 0);
        assert_eq!(a.act_at, Some(Picos::ZERO));
        assert_eq!(b.act_at, Some(Picos::from_ns(5))); // tRRD
    }

    #[test]
    fn ranks_have_independent_act_windows() {
        let mut ch = channel();
        let a = read(&mut ch, 0, 0, 1, 0);
        let b = read(&mut ch, 1, 0, 1, 0);
        assert_eq!(a.act_at, Some(Picos::ZERO));
        assert_eq!(b.act_at, Some(Picos::ZERO)); // no tRRD across ranks
    }

    #[test]
    fn writes_use_write_recovery() {
        let mut ch = channel();
        let w = ch.service(
            RankId(0),
            BankId(0),
            1,
            AccessKind::Write,
            Picos::ZERO,
            false,
        );
        // Bank free = data_end + tWR + tRP.
        assert_eq!(w.bank_free_at, w.data_end + Picos::from_ns(30));
        assert_eq!(ch.stats().writes, 1);
    }

    #[test]
    fn powerdown_exit_penalty_applies() {
        let mut ch = channel();
        ch.enter_power_down(RankId(0), PowerDownMode::Fast, Picos::ZERO);
        let t = read(&mut ch, 0, 0, 1, 100);
        assert!(t.pd_exit);
        assert_eq!(t.act_at, Some(Picos::from_ns(106))); // + tXP
        assert!(!ch.is_powered_down(RankId(0)));
    }

    #[test]
    fn frequency_change_stalls_and_slows_bursts() {
        let mut ch = channel();
        let ready = ch.set_frequency(MemFreq::F200, Picos::from_us(1));
        // 512 cycles at 5 ns + 28 ns = 2588 ns.
        assert_eq!(ready, Picos::from_us(1) + Picos::from_ns(2588));
        assert_eq!(ch.frequency(), MemFreq::F200);
        let t = read(&mut ch, 0, 0, 1, 1);
        assert!(t.act_at.unwrap() >= ready);
        assert_eq!(t.data_end - t.data_start, Picos::from_ns(20));
        assert_eq!(ch.stats().relocks, 1);
    }

    #[test]
    fn armed_relock_overrun_is_one_shot() {
        let mut ch = channel();
        ch.arm_relock_overrun(Picos::from_ns(500));
        let ready = ch.set_frequency(MemFreq::F200, Picos::from_us(1));
        // 512 cycles at 5 ns + 28 ns + injected 500 ns.
        assert_eq!(ready, Picos::from_us(1) + Picos::from_ns(3088));
        assert_eq!(ch.relock_overruns(), 1);
        // Consumed: the switch back pays only the nominal penalty.
        let t0 = ready + Picos::from_us(1);
        let back = ch.set_frequency(MemFreq::F800, t0);
        assert_eq!(back, t0 + Picos::from_ps(668_000));
        assert_eq!(ch.relock_overruns(), 1);
    }

    #[test]
    fn channel_pd_spike_reaches_ranks() {
        let mut ch = channel();
        ch.enter_power_down(RankId(0), PowerDownMode::Fast, Picos::ZERO);
        ch.arm_pd_exit_spike(Picos::from_ns(100));
        let t = read(&mut ch, 0, 0, 1, 100);
        assert!(t.pd_exit);
        assert_eq!(t.act_at, Some(Picos::from_ns(206))); // tXP + 100 ns
        assert_eq!(ch.spiked_pd_exits(), 1);
    }

    #[test]
    fn set_same_frequency_is_free() {
        let mut ch = channel();
        let ready = ch.set_frequency(MemFreq::F800, Picos::from_us(1));
        assert_eq!(ready, Picos::from_us(1));
        assert_eq!(ch.stats().relocks, 0);
    }

    #[test]
    fn refresh_eventually_stalls_accesses() {
        let mut ch = channel();
        // Access far past the first scheduled refresh of rank 0.
        let t = read(&mut ch, 0, 0, 1, 20_000); // 20 us
                                                // At least one refresh must have been processed.
        assert!(ch.rank_stats(RankId(0)).refresh_count >= 1);
        assert!(t.act_at.unwrap() >= Picos::from_us(20));
    }

    #[test]
    fn row_outcome_counters_track() {
        let mut ch = channel();
        ch.service(RankId(0), BankId(0), 7, AccessKind::Read, Picos::ZERO, true);
        read(&mut ch, 0, 0, 7, 40);
        read(&mut ch, 0, 1, 1, 80);
        let s = ch.stats();
        assert_eq!(s.row_hits, 1);
        assert_eq!(s.closed_misses, 2);
        assert_eq!(s.total_accesses(), 3);
    }

    #[test]
    fn sync_flushes_pd_time() {
        let mut ch = channel();
        ch.enter_power_down(RankId(2), PowerDownMode::Slow, Picos::ZERO);
        ch.sync(Picos::from_us(3));
        assert_eq!(ch.rank_stats(RankId(2)).slow_pd_time, Picos::from_us(3));
    }

    fn ddr4_channel() -> DramChannel {
        DramChannel::new(&DramTimingConfig::ddr4(), 2, 16, MemFreq::F800)
    }

    #[test]
    fn ddr4_tccd_l_spaces_same_group_cas_beyond_the_burst() {
        // Banks 0 and 4 share group 0; banks 0 and 1 do not.
        let mut same = ddr4_channel();
        let a = read(&mut same, 0, 0, 1, 0);
        let b = same.service(
            RankId(0),
            BankId(4),
            1,
            AccessKind::Read,
            Picos::ZERO,
            false,
        );
        let t_ccd_l = same.timing().t_ccd_l;
        assert!(t_ccd_l > same.timing().burst);
        assert!(b.cas_at >= a.cas_at + t_ccd_l);

        let mut cross = ddr4_channel();
        let c = read(&mut cross, 0, 0, 1, 0);
        let d = read(&mut cross, 0, 1, 1, 0);
        // Cross-group pairs are limited only by the burst (tCCD_S).
        assert!(d.cas_at < c.cas_at + t_ccd_l);
        assert!(d.data_start >= c.data_end);
    }

    #[test]
    fn ddr4_trrd_l_spaces_same_group_activates() {
        let mut ch = ddr4_channel();
        let a = read(&mut ch, 0, 0, 1, 0);
        let b = ch.service(
            RankId(0),
            BankId(4),
            1,
            AccessKind::Read,
            Picos::ZERO,
            false,
        );
        // Same group: tRRD_L = 7.5 ns, not plain tRRD = 5 ns.
        assert_eq!(a.act_at, Some(Picos::ZERO));
        assert_eq!(b.act_at, Some(Picos::from_ps(7_500)));
    }

    #[test]
    fn deep_powerdown_round_trip_counts_edpc() {
        let mut ch = DramChannel::new(&DramTimingConfig::lpddr3(), 2, 8, MemFreq::F800);
        ch.enter_power_down(RankId(0), PowerDownMode::Deep, Picos::ZERO);
        assert!(ch.is_powered_down(RankId(0)));
        let t = read(&mut ch, 0, 0, 1, 5000);
        assert!(t.pd_exit && t.deep_pd_exit);
        let s = ch.rank_stats(RankId(0));
        assert_eq!(s.deep_pd_exits, 1);
        assert_eq!(s.deep_pd_time, Picos::from_us(5));
        // ACT waits out the 500 ns deep-powerdown exit.
        assert!(t.act_at.unwrap() >= Picos::from_us(5) + Picos::from_ns(500));
    }
}
