//! Cycle-approximate DRAM timing model for the MemScale simulator,
//! pluggable across DDR3 (the paper's baseline), DDR4 and LPDDR3 via
//! [`generation::GenerationModel`].
//!
//! The model is *event-analytic*: instead of stepping every DRAM clock, each
//! access is resolved into an [`channel::AccessTimeline`] the
//! moment the memory controller dispatches it, reserving the bank, rank and
//! data-bus resources it needs. This reproduces the latency structure the
//! paper reasons about — activate (tRCD), column access (tCL), precharge
//! (tRP), burst transfer (4 bus cycles), rank-level tRRD/tFAW constraints,
//! refresh, and powerdown exit latencies — at a tiny fraction of the cost of
//! a per-cycle simulator.
//!
//! Frequency scaling follows §2.2 of the paper exactly: DRAM-core operations
//! keep their wall-clock latency while burst transfers stretch linearly with
//! the bus period; re-locking to a new frequency costs 512 memory cycles plus
//! 28 ns spent in precharge powerdown.
//!
//! # Example
//!
//! ```
//! use memscale_dram::channel::{AccessKind, DramChannel};
//! use memscale_types::{config::DramTimingConfig, freq::MemFreq, time::Picos};
//! use memscale_types::ids::{BankId, RankId};
//!
//! let cfg = DramTimingConfig::default();
//! let mut ch = DramChannel::new(&cfg, 4, 8, MemFreq::F800);
//! let t = ch.service(RankId(0), BankId(0), 42, AccessKind::Read, Picos::ZERO, false);
//! // Closed bank: ACT + CAS + burst = 15 ns + 15 ns + 5 ns.
//! assert_eq!(t.data_end, Picos::from_ns(35));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bank;
pub mod channel;
pub mod generation;
pub mod rank;
pub mod stats;
pub mod timing;

pub use bank::HitWindow;
pub use channel::{AccessKind, AccessTimeline, DramChannel, RowOutcome};
pub use generation::GenerationModel;
pub use rank::PowerDownMode;
pub use stats::{ChannelStats, RankStats};
pub use timing::TimingSet;
