//! Property tests using the protocol auditor as an independent oracle.
//!
//! The access engine in `channel.rs` derives each command's issue time from
//! incremental per-bank/per-rank state; the auditor replays the recorded
//! command stream against a from-scratch model of the same generation's
//! rules. Any random access stream — including streams with frequency
//! switches landing in the middle of open `tFAW`/`tRRD` activate windows,
//! DDR4 bank-group `tCCD_L`/`tRRD_L` chains, or LPDDR3 deep power-down
//! intervals — must replay clean.

use memscale_audit::{ProtocolAuditor, Rule};
use memscale_dram::channel::{AccessKind, DramChannel};
use memscale_dram::rank::PowerDownMode;
use memscale_types::config::DramTimingConfig;
use memscale_types::freq::MemFreq;
use memscale_types::ids::{BankId, RankId};
use memscale_types::time::Picos;
use proptest::prelude::*;

const RANKS: usize = 4;
const BANKS: usize = 8;

#[derive(Debug, Clone)]
struct Access {
    rank: usize,
    bank: usize,
    row: u64,
    write: bool,
    keep_open: bool,
    gap_ns: u64,
}

fn access_strategy() -> impl Strategy<Value = Access> {
    (
        0usize..RANKS,
        0usize..BANKS,
        0u64..64,
        any::<bool>(),
        any::<bool>(),
        0u64..200,
    )
        .prop_map(|(rank, bank, row, write, keep_open, gap_ns)| Access {
            rank,
            bank,
            row,
            write,
            keep_open,
            gap_ns,
        })
}

/// Replays `accesses` through a recording channel of `ranks` × `banks` at
/// `cfg`, injecting a frequency switch before every `switch_every`-th access
/// (targeting a pseudo-random operating point derived from the access) and —
/// when `deep_pd_every` is nonzero — opportunistically dropping the access's
/// rank into deep power-down before every `deep_pd_every`-th access, then
/// audits the stream against the same configuration.
fn run_and_audit_cfg(
    cfg: &DramTimingConfig,
    ranks: usize,
    banks: usize,
    accesses: &[Access],
    switch_every: usize,
    deep_pd_every: usize,
    initial: MemFreq,
) -> memscale_audit::AuditReport {
    let mut ch = DramChannel::new(cfg, ranks, banks, initial);
    ch.set_event_recording(true);
    let mut now = Picos::ZERO;
    for (i, a) in accesses.iter().enumerate() {
        now += Picos::from_ns(a.gap_ns);
        if switch_every > 0 && i % switch_every == switch_every - 1 {
            let target = MemFreq::ALL[(usize::try_from(a.row).unwrap() + i) % MemFreq::ALL.len()];
            ch.set_frequency(target, now);
        }
        if deep_pd_every > 0 && i % deep_pd_every == deep_pd_every - 1 {
            // Power down a rank other than the one about to be accessed, so
            // the entry gets a chance to accumulate residency before a later
            // access wakes it.
            let rank = RankId((a.rank + 1) % ranks);
            if ch.can_power_down(rank, now) {
                ch.enter_power_down(rank, PowerDownMode::Deep, now);
            }
        }
        let kind = if a.write {
            AccessKind::Write
        } else {
            AccessKind::Read
        };
        ch.service(
            RankId(a.rank % ranks),
            BankId(a.bank % banks),
            a.row,
            kind,
            now,
            a.keep_open,
        );
    }
    let events = ch.drain_events();
    let mut auditor = ProtocolAuditor::new(cfg, 1, ranks, banks, initial);
    auditor.ingest(&events);
    auditor.finalize()
}

/// DDR3 shorthand for [`run_and_audit_cfg`].
fn run_and_audit(
    accesses: &[Access],
    switch_every: usize,
    initial: MemFreq,
) -> memscale_audit::AuditReport {
    let cfg = DramTimingConfig::default();
    run_and_audit_cfg(&cfg, RANKS, BANKS, accesses, switch_every, 0, initial)
}

fn freq_strategy() -> impl Strategy<Value = MemFreq> {
    (0usize..MemFreq::ALL.len()).prop_map(|i| MemFreq::ALL[i])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Arbitrary read/write/keep-open streams replay with zero violations.
    #[test]
    fn random_streams_conform(
        accesses in prop::collection::vec(access_strategy(), 1..150),
        initial in freq_strategy(),
    ) {
        let report = run_and_audit(&accesses, 0, initial);
        prop_assert!(report.is_clean(), "{}", report);
        prop_assert!(report.commands_checked >= accesses.len());
    }

    /// Frequency switches landing mid-stream — including inside open tFAW
    /// four-activate windows and tRRD spacing chains — never produce a
    /// protocol violation: the relock must quiesce the channel first.
    #[test]
    fn freq_switches_inside_act_windows_conform(
        accesses in prop::collection::vec(access_strategy(), 8..120),
        switch_every in 2usize..9,
        initial in freq_strategy(),
    ) {
        let report = run_and_audit(&accesses, switch_every, initial);
        prop_assert!(report.is_clean(), "{}", report);
    }

    /// Dense same-rank activate bursts right up against a switch: the
    /// specific tFAW/tRRD rules stay silent.
    #[test]
    fn tfaw_window_survives_a_switch(
        rows in prop::collection::vec(0u64..64, 5..12),
        switch_at in 1usize..5,
        target in freq_strategy(),
    ) {
        let cfg = DramTimingConfig::default();
        let mut ch = DramChannel::new(&cfg, RANKS, BANKS, MemFreq::F800);
        ch.set_event_recording(true);
        // All ACTs on one rank, distinct banks, dispatched at the same
        // instant: the engine must space them by tRRD/tFAW on its own.
        for (i, &row) in rows.iter().enumerate() {
            if i == switch_at {
                ch.set_frequency(target, Picos::from_ns(1));
            }
            ch.service(
                RankId(0),
                BankId(i % BANKS),
                row,
                AccessKind::Read,
                Picos::from_ns(1),
                false,
            );
        }
        let events = ch.drain_events();
        let mut auditor = ProtocolAuditor::new(&cfg, 1, RANKS, BANKS, MemFreq::F800);
        auditor.ingest(&events);
        let report = auditor.finalize();
        let fired: Vec<Rule> = report.violations.iter().map(|v| v.rule).collect();
        prop_assert!(!fired.contains(&Rule::TFaw), "{}", report);
        prop_assert!(!fired.contains(&Rule::TRrd), "{}", report);
        prop_assert!(report.is_clean(), "{}", report);
    }

    /// DDR4 bank-group scheduling: arbitrary streams — with frequency
    /// switches landing inside open same-group tCCD_L/tRRD_L chains — replay
    /// clean against the DDR4 rule pack. Banks 0–7 of a 16-bank rank cover
    /// every group twice, so same-group CAS pairs occur constantly.
    #[test]
    fn ddr4_bank_group_streams_conform(
        accesses in prop::collection::vec(access_strategy(), 8..150),
        switch_every in 0usize..9,
        initial in freq_strategy(),
    ) {
        let cfg = DramTimingConfig::ddr4();
        let report = run_and_audit_cfg(&cfg, 2, 16, &accesses, switch_every, 0, initial);
        prop_assert!(report.is_clean(), "{}", report);
        prop_assert!(report.commands_checked >= accesses.len());
    }

    /// Dense DDR4 same-group bursts (banks 0 and 4, group 0) dispatched at
    /// one instant across a mid-chain switch: the bank-group rules
    /// specifically stay silent.
    #[test]
    fn ddr4_same_group_chain_survives_a_switch(
        rows in prop::collection::vec(0u64..64, 4..10),
        switch_at in 1usize..4,
        target in freq_strategy(),
    ) {
        let cfg = DramTimingConfig::ddr4();
        let mut ch = DramChannel::new(&cfg, 2, 16, MemFreq::F800);
        ch.set_event_recording(true);
        for (i, &row) in rows.iter().enumerate() {
            if i == switch_at {
                ch.set_frequency(target, Picos::from_ns(1));
            }
            // Alternate between the two group-0 banks of rank 0.
            ch.service(
                RankId(0),
                BankId(if i % 2 == 0 { 0 } else { 4 }),
                row,
                AccessKind::Read,
                Picos::from_ns(1),
                false,
            );
        }
        let events = ch.drain_events();
        let mut auditor = ProtocolAuditor::new(&cfg, 1, 2, 16, MemFreq::F800);
        auditor.ingest(&events);
        let report = auditor.finalize();
        let fired: Vec<Rule> = report.violations.iter().map(|v| v.rule).collect();
        prop_assert!(!fired.contains(&Rule::TCcdL), "{}", report);
        prop_assert!(!fired.contains(&Rule::TRrdL), "{}", report);
        prop_assert!(report.is_clean(), "{}", report);
    }

    /// LPDDR3 streams with opportunistic deep power-down entries, per-bank
    /// refresh catch-up and frequency switches replay clean — every exit
    /// pays tXDPD and every per-bank REF lands on schedule.
    #[test]
    fn lpddr3_deep_pd_streams_conform(
        accesses in prop::collection::vec(access_strategy(), 8..150),
        switch_every in 0usize..9,
        pd_every in 1usize..7,
        initial in freq_strategy(),
    ) {
        let cfg = DramTimingConfig::lpddr3();
        let report =
            run_and_audit_cfg(&cfg, RANKS, BANKS, &accesses, switch_every, pd_every, initial);
        prop_assert!(report.is_clean(), "{}", report);
    }
}
