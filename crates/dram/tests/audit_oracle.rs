//! Property tests using the protocol auditor as an independent oracle.
//!
//! The access engine in `channel.rs` derives each command's issue time from
//! incremental per-bank/per-rank state; the auditor replays the recorded
//! command stream against a from-scratch model of the same DDR3 rules. Any
//! random access stream — including streams with frequency switches landing
//! in the middle of open `tFAW`/`tRRD` activate windows — must replay clean.

use memscale_audit::{ProtocolAuditor, Rule};
use memscale_dram::channel::{AccessKind, DramChannel};
use memscale_types::config::DramTimingConfig;
use memscale_types::freq::MemFreq;
use memscale_types::ids::{BankId, RankId};
use memscale_types::time::Picos;
use proptest::prelude::*;

const RANKS: usize = 4;
const BANKS: usize = 8;

#[derive(Debug, Clone)]
struct Access {
    rank: usize,
    bank: usize,
    row: u64,
    write: bool,
    keep_open: bool,
    gap_ns: u64,
}

fn access_strategy() -> impl Strategy<Value = Access> {
    (
        0usize..RANKS,
        0usize..BANKS,
        0u64..64,
        any::<bool>(),
        any::<bool>(),
        0u64..200,
    )
        .prop_map(|(rank, bank, row, write, keep_open, gap_ns)| Access {
            rank,
            bank,
            row,
            write,
            keep_open,
            gap_ns,
        })
}

/// Replays `accesses` through a recording channel, injecting a frequency
/// switch before every access whose index is in `switch_points` (targeting a
/// pseudo-random operating point derived from the access), then audits the
/// stream against the same configuration.
fn run_and_audit(
    accesses: &[Access],
    switch_every: usize,
    initial: MemFreq,
) -> memscale_audit::AuditReport {
    let cfg = DramTimingConfig::default();
    let mut ch = DramChannel::new(&cfg, RANKS, BANKS, initial);
    ch.set_event_recording(true);
    let mut now = Picos::ZERO;
    for (i, a) in accesses.iter().enumerate() {
        now += Picos::from_ns(a.gap_ns);
        if switch_every > 0 && i % switch_every == switch_every - 1 {
            let target = MemFreq::ALL[(usize::try_from(a.row).unwrap() + i) % MemFreq::ALL.len()];
            ch.set_frequency(target, now);
        }
        let kind = if a.write {
            AccessKind::Write
        } else {
            AccessKind::Read
        };
        ch.service(
            RankId(a.rank),
            BankId(a.bank),
            a.row,
            kind,
            now,
            a.keep_open,
        );
    }
    let events = ch.drain_events();
    let mut auditor = ProtocolAuditor::new(&cfg, 1, RANKS, BANKS, initial);
    auditor.ingest(&events);
    auditor.finalize()
}

fn freq_strategy() -> impl Strategy<Value = MemFreq> {
    (0usize..MemFreq::ALL.len()).prop_map(|i| MemFreq::ALL[i])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Arbitrary read/write/keep-open streams replay with zero violations.
    #[test]
    fn random_streams_conform(
        accesses in prop::collection::vec(access_strategy(), 1..150),
        initial in freq_strategy(),
    ) {
        let report = run_and_audit(&accesses, 0, initial);
        prop_assert!(report.is_clean(), "{}", report);
        prop_assert!(report.commands_checked >= accesses.len());
    }

    /// Frequency switches landing mid-stream — including inside open tFAW
    /// four-activate windows and tRRD spacing chains — never produce a
    /// protocol violation: the relock must quiesce the channel first.
    #[test]
    fn freq_switches_inside_act_windows_conform(
        accesses in prop::collection::vec(access_strategy(), 8..120),
        switch_every in 2usize..9,
        initial in freq_strategy(),
    ) {
        let report = run_and_audit(&accesses, switch_every, initial);
        prop_assert!(report.is_clean(), "{}", report);
    }

    /// Dense same-rank activate bursts right up against a switch: the
    /// specific tFAW/tRRD rules stay silent.
    #[test]
    fn tfaw_window_survives_a_switch(
        rows in prop::collection::vec(0u64..64, 5..12),
        switch_at in 1usize..5,
        target in freq_strategy(),
    ) {
        let cfg = DramTimingConfig::default();
        let mut ch = DramChannel::new(&cfg, RANKS, BANKS, MemFreq::F800);
        ch.set_event_recording(true);
        // All ACTs on one rank, distinct banks, dispatched at the same
        // instant: the engine must space them by tRRD/tFAW on its own.
        for (i, &row) in rows.iter().enumerate() {
            if i == switch_at {
                ch.set_frequency(target, Picos::from_ns(1));
            }
            ch.service(
                RankId(0),
                BankId(i % BANKS),
                row,
                AccessKind::Read,
                Picos::from_ns(1),
                false,
            );
        }
        let events = ch.drain_events();
        let mut auditor = ProtocolAuditor::new(&cfg, 1, RANKS, BANKS, MemFreq::F800);
        auditor.ingest(&events);
        let report = auditor.finalize();
        let fired: Vec<Rule> = report.violations.iter().map(|v| v.rule).collect();
        prop_assert!(!fired.contains(&Rule::TFaw), "{}", report);
        prop_assert!(!fired.contains(&Rule::TRrd), "{}", report);
        prop_assert!(report.is_clean(), "{}", report);
    }
}
