//! Property-based tests of the DDR3 access engine's timing invariants.

use memscale_dram::channel::{AccessKind, DramChannel};
use memscale_dram::timing::TimingSet;
use memscale_types::config::DramTimingConfig;
use memscale_types::freq::MemFreq;
use memscale_types::ids::{BankId, RankId};
use memscale_types::time::Picos;
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct Access {
    rank: usize,
    bank: usize,
    row: u64,
    write: bool,
    gap_ns: u64,
}

fn access_strategy() -> impl Strategy<Value = Access> {
    (0usize..4, 0usize..8, 0u64..64, any::<bool>(), 0u64..200).prop_map(
        |(rank, bank, row, write, gap_ns)| Access {
            rank,
            bank,
            row,
            write,
            gap_ns,
        },
    )
}

fn freq_strategy() -> impl Strategy<Value = MemFreq> {
    (0usize..MemFreq::ALL.len()).prop_map(|i| MemFreq::ALL[i])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every access's schedule is internally ordered and the shared data
    /// bus never carries two bursts at once.
    #[test]
    fn schedules_are_ordered_and_bus_is_exclusive(
        accesses in prop::collection::vec(access_strategy(), 1..120),
        freq in freq_strategy(),
    ) {
        let cfg = DramTimingConfig::default();
        let mut ch = DramChannel::new(&cfg, 4, 8, freq);
        let mut now = Picos::ZERO;
        let mut last_burst_end = Picos::ZERO;
        for a in &accesses {
            now += Picos::from_ns(a.gap_ns);
            let kind = if a.write { AccessKind::Write } else { AccessKind::Read };
            let t = ch.service(RankId(a.rank), BankId(a.bank), a.row, kind, now, false);
            // Internal ordering.
            prop_assert!(t.data_start >= t.cas_at);
            prop_assert_eq!(t.data_end - t.data_start, ch.timing().burst);
            if let Some(act) = t.act_at {
                prop_assert!(act >= now);
                prop_assert!(t.cas_at >= act + ch.timing().t_rcd);
            }
            // Bus exclusivity: bursts are issued in dispatch order and must
            // not overlap.
            prop_assert!(t.data_start >= last_burst_end);
            last_burst_end = t.data_end;
            // The bank is reserved at least until after its column access
            // (auto-precharge may legally overlap a slow burst's tail, so
            // `bank_free_at` can precede `data_end` at low frequencies).
            prop_assert!(t.bank_free_at > t.cas_at);
        }
    }

    /// Rank-level ACT constraints (tRRD and tFAW) hold for any stream.
    #[test]
    fn act_spacing_respects_trrd_and_tfaw(
        accesses in prop::collection::vec(access_strategy(), 1..120),
        freq in freq_strategy(),
    ) {
        let cfg = DramTimingConfig::default();
        let t = TimingSet::resolve(&cfg, freq);
        let mut ch = DramChannel::new(&cfg, 4, 8, freq);
        let mut now = Picos::ZERO;
        let mut acts: Vec<Vec<Picos>> = vec![Vec::new(); 4];
        for a in &accesses {
            now += Picos::from_ns(a.gap_ns);
            let tl = ch.service(
                RankId(a.rank),
                BankId(a.bank),
                a.row,
                AccessKind::Read,
                now,
                false,
            );
            if let Some(act) = tl.act_at {
                let hist = &mut acts[a.rank];
                if let Some(&prev) = hist.last() {
                    prop_assert!(act >= prev + t.t_rrd, "tRRD violated: {prev} -> {act}");
                }
                if hist.len() >= 4 {
                    let fourth_back = hist[hist.len() - 4];
                    prop_assert!(
                        act >= fourth_back + t.t_faw,
                        "tFAW violated: {fourth_back} -> {act}"
                    );
                }
                hist.push(act);
            }
        }
    }

    /// Cumulative statistics are consistent with the access stream.
    #[test]
    fn stats_match_the_stream(
        accesses in prop::collection::vec(access_strategy(), 1..100),
        freq in freq_strategy(),
    ) {
        let cfg = DramTimingConfig::default();
        let mut ch = DramChannel::new(&cfg, 4, 8, freq);
        let mut now = Picos::ZERO;
        let mut reads = 0u64;
        let mut writes = 0u64;
        for a in &accesses {
            now += Picos::from_ns(a.gap_ns);
            let kind = if a.write { AccessKind::Write } else { AccessKind::Read };
            ch.service(RankId(a.rank), BankId(a.bank), a.row, kind, now, false);
            if a.write { writes += 1 } else { reads += 1 }
        }
        let s = ch.stats();
        prop_assert_eq!(s.reads, reads);
        prop_assert_eq!(s.writes, writes);
        prop_assert_eq!(s.total_accesses(), reads + writes);
        prop_assert_eq!(s.burst_time, ch.timing().burst * (reads + writes));
        // Per-rank burst counts must add up too.
        let rank_bursts: u64 = (0..4)
            .map(|r| {
                let rs = ch.rank_stats(RankId(r));
                rs.read_bursts + rs.write_bursts
            })
            .sum();
        prop_assert_eq!(rank_bursts, reads + writes);
    }

    /// Identical access streams at lower frequency never finish earlier.
    #[test]
    fn lower_frequency_is_never_faster(
        accesses in prop::collection::vec(access_strategy(), 1..80),
    ) {
        let cfg = DramTimingConfig::default();
        let mut fast = DramChannel::new(&cfg, 4, 8, MemFreq::F800);
        let mut slow = DramChannel::new(&cfg, 4, 8, MemFreq::F267);
        let mut now = Picos::ZERO;
        for a in &accesses {
            now += Picos::from_ns(a.gap_ns);
            let kind = if a.write { AccessKind::Write } else { AccessKind::Read };
            let tf = fast.service(RankId(a.rank), BankId(a.bank), a.row, kind, now, false);
            let ts = slow.service(RankId(a.rank), BankId(a.bank), a.row, kind, now, false);
            prop_assert!(ts.data_end >= tf.data_end, "slow {} < fast {}", ts.data_end, tf.data_end);
        }
    }

    /// Activity accounting never exceeds wall-clock time per rank.
    #[test]
    fn active_time_bounded_by_wall_clock(
        accesses in prop::collection::vec(access_strategy(), 1..100),
        freq in freq_strategy(),
    ) {
        let cfg = DramTimingConfig::default();
        let mut ch = DramChannel::new(&cfg, 4, 8, freq);
        let mut now = Picos::ZERO;
        let mut horizon = Picos::ZERO;
        for a in &accesses {
            now += Picos::from_ns(a.gap_ns);
            let t = ch.service(RankId(a.rank), BankId(a.bank), a.row, AccessKind::Read, now, false);
            horizon = horizon.max(t.bank_free_at).max(t.data_end);
        }
        ch.sync(horizon);
        for r in 0..4 {
            let s = ch.rank_stats(RankId(r));
            prop_assert!(
                s.active_time <= horizon,
                "rank {r} active {} > horizon {horizon}",
                s.active_time
            );
            prop_assert!(s.pd_time() <= horizon);
        }
    }
}
