//! Power-breakdown structs matching the categories of Figs 2 and 10.

use std::ops::{Add, AddAssign};

/// Instantaneous memory-subsystem power, split by the paper's categories
/// (W). Fig 2 plots exactly these six components.
#[derive(Debug, Default, Clone, Copy, PartialEq)]
pub struct MemoryPowerBreakdown {
    /// DRAM background power: standby + powerdown + refresh.
    pub background_w: f64,
    /// DRAM activate/precharge power.
    pub act_pre_w: f64,
    /// DRAM read/write burst power.
    pub rd_wr_w: f64,
    /// Termination power on non-target DIMMs.
    pub term_w: f64,
    /// DIMM PLL power.
    pub pll_w: f64,
    /// DIMM register power.
    pub reg_w: f64,
    /// Memory-controller power.
    pub mc_w: f64,
}

impl MemoryPowerBreakdown {
    /// Total memory-subsystem power (W).
    #[inline]
    pub fn total_w(&self) -> f64 {
        self.background_w
            + self.act_pre_w
            + self.rd_wr_w
            + self.term_w
            + self.pll_w
            + self.reg_w
            + self.mc_w
    }

    /// Combined PLL + register power (the paper's "PLL/REG" category).
    #[inline]
    pub fn pll_reg_w(&self) -> f64 {
        self.pll_w + self.reg_w
    }

    /// DRAM-device power only (background + act/pre + rd/wr + termination).
    #[inline]
    pub fn dram_w(&self) -> f64 {
        self.background_w + self.act_pre_w + self.rd_wr_w + self.term_w
    }

    /// Scales every component by `factor` (e.g. to convert a per-channel
    /// figure to a system figure, or power × time to energy).
    #[inline]
    pub fn scaled(&self, factor: f64) -> MemoryPowerBreakdown {
        MemoryPowerBreakdown {
            background_w: self.background_w * factor,
            act_pre_w: self.act_pre_w * factor,
            rd_wr_w: self.rd_wr_w * factor,
            term_w: self.term_w * factor,
            pll_w: self.pll_w * factor,
            reg_w: self.reg_w * factor,
            mc_w: self.mc_w * factor,
        }
    }
}

impl Add for MemoryPowerBreakdown {
    type Output = MemoryPowerBreakdown;
    fn add(self, rhs: MemoryPowerBreakdown) -> MemoryPowerBreakdown {
        MemoryPowerBreakdown {
            background_w: self.background_w + rhs.background_w,
            act_pre_w: self.act_pre_w + rhs.act_pre_w,
            rd_wr_w: self.rd_wr_w + rhs.rd_wr_w,
            term_w: self.term_w + rhs.term_w,
            pll_w: self.pll_w + rhs.pll_w,
            reg_w: self.reg_w + rhs.reg_w,
            mc_w: self.mc_w + rhs.mc_w,
        }
    }
}

impl AddAssign for MemoryPowerBreakdown {
    fn add_assign(&mut self, rhs: MemoryPowerBreakdown) {
        *self = *self + rhs;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> MemoryPowerBreakdown {
        MemoryPowerBreakdown {
            background_w: 10.0,
            act_pre_w: 2.0,
            rd_wr_w: 3.0,
            term_w: 1.0,
            pll_w: 4.0,
            reg_w: 2.0,
            mc_w: 8.0,
        }
    }

    #[test]
    fn totals() {
        let b = sample();
        assert_eq!(b.total_w(), 30.0);
        assert_eq!(b.pll_reg_w(), 6.0);
        assert_eq!(b.dram_w(), 16.0);
    }

    #[test]
    fn add_and_scale() {
        let b = sample();
        let doubled = b + b;
        assert_eq!(doubled.total_w(), 60.0);
        assert_eq!(b.scaled(0.5).total_w(), 15.0);
        let mut acc = MemoryPowerBreakdown::default();
        acc += b;
        assert_eq!(acc, b);
    }
}
