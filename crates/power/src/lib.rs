//! Power and energy models for the MemScale memory subsystem.
//!
//! Implements the three §2.1 power categories the paper manages:
//!
//! * **DRAM power** via the public Micron DDR3 methodology — state-fraction
//!   background power (active/precharged standby, precharge powerdown),
//!   per-event activate/precharge energy, read/write burst power,
//!   termination on non-target DIMMs, and refresh ([`dram_power`]).
//! * **Register/PLL power** per DIMM — register power scales with channel
//!   utilization between idle and peak, PLL power is utilization-independent;
//!   both scale linearly with channel frequency (§4.1).
//! * **Memory-controller power** — scales with utilization between idle and
//!   peak, and with `V²·f` across DVFS operating points (§2.2).
//!
//! The same model serves two callers: the simulator computes *actual* power
//! from observed [`memscale_dram::stats`] deltas, and the MemScale policy
//! *predicts* power at candidate frequencies from a profiled
//! [`summary::ActivitySummary`] (Eq 10's `P_Mem(f)`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod breakdown;
pub mod dram_power;
pub mod energy;
pub mod model;
pub mod summary;

pub use breakdown::MemoryPowerBreakdown;
pub use energy::EnergyAccount;
pub use model::PowerModel;
pub use summary::ActivitySummary;
