//! Energy integration over a run.
//!
//! The simulator calls [`EnergyAccount::add`] once per accounting segment
//! (epoch or sub-epoch window), accumulating joules per power category plus
//! rest-of-system energy. Savings comparisons against a baseline run
//! implement the percentages of Figs 5, 9, 12–15.

use crate::breakdown::MemoryPowerBreakdown;
use memscale_types::time::Picos;

/// Accumulated energy of one run, by component (joules).
#[derive(Debug, Default, Clone, Copy, PartialEq)]
pub struct EnergyAccount {
    /// Per-category memory energy; field values are joules, not watts.
    pub memory_j: MemoryPowerBreakdown,
    /// Rest-of-system energy (J).
    pub rest_j: f64,
    /// Total simulated time covered.
    pub elapsed: Picos,
}

impl EnergyAccount {
    /// An empty account.
    pub fn new() -> Self {
        EnergyAccount::default()
    }

    /// Integrates `power` (W) and `rest_w` (W) over `dt`.
    pub fn add(&mut self, power: &MemoryPowerBreakdown, rest_w: f64, dt: Picos) {
        let s = dt.as_secs_f64();
        self.memory_j += power.scaled(s);
        self.rest_j += rest_w * s;
        self.elapsed += dt;
    }

    /// Total memory-subsystem energy (J).
    #[inline]
    pub fn memory_total_j(&self) -> f64 {
        self.memory_j.total_w()
    }

    /// Total full-system energy (J).
    #[inline]
    pub fn system_total_j(&self) -> f64 {
        self.memory_total_j() + self.rest_j
    }

    /// Average memory power over the run (W).
    #[inline]
    pub fn memory_avg_w(&self) -> f64 {
        let s = self.elapsed.as_secs_f64();
        if s == 0.0 {
            0.0
        } else {
            self.memory_total_j() / s
        }
    }

    /// Fractional memory-energy savings of `self` versus `baseline`
    /// (positive = `self` used less). Returns 0 for a zero baseline.
    pub fn memory_savings_vs(&self, baseline: &EnergyAccount) -> f64 {
        savings(self.memory_total_j(), baseline.memory_total_j())
    }

    /// Fractional full-system energy savings of `self` versus `baseline`.
    pub fn system_savings_vs(&self, baseline: &EnergyAccount) -> f64 {
        savings(self.system_total_j(), baseline.system_total_j())
    }
}

fn savings(ours: f64, baseline: f64) -> f64 {
    if baseline == 0.0 {
        0.0
    } else {
        1.0 - ours / baseline
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn power(total: f64) -> MemoryPowerBreakdown {
        MemoryPowerBreakdown {
            background_w: total,
            ..MemoryPowerBreakdown::default()
        }
    }

    #[test]
    fn integrates_power_over_time() {
        let mut acc = EnergyAccount::new();
        acc.add(&power(10.0), 60.0, Picos::from_ms(100));
        assert!((acc.memory_total_j() - 1.0).abs() < 1e-12); // 10 W x 0.1 s
        assert!((acc.rest_j - 6.0).abs() < 1e-12);
        assert!((acc.system_total_j() - 7.0).abs() < 1e-12);
        assert_eq!(acc.elapsed, Picos::from_ms(100));
        assert!((acc.memory_avg_w() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn accumulates_segments() {
        let mut acc = EnergyAccount::new();
        acc.add(&power(10.0), 0.0, Picos::from_ms(50));
        acc.add(&power(20.0), 0.0, Picos::from_ms(50));
        assert!((acc.memory_total_j() - 1.5).abs() < 1e-12);
        assert!((acc.memory_avg_w() - 15.0).abs() < 1e-9);
    }

    #[test]
    fn savings_comparisons() {
        let mut base = EnergyAccount::new();
        base.add(&power(20.0), 30.0, Picos::from_ms(100));
        let mut ours = EnergyAccount::new();
        ours.add(&power(10.0), 30.0, Picos::from_ms(100));
        assert!((ours.memory_savings_vs(&base) - 0.5).abs() < 1e-12);
        // System: base 5 J vs ours 4 J -> 20%.
        assert!((ours.system_savings_vs(&base) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn zero_baseline_and_empty_account() {
        let empty = EnergyAccount::new();
        assert_eq!(empty.memory_avg_w(), 0.0);
        assert_eq!(empty.memory_savings_vs(&EnergyAccount::new()), 0.0);
    }

    #[test]
    fn negative_savings_when_worse() {
        let mut base = EnergyAccount::new();
        base.add(&power(10.0), 0.0, Picos::from_ms(100));
        let mut ours = EnergyAccount::new();
        ours.add(&power(11.0), 0.0, Picos::from_ms(100));
        assert!(ours.memory_savings_vs(&base) < 0.0);
    }
}
