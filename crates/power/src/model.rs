//! The combined memory-subsystem power model.

use crate::breakdown::MemoryPowerBreakdown;
use crate::dram_power::DramPowerCalc;
use crate::summary::ActivitySummary;
use memscale_dram::stats::{ChannelStats, RankStats};
use memscale_types::config::SystemConfig;
use memscale_types::freq::MemFreq;
use memscale_types::time::Picos;

/// Computes memory-subsystem power, either exactly from observed activity
/// deltas or predictively from an [`ActivitySummary`].
#[derive(Debug, Clone)]
pub struct PowerModel {
    cfg: SystemConfig,
    calc: DramPowerCalc,
}

impl PowerModel {
    /// Builds the model for one system configuration.
    pub fn new(cfg: &SystemConfig) -> Self {
        let calc = DramPowerCalc::new(
            &cfg.power,
            &cfg.timing,
            cfg.topology.chips_per_rank,
            cfg.topology.banks_per_rank,
        );
        PowerModel {
            cfg: cfg.clone(),
            calc,
        }
    }

    /// The underlying DRAM-device calculator.
    #[inline]
    pub fn dram_calc(&self) -> &DramPowerCalc {
        &self.calc
    }

    /// Memory-controller power (W) at data-bus utilization `util` and
    /// operating point `freq`.
    ///
    /// The utilization-linear idle→peak range (§4.1) is scaled by `V²·f`
    /// relative to the maximum operating point (§2.2's "cubic factor").
    pub fn mc_power_w(&self, util: f64, freq: MemFreq) -> f64 {
        let p = &self.cfg.power;
        let u = util.clamp(0.0, 1.0);
        let base = p.mc_w_idle() + (p.mc_w_peak - p.mc_w_idle()) * u;
        let v = freq.mc_voltage() / MemFreq::MAX.mc_voltage();
        base * v * v * freq.relative()
    }

    /// Register power per DIMM (W): utilization-linear idle→peak, scaled
    /// linearly with channel frequency (§4.1).
    pub fn reg_power_w(&self, util: f64, freq: MemFreq) -> f64 {
        let p = &self.cfg.power;
        let u = util.clamp(0.0, 1.0);
        (p.reg_w_idle() + (p.reg_w_peak - p.reg_w_idle()) * u) * freq.relative()
    }

    /// PLL power per DIMM (W): frequency-linear, utilization-independent
    /// (§4.1).
    pub fn pll_power_w(&self, freq: MemFreq) -> f64 {
        self.cfg.power.pll_w * freq.relative()
    }

    /// Exact memory-subsystem power over a window, from per-rank and
    /// per-channel activity deltas.
    ///
    /// `rank_deltas` must hold all ranks of the system (any order);
    /// `channel_deltas` one entry per channel. All channels are assumed to
    /// run at the same `freq` (the paper scales them in tandem).
    pub fn memory_power(
        &self,
        rank_deltas: &[RankStats],
        channel_deltas: &[ChannelStats],
        window: Picos,
        freq: MemFreq,
    ) -> MemoryPowerBreakdown {
        self.memory_power_split(rank_deltas, channel_deltas, window, freq, freq)
    }

    /// Like [`memory_power`](Self::memory_power) but with distinct DRAM
    /// *device* and channel *interface* frequencies — the Decoupled-DIMM
    /// configuration (§4.2.3), where devices run slow behind a
    /// synchronization buffer while the channel, registers, PLLs and MC stay
    /// at full speed.
    pub fn memory_power_split(
        &self,
        rank_deltas: &[RankStats],
        channel_deltas: &[ChannelStats],
        window: Picos,
        device_freq: MemFreq,
        interface_freq: MemFreq,
    ) -> MemoryPowerBreakdown {
        if window == Picos::ZERO {
            return MemoryPowerBreakdown::default();
        }
        let t = &self.cfg.topology;
        let mut out = MemoryPowerBreakdown::default();

        for delta in rank_deltas {
            let rp = self.calc.rank_power(delta, window, device_freq);
            out.background_w += rp.background_w;
            out.act_pre_w += rp.act_pre_w;
            out.rd_wr_w += rp.rd_wr_w;
        }

        let other_dimms = (t.dimms_per_channel as f64 - 1.0).max(0.0);
        let mut util_sum = 0.0;
        for delta in channel_deltas {
            let util = delta.utilization(window);
            util_sum += util;
            out.term_w += self.cfg.power.term_w_per_dimm * other_dimms * util;
            out.reg_w += self.reg_power_w(util, interface_freq) * t.dimms_per_channel as f64;
        }
        let avg_util = if channel_deltas.is_empty() {
            0.0
        } else {
            util_sum / channel_deltas.len() as f64
        };
        out.pll_w = self.pll_power_w(interface_freq) * t.total_dimms() as f64;
        out.mc_w = self.mc_power_w(avg_util, interface_freq);
        out
    }

    /// Memory-subsystem power when channels run at *different* frequencies
    /// (the paper's §6 per-channel future-work extension).
    ///
    /// `rank_deltas` must be channel-major (all ranks of channel 0 first);
    /// `freqs` holds one operating point per channel. DRAM, register, PLL
    /// and termination power are computed per channel at that channel's
    /// frequency; the single shared MC runs at the *fastest* channel's
    /// operating point with the average utilization.
    ///
    /// # Panics
    ///
    /// Panics if the slice lengths are inconsistent with the topology.
    pub fn memory_power_heterogeneous(
        &self,
        rank_deltas: &[RankStats],
        channel_deltas: &[ChannelStats],
        window: Picos,
        freqs: &[MemFreq],
    ) -> MemoryPowerBreakdown {
        let t = &self.cfg.topology;
        let n_ch = t.channels as usize;
        let per_ch = t.ranks_per_channel() as usize;
        assert_eq!(channel_deltas.len(), n_ch, "one delta per channel");
        assert_eq!(freqs.len(), n_ch, "one frequency per channel");
        assert_eq!(rank_deltas.len(), n_ch * per_ch, "channel-major ranks");
        if window == Picos::ZERO {
            return MemoryPowerBreakdown::default();
        }

        let mut out = MemoryPowerBreakdown::default();
        let other_dimms = (t.dimms_per_channel as f64 - 1.0).max(0.0);
        let mut util_sum = 0.0;
        for ch in 0..n_ch {
            let f = freqs[ch];
            for delta in &rank_deltas[ch * per_ch..(ch + 1) * per_ch] {
                let rp = self.calc.rank_power(delta, window, f);
                out.background_w += rp.background_w;
                out.act_pre_w += rp.act_pre_w;
                out.rd_wr_w += rp.rd_wr_w;
            }
            let util = channel_deltas[ch].utilization(window);
            util_sum += util;
            out.term_w += self.cfg.power.term_w_per_dimm * other_dimms * util;
            out.reg_w += self.reg_power_w(util, f) * t.dimms_per_channel as f64;
            out.pll_w += self.pll_power_w(f) * t.dimms_per_channel as f64;
        }
        let mc_freq = freqs.iter().copied().max().unwrap_or(MemFreq::MAX);
        out.mc_w = self.mc_power_w(util_sum / n_ch as f64, mc_freq);
        out
    }

    /// Predicted memory-subsystem power at `freq` from an activity summary
    /// (already rescaled to `freq` by the caller; see
    /// [`ActivitySummary::rescale`]).
    pub fn memory_power_from_summary(
        &self,
        s: &ActivitySummary,
        freq: MemFreq,
    ) -> MemoryPowerBreakdown {
        let t = &self.cfg.topology;
        let p = &self.cfg.power;
        let n_ranks = t.total_ranks() as f64;
        let n_dimms = t.total_dimms() as f64;
        let scale = freq.relative();
        let v = p.vdd;
        let chips = t.chips_per_rank as f64;

        let f_dpd = s.deep_pd_frac.clamp(0.0, 1.0);
        let f_pd = s.pd_frac.clamp(0.0, 1.0 - f_dpd);
        let f_act = s.active_frac.clamp(0.0, 1.0 - f_dpd - f_pd);
        let f_pre = (1.0 - f_dpd - f_pd - f_act).max(0.0);
        let standby_per_rank =
            chips * v * (p.i_act_stby_ma * f_act + p.i_pre_stby_ma * f_pre + p.i_pre_pd_ma * f_pd)
                / 1_000.0
                * scale;
        // Deep power-down current does not scale with the (stopped) clock.
        let deep_per_rank = chips * v * p.i_dpd_ma * f_dpd / 1_000.0;
        let background_w =
            (standby_per_rank + deep_per_rank + self.calc.refresh_power_w()) * n_ranks;

        let act_pre_w = self.calc.act_pre_energy_j() * s.act_rate_hz;
        let rd_wr_w = (self.calc.burst_power_w(false) * s.read_burst_frac
            + self.calc.burst_power_w(true) * s.write_burst_frac)
            * n_ranks;

        let other_dimms = (t.dimms_per_channel as f64 - 1.0).max(0.0);
        let term_w = p.term_w_per_dimm * other_dimms * s.bus_util * t.channels as f64;

        MemoryPowerBreakdown {
            background_w,
            act_pre_w,
            rd_wr_w,
            term_w,
            pll_w: self.pll_power_w(freq) * n_dimms,
            reg_w: self.reg_power_w(s.bus_util, freq) * n_dimms,
            mc_w: self.mc_power_w(s.bus_util, freq),
        }
    }

    /// Rest-of-system power derived from the memory-power fraction (§4.1):
    /// with memory at `mem_avg_w` accounting for `mem_power_fraction` of the
    /// server, everything else draws a fixed
    /// `mem_avg_w · (1 − fraction) / fraction`.
    pub fn rest_of_system_w(&self, mem_avg_w: f64) -> f64 {
        let frac = self.cfg.power.mem_power_fraction;
        mem_avg_w * (1.0 - frac) / frac
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> PowerModel {
        PowerModel::new(&SystemConfig::default())
    }

    #[test]
    fn mc_power_scales_cubically() {
        let m = model();
        let hi = m.mc_power_w(0.0, MemFreq::F800);
        let lo = m.mc_power_w(0.0, MemFreq::F200);
        assert_eq!(hi, 7.5); // idle at max V/f
                             // V scales 1.2 -> 0.65, f scales 4x: expect (0.65/1.2)^2 * 0.25.
        let expect = 7.5 * (0.65f64 / 1.2).powi(2) * 0.25;
        assert!((lo - expect).abs() < 1e-9, "{lo} vs {expect}");
        assert!(lo < hi / 10.0, "MC DVFS should be super-linear");
    }

    #[test]
    fn mc_power_scales_with_utilization() {
        let m = model();
        assert_eq!(m.mc_power_w(1.0, MemFreq::F800), 15.0);
        assert_eq!(m.mc_power_w(0.5, MemFreq::F800), 11.25);
        // Out-of-range utilization is clamped.
        assert_eq!(m.mc_power_w(7.0, MemFreq::F800), 15.0);
    }

    #[test]
    fn reg_and_pll_scale_linearly() {
        let m = model();
        assert_eq!(m.pll_power_w(MemFreq::F800), 0.5);
        assert_eq!(m.pll_power_w(MemFreq::F400), 0.25);
        assert_eq!(m.reg_power_w(0.0, MemFreq::F800), 0.25);
        assert_eq!(m.reg_power_w(1.0, MemFreq::F800), 0.5);
        assert_eq!(m.reg_power_w(1.0, MemFreq::F400), 0.25);
    }

    #[test]
    fn idle_system_power_is_dominated_by_background() {
        let m = model();
        let ranks = vec![RankStats::new(); 16];
        let channels = vec![ChannelStats::new(); 4];
        let p = m.memory_power(&ranks, &channels, Picos::from_ms(1), MemFreq::F800);
        assert!(p.background_w > 10.0, "16 idle ranks ≈ 16-20 W: {p:?}");
        assert_eq!(p.act_pre_w, 0.0);
        assert_eq!(p.rd_wr_w, 0.0);
        assert_eq!(p.term_w, 0.0);
        assert_eq!(p.mc_w, 7.5);
        assert_eq!(p.pll_w, 4.0); // 8 DIMMs x 0.5 W
        assert_eq!(p.reg_w, 2.0); // 8 DIMMs x 0.25 W idle
                                  // Total idle memory power should be a plausible server figure.
        assert!(p.total_w() > 25.0 && p.total_w() < 45.0, "{}", p.total_w());
    }

    #[test]
    fn busy_channels_add_term_reg_mc_power() {
        let m = model();
        let ranks = vec![RankStats::new(); 16];
        let mut channels = vec![ChannelStats::new(); 4];
        for c in &mut channels {
            c.burst_time = Picos::from_us(500); // 50% busy
        }
        let p = m.memory_power(&ranks, &channels, Picos::from_ms(1), MemFreq::F800);
        assert!((p.term_w - 0.5 * 0.5 * 4.0).abs() < 1e-9);
        assert!((p.mc_w - 11.25).abs() < 1e-9);
        assert!(p.reg_w > 2.0);
    }

    #[test]
    fn summary_prediction_matches_exact_for_idle() {
        let m = model();
        let ranks = vec![RankStats::new(); 16];
        let channels = vec![ChannelStats::new(); 4];
        let w = Picos::from_ms(1);
        let exact = m.memory_power(&ranks, &channels, w, MemFreq::F800);
        let summary = ActivitySummary::from_deltas(&ranks, &channels, w);
        let pred = m.memory_power_from_summary(&summary, MemFreq::F800);
        assert!((exact.total_w() - pred.total_w()).abs() < 1e-6);
    }

    #[test]
    fn summary_prediction_tracks_exact_under_load() {
        let m = model();
        let w = Picos::from_ms(1);
        let mut ranks = vec![RankStats::new(); 16];
        for r in &mut ranks {
            r.act_count = 5_000;
            r.record_read_burst(Picos::from_us(50));
            r.active_time = Picos::from_us(250);
        }
        let mut channels = vec![ChannelStats::new(); 4];
        for c in &mut channels {
            c.burst_time = Picos::from_us(200);
        }
        let exact = m.memory_power(&ranks, &channels, w, MemFreq::F800);
        let summary = ActivitySummary::from_deltas(&ranks, &channels, w);
        let pred = m.memory_power_from_summary(&summary, MemFreq::F800);
        let err = (exact.total_w() - pred.total_w()).abs() / exact.total_w();
        assert!(err < 0.01, "prediction error {err}");
    }

    #[test]
    fn rest_of_system_from_fraction() {
        let m = model();
        // 40% memory fraction: rest = 1.5x memory.
        assert!((m.rest_of_system_w(40.0) - 60.0).abs() < 1e-9);
    }

    #[test]
    fn lower_frequency_cuts_background_and_mc() {
        let m = model();
        let ranks = vec![RankStats::new(); 16];
        let channels = vec![ChannelStats::new(); 4];
        let w = Picos::from_ms(1);
        let hi = m.memory_power(&ranks, &channels, w, MemFreq::F800);
        let lo = m.memory_power(&ranks, &channels, w, MemFreq::F200);
        assert!(lo.total_w() < hi.total_w() * 0.5);
        assert!(lo.mc_w < hi.mc_w * 0.1);
    }
}
