//! Aggregated activity summaries for power prediction.
//!
//! The MemScale policy predicts `P_Mem(f)` for every candidate frequency
//! from one profiled window (Eq 10). An [`ActivitySummary`] condenses the
//! per-rank/per-channel counters of that window into system-level rates and
//! fractions, and [`ActivitySummary::rescale`] projects them to a different
//! frequency and predicted time dilation.

use memscale_dram::stats::{ChannelStats, RankStats};
use memscale_types::time::Picos;

/// System-level memory activity over one window.
#[derive(Debug, Default, Clone, Copy, PartialEq)]
pub struct ActivitySummary {
    /// Window length.
    pub window: Picos,
    /// Total ACT commands per second across all ranks.
    pub act_rate_hz: f64,
    /// Average per-rank fraction of time driving read bursts.
    pub read_burst_frac: f64,
    /// Average per-rank fraction of time driving write bursts.
    pub write_burst_frac: f64,
    /// Average per-rank fraction of time with some bank active.
    pub active_frac: f64,
    /// Average per-rank fraction of time in powerdown (CKE low), excluding
    /// deep power-down.
    pub pd_frac: f64,
    /// Average per-rank fraction of time in deep power-down (LPDDR
    /// generations; zero elsewhere).
    pub deep_pd_frac: f64,
    /// Average channel data-bus utilization.
    pub bus_util: f64,
}

impl ActivitySummary {
    /// Builds a summary from per-window deltas.
    ///
    /// `rank_deltas` holds one [`RankStats`] delta per rank (all channels),
    /// `channel_deltas` one [`ChannelStats`] delta per channel.
    ///
    /// Returns the zero summary for an empty window or empty slices.
    pub fn from_deltas(
        rank_deltas: &[RankStats],
        channel_deltas: &[ChannelStats],
        window: Picos,
    ) -> Self {
        if window == Picos::ZERO || rank_deltas.is_empty() || channel_deltas.is_empty() {
            return ActivitySummary::default();
        }
        let w = window.as_secs_f64();
        let n_ranks = rank_deltas.len() as f64;
        let n_ch = channel_deltas.len() as f64;

        let acts: u64 = rank_deltas.iter().map(|d| d.act_count).sum();
        let read_t: f64 = rank_deltas
            .iter()
            .map(|d| d.read_burst_time.as_secs_f64())
            .sum();
        let write_t: f64 = rank_deltas
            .iter()
            .map(|d| d.write_burst_time.as_secs_f64())
            .sum();
        let active_t: f64 = rank_deltas
            .iter()
            .map(|d| d.active_time.as_secs_f64())
            .sum();
        let pd_t: f64 = rank_deltas.iter().map(|d| d.pd_time().as_secs_f64()).sum();
        let deep_t: f64 = rank_deltas
            .iter()
            .map(|d| d.deep_pd_time.as_secs_f64())
            .sum();
        let bus_t: f64 = channel_deltas
            .iter()
            .map(|d| d.burst_time.as_secs_f64())
            .sum();

        ActivitySummary {
            window,
            act_rate_hz: acts as f64 / w,
            read_burst_frac: (read_t / (w * n_ranks)).min(1.0),
            write_burst_frac: (write_t / (w * n_ranks)).min(1.0),
            active_frac: (active_t / (w * n_ranks)).min(1.0),
            pd_frac: (pd_t / (w * n_ranks)).min(1.0),
            deep_pd_frac: (deep_t / (w * n_ranks)).min(1.0),
            bus_util: (bus_t / (w * n_ch)).min(1.0),
        }
    }

    /// Projects this summary to a hypothetical operating point.
    ///
    /// * `burst_ratio` — burst duration at the candidate frequency divided
    ///   by burst duration at the profiled frequency (≥ 1 when slowing
    ///   down).
    /// * `dilation` — predicted wall-time ratio `T(f) / T(profiled)` for the
    ///   same work (≥ 1 when slowing down).
    ///
    /// The same number of accesses spreads over `dilation`× the time, each
    /// burst stretched by `burst_ratio`; bank-active time (dominated by
    /// frequency-invariant DRAM-core operations) and powerdown residency
    /// keep their absolute durations, so their fractions divide by
    /// `dilation`.
    ///
    /// # Panics
    ///
    /// Panics if `burst_ratio` or `dilation` is not positive.
    pub fn rescale(&self, burst_ratio: f64, dilation: f64) -> ActivitySummary {
        assert!(burst_ratio > 0.0 && dilation > 0.0, "ratios must be > 0");
        let stretch = burst_ratio / dilation;
        ActivitySummary {
            window: self.window.scale(dilation),
            act_rate_hz: self.act_rate_hz / dilation,
            read_burst_frac: (self.read_burst_frac * stretch).min(1.0),
            write_burst_frac: (self.write_burst_frac * stretch).min(1.0),
            active_frac: (self.active_frac / dilation).min(1.0),
            pd_frac: (self.pd_frac / dilation).min(1.0),
            deep_pd_frac: (self.deep_pd_frac / dilation).min(1.0),
            bus_util: (self.bus_util * stretch).min(1.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rank_delta(acts: u64, read_us: u64, active_us: u64, pd_us: u64) -> RankStats {
        let mut d = RankStats::new();
        d.act_count = acts;
        d.read_burst_time = Picos::from_us(read_us);
        d.active_time = Picos::from_us(active_us);
        d.fast_pd_time = Picos::from_us(pd_us);
        d
    }

    fn channel_delta(burst_us: u64) -> ChannelStats {
        ChannelStats {
            burst_time: Picos::from_us(burst_us),
            ..ChannelStats::new()
        }
    }

    #[test]
    fn from_deltas_averages() {
        let ranks = vec![rank_delta(1_000, 100, 300, 0), rank_delta(0, 0, 100, 200)];
        let channels = vec![channel_delta(100), channel_delta(300)];
        let s = ActivitySummary::from_deltas(&ranks, &channels, Picos::from_ms(1));
        assert_eq!(s.act_rate_hz, 1_000.0 / 1e-3);
        assert!((s.read_burst_frac - 0.05).abs() < 1e-12); // 100us over 2 ranks x 1ms
        assert!((s.active_frac - 0.2).abs() < 1e-12);
        assert!((s.pd_frac - 0.1).abs() < 1e-12);
        assert!((s.bus_util - 0.2).abs() < 1e-12);
    }

    #[test]
    fn deep_powerdown_tracked_separately_from_pd() {
        let mut d = RankStats::new();
        d.fast_pd_time = Picos::from_us(100);
        d.deep_pd_time = Picos::from_us(400);
        let s = ActivitySummary::from_deltas(&[d], &[channel_delta(0)], Picos::from_ms(1));
        assert!((s.pd_frac - 0.1).abs() < 1e-12);
        assert!((s.deep_pd_frac - 0.4).abs() < 1e-12);
        // Residency (absolute time) is preserved under dilation.
        let r = s.rescale(2.0, 2.0);
        assert!((r.deep_pd_frac - 0.2).abs() < 1e-12);
    }

    #[test]
    fn empty_inputs_give_zero() {
        let s = ActivitySummary::from_deltas(&[], &[], Picos::from_ms(1));
        assert_eq!(s, ActivitySummary::default());
        let s =
            ActivitySummary::from_deltas(&[RankStats::new()], &[ChannelStats::new()], Picos::ZERO);
        assert_eq!(s, ActivitySummary::default());
    }

    #[test]
    fn rescale_halving_frequency() {
        let ranks = vec![rank_delta(1_000, 100, 300, 0)];
        let channels = vec![channel_delta(100)];
        let s = ActivitySummary::from_deltas(&ranks, &channels, Picos::from_ms(1));
        // Half frequency: bursts 2x longer, suppose 10% dilation.
        let r = s.rescale(2.0, 1.1);
        assert!((r.act_rate_hz - s.act_rate_hz / 1.1).abs() < 1e-9);
        assert!((r.bus_util - s.bus_util * 2.0 / 1.1).abs() < 1e-12);
        assert!((r.active_frac - s.active_frac / 1.1).abs() < 1e-12);
    }

    #[test]
    fn rescale_clamps_to_one() {
        let s = ActivitySummary {
            window: Picos::from_ms(1),
            bus_util: 0.8,
            ..ActivitySummary::default()
        };
        let r = s.rescale(4.0, 1.0);
        assert_eq!(r.bus_util, 1.0);
    }

    #[test]
    #[should_panic(expected = "ratios must be > 0")]
    fn rescale_rejects_zero() {
        ActivitySummary::default().rescale(0.0, 1.0);
    }
}
