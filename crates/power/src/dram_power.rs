//! Micron-methodology DRAM device power (DDR3 baseline, DDR4, LPDDR3).
//!
//! Every figure is derived from the Table 2 per-chip currents at `vdd`,
//! multiplied by the chips participating in a rank. Background currents
//! scale linearly with channel frequency (§2.2: "lowering frequency lowers
//! background power linearly"), while per-event energies (activate/precharge)
//! and burst *power* are frequency-independent — a slower burst therefore
//! costs proportionally more **energy**, exactly the paper's "read/write and
//! termination energy increase almost linearly" behaviour.
//!
//! Generation extensions: LPDDR3 deep power-down residency is priced at the
//! frequency-*independent* `i_dpd_ma` floor (the clock tree is stopped, so
//! there is nothing left to scale), and per-bank refresh replaces the
//! all-bank tRFC/tREFI duty cycle with `banks · tRFCpb / tREFI`.

use memscale_dram::stats::RankStats;
use memscale_types::config::{DramTimingConfig, PowerConfig};
use memscale_types::freq::MemFreq;
use memscale_types::time::Picos;

/// Per-rank DRAM power at one instant/window (W).
#[derive(Debug, Default, Clone, Copy, PartialEq)]
pub struct RankPower {
    /// State-dependent background power including refresh.
    pub background_w: f64,
    /// Activate/precharge event power.
    pub act_pre_w: f64,
    /// Read/write burst power.
    pub rd_wr_w: f64,
}

/// DRAM-device power calculator for one rank geometry.
#[derive(Debug, Clone)]
pub struct DramPowerCalc {
    cfg: PowerConfig,
    chips: f64,
    /// Refresh duty cycle tRFC/tREFI (refresh runs at a fixed rate).
    refresh_duty: f64,
    /// Energy of one ACT+PRE pair for the whole rank (J).
    act_pre_energy_j: f64,
}

impl DramPowerCalc {
    /// Builds a calculator for ranks of `chips_per_rank` chips and
    /// `banks_per_rank` banks (the bank count only matters under LPDDR
    /// per-bank refresh, where it sets the refresh duty cycle).
    pub fn new(
        power: &PowerConfig,
        timing: &DramTimingConfig,
        chips_per_rank: u8,
        banks_per_rank: u8,
    ) -> Self {
        let chips = chips_per_rank as f64;
        let refresh_duty = if timing.per_bank_refresh {
            f64::from(banks_per_rank) * timing.t_rfc_pb_ns / timing.t_refi().as_ns_f64()
        } else {
            timing.t_rfc_ns / timing.t_refi().as_ns_f64()
        };
        // Micron-style: (IDD0 - IDD3N) over the tRC = tRAS + tRP window.
        let delta_i_a = ((power.i_act_pre_ma - power.i_act_stby_ma) / 1_000.0).max(0.0);
        let t_rc_s = (timing.t_ras_ns + timing.t_rp_ns) * 1e-9;
        let act_pre_energy_j = chips * power.vdd * delta_i_a * t_rc_s;
        DramPowerCalc {
            cfg: power.clone(),
            chips,
            refresh_duty,
            act_pre_energy_j,
        }
    }

    /// Energy of one rank-wide ACT+PRE pair (J).
    #[inline]
    pub fn act_pre_energy_j(&self) -> f64 {
        self.act_pre_energy_j
    }

    /// Power drawn by a rank driving a read or write burst, above its
    /// active-standby background (W). Frequency-independent.
    #[inline]
    pub fn burst_power_w(&self, write: bool) -> f64 {
        let i = if write {
            self.cfg.i_wr_ma
        } else {
            self.cfg.i_rd_ma
        };
        self.chips * self.cfg.vdd * ((i - self.cfg.i_act_stby_ma) / 1_000.0).max(0.0)
    }

    /// Refresh power of one rank (W). Runs at a fixed duty cycle regardless
    /// of activity, so it is computed analytically from wall time.
    #[inline]
    pub fn refresh_power_w(&self) -> f64 {
        self.chips
            * self.cfg.vdd
            * ((self.cfg.i_ref_ma - self.cfg.i_pre_stby_ma) / 1_000.0).max(0.0)
            * self.refresh_duty
    }

    /// Average power of one rank over a window of length `window`, given the
    /// rank's activity `delta` in that window, at channel frequency `freq`.
    ///
    /// Returns all-zero for an empty window.
    pub fn rank_power(&self, delta: &RankStats, window: Picos, freq: MemFreq) -> RankPower {
        if window == Picos::ZERO {
            return RankPower::default();
        }
        let w = window.as_secs_f64();
        let scale = freq.relative();
        let v = self.cfg.vdd;
        let ma = 1.0 / 1_000.0;

        // State fractions (clamped: the interval-union accounting may spill
        // a few nanoseconds across window boundaries). Deep power-down is
        // carved out first: it is the deepest state and its current does not
        // scale with the (stopped) clock.
        let f_dpd = (delta.deep_pd_time.as_secs_f64() / w).min(1.0);
        let f_pd = (delta.pd_time().as_secs_f64() / w).min(1.0 - f_dpd);
        let f_act = (delta.active_time.as_secs_f64() / w).min(1.0 - f_dpd - f_pd);
        let f_pre = (1.0 - f_dpd - f_pd - f_act).max(0.0);

        let standby_w = self.chips
            * v
            * (self.cfg.i_act_stby_ma * f_act
                + self.cfg.i_pre_stby_ma * f_pre
                + self.cfg.i_pre_pd_ma * f_pd)
            * ma
            * scale;
        let deep_w = self.chips * v * self.cfg.i_dpd_ma * f_dpd * ma;
        let background_w = standby_w + deep_w + self.refresh_power_w();

        let act_pre_w = self.act_pre_energy_j * delta.act_count as f64 / w;

        let rd_w = self.burst_power_w(false) * delta.read_burst_time.as_secs_f64() / w;
        let wr_w = self.burst_power_w(true) * delta.write_burst_time.as_secs_f64() / w;

        RankPower {
            background_w,
            act_pre_w,
            rd_wr_w: rd_w + wr_w,
        }
    }

    /// All-precharged standby power of an idle rank at `freq` (W), including
    /// refresh — the floor the Fast-PD/Slow-PD policies push below.
    pub fn idle_standby_power_w(&self, freq: MemFreq) -> f64 {
        self.chips * self.cfg.vdd * (self.cfg.i_pre_stby_ma / 1_000.0) * freq.relative()
            + self.refresh_power_w()
    }

    /// Powerdown power of an idle rank at `freq` (W), including refresh.
    pub fn powerdown_power_w(&self, freq: MemFreq) -> f64 {
        self.chips * self.cfg.vdd * (self.cfg.i_pre_pd_ma / 1_000.0) * freq.relative()
            + self.refresh_power_w()
    }

    /// Deep power-down power of an idle rank (W), including refresh. The
    /// `i_dpd_ma` floor is frequency-independent; this is the deepest floor
    /// an LPDDR policy can reach.
    pub fn deep_powerdown_power_w(&self) -> f64 {
        self.chips * self.cfg.vdd * (self.cfg.i_dpd_ma / 1_000.0) + self.refresh_power_w()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn calc() -> DramPowerCalc {
        DramPowerCalc::new(&PowerConfig::default(), &DramTimingConfig::default(), 9, 8)
    }

    fn lpddr_calc() -> DramPowerCalc {
        DramPowerCalc::new(&PowerConfig::lpddr3(), &DramTimingConfig::lpddr3(), 9, 8)
    }

    #[test]
    fn act_pre_energy_is_sane() {
        // (120-67) mA * 1.575 V * 9 chips * 50 ns ≈ 37.6 nJ.
        let e = calc().act_pre_energy_j();
        assert!(e > 30e-9 && e < 45e-9, "got {e}");
    }

    #[test]
    fn burst_power_is_sane() {
        // (250-67) mA * 1.575 V * 9 ≈ 2.59 W.
        let p = calc().burst_power_w(false);
        assert!(p > 2.0 && p < 3.2, "got {p}");
        assert_eq!(p, calc().burst_power_w(true)); // same current in Table 2
    }

    #[test]
    fn idle_rank_draws_precharge_standby() {
        let c = calc();
        let delta = RankStats::new();
        let p = c.rank_power(&delta, Picos::from_ms(1), MemFreq::F800);
        // 70 mA * 1.575 V * 9 ≈ 0.99 W + refresh.
        assert!(p.background_w > 0.9 && p.background_w < 1.3, "{p:?}");
        assert_eq!(p.act_pre_w, 0.0);
        assert_eq!(p.rd_wr_w, 0.0);
        assert!((p.background_w - c.idle_standby_power_w(MemFreq::F800)).abs() < 1e-9);
    }

    #[test]
    fn background_scales_linearly_with_frequency() {
        let c = calc();
        let delta = RankStats::new();
        let w = Picos::from_ms(1);
        let hi = c.rank_power(&delta, w, MemFreq::F800).background_w - c.refresh_power_w();
        let lo = c.rank_power(&delta, w, MemFreq::F400).background_w - c.refresh_power_w();
        assert!((lo / hi - 0.5).abs() < 1e-9);
    }

    #[test]
    fn powerdown_cuts_background() {
        let c = calc();
        let w = Picos::from_ms(1);
        let mut delta = RankStats::new();
        delta.fast_pd_time = w; // fully powered down
        let pd = c.rank_power(&delta, w, MemFreq::F800).background_w;
        let up = c
            .rank_power(&RankStats::new(), w, MemFreq::F800)
            .background_w;
        assert!(pd < up);
        assert_eq!(pd, c.powerdown_power_w(MemFreq::F800));
    }

    #[test]
    fn activity_adds_dynamic_power() {
        let c = calc();
        let w = Picos::from_ms(1);
        let mut delta = RankStats::new();
        delta.act_count = 10_000;
        delta.record_read_burst(Picos::from_us(100));
        delta.active_time = Picos::from_us(400);
        let p = c.rank_power(&delta, w, MemFreq::F800);
        assert!(p.act_pre_w > 0.0);
        assert!(p.rd_wr_w > 0.0);
        // 10k acts * 37.6 nJ / 1 ms ≈ 0.376 W.
        assert!((p.act_pre_w - 1e4 * c.act_pre_energy_j() / 1e-3).abs() < 1e-9);
        // 10% of the window bursting at ~2.59 W ≈ 0.259 W.
        assert!((p.rd_wr_w - 0.1 * c.burst_power_w(false)).abs() < 1e-9);
    }

    #[test]
    fn empty_window_is_zero() {
        let p = calc().rank_power(&RankStats::new(), Picos::ZERO, MemFreq::F800);
        assert_eq!(p, RankPower::default());
    }

    #[test]
    fn deep_powerdown_is_the_lowest_floor_and_frequency_independent() {
        let c = lpddr_calc();
        let w = Picos::from_ms(1);
        let mut delta = RankStats::new();
        delta.deep_pd_time = w; // fully in deep power-down
        let deep_hi = c.rank_power(&delta, w, MemFreq::F800).background_w;
        let deep_lo = c.rank_power(&delta, w, MemFreq::F200).background_w;
        // The stopped clock leaves nothing to scale with frequency.
        assert!((deep_hi - deep_lo).abs() < 1e-12);
        assert_eq!(deep_hi, c.deep_powerdown_power_w());
        // Strictly below precharge powerdown at any frequency.
        assert!(deep_hi < c.powerdown_power_w(MemFreq::F200));
    }

    #[test]
    fn per_bank_refresh_sets_the_duty_cycle() {
        // LPDDR3: 8 banks x 60 ns per tREFI vs one 130 ns all-bank REF.
        let pb = lpddr_calc();
        let mut all_bank = DramTimingConfig::lpddr3();
        all_bank.per_bank_refresh = false;
        let ab = DramPowerCalc::new(&PowerConfig::lpddr3(), &all_bank, 9, 8);
        let ratio = pb.refresh_power_w() / ab.refresh_power_w();
        // 8 * 60 / 130 ≈ 3.7x the busy fraction.
        assert!((ratio - 8.0 * 60.0 / 130.0).abs() < 1e-9, "{ratio}");
    }

    #[test]
    fn refresh_power_constant_across_frequency() {
        let c = calc();
        // Refresh term does not scale with channel frequency.
        let r = c.refresh_power_w();
        assert!(r > 0.0);
        let idle_hi = c.idle_standby_power_w(MemFreq::F800);
        let idle_lo = c.idle_standby_power_w(MemFreq::F200);
        assert!((idle_hi - r) / (idle_lo - r) > 3.9);
    }
}
