//! Property-based tests of the power model's physical invariants.

use memscale_dram::stats::{ChannelStats, RankStats};
use memscale_power::{ActivitySummary, PowerModel};
use memscale_types::config::SystemConfig;
use memscale_types::freq::MemFreq;
use memscale_types::time::Picos;
use proptest::prelude::*;

fn model() -> PowerModel {
    PowerModel::new(&SystemConfig::default())
}

#[derive(Debug, Clone)]
struct Activity {
    acts: u64,
    read_us: u64,
    write_us: u64,
    active_us: u64,
    pd_us: u64,
    bus_us: u64,
}

const WINDOW_US: u64 = 1_000;

fn activity_strategy() -> impl Strategy<Value = Activity> {
    (
        0u64..2_000_000,
        0u64..WINDOW_US,
        0u64..WINDOW_US / 4,
        0u64..WINDOW_US,
        0u64..WINDOW_US,
        0u64..WINDOW_US,
    )
        .prop_map(
            |(acts, read_us, write_us, active_us, pd_us, bus_us)| Activity {
                acts,
                read_us,
                write_us,
                active_us: active_us.min(WINDOW_US - pd_us.min(WINDOW_US)),
                pd_us: pd_us.min(WINDOW_US),
                bus_us,
            },
        )
}

fn build(a: &Activity) -> (Vec<RankStats>, Vec<ChannelStats>, Picos) {
    let window = Picos::from_us(WINDOW_US);
    let mut rank = RankStats::new();
    rank.act_count = a.acts;
    rank.record_read_burst(Picos::from_us(a.read_us.min(WINDOW_US)));
    rank.record_write_burst(Picos::from_us(a.write_us));
    rank.active_time = Picos::from_us(a.active_us);
    rank.fast_pd_time = Picos::from_us(a.pd_us);
    let ranks = vec![rank; 16];
    let chan = ChannelStats {
        burst_time: Picos::from_us(a.bus_us.min(WINDOW_US)),
        ..ChannelStats::new()
    };
    (ranks, vec![chan; 4], window)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Power is always positive and finite.
    #[test]
    fn power_is_positive_and_finite(
        a in activity_strategy(),
        fi in 0usize..MemFreq::ALL.len(),
    ) {
        let m = model();
        let (ranks, chans, w) = build(&a);
        let p = m.memory_power(&ranks, &chans, w, MemFreq::ALL[fi]);
        prop_assert!(p.total_w().is_finite());
        prop_assert!(p.total_w() > 0.0, "at least refresh + idle power");
        prop_assert!(p.background_w >= 0.0);
        prop_assert!(p.act_pre_w >= 0.0);
        prop_assert!(p.rd_wr_w >= 0.0);
        prop_assert!(p.term_w >= 0.0);
    }

    /// For identical activity, lower frequency means lower total power.
    #[test]
    fn power_is_monotone_in_frequency(a in activity_strategy()) {
        let m = model();
        let (ranks, chans, w) = build(&a);
        let mut last = f64::INFINITY;
        for f in MemFreq::ALL.iter().rev() {
            let p = m.memory_power(&ranks, &chans, w, *f).total_w();
            prop_assert!(p <= last + 1e-9, "{f}: {p} > {last}");
            last = p;
        }
    }

    /// More activity never reduces power at a fixed frequency.
    #[test]
    fn power_is_monotone_in_activity(a in activity_strategy()) {
        let m = model();
        let (ranks, chans, w) = build(&a);
        let p1 = m.memory_power(&ranks, &chans, w, MemFreq::F800).total_w();
        let mut busier = a.clone();
        busier.acts += 10_000;
        busier.bus_us = (busier.bus_us + 50).min(WINDOW_US);
        let (ranks2, chans2, _) = build(&busier);
        let p2 = m.memory_power(&ranks2, &chans2, w, MemFreq::F800).total_w();
        prop_assert!(p2 >= p1 - 1e-9);
    }

    /// The governor's summary-based prediction tracks the exact model.
    #[test]
    fn summary_prediction_tracks_exact(a in activity_strategy()) {
        let m = model();
        let (ranks, chans, w) = build(&a);
        let exact = m.memory_power(&ranks, &chans, w, MemFreq::F800).total_w();
        let summary = ActivitySummary::from_deltas(&ranks, &chans, w);
        let predicted = m.memory_power_from_summary(&summary, MemFreq::F800).total_w();
        let err = (exact - predicted).abs() / exact;
        prop_assert!(err < 0.02, "exact {exact} vs predicted {predicted}");
    }

    /// Powerdown residency strictly reduces background power.
    #[test]
    fn powerdown_saves_background(a in activity_strategy()) {
        let m = model();
        let mut no_pd = a.clone();
        no_pd.pd_us = 0;
        no_pd.active_us = 0;
        let mut full_pd = no_pd.clone();
        full_pd.pd_us = WINDOW_US;
        let (r1, c1, w) = build(&no_pd);
        let (r2, c2, _) = build(&full_pd);
        let p1 = m.memory_power(&r1, &c1, w, MemFreq::F800).background_w;
        let p2 = m.memory_power(&r2, &c2, w, MemFreq::F800).background_w;
        prop_assert!(p2 < p1, "powerdown {p2} !< standby {p1}");
    }

    /// The Decoupled split: device frequency only affects DRAM categories,
    /// interface frequency only affects PLL/REG/MC.
    #[test]
    fn split_power_partitions_cleanly(a in activity_strategy()) {
        let m = model();
        let (ranks, chans, w) = build(&a);
        let base = m.memory_power_split(&ranks, &chans, w, MemFreq::F800, MemFreq::F800);
        let dev_slow = m.memory_power_split(&ranks, &chans, w, MemFreq::F400, MemFreq::F800);
        // Interface-side categories unchanged.
        prop_assert!((dev_slow.pll_w - base.pll_w).abs() < 1e-12);
        prop_assert!((dev_slow.reg_w - base.reg_w).abs() < 1e-12);
        prop_assert!((dev_slow.mc_w - base.mc_w).abs() < 1e-12);
        prop_assert!((dev_slow.term_w - base.term_w).abs() < 1e-12);
        // Device-side background drops.
        prop_assert!(dev_slow.background_w <= base.background_w + 1e-12);
    }
}
