//! Property-based tests of the MemScale models: slack algebra, performance
//! model monotonicity, and governor safety.

use memscale::governor::{EnergyObjective, GovernorConfig, MemScaleGovernor};
use memscale::perf_model::PerfModel;
use memscale::profile::{AppSample, EpochProfile};
use memscale::slack::SlackTracker;
use memscale_mc::McCounters;
use memscale_power::ActivitySummary;
use memscale_types::config::SystemConfig;
use memscale_types::freq::MemFreq;
use memscale_types::time::Picos;
use proptest::prelude::*;

fn model() -> PerfModel {
    let sys = SystemConfig::default();
    PerfModel::new(&sys.timing, &sys.cpu)
}

#[derive(Debug, Clone)]
struct Window {
    tic: u64,
    rpki_mille: u64, // misses per million instructions
    bank_q: u64,     // BTO per 100 BTC
    chan_q: u64,     // CTO per 100 CTC
    hit_pct: u64,
}

fn window_strategy() -> impl Strategy<Value = Window> {
    (
        10_000u64..2_000_000,
        10u64..25_000,
        0u64..800,
        0u64..800,
        0u64..20,
    )
        .prop_map(|(tic, rpki_mille, bank_q, chan_q, hit_pct)| Window {
            tic,
            rpki_mille,
            bank_q,
            chan_q,
            hit_pct,
        })
}

fn profile_from(w: &Window) -> EpochProfile {
    let tlm = (w.tic * w.rpki_mille / 1_000_000).max(1);
    let btc = tlm * 16;
    let hits = btc * w.hit_pct / 100;
    EpochProfile {
        window: Picos::from_us(300),
        freq: MemFreq::F800,
        apps: vec![AppSample { tic: w.tic, tlm }; 16],
        mc: McCounters {
            btc,
            bto: btc * w.bank_q / 100,
            ctc: btc,
            cto: btc * w.chan_q / 100,
            cbmc: btc - hits,
            rbhc: hits,
            ..McCounters::new()
        },
        activity: ActivitySummary {
            window: Picos::from_us(300),
            act_rate_hz: (btc - hits) as f64 / 300e-6,
            read_burst_frac: 0.02,
            write_burst_frac: 0.002,
            active_frac: 0.2,
            pd_frac: 0.0,
            deep_pd_frac: 0.0,
            bus_util: 0.3,
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Predicted CPI is finite, positive, and decreases (weakly) with
    /// frequency for every plausible counter window.
    #[test]
    fn cpi_prediction_is_monotone(w in window_strategy()) {
        let m = model();
        let p = profile_from(&w);
        let mut last = f64::INFINITY;
        for f in MemFreq::ALL {
            let cpi = m.predict_cpi(&p, 0, f).expect("apps present");
            prop_assert!(cpi.is_finite() && cpi > 0.0);
            prop_assert!(cpi <= last + 1e-12, "{f}: {cpi} > {last}");
            last = cpi;
        }
    }

    /// Dilation versus max frequency is exactly 1 at 800 MHz and >= 1
    /// elsewhere.
    #[test]
    fn dilation_anchored_at_max(w in window_strategy()) {
        let m = model();
        let p = profile_from(&w);
        let at_max = m.predict_dilation(&p, 0, MemFreq::MAX).unwrap();
        prop_assert!((at_max - 1.0).abs() < 1e-12);
        for f in MemFreq::ALL {
            prop_assert!(m.predict_dilation(&p, 0, f).unwrap() >= 1.0 - 1e-12);
        }
    }

    /// Slack algebra: a sequence of updates is order-independent in sum.
    #[test]
    fn slack_updates_commute(
        updates in prop::collection::vec((1u64..10_000, 1u64..10_000), 1..20),
    ) {
        let mut fwd = SlackTracker::new(1, 0.1);
        for (max_us, actual_us) in &updates {
            fwd.update(0, *max_us as f64 * 1e-6, Picos::from_us(*actual_us));
        }
        let mut rev = SlackTracker::new(1, 0.1);
        for (max_us, actual_us) in updates.iter().rev() {
            rev.update(0, *max_us as f64 * 1e-6, Picos::from_us(*actual_us));
        }
        prop_assert!((fwd.slack_secs(0) - rev.slack_secs(0)).abs() < 1e-12);
    }

    /// permits() is monotone: if a deeper dilation fits, so does a lighter
    /// one.
    #[test]
    fn permits_is_monotone_in_dilation(
        slack_us in -5_000i64..5_000,
        d_mille in 1_000u64..1_500,
    ) {
        let mut s = SlackTracker::new(1, 0.1);
        // Bank (or owe) some slack.
        if slack_us >= 0 {
            s.update(0, slack_us as f64 * 1e-6, Picos::ZERO);
        } else {
            s.update(0, 0.0, Picos::from_us((-slack_us).cast_unsigned()));
        }
        let epoch = Picos::from_ms(5);
        let deep = d_mille as f64 / 1_000.0;
        let light = 1.0 + (deep - 1.0) / 2.0;
        if s.permits(0, deep, epoch) {
            prop_assert!(s.permits(0, light, epoch));
        }
    }

    /// The governor always returns a frequency whose predicted dilation is
    /// permitted by the slack state — or the maximum frequency.
    #[test]
    fn governor_choice_is_safe(w in window_strategy()) {
        let sys = SystemConfig::default();
        let mut gov = MemScaleGovernor::new(&sys, GovernorConfig::default());
        gov.set_rest_of_system_w(50.0);
        let p = profile_from(&w);
        let chosen = gov.decide(&p);
        if chosen != MemFreq::MAX {
            let m = model();
            let d = m.predict_dilation(&p, 0, chosen).unwrap();
            prop_assert!(
                d <= 1.0 + gov.config().gamma + 1e-9,
                "{chosen}: dilation {d}"
            );
        }
    }

    /// The memory-only objective never picks a faster frequency than the
    /// full-system objective on the same profile.
    #[test]
    fn memory_objective_scales_at_least_as_deep(w in window_strategy()) {
        let sys = SystemConfig::default();
        let p = profile_from(&w);
        let mut full = MemScaleGovernor::new(&sys, GovernorConfig::default());
        full.set_rest_of_system_w(50.0);
        let mut mem_only = MemScaleGovernor::new(
            &sys,
            GovernorConfig {
                objective: EnergyObjective::MemoryOnly,
                ..GovernorConfig::default()
            },
        );
        mem_only.set_rest_of_system_w(50.0);
        prop_assert!(mem_only.decide(&p) <= full.decide(&p));
    }
}
