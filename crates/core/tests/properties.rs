//! Property-based tests of the MemScale models: slack algebra, performance
//! model monotonicity, and governor safety.

use memscale::governor::{EnergyObjective, GovernorConfig, MemScaleGovernor, ProfileVerdict};
use memscale::perf_model::PerfModel;
use memscale::profile::{AppSample, EpochProfile};
use memscale::slack::SlackTracker;
use memscale_mc::McCounters;
use memscale_power::ActivitySummary;
use memscale_types::config::SystemConfig;
use memscale_types::freq::MemFreq;
use memscale_types::time::Picos;
use proptest::prelude::*;

fn model() -> PerfModel {
    let sys = SystemConfig::default();
    PerfModel::new(&sys.timing, &sys.cpu)
}

#[derive(Debug, Clone)]
struct Window {
    tic: u64,
    rpki_mille: u64, // misses per million instructions
    bank_q: u64,     // BTO per 100 BTC
    chan_q: u64,     // CTO per 100 CTC
    hit_pct: u64,
}

fn window_strategy() -> impl Strategy<Value = Window> {
    (
        10_000u64..2_000_000,
        10u64..25_000,
        0u64..800,
        0u64..800,
        0u64..20,
    )
        .prop_map(|(tic, rpki_mille, bank_q, chan_q, hit_pct)| Window {
            tic,
            rpki_mille,
            bank_q,
            chan_q,
            hit_pct,
        })
}

fn profile_from(w: &Window) -> EpochProfile {
    let tlm = (w.tic * w.rpki_mille / 1_000_000).max(1);
    let btc = tlm * 16;
    let hits = btc * w.hit_pct / 100;
    EpochProfile {
        window: Picos::from_us(300),
        freq: MemFreq::F800,
        apps: vec![AppSample { tic: w.tic, tlm }; 16],
        mc: McCounters {
            btc,
            bto: btc * w.bank_q / 100,
            ctc: btc,
            cto: btc * w.chan_q / 100,
            cbmc: btc - hits,
            rbhc: hits,
            ..McCounters::new()
        },
        activity: ActivitySummary {
            window: Picos::from_us(300),
            act_rate_hz: (btc - hits) as f64 / 300e-6,
            read_burst_frac: 0.02,
            write_burst_frac: 0.002,
            active_frac: 0.2,
            pd_frac: 0.0,
            deep_pd_frac: 0.0,
            bus_util: 0.3,
        },
    }
}

/// Applies one of the fault classes the injector models to a clean profile:
/// 0 = none, 1 = corrupted magnitudes, 2 = dropped samples, 3 = implausible
/// queue counters, 4 = misses exceeding instructions.
fn poisoned(profile: &EpochProfile, kind: u8) -> EpochProfile {
    let mut p = profile.clone();
    match kind {
        0 => {}
        1 => {
            for a in &mut p.apps {
                a.tic = a.tic.saturating_mul(1 << 40);
            }
        }
        2 => {
            for a in &mut p.apps {
                *a = AppSample::default();
            }
        }
        3 => {
            p.mc.bto = p.mc.btc.saturating_mul(1 << 20).max(1 << 40);
        }
        4 => {
            for a in &mut p.apps {
                a.tlm = a.tic + 1;
            }
        }
        _ => unreachable!(),
    }
    p
}

/// A measured epoch at the lowest grid point with memory-dominated counters:
/// far slower than the same work at `f_max`, so the end-of-epoch update drives
/// every application's slack deeply negative.
fn overrun_epoch() -> EpochProfile {
    let window = Picos::from_us(4_700);
    // Memory-dominated but feasible: α·tpi_mem at the profiled frequency
    // must stay below the wall-clock TPI or the TPI_cpu floor clamps the
    // max-frequency estimate above the measurement.
    let tlm = 9_000;
    let btc = tlm * 16;
    EpochProfile {
        window,
        freq: MemFreq::ALL[0],
        apps: vec![AppSample { tic: 940_000, tlm }; 16],
        mc: McCounters {
            btc,
            bto: btc * 2,
            ctc: btc,
            cto: btc,
            cbmc: btc - tlm,
            rbhc: tlm,
            ..McCounters::new()
        },
        activity: ActivitySummary {
            window,
            act_rate_hz: (btc - tlm) as f64 / window.as_secs_f64(),
            read_burst_frac: 0.1,
            write_burst_frac: 0.01,
            active_frac: 0.8,
            pd_frac: 0.0,
            deep_pd_frac: 0.0,
            bus_util: 0.7,
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Predicted CPI is finite, positive, and decreases (weakly) with
    /// frequency for every plausible counter window.
    #[test]
    fn cpi_prediction_is_monotone(w in window_strategy()) {
        let m = model();
        let p = profile_from(&w);
        let mut last = f64::INFINITY;
        for f in MemFreq::ALL {
            let cpi = m.predict_cpi(&p, 0, f).expect("apps present");
            prop_assert!(cpi.is_finite() && cpi > 0.0);
            prop_assert!(cpi <= last + 1e-12, "{f}: {cpi} > {last}");
            last = cpi;
        }
    }

    /// Dilation versus max frequency is exactly 1 at 800 MHz and >= 1
    /// elsewhere.
    #[test]
    fn dilation_anchored_at_max(w in window_strategy()) {
        let m = model();
        let p = profile_from(&w);
        let at_max = m.predict_dilation(&p, 0, MemFreq::MAX).unwrap();
        prop_assert!((at_max - 1.0).abs() < 1e-12);
        for f in MemFreq::ALL {
            prop_assert!(m.predict_dilation(&p, 0, f).unwrap() >= 1.0 - 1e-12);
        }
    }

    /// Slack algebra: a sequence of updates is order-independent in sum.
    #[test]
    fn slack_updates_commute(
        updates in prop::collection::vec((1u64..10_000, 1u64..10_000), 1..20),
    ) {
        let mut fwd = SlackTracker::new(1, 0.1);
        for (max_us, actual_us) in &updates {
            fwd.update(0, *max_us as f64 * 1e-6, Picos::from_us(*actual_us));
        }
        let mut rev = SlackTracker::new(1, 0.1);
        for (max_us, actual_us) in updates.iter().rev() {
            rev.update(0, *max_us as f64 * 1e-6, Picos::from_us(*actual_us));
        }
        prop_assert!((fwd.slack_secs(0) - rev.slack_secs(0)).abs() < 1e-12);
    }

    /// permits() is monotone: if a deeper dilation fits, so does a lighter
    /// one.
    #[test]
    fn permits_is_monotone_in_dilation(
        slack_us in -5_000i64..5_000,
        d_mille in 1_000u64..1_500,
    ) {
        let mut s = SlackTracker::new(1, 0.1);
        // Bank (or owe) some slack.
        if slack_us >= 0 {
            s.update(0, slack_us as f64 * 1e-6, Picos::ZERO);
        } else {
            s.update(0, 0.0, Picos::from_us((-slack_us).cast_unsigned()));
        }
        let epoch = Picos::from_ms(5);
        let deep = d_mille as f64 / 1_000.0;
        let light = 1.0 + (deep - 1.0) / 2.0;
        if s.permits(0, deep, epoch) {
            prop_assert!(s.permits(0, light, epoch));
        }
    }

    /// The governor always returns a frequency whose predicted dilation is
    /// permitted by the slack state — or the maximum frequency.
    #[test]
    fn governor_choice_is_safe(w in window_strategy()) {
        let sys = SystemConfig::default();
        let mut gov = MemScaleGovernor::new(&sys, GovernorConfig::default());
        gov.set_rest_of_system_w(50.0);
        let p = profile_from(&w);
        let chosen = gov.decide(&p);
        if chosen != MemFreq::MAX {
            let m = model();
            let d = m.predict_dilation(&p, 0, chosen).unwrap();
            prop_assert!(
                d <= 1.0 + gov.config().gamma + 1e-9,
                "{chosen}: dilation {d}"
            );
        }
    }

    /// The memory-only objective never picks a faster frequency than the
    /// full-system objective on the same profile.
    #[test]
    fn memory_objective_scales_at_least_as_deep(w in window_strategy()) {
        let sys = SystemConfig::default();
        let p = profile_from(&w);
        let mut full = MemScaleGovernor::new(&sys, GovernorConfig::default());
        full.set_rest_of_system_w(50.0);
        let mut mem_only = MemScaleGovernor::new(
            &sys,
            GovernorConfig {
                objective: EnergyObjective::MemoryOnly,
                ..GovernorConfig::default()
            },
        );
        mem_only.set_rest_of_system_w(50.0);
        prop_assert!(mem_only.decide(&p) <= full.decide(&p));
    }

    /// No profile a correct simulation can produce is ever clamped or
    /// discarded: the plausibility thresholds only fire on poisoned reads.
    #[test]
    fn clean_profiles_are_never_flagged(w in window_strategy()) {
        let sys = SystemConfig::default();
        let mut gov = MemScaleGovernor::new(&sys, GovernorConfig::default());
        gov.set_rest_of_system_w(50.0);
        let p = profile_from(&w);
        prop_assert!(matches!(gov.sanitize_profile(&p), ProfileVerdict::Clean));
        let _ = gov.decide(&p);
        gov.end_epoch(&p);
        let h = gov.health();
        prop_assert_eq!(h.discarded_profiles, 0);
        prop_assert_eq!(h.clamped_profiles, 0);
        prop_assert_eq!(h.forced_max_epochs, 0);
    }

    /// Whatever poison a profile read carries — corrupted magnitudes,
    /// dropped samples, implausible queues, misses exceeding instructions —
    /// the hardened decision never lands on a frequency whose predicted
    /// dilation the slack account forbids.
    #[test]
    fn hardened_governor_never_violates_permits(
        w in window_strategy(),
        kind in 0u8..5,
    ) {
        let sys = SystemConfig::default();
        let mut gov = MemScaleGovernor::new(&sys, GovernorConfig::default());
        gov.set_rest_of_system_w(50.0);
        let clean = profile_from(&w);
        // Establish a last-good profile, as any real run would have.
        let _ = gov.decide(&clean);
        let bad = poisoned(&clean, kind);
        // The profile the decision is actually based on after sanitising:
        // clamped repair, or the last-good fallback for a discarded read.
        let effective = match gov.sanitize_profile(&bad) {
            ProfileVerdict::Clean => bad.clone(),
            ProfileVerdict::Clamped(p) => *p,
            ProfileVerdict::Discarded => clean.clone(),
        };
        let chosen = gov.decide(&bad);
        if chosen != MemFreq::MAX {
            let m = model();
            let epoch = gov.config().epoch;
            for app in 0..effective.apps.len() {
                if let Some(d) = m.predict_dilation(&effective, app, chosen) {
                    prop_assert!(
                        gov.slack().permits(app, d, epoch),
                        "app {}: dilation {} at {} violates slack", app, d, chosen
                    );
                }
            }
        }
    }

    /// Once the slack account is more than the γ allowance in debt, the
    /// very next decision is `f_max` — no profile, however optimistic, can
    /// talk the governor into staying slow.
    #[test]
    fn negative_slack_recovers_to_max_within_one_epoch(w in window_strategy()) {
        let sys = SystemConfig::default();
        let mut gov = MemScaleGovernor::new(&sys, GovernorConfig::default());
        gov.set_rest_of_system_w(50.0);
        gov.end_epoch(&overrun_epoch());
        let epoch = gov.config().epoch;
        let owed = gov.slack().slack_secs(0);
        prop_assert!(
            owed < -(gov.config().gamma * epoch.as_secs_f64()),
            "precondition: slack {owed} not past the γ allowance"
        );
        prop_assert_eq!(gov.decide(&profile_from(&w)), MemFreq::MAX);
    }
}
