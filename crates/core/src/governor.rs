//! Frequency selection (§3.2 "Frequency selection" + Eq 10).
//!
//! Each epoch, the governor exhaustively scores the ten operating points:
//! a point is *feasible* if every application's predicted dilation stays
//! within its slack-adjusted target, and among feasible points the governor
//! minimizes predicted energy — full-system by default (the SER numerator
//! `T(f)·P(f)`; the baseline denominator is a constant and drops out of the
//! arg-min), or memory-only for the MemScale(MemEnergy) variant.

use crate::perf_model::PerfModel;
use crate::profile::EpochProfile;
use crate::slack::SlackTracker;
use memscale_power::PowerModel;
use memscale_types::config::SystemConfig;
use memscale_types::freq::MemFreq;
use memscale_types::invariants::{FsmSpec, FsmTransition};
use memscale_types::time::Picos;

/// What the governor minimizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EnergyObjective {
    /// Minimize full-system energy (the paper's MemScale).
    #[default]
    FullSystem,
    /// Minimize memory-subsystem energy only (MemScale(MemEnergy), §4.2.3).
    MemoryOnly,
}

/// Governor parameters (§3.2 defaults).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GovernorConfig {
    /// Maximum allowed CPI degradation γ (default 10 %).
    pub gamma: f64,
    /// Epoch length (default 5 ms — an OS quantum).
    pub epoch: Picos,
    /// Profiling-phase length at the start of each epoch (default 300 µs).
    pub profile_len: Picos,
    /// Energy objective.
    pub objective: EnergyObjective,
    /// Whether slack carries across epochs (true per the paper; false is
    /// the per-epoch-reset ablation).
    pub slack_carry: bool,
    /// §3.3's optional refinement for deep queues: remember the queue
    /// factors (ξ) measured at each visited frequency and interpolate them
    /// for candidate frequencies, instead of reusing the profiled value
    /// everywhere. Off by default (the paper's default configuration).
    pub queue_interpolation: bool,
}

impl Default for GovernorConfig {
    fn default() -> Self {
        GovernorConfig {
            gamma: 0.10,
            epoch: Picos::from_ms(5),
            profile_len: Picos::from_us(300),
            objective: EnergyObjective::FullSystem,
            slack_carry: true,
            queue_interpolation: false,
        }
    }
}

/// Per-frequency diagnostic: (dilation vs max freq, predicted memory W,
/// SER score); `None` when slack rules the frequency out.
pub type CandidateScore = Option<(f64, f64, f64)>;

/// Outcome of the governor's plausibility check on one [`EpochProfile`]
/// (the clamp → last-good → `f_max` degradation ladder's first rung).
#[derive(Debug, Clone, PartialEq)]
pub enum ProfileVerdict {
    /// Every counter is plausible; the profile is used as delivered.
    Clean,
    /// Individual counters were implausible and have been clamped into the
    /// plausible envelope; the repaired profile is used.
    Clamped(Box<EpochProfile>),
    /// The profile is poisoned beyond repair (non-monotonic or overflowing
    /// TIC, dropped read); the governor falls back to the last-good profile
    /// or, lacking one, to `f_max`.
    Discarded,
}

/// Degradation bookkeeping of the hardened governor, surfaced in fault
/// reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GovernorHealth {
    /// Poisoned profiles discarded (fell back to last-good or `f_max`).
    pub discarded_profiles: u64,
    /// Profiles with individually implausible counters clamped.
    pub clamped_profiles: u64,
    /// Epochs decided at `f_max` by force (`QoS` guard or failed switch).
    pub forced_max_epochs: u64,
    /// Times the `QoS` guard tripped (measured slack diverged from predicted
    /// for two consecutive epochs).
    pub qos_interventions: u64,
    /// Frequency switches observed landing on a different point than
    /// requested.
    pub failed_switches: u64,
}

/// An application may not plausibly retire more than this many instructions
/// per CPU cycle (real IPC tops out well under 4; the margin guarantees no
/// legitimate profile is ever discarded).
const MAX_PLAUSIBLE_IPC: f64 = 16.0;

/// An arrival may not plausibly find more than this many requests queued
/// ahead of it (bounded by outstanding misses, i.e. cores; generous margin).
const MAX_PLAUSIBLE_QUEUE: f64 = 1024.0;

/// Measured mean dilation may exceed the prediction by this much before an
/// epoch counts as a `QoS` strike (model error in clean runs stays far below).
const QOS_DIVERGENCE: f64 = 0.5;

/// Consecutive strikes before the `QoS` guard forces `f_max` (hysteresis: one
/// noisy epoch never trips it).
const QOS_STRIKES: u32 = 2;

/// Epochs spent at forced `f_max` after a `QoS` intervention.
const QOS_FORCE_EPOCHS: u32 = 2;

/// The governor hardening ladder as a declarative transition table.
///
/// Abstracts the counters of [`MemScaleGovernor`] into three trust states —
/// `trusting` (`force_max == 0`, no strike armed), `strike-armed`
/// (`qos_strikes > 0`), and `forced-max` (`force_max > 0`) — so the
/// `memscale-check` model checker can prove the recovery structure:
/// deterministic reactions, every state reachable, and every state able to
/// return to `trusting` (no recovery dead-end). Unit tests below pin the
/// table to the executable ladder.
///
/// Conventions mirrored from the implementation:
///
/// * Profile verdicts (clean / clamped / discarded) never change the trust
///   state by themselves — a discarded profile degrades one *decision* (to
///   last-good or `f_max`) without arming the ladder.
/// * `qos-diverged` arms a strike; a second consecutive strike converts to
///   forced `f_max` (`QOS_STRIKES == 2` hysteresis). `qos-within-bound`
///   disarms.
/// * `switch-fell-short` (the frequency switch landed below the requested
///   point) forces `f_max` from any state.
/// * `force-elapsed` fires when the owed forced epochs have been served;
///   while forced, the `QoS` comparison is disarmed, so `qos-*` events
///   self-loop.
pub const GOVERNOR_LADDER_FSM: FsmSpec = FsmSpec {
    name: "governor-ladder",
    states: &["trusting", "strike-armed", "forced-max"],
    events: &[
        "profile-clean",
        "profile-clamped",
        "profile-discarded",
        "qos-diverged",
        "qos-within-bound",
        "switch-fell-short",
        "force-elapsed",
    ],
    initial: "trusting",
    operational: "trusting",
    low_power: &[],
    state_requires: &[],
    transitions: &[
        FsmTransition {
            from: "trusting",
            event: "profile-clean",
            to: "trusting",
            exit_param: None,
            requires: None,
        },
        FsmTransition {
            from: "trusting",
            event: "profile-clamped",
            to: "trusting",
            exit_param: None,
            requires: None,
        },
        FsmTransition {
            from: "trusting",
            event: "profile-discarded",
            to: "trusting",
            exit_param: None,
            requires: None,
        },
        FsmTransition {
            from: "trusting",
            event: "qos-diverged",
            to: "strike-armed",
            exit_param: None,
            requires: None,
        },
        FsmTransition {
            from: "trusting",
            event: "qos-within-bound",
            to: "trusting",
            exit_param: None,
            requires: None,
        },
        FsmTransition {
            from: "trusting",
            event: "switch-fell-short",
            to: "forced-max",
            exit_param: None,
            requires: None,
        },
        FsmTransition {
            from: "strike-armed",
            event: "profile-clean",
            to: "strike-armed",
            exit_param: None,
            requires: None,
        },
        FsmTransition {
            from: "strike-armed",
            event: "profile-clamped",
            to: "strike-armed",
            exit_param: None,
            requires: None,
        },
        FsmTransition {
            from: "strike-armed",
            event: "profile-discarded",
            to: "strike-armed",
            exit_param: None,
            requires: None,
        },
        FsmTransition {
            from: "strike-armed",
            event: "qos-diverged",
            to: "forced-max",
            exit_param: None,
            requires: None,
        },
        FsmTransition {
            from: "strike-armed",
            event: "qos-within-bound",
            to: "trusting",
            exit_param: None,
            requires: None,
        },
        FsmTransition {
            from: "strike-armed",
            event: "switch-fell-short",
            to: "forced-max",
            exit_param: None,
            requires: None,
        },
        FsmTransition {
            from: "forced-max",
            event: "profile-clean",
            to: "forced-max",
            exit_param: None,
            requires: None,
        },
        FsmTransition {
            from: "forced-max",
            event: "profile-clamped",
            to: "forced-max",
            exit_param: None,
            requires: None,
        },
        FsmTransition {
            from: "forced-max",
            event: "profile-discarded",
            to: "forced-max",
            exit_param: None,
            requires: None,
        },
        FsmTransition {
            from: "forced-max",
            event: "qos-diverged",
            to: "forced-max",
            exit_param: None,
            requires: None,
        },
        FsmTransition {
            from: "forced-max",
            event: "qos-within-bound",
            to: "forced-max",
            exit_param: None,
            requires: None,
        },
        FsmTransition {
            from: "forced-max",
            event: "switch-fell-short",
            to: "forced-max",
            exit_param: None,
            requires: None,
        },
        FsmTransition {
            from: "forced-max",
            event: "force-elapsed",
            to: "trusting",
            exit_param: None,
            requires: None,
        },
    ],
};

/// The MemScale OS governor.
#[derive(Debug, Clone)]
pub struct MemScaleGovernor {
    cfg: GovernorConfig,
    perf: PerfModel,
    power: PowerModel,
    slack: SlackTracker,
    rest_w: f64,
    /// Last measured (`ξ_bank`, `ξ_bus`) per operating point, for the §3.3
    /// queue-interpolation refinement.
    xi_observed: [Option<(f64, f64)>; MemFreq::ALL.len()],
    /// Most recent profile that passed the plausibility check; substitutes
    /// for a discarded one.
    last_good: Option<EpochProfile>,
    /// Epochs still owed to forced-`f_max` recovery.
    force_max: u32,
    /// Consecutive epochs whose measured dilation diverged from predicted.
    qos_strikes: u32,
    /// Mean dilation predicted for the frequency chosen this epoch.
    predicted_dilation: Option<f64>,
    health: GovernorHealth,
}

impl MemScaleGovernor {
    /// Builds a governor for the given system.
    ///
    /// The slack tracker is sized on first use; the rest-of-system power
    /// defaults to the §4.1 memory-fraction estimate for an idle memory
    /// subsystem and should be calibrated with
    /// [`set_rest_of_system_w`](Self::set_rest_of_system_w).
    pub fn new(sys: &SystemConfig, cfg: GovernorConfig) -> Self {
        let power = PowerModel::new(sys);
        // Provisional rest-of-system estimate from idle memory power.
        let idle_mem = power
            .memory_power(&[], &[], Picos::from_ms(1), MemFreq::MAX)
            .total_w();
        let rest_w = power.rest_of_system_w(idle_mem.max(1.0) + 20.0);
        MemScaleGovernor {
            cfg,
            perf: PerfModel::new(&sys.timing, &sys.cpu),
            power,
            slack: SlackTracker::new(0, cfg.gamma),
            rest_w,
            xi_observed: [None; MemFreq::ALL.len()],
            last_good: None,
            force_max: 0,
            qos_strikes: 0,
            predicted_dilation: None,
            health: GovernorHealth::default(),
        }
    }

    /// Estimates the queue factors at candidate frequency `f` by linear
    /// interpolation (in bus period, to which queueing roughly scales) over
    /// the observed history; falls back to the profiled values.
    fn interpolated_xi(&self, profile: &EpochProfile, f: MemFreq) -> Option<(f64, f64)> {
        if !self.cfg.queue_interpolation {
            return None;
        }
        if let Some(xi) = self.xi_observed[f.index()] {
            return Some(xi);
        }
        // Need two observations to interpolate.
        let known: Vec<(f64, f64, f64)> = MemFreq::ALL
            .iter()
            .filter_map(|&g| {
                self.xi_observed[g.index()].map(|(b, c)| (g.cycle().as_ns_f64(), b, c))
            })
            .collect();
        if known.len() < 2 {
            return None;
        }
        // Linear fit through the two period-nearest observations.
        let x = f.cycle().as_ns_f64();
        let mut sorted = known;
        sorted.sort_by(|a, b| {
            (a.0 - x)
                .abs()
                .partial_cmp(&(b.0 - x).abs())
                .expect("finite")
        });
        let (x0, b0, c0) = sorted[0];
        let (x1, b1, c1) = sorted[1];
        if (x1 - x0).abs() < 1e-12 {
            return Some((b0, c0));
        }
        let t = (x - x0) / (x1 - x0);
        let _ = profile;
        Some(((b0 + t * (b1 - b0)).max(1.0), (c0 + t * (c1 - c0)).max(1.0)))
    }

    /// A profile whose controller counters are adjusted so the performance
    /// model sees the interpolated queue factors for frequency `f`.
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)] // clamped non-negative
    fn profile_for(&self, profile: &EpochProfile, f: MemFreq) -> EpochProfile {
        let Some((xi_bank, xi_bus)) = self.interpolated_xi(profile, f) else {
            return profile.clone();
        };
        let mut adjusted = profile.clone();
        let btc = adjusted.mc.btc.max(1);
        let ctc = adjusted.mc.ctc.max(1);
        adjusted.mc.bto = ((xi_bank - 1.0).max(0.0) * btc as f64) as u64;
        adjusted.mc.cto = ((xi_bus - 1.0).max(0.0) * ctc as f64) as u64;
        adjusted
    }

    /// The governor's configuration.
    #[inline]
    pub fn config(&self) -> &GovernorConfig {
        &self.cfg
    }

    /// The performance model in use.
    #[inline]
    pub fn perf_model(&self) -> &PerfModel {
        &self.perf
    }

    /// Current per-application slack.
    #[inline]
    pub fn slack(&self) -> &SlackTracker {
        &self.slack
    }

    /// Calibrates the fixed rest-of-system power (W) used by the
    /// full-system objective.
    pub fn set_rest_of_system_w(&mut self, rest_w: f64) {
        self.rest_w = rest_w.max(0.0);
    }

    /// The rest-of-system power currently assumed (W).
    #[inline]
    pub fn rest_of_system_w(&self) -> f64 {
        self.rest_w
    }

    fn ensure_slack(&mut self, apps: usize) {
        if self.slack.len() != apps {
            self.slack = SlackTracker::new(apps, self.cfg.gamma);
        }
    }

    /// Degradation counters accumulated by the hardened decision path.
    #[inline]
    pub fn health(&self) -> &GovernorHealth {
        &self.health
    }

    /// Plausibility check on a delivered profile (§3.1 counters can arrive
    /// corrupted, stale or dropped from real controller hardware).
    ///
    /// Thresholds are deliberately generous — no profile a correct
    /// simulation can produce is ever clamped or discarded — so the check
    /// only fires on genuinely poisoned reads:
    ///
    /// * a TIC of zero (the §3.1 counters are monotonic; a zero delta means
    ///   the read was lost or the counter wrapped) or beyond any plausible
    ///   retirement rate discards the profile;
    /// * TLM exceeding TIC (more misses than instructions) clamps TLM;
    /// * queue-occupancy averages beyond any plausible outstanding count
    ///   clamp BTO/CTO to unit depth.
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)] // bound is positive and < 2^63
    pub fn sanitize_profile(&self, profile: &EpochProfile) -> ProfileVerdict {
        if profile.apps.is_empty() || profile.window == Picos::ZERO {
            return ProfileVerdict::Discarded;
        }
        let max_tic =
            (profile.window.as_secs_f64() * self.perf.cpu_hz() * MAX_PLAUSIBLE_IPC) as u64;
        let mut repaired: Option<EpochProfile> = None;
        for (i, app) in profile.apps.iter().enumerate() {
            if app.tic == 0 || app.tic > max_tic.max(1) {
                return ProfileVerdict::Discarded;
            }
            if app.tlm > app.tic {
                repaired.get_or_insert_with(|| profile.clone()).apps[i].tlm = app.tic;
            }
        }
        if profile.mc.bank_queue_avg() > MAX_PLAUSIBLE_QUEUE
            || profile.mc.channel_queue_avg() > MAX_PLAUSIBLE_QUEUE
        {
            let p = repaired.get_or_insert_with(|| profile.clone());
            p.mc.bto = p.mc.btc;
            p.mc.cto = p.mc.ctc;
        }
        match repaired {
            Some(p) => ProfileVerdict::Clamped(Box::new(p)),
            None => ProfileVerdict::Clean,
        }
    }

    /// The [`GOVERNOR_LADDER_FSM`] state the ladder currently occupies
    /// (`forced-max` dominates an armed strike).
    pub fn ladder_state(&self) -> &'static str {
        if self.force_max > 0 {
            "forced-max"
        } else if self.qos_strikes > 0 {
            "strike-armed"
        } else {
            "trusting"
        }
    }

    /// Informs the governor of the outcome of the frequency switch it
    /// requested. A switch that lands on a *slower* point than requested
    /// puts the `QoS` bound at risk (the slack account assumed the requested
    /// speed), so the governor schedules a forced `f_max` retry; either way
    /// the epoch's dilation prediction no longer matches the operating
    /// point, so the `QoS` comparison is disarmed for this epoch.
    pub fn note_switch_result(&mut self, requested: MemFreq, actual: MemFreq) {
        if requested == actual {
            return;
        }
        self.health.failed_switches += 1;
        if actual < requested {
            self.force_max = self.force_max.max(1);
        }
        self.predicted_dilation = None;
    }

    /// Per-candidate diagnostics from one decision pass: predicted mean
    /// dilation versus max frequency, predicted memory power, and the SER
    /// numerator score (`None` when slack rules the frequency out).
    pub fn explain(&mut self, profile: &EpochProfile) -> Vec<(MemFreq, CandidateScore)> {
        self.ensure_slack(profile.apps.len());
        MemFreq::ALL
            .iter()
            .map(|&f| (f, self.score(profile, f)))
            .collect()
    }

    fn score(&self, raw_profile: &EpochProfile, f: MemFreq) -> CandidateScore {
        let adjusted;
        let profile = if self.cfg.queue_interpolation {
            adjusted = self.profile_for(raw_profile, f);
            &adjusted
        } else {
            raw_profile
        };
        let mut dil_max_sum = 0.0;
        let mut dil_prof_sum = 0.0;
        let mut counted = 0usize;
        for app in 0..profile.apps.len() {
            let Some(d_max) = self.perf.predict_dilation(profile, app, f) else {
                continue;
            };
            if !self.slack.permits(app, d_max, self.cfg.epoch) {
                return None;
            }
            let d_prof = self
                .perf
                .predict_cpi(profile, app, f)
                .zip(self.perf.predict_cpi(profile, app, profile.freq))
                .map(|(a, b)| a / b)
                .unwrap_or(1.0);
            dil_max_sum += d_max;
            dil_prof_sum += d_prof;
            counted += 1;
        }
        let (d_max, d_prof) = if counted > 0 {
            (
                dil_max_sum / counted as f64,
                (dil_prof_sum / counted as f64).max(1e-6),
            )
        } else {
            (1.0, 1.0)
        };
        let burst_ratio = self.perf.bus_time(f) / self.perf.bus_time(profile.freq);
        let activity = profile.activity.rescale(burst_ratio, d_prof);
        let p_mem = self.power.memory_power_from_summary(&activity, f).total_w();
        let score = match self.cfg.objective {
            EnergyObjective::FullSystem => d_max * (p_mem + self.rest_w),
            EnergyObjective::MemoryOnly => d_max * p_mem,
        };
        Some((d_max, p_mem, score))
    }

    /// Picks the operating point for the remainder of the epoch from the
    /// profiling window's observations.
    ///
    /// Hardened path: a pending forced-`f_max` recovery (`QoS` guard, failed
    /// switch) short-circuits the search; otherwise the profile runs through
    /// [`sanitize_profile`](Self::sanitize_profile) and a poisoned one is
    /// clamped or replaced by the last-good profile (`f_max` when none exists)
    /// before the normal arg-min.
    pub fn decide(&mut self, profile: &EpochProfile) -> MemFreq {
        self.ensure_slack(profile.apps.len());
        if self.force_max > 0 {
            self.force_max -= 1;
            self.health.forced_max_epochs += 1;
            self.predicted_dilation = Some(1.0);
            return MemFreq::MAX;
        }
        let substitute: Option<EpochProfile> = match self.sanitize_profile(profile) {
            ProfileVerdict::Clean => {
                self.last_good = Some(profile.clone());
                None
            }
            ProfileVerdict::Clamped(p) => {
                self.health.clamped_profiles += 1;
                Some(*p)
            }
            ProfileVerdict::Discarded => {
                self.health.discarded_profiles += 1;
                match &self.last_good {
                    Some(p) => Some(p.clone()),
                    None => {
                        self.predicted_dilation = Some(1.0);
                        return MemFreq::MAX;
                    }
                }
            }
        };
        let profile = substitute.as_ref().unwrap_or(profile);
        let mut best = MemFreq::MAX;
        let mut best_score = f64::INFINITY;
        let mut best_dilation = 1.0;

        for &f in &MemFreq::ALL {
            // SER numerator: relative time × power (denominator constant).
            if let Some((d_max, _, score)) = self.score(profile, f) {
                if score < best_score {
                    best_score = score;
                    best = f;
                    best_dilation = d_max;
                }
            }
        }
        self.predicted_dilation = Some(best_dilation);
        best
    }

    /// End-of-epoch slack update (§3.2 stage 4): from the epoch's measured
    /// counters, estimate what the epoch's work would have taken at maximum
    /// frequency and roll the difference into each application's slack.
    ///
    /// Hardened path: the measured profile runs through the same
    /// plausibility check as the decision profile. A discarded read skips
    /// the slack update entirely (a poisoned measurement must not corrupt
    /// the slack account). A `QoS` guard then compares the epoch's measured
    /// mean dilation against the prediction the decision was based on; two
    /// consecutive divergent epochs force `f_max` with hysteresis.
    pub fn end_epoch(&mut self, measured: &EpochProfile) {
        self.ensure_slack(measured.apps.len());
        let substitute: Option<EpochProfile> = match self.sanitize_profile(measured) {
            ProfileVerdict::Clean => None,
            ProfileVerdict::Clamped(p) => {
                self.health.clamped_profiles += 1;
                Some(*p)
            }
            ProfileVerdict::Discarded => {
                self.health.discarded_profiles += 1;
                self.predicted_dilation = None;
                return;
            }
        };
        let measured = substitute.as_ref().unwrap_or(measured);
        // Record the queue factors observed at this operating point for the
        // interpolation refinement.
        if measured.mc.btc > 0 {
            self.xi_observed[measured.freq.index()] = Some((
                1.0 + measured.mc.bank_queue_avg(),
                1.0 + measured.mc.channel_queue_avg(),
            ));
        }
        let mut dil_sum = 0.0;
        let mut dil_count = 0usize;
        for app in 0..measured.apps.len() {
            let Some(cpi_actual) = measured.measured_cpi(app, self.perf.cpu_hz()) else {
                continue;
            };
            let Some(cpi_max) = self.perf.predict_cpi(measured, app, MemFreq::MAX) else {
                continue;
            };
            let t_max = measured.window.as_secs_f64() * (cpi_max / cpi_actual).min(1.0);
            self.slack.update(app, t_max, measured.window);
            dil_sum += (cpi_actual / cpi_max).max(1.0);
            dil_count += 1;
        }
        // QoS guard: measured slack consumption diverging from the decision's
        // prediction means the model (or the hardware underneath it) is lying
        // — stop trusting it and recover at f_max until the divergence clears.
        if let Some(predicted) = self.predicted_dilation.take() {
            if dil_count > 0 {
                let actual = dil_sum / dil_count as f64;
                if actual - predicted > QOS_DIVERGENCE {
                    self.qos_strikes += 1;
                    if self.qos_strikes >= QOS_STRIKES {
                        self.qos_strikes = 0;
                        self.force_max = self.force_max.max(QOS_FORCE_EPOCHS);
                        self.health.qos_interventions += 1;
                    }
                } else {
                    self.qos_strikes = 0;
                }
            }
        }
        if !self.cfg.slack_carry {
            self.slack.reset();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::AppSample;
    use memscale_mc::McCounters;
    use memscale_power::ActivitySummary;

    fn governor(objective: EnergyObjective) -> MemScaleGovernor {
        let mut g = MemScaleGovernor::new(
            &SystemConfig::default(),
            GovernorConfig {
                objective,
                ..GovernorConfig::default()
            },
        );
        g.set_rest_of_system_w(60.0);
        g
    }

    fn ilp_profile() -> EpochProfile {
        // 0.2 misses per kilo-instruction; almost no queueing.
        EpochProfile {
            window: Picos::from_us(300),
            freq: MemFreq::F800,
            apps: vec![
                AppSample {
                    tic: 1_000_000,
                    tlm: 200
                };
                16
            ],
            mc: McCounters {
                btc: 3_200,
                bto: 100,
                ctc: 3_200,
                cto: 200,
                cbmc: 3_200,
                ..McCounters::new()
            },
            activity: ActivitySummary {
                window: Picos::from_us(300),
                act_rate_hz: 1e6,
                read_burst_frac: 0.005,
                write_burst_frac: 0.0005,
                active_frac: 0.02,
                pd_frac: 0.0,
                deep_pd_frac: 0.0,
                bus_util: 0.02,
            },
        }
    }

    fn mem_profile() -> EpochProfile {
        // ~17 RPKI, heavy queueing, high utilization.
        EpochProfile {
            window: Picos::from_us(300),
            freq: MemFreq::F800,
            apps: vec![
                AppSample {
                    tic: 60_000,
                    tlm: 1_020
                };
                16
            ],
            mc: McCounters {
                btc: 16_320,
                bto: 20_000,
                ctc: 16_320,
                cto: 30_000,
                cbmc: 16_000,
                rbhc: 320,
                ..McCounters::new()
            },
            activity: ActivitySummary {
                window: Picos::from_us(300),
                act_rate_hz: 5.4e7,
                read_burst_frac: 0.08,
                write_burst_frac: 0.01,
                active_frac: 0.5,
                pd_frac: 0.0,
                deep_pd_frac: 0.0,
                bus_util: 0.68,
            },
        }
    }

    #[test]
    fn ladder_fsm_matches_implementation() {
        // A failed (slower-than-requested) switch forces f_max from any
        // state, exactly as the table's switch-fell-short rows say.
        let mut g = governor(EnergyObjective::FullSystem);
        assert_eq!(g.ladder_state(), GOVERNOR_LADDER_FSM.initial);
        g.note_switch_result(MemFreq::F800, MemFreq::F200);
        assert_eq!(g.ladder_state(), "forced-max");
        let row = GOVERNOR_LADDER_FSM
            .transitions
            .iter()
            .find(|t| t.from == "trusting" && t.event == "switch-fell-short")
            .expect("row");
        assert_eq!(row.to, "forced-max");
        // Serving the owed forced epoch returns to trusting (force-elapsed).
        let f = g.decide(&mem_profile());
        assert_eq!(f, MemFreq::MAX);
        assert_eq!(g.ladder_state(), "trusting");

        // Two consecutive QoS strikes escalate trusting -> strike-armed ->
        // forced-max, mirroring the qos-diverged rows.
        let mut g = governor(EnergyObjective::FullSystem);
        let p = ilp_profile();
        // A measured epoch far slower than the ILP-based prediction:
        // memory-bound counters observed at the lowest grid point.
        let mut measured = mem_profile();
        measured.freq = MemFreq::F200;
        for expected in ["strike-armed", "forced-max"] {
            g.decide(&p);
            g.end_epoch(&measured);
            assert_eq!(g.ladder_state(), expected);
        }
    }

    #[test]
    fn ilp_workload_drops_to_minimum_frequency() {
        let mut g = governor(EnergyObjective::FullSystem);
        let f = g.decide(&ilp_profile());
        assert!(
            f <= MemFreq::F333,
            "compute-bound mix should scale deep, got {f}"
        );
    }

    #[test]
    fn mem_workload_stays_fast() {
        let mut g = governor(EnergyObjective::FullSystem);
        let f = g.decide(&mem_profile());
        assert!(
            f >= MemFreq::F467,
            "memory-bound mix should stay fast, got {f}"
        );
    }

    #[test]
    fn memory_only_objective_scales_at_least_as_deep() {
        let mut gs = governor(EnergyObjective::FullSystem);
        let mut gm = governor(EnergyObjective::MemoryOnly);
        let p = mem_profile();
        assert!(gm.decide(&p) <= gs.decide(&p));
    }

    #[test]
    fn negative_slack_forces_recovery() {
        let mut g = governor(EnergyObjective::FullSystem);
        let p = ilp_profile();
        g.decide(&p); // size the tracker
                      // Simulate epochs that badly overshot: massive negative slack.
        for app in 0..16 {
            g.slack.update(app, 1e-3, Picos::from_ms(5));
        }
        let f = g.decide(&p);
        assert_eq!(f, MemFreq::MAX, "governor must recover lost slack");
    }

    #[test]
    fn end_epoch_banks_slack_when_running_at_max() {
        let mut g = governor(EnergyObjective::FullSystem);
        let p = ilp_profile();
        g.decide(&p);
        g.end_epoch(&p);
        // Running at max frequency accrues ~gamma x epoch of slack.
        let s = g.slack().slack_secs(0);
        assert!(s > 0.0, "expected positive slack, got {s}");
    }

    #[test]
    fn slack_reset_ablation() {
        let mut g = MemScaleGovernor::new(
            &SystemConfig::default(),
            GovernorConfig {
                slack_carry: false,
                ..GovernorConfig::default()
            },
        );
        let p = ilp_profile();
        g.decide(&p);
        g.end_epoch(&p);
        assert_eq!(g.slack().slack_secs(0), 0.0);
    }

    #[test]
    fn queue_interpolation_uses_observed_history() {
        let mut g = MemScaleGovernor::new(
            &SystemConfig::default(),
            GovernorConfig {
                queue_interpolation: true,
                ..GovernorConfig::default()
            },
        );
        g.set_rest_of_system_w(60.0);
        // Teach the governor two observations: light queues at 800 MHz,
        // heavy queues at 400 MHz.
        let mut at800 = mem_profile();
        at800.freq = MemFreq::F800;
        g.decide(&at800);
        g.end_epoch(&at800);
        let mut at400 = mem_profile();
        at400.freq = MemFreq::F400;
        at400.mc.bto *= 3;
        at400.mc.cto *= 3;
        g.end_epoch(&at400);
        // Interpolation must now produce finite, >= 1 factors between them.
        let xi = g
            .interpolated_xi(&at800, MemFreq::F600)
            .expect("two points");
        let lo = 1.0 + at800.mc.bank_queue_avg();
        let hi = 1.0 + at400.mc.bank_queue_avg();
        assert!(
            xi.0 >= lo.min(hi) - 1e-9 && xi.0 <= lo.max(hi) + 1e-9,
            "{xi:?}"
        );
        // And decide() still returns a safe choice.
        let f = g.decide(&at800);
        assert!(f >= MemFreq::F200);
    }

    #[test]
    fn queue_interpolation_off_by_default() {
        let mut g = governor(EnergyObjective::FullSystem);
        let p = mem_profile();
        g.end_epoch(&p);
        assert!(g.interpolated_xi(&p, MemFreq::F400).is_none());
    }

    #[test]
    fn clean_profile_passes_sanitizer_untouched() {
        let g = governor(EnergyObjective::FullSystem);
        assert_eq!(g.sanitize_profile(&ilp_profile()), ProfileVerdict::Clean);
        assert_eq!(g.sanitize_profile(&mem_profile()), ProfileVerdict::Clean);
    }

    #[test]
    fn dropped_counters_are_discarded_and_fall_back_to_last_good() {
        let mut g = governor(EnergyObjective::FullSystem);
        let clean = ilp_profile();
        let chosen = g.decide(&clean); // establishes last-good
        let mut dropped = clean.clone();
        for app in &mut dropped.apps {
            *app = AppSample::default();
        }
        dropped.mc = McCounters::new();
        assert_eq!(g.sanitize_profile(&dropped), ProfileVerdict::Discarded);
        // The decision from the poisoned read matches the last-good one.
        assert_eq!(g.decide(&dropped), chosen);
        assert_eq!(g.health().discarded_profiles, 1);
    }

    #[test]
    fn discard_without_last_good_forces_max() {
        let mut g = governor(EnergyObjective::FullSystem);
        let mut poisoned = ilp_profile();
        for app in &mut poisoned.apps {
            app.tic = app.tic.saturating_mul(1 << 14); // overflowing TIC
            app.tlm = app.tlm.saturating_mul(1 << 14);
        }
        assert_eq!(g.sanitize_profile(&poisoned), ProfileVerdict::Discarded);
        assert_eq!(g.decide(&poisoned), MemFreq::MAX);
        assert_eq!(g.health().discarded_profiles, 1);
    }

    #[test]
    fn implausible_queue_counters_are_clamped() {
        let g = governor(EnergyObjective::FullSystem);
        let mut p = mem_profile();
        p.mc.bto = p.mc.bto.saturating_mul(1 << 14);
        match g.sanitize_profile(&p) {
            ProfileVerdict::Clamped(fixed) => {
                assert_eq!(fixed.mc.bto, fixed.mc.btc);
                assert_eq!(fixed.mc.cto, fixed.mc.ctc);
                assert_eq!(fixed.apps, p.apps, "apps untouched");
            }
            v => panic!("expected clamp, got {v:?}"),
        }
    }

    #[test]
    fn tlm_beyond_tic_is_clamped() {
        let g = governor(EnergyObjective::FullSystem);
        let mut p = ilp_profile();
        p.apps[3].tlm = p.apps[3].tic + 17;
        match g.sanitize_profile(&p) {
            ProfileVerdict::Clamped(fixed) => {
                assert_eq!(fixed.apps[3].tlm, fixed.apps[3].tic);
                assert_eq!(fixed.apps[0], p.apps[0]);
            }
            v => panic!("expected clamp, got {v:?}"),
        }
    }

    #[test]
    fn failed_downswitch_is_benign_failed_upswitch_forces_max() {
        let mut g = governor(EnergyObjective::FullSystem);
        let p = ilp_profile();
        // Wanted slower, stuck fast: no QoS risk, next decision is normal.
        let f = g.decide(&p);
        g.note_switch_result(f, MemFreq::MAX);
        assert_eq!(g.health().failed_switches, 1);
        assert_eq!(g.decide(&p), f);
        // Wanted faster, stuck slow: forced f_max retry next epoch.
        g.note_switch_result(MemFreq::MAX, MemFreq::F200);
        assert_eq!(g.decide(&p), MemFreq::MAX);
        assert_eq!(g.health().forced_max_epochs, 1);
        // One-shot: the epoch after resumes normal selection.
        assert_eq!(g.decide(&p), f);
    }

    #[test]
    fn qos_guard_needs_two_consecutive_divergent_epochs() {
        let mut g = governor(EnergyObjective::FullSystem);
        let p = ilp_profile();
        // A measured epoch whose actual CPI vastly exceeds the at-f_max
        // prediction: memory-bound counters observed at the lowest grid
        // point, so measured dilation diverges from the ~1.0 the ILP-based
        // decision predicted.
        let mut slow = mem_profile();
        slow.freq = MemFreq::F200;
        g.decide(&p);
        g.end_epoch(&slow); // strike 1
        assert_eq!(g.health().qos_interventions, 0);
        g.decide(&p);
        g.end_epoch(&slow); // strike 2 -> intervention
        assert_eq!(g.health().qos_interventions, 1);
        assert_eq!(g.decide(&p), MemFreq::MAX, "guard forces f_max");
        // A clean epoch in between resets the strike counter.
        let mut g = governor(EnergyObjective::FullSystem);
        g.decide(&p);
        g.end_epoch(&slow); // strike 1
        g.decide(&p);
        g.end_epoch(&p); // on-prediction epoch clears it
        g.decide(&p);
        g.end_epoch(&slow); // strike 1 again, no intervention
        assert_eq!(g.health().qos_interventions, 0);
    }

    #[test]
    fn poisoned_measurement_does_not_corrupt_slack() {
        let mut g = governor(EnergyObjective::FullSystem);
        let p = ilp_profile();
        g.decide(&p);
        g.end_epoch(&p);
        let banked = g.slack().slack_secs(0);
        let mut poisoned = p.clone();
        for app in &mut poisoned.apps {
            app.tic = 0;
        }
        g.end_epoch(&poisoned);
        assert_eq!(g.slack().slack_secs(0), banked, "slack must be untouched");
        assert_eq!(g.health().discarded_profiles, 1);
    }

    #[test]
    fn defaults_match_paper() {
        let c = GovernorConfig::default();
        assert_eq!(c.gamma, 0.10);
        assert_eq!(c.epoch, Picos::from_ms(5));
        assert_eq!(c.profile_len, Picos::from_us(300));
        assert!(c.slack_carry);
        assert!(!c.queue_interpolation);
    }
}
