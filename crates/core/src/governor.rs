//! Frequency selection (§3.2 "Frequency selection" + Eq 10).
//!
//! Each epoch, the governor exhaustively scores the ten operating points:
//! a point is *feasible* if every application's predicted dilation stays
//! within its slack-adjusted target, and among feasible points the governor
//! minimizes predicted energy — full-system by default (the SER numerator
//! `T(f)·P(f)`; the baseline denominator is a constant and drops out of the
//! arg-min), or memory-only for the MemScale(MemEnergy) variant.

use crate::perf_model::PerfModel;
use crate::profile::EpochProfile;
use crate::slack::SlackTracker;
use memscale_power::PowerModel;
use memscale_types::config::SystemConfig;
use memscale_types::freq::MemFreq;
use memscale_types::time::Picos;

/// What the governor minimizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EnergyObjective {
    /// Minimize full-system energy (the paper's MemScale).
    #[default]
    FullSystem,
    /// Minimize memory-subsystem energy only (MemScale(MemEnergy), §4.2.3).
    MemoryOnly,
}

/// Governor parameters (§3.2 defaults).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GovernorConfig {
    /// Maximum allowed CPI degradation γ (default 10 %).
    pub gamma: f64,
    /// Epoch length (default 5 ms — an OS quantum).
    pub epoch: Picos,
    /// Profiling-phase length at the start of each epoch (default 300 µs).
    pub profile_len: Picos,
    /// Energy objective.
    pub objective: EnergyObjective,
    /// Whether slack carries across epochs (true per the paper; false is
    /// the per-epoch-reset ablation).
    pub slack_carry: bool,
    /// §3.3's optional refinement for deep queues: remember the queue
    /// factors (ξ) measured at each visited frequency and interpolate them
    /// for candidate frequencies, instead of reusing the profiled value
    /// everywhere. Off by default (the paper's default configuration).
    pub queue_interpolation: bool,
}

impl Default for GovernorConfig {
    fn default() -> Self {
        GovernorConfig {
            gamma: 0.10,
            epoch: Picos::from_ms(5),
            profile_len: Picos::from_us(300),
            objective: EnergyObjective::FullSystem,
            slack_carry: true,
            queue_interpolation: false,
        }
    }
}

/// Per-frequency diagnostic: (dilation vs max freq, predicted memory W,
/// SER score); `None` when slack rules the frequency out.
pub type CandidateScore = Option<(f64, f64, f64)>;

/// The MemScale OS governor.
#[derive(Debug, Clone)]
pub struct MemScaleGovernor {
    cfg: GovernorConfig,
    perf: PerfModel,
    power: PowerModel,
    slack: SlackTracker,
    rest_w: f64,
    /// Last measured (`ξ_bank`, `ξ_bus`) per operating point, for the §3.3
    /// queue-interpolation refinement.
    xi_observed: [Option<(f64, f64)>; MemFreq::ALL.len()],
}

impl MemScaleGovernor {
    /// Builds a governor for the given system.
    ///
    /// The slack tracker is sized on first use; the rest-of-system power
    /// defaults to the §4.1 memory-fraction estimate for an idle memory
    /// subsystem and should be calibrated with
    /// [`set_rest_of_system_w`](Self::set_rest_of_system_w).
    pub fn new(sys: &SystemConfig, cfg: GovernorConfig) -> Self {
        let power = PowerModel::new(sys);
        // Provisional rest-of-system estimate from idle memory power.
        let idle_mem = power
            .memory_power(&[], &[], Picos::from_ms(1), MemFreq::MAX)
            .total_w();
        let rest_w = power.rest_of_system_w(idle_mem.max(1.0) + 20.0);
        MemScaleGovernor {
            cfg,
            perf: PerfModel::new(&sys.timing, &sys.cpu),
            power,
            slack: SlackTracker::new(0, cfg.gamma),
            rest_w,
            xi_observed: [None; MemFreq::ALL.len()],
        }
    }

    /// Estimates the queue factors at candidate frequency `f` by linear
    /// interpolation (in bus period, to which queueing roughly scales) over
    /// the observed history; falls back to the profiled values.
    fn interpolated_xi(&self, profile: &EpochProfile, f: MemFreq) -> Option<(f64, f64)> {
        if !self.cfg.queue_interpolation {
            return None;
        }
        if let Some(xi) = self.xi_observed[f.index()] {
            return Some(xi);
        }
        // Need two observations to interpolate.
        let known: Vec<(f64, f64, f64)> = MemFreq::ALL
            .iter()
            .filter_map(|&g| {
                self.xi_observed[g.index()].map(|(b, c)| (g.cycle().as_ns_f64(), b, c))
            })
            .collect();
        if known.len() < 2 {
            return None;
        }
        // Linear fit through the two period-nearest observations.
        let x = f.cycle().as_ns_f64();
        let mut sorted = known;
        sorted.sort_by(|a, b| {
            (a.0 - x)
                .abs()
                .partial_cmp(&(b.0 - x).abs())
                .expect("finite")
        });
        let (x0, b0, c0) = sorted[0];
        let (x1, b1, c1) = sorted[1];
        if (x1 - x0).abs() < 1e-12 {
            return Some((b0, c0));
        }
        let t = (x - x0) / (x1 - x0);
        let _ = profile;
        Some(((b0 + t * (b1 - b0)).max(1.0), (c0 + t * (c1 - c0)).max(1.0)))
    }

    /// A profile whose controller counters are adjusted so the performance
    /// model sees the interpolated queue factors for frequency `f`.
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)] // clamped non-negative
    fn profile_for(&self, profile: &EpochProfile, f: MemFreq) -> EpochProfile {
        let Some((xi_bank, xi_bus)) = self.interpolated_xi(profile, f) else {
            return profile.clone();
        };
        let mut adjusted = profile.clone();
        let btc = adjusted.mc.btc.max(1);
        let ctc = adjusted.mc.ctc.max(1);
        adjusted.mc.bto = ((xi_bank - 1.0).max(0.0) * btc as f64) as u64;
        adjusted.mc.cto = ((xi_bus - 1.0).max(0.0) * ctc as f64) as u64;
        adjusted
    }

    /// The governor's configuration.
    #[inline]
    pub fn config(&self) -> &GovernorConfig {
        &self.cfg
    }

    /// The performance model in use.
    #[inline]
    pub fn perf_model(&self) -> &PerfModel {
        &self.perf
    }

    /// Current per-application slack.
    #[inline]
    pub fn slack(&self) -> &SlackTracker {
        &self.slack
    }

    /// Calibrates the fixed rest-of-system power (W) used by the
    /// full-system objective.
    pub fn set_rest_of_system_w(&mut self, rest_w: f64) {
        self.rest_w = rest_w.max(0.0);
    }

    /// The rest-of-system power currently assumed (W).
    #[inline]
    pub fn rest_of_system_w(&self) -> f64 {
        self.rest_w
    }

    fn ensure_slack(&mut self, apps: usize) {
        if self.slack.len() != apps {
            self.slack = SlackTracker::new(apps, self.cfg.gamma);
        }
    }

    /// Per-candidate diagnostics from one decision pass: predicted mean
    /// dilation versus max frequency, predicted memory power, and the SER
    /// numerator score (`None` when slack rules the frequency out).
    pub fn explain(&mut self, profile: &EpochProfile) -> Vec<(MemFreq, CandidateScore)> {
        self.ensure_slack(profile.apps.len());
        MemFreq::ALL
            .iter()
            .map(|&f| (f, self.score(profile, f)))
            .collect()
    }

    fn score(&self, raw_profile: &EpochProfile, f: MemFreq) -> CandidateScore {
        let adjusted;
        let profile = if self.cfg.queue_interpolation {
            adjusted = self.profile_for(raw_profile, f);
            &adjusted
        } else {
            raw_profile
        };
        let mut dil_max_sum = 0.0;
        let mut dil_prof_sum = 0.0;
        let mut counted = 0usize;
        for app in 0..profile.apps.len() {
            let Some(d_max) = self.perf.predict_dilation(profile, app, f) else {
                continue;
            };
            if !self.slack.permits(app, d_max, self.cfg.epoch) {
                return None;
            }
            let d_prof = self
                .perf
                .predict_cpi(profile, app, f)
                .zip(self.perf.predict_cpi(profile, app, profile.freq))
                .map(|(a, b)| a / b)
                .unwrap_or(1.0);
            dil_max_sum += d_max;
            dil_prof_sum += d_prof;
            counted += 1;
        }
        let (d_max, d_prof) = if counted > 0 {
            (
                dil_max_sum / counted as f64,
                (dil_prof_sum / counted as f64).max(1e-6),
            )
        } else {
            (1.0, 1.0)
        };
        let burst_ratio = self.perf.bus_time(f) / self.perf.bus_time(profile.freq);
        let activity = profile.activity.rescale(burst_ratio, d_prof);
        let p_mem = self.power.memory_power_from_summary(&activity, f).total_w();
        let score = match self.cfg.objective {
            EnergyObjective::FullSystem => d_max * (p_mem + self.rest_w),
            EnergyObjective::MemoryOnly => d_max * p_mem,
        };
        Some((d_max, p_mem, score))
    }

    /// Picks the operating point for the remainder of the epoch from the
    /// profiling window's observations.
    pub fn decide(&mut self, profile: &EpochProfile) -> MemFreq {
        self.ensure_slack(profile.apps.len());
        let mut best = MemFreq::MAX;
        let mut best_score = f64::INFINITY;

        for &f in &MemFreq::ALL {
            // SER numerator: relative time × power (denominator constant).
            if let Some((_, _, score)) = self.score(profile, f) {
                if score < best_score {
                    best_score = score;
                    best = f;
                }
            }
        }
        best
    }

    /// End-of-epoch slack update (§3.2 stage 4): from the epoch's measured
    /// counters, estimate what the epoch's work would have taken at maximum
    /// frequency and roll the difference into each application's slack.
    pub fn end_epoch(&mut self, measured: &EpochProfile) {
        self.ensure_slack(measured.apps.len());
        // Record the queue factors observed at this operating point for the
        // interpolation refinement.
        if measured.mc.btc > 0 {
            self.xi_observed[measured.freq.index()] = Some((
                1.0 + measured.mc.bank_queue_avg(),
                1.0 + measured.mc.channel_queue_avg(),
            ));
        }
        for app in 0..measured.apps.len() {
            let Some(cpi_actual) = measured.measured_cpi(app, self.perf.cpu_hz()) else {
                continue;
            };
            let Some(cpi_max) = self.perf.predict_cpi(measured, app, MemFreq::MAX) else {
                continue;
            };
            let t_max = measured.window.as_secs_f64() * (cpi_max / cpi_actual).min(1.0);
            self.slack.update(app, t_max, measured.window);
        }
        if !self.cfg.slack_carry {
            self.slack.reset();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::AppSample;
    use memscale_mc::McCounters;
    use memscale_power::ActivitySummary;

    fn governor(objective: EnergyObjective) -> MemScaleGovernor {
        let mut g = MemScaleGovernor::new(
            &SystemConfig::default(),
            GovernorConfig {
                objective,
                ..GovernorConfig::default()
            },
        );
        g.set_rest_of_system_w(60.0);
        g
    }

    fn ilp_profile() -> EpochProfile {
        // 0.2 misses per kilo-instruction; almost no queueing.
        EpochProfile {
            window: Picos::from_us(300),
            freq: MemFreq::F800,
            apps: vec![
                AppSample {
                    tic: 1_000_000,
                    tlm: 200
                };
                16
            ],
            mc: McCounters {
                btc: 3_200,
                bto: 100,
                ctc: 3_200,
                cto: 200,
                cbmc: 3_200,
                ..McCounters::new()
            },
            activity: ActivitySummary {
                window: Picos::from_us(300),
                act_rate_hz: 1e6,
                read_burst_frac: 0.005,
                write_burst_frac: 0.0005,
                active_frac: 0.02,
                pd_frac: 0.0,
                deep_pd_frac: 0.0,
                bus_util: 0.02,
            },
        }
    }

    fn mem_profile() -> EpochProfile {
        // ~17 RPKI, heavy queueing, high utilization.
        EpochProfile {
            window: Picos::from_us(300),
            freq: MemFreq::F800,
            apps: vec![
                AppSample {
                    tic: 60_000,
                    tlm: 1_020
                };
                16
            ],
            mc: McCounters {
                btc: 16_320,
                bto: 20_000,
                ctc: 16_320,
                cto: 30_000,
                cbmc: 16_000,
                rbhc: 320,
                ..McCounters::new()
            },
            activity: ActivitySummary {
                window: Picos::from_us(300),
                act_rate_hz: 5.4e7,
                read_burst_frac: 0.08,
                write_burst_frac: 0.01,
                active_frac: 0.5,
                pd_frac: 0.0,
                deep_pd_frac: 0.0,
                bus_util: 0.68,
            },
        }
    }

    #[test]
    fn ilp_workload_drops_to_minimum_frequency() {
        let mut g = governor(EnergyObjective::FullSystem);
        let f = g.decide(&ilp_profile());
        assert!(
            f <= MemFreq::F333,
            "compute-bound mix should scale deep, got {f}"
        );
    }

    #[test]
    fn mem_workload_stays_fast() {
        let mut g = governor(EnergyObjective::FullSystem);
        let f = g.decide(&mem_profile());
        assert!(
            f >= MemFreq::F467,
            "memory-bound mix should stay fast, got {f}"
        );
    }

    #[test]
    fn memory_only_objective_scales_at_least_as_deep() {
        let mut gs = governor(EnergyObjective::FullSystem);
        let mut gm = governor(EnergyObjective::MemoryOnly);
        let p = mem_profile();
        assert!(gm.decide(&p) <= gs.decide(&p));
    }

    #[test]
    fn negative_slack_forces_recovery() {
        let mut g = governor(EnergyObjective::FullSystem);
        let p = ilp_profile();
        g.decide(&p); // size the tracker
                      // Simulate epochs that badly overshot: massive negative slack.
        for app in 0..16 {
            g.slack.update(app, 1e-3, Picos::from_ms(5));
        }
        let f = g.decide(&p);
        assert_eq!(f, MemFreq::MAX, "governor must recover lost slack");
    }

    #[test]
    fn end_epoch_banks_slack_when_running_at_max() {
        let mut g = governor(EnergyObjective::FullSystem);
        let p = ilp_profile();
        g.decide(&p);
        g.end_epoch(&p);
        // Running at max frequency accrues ~gamma x epoch of slack.
        let s = g.slack().slack_secs(0);
        assert!(s > 0.0, "expected positive slack, got {s}");
    }

    #[test]
    fn slack_reset_ablation() {
        let mut g = MemScaleGovernor::new(
            &SystemConfig::default(),
            GovernorConfig {
                slack_carry: false,
                ..GovernorConfig::default()
            },
        );
        let p = ilp_profile();
        g.decide(&p);
        g.end_epoch(&p);
        assert_eq!(g.slack().slack_secs(0), 0.0);
    }

    #[test]
    fn queue_interpolation_uses_observed_history() {
        let mut g = MemScaleGovernor::new(
            &SystemConfig::default(),
            GovernorConfig {
                queue_interpolation: true,
                ..GovernorConfig::default()
            },
        );
        g.set_rest_of_system_w(60.0);
        // Teach the governor two observations: light queues at 800 MHz,
        // heavy queues at 400 MHz.
        let mut at800 = mem_profile();
        at800.freq = MemFreq::F800;
        g.decide(&at800);
        g.end_epoch(&at800);
        let mut at400 = mem_profile();
        at400.freq = MemFreq::F400;
        at400.mc.bto *= 3;
        at400.mc.cto *= 3;
        g.end_epoch(&at400);
        // Interpolation must now produce finite, >= 1 factors between them.
        let xi = g
            .interpolated_xi(&at800, MemFreq::F600)
            .expect("two points");
        let lo = 1.0 + at800.mc.bank_queue_avg();
        let hi = 1.0 + at400.mc.bank_queue_avg();
        assert!(
            xi.0 >= lo.min(hi) - 1e-9 && xi.0 <= lo.max(hi) + 1e-9,
            "{xi:?}"
        );
        // And decide() still returns a safe choice.
        let f = g.decide(&at800);
        assert!(f >= MemFreq::F200);
    }

    #[test]
    fn queue_interpolation_off_by_default() {
        let mut g = governor(EnergyObjective::FullSystem);
        let p = mem_profile();
        g.end_epoch(&p);
        assert!(g.interpolated_xi(&p, MemFreq::F400).is_none());
    }

    #[test]
    fn defaults_match_paper() {
        let c = GovernorConfig::default();
        assert_eq!(c.gamma, 0.10);
        assert_eq!(c.epoch, Picos::from_ms(5));
        assert_eq!(c.profile_len, Picos::from_us(300));
        assert!(c.slack_carry);
        assert!(!c.queue_interpolation);
    }
}
