//! The §4.2.3 policy comparison zoo.
//!
//! Every energy-management scheme the paper evaluates is represented here so
//! the simulator can run them through one interface:
//!
//! | Policy | Mechanism |
//! |--------|-----------|
//! | `Baseline` | memory at maximum frequency, no powerdown |
//! | `FastPd` | immediate fast-exit precharge powerdown on idle ranks |
//! | `SlowPd` | immediate slow-exit precharge powerdown |
//! | `DeepPd` | immediate deep power-down (LPDDR generations only) |
//! | `Static(f)` | fixed boot-time frequency (the paper uses 467 MHz) |
//! | `Decoupled` | devices at 400 MHz behind a sync buffer, channel at 800 |
//! | `MemScale` | the full dynamic policy (full-system objective) |
//! | `MemScaleMemEnergy` | MemScale minimizing memory energy only |
//! | `MemScaleFastPd` | MemScale combined with fast-exit powerdown |
//! | `MemScalePerChannel` | §6 future work: per-channel frequency selection |

use crate::governor::{EnergyObjective, GovernorConfig, MemScaleGovernor};
use crate::profile::EpochProfile;
use memscale_dram::rank::PowerDownMode;
use memscale_types::config::{MemGeneration, SystemConfig};
use memscale_types::freq::MemFreq;

/// Which energy-management scheme to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PolicyKind {
    /// Max frequency, no energy management (the savings reference).
    Baseline,
    /// Today's aggressive controllers: fast-exit powerdown when idle.
    FastPd,
    /// Slow-exit powerdown when idle.
    SlowPd,
    /// Deep power-down when idle (LPDDR generations only): the lowest
    /// background floor, paid for with the long `tXDPD` exit.
    DeepPd,
    /// Statically selected frequency (§4.1 picks 467 MHz).
    Static(MemFreq),
    /// Decoupled DIMMs: devices at `device`, channel at 800 MHz.
    Decoupled {
        /// DRAM-device frequency behind the synchronization buffer.
        device: MemFreq,
    },
    /// The paper's full dynamic policy.
    MemScale,
    /// MemScale with the memory-energy-only objective.
    MemScaleMemEnergy,
    /// MemScale combined with fast-exit powerdown.
    MemScaleFastPd,
    /// §6 future-work extension: MemScale with per-channel frequencies —
    /// the governor picks a base operating point, then cold channels step
    /// one notch lower and hot channels one notch higher.
    MemScalePerChannel,
}

impl PolicyKind {
    /// Short display name matching the paper's figures.
    pub fn name(&self) -> &'static str {
        match self {
            PolicyKind::Baseline => "Baseline",
            PolicyKind::FastPd => "Fast-PD",
            PolicyKind::SlowPd => "Slow-PD",
            PolicyKind::DeepPd => "Deep-PD",
            PolicyKind::Static(_) => "Static",
            PolicyKind::Decoupled { .. } => "Decoupled",
            PolicyKind::MemScale => "MemScale",
            PolicyKind::MemScaleMemEnergy => "MemScale (MemEnergy)",
            PolicyKind::MemScaleFastPd => "MemScale + Fast-PD",
            PolicyKind::MemScalePerChannel => "MemScale (per-channel)",
        }
    }

    /// The §4.2.3 comparison set, in figure order (paper defaults).
    pub fn comparison_set() -> Vec<PolicyKind> {
        vec![
            PolicyKind::FastPd,
            PolicyKind::SlowPd,
            PolicyKind::Decoupled {
                device: MemFreq::F400,
            },
            PolicyKind::Static(MemFreq::F467),
            PolicyKind::MemScale,
            PolicyKind::MemScaleMemEnergy,
            PolicyKind::MemScaleFastPd,
        ]
    }

    /// The stable machine-readable spelling shared by the `memscale-sim`
    /// CLI and the serve wire protocol: `baseline`, `fast-pd`, `slow-pd`,
    /// `deep-pd`, `static:<mhz>`, `decoupled:<mhz>`, `memscale`,
    /// `mem-energy`, `memscale-pd`, `per-channel`.
    /// [`PolicyKind::parse`] is its exact inverse.
    pub fn wire_name(&self) -> String {
        match self {
            PolicyKind::Baseline => "baseline".into(),
            PolicyKind::FastPd => "fast-pd".into(),
            PolicyKind::SlowPd => "slow-pd".into(),
            PolicyKind::DeepPd => "deep-pd".into(),
            PolicyKind::Static(f) => format!("static:{}", f.mhz()),
            PolicyKind::Decoupled { device } => format!("decoupled:{}", device.mhz()),
            PolicyKind::MemScale => "memscale".into(),
            PolicyKind::MemScaleMemEnergy => "mem-energy".into(),
            PolicyKind::MemScaleFastPd => "memscale-pd".into(),
            PolicyKind::MemScalePerChannel => "per-channel".into(),
        }
    }

    /// Parses a [`PolicyKind::wire_name`] spelling (plus the bare
    /// `decoupled`, which keeps the CLI's historical 400 MHz default).
    ///
    /// # Errors
    ///
    /// A human-readable description of the unknown name or out-of-grid
    /// frequency.
    pub fn parse(name: &str) -> Result<PolicyKind, String> {
        let static_point = |mhz: &str, what: &str| -> Result<MemFreq, String> {
            let mhz: u32 = mhz.parse().map_err(|e| format!("{what}:<mhz>: {e}"))?;
            MemFreq::ceil_from_mhz(mhz).ok_or_else(|| format!("{mhz} MHz exceeds the 800 MHz grid"))
        };
        Ok(match name {
            "baseline" => PolicyKind::Baseline,
            "fast-pd" => PolicyKind::FastPd,
            "slow-pd" => PolicyKind::SlowPd,
            "deep-pd" => PolicyKind::DeepPd,
            "decoupled" => PolicyKind::Decoupled {
                device: MemFreq::F400,
            },
            "memscale" => PolicyKind::MemScale,
            "mem-energy" => PolicyKind::MemScaleMemEnergy,
            "memscale-pd" => PolicyKind::MemScaleFastPd,
            "per-channel" => PolicyKind::MemScalePerChannel,
            other => {
                if let Some(mhz) = other.strip_prefix("static:") {
                    PolicyKind::Static(static_point(mhz, "static")?)
                } else if let Some(mhz) = other.strip_prefix("decoupled:") {
                    PolicyKind::Decoupled {
                        device: static_point(mhz, "decoupled")?,
                    }
                } else {
                    return Err(format!("unknown policy {other}"));
                }
            }
        })
    }

    /// Whether this scheme exists on `generation`. Deep power-down is
    /// LPDDR-only; everything else is generation-agnostic.
    pub fn available_on(&self, generation: MemGeneration) -> bool {
        match self {
            PolicyKind::DeepPd => generation.has_deep_power_down(),
            _ => true,
        }
    }
}

/// A runnable policy instance (kind + governor state where applicable).
#[derive(Debug, Clone)]
pub struct Policy {
    kind: PolicyKind,
    governor: Option<MemScaleGovernor>,
}

impl Policy {
    /// Instantiates `kind` for the given system; `gov` supplies γ, epoch and
    /// profiling lengths for the MemScale variants (the objective field is
    /// overridden per variant).
    pub fn new(kind: PolicyKind, sys: &SystemConfig, gov: GovernorConfig) -> Self {
        let governor = match kind {
            PolicyKind::MemScale | PolicyKind::MemScaleFastPd | PolicyKind::MemScalePerChannel => {
                Some(MemScaleGovernor::new(
                    sys,
                    GovernorConfig {
                        objective: EnergyObjective::FullSystem,
                        ..gov
                    },
                ))
            }
            PolicyKind::MemScaleMemEnergy => Some(MemScaleGovernor::new(
                sys,
                GovernorConfig {
                    objective: EnergyObjective::MemoryOnly,
                    ..gov
                },
            )),
            _ => None,
        };
        Policy { kind, governor }
    }

    /// Which scheme this is.
    #[inline]
    pub fn kind(&self) -> PolicyKind {
        self.kind
    }

    /// Display name.
    #[inline]
    pub fn name(&self) -> &'static str {
        self.kind.name()
    }

    /// The governor, for MemScale variants.
    #[inline]
    pub fn governor(&self) -> Option<&MemScaleGovernor> {
        self.governor.as_ref()
    }

    /// Frequency the memory subsystem boots at under this policy.
    pub fn initial_frequency(&self) -> MemFreq {
        match self.kind {
            PolicyKind::Static(f) => f,
            // Decoupled runs its *channel* at max; the device lag is applied
            // through timing (see `device_lag_ns`).
            _ => MemFreq::MAX,
        }
    }

    /// Powerdown mode the controller should apply to idle ranks.
    pub fn auto_power_down(&self) -> Option<PowerDownMode> {
        match self.kind {
            PolicyKind::FastPd | PolicyKind::MemScaleFastPd => Some(PowerDownMode::Fast),
            PolicyKind::SlowPd => Some(PowerDownMode::Slow),
            PolicyKind::DeepPd => Some(PowerDownMode::Deep),
            _ => None,
        }
    }

    /// Whether the policy re-decides the frequency every epoch.
    pub fn is_adaptive(&self) -> bool {
        self.governor.is_some()
    }

    /// The frequency DRAM *devices* run at for power purposes when the
    /// interface runs at `interface` (differs only for Decoupled DIMMs).
    pub fn device_power_freq(&self, interface: MemFreq) -> MemFreq {
        match self.kind {
            PolicyKind::Decoupled { device } => device,
            _ => interface,
        }
    }

    /// Extra per-access device latency (ns) caused by the Decoupled-DIMM
    /// synchronization buffer: the slow device burst minus the fast channel
    /// burst, with `burst_cycles` cycles per burst. Zero for everything
    /// else.
    pub fn device_lag_ns(&self, burst_cycles: u32) -> f64 {
        match self.kind {
            PolicyKind::Decoupled { device } => {
                let slow = device.cycle().as_ns_f64() * burst_cycles as f64;
                let fast = MemFreq::MAX.cycle().as_ns_f64() * burst_cycles as f64;
                (slow - fast).max(0.0)
            }
            _ => 0.0,
        }
    }

    /// Calibrates the rest-of-system power for the full-system objective.
    pub fn set_rest_of_system_w(&mut self, rest_w: f64) {
        if let Some(g) = self.governor.as_mut() {
            g.set_rest_of_system_w(rest_w);
        }
    }

    /// Whether this policy selects frequencies per channel (§6 extension).
    pub fn is_per_channel(&self) -> bool {
        matches!(self.kind, PolicyKind::MemScalePerChannel)
    }

    /// Per-epoch frequency decision. Non-adaptive policies return their
    /// fixed frequency.
    pub fn decide(&mut self, profile: &EpochProfile) -> MemFreq {
        match self.governor.as_mut() {
            Some(g) => g.decide(profile),
            None => self.initial_frequency(),
        }
    }

    /// Per-channel decision for the §6 extension: the governor's base
    /// frequency, with lightly loaded channels (utilization < 30 %) stepped
    /// one operating point lower and heavily loaded channels (> 60 %) one
    /// point higher. Any residual performance error is corrected by the
    /// slack mechanism in subsequent epochs.
    pub fn decide_per_channel(
        &mut self,
        profile: &EpochProfile,
        channel_utils: &[f64],
    ) -> Vec<MemFreq> {
        let base = self.decide(profile);
        channel_utils
            .iter()
            .map(|&util| {
                if util < 0.30 {
                    base.step_down().unwrap_or(base)
                } else if util > 0.60 {
                    base.step_up().unwrap_or(base)
                } else {
                    base
                }
            })
            .collect()
    }

    /// End-of-epoch accounting (slack update) for adaptive policies.
    pub fn end_epoch(&mut self, measured: &EpochProfile) {
        if let Some(g) = self.governor.as_mut() {
            g.end_epoch(measured);
        }
    }

    /// Informs an adaptive policy's governor of the outcome of the switch it
    /// requested (no-op for fixed-frequency policies). See
    /// [`MemScaleGovernor::note_switch_result`].
    pub fn note_switch_result(&mut self, requested: MemFreq, actual: MemFreq) {
        if let Some(g) = self.governor.as_mut() {
            g.note_switch_result(requested, actual);
        }
    }

    /// The governor's degradation counters, for adaptive policies.
    pub fn governor_health(&self) -> Option<&crate::governor::GovernorHealth> {
        self.governor.as_ref().map(MemScaleGovernor::health)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy(kind: PolicyKind) -> Policy {
        Policy::new(kind, &SystemConfig::default(), GovernorConfig::default())
    }

    #[test]
    fn wire_names_round_trip_through_parse() {
        let mut kinds = vec![
            PolicyKind::Baseline,
            PolicyKind::FastPd,
            PolicyKind::SlowPd,
            PolicyKind::DeepPd,
            PolicyKind::MemScale,
            PolicyKind::MemScaleMemEnergy,
            PolicyKind::MemScaleFastPd,
            PolicyKind::MemScalePerChannel,
            PolicyKind::Decoupled {
                device: MemFreq::F467,
            },
        ];
        kinds.extend(MemFreq::ALL.iter().map(|&f| PolicyKind::Static(f)));
        for kind in kinds {
            assert_eq!(PolicyKind::parse(&kind.wire_name()), Ok(kind));
        }
        // The bare CLI spelling keeps its historical default.
        assert_eq!(
            PolicyKind::parse("decoupled"),
            Ok(PolicyKind::Decoupled {
                device: MemFreq::F400
            })
        );
        assert!(PolicyKind::parse("static:9000").is_err());
        assert!(PolicyKind::parse("warp-drive")
            .unwrap_err()
            .contains("unknown policy"));
    }

    #[test]
    fn comparison_set_has_seven_policies() {
        let set = PolicyKind::comparison_set();
        assert_eq!(set.len(), 7);
        let names: Vec<&str> = set.iter().map(super::PolicyKind::name).collect();
        assert!(names.contains(&"MemScale"));
        assert!(names.contains(&"Decoupled"));
    }

    #[test]
    fn initial_frequencies() {
        assert_eq!(
            policy(PolicyKind::Baseline).initial_frequency(),
            MemFreq::F800
        );
        assert_eq!(
            policy(PolicyKind::Static(MemFreq::F467)).initial_frequency(),
            MemFreq::F467
        );
        assert_eq!(
            policy(PolicyKind::Decoupled {
                device: MemFreq::F400
            })
            .initial_frequency(),
            MemFreq::F800
        );
    }

    #[test]
    fn powerdown_modes() {
        assert_eq!(policy(PolicyKind::Baseline).auto_power_down(), None);
        assert_eq!(
            policy(PolicyKind::FastPd).auto_power_down(),
            Some(PowerDownMode::Fast)
        );
        assert_eq!(
            policy(PolicyKind::SlowPd).auto_power_down(),
            Some(PowerDownMode::Slow)
        );
        assert_eq!(
            policy(PolicyKind::MemScaleFastPd).auto_power_down(),
            Some(PowerDownMode::Fast)
        );
        assert_eq!(
            policy(PolicyKind::DeepPd).auto_power_down(),
            Some(PowerDownMode::Deep)
        );
    }

    #[test]
    fn deep_pd_is_lpddr_only() {
        assert!(!PolicyKind::DeepPd.available_on(MemGeneration::Ddr3));
        assert!(!PolicyKind::DeepPd.available_on(MemGeneration::Ddr4));
        assert!(PolicyKind::DeepPd.available_on(MemGeneration::Lpddr3));
        for k in PolicyKind::comparison_set() {
            for g in MemGeneration::ALL {
                assert!(k.available_on(g), "{} on {g}", k.name());
            }
        }
    }

    #[test]
    fn adaptivity() {
        assert!(!policy(PolicyKind::Baseline).is_adaptive());
        assert!(!policy(PolicyKind::Static(MemFreq::F467)).is_adaptive());
        assert!(policy(PolicyKind::MemScale).is_adaptive());
        assert!(policy(PolicyKind::MemScaleMemEnergy).is_adaptive());
    }

    #[test]
    fn decoupled_device_power_and_lag() {
        let p = policy(PolicyKind::Decoupled {
            device: MemFreq::F400,
        });
        assert_eq!(p.device_power_freq(MemFreq::F800), MemFreq::F400);
        // 4-cycle burst: 10 ns at 400 MHz minus 5 ns at 800 MHz.
        assert!((p.device_lag_ns(4) - 5.0).abs() < 1e-9);
        let b = policy(PolicyKind::Baseline);
        assert_eq!(b.device_power_freq(MemFreq::F800), MemFreq::F800);
        assert_eq!(b.device_lag_ns(4), 0.0);
    }

    #[test]
    fn per_channel_decisions_follow_utilization() {
        use crate::profile::EpochProfile;
        use memscale_mc::McCounters;
        use memscale_power::ActivitySummary;
        use memscale_types::time::Picos;

        let mut p = policy(PolicyKind::MemScalePerChannel);
        assert!(p.is_per_channel());
        assert!(p.is_adaptive());
        let profile = EpochProfile {
            window: Picos::from_us(300),
            freq: MemFreq::F800,
            apps: vec![
                crate::profile::AppSample {
                    tic: 1_000_000,
                    tlm: 500
                };
                16
            ],
            mc: McCounters {
                btc: 8_000,
                ctc: 8_000,
                cbmc: 8_000,
                ..McCounters::new()
            },
            activity: ActivitySummary {
                window: Picos::from_us(300),
                bus_util: 0.4,
                ..ActivitySummary::default()
            },
        };
        let freqs = p.decide_per_channel(&profile, &[0.1, 0.45, 0.7, 0.45]);
        assert_eq!(freqs.len(), 4);
        // Cold channel one step below the hot channel's neighborhood.
        assert!(freqs[0] <= freqs[1]);
        assert!(freqs[2] >= freqs[1]);
        // Tandem policies are not per-channel.
        assert!(!policy(PolicyKind::MemScale).is_per_channel());
    }

    #[test]
    fn memenergy_variant_uses_memory_objective() {
        let p = policy(PolicyKind::MemScaleMemEnergy);
        assert_eq!(
            p.governor().unwrap().config().objective,
            EnergyObjective::MemoryOnly
        );
    }

    #[test]
    fn non_adaptive_decide_returns_fixed_frequency() {
        use crate::profile::EpochProfile;
        use memscale_mc::McCounters;
        use memscale_power::ActivitySummary;
        use memscale_types::time::Picos;

        let mut p = policy(PolicyKind::Static(MemFreq::F467));
        let profile = EpochProfile {
            window: Picos::from_us(300),
            freq: MemFreq::F467,
            apps: vec![],
            mc: McCounters::new(),
            activity: ActivitySummary::default(),
        };
        assert_eq!(p.decide(&profile), MemFreq::F467);
        p.end_epoch(&profile); // no-op, must not panic
    }
}
