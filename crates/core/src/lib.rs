//! **MemScale** — active low-power modes for main memory.
//!
//! This crate is the paper's primary contribution: an operating-system
//! energy-management policy that, once per scheduling epoch, picks the
//! memory-subsystem operating point (bus/DIMM frequency + MC voltage and
//! frequency) that minimizes *full-system* energy while bounding each
//! application's CPI degradation (§3).
//!
//! The pieces map one-to-one onto the paper:
//!
//! * [`profile`] — the per-epoch counter sample the OS reads (§3.1/§3.2).
//! * [`perf_model`] — Eqs 2–9: CPI decomposition and the counter-based
//!   queueing model with transfer blocking (`ξ_bank`, `ξ_bus`).
//! * [`slack`] — Eq 1's per-application performance slack, carried across
//!   epochs.
//! * [`governor`] — frequency selection: exhaustive search of the ten
//!   operating points, feasibility under slack, SER minimization (Eq 10).
//! * [`policies`] — the full §4.2.3 comparison zoo: the MaxFreq baseline,
//!   Fast-PD, Slow-PD, Static, Decoupled DIMMs, MemScale,
//!   MemScale(MemEnergy) and MemScale+Fast-PD.
//!
//! # Example
//!
//! ```
//! use memscale::governor::{EnergyObjective, GovernorConfig, MemScaleGovernor};
//! use memscale_types::config::SystemConfig;
//!
//! let sys = SystemConfig::default();
//! let gov = MemScaleGovernor::new(&sys, GovernorConfig::default());
//! assert_eq!(gov.config().gamma, 0.10);
//! assert_eq!(gov.config().objective, EnergyObjective::FullSystem);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod governor;
pub mod perf_model;
pub mod policies;
pub mod profile;
pub mod slack;

pub use governor::{
    EnergyObjective, GovernorConfig, GovernorHealth, MemScaleGovernor, ProfileVerdict,
    GOVERNOR_LADDER_FSM,
};
pub use perf_model::PerfModel;
pub use policies::{Policy, PolicyKind};
pub use profile::{AppSample, EpochProfile};
pub use slack::SlackTracker;
