//! Per-application performance slack (Eq 1).
//!
//! `Slack = T_maxfreq · (1 + γ) − T_actual`, accumulated across epochs: an
//! epoch that ran faster than its target banks slack that later epochs may
//! spend on deeper frequency reductions; an epoch that overshot produces
//! negative slack the governor must earn back (Fig 3).

use memscale_types::time::Picos;

/// Tracks accumulated slack, in seconds, for every application of a mix.
#[derive(Debug, Clone, PartialEq)]
pub struct SlackTracker {
    gamma: f64,
    slack: Vec<f64>,
}

impl SlackTracker {
    /// Creates a tracker for `apps` applications with degradation bound
    /// `gamma` (e.g. `0.10` for the paper's default 10 %).
    ///
    /// # Panics
    ///
    /// Panics if `gamma` is negative.
    pub fn new(apps: usize, gamma: f64) -> Self {
        assert!(gamma >= 0.0, "gamma must be non-negative");
        SlackTracker {
            gamma,
            slack: vec![0.0; apps],
        }
    }

    /// The configured degradation bound γ.
    #[inline]
    pub fn gamma(&self) -> f64 {
        self.gamma
    }

    /// Number of tracked applications.
    #[inline]
    pub fn len(&self) -> usize {
        self.slack.len()
    }

    /// Whether the tracker tracks no applications.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.slack.is_empty()
    }

    /// Accumulated slack of `app` in seconds (negative = behind target).
    ///
    /// # Panics
    ///
    /// Panics if `app` is out of range.
    #[inline]
    pub fn slack_secs(&self, app: usize) -> f64 {
        self.slack[app]
    }

    /// Eq 1 update after an epoch: the epoch took `actual` wall time and
    /// would have taken `at_max_freq` at the maximum frequency (for the same
    /// work).
    ///
    /// # Panics
    ///
    /// Panics if `app` is out of range.
    pub fn update(&mut self, app: usize, at_max_freq: f64, actual: Picos) {
        self.slack[app] += at_max_freq * (1.0 + self.gamma) - actual.as_secs_f64();
    }

    /// Whether running `app`'s next epoch with predicted dilation
    /// `dilation = CPI(f)/CPI(max)` over a wall-clock `epoch` keeps it
    /// within its target, counting accumulated slack.
    ///
    /// The epoch does `epoch/dilation` worth of max-frequency work, whose
    /// target time is `(epoch/dilation)·(1+γ)`; feasible iff
    /// `slack + target − epoch ≥ 0`.
    pub fn permits(&self, app: usize, dilation: f64, epoch: Picos) -> bool {
        let e = epoch.as_secs_f64();
        let target = e / dilation * (1.0 + self.gamma);
        self.slack[app] + target - e >= -1e-15
    }

    /// Resets every application's slack (used by the per-epoch-reset
    /// ablation).
    pub fn reset(&mut self) {
        self.slack.fill(0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_zero() {
        let s = SlackTracker::new(4, 0.1);
        assert_eq!(s.len(), 4);
        assert!(!s.is_empty());
        assert_eq!(s.slack_secs(0), 0.0);
    }

    #[test]
    fn faster_than_target_banks_slack() {
        let mut s = SlackTracker::new(1, 0.1);
        // Ran an epoch of 5 ms that would take 5 ms at max frequency:
        // target was 5.5 ms, so 0.5 ms of slack accrues.
        s.update(0, 5e-3, Picos::from_ms(5));
        assert!((s.slack_secs(0) - 0.5e-3).abs() < 1e-12);
    }

    #[test]
    fn slower_than_target_goes_negative() {
        let mut s = SlackTracker::new(1, 0.1);
        // The epoch's work would take 4 ms at max frequency (target 4.4 ms)
        // but we spent 5 ms.
        s.update(0, 4e-3, Picos::from_ms(5));
        assert!(s.slack_secs(0) < 0.0);
    }

    #[test]
    fn permits_dilation_up_to_gamma_with_no_slack() {
        let s = SlackTracker::new(1, 0.1);
        let epoch = Picos::from_ms(5);
        assert!(s.permits(0, 1.0, epoch));
        assert!(s.permits(0, 1.0999, epoch));
        assert!(!s.permits(0, 1.2, epoch));
    }

    #[test]
    fn banked_slack_permits_deeper_dilation() {
        let mut s = SlackTracker::new(1, 0.1);
        s.update(0, 5e-3, Picos::from_ms(5)); // +0.5 ms slack
        let epoch = Picos::from_ms(5);
        // target(d) + slack - epoch >= 0 -> 5.5/d + 0.5 - 5 >= 0 -> d <= 1.22.
        assert!(s.permits(0, 1.2, epoch));
        assert!(!s.permits(0, 1.3, epoch));
    }

    #[test]
    fn negative_slack_forces_speedup() {
        let mut s = SlackTracker::new(1, 0.1);
        s.update(0, 3e-3, Picos::from_ms(5)); // 3.3 - 5 = -1.7 ms slack
        let epoch = Picos::from_ms(5);
        // Even dilation 1.0 gives target 5.5 - 5 = +0.5 < 1.7 shortfall.
        assert!(!s.permits(0, 1.0, epoch));
    }

    #[test]
    fn reset_clears() {
        let mut s = SlackTracker::new(2, 0.1);
        s.update(0, 10e-3, Picos::from_ms(5));
        s.reset();
        assert_eq!(s.slack_secs(0), 0.0);
    }

    #[test]
    fn zero_gamma_requires_max_speed() {
        let s = SlackTracker::new(1, 0.0);
        assert!(s.permits(0, 1.0, Picos::from_ms(5)));
        assert!(!s.permits(0, 1.01, Picos::from_ms(5)));
    }
}
