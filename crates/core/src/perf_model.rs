//! The counter-based performance model (Eqs 2–9 of the paper).
//!
//! The model predicts how each application's CPI changes with memory
//! frequency:
//!
//! ```text
//! E[CPI](f)    = (E[TPI_cpu] + α · E[TPI_mem](f)) · F_cpu          (Eq 3)
//! E[TPI_mem]   = ξ_bank · (S_bank(f) + ξ_bus · S_bus(f))           (Eq 9)
//! S_bank(f)    = T_MC(f) + E[T_device]                             (Eq 5)
//! E[T_device]  = (T_hit·RBHC + T_cb·CBMC + T_ob·OBMC + T_pd·EPDC)
//!                / (RBHC + CBMC + OBMC)                            (Eq 6)
//! ```
//!
//! where `ξ_bank = 1 + BTO/BTC` and `ξ_bus = 1 + CTO/CTC` count the average
//! queue (including the arriving request, per Eq 7's construction),
//! `T_MC(f)` is five MC cycles, and `S_bus(f)` is the burst time. Only
//! `T_MC` and `S_bus` vary with frequency; DRAM-core times do not (§2.2).
//! ξ values measured at the profiled frequency are reused for all candidate
//! frequencies — the paper's stated approximation, corrected over time by
//! the slack mechanism.

use crate::profile::{AppSample, EpochProfile};
use memscale_mc::McCounters;
use memscale_types::config::{CpuConfig, DramTimingConfig};
use memscale_types::freq::MemFreq;
use memscale_types::time::Picos;

/// Eq 2–9 evaluator.
#[derive(Debug, Clone)]
pub struct PerfModel {
    timing: DramTimingConfig,
    cpu_hz: f64,
}

impl PerfModel {
    /// Builds the model from the system's timing and CPU configuration.
    pub fn new(timing: &DramTimingConfig, cpu: &CpuConfig) -> Self {
        PerfModel {
            timing: timing.clone(),
            cpu_hz: cpu.freq_ghz * 1e9,
        }
    }

    /// CPU frequency in Hz.
    #[inline]
    pub fn cpu_hz(&self) -> f64 {
        self.cpu_hz
    }

    /// Eq 6: expected DRAM-device access time from row-buffer counters
    /// (frequency-independent). Falls back to a closed-page access when the
    /// window saw no classified accesses.
    pub fn device_time(&self, mc: &McCounters) -> f64 {
        let t = &self.timing;
        let hit = t.t_cl_ns * 1e-9;
        let cb = (t.t_rcd_ns + t.t_cl_ns) * 1e-9;
        let ob = (t.t_rp_ns + t.t_rcd_ns + t.t_cl_ns) * 1e-9;
        let pd = t.t_xp_ns * 1e-9;
        let n = mc.row_classified();
        if n == 0 {
            return cb;
        }
        (hit * mc.rbhc as f64 + cb * mc.cbmc as f64 + ob * mc.obmc as f64 + pd * mc.epdc as f64)
            / n as f64
    }

    /// `T_MC(f)`: the controller pipeline in seconds at `freq`.
    pub fn mc_time(&self, freq: MemFreq) -> f64 {
        (freq.mc_cycle() * self.timing.mc_pipeline_cycles as u64).as_secs_f64()
    }

    /// `S_bus(f)`: one burst in seconds at `freq`.
    pub fn bus_time(&self, freq: MemFreq) -> f64 {
        (freq.cycle() * self.timing.burst_cycles as u64).as_secs_f64()
    }

    /// Eq 9: expected memory time per LLC-missing instruction (seconds) at
    /// `freq`, using queue factors measured in `mc`.
    pub fn tpi_mem(&self, mc: &McCounters, freq: MemFreq) -> f64 {
        let xi_bank = 1.0 + mc.bank_queue_avg();
        let xi_bus = 1.0 + mc.channel_queue_avg();
        let s_bank = self.mc_time(freq) + self.device_time(mc);
        let s_bus = self.bus_time(freq);
        xi_bank * (s_bank + xi_bus * s_bus)
    }

    /// Decomposes an application's measured time-per-instruction into its
    /// CPU component, given the window's controller counters and the
    /// frequency the window ran at: `TPI_cpu = TPI_total − α·TPI_mem(f)`.
    ///
    /// Returns `None` when the app retired no instruction in the window.
    pub fn tpi_cpu(
        &self,
        app: &AppSample,
        window: Picos,
        mc: &McCounters,
        freq: MemFreq,
    ) -> Option<f64> {
        let tpi_total = app.tpi_secs(window)?;
        let mem = app.alpha() * self.tpi_mem(mc, freq);
        // Clamp: measurement noise can make the memory share exceed the
        // total for extremely memory-bound windows.
        Some((tpi_total - mem).max(tpi_total * 0.01))
    }

    /// Eq 3: predicted CPI of one application at candidate frequency
    /// `target`, from a window profiled at `profile.freq`.
    ///
    /// Returns `None` when the app retired no instruction in the window.
    pub fn predict_cpi(&self, profile: &EpochProfile, app: usize, target: MemFreq) -> Option<f64> {
        let sample = profile.apps.get(app)?;
        let tpi_cpu = self.tpi_cpu(sample, profile.window, &profile.mc, profile.freq)?;
        let tpi = tpi_cpu + sample.alpha() * self.tpi_mem(&profile.mc, target);
        Some(tpi * self.cpu_hz)
    }

    /// Predicted slowdown of `app` at `target` relative to the maximum
    /// frequency: `CPI(target) / CPI(800 MHz)`. ≥ 1 for slower targets.
    pub fn predict_dilation(
        &self,
        profile: &EpochProfile,
        app: usize,
        target: MemFreq,
    ) -> Option<f64> {
        let at_target = self.predict_cpi(profile, app, target)?;
        let at_max = self.predict_cpi(profile, app, MemFreq::MAX)?;
        Some(at_target / at_max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memscale_power::ActivitySummary;

    fn model() -> PerfModel {
        PerfModel::new(&DramTimingConfig::default(), &CpuConfig::default())
    }

    fn counters(bto: u64, btc: u64, cto: u64, ctc: u64) -> McCounters {
        McCounters {
            bto,
            btc,
            cto,
            ctc,
            cbmc: btc.max(1),
            ..McCounters::new()
        }
    }

    fn profile(apps: Vec<AppSample>, mc: McCounters, freq: MemFreq) -> EpochProfile {
        EpochProfile {
            window: Picos::from_us(300),
            freq,
            apps,
            mc,
            activity: ActivitySummary::default(),
        }
    }

    #[test]
    fn device_time_defaults_to_closed_access() {
        let m = model();
        let d = m.device_time(&McCounters::new());
        assert!((d - 30e-9).abs() < 1e-12); // tRCD + tCL
    }

    #[test]
    fn device_time_weights_outcomes() {
        let m = model();
        let mc = McCounters {
            rbhc: 5,
            cbmc: 5,
            ..McCounters::new()
        };
        // (15*5 + 30*5)/10 = 22.5 ns.
        assert!((m.device_time(&mc) - 22.5e-9).abs() < 1e-12);
    }

    #[test]
    fn uncontended_tpi_mem_is_the_raw_latency() {
        let m = model();
        let mc = counters(0, 10, 0, 10);
        let t800 = m.tpi_mem(&mc, MemFreq::F800);
        // T_MC(3.125ns) + 30ns + 5ns burst.
        assert!((t800 - 38.125e-9).abs() < 1e-12, "{t800}");
    }

    #[test]
    fn tpi_mem_grows_when_slowing_down() {
        let m = model();
        let mc = counters(0, 10, 0, 10);
        let t800 = m.tpi_mem(&mc, MemFreq::F800);
        let t200 = m.tpi_mem(&mc, MemFreq::F200);
        // 200 MHz: T_MC 12.5ns + 30 + 20 = 62.5ns.
        assert!((t200 - 62.5e-9).abs() < 1e-12, "{t200}");
        assert!(t200 / t800 < 2.0, "latency far from linear in frequency");
    }

    #[test]
    fn queueing_amplifies_tpi_mem() {
        let m = model();
        let quiet = m.tpi_mem(&counters(0, 10, 0, 10), MemFreq::F800);
        let busy = m.tpi_mem(&counters(20, 10, 10, 10), MemFreq::F800);
        assert!(busy > 2.0 * quiet);
    }

    #[test]
    fn cpu_bound_app_is_frequency_insensitive() {
        let m = model();
        // 1 miss per 10k instructions.
        let app = AppSample {
            tic: 1_200_000,
            tlm: 120,
        };
        let p = profile(vec![app], counters(0, 120, 0, 120), MemFreq::F800);
        let d = m.predict_dilation(&p, 0, MemFreq::F200).unwrap();
        assert!(d < 1.02, "ILP-like app dilated by {d}");
    }

    #[test]
    fn memory_bound_app_is_frequency_sensitive() {
        let m = model();
        // 20 misses per kilo-instruction, CPI dominated by memory.
        let app = AppSample {
            tic: 100_000,
            tlm: 2_000,
        };
        let p = profile(vec![app], counters(1_000, 2_000, 500, 2_000), MemFreq::F800);
        let d = m.predict_dilation(&p, 0, MemFreq::F200).unwrap();
        assert!(d > 1.05, "MEM-like app dilated by only {d}");
    }

    #[test]
    fn prediction_consistent_at_profiled_frequency() {
        let m = model();
        let app = AppSample {
            tic: 500_000,
            tlm: 1_000,
        };
        let p = profile(vec![app], counters(100, 1_000, 50, 1_000), MemFreq::F800);
        let measured = p.measured_cpi(0, m.cpu_hz()).unwrap();
        let predicted = m.predict_cpi(&p, 0, MemFreq::F800).unwrap();
        assert!(
            (measured - predicted).abs() / measured < 1e-6,
            "{measured} vs {predicted}"
        );
    }

    #[test]
    fn missing_app_returns_none() {
        let m = model();
        let p = profile(vec![], McCounters::new(), MemFreq::F800);
        assert_eq!(m.predict_cpi(&p, 0, MemFreq::F800), None);
    }

    #[test]
    fn dilation_monotone_in_frequency() {
        let m = model();
        let app = AppSample {
            tic: 200_000,
            tlm: 3_000,
        };
        let p = profile(
            vec![app],
            counters(2_000, 3_000, 1_500, 3_000),
            MemFreq::F800,
        );
        let mut last = 0.0;
        for f in MemFreq::ALL.iter().rev() {
            let d = m.predict_dilation(&p, 0, *f).unwrap();
            assert!(d >= last, "dilation not monotone at {f}");
            last = d;
        }
    }
}
