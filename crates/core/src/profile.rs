//! The per-epoch observation the OS policy consumes.

use memscale_mc::McCounters;
use memscale_power::ActivitySummary;
use memscale_types::freq::MemFreq;
use memscale_types::time::Picos;

/// Per-application counter activity over one window (TIC/TLM deltas).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct AppSample {
    /// Instructions committed in the window.
    pub tic: u64,
    /// LLC misses in the window.
    pub tlm: u64,
}

impl AppSample {
    /// Fraction of instructions missing the LLC (the model's α).
    pub fn alpha(&self) -> f64 {
        if self.tic == 0 {
            0.0
        } else {
            self.tlm as f64 / self.tic as f64
        }
    }

    /// Measured seconds per instruction over `window`.
    /// Returns `None` when no instruction retired.
    pub fn tpi_secs(&self, window: Picos) -> Option<f64> {
        if self.tic == 0 {
            None
        } else {
            Some(window.as_secs_f64() / self.tic as f64)
        }
    }
}

/// Everything the policy reads at a profiling or epoch boundary.
#[derive(Debug, Clone, PartialEq)]
pub struct EpochProfile {
    /// Length of the observed window.
    pub window: Picos,
    /// Operating point during the window.
    pub freq: MemFreq,
    /// One sample per application instance (per core).
    pub apps: Vec<AppSample>,
    /// Controller counter deltas over the window.
    pub mc: McCounters,
    /// Aggregated rank/channel activity over the window (for Eq 10's power
    /// prediction).
    pub activity: ActivitySummary,
}

impl EpochProfile {
    /// Measured CPI of application `app` at CPU frequency `cpu_hz`.
    /// Returns `None` when the app retired nothing.
    pub fn measured_cpi(&self, app: usize, cpu_hz: f64) -> Option<f64> {
        self.apps
            .get(app)
            .and_then(|s| s.tpi_secs(self.window))
            .map(|tpi| tpi * cpu_hz)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alpha_and_tpi() {
        let s = AppSample {
            tic: 1_000,
            tlm: 20,
        };
        assert!((s.alpha() - 0.02).abs() < 1e-12);
        let tpi = s.tpi_secs(Picos::from_us(1)).unwrap();
        assert!((tpi - 1e-9).abs() < 1e-18);
        assert_eq!(AppSample::default().tpi_secs(Picos::from_us(1)), None);
    }

    #[test]
    fn measured_cpi() {
        let p = EpochProfile {
            window: Picos::from_us(1),
            freq: MemFreq::F800,
            apps: vec![AppSample { tic: 2_000, tlm: 0 }],
            mc: McCounters::new(),
            activity: ActivitySummary::default(),
        };
        // 2000 instructions in 1 us at 4 GHz = 4000 cycles -> CPI 2.
        let cpi = p.measured_cpi(0, 4e9).unwrap();
        assert!((cpi - 2.0).abs() < 1e-9);
        assert_eq!(p.measured_cpi(5, 4e9), None);
    }
}
