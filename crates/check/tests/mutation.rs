//! Mutation self-test: every invariant the analyzer claims to enforce must
//! actually fire.
//!
//! Each mutant takes the clean reference configuration of a generation,
//! breaks exactly one property, runs the full analyzer, and asserts that a
//! diagnostic naming the expected invariant appears. A silent mutant (the
//! analyzer stays clean) is a test failure — the invariant is decorative.
//!
//! Mutants are expressed as closures over `SystemConfig` so each generation
//! derives its breakage from its own reference values rather than hard-coded
//! DDR3 numbers. FSM-table and coverage mutants perturb the declarative
//! structures directly through the checker's explicit-input entry points.

use memscale_audit::Rule;
use memscale_check::{check_system, coverage, fsm};
use memscale_types::config::{MemGeneration, SystemConfig};
use memscale_types::invariants::{FsmFeature, FsmSpec, FsmTransition, TimingParam};

type Mutator = fn(&mut SystemConfig);

/// `(name, mutator, expected invariant)` triples valid on every generation.
fn universal_mutants() -> Vec<(&'static str, Mutator, &'static str)> {
    vec![
        ("trcd-zero", |s| s.timing.t_rcd_ns = 0.0, "param-positive"),
        (
            "trp-negative",
            |s| s.timing.t_rp_ns = -3.0,
            "param-positive",
        ),
        ("tcl-nan", |s| s.timing.t_cl_ns = f64::NAN, "param-positive"),
        ("trfc-zero", |s| s.timing.t_rfc_ns = 0.0, "param-positive"),
        ("txp-zero", |s| s.timing.t_xp_ns = 0.0, "param-positive"),
        (
            "burst-zero",
            |s| s.timing.burst_cycles = 0,
            "param-count-positive",
        ),
        (
            "refresh-commands-zero",
            |s| s.timing.refresh_commands = 0,
            "param-count-positive",
        ),
        (
            "mc-pipeline-zero",
            |s| s.timing.mc_pipeline_cycles = 0,
            "param-count-positive",
        ),
        (
            "tras-under-rcd-rtp",
            |s| s.timing.t_ras_ns = s.timing.t_rcd_ns + s.timing.t_rtp_ns - 0.5,
            "tras-covers-rcd-rtp",
        ),
        (
            "tfaw-under-2trrd",
            |s| s.timing.t_faw_ns = 2.0 * s.timing.t_rrd_ns - 0.5,
            "tfaw-covers-2trrd",
        ),
        (
            "trfc-swallows-refi",
            |s| s.timing.t_rfc_ns = 1e7,
            "refresh-duty",
        ),
        (
            "fast-exit-slower-than-slow-exit",
            |s| s.timing.t_xp_ns = s.timing.t_xpdll_ns + 1.0,
            "powerdown-exit-ladder",
        ),
        (
            "tccds-diverges-from-burst",
            |s| s.timing.t_ccd_s_cycles = s.timing.burst_cycles + 1,
            "tccds-matches-burst",
        ),
        (
            "relock-extra-negative",
            |s| s.timing.relock_extra_ns = -1.0,
            "relock-extra-nonnegative",
        ),
        (
            "bank-groups-zero",
            |s| s.timing.bank_groups = 0,
            "bank-groups-positive",
        ),
        (
            "trrdl-negative",
            |s| s.timing.t_rrd_l_ns = -1.0,
            "trrdl-positive",
        ),
        (
            "tccdl-zero",
            |s| s.timing.t_ccd_l_cycles = 0,
            "ccd-cycles-positive",
        ),
        (
            "relock-under-powerdown-exit",
            |s| {
                s.timing.relock_cycles = 1;
                s.timing.relock_extra_ns = 0.0;
            },
            "relock-covers-exit",
        ),
        (
            "refi-leaves-no-access-room",
            |s| {
                // tREFI between tRFC and tRFC + one closed-bank access at
                // the slowest point: passes the duty check, starves access.
                // Per-bank refresh is switched off so LPDDR3's tighter
                // per-bank duty coupling cannot mask the resolved check.
                s.timing.per_bank_refresh = false;
                s.timing.t_rfc_pb_ns = 0.0;
                let refi_ns = s.timing.t_rfc_ns + 5.0;
                s.timing.refresh_period_ms = refi_ns * s.timing.refresh_commands as f64 / 1e6;
            },
            "refi-covers-access",
        ),
        (
            "idd-read-negative",
            |s| s.power.i_rd_ma = -1.0,
            "power-nonnegative",
        ),
        ("vdd-zero", |s| s.power.vdd = 0.0, "vdd-positive"),
        (
            "pre-powerdown-above-standby",
            |s| s.power.i_pre_pd_ma = s.power.i_pre_stby_ma + 5.0,
            "idd-powerdown-undercuts-standby",
        ),
        (
            "act-powerdown-above-standby",
            |s| s.power.i_act_pd_ma = s.power.i_act_stby_ma + 5.0,
            "idd-powerdown-undercuts-standby",
        ),
        (
            "standby-above-activate",
            |s| s.power.i_act_stby_ma = s.power.i_act_pre_ma + 5.0,
            "idd-activate-peak",
        ),
        (
            "read-burst-under-standby",
            |s| s.power.i_rd_ma = s.power.i_act_stby_ma * 0.5,
            "idd-burst-dominates-standby",
        ),
        (
            "write-burst-under-standby",
            |s| s.power.i_wr_ma = s.power.i_act_stby_ma * 0.5,
            "idd-burst-dominates-standby",
        ),
        (
            "refresh-under-standby",
            |s| s.power.i_ref_ma = s.power.i_act_stby_ma * 0.5,
            "idd-refresh-dominates-standby",
        ),
    ]
}

/// Generation-specific table mutants.
fn generation_mutants(gen: MemGeneration) -> Vec<(&'static str, Mutator, &'static str)> {
    let mut m: Vec<(&'static str, Mutator, &'static str)> = Vec::new();
    if gen.has_bank_groups() {
        m.push((
            "bank-groups-collapsed-to-one",
            |s| s.timing.bank_groups = 1,
            "bank-groups-min",
        ));
        m.push((
            "tccdl-below-tccds",
            |s| s.timing.t_ccd_l_cycles = s.timing.t_ccd_s_cycles - 1,
            "ccd-ladder",
        ));
        m.push((
            "trrdl-below-trrd",
            |s| s.timing.t_rrd_l_ns = s.timing.t_rrd_ns - 1.0,
            "trrd-ladder",
        ));
        m.push((
            "banks-not-divisible-by-groups",
            |s| s.topology.banks_per_rank = s.timing.bank_groups * 2 - 1,
            "bank-group-divisibility",
        ));
    } else {
        m.push((
            "bank-groups-on-groupless-generation",
            |s| s.timing.bank_groups = 2,
            "bank-groups-collapsed",
        ));
    }
    if gen.has_deep_power_down() {
        m.push((
            "deep-exit-under-slow-exit",
            |s| s.timing.t_xdpd_ns = s.timing.t_xpdll_ns * 0.5,
            "xdpd-exceeds-xpdll",
        ));
        m.push((
            "deep-current-not-a-floor",
            |s| s.power.i_dpd_ma = s.power.i_pre_pd_ma,
            "idd-deep-floor",
        ));
    } else {
        m.push((
            "deep-exit-on-generation-without-deep",
            |s| s.timing.t_xdpd_ns = 100.0,
            "xdpd-zero-without-deep",
        ));
        m.push((
            "deep-current-on-generation-without-deep",
            |s| s.power.i_dpd_ma = 1.0,
            "idd-deep-absent",
        ));
    }
    if gen == MemGeneration::Lpddr3 {
        m.push((
            "per-bank-refresh-as-long-as-all-bank",
            |s| s.timing.t_rfc_pb_ns = s.timing.t_rfc_ns,
            "refpb-duration",
        ));
        m.push((
            "per-bank-refresh-overruns-interval",
            |s| {
                // tREFIpb = period / commands / banks must fall below
                // tRFCpb while the all-bank duty check stays legal.
                let banks = f64::from(s.topology.banks_per_rank);
                let refi_ns = s.timing.t_rfc_pb_ns * banks * 0.9;
                s.timing.refresh_period_ms = refi_ns * s.timing.refresh_commands as f64 / 1e6;
            },
            "refpb-duty",
        ));
    } else {
        m.push((
            "per-bank-refresh-on-wrong-generation",
            |s| s.timing.per_bank_refresh = true,
            "refpb-generation",
        ));
    }
    m
}

#[test]
fn every_table_mutant_is_detected_on_every_generation() {
    for gen in MemGeneration::ALL {
        let mut mutants = universal_mutants();
        mutants.extend(generation_mutants(gen));
        assert!(
            mutants.len() >= 20,
            "{gen}: only {} table mutants",
            mutants.len()
        );
        for (name, mutate, expected) in mutants {
            let mut sys = SystemConfig::for_generation(gen);
            mutate(&mut sys);
            let report = check_system(&sys);
            assert!(
                report.diagnostics.iter().any(|d| d.invariant == expected),
                "{gen}/{name}: expected `{expected}`, got {report}"
            );
        }
    }
}

// --- FSM-table mutants ------------------------------------------------------
//
// The published specs are consts, so perturbed variants are declared here as
// their own static tables and fed straight to the model checker.

const OK: &[FsmTransition] = &[
    FsmTransition {
        from: "up",
        event: "sleep",
        to: "napping",
        exit_param: None,
        requires: None,
    },
    FsmTransition {
        from: "napping",
        event: "wake",
        to: "up",
        exit_param: Some(TimingParam::TXp),
        requires: None,
    },
];

const BASE: FsmSpec = FsmSpec {
    name: "mutant",
    states: &["up", "napping"],
    events: &["sleep", "wake"],
    initial: "up",
    operational: "up",
    low_power: &["napping"],
    state_requires: &[],
    transitions: OK,
};

fn fsm_mutants() -> Vec<(&'static str, FsmSpec, &'static str)> {
    vec![
        (
            "undeclared-initial-state",
            FsmSpec {
                initial: "bogus",
                ..BASE
            },
            "fsm-wellformed",
        ),
        (
            "nondeterministic-event",
            FsmSpec {
                transitions: &[
                    FsmTransition {
                        from: "up",
                        event: "sleep",
                        to: "napping",
                        exit_param: None,
                        requires: None,
                    },
                    FsmTransition {
                        from: "up",
                        event: "sleep",
                        to: "up",
                        exit_param: None,
                        requires: None,
                    },
                    FsmTransition {
                        from: "napping",
                        event: "wake",
                        to: "up",
                        exit_param: Some(TimingParam::TXp),
                        requires: None,
                    },
                ],
                ..BASE
            },
            "fsm-deterministic",
        ),
        (
            "unreachable-state",
            FsmSpec {
                states: &["up", "napping", "island"],
                transitions: OK,
                ..BASE
            },
            "fsm-unreachable",
        ),
        (
            "low-power-sink",
            FsmSpec {
                transitions: &[FsmTransition {
                    from: "up",
                    event: "sleep",
                    to: "napping",
                    exit_param: None,
                    requires: None,
                }],
                ..BASE
            },
            "fsm-sink",
        ),
        (
            "untimed-low-power-exit",
            FsmSpec {
                transitions: &[
                    FsmTransition {
                        from: "up",
                        event: "sleep",
                        to: "napping",
                        exit_param: None,
                        requires: None,
                    },
                    FsmTransition {
                        from: "napping",
                        event: "wake",
                        to: "up",
                        exit_param: None,
                        requires: None,
                    },
                ],
                ..BASE
            },
            "fsm-exit-missing",
        ),
    ]
}

#[test]
fn every_fsm_mutant_is_detected_on_every_generation() {
    for gen in MemGeneration::ALL {
        let cfg = SystemConfig::for_generation(gen).timing;
        for (name, spec, expected) in fsm_mutants() {
            let diags = fsm::check_fsm(&spec, &cfg);
            assert!(
                diags.iter().any(|d| d.invariant == expected),
                "{gen}/{name}: expected `{expected}`, got {diags:#?}"
            );
        }
        // Exit parameter the generation's table does not provide: deep
        // power-down exit on DDR3/DDR4, bank-group CAS spacing on LPDDR3.
        let rows: &'static [FsmTransition] = if gen.has_deep_power_down() {
            EXIT_VIA_TCCDL
        } else {
            EXIT_VIA_TXDPD
        };
        let spec = FsmSpec {
            transitions: rows,
            ..BASE
        };
        let diags = fsm::check_fsm(&spec, &cfg);
        assert!(
            diags.iter().any(|d| d.invariant == "fsm-exit-param-absent"),
            "{gen}/absent-exit-param: got {diags:#?}"
        );
    }
}

/// `OK` with the low-power exit charging a parameter only DDR4 provides.
const EXIT_VIA_TCCDL: &[FsmTransition] = &[
    OK[0],
    FsmTransition {
        exit_param: Some(TimingParam::TCcdL),
        ..OK[1]
    },
];

/// `OK` with the low-power exit charging a parameter only LPDDR3 provides.
const EXIT_VIA_TXDPD: &[FsmTransition] = &[
    OK[0],
    FsmTransition {
        exit_param: Some(TimingParam::TXdpd),
        ..OK[1]
    },
];

/// `OK` plus a gated-out row whose destination state is a typo.
const GATED_TYPO: &[FsmTransition] = &[
    OK[0],
    OK[1],
    FsmTransition {
        from: "up",
        event: "sleep",
        to: "typo-state",
        exit_param: None,
        requires: Some(FsmFeature::DeepPowerDown),
    },
];

#[test]
fn feature_gated_rows_are_checked_even_when_inactive() {
    // A typo in a row gated behind DeepPowerDown must surface on DDR3 too.
    let spec = FsmSpec {
        transitions: GATED_TYPO,
        ..BASE
    };
    let cfg = SystemConfig::for_generation(MemGeneration::Ddr3).timing;
    let diags = fsm::check_fsm(&spec, &cfg);
    assert!(diags.iter().any(|d| d.invariant == "fsm-wellformed"));
}

// --- coverage mutants -------------------------------------------------------

#[test]
fn every_coverage_mutant_is_detected_on_every_generation() {
    for gen in MemGeneration::ALL {
        let cfg = SystemConfig::for_generation(gen).timing;
        let full = Rule::rule_pack(&cfg);

        // Dropping any latency-guarding rule must unguard some parameter
        // (unless another rule still covers every field it guarded).
        let dropped = Rule::TRas;
        let pack: Vec<Rule> = full.iter().copied().filter(|r| *r != dropped).collect();
        let diags = coverage::check_coverage_with(&cfg, &pack, coverage::WAIVERS);
        assert!(
            diags.iter().any(|d| d.invariant == "coverage-unguarded"
                && d.params.iter().any(|(p, _)| *p == "t_ras_ns")),
            "{gen}: dropping {dropped} undetected: {diags:#?}"
        );

        // A waiver whose parameter the pack still guards is stale.
        let stale = "* t_cl_ns trusted by decree\n* mc_pipeline_cycles reason\n";
        let diags = coverage::check_coverage_with(&cfg, &full, stale);
        assert!(
            diags.iter().any(|d| d.invariant == "coverage-waiver-stale"),
            "{gen}: stale waiver undetected: {diags:#?}"
        );

        // A waiver naming a field that does not exist is an error.
        let unknown = "* t_imaginary_ns because\n* mc_pipeline_cycles reason\n";
        let diags = coverage::check_coverage_with(&cfg, &full, unknown);
        assert!(
            diags
                .iter()
                .any(|d| d.invariant == "coverage-waiver-unknown"),
            "{gen}: unknown waiver undetected: {diags:#?}"
        );

        // Removing the waiver file entirely must flag the known-unguarded
        // parameter instead of silently passing.
        let diags = coverage::check_coverage_with(&cfg, &full, "");
        assert!(
            diags.iter().any(|d| d.invariant == "coverage-unguarded"
                && d.params.iter().any(|(p, _)| *p == "mc_pipeline_cycles")),
            "{gen}: missing waiver undetected: {diags:#?}"
        );
    }
}
