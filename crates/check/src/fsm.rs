//! Pass 2: model checking of declarative power-state machines.
//!
//! Stateful crates publish their state machines as [`FsmSpec`] transition
//! tables (`memscale-dram`'s rank power FSM, `memscale`'s governor hardening
//! ladder) and keep unit tests proving the executable code agrees with the
//! table. This pass proves the *table itself* is sound for a generation, by
//! exhaustive enumeration:
//!
//! * **well-formed** — every referenced state/event is declared, no
//!   duplicate declarations, the initial and operational states exist for
//!   the generation;
//! * **deterministic** — at most one active transition per `(state, event)`
//!   pair (missing pairs are intentional refusals);
//! * **reachable** — every active state is reachable from the initial state;
//! * **no sink** — the operational state is reachable back from every active
//!   state (a low-power state you cannot leave is a hang);
//! * **timed exits** — every transition leaving a low-power state carries an
//!   exit-latency parameter that exists (is relevant and positive) in the
//!   generation's timing table.

use memscale_types::config::DramTimingConfig;
use memscale_types::invariants::{Diagnostic, FsmSpec};
use std::collections::{HashMap, HashSet, VecDeque};

/// Model-checks `spec` against the generation (and timing table) of `cfg`,
/// returning every property violation found.
#[allow(clippy::too_many_lines)] // one property per block; splitting obscures
pub fn check_fsm(spec: &FsmSpec, cfg: &DramTimingConfig) -> Vec<Diagnostic> {
    let gen = cfg.generation;
    let mut out = Vec::new();
    let name = spec.name;

    // Well-formedness of the declaration lists.
    let mut declared: HashSet<&str> = HashSet::new();
    for s in spec.states {
        if !declared.insert(s) {
            out.push(Diagnostic::new(
                "fsm-wellformed",
                gen,
                format!("{name}: state `{s}` declared twice"),
                vec![],
            ));
        }
    }
    let mut events: HashSet<&str> = HashSet::new();
    for e in spec.events {
        if !events.insert(e) {
            out.push(Diagnostic::new(
                "fsm-wellformed",
                gen,
                format!("{name}: event `{e}` declared twice"),
                vec![],
            ));
        }
    }
    for (label, state) in [("initial", spec.initial), ("operational", spec.operational)] {
        if !declared.contains(state) {
            out.push(Diagnostic::new(
                "fsm-wellformed",
                gen,
                format!("{name}: {label} state `{state}` is not declared"),
                vec![],
            ));
        } else if !spec.state_active(state, gen) {
            out.push(Diagnostic::new(
                "fsm-wellformed",
                gen,
                format!("{name}: {label} state `{state}` is gated out for {gen}"),
                vec![],
            ));
        }
    }
    for s in spec.low_power {
        if !declared.contains(s) {
            out.push(Diagnostic::new(
                "fsm-wellformed",
                gen,
                format!("{name}: low-power state `{s}` is not declared"),
                vec![],
            ));
        }
    }
    for (s, _) in spec.state_requires {
        if !declared.contains(s) {
            out.push(Diagnostic::new(
                "fsm-wellformed",
                gen,
                format!("{name}: feature-gated state `{s}` is not declared"),
                vec![],
            ));
        }
    }
    // Every row (active or not) must reference declared states and events;
    // a typo in a gated-out row would otherwise hide until the generation
    // enabling it is checked.
    for t in spec.transitions {
        for (what, v) in [("source", t.from), ("destination", t.to)] {
            if !declared.contains(v) {
                out.push(Diagnostic::new(
                    "fsm-wellformed",
                    gen,
                    format!(
                        "{name}: transition `{} --{}-> {}` names undeclared {what} `{v}`",
                        t.from, t.event, t.to
                    ),
                    vec![],
                ));
            }
        }
        if !events.contains(t.event) {
            out.push(Diagnostic::new(
                "fsm-wellformed",
                gen,
                format!(
                    "{name}: transition `{} --{}-> {}` names undeclared event `{}`",
                    t.from, t.event, t.to, t.event
                ),
                vec![],
            ));
        }
    }
    if !out.is_empty() {
        return out; // graph properties over a malformed table only cascade
    }

    let active: Vec<_> = spec.active_transitions(gen).collect();
    let active_states: Vec<&str> = spec
        .states
        .iter()
        .copied()
        .filter(|s| spec.state_active(s, gen))
        .collect();

    // Determinism: one outcome per (state, event).
    let mut seen: HashMap<(&str, &str), &str> = HashMap::new();
    for t in &active {
        if let Some(prev) = seen.insert((t.from, t.event), t.to) {
            out.push(Diagnostic::new(
                "fsm-deterministic",
                gen,
                format!(
                    "{name}: state `{}` reacts to `{}` with two outcomes \
                     (`{prev}` and `{}`)",
                    t.from, t.event, t.to
                ),
                vec![],
            ));
        }
    }

    // Reachability from the initial state.
    let reachable = reach(spec.initial, &active);
    for s in &active_states {
        if !reachable.contains(s) {
            out.push(Diagnostic::new(
                "fsm-unreachable",
                gen,
                format!("{name}: state `{s}` is unreachable from `{}`", spec.initial),
                vec![],
            ));
        }
    }

    // Liveness anchor: the operational state must be reachable back from
    // every active state.
    for s in &active_states {
        if !reach(s, &active).contains(spec.operational) {
            out.push(Diagnostic::new(
                "fsm-sink",
                gen,
                format!(
                    "{name}: state `{s}` cannot reach the operational state \
                     `{}` — a residency there would never end",
                    spec.operational
                ),
                vec![],
            ));
        }
    }

    // Timed exits from low-power states.
    for t in &active {
        let leaves_low_power = spec.low_power.contains(&t.from) && !spec.low_power.contains(&t.to);
        match t.exit_param {
            None if leaves_low_power => out.push(Diagnostic::new(
                "fsm-exit-missing",
                gen,
                format!(
                    "{name}: transition `{} --{}-> {}` leaves a low-power \
                     state without an exit-latency parameter",
                    t.from, t.event, t.to
                ),
                vec![],
            )),
            Some(p) if !p.relevant_for(gen) || p.value(cfg) <= 0.0 => {
                out.push(Diagnostic::new(
                    "fsm-exit-param-absent",
                    gen,
                    format!(
                        "{name}: transition `{} --{}-> {}` charges `{}` \
                         which {gen}'s table does not provide",
                        t.from,
                        t.event,
                        t.to,
                        p.field()
                    ),
                    vec![(p.field(), p.value(cfg))],
                ));
            }
            _ => {}
        }
    }
    out
}

/// States reachable from `start` (inclusive) over `transitions`.
fn reach<'a>(
    start: &'a str,
    transitions: &[&'a memscale_types::invariants::FsmTransition],
) -> HashSet<&'a str> {
    let mut seen: HashSet<&str> = HashSet::from([start]);
    let mut queue: VecDeque<&str> = VecDeque::from([start]);
    while let Some(s) = queue.pop_front() {
        for t in transitions {
            if t.from == s && seen.insert(t.to) {
                queue.push_back(t.to);
            }
        }
    }
    seen
}

#[cfg(test)]
mod tests {
    use super::*;
    use memscale::GOVERNOR_LADDER_FSM;
    use memscale_dram::rank::RANK_POWER_FSM;
    use memscale_types::config::MemGeneration;

    #[test]
    fn published_machines_are_sound_for_every_generation() {
        for gen in MemGeneration::ALL {
            let cfg = DramTimingConfig::for_generation(gen);
            for spec in [&RANK_POWER_FSM, &GOVERNOR_LADDER_FSM] {
                let diags = check_fsm(spec, &cfg);
                assert!(diags.is_empty(), "{} / {gen}: {diags:#?}", spec.name);
            }
        }
    }

    #[test]
    fn deep_power_down_is_gated_by_generation() {
        let ddr3 = DramTimingConfig::default();
        let active: Vec<_> = RANK_POWER_FSM.active_transitions(ddr3.generation).collect();
        assert!(active
            .iter()
            .all(|t| t.from != "deep-pd" && t.to != "deep-pd"));
        let lp = DramTimingConfig::lpddr3();
        assert!(RANK_POWER_FSM
            .active_transitions(lp.generation)
            .any(|t| t.to == "deep-pd"));
    }
}
