//! Pass 1: device-table consistency, at rest and at every grid frequency.
//!
//! The pure-table invariants live in `memscale_types::invariants` (shared
//! with startup validation); this module re-runs them, then extends the
//! analysis to properties only visible once a
//! [`DramTimingConfig`](memscale_types::config::DramTimingConfig) is
//! *resolved* at an operating point: cycle-denominated parameters convert to
//! wall-clock time through the bus period, so an inequality that holds at
//! 800 MHz can still be violated at 200 MHz (or vice versa). The power grid
//! is checked for monotonicity in frequency, which the governor's exhaustive
//! energy search silently assumes.

use memscale_dram::timing::TimingSet;
use memscale_power::PowerModel;
use memscale_types::config::SystemConfig;
use memscale_types::freq::MemFreq;
use memscale_types::invariants::{self, Diagnostic};

/// Runs every table check against `sys`: the shared pure-table invariants
/// (timing, topology coupling, IDD orderings), then — only when those are
/// clean, so garbage values do not cascade — the per-frequency resolved
/// checks and the power-grid monotonicity checks.
pub fn check_tables(sys: &SystemConfig) -> Vec<Diagnostic> {
    let cfg = &sys.timing;
    let gen = cfg.generation;
    let mut out = invariants::check_timing(cfg);
    out.extend(invariants::check_system_timing(
        sys.topology.banks_per_rank,
        cfg,
    ));
    out.extend(invariants::check_power(&sys.power, gen));
    if !out.is_empty() {
        return out;
    }

    for freq in MemFreq::ALL {
        let ts = TimingSet::resolve(cfg, freq);
        if ts.burst.as_ps() == 0 || ts.mc_proc.as_ps() == 0 || ts.t_refi.as_ps() == 0 {
            out.push(Diagnostic::new(
                "resolved-positive",
                gen,
                format!(
                    "burst/MC-pipeline/tREFI must resolve to a positive \
                     duration at {freq}"
                ),
                vec![
                    ("burst_ns", ts.burst.as_ns_f64()),
                    ("mc_proc_ns", ts.mc_proc.as_ns_f64()),
                    ("tREFI_ns", ts.t_refi.as_ns_f64()),
                ],
            ));
            continue; // the remaining comparisons would be meaningless
        }
        if ts.t_ccd_l < ts.burst {
            out.push(Diagnostic::new(
                "ccdl-covers-burst",
                gen,
                format!(
                    "resolved tCCD_L ({} ns) is shorter than the data burst \
                     ({} ns) at {freq}: same-group CAS spacing cannot cover \
                     the transfer it gates",
                    ts.t_ccd_l.as_ns_f64(),
                    ts.burst.as_ns_f64()
                ),
                vec![
                    ("t_ccd_l_ns", ts.t_ccd_l.as_ns_f64()),
                    ("burst_ns", ts.burst.as_ns_f64()),
                ],
            ));
        }
        // The rank machine charges only the re-lock penalty when a
        // powered-down rank wakes up during a frequency switch, so the
        // penalty must subsume every powerdown exit latency.
        let relock = TimingSet::relock_penalty(cfg, freq);
        let deepest_exit = ts.t_xp.max(ts.t_xpdll).max(ts.t_xdpd);
        if relock < deepest_exit {
            out.push(Diagnostic::new(
                "relock-covers-exit",
                gen,
                format!(
                    "re-lock penalty ({} ns) at {freq} is shorter than the \
                     slowest powerdown exit ({} ns): a rank waking into a \
                     re-lock window would be ready too early",
                    relock.as_ns_f64(),
                    deepest_exit.as_ns_f64()
                ),
                vec![
                    ("relock_ns", relock.as_ns_f64()),
                    ("deepest_exit_ns", deepest_exit.as_ns_f64()),
                ],
            ));
        }
        // Between two refreshes the device must fit the refresh itself plus
        // at least one closed-bank access; the access term stretches with
        // the burst as frequency drops.
        let busy = ts.t_rfc + ts.closed_read_latency();
        if ts.t_refi <= busy {
            out.push(Diagnostic::new(
                "refi-covers-access",
                gen,
                format!(
                    "tREFI ({} ns) at {freq} does not cover a refresh plus \
                     one closed-bank access ({} ns): the device would starve",
                    ts.t_refi.as_ns_f64(),
                    busy.as_ns_f64()
                ),
                vec![
                    ("tREFI_ns", ts.t_refi.as_ns_f64()),
                    ("busy_ns", busy.as_ns_f64()),
                ],
            ));
        }
    }

    check_power_grid(sys, &mut out);
    out
}

/// The governor's energy search assumes MC, register and PLL power never
/// *decrease* when frequency rises (§4.1 scales them by `V²·f`, `f`, `f`);
/// a non-monotonic grid would make "slower is cheaper" silently false.
fn check_power_grid(sys: &SystemConfig, out: &mut Vec<Diagnostic>) {
    let gen = sys.timing.generation;
    let model = PowerModel::new(sys);
    for pair in MemFreq::ALL.windows(2) {
        let (lo, hi) = (pair[0], pair[1]);
        for util in [0.0, 1.0] {
            let (p_lo, p_hi) = (model.mc_power_w(util, lo), model.mc_power_w(util, hi));
            if p_hi < p_lo {
                out.push(Diagnostic::new(
                    "mc-power-monotonic",
                    gen,
                    format!(
                        "MC power at util {util} falls from {p_lo} W to \
                         {p_hi} W between {lo} and {hi}"
                    ),
                    vec![("p_lo_w", p_lo), ("p_hi_w", p_hi)],
                ));
            }
            let (r_lo, r_hi) = (model.reg_power_w(util, lo), model.reg_power_w(util, hi));
            if r_hi < r_lo {
                out.push(Diagnostic::new(
                    "reg-power-monotonic",
                    gen,
                    format!(
                        "register power at util {util} falls from {r_lo} W \
                         to {r_hi} W between {lo} and {hi}"
                    ),
                    vec![("p_lo_w", r_lo), ("p_hi_w", r_hi)],
                ));
            }
        }
        let (p_lo, p_hi) = (model.pll_power_w(lo), model.pll_power_w(hi));
        if p_hi < p_lo {
            out.push(Diagnostic::new(
                "pll-power-monotonic",
                gen,
                format!("PLL power falls from {p_lo} W to {p_hi} W between {lo} and {hi}"),
                vec![("p_lo_w", p_lo), ("p_hi_w", p_hi)],
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memscale_types::config::MemGeneration;

    #[test]
    fn reference_systems_pass_every_table_check() {
        for gen in MemGeneration::ALL {
            let sys = SystemConfig::for_generation(gen);
            let diags = check_tables(&sys);
            assert!(diags.is_empty(), "{gen}: {diags:#?}");
        }
    }

    fn with_timing(f: impl FnOnce(&mut memscale_types::config::DramTimingConfig)) -> SystemConfig {
        let mut sys = SystemConfig::default();
        f(&mut sys.timing);
        sys
    }

    #[test]
    fn resolved_checks_fire_on_frequency_dependent_violations() {
        // A re-lock penalty far below the slow powerdown exit.
        let sys = with_timing(|t| {
            t.relock_cycles = 1;
            t.relock_extra_ns = 0.0;
        });
        let diags = check_tables(&sys);
        assert!(
            diags.iter().any(|d| d.invariant == "relock-covers-exit"),
            "{diags:#?}"
        );

        // A refresh interval the refresh itself cannot fit into. Keep the
        // pure-table duty cycle legal (tRFC < tREFI) but leave no room for
        // an access on top.
        let sys = with_timing(|t| {
            t.t_rfc_ns = 200.0;
            t.refresh_period_ms = 1.88; // tREFI ~= 229 ns: above tRFC, below tRFC + access
        });
        let diags = check_tables(&sys);
        assert!(
            diags.iter().any(|d| d.invariant == "refi-covers-access"),
            "{diags:#?}"
        );
    }

    #[test]
    fn table_stage_failures_suppress_resolved_stage() {
        let sys = with_timing(|t| t.t_rcd_ns = f64::NAN);
        let diags = check_tables(&sys);
        assert!(diags.iter().all(|d| d.invariant == "param-positive"));
    }
}
