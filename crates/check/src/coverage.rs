//! Pass 3: audit rule-pack coverage.
//!
//! The protocol auditor (`memscale-audit`) re-derives latencies from the raw
//! [`DramTimingConfig`] while replaying command streams, so every timing
//! parameter it *guards* is protected against a timing-engine bug that
//! honors the wrong value. This pass closes the loop in the other direction:
//! it walks the full parameter universe ([`TimingParam::ALL`]) and demands
//! that every parameter relevant to the generation is guarded by at least
//! one rule in the generation's pack ([`Rule::rule_pack`]) or explicitly
//! waived in `crates/check/waivers.txt` with a justification.
//!
//! Waivers are themselves checked: a waiver for a field the pack guards
//! anyway is *stale*, and a waiver naming an unknown field is an error, so
//! the list cannot rot as rules are added.

use memscale_audit::Rule;
use memscale_types::config::{DramTimingConfig, MemGeneration};
use memscale_types::invariants::{Diagnostic, TimingParam};

/// The bundled waiver list (`crates/check/waivers.txt`).
pub const WAIVERS: &str = include_str!("../waivers.txt");

/// One parsed waiver line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Waiver<'a> {
    /// Generation the waiver applies to; `None` means every generation.
    pub generation: Option<MemGeneration>,
    /// The waived `DramTimingConfig` field.
    pub field: &'a str,
    /// Why the parameter cannot be guarded.
    pub justification: &'a str,
}

/// Parses the waiver format: one `<generation|*> <field> <justification>`
/// per line, `#` comments and blank lines ignored. Malformed lines become
/// `coverage-waiver-unknown` diagnostics (attributed to `gen`) rather than
/// silently dropped waivers.
pub fn parse_waivers<'a>(
    text: &'a str,
    gen: MemGeneration,
    out: &mut Vec<Diagnostic>,
) -> Vec<Waiver<'a>> {
    let mut waivers = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.splitn(3, char::is_whitespace);
        let (scope, field, justification) = (parts.next(), parts.next(), parts.next());
        let (Some(scope), Some(field), Some(justification)) = (scope, field, justification) else {
            out.push(Diagnostic::new(
                "coverage-waiver-unknown",
                gen,
                format!(
                    "waivers.txt:{}: expected `<generation|*> <field> \
                     <justification>`, got `{line}`",
                    lineno + 1
                ),
                vec![],
            ));
            continue;
        };
        let generation = if scope == "*" {
            None
        } else if let Some(g) = MemGeneration::parse(scope) {
            Some(g)
        } else {
            out.push(Diagnostic::new(
                "coverage-waiver-unknown",
                gen,
                format!(
                    "waivers.txt:{}: unknown generation `{scope}` (use \
                     ddr3|ddr4|lpddr3|*)",
                    lineno + 1
                ),
                vec![],
            ));
            continue;
        };
        waivers.push(Waiver {
            generation,
            field,
            justification,
        });
    }
    waivers
}

/// Coverage analysis for `cfg` with the pack the auditor would arm for it
/// and the bundled waiver list.
pub fn check_coverage(cfg: &DramTimingConfig) -> Vec<Diagnostic> {
    check_coverage_with(cfg, &Rule::rule_pack(cfg), WAIVERS)
}

/// Coverage analysis against an explicit `pack` and waiver text. The
/// mutation self-tests use this to prove that removing a rule from a pack,
/// or letting a waiver go stale, is detected.
pub fn check_coverage_with(
    cfg: &DramTimingConfig,
    pack: &[Rule],
    waivers: &str,
) -> Vec<Diagnostic> {
    let gen = cfg.generation;
    let mut out = Vec::new();
    let applicable: Vec<Waiver<'_>> = parse_waivers(waivers, gen, &mut out)
        .into_iter()
        .filter(|w| w.generation.is_none_or(|g| g == gen))
        .collect();
    let guarded: Vec<&str> = pack
        .iter()
        .flat_map(|r| r.guarded_params().iter().copied())
        .collect();

    for param in TimingParam::ALL {
        if !param.relevant_for(gen) || guarded.contains(&param.field()) {
            continue;
        }
        if applicable.iter().any(|w| w.field == param.field()) {
            continue;
        }
        out.push(Diagnostic::new(
            "coverage-unguarded",
            gen,
            format!(
                "no rule in the {gen} audit pack guards `{}` ({}): a timing \
                 engine honoring the wrong value would replay clean; add a \
                 rule or waive it in crates/check/waivers.txt",
                param.field(),
                param.jedec()
            ),
            vec![(param.field(), param.value(cfg))],
        ));
    }

    let known_fields: Vec<&str> = TimingParam::ALL.iter().map(|p| p.field()).collect();
    for w in &applicable {
        if !known_fields.contains(&w.field) {
            out.push(Diagnostic::new(
                "coverage-waiver-unknown",
                gen,
                format!(
                    "waiver names unknown field `{}`: not a DramTimingConfig \
                     timing parameter",
                    w.field
                ),
                vec![],
            ));
        } else if guarded.contains(&w.field) {
            out.push(Diagnostic::new(
                "coverage-waiver-stale",
                gen,
                format!(
                    "waiver for `{}` is stale: the {gen} pack already guards \
                     it; remove the line from crates/check/waivers.txt",
                    w.field
                ),
                vec![],
            ));
        } else if w.generation.is_some_and(|_| !field_relevant(w.field, gen)) {
            out.push(Diagnostic::new(
                "coverage-waiver-stale",
                gen,
                format!(
                    "waiver for `{}` is stale: the parameter is structurally \
                     inert on {gen}, so no guard is required",
                    w.field
                ),
                vec![],
            ));
        }
    }
    out
}

/// Whether the named field is relevant for `gen` (unknown fields: false).
fn field_relevant(field: &str, gen: MemGeneration) -> bool {
    TimingParam::ALL
        .iter()
        .any(|p| p.field() == field && p.relevant_for(gen))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_packs_cover_every_relevant_parameter() {
        for gen in MemGeneration::ALL {
            let cfg = DramTimingConfig::for_generation(gen);
            let diags = check_coverage(&cfg);
            assert!(diags.is_empty(), "{gen}: {diags:#?}");
        }
    }

    #[test]
    fn bundled_waivers_parse_cleanly() {
        let mut out = Vec::new();
        let waivers = parse_waivers(WAIVERS, MemGeneration::Ddr3, &mut out);
        assert!(out.is_empty(), "{out:#?}");
        assert_eq!(waivers.len(), 1);
        assert_eq!(waivers[0].field, "mc_pipeline_cycles");
        assert_eq!(waivers[0].generation, None);
        assert!(!waivers[0].justification.is_empty());
    }

    #[test]
    fn dropping_a_rule_is_detected() {
        let cfg = DramTimingConfig::default();
        let pack: Vec<Rule> = Rule::rule_pack(&cfg)
            .into_iter()
            .filter(|r| *r != Rule::TRcd)
            .collect();
        let diags = check_coverage_with(&cfg, &pack, WAIVERS);
        assert!(diags.iter().any(|d| d.invariant == "coverage-unguarded"
            && d.params.contains(&("t_rcd_ns", cfg.t_rcd_ns))));
    }

    #[test]
    fn waiver_hygiene_is_enforced() {
        let cfg = DramTimingConfig::default();
        let pack = Rule::rule_pack(&cfg);
        let stale = "* t_rcd_ns it is definitely fine\n* mc_pipeline_cycles reason\n";
        let diags = check_coverage_with(&cfg, &pack, stale);
        assert!(diags.iter().any(|d| d.invariant == "coverage-waiver-stale"));

        let unknown = "* not_a_field reason\n* mc_pipeline_cycles reason\n";
        let diags = check_coverage_with(&cfg, &pack, unknown);
        assert!(diags
            .iter()
            .any(|d| d.invariant == "coverage-waiver-unknown"));

        let malformed = "ddr9 t_rcd_ns reason\nnonsense\n* mc_pipeline_cycles reason\n";
        let diags = check_coverage_with(&cfg, &pack, malformed);
        assert_eq!(
            diags
                .iter()
                .filter(|d| d.invariant == "coverage-waiver-unknown")
                .count(),
            2
        );
    }
}
