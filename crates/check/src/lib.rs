//! `memscale-check` — static consistency analyzer for the MemScale
//! reproduction.
//!
//! Simulation output is only as trustworthy as the tables it is computed
//! from. This crate analyzes, without running a single simulated cycle,
//! the three kinds of static structure the simulator trusts implicitly:
//!
//! 1. **Device tables** ([`tables`]) — the shared pure-table invariants
//!    (positivity, cross-parameter orderings, IDD ladder), re-checked here,
//!    plus properties only visible once the table is resolved at each of
//!    the ten grid frequencies (cycle-denominated parameters stretch as the
//!    bus slows) and monotonicity of the MC/register/PLL power grid.
//! 2. **Power-state machines** ([`fsm`]) — the rank power FSM and the
//!    governor hardening ladder, published as declarative transition tables,
//!    are model-checked per generation: well-formed, deterministic, fully
//!    reachable, free of sink states, and every low-power exit carries a
//!    timed latency parameter the generation's table actually provides.
//! 3. **Audit rule-pack coverage** ([`coverage`]) — every timing parameter
//!    relevant to a generation must be guarded by an audit replay rule or
//!    explicitly waived with a justification; stale and unknown waivers are
//!    errors too.
//!
//! The command-line entry point is `memscale-sim check [--generation all]`,
//! which runs [`run_all`] and exits non-zero on any diagnostic — CI runs it
//! as a gate.
//!
//! # Example
//!
//! ```
//! let reports = memscale_check::run_all();
//! assert_eq!(reports.len(), 3); // DDR3, DDR4, LPDDR3
//! assert!(reports.iter().all(memscale_check::CheckReport::is_clean));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod coverage;
pub mod fsm;
pub mod tables;

use memscale::GOVERNOR_LADDER_FSM;
use memscale_dram::rank::RANK_POWER_FSM;
use memscale_types::config::{MemGeneration, SystemConfig};
use memscale_types::invariants::Diagnostic;
use std::fmt;

/// Outcome of analyzing one generation's configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckReport {
    /// The generation analyzed.
    pub generation: MemGeneration,
    /// Every violated invariant, in pass order (tables, FSMs, coverage).
    pub diagnostics: Vec<Diagnostic>,
}

impl CheckReport {
    /// Whether the configuration passed every check.
    #[inline]
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// One line per diagnostic, prefixed by a per-generation verdict.
    pub fn summary(&self) -> String {
        let mut s = if self.is_clean() {
            format!("{}: clean", self.generation)
        } else {
            format!(
                "{}: {} violation(s)",
                self.generation,
                self.diagnostics.len()
            )
        };
        for d in &self.diagnostics {
            s.push_str("\n  ");
            s.push_str(&d.to_string());
        }
        s
    }
}

impl fmt::Display for CheckReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.summary())
    }
}

/// Runs every pass against an explicit system configuration. The mutation
/// self-tests feed deliberately broken configurations through this to prove
/// each invariant actually fires.
pub fn check_system(sys: &SystemConfig) -> CheckReport {
    let mut diagnostics = tables::check_tables(sys);
    for spec in [&RANK_POWER_FSM, &GOVERNOR_LADDER_FSM] {
        diagnostics.extend(fsm::check_fsm(spec, &sys.timing));
    }
    diagnostics.extend(coverage::check_coverage(&sys.timing));
    CheckReport {
        generation: sys.timing.generation,
        diagnostics,
    }
}

/// Analyzes the reference configuration of one generation.
pub fn run_generation(generation: MemGeneration) -> CheckReport {
    check_system(&SystemConfig::for_generation(generation))
}

/// Analyzes every supported generation, in [`MemGeneration::ALL`] order.
pub fn run_all() -> Vec<CheckReport> {
    MemGeneration::ALL.into_iter().map(run_generation).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_configurations_are_clean() {
        for report in run_all() {
            assert!(report.is_clean(), "{report}");
        }
    }

    #[test]
    fn report_summary_names_generation_and_invariants() {
        let mut sys = SystemConfig::default();
        sys.timing.t_xp_ns = sys.timing.t_xpdll_ns + 1.0;
        let report = check_system(&sys);
        assert!(!report.is_clean());
        let shown = report.to_string();
        assert!(shown.contains("DDR3") && shown.contains("powerdown-exit-ladder"));
    }
}
