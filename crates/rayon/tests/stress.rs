//! Interleaving stress tests for the vendored rayon stand-in.
//!
//! The dispatcher hands worker threads item indices through an atomic
//! dispenser and collects `(index, result)` pairs over a channel, so the
//! bugs worth hunting are scheduling-order bugs: a job lost between the
//! dispenser and the channel, an item dropped twice when workers race on a
//! slot, a shutdown ordering that hangs the collector, or a panic that
//! strands the remaining items. The tests below sweep worker counts and
//! item counts through every small combination (bounded-loop exhaustion,
//! with jittered work durations to shuffle the actual interleavings) and
//! assert the exactly-once guarantees hold in each.
//!
//! `RAYON_NUM_THREADS` is process-global, so every test that varies it
//! serializes on [`env_lock`]. The container running CI may expose a single
//! core; forcing the thread count keeps the fan-out genuinely concurrent.

use rayon::prelude::*;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock, PoisonError};
use std::time::Duration;

/// Guards `RAYON_NUM_THREADS`: the variable is read by every parallel
/// operation, so tests that set it must not overlap.
fn env_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
}

/// Runs `f` with the pool forced to `threads` workers.
fn with_threads<R>(threads: usize, f: impl FnOnce() -> R) -> R {
    let _guard = env_lock();
    std::env::set_var("RAYON_NUM_THREADS", threads.to_string());
    let out = f();
    std::env::remove_var("RAYON_NUM_THREADS");
    out
}

/// An item whose constructions and drops are counted, to catch both lost
/// jobs (drops < constructions) and double drops (drops > constructions).
struct Tracked {
    id: usize,
    drops: Arc<AtomicUsize>,
}

impl Drop for Tracked {
    fn drop(&mut self) {
        self.drops.fetch_add(1, Ordering::SeqCst);
    }
}

/// Worker-count × item-count sweep used by the exhaustive tests: every
/// shutdown ordering class (no items, fewer items than workers, exact
/// match, more items than workers) at several pool sizes.
const WORKERS: [usize; 5] = [1, 2, 3, 4, 8];
const ITEMS: [usize; 7] = [0, 1, 2, 3, 7, 16, 64];

#[test]
fn every_job_runs_exactly_once_across_shutdown_orderings() {
    for workers in WORKERS {
        for items in ITEMS {
            let hits: Vec<AtomicUsize> = (0..items).map(|_| AtomicUsize::new(0)).collect();
            let out: Vec<usize> = with_threads(workers, || {
                (0..items)
                    .into_par_iter()
                    .map(|i| {
                        hits[i].fetch_add(1, Ordering::SeqCst);
                        // Jitter the completion order so slow and fast
                        // workers hit the channel shutdown differently.
                        if i % 3 == 0 {
                            std::thread::sleep(Duration::from_micros((i % 7) as u64));
                        }
                        i
                    })
                    .collect()
            });
            assert_eq!(out, (0..items).collect::<Vec<_>>(), "w={workers} n={items}");
            for (i, h) in hits.iter().enumerate() {
                assert_eq!(
                    h.load(Ordering::SeqCst),
                    1,
                    "item {i} ran {} times (w={workers} n={items})",
                    h.load(Ordering::SeqCst)
                );
            }
        }
    }
}

#[test]
fn items_drop_exactly_once_across_shutdown_orderings() {
    for workers in WORKERS {
        for items in ITEMS {
            let drops = Arc::new(AtomicUsize::new(0));
            with_threads(workers, || {
                let tracked: Vec<Tracked> = (0..items)
                    .map(|id| Tracked {
                        id,
                        drops: Arc::clone(&drops),
                    })
                    .collect();
                let ids: Vec<usize> = tracked.into_par_iter().map(|t| t.id).collect();
                assert_eq!(ids.len(), items);
            });
            assert_eq!(
                drops.load(Ordering::SeqCst),
                items,
                "w={workers} n={items}: lost or double-dropped an item"
            );
        }
    }
}

#[test]
fn panicking_job_propagates_and_leaks_nothing() {
    for workers in [2, 4, 8] {
        let drops = Arc::new(AtomicUsize::new(0));
        let constructed = 32;
        let result = with_threads(workers, || {
            let drops = Arc::clone(&drops);
            catch_unwind(AssertUnwindSafe(move || {
                let tracked: Vec<Tracked> = (0..constructed)
                    .map(|id| Tracked {
                        id,
                        drops: Arc::clone(&drops),
                    })
                    .collect();
                let _: Vec<usize> = tracked
                    .into_par_iter()
                    .map(|t| {
                        assert!(t.id != 11, "deliberate stress panic");
                        t.id
                    })
                    .collect();
            }))
        });
        assert!(result.is_err(), "w={workers}: panic was swallowed");
        // Every item must still be dropped exactly once: items consumed by
        // the closure (including the panicking one) unwind through it,
        // undispatched items unwind with the slot table.
        assert_eq!(
            drops.load(Ordering::SeqCst),
            constructed,
            "w={workers}: leak or double drop after panic"
        );
    }
}

#[test]
fn nested_joins_complete_at_every_pool_size() {
    fn sum(depth: usize, base: u64) -> u64 {
        if depth == 0 {
            return base;
        }
        let (a, b) = rayon::join(|| sum(depth - 1, base), || sum(depth - 1, base + 1));
        a + b
    }
    for workers in WORKERS {
        let total = with_threads(workers, || sum(4, 0));
        // 2^4 leaves; value depends only on the call tree, not scheduling.
        assert_eq!(total, 32, "w={workers}");
    }
}

#[test]
fn for_each_side_effects_are_exactly_once_under_contention() {
    for workers in WORKERS {
        let n = 128;
        let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        with_threads(workers, || {
            (0..n).into_par_iter().for_each(|i| {
                hits[i].fetch_add(1, Ordering::SeqCst);
            });
        });
        assert!(
            hits.iter().all(|h| h.load(Ordering::SeqCst) == 1),
            "w={workers}: a for_each side effect ran zero or multiple times"
        );
    }
}

#[test]
fn result_collect_reports_an_error_from_any_slot() {
    for workers in [1, 3, 8] {
        for bad in [0usize, 31, 63] {
            let out: Result<Vec<usize>, String> = with_threads(workers, || {
                (0..64usize)
                    .into_par_iter()
                    .map(|i| {
                        if i == bad {
                            Err(format!("bad {i}"))
                        } else {
                            Ok(i)
                        }
                    })
                    .collect()
            });
            assert_eq!(out.unwrap_err(), format!("bad {bad}"), "w={workers}");
        }
    }
}

#[test]
fn oversubscribed_pool_still_converges() {
    // More workers than items than cores: the dispenser must let surplus
    // workers exit cleanly without stealing or replaying slots.
    let out: Vec<usize> = with_threads(16, || (0..5usize).into_par_iter().map(|i| i * i).collect());
    assert_eq!(out, vec![0, 1, 4, 9, 16]);
}
