//! Offline stand-in for the [`rayon`](https://docs.rs/rayon) crate.
//!
//! The growth container builds without network access, so this crate
//! re-implements the *subset* of rayon the workspace uses: `into_par_iter()`
//! on `Vec<T>` and ranges, `par_iter()` on slices, `map` + `collect` /
//! `for_each` on the resulting parallel iterator, [`join`], and
//! [`current_num_threads`]. Work items are distributed over scoped OS
//! threads through an atomic index dispenser, so results arrive in input
//! order and the fan-out is genuinely concurrent on multi-core hosts
//! (degrading gracefully to sequential execution on a single core).
//!
//! The thread count defaults to [`std::thread::available_parallelism`] and
//! can be overridden with the `RAYON_NUM_THREADS` environment variable,
//! mirroring real rayon.

#![forbid(unsafe_code)]

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};

/// The parallel-iterator traits, for `use rayon::prelude::*;`.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, ParallelIterator};
}

/// Number of worker threads a parallel operation will use for `len` items.
fn threads_for(len: usize) -> usize {
    current_num_threads().min(len).max(1)
}

/// The size of the thread pool parallel operations run on.
pub fn current_num_threads() -> usize {
    if let Ok(v) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(n) = v.parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Runs `a` and `b`, potentially concurrently, returning both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if current_num_threads() <= 1 {
        return (a(), b());
    }
    std::thread::scope(|s| {
        let hb = s.spawn(b);
        let ra = a();
        let rb = hb.join().expect("rayon::join worker panicked");
        (ra, rb)
    })
}

// --- Persistent thread pool with a bounded work queue ----------------------

/// A queued unit of work.
type PoolJob = Box<dyn FnOnce() + Send + 'static>;

/// Error returned by [`ThreadPool::try_execute`] when the work queue is at
/// capacity — the caller's backpressure signal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueFull {
    /// Number of jobs waiting when the submission was rejected.
    pub depth: usize,
    /// The queue's configured capacity.
    pub capacity: usize,
}

impl std::fmt::Display for QueueFull {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "work queue full ({}/{} jobs queued)",
            self.depth, self.capacity
        )
    }
}

impl std::error::Error for QueueFull {}

struct PoolState {
    queue: VecDeque<PoolJob>,
    shutdown: bool,
}

struct PoolShared {
    state: Mutex<PoolState>,
    /// Signalled when work arrives or shutdown is requested.
    work: Condvar,
    /// Signalled when a job leaves the queue (space for blocked producers).
    space: Condvar,
    capacity: usize,
    executed: AtomicUsize,
}

/// A persistent pool of worker threads pulling jobs from a **bounded** FIFO
/// queue. Unlike the scoped fan-out of [`ParallelIterator`], the pool
/// outlives individual submissions, so long-running services can feed it a
/// stream of independent jobs:
///
/// * [`ThreadPool::try_execute`] rejects with [`QueueFull`] when the queue
///   is at capacity — the caller can surface structured backpressure
///   (e.g. an overload response) instead of buffering unboundedly;
/// * [`ThreadPool::execute`] blocks the producer until space frees up.
///
/// Dropping the pool drains the queue (queued jobs still run) and joins the
/// workers.
pub struct ThreadPool {
    shared: Arc<PoolShared>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadPool")
            .field("threads", &self.workers.len())
            .field("capacity", &self.shared.capacity)
            .finish_non_exhaustive()
    }
}

impl ThreadPool {
    /// A pool of `threads` workers (at least one) whose queue holds at most
    /// `queue_capacity` not-yet-started jobs (at least one).
    pub fn new(threads: usize, queue_capacity: usize) -> Self {
        let shared = Arc::new(PoolShared {
            state: Mutex::new(PoolState {
                queue: VecDeque::new(),
                shutdown: false,
            }),
            work: Condvar::new(),
            space: Condvar::new(),
            capacity: queue_capacity.max(1),
            executed: AtomicUsize::new(0),
        });
        let workers = (0..threads.max(1))
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        ThreadPool { shared, workers }
    }

    /// A pool sized like the parallel iterators: [`current_num_threads`]
    /// workers, queue capacity `queue_capacity`.
    pub fn with_default_threads(queue_capacity: usize) -> Self {
        ThreadPool::new(current_num_threads(), queue_capacity)
    }

    /// Jobs currently waiting in the queue (excluding running jobs).
    pub fn queue_len(&self) -> usize {
        self.shared
            .state
            .lock()
            .expect("pool lock poisoned")
            .queue
            .len()
    }

    /// Total jobs that have finished executing since the pool was built.
    pub fn jobs_executed(&self) -> usize {
        self.shared.executed.load(Ordering::Relaxed)
    }

    /// Submits `job`, failing fast with [`QueueFull`] when the queue is at
    /// capacity.
    ///
    /// # Errors
    ///
    /// [`QueueFull`] carries the observed depth and the capacity.
    pub fn try_execute<F>(&self, job: F) -> Result<(), QueueFull>
    where
        F: FnOnce() + Send + 'static,
    {
        let mut state = self.shared.state.lock().expect("pool lock poisoned");
        if state.queue.len() >= self.shared.capacity {
            return Err(QueueFull {
                depth: state.queue.len(),
                capacity: self.shared.capacity,
            });
        }
        state.queue.push_back(Box::new(job));
        drop(state);
        self.shared.work.notify_one();
        Ok(())
    }

    /// Submits `job`, blocking while the queue is at capacity
    /// (producer-side backpressure).
    pub fn execute<F>(&self, job: F)
    where
        F: FnOnce() + Send + 'static,
    {
        let mut state = self.shared.state.lock().expect("pool lock poisoned");
        while state.queue.len() >= self.shared.capacity {
            state = self.shared.space.wait(state).expect("pool lock poisoned");
        }
        state.queue.push_back(Box::new(job));
        drop(state);
        self.shared.work.notify_one();
    }

    /// Submits `job` like [`ThreadPool::execute`], but the producer-side
    /// wait for queue space is bounded by a cancellation flag and an
    /// optional deadline, and the job itself learns whether it was
    /// cancelled while it sat in the queue.
    ///
    /// * While the queue is full the submitter polls `cancel` (and
    ///   `until`); if either fires first, nothing is enqueued and the call
    ///   returns `false`.
    /// * Once enqueued, the flag is sampled again when a worker finally
    ///   dequeues the job and passed as the closure's argument — a job
    ///   cancelled while queued can report back without doing the work.
    ///
    /// Returns `true` iff the job was enqueued.
    pub fn execute_cancellable<F>(
        &self,
        cancel: &Arc<std::sync::atomic::AtomicBool>,
        until: Option<std::time::Instant>,
        job: F,
    ) -> bool
    where
        F: FnOnce(bool) + Send + 'static,
    {
        let mut state = self.shared.state.lock().expect("pool lock poisoned");
        while state.queue.len() >= self.shared.capacity {
            if cancel.load(Ordering::Acquire) {
                return false;
            }
            if until.is_some_and(|u| std::time::Instant::now() >= u) {
                return false;
            }
            let (guard, _timeout) = self
                .shared
                .space
                .wait_timeout(state, std::time::Duration::from_millis(10))
                .expect("pool lock poisoned");
            state = guard;
        }
        let flag = Arc::clone(cancel);
        state
            .queue
            .push_back(Box::new(move || job(flag.load(Ordering::Acquire))));
        drop(state);
        self.shared.work.notify_one();
        true
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        {
            let mut state = self.shared.state.lock().expect("pool lock poisoned");
            state.shutdown = true;
        }
        self.shared.work.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

fn worker_loop(shared: &PoolShared) {
    loop {
        let job = {
            let mut state = shared.state.lock().expect("pool lock poisoned");
            loop {
                if let Some(job) = state.queue.pop_front() {
                    shared.space.notify_one();
                    break job;
                }
                if state.shutdown {
                    return;
                }
                state = shared.work.wait(state).expect("pool lock poisoned");
            }
        };
        // A panicking job must not take its worker thread (and eventually
        // the whole pool) down with it; the panic payload is dropped and
        // the job still counts as executed.
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(job));
        shared.executed.fetch_add(1, Ordering::Relaxed);
    }
}

/// Conversion into a parallel iterator (by value).
pub trait IntoParallelIterator {
    /// The items the iterator yields.
    type Item: Send;
    /// The concrete parallel iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;

    /// Converts `self` into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

/// Conversion into a parallel iterator over references (`par_iter()`).
pub trait IntoParallelRefIterator<'a> {
    /// The items the iterator yields (references into `self`).
    type Item: Send;
    /// The concrete parallel iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;

    /// Borrows `self` as a parallel iterator.
    fn par_iter(&'a self) -> Self::Iter;
}

/// The minimal parallel-iterator interface: `map`, `collect`, `for_each`.
pub trait ParallelIterator: Sized {
    /// The items the iterator yields.
    type Item: Send;

    /// Drains the iterator into an ordered `Vec` of its items.
    fn drain_ordered(self) -> Vec<Self::Item>;

    /// Maps every item through `op` (applied on the worker threads).
    fn map<R, F>(self, op: F) -> MapIter<Self, F>
    where
        R: Send,
        F: Fn(Self::Item) -> R + Sync + Send,
    {
        MapIter { base: self, op }
    }

    /// Collects the items, preserving input order.
    fn collect<C: FromParallelIterator<Self::Item>>(self) -> C {
        C::from_ordered_vec(self.drain_ordered())
    }

    /// Applies `op` to every item for its side effects.
    fn for_each<F>(self, op: F)
    where
        F: Fn(Self::Item) + Sync + Send,
    {
        self.map(op).drain_ordered();
    }
}

/// Collection types a parallel iterator can `collect()` into.
pub trait FromParallelIterator<T> {
    /// Builds the collection from the items in input order.
    fn from_ordered_vec(items: Vec<T>) -> Self;
}

impl<T> FromParallelIterator<T> for Vec<T> {
    fn from_ordered_vec(items: Vec<T>) -> Self {
        items
    }
}

impl<T, E> FromParallelIterator<Result<T, E>> for Result<Vec<T>, E> {
    fn from_ordered_vec(items: Vec<Result<T, E>>) -> Self {
        items.into_iter().collect()
    }
}

/// Parallel iterator over an owned list of items.
#[derive(Debug)]
pub struct VecIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParallelIterator for VecIter<T> {
    type Item = T;
    fn drain_ordered(self) -> Vec<T> {
        self.items
    }
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = VecIter<T>;
    fn into_par_iter(self) -> VecIter<T> {
        VecIter { items: self }
    }
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;
    type Iter = VecIter<usize>;
    fn into_par_iter(self) -> VecIter<usize> {
        VecIter {
            items: self.collect(),
        }
    }
}

/// Parallel iterator over references into a slice.
#[derive(Debug)]
pub struct SliceIter<'a, T> {
    items: &'a [T],
}

impl<'a, T: Sync> ParallelIterator for SliceIter<'a, T> {
    type Item = &'a T;
    fn drain_ordered(self) -> Vec<&'a T> {
        self.items.iter().collect()
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    type Iter = SliceIter<'a, T>;
    fn par_iter(&'a self) -> SliceIter<'a, T> {
        SliceIter { items: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    type Iter = SliceIter<'a, T>;
    fn par_iter(&'a self) -> SliceIter<'a, T> {
        SliceIter { items: self }
    }
}

/// Parallel iterator applying `op` to a base iterator's items. This is the
/// stage that actually fans out: `drain_ordered` materializes the base
/// items, then worker threads pull indices from an atomic dispenser and
/// send `(index, result)` pairs back over a channel.
#[derive(Debug)]
pub struct MapIter<I, F> {
    base: I,
    op: F,
}

impl<I, R, F> ParallelIterator for MapIter<I, F>
where
    I: ParallelIterator,
    R: Send,
    F: Fn(I::Item) -> R + Sync + Send,
{
    type Item = R;

    fn drain_ordered(self) -> Vec<R> {
        let items = self.base.drain_ordered();
        let n = items.len();
        if n == 0 {
            return Vec::new();
        }
        let workers = threads_for(n);
        let op = &self.op;
        if workers == 1 {
            return items.into_iter().map(op).collect();
        }
        // Hand every worker shared access to the item slots: each slot is
        // taken exactly once, guarded by the dispenser index.
        let slots: Vec<std::sync::Mutex<Option<I::Item>>> = items
            .into_iter()
            .map(|i| std::sync::Mutex::new(Some(i)))
            .collect();
        let next = AtomicUsize::new(0);
        let (tx, rx) = mpsc::channel::<(usize, R)>();
        std::thread::scope(|s| {
            for _ in 0..workers {
                let tx = tx.clone();
                let slots = &slots;
                let next = &next;
                s.spawn(move || loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let item = slots[i]
                        .lock()
                        .expect("rayon slot poisoned")
                        .take()
                        .expect("rayon slot taken twice");
                    // A send can only fail if the receiver is gone, which
                    // means the collecting side already panicked.
                    let _ = tx.send((i, op(item)));
                });
            }
            drop(tx);
            let mut out: Vec<Option<R>> = (0..n).map(|_| None).collect();
            for (i, r) in rx {
                out[i] = Some(r);
            }
            out.into_iter()
                .map(|r| r.expect("rayon worker dropped an item"))
                .collect()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<u64> = (0..100usize)
            .into_par_iter()
            .map(|i| i as u64 * 2)
            .collect();
        assert_eq!(v, (0..100).map(|i| i * 2).collect::<Vec<u64>>());
    }

    #[test]
    fn par_iter_over_slice() {
        let data = vec![1u64, 2, 3, 4];
        let doubled: Vec<u64> = data.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6, 8]);
        assert_eq!(data.len(), 4); // still borrowed, not consumed
    }

    #[test]
    fn collect_into_result_short_circuits_value() {
        let ok: Result<Vec<u64>, String> = vec![1u64, 2, 3].into_par_iter().map(Ok).collect();
        assert_eq!(ok.unwrap(), vec![1, 2, 3]);
        let err: Result<Vec<u64>, String> = vec![1u64, 2, 3]
            .into_par_iter()
            .map(|x| {
                if x == 2 {
                    Err("two".to_string())
                } else {
                    Ok(x)
                }
            })
            .collect();
        assert_eq!(err.unwrap_err(), "two");
    }

    #[test]
    fn for_each_runs_every_item() {
        let count = AtomicUsize::new(0);
        (0..37usize).into_par_iter().for_each(|_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 37);
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = join(|| 2 + 2, || "ok");
        assert_eq!(a, 4);
        assert_eq!(b, "ok");
    }

    #[test]
    fn thread_count_is_positive() {
        assert!(current_num_threads() >= 1);
    }

    #[test]
    fn pool_runs_every_job_exactly_once() {
        let pool = ThreadPool::new(4, 64);
        let count = Arc::new(AtomicUsize::new(0));
        for _ in 0..50 {
            let count = Arc::clone(&count);
            pool.execute(move || {
                count.fetch_add(1, Ordering::Relaxed);
            });
        }
        drop(pool); // drains the queue and joins workers
        assert_eq!(count.load(Ordering::Relaxed), 50);
    }

    #[test]
    fn pool_try_execute_rejects_when_full() {
        // One worker blocked on a gate, capacity 1: the second queued job
        // fills the queue, the third is rejected with the observed depth.
        let pool = ThreadPool::new(1, 1);
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let g = Arc::clone(&gate);
        pool.execute(move || {
            let (lock, cv) = &*g;
            let mut open = lock.lock().unwrap();
            while !*open {
                open = cv.wait(open).unwrap();
            }
        });
        // Wait for the worker to pick the blocker up so the queue is empty.
        while pool.queue_len() > 0 {
            std::thread::yield_now();
        }
        assert!(pool.try_execute(|| {}).is_ok());
        let err = pool.try_execute(|| {}).unwrap_err();
        assert_eq!(
            err,
            QueueFull {
                depth: 1,
                capacity: 1
            }
        );
        assert!(err.to_string().contains("1/1"));
        let (lock, cv) = &*gate;
        *lock.lock().unwrap() = true;
        cv.notify_all();
        drop(pool);
    }

    #[test]
    fn pool_execute_blocks_then_drains() {
        // Producer-side backpressure: with capacity 1 the blocking submits
        // must all eventually run.
        let pool = ThreadPool::new(2, 1);
        let count = Arc::new(AtomicUsize::new(0));
        for _ in 0..20 {
            let count = Arc::clone(&count);
            pool.execute(move || {
                count.fetch_add(1, Ordering::Relaxed);
            });
        }
        drop(pool);
        assert_eq!(count.load(Ordering::Relaxed), 20);
    }

    #[test]
    fn pool_survives_panicking_job() {
        let pool = ThreadPool::new(1, 8);
        pool.execute(|| panic!("job panic must not kill the worker"));
        let ran = Arc::new(AtomicUsize::new(0));
        let r = Arc::clone(&ran);
        pool.execute(move || {
            r.fetch_add(1, Ordering::Relaxed);
        });
        drop(pool);
        assert_eq!(ran.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn cancellable_execute_runs_and_reports_flag() {
        use std::sync::atomic::AtomicBool;
        let pool = ThreadPool::new(2, 8);
        let cancel = Arc::new(AtomicBool::new(false));
        let seen = Arc::new(AtomicUsize::new(0));
        let s = Arc::clone(&seen);
        assert!(pool.execute_cancellable(&cancel, None, move |cancelled| {
            assert!(!cancelled);
            s.fetch_add(1, Ordering::Relaxed);
        }));
        drop(pool);
        assert_eq!(seen.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn cancellable_execute_gives_up_when_cancelled_while_full() {
        use std::sync::atomic::AtomicBool;
        // One worker stuck on a gate, capacity 1 already filled: a
        // cancellable submit must return false once the flag raises instead
        // of blocking forever.
        let pool = ThreadPool::new(1, 1);
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let g = Arc::clone(&gate);
        pool.execute(move || {
            let (lock, cv) = &*g;
            let mut open = lock.lock().unwrap();
            while !*open {
                open = cv.wait(open).unwrap();
            }
        });
        while pool.queue_len() > 0 {
            std::thread::yield_now();
        }
        pool.execute(|| {}); // fills the queue
        let cancel = Arc::new(AtomicBool::new(true));
        assert!(!pool.execute_cancellable(&cancel, None, |_| {}));
        let (lock, cv) = &*gate;
        *lock.lock().unwrap() = true;
        cv.notify_all();
        drop(pool);
    }

    #[test]
    fn cancellable_execute_respects_deadline_while_full() {
        use std::sync::atomic::AtomicBool;
        let pool = ThreadPool::new(1, 1);
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let g = Arc::clone(&gate);
        pool.execute(move || {
            let (lock, cv) = &*g;
            let mut open = lock.lock().unwrap();
            while !*open {
                open = cv.wait(open).unwrap();
            }
        });
        while pool.queue_len() > 0 {
            std::thread::yield_now();
        }
        pool.execute(|| {});
        let cancel = Arc::new(AtomicBool::new(false));
        let deadline = std::time::Instant::now() + std::time::Duration::from_millis(30);
        let t0 = std::time::Instant::now();
        assert!(!pool.execute_cancellable(&cancel, Some(deadline), |_| {}));
        assert!(t0.elapsed() < std::time::Duration::from_secs(5));
        let (lock, cv) = &*gate;
        *lock.lock().unwrap() = true;
        cv.notify_all();
        drop(pool);
    }

    #[test]
    fn cancellable_job_sees_cancellation_raised_while_queued() {
        use std::sync::atomic::AtomicBool;
        // Worker blocked, job enqueued behind it, then the flag raises: the
        // job must still run (reporting path) and observe cancelled=true.
        let pool = ThreadPool::new(1, 4);
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let g = Arc::clone(&gate);
        pool.execute(move || {
            let (lock, cv) = &*g;
            let mut open = lock.lock().unwrap();
            while !*open {
                open = cv.wait(open).unwrap();
            }
        });
        while pool.queue_len() > 0 {
            std::thread::yield_now();
        }
        let cancel = Arc::new(AtomicBool::new(false));
        let observed = Arc::new(AtomicUsize::new(0));
        let o = Arc::clone(&observed);
        assert!(pool.execute_cancellable(&cancel, None, move |cancelled| {
            o.store(if cancelled { 2 } else { 1 }, Ordering::Relaxed);
        }));
        cancel.store(true, Ordering::Release);
        let (lock, cv) = &*gate;
        *lock.lock().unwrap() = true;
        cv.notify_all();
        drop(pool);
        assert_eq!(observed.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn empty_input_collects_empty() {
        let v: Vec<u64> = Vec::<u64>::new().into_par_iter().map(|x| x).collect();
        assert!(v.is_empty());
    }
}
