//! Adversarial-input tests: corrupt, truncated or alien bytes must come
//! back as structured [`TraceError`]s — never a panic, never a bogus parse.

use memscale_trace::{TraceError, TraceHeader, TraceReader, TraceWriter};
use memscale_types::address::PhysAddr;
use memscale_types::config::MemGeneration;
use memscale_workloads::MissEvent;

fn sample_trace() -> Vec<u8> {
    let hdr = TraceHeader {
        generation: MemGeneration::Ddr4,
        config_hash: 0x0123_4567_89AB_CDEF,
        seed: 7,
        slice_lines: 1 << 16,
        apps: vec!["ammp".into(), "gap".into()],
    };
    let events: Vec<MissEvent> = (0..200u64)
        .map(|i| MissEvent {
            gap_instructions: i % 13 + 1,
            addr: PhysAddr::from_cache_line(i * 37 % (1 << 16)),
            writeback: (i % 5 == 0).then(|| PhysAddr::from_cache_line(i)),
        })
        .collect();
    let mut w = TraceWriter::new(Vec::new(), &hdr).unwrap();
    w.append_stream(0, &events).unwrap();
    w.append_stream(1, &events[..50]).unwrap();
    w.finish().unwrap()
}

fn read(bytes: &[u8]) -> Result<memscale_trace::ReplayTrace, TraceError> {
    TraceReader::new(bytes).read()
}

#[test]
fn bad_magic_is_rejected() {
    let mut bytes = sample_trace();
    bytes[0] = b'X';
    assert_eq!(read(&bytes).unwrap_err(), TraceError::BadMagic);
    assert!(matches!(
        read(b"not a trace at all").unwrap_err(),
        TraceError::BadMagic | TraceError::Truncated { .. }
    ));
}

#[test]
fn future_version_is_rejected() {
    let mut bytes = sample_trace();
    // Version field sits right after the 8-byte magic, little-endian.
    bytes[8] = 0xFF;
    bytes[9] = 0x7F;
    assert_eq!(
        read(&bytes).unwrap_err(),
        TraceError::UnsupportedVersion {
            found: 0x7FFF,
            supported: 1,
        }
    );
}

#[test]
fn unknown_generation_is_rejected() {
    let mut bytes = sample_trace();
    // Generation code follows the version.
    bytes[10] = 99;
    assert_eq!(read(&bytes).unwrap_err(), TraceError::UnknownGeneration(99));
}

#[test]
fn header_bitflip_fails_the_header_crc() {
    let mut bytes = sample_trace();
    // Flip a bit in the seed field (offset 20..28): CRC must catch it.
    bytes[21] ^= 0x10;
    assert!(matches!(
        read(&bytes).unwrap_err(),
        TraceError::HeaderCorrupt { .. }
    ));
}

#[test]
fn payload_bitflip_fails_the_block_crc() {
    let clean = sample_trace();
    let trace = read(&clean).unwrap();
    // Flip one byte somewhere inside the first block's payload (the header
    // ends well before half the file; payloads dominate the remainder).
    let mut bytes = clean.clone();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xFF;
    let err = read(&bytes).unwrap_err();
    assert!(
        matches!(
            err,
            TraceError::BlockCorrupt { .. }
                | TraceError::HeaderCorrupt { .. }
                | TraceError::Truncated { .. }
                | TraceError::RecordCountMismatch { .. }
        ),
        "unexpected error {err:?}"
    );
    drop(trace);
}

#[test]
fn every_truncation_point_errors_cleanly() {
    let clean = sample_trace();
    // Any strict prefix must produce a structured error, never a panic and
    // never a successful parse.
    for len in 0..clean.len() {
        let err = read(&clean[..len]).expect_err("prefix parsed as complete");
        match err {
            TraceError::Truncated { .. }
            | TraceError::HeaderCorrupt { .. }
            | TraceError::BlockCorrupt { .. }
            | TraceError::MissingEndMarker
            | TraceError::RecordCountMismatch { .. } => {}
            other => panic!("truncation at {len} gave {other:?}"),
        }
    }
}

#[test]
fn wrong_end_marker_total_is_rejected() {
    let mut bytes = sample_trace();
    // The end marker's 8-byte total sits 12 bytes from the end (payload u64
    // followed by the payload CRC u32). Patch it and fix up its CRC.
    let n = bytes.len();
    let total_at = n - 12;
    let mut total = u64::from_le_bytes(bytes[total_at..total_at + 8].try_into().unwrap());
    total += 1;
    bytes[total_at..total_at + 8].copy_from_slice(&total.to_le_bytes());
    let crc = memscale_trace::format::crc32(&bytes[total_at..total_at + 8]);
    bytes[n - 4..].copy_from_slice(&crc.to_le_bytes());
    assert!(matches!(
        read(&bytes).unwrap_err(),
        TraceError::RecordCountMismatch { .. }
    ));
}

#[test]
fn trailing_garbage_after_a_valid_block_is_caught() {
    let mut bytes = sample_trace();
    // Drop the end marker entirely (16 bytes: header 12 + payload 8 + CRC 4
    // = 24) — cutting 24 bytes removes the whole marker block.
    bytes.truncate(bytes.len() - 24);
    assert!(matches!(
        read(&bytes).unwrap_err(),
        TraceError::Truncated { .. }
    ));
}

#[test]
fn errors_format_without_panicking() {
    let clean = sample_trace();
    for len in [0, 4, 9, 11, 30, clean.len() - 1] {
        if let Err(e) = read(&clean[..len]) {
            let _ = e.to_string();
        }
    }
}
