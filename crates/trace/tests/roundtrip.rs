//! Property-based round-trip tests: writing any well-formed event streams
//! and reading them back is the identity, through the full file format.

use memscale_trace::{TraceHeader, TraceReader, TraceWriter};
use memscale_types::address::PhysAddr;
use memscale_types::config::MemGeneration;
use memscale_workloads::MissEvent;
use proptest::prelude::*;

/// Cache-line indices must stay below 2^58 (byte addresses are u64).
const MAX_LINE: u64 = u64::MAX / 64;

fn event_strategy() -> impl Strategy<Value = MissEvent> {
    (1u64..1 << 40, 0u64..MAX_LINE, 0u64..MAX_LINE, 0u8..4).prop_map(
        |(gap, line, wb_line, wb_sel)| MissEvent {
            gap_instructions: gap,
            addr: PhysAddr::from_cache_line(line),
            // ~25% of misses carry a writeback, anywhere in the space.
            writeback: (wb_sel == 0).then(|| PhysAddr::from_cache_line(wb_line)),
        },
    )
}

fn header(apps: usize) -> TraceHeader {
    TraceHeader {
        generation: MemGeneration::Ddr3,
        config_hash: 0xDEAD_BEEF_CAFE_F00D,
        seed: 42,
        slice_lines: 1 << 20,
        apps: (0..apps).map(|i| format!("app{i}")).collect(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// encode ∘ decode = id for the whole artifact: header metadata and
    /// every app's event stream survive a write/read cycle byte-exactly.
    #[test]
    fn file_round_trips(
        streams in prop::collection::vec(
            prop::collection::vec(event_strategy(), 0..300),
            1..5,
        ),
    ) {
        let hdr = header(streams.len());
        let mut w = TraceWriter::new(Vec::new(), &hdr).unwrap();
        for (app, events) in streams.iter().enumerate() {
            w.append_stream(app, events).unwrap();
        }
        let bytes = w.finish().unwrap();

        let trace = TraceReader::new(&bytes[..]).read().unwrap();
        prop_assert_eq!(trace.header(), &hdr);
        prop_assert_eq!(trace.apps(), streams.len());
        for (app, events) in streams.iter().enumerate() {
            prop_assert_eq!(trace.events(app), &events[..]);
        }
    }

    /// The writer's output is a pure function of (header, streams): two
    /// writes of the same data are byte-identical — required for the golden
    /// fixture to stay stable.
    #[test]
    fn encoding_is_deterministic(
        events in prop::collection::vec(event_strategy(), 0..200),
    ) {
        let hdr = header(1);
        let encode = || {
            let mut w = TraceWriter::new(Vec::new(), &hdr).unwrap();
            w.append_stream(0, &events).unwrap();
            w.finish().unwrap()
        };
        prop_assert_eq!(encode(), encode());
    }
}

#[test]
fn block_boundaries_round_trip() {
    // Exactly at, one under and one over the writer's block size.
    for n in [4095usize, 4096, 4097, 8192] {
        let events: Vec<MissEvent> = (0..n)
            .map(|i| MissEvent {
                gap_instructions: (i as u64 % 997) + 1,
                addr: PhysAddr::from_cache_line((i as u64 * 131) % (1 << 24)),
                writeback: (i % 7 == 0).then(|| PhysAddr::from_cache_line(i as u64)),
            })
            .collect();
        let hdr = header(1);
        let mut w = TraceWriter::new(Vec::new(), &hdr).unwrap();
        w.append_stream(0, &events).unwrap();
        let bytes = w.finish().unwrap();
        let trace = TraceReader::new(&bytes[..]).read().unwrap();
        assert_eq!(trace.events(0), &events[..], "n = {n}");
        assert!(trace.summary().blocks >= (n / 4096) as u64);
    }
}

#[test]
fn empty_streams_round_trip() {
    let hdr = header(3);
    let w = TraceWriter::new(Vec::new(), &hdr).unwrap();
    let bytes = w.finish().unwrap();
    let trace = TraceReader::new(&bytes[..]).read().unwrap();
    assert_eq!(trace.apps(), 3);
    assert_eq!(trace.summary().records_per_app, vec![0, 0, 0]);
}
