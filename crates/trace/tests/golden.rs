//! Golden-fixture test: the checked-in `tests/fixtures/golden_v1.trace`
//! pins format v1's exact bytes. If an encoder change breaks byte-level
//! compatibility, this test fails — bump `FORMAT_VERSION` and keep reading
//! the old bytes instead of silently changing the format.
//!
//! Regenerate (only alongside a deliberate version bump) with:
//! `REGEN_GOLDEN=1 cargo test -p memscale-trace --test golden`

use memscale_trace::{TraceHeader, TraceReader, TraceWriter};
use memscale_types::address::PhysAddr;
use memscale_types::config::MemGeneration;
use memscale_workloads::MissEvent;
use std::path::PathBuf;

fn fixture_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/golden_v1.trace")
}

/// The fixture's contents, reproduced deterministically in code: three app
/// streams exercising big forward/backward line deltas, writebacks and an
/// empty stream.
fn golden() -> (TraceHeader, Vec<Vec<MissEvent>>) {
    let header = TraceHeader {
        generation: MemGeneration::Lpddr3,
        config_hash: 0x00C0_FFEE_0000_BEEF,
        seed: 0x5EED,
        slice_lines: 1 << 12,
        apps: vec!["swim".into(), "art".into(), "idle".into()],
    };
    let mut app0 = Vec::new();
    let mut line = 0u64;
    for i in 0u64..100 {
        line = (line + i * 2_654_435_761) % (1 << 30);
        app0.push(MissEvent {
            gap_instructions: i * i + 1,
            addr: PhysAddr::from_cache_line(line),
            writeback: (i % 3 == 0).then(|| PhysAddr::from_cache_line(line ^ 0xFFF)),
        });
    }
    let app1 = vec![
        MissEvent {
            gap_instructions: 1,
            addr: PhysAddr::from_cache_line(0),
            writeback: None,
        },
        MissEvent {
            gap_instructions: u64::MAX,
            addr: PhysAddr::from_cache_line(u64::MAX / 64),
            writeback: Some(PhysAddr::from_cache_line(0)),
        },
        MissEvent {
            gap_instructions: 2,
            addr: PhysAddr::from_cache_line(1),
            writeback: None,
        },
    ];
    (header, vec![app0, app1, Vec::new()])
}

fn encode() -> Vec<u8> {
    let (header, streams) = golden();
    let mut w = TraceWriter::new(Vec::new(), &header).unwrap();
    for (app, events) in streams.iter().enumerate() {
        w.append_stream(app, events).unwrap();
    }
    w.finish().unwrap()
}

#[test]
fn golden_fixture_is_byte_stable() {
    let bytes = encode();
    let path = fixture_path();
    if std::env::var_os("REGEN_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &bytes).unwrap();
    }
    let on_disk = std::fs::read(&path)
        .unwrap_or_else(|e| panic!("missing fixture {} ({e}); see module docs", path.display()));
    assert_eq!(
        on_disk, bytes,
        "encoder output diverged from the v1 fixture — a silent format break"
    );
}

#[test]
fn golden_fixture_decodes_to_known_events() {
    let on_disk = std::fs::read(fixture_path()).expect("fixture; see module docs");
    let trace = TraceReader::new(&on_disk[..]).read().unwrap();
    let (header, streams) = golden();
    assert_eq!(trace.header(), &header);
    assert_eq!(trace.summary().version, 1);
    for (app, events) in streams.iter().enumerate() {
        assert_eq!(trace.events(app), &events[..]);
    }
}
