//! Structured trace-file errors.
//!
//! Every failure mode of reading or writing a trace artifact — I/O,
//! truncation, corruption, version skew, configuration mismatch — is a
//! [`TraceError`] value. The crate never panics on malformed input: a
//! fuzzer can feed arbitrary bytes to the reader and only ever observe an
//! `Err`.

use std::fmt;

/// Everything that can go wrong producing or consuming a trace artifact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceError {
    /// An underlying I/O operation failed.
    Io {
        /// What the trace layer was doing when the I/O failed.
        context: &'static str,
        /// The OS error kind.
        kind: std::io::ErrorKind,
        /// The OS error message.
        message: String,
    },
    /// The file does not start with the trace magic.
    BadMagic,
    /// The file's format version is newer than this reader understands.
    UnsupportedVersion {
        /// Version found in the header.
        found: u16,
        /// Newest version this build reads.
        supported: u16,
    },
    /// The header carries a memory-generation code this build doesn't know.
    UnknownGeneration(u8),
    /// The header failed its CRC or a header field is malformed.
    HeaderCorrupt {
        /// Human-readable description of the defect.
        detail: String,
    },
    /// A record block failed its CRC or decoded inconsistently.
    BlockCorrupt {
        /// Zero-based index of the app the block belongs to (`u32::MAX`
        /// when the defect precedes app attribution).
        app: u32,
        /// Human-readable description of the defect.
        detail: String,
    },
    /// The file ended mid-structure.
    Truncated {
        /// The structure being read when the bytes ran out.
        at: &'static str,
    },
    /// The blocks ended without the end-of-trace marker (the file was cut
    /// off at a block boundary, which per-block CRCs cannot catch).
    MissingEndMarker,
    /// The end marker's total record count disagrees with the blocks read.
    RecordCountMismatch {
        /// Count the end marker promised.
        expected: u64,
        /// Count the blocks actually carried.
        got: u64,
    },
    /// The trace was recorded under a different configuration than the one
    /// it is being replayed into.
    ConfigMismatch {
        /// Which header field disagreed (`generation`, `config hash`,
        /// `seed`, `app count`).
        field: &'static str,
        /// Value the replay run expects.
        expected: String,
        /// Value the trace header carries.
        got: String,
    },
}

impl TraceError {
    /// Wraps an [`std::io::Error`] with the operation it interrupted.
    pub fn io(context: &'static str, err: &std::io::Error) -> Self {
        if err.kind() == std::io::ErrorKind::UnexpectedEof {
            return TraceError::Truncated { at: context };
        }
        TraceError::Io {
            context,
            kind: err.kind(),
            message: err.to_string(),
        }
    }
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Io {
                context,
                kind,
                message,
            } => write!(f, "trace I/O failed while {context}: {message} ({kind:?})"),
            TraceError::BadMagic => write!(f, "not a memscale trace file (bad magic)"),
            TraceError::UnsupportedVersion { found, supported } => write!(
                f,
                "trace format v{found} is newer than this reader (supports up to v{supported})"
            ),
            TraceError::UnknownGeneration(code) => {
                write!(f, "trace header carries unknown memory-generation code {code}")
            }
            TraceError::HeaderCorrupt { detail } => write!(f, "corrupt trace header: {detail}"),
            TraceError::BlockCorrupt { app, detail } => {
                if *app == u32::MAX {
                    write!(f, "corrupt trace block: {detail}")
                } else {
                    write!(f, "corrupt trace block for app {app}: {detail}")
                }
            }
            TraceError::Truncated { at } => write!(f, "trace file truncated while reading {at}"),
            TraceError::MissingEndMarker => {
                write!(f, "trace file ended without its end-of-trace marker")
            }
            TraceError::RecordCountMismatch { expected, got } => write!(
                f,
                "trace end marker promises {expected} records but blocks carry {got}"
            ),
            TraceError::ConfigMismatch {
                field,
                expected,
                got,
            } => write!(
                f,
                "trace was recorded under a different {field}: run expects {expected}, trace has {got}"
            ),
        }
    }
}

impl std::error::Error for TraceError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_readable() {
        let e = TraceError::UnsupportedVersion {
            found: 9,
            supported: 1,
        };
        assert!(e.to_string().contains("v9"));
        let e = TraceError::ConfigMismatch {
            field: "config hash",
            expected: "0xdead".into(),
            got: "0xbeef".into(),
        };
        assert!(e.to_string().contains("config hash") && e.to_string().contains("0xbeef"));
        assert!(TraceError::BadMagic.to_string().contains("magic"));
        let e = TraceError::Truncated { at: "block header" };
        assert!(e.to_string().contains("block header"));
    }

    #[test]
    fn eof_maps_to_truncated() {
        let io = std::io::Error::new(std::io::ErrorKind::UnexpectedEof, "eof");
        assert_eq!(
            TraceError::io("reading header", &io),
            TraceError::Truncated {
                at: "reading header"
            }
        );
        let io = std::io::Error::new(std::io::ErrorKind::PermissionDenied, "nope");
        assert!(matches!(
            TraceError::io("opening trace", &io),
            TraceError::Io { .. }
        ));
    }
}
