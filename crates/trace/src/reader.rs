//! Trace reading and replay sources.

use crate::error::TraceError;
use crate::format::{crc32, decode_record, END_MARKER, FORMAT_VERSION, MAGIC};
use crate::writer::TraceHeader;
use memscale_types::config::MemGeneration;
use memscale_types::ids::AppId;
use memscale_workloads::{MissEvent, MissSource};
use std::io::Read;
use std::sync::Arc;

/// Sizes and counts of a parsed trace, for `memscale-sim trace-info`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceSummary {
    /// Format version the file was written with.
    pub version: u16,
    /// Records per app, in core order.
    pub records_per_app: Vec<u64>,
    /// Number of record blocks (excluding the end marker).
    pub blocks: u64,
    /// Total encoded payload bytes across all blocks.
    pub payload_bytes: u64,
}

/// A fully parsed, immutable trace: the header plus one event stream per
/// app. Streams are held behind [`Arc`], so cloning a `ReplayTrace` — or
/// minting fresh [`ReplayStream`] cursors for many concurrent replay shards
/// — never copies event data.
#[derive(Debug, Clone)]
pub struct ReplayTrace {
    header: TraceHeader,
    summary: TraceSummary,
    streams: Vec<Arc<[MissEvent]>>,
}

/// Incremental parser producing a [`ReplayTrace`] from any byte source.
#[derive(Debug)]
pub struct TraceReader<R: Read> {
    src: R,
}

impl<R: Read> TraceReader<R> {
    /// Wraps a byte source.
    pub fn new(src: R) -> Self {
        TraceReader { src }
    }

    fn read_exact(&mut self, buf: &mut [u8], at: &'static str) -> Result<(), TraceError> {
        self.src.read_exact(buf).map_err(|e| match e.kind() {
            std::io::ErrorKind::UnexpectedEof => TraceError::Truncated { at },
            _ => TraceError::io(at, &e),
        })
    }

    fn read_u16(&mut self, at: &'static str) -> Result<u16, TraceError> {
        let mut b = [0u8; 2];
        self.read_exact(&mut b, at)?;
        Ok(u16::from_le_bytes(b))
    }

    fn read_u32(&mut self, at: &'static str) -> Result<u32, TraceError> {
        let mut b = [0u8; 4];
        self.read_exact(&mut b, at)?;
        Ok(u32::from_le_bytes(b))
    }

    fn read_u64(&mut self, at: &'static str) -> Result<u64, TraceError> {
        let mut b = [0u8; 8];
        self.read_exact(&mut b, at)?;
        Ok(u64::from_le_bytes(b))
    }

    /// Parses the whole trace, verifying the header CRC, every block CRC
    /// and the end marker's total record count.
    ///
    /// # Errors
    ///
    /// Returns a [`TraceError`] describing the first defect found; arbitrary
    /// input bytes can never cause a panic.
    pub fn read(mut self) -> Result<ReplayTrace, TraceError> {
        // Header, re-serialized incrementally for the CRC check.
        let mut header_bytes = Vec::with_capacity(128);
        let mut magic = [0u8; 8];
        self.read_exact(&mut magic, "trace magic")?;
        if magic != MAGIC {
            return Err(TraceError::BadMagic);
        }
        header_bytes.extend_from_slice(&magic);
        let version = self.read_u16("format version")?;
        header_bytes.extend_from_slice(&version.to_le_bytes());
        if version > FORMAT_VERSION || version == 0 {
            return Err(TraceError::UnsupportedVersion {
                found: version,
                supported: FORMAT_VERSION,
            });
        }
        let mut gen_reserved = [0u8; 2];
        self.read_exact(&mut gen_reserved, "generation code")?;
        header_bytes.extend_from_slice(&gen_reserved);
        let generation = MemGeneration::from_code(gen_reserved[0])
            .ok_or(TraceError::UnknownGeneration(gen_reserved[0]))?;
        let config_hash = self.read_u64("config hash")?;
        header_bytes.extend_from_slice(&config_hash.to_le_bytes());
        let seed = self.read_u64("seed")?;
        header_bytes.extend_from_slice(&seed.to_le_bytes());
        let slice_lines = self.read_u64("slice size")?;
        header_bytes.extend_from_slice(&slice_lines.to_le_bytes());
        let app_count = self.read_u32("app count")?;
        header_bytes.extend_from_slice(&app_count.to_le_bytes());
        if app_count == 0 || app_count > 4096 {
            return Err(TraceError::HeaderCorrupt {
                detail: format!("implausible app count {app_count}"),
            });
        }
        let mut apps = Vec::with_capacity(app_count as usize);
        for _ in 0..app_count {
            let len = self.read_u16("app name length")?;
            header_bytes.extend_from_slice(&len.to_le_bytes());
            let mut name = vec![0u8; usize::from(len)];
            self.read_exact(&mut name, "app name")?;
            header_bytes.extend_from_slice(&name);
            let name = String::from_utf8(name).map_err(|_| TraceError::HeaderCorrupt {
                detail: "app name is not UTF-8".into(),
            })?;
            apps.push(name);
        }
        let header_crc = self.read_u32("header CRC")?;
        let computed = crc32(&header_bytes);
        if header_crc != computed {
            return Err(TraceError::HeaderCorrupt {
                detail: format!("header CRC {header_crc:#010x} != computed {computed:#010x}"),
            });
        }
        let header = TraceHeader {
            generation,
            config_hash,
            seed,
            slice_lines,
            apps,
        };

        // Blocks.
        let n = header.apps.len();
        let mut streams: Vec<Vec<MissEvent>> = vec![Vec::new(); n];
        let mut prev_line = vec![0u64; n];
        let mut blocks = 0u64;
        let mut payload_bytes = 0u64;
        let mut total = 0u64;
        loop {
            let app_index = self.read_u32("block header")?;
            let record_count = self.read_u32("block header")?;
            let payload_len = self.read_u32("block header")?;
            if payload_len > 1 << 28 {
                return Err(TraceError::BlockCorrupt {
                    app: app_index,
                    detail: format!("implausible block payload of {payload_len} bytes"),
                });
            }
            let mut payload = vec![0u8; payload_len as usize];
            self.read_exact(&mut payload, "block payload")?;
            let payload_crc = self.read_u32("block CRC")?;
            let computed = crc32(&payload);
            if payload_crc != computed {
                return Err(TraceError::BlockCorrupt {
                    app: app_index,
                    detail: format!("payload CRC {payload_crc:#010x} != computed {computed:#010x}"),
                });
            }
            if app_index == END_MARKER {
                if payload.len() != 8 {
                    return Err(TraceError::BlockCorrupt {
                        app: app_index,
                        detail: "end marker payload must be 8 bytes".into(),
                    });
                }
                let mut b = [0u8; 8];
                b.copy_from_slice(&payload);
                let expected = u64::from_le_bytes(b);
                if expected != total {
                    return Err(TraceError::RecordCountMismatch {
                        expected,
                        got: total,
                    });
                }
                break;
            }
            let app = app_index as usize;
            if app >= n {
                return Err(TraceError::BlockCorrupt {
                    app: app_index,
                    detail: format!("app index out of range (header has {n} apps)"),
                });
            }
            let mut pos = 0usize;
            for _ in 0..record_count {
                let ev = decode_record(&payload, &mut pos, &mut prev_line[app]).map_err(
                    |e| match e {
                        TraceError::BlockCorrupt { detail, .. } => TraceError::BlockCorrupt {
                            app: app_index,
                            detail,
                        },
                        TraceError::Truncated { .. } => TraceError::BlockCorrupt {
                            app: app_index,
                            detail: "records overrun the block payload".into(),
                        },
                        other => other,
                    },
                )?;
                streams[app].push(ev);
            }
            if pos != payload.len() {
                return Err(TraceError::BlockCorrupt {
                    app: app_index,
                    detail: format!(
                        "{} trailing payload bytes after the last record",
                        payload.len() - pos
                    ),
                });
            }
            blocks += 1;
            payload_bytes += u64::from(payload_len);
            total += u64::from(record_count);
        }

        let records_per_app = streams.iter().map(|s| s.len() as u64).collect();
        Ok(ReplayTrace {
            header,
            summary: TraceSummary {
                version,
                records_per_app,
                blocks,
                payload_bytes,
            },
            streams: streams.into_iter().map(Arc::from).collect(),
        })
    }
}

impl ReplayTrace {
    /// Reads and fully verifies the trace file at `path`.
    ///
    /// # Errors
    ///
    /// Returns a [`TraceError`] if the file cannot be opened or fails any
    /// structural or CRC check.
    pub fn open(path: &std::path::Path) -> Result<Self, TraceError> {
        let file =
            std::fs::File::open(path).map_err(|e| TraceError::io("opening trace file", &e))?;
        TraceReader::new(std::io::BufReader::new(file)).read()
    }

    /// Builds an in-memory trace from already-captured streams (the bench
    /// path: record → replay without touching disk).
    pub fn from_streams(header: TraceHeader, streams: Vec<Vec<MissEvent>>) -> Self {
        let records_per_app: Vec<u64> = streams.iter().map(|s| s.len() as u64).collect();
        let payload_bytes = 0;
        let blocks = 0;
        ReplayTrace {
            summary: TraceSummary {
                version: FORMAT_VERSION,
                records_per_app,
                blocks,
                payload_bytes,
            },
            header,
            streams: streams.into_iter().map(Arc::from).collect(),
        }
    }

    /// The trace's header metadata.
    #[inline]
    pub fn header(&self) -> &TraceHeader {
        &self.header
    }

    /// Parsed sizes and counts (for `trace-info`).
    #[inline]
    pub fn summary(&self) -> &TraceSummary {
        &self.summary
    }

    /// Number of application streams.
    #[inline]
    pub fn apps(&self) -> usize {
        self.streams.len()
    }

    /// Recorded events of app `app`.
    pub fn events(&self, app: usize) -> &[MissEvent] {
        &self.streams[app]
    }

    /// Mints a fresh set of replay cursors, one per app, positioned at the
    /// start of each stream. Cheap: streams are shared, not copied.
    pub fn streams(&self) -> Vec<Box<dyn MissSource + Send>> {
        self.streams
            .iter()
            .enumerate()
            .map(|(i, s)| {
                Box::new(ReplayStream {
                    app: AppId(i),
                    events: Arc::clone(s),
                    pos: 0,
                }) as Box<dyn MissSource + Send>
            })
            .collect()
    }

    /// Verifies this trace was recorded under the configuration a replay
    /// run is about to use.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::ConfigMismatch`] naming the first disagreeing
    /// field (generation, config hash, or app count).
    pub fn check_compat(
        &self,
        generation: MemGeneration,
        config_hash: u64,
        cores: usize,
    ) -> Result<(), TraceError> {
        if self.header.generation != generation {
            return Err(TraceError::ConfigMismatch {
                field: "generation",
                expected: generation.to_string(),
                got: self.header.generation.to_string(),
            });
        }
        if self.header.config_hash != config_hash {
            return Err(TraceError::ConfigMismatch {
                field: "config hash",
                expected: format!("{config_hash:#018x}"),
                got: format!("{:#018x}", self.header.config_hash),
            });
        }
        if self.streams.len() != cores {
            return Err(TraceError::ConfigMismatch {
                field: "app count",
                expected: cores.to_string(),
                got: self.streams.len().to_string(),
            });
        }
        Ok(())
    }
}

/// One app's replay cursor over a shared recorded stream. Implements the
/// same [`MissSource`] interface as the live generator, returning `None`
/// when the recording is exhausted.
#[derive(Debug, Clone)]
pub struct ReplayStream {
    app: AppId,
    events: Arc<[MissEvent]>,
    pos: usize,
}

impl ReplayStream {
    /// Events remaining before exhaustion.
    #[inline]
    pub fn remaining(&self) -> usize {
        self.events.len() - self.pos
    }
}

impl MissSource for ReplayStream {
    fn app(&self) -> AppId {
        self.app
    }

    fn next_event(&mut self) -> Option<MissEvent> {
        let ev = self.events.get(self.pos).copied()?;
        self.pos += 1;
        Some(ev)
    }
}
