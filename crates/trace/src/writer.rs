//! Streaming trace writer.

use crate::error::TraceError;
use crate::format::{crc32, encode_record, BLOCK_RECORDS, END_MARKER, FORMAT_VERSION, MAGIC};
use memscale_types::config::MemGeneration;
use memscale_workloads::MissEvent;
use std::io::Write;

/// The metadata a trace artifact carries ahead of its record blocks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceHeader {
    /// Memory generation the recording run was configured with.
    pub generation: MemGeneration,
    /// Fingerprint of the recording run's full `SimConfig`; replay refuses
    /// a trace whose fingerprint differs from the replay configuration.
    pub config_hash: u64,
    /// Master seed the recorded streams were generated from.
    pub seed: u64,
    /// Cache lines in each application instance's private address slice.
    pub slice_lines: u64,
    /// Application name per instance, in core order.
    pub apps: Vec<String>,
}

impl TraceHeader {
    /// Serializes the header (everything the header CRC covers).
    fn encode(&self) -> Result<Vec<u8>, TraceError> {
        let mut out = Vec::with_capacity(64 + self.apps.len() * 12);
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        out.push(self.generation.code());
        out.push(0); // reserved
        out.extend_from_slice(&self.config_hash.to_le_bytes());
        out.extend_from_slice(&self.seed.to_le_bytes());
        out.extend_from_slice(&self.slice_lines.to_le_bytes());
        let app_count = u32::try_from(self.apps.len()).map_err(|_| TraceError::HeaderCorrupt {
            detail: "more than u32::MAX apps".into(),
        })?;
        out.extend_from_slice(&app_count.to_le_bytes());
        for name in &self.apps {
            let len = u16::try_from(name.len()).map_err(|_| TraceError::HeaderCorrupt {
                detail: format!("app name longer than 64 KiB: {name:.32}…"),
            })?;
            out.extend_from_slice(&len.to_le_bytes());
            out.extend_from_slice(name.as_bytes());
        }
        Ok(out)
    }
}

/// Writes a trace artifact incrementally: construct with the header, feed
/// events per app in any interleaving, then [`TraceWriter::finish`].
///
/// Events of one app are delta-encoded against each other across blocks, so
/// the writer keeps one small pending buffer and one delta cursor per app.
#[derive(Debug)]
pub struct TraceWriter<W: Write> {
    out: W,
    pending: Vec<Vec<MissEvent>>,
    prev_line: Vec<u64>,
    counts: Vec<u64>,
    total: u64,
}

impl<W: Write> TraceWriter<W> {
    /// Writes `header` to `out` and prepares per-app encoder state.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Io`] if writing the header fails, or
    /// [`TraceError::HeaderCorrupt`] for an unencodable header.
    pub fn new(mut out: W, header: &TraceHeader) -> Result<Self, TraceError> {
        let bytes = header.encode()?;
        out.write_all(&bytes)
            .map_err(|e| TraceError::io("writing trace header", &e))?;
        out.write_all(&crc32(&bytes).to_le_bytes())
            .map_err(|e| TraceError::io("writing trace header", &e))?;
        let n = header.apps.len();
        Ok(TraceWriter {
            out,
            pending: vec![Vec::with_capacity(BLOCK_RECORDS); n],
            prev_line: vec![0; n],
            counts: vec![0; n],
            total: 0,
        })
    }

    /// Appends one event to app `app`'s stream.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Io`] if flushing a full block fails, or a
    /// [`TraceError::BlockCorrupt`] for an out-of-range app index.
    pub fn append(&mut self, app: usize, ev: MissEvent) -> Result<(), TraceError> {
        if app >= self.pending.len() {
            return Err(TraceError::BlockCorrupt {
                app: u32::try_from(app).unwrap_or(u32::MAX),
                detail: format!(
                    "app index out of range (header has {} apps)",
                    self.pending.len()
                ),
            });
        }
        self.pending[app].push(ev);
        if self.pending[app].len() >= BLOCK_RECORDS {
            self.flush_app(app)?;
        }
        Ok(())
    }

    /// Appends a whole slice of events to app `app`'s stream.
    ///
    /// # Errors
    ///
    /// Same conditions as [`TraceWriter::append`].
    pub fn append_stream(&mut self, app: usize, events: &[MissEvent]) -> Result<(), TraceError> {
        for ev in events {
            self.append(app, *ev)?;
        }
        Ok(())
    }

    /// Encodes and writes app `app`'s pending events as one block.
    fn flush_app(&mut self, app: usize) -> Result<(), TraceError> {
        let events = std::mem::take(&mut self.pending[app]);
        if events.is_empty() {
            return Ok(());
        }
        let mut payload = Vec::with_capacity(events.len() * 4);
        for ev in &events {
            encode_record(&mut payload, ev, &mut self.prev_line[app]);
        }
        let record_count = u32::try_from(events.len()).expect("block bounded by BLOCK_RECORDS");
        let payload_len = u32::try_from(payload.len()).map_err(|_| TraceError::BlockCorrupt {
            app: u32::try_from(app).unwrap_or(u32::MAX),
            detail: "block payload exceeds u32::MAX bytes".into(),
        })?;
        let app_index = u32::try_from(app).expect("validated in append");
        let mut write = |bytes: &[u8]| {
            self.out
                .write_all(bytes)
                .map_err(|e| TraceError::io("writing trace block", &e))
        };
        write(&app_index.to_le_bytes())?;
        write(&record_count.to_le_bytes())?;
        write(&payload_len.to_le_bytes())?;
        write(&payload)?;
        write(&crc32(&payload).to_le_bytes())?;
        self.counts[app] += u64::from(record_count);
        self.total += u64::from(record_count);
        Ok(())
    }

    /// Flushes all pending blocks, writes the end-of-trace marker and
    /// returns the underlying sink.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Io`] if any final write fails.
    pub fn finish(mut self) -> Result<W, TraceError> {
        for app in 0..self.pending.len() {
            self.flush_app(app)?;
        }
        let payload = self.total.to_le_bytes();
        let mut write = |bytes: &[u8]| {
            self.out
                .write_all(bytes)
                .map_err(|e| TraceError::io("writing trace end marker", &e))
        };
        write(&END_MARKER.to_le_bytes())?;
        write(&0u32.to_le_bytes())?;
        write(&u32::try_from(payload.len()).expect("8").to_le_bytes())?;
        write(&payload)?;
        write(&crc32(&payload).to_le_bytes())?;
        self.out
            .flush()
            .map_err(|e| TraceError::io("flushing trace file", &e))?;
        Ok(self.out)
    }

    /// Records written so far per app (flushed and pending).
    pub fn record_counts(&self) -> Vec<u64> {
        self.counts
            .iter()
            .zip(&self.pending)
            .map(|(&flushed, pending)| flushed + pending.len() as u64)
            .collect()
    }
}

/// Writes a complete trace file at `path` from fully materialized per-app
/// streams (the shape the run recorder produces).
///
/// # Errors
///
/// Returns a [`TraceError`] if `path` cannot be created or any write fails.
pub fn write_trace_file(
    path: &std::path::Path,
    header: &TraceHeader,
    streams: &[Vec<MissEvent>],
) -> Result<(), TraceError> {
    let file =
        std::fs::File::create(path).map_err(|e| TraceError::io("creating trace file", &e))?;
    let mut w = TraceWriter::new(std::io::BufWriter::new(file), header)?;
    for (app, events) in streams.iter().enumerate() {
        w.append_stream(app, events)?;
    }
    w.finish()?;
    Ok(())
}
