//! The run recorder: a cheap handle the simulation engine tees every miss
//! event through.

use memscale_workloads::MissEvent;
use std::sync::{Arc, Mutex};

/// A shared, clonable capture buffer with one event stream per app.
///
/// The engine calls [`Recorder::observe`] for every miss it pulls from its
/// sources; the handle the caller kept returns the captured streams via
/// [`Recorder::snapshot`] after the run. Because each simulation run pulls a
/// *prefix* of the same deterministic per-app stream, recordings of two runs
/// at the same seed/config can be combined with [`merge_prefixes`].
#[derive(Debug, Clone, Default)]
pub struct Recorder {
    streams: Arc<Mutex<Vec<Vec<MissEvent>>>>,
}

impl Recorder {
    /// A recorder for `apps` application streams.
    pub fn new(apps: usize) -> Self {
        Recorder {
            streams: Arc::new(Mutex::new(vec![Vec::new(); apps])),
        }
    }

    /// Captures one event of app `app`. Out-of-range apps are ignored
    /// (the engine validates its side; a recorder must never abort a run).
    pub fn observe(&self, app: usize, ev: &MissEvent) {
        let mut streams = self.streams.lock().expect("recorder lock poisoned");
        if let Some(s) = streams.get_mut(app) {
            s.push(*ev);
        }
    }

    /// Events captured so far per app.
    pub fn counts(&self) -> Vec<u64> {
        let streams = self.streams.lock().expect("recorder lock poisoned");
        streams.iter().map(|s| s.len() as u64).collect()
    }

    /// Clones the captured streams out of the recorder.
    pub fn snapshot(&self) -> Vec<Vec<MissEvent>> {
        self.streams.lock().expect("recorder lock poisoned").clone()
    }
}

/// Combines two recordings taken at the same seed and configuration: both
/// are prefixes of the same deterministic stream, so the union is simply
/// the longer prefix per app.
///
/// Debug builds verify the prefix property; release builds trust the seed.
pub fn merge_prefixes(a: Vec<Vec<MissEvent>>, b: Vec<Vec<MissEvent>>) -> Vec<Vec<MissEvent>> {
    debug_assert_eq!(a.len(), b.len(), "recordings must cover the same apps");
    a.into_iter()
        .zip(b)
        .map(|(x, y)| {
            let (longer, shorter) = if x.len() >= y.len() { (x, y) } else { (y, x) };
            debug_assert!(
                longer[..shorter.len()] == shorter[..],
                "recordings at one seed must be prefixes of each other"
            );
            longer
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use memscale_types::address::PhysAddr;

    fn ev(gap: u64, line: u64) -> MissEvent {
        MissEvent {
            gap_instructions: gap,
            addr: PhysAddr::from_cache_line(line),
            writeback: None,
        }
    }

    #[test]
    fn observe_and_snapshot() {
        let rec = Recorder::new(2);
        rec.observe(0, &ev(1, 10));
        rec.observe(1, &ev(2, 20));
        rec.observe(0, &ev(3, 11));
        rec.observe(9, &ev(4, 0)); // out of range: ignored
        assert_eq!(rec.counts(), vec![2, 1]);
        let s = rec.snapshot();
        assert_eq!(s[0], vec![ev(1, 10), ev(3, 11)]);
        assert_eq!(s[1], vec![ev(2, 20)]);
    }

    #[test]
    fn clones_share_the_buffer() {
        let rec = Recorder::new(1);
        let handle = rec.clone();
        rec.observe(0, &ev(1, 5));
        assert_eq!(handle.counts(), vec![1]);
    }

    #[test]
    fn merge_takes_longer_prefix_per_app() {
        let a = vec![vec![ev(1, 1), ev(2, 2)], vec![ev(3, 3)]];
        let b = vec![vec![ev(1, 1)], vec![ev(3, 3), ev(4, 4), ev(5, 5)]];
        let m = merge_prefixes(a, b);
        assert_eq!(m[0].len(), 2);
        assert_eq!(m[1].len(), 3);
        assert_eq!(m[1][2], ev(5, 5));
    }
}
