//! The on-disk trace format: constants, CRC-32, varints and the per-record
//! delta encoding.
//!
//! # Layout (format v1)
//!
//! ```text
//! header:
//!   magic          8 bytes  = b"MEMSCTRC"
//!   version        u16 LE   = 1
//!   generation     u8       MemGeneration::code()
//!   reserved       u8       = 0
//!   config_hash    u64 LE   SimConfig fingerprint of the recording run
//!   seed           u64 LE   trace-generation master seed
//!   slice_lines    u64 LE   per-app address-slice size (cache lines)
//!   app_count      u32 LE
//!   app table      app_count × (name_len u16 LE + UTF-8 name)
//!   header_crc     u32 LE   CRC-32/IEEE of every header byte above
//! blocks (repeated):
//!   app_index      u32 LE   (u32::MAX ⇒ end marker)
//!   record_count   u32 LE
//!   payload_len    u32 LE
//!   payload        payload_len bytes (varint/delta records, below)
//!   payload_crc    u32 LE   CRC-32/IEEE of the payload
//! end marker:
//!   app_index = u32::MAX, record_count = 0, payload = total_records u64 LE
//! ```
//!
//! # Record encoding
//!
//! Records are app-local and delta-encoded against the *previous record of
//! the same app* (the delta chain spans blocks; each app's chain starts at
//! cache line 0):
//!
//! ```text
//! varint(gap_instructions)
//! varint(zigzag(line − prev_line) << 1 | has_writeback)
//! [ varint(zigzag(wb_line − line)) ]      only when has_writeback
//! ```
//!
//! Cache-line indices are at most 2^58 (byte addresses are `u64`, lines are
//! 64 bytes), so the zigzagged delta always fits 59 bits and the flag shift
//! cannot overflow.

use crate::error::TraceError;
use memscale_types::address::PhysAddr;
use memscale_workloads::MissEvent;

/// File magic, first 8 bytes of every trace artifact.
pub const MAGIC: [u8; 8] = *b"MEMSCTRC";

/// Newest format version this build writes and reads.
pub const FORMAT_VERSION: u16 = 1;

/// Block `app_index` value marking the end-of-trace marker.
pub const END_MARKER: u32 = u32::MAX;

/// Records per block the writer targets (the last block of an app is
/// usually shorter).
pub const BLOCK_RECORDS: usize = 4096;

// --- CRC-32 (IEEE 802.3, the zlib polynomial) ------------------------------

const fn crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0u32;
    while i < 256 {
        let mut c = i;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i as usize] = c;
        i += 1;
    }
    table
}

const CRC_TABLE: [u32; 256] = crc_table();

/// CRC-32/IEEE of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

// --- varints ---------------------------------------------------------------

/// Appends `value` to `out` as an LEB128 varint (7 bits per byte).
pub fn write_varint(out: &mut Vec<u8>, mut value: u64) {
    loop {
        let byte = (value & 0x7F) as u8;
        value >>= 7;
        if value == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Reads an LEB128 varint from `buf` starting at `*pos`, advancing `*pos`.
pub fn read_varint(buf: &[u8], pos: &mut usize) -> Result<u64, TraceError> {
    let mut value = 0u64;
    let mut shift = 0u32;
    loop {
        let &byte = buf.get(*pos).ok_or(TraceError::Truncated {
            at: "varint in record payload",
        })?;
        *pos += 1;
        if shift >= 64 || (shift == 63 && byte > 1) {
            return Err(TraceError::BlockCorrupt {
                app: u32::MAX,
                detail: "varint exceeds 64 bits".into(),
            });
        }
        value |= u64::from(byte & 0x7F) << shift;
        if byte & 0x80 == 0 {
            return Ok(value);
        }
        shift += 7;
    }
}

/// Maps a signed delta onto the unsigned varint space (0, -1, 1, -2, …).
#[inline]
#[allow(clippy::cast_sign_loss)] // zigzag is a bijection on the bit pattern
pub fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
#[inline]
#[allow(clippy::cast_possible_wrap)] // zigzag is a bijection on the bit pattern
pub fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

// --- record encoding -------------------------------------------------------

/// Appends the delta encoding of `ev` to `out`. `prev_line` is the previous
/// record's cache line in the same app stream (0 before the first record)
/// and is updated to this record's line.
pub fn encode_record(out: &mut Vec<u8>, ev: &MissEvent, prev_line: &mut u64) {
    let line = ev.addr.cache_line();
    let delta = line.wrapping_sub(*prev_line) as i64;
    write_varint(out, ev.gap_instructions);
    let has_wb = u64::from(ev.writeback.is_some());
    write_varint(out, (zigzag(delta) << 1) | has_wb);
    if let Some(wb) = ev.writeback {
        let wb_delta = wb.cache_line().wrapping_sub(line) as i64;
        write_varint(out, zigzag(wb_delta));
    }
    *prev_line = line;
}

/// Decodes one record from `buf` at `*pos`, updating the delta state.
pub fn decode_record(
    buf: &[u8],
    pos: &mut usize,
    prev_line: &mut u64,
) -> Result<MissEvent, TraceError> {
    let corrupt = |detail: &str| TraceError::BlockCorrupt {
        app: u32::MAX,
        detail: detail.into(),
    };
    let gap = read_varint(buf, pos)?;
    if gap == 0 {
        return Err(corrupt("record gap of zero instructions"));
    }
    let packed = read_varint(buf, pos)?;
    let has_wb = packed & 1 != 0;
    let delta = unzigzag(packed >> 1);
    let line = prev_line
        .checked_add_signed(delta)
        .ok_or_else(|| corrupt("cache-line delta underflows the address space"))?;
    if line > u64::MAX / PhysAddr::CACHE_LINE_BYTES {
        return Err(corrupt("cache-line index exceeds the address space"));
    }
    let writeback = if has_wb {
        let wb_delta = unzigzag(read_varint(buf, pos)?);
        let wb_line = line
            .checked_add_signed(wb_delta)
            .ok_or_else(|| corrupt("writeback delta underflows the address space"))?;
        if wb_line > u64::MAX / PhysAddr::CACHE_LINE_BYTES {
            return Err(corrupt("writeback line index exceeds the address space"));
        }
        Some(PhysAddr::from_cache_line(wb_line))
    } else {
        None
    };
    *prev_line = line;
    Ok(MissEvent {
        gap_instructions: gap,
        addr: PhysAddr::from_cache_line(line),
        writeback,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vector() {
        // The classic check value for CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn varint_round_trips_edge_values() {
        for v in [0u64, 1, 127, 128, 300, u64::from(u32::MAX), u64::MAX] {
            let mut buf = Vec::new();
            write_varint(&mut buf, v);
            let mut pos = 0;
            assert_eq!(read_varint(&buf, &mut pos).unwrap(), v);
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn varint_rejects_overflow_and_truncation() {
        // 11 continuation bytes would encode > 64 bits.
        let buf = [0xFFu8; 11];
        let mut pos = 0;
        assert!(matches!(
            read_varint(&buf, &mut pos),
            Err(TraceError::BlockCorrupt { .. })
        ));
        let buf = [0x80u8]; // continuation bit set, then EOF
        let mut pos = 0;
        assert!(matches!(
            read_varint(&buf, &mut pos),
            Err(TraceError::Truncated { .. })
        ));
    }

    #[test]
    fn zigzag_round_trips() {
        for v in [0i64, 1, -1, 2, -2, i64::MAX, i64::MIN, 12345, -98765] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
        assert_eq!(zigzag(0), 0);
        assert_eq!(zigzag(-1), 1);
        assert_eq!(zigzag(1), 2);
    }

    #[test]
    fn record_round_trips_with_delta_chain() {
        let events = [
            MissEvent {
                gap_instructions: 1,
                addr: PhysAddr::from_cache_line(1 << 24),
                writeback: None,
            },
            MissEvent {
                gap_instructions: 977,
                addr: PhysAddr::from_cache_line((1 << 24) + 1),
                writeback: Some(PhysAddr::from_cache_line(1 << 20)),
            },
            MissEvent {
                gap_instructions: 42,
                addr: PhysAddr::from_cache_line(5),
                writeback: Some(PhysAddr::from_cache_line((1 << 58) - 1)),
            },
        ];
        let mut buf = Vec::new();
        let mut prev = 0u64;
        for ev in &events {
            encode_record(&mut buf, ev, &mut prev);
        }
        let mut pos = 0;
        let mut prev = 0u64;
        for ev in &events {
            assert_eq!(&decode_record(&buf, &mut pos, &mut prev).unwrap(), ev);
        }
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn zero_gap_record_is_rejected() {
        let mut buf = Vec::new();
        write_varint(&mut buf, 0); // gap 0: invalid
        write_varint(&mut buf, 0);
        let mut pos = 0;
        let mut prev = 0u64;
        assert!(matches!(
            decode_record(&buf, &mut pos, &mut prev),
            Err(TraceError::BlockCorrupt { .. })
        ));
    }
}
