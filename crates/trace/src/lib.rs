//! Trace capture & replay for the MemScale simulator (`memscale-trace`).
//!
//! The paper's evaluation substrate is two-step: LLC miss/writeback traces
//! are captured *once*, then replayed through the detailed memory simulator
//! as many times as the study needs (PAPER §4). This crate supplies that
//! record-once/replay-many methodology for the reproduction:
//!
//! * a **versioned, dependency-light binary format** ([`mod@format`]) — an
//!   8-byte magic, a CRC-guarded header (format version, memory generation,
//!   configuration fingerprint, seed, per-app metadata) and per-app streams
//!   of varint/delta-encoded [`MissEvent`] records in CRC-checked blocks;
//! * a streaming [`TraceWriter`] and a fully-validating [`TraceReader`]
//!   whose every failure mode is a structured [`TraceError`] — arbitrary
//!   bytes can never panic the reader;
//! * a [`Recorder`] handle the simulation engine tees its live miss stream
//!   through, so a run's exact input becomes a reusable artifact;
//! * [`ReplayTrace`] / [`ReplayStream`] — replay cursors implementing the
//!   same [`MissSource`] interface as the live generator, sharing the
//!   decoded streams behind [`std::sync::Arc`] so dozens of concurrent
//!   replay shards mint cursors without copying event data.
//!
//! Replaying a recorded trace through the engine at the recording's seed and
//! configuration reproduces the run **bit-identically** (see DESIGN.md §11).
//!
//! [`MissEvent`]: memscale_workloads::MissEvent
//! [`MissSource`]: memscale_workloads::MissSource

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod format;
pub mod reader;
pub mod record;
pub mod writer;

pub use error::TraceError;
pub use reader::{ReplayStream, ReplayTrace, TraceReader, TraceSummary};
pub use record::{merge_prefixes, Recorder};
pub use writer::{write_trace_file, TraceHeader, TraceWriter};
