//! Standalone DRAM protocol conformance checker with per-generation rule
//! packs (DDR3, DDR4, LPDDR3).
//!
//! The DRAM and memory-controller crates can emit one [`CmdEvent`] per
//! device-level command they schedule (behind their `audit` features). A
//! [`ProtocolAuditor`] replays that stream against an *independent*
//! implementation of the DDR3 timing rules — `tRCD`, `tRP`, `tCL`, `tRAS`,
//! `tRTP`, `tWR`, `tRRD`, the `tFAW` four-activate window, `tREFI`/`tRFC`,
//! `tXP`/`tXPDLL`, the frequency re-lock penalty — plus the bank and rank
//! state machines (no CAS to a precharged bank, no command to a powered-down
//! rank or inside a re-lock window, no overlapping bursts on the shared data
//! bus). Any discrepancy becomes a structured [`Violation`] naming the
//! [`Rule`], location and both timestamps involved.
//!
//! The generation tag of the [`DramTimingConfig`] selects additional rule
//! packs: DDR4 configurations (bank groups) also enforce same-bank-group
//! `tCCD_L` CAS spacing and `tRRD_L` ACT spacing; LPDDR3 configurations also
//! check the deep power-down lifecycle (`tXDPD` exit latency) and per-bank
//! refresh (`tRFCpb` duration, bank-addressed REF commands, `tREFI / banks`
//! postponement bound).
//!
//! The checker is deliberately decoupled: it depends only on `memscale-types`
//! and recomputes every latency from the raw [`DramTimingConfig`], so a bug
//! in the timing engine cannot silently excuse itself.
//!
//! # Documented model approximations the auditor does not flag
//!
//! The simulator takes a few scheduling shortcuts that are accounted
//! correctly in time and energy but would look like protocol slips to a
//! maximally strict checker. The auditor mirrors these documented decisions
//! (see `DESIGN.md`):
//!
//! * **Refresh vs. in-flight commands** — postponed refreshes are replayed
//!   retroactively when a rank is next touched, so a REF interval may overlap
//!   command/burst tails scheduled earlier. REF commands are therefore only
//!   checked against each other (`tRFC` duration, no overlap, `tREFI`
//!   postponement bound) and against re-lock windows.
//! * **Refresh vs. powerdown** — refresh bookkeeping continues while a rank
//!   is powered down (the model folds it into background accounting), so REF
//!   is exempt from the rank power-state check.
//! * **Precharge tails inside re-lock windows** — a write's auto-precharge
//!   (`tWR` recovery) may complete after a re-lock began; PRE is exempt from
//!   the re-lock-window and powerdown-exit checks.
//! * **PRE to an already-precharged bank** is a legal no-op in DDR3 and is
//!   ignored.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use memscale_types::config::DramTimingConfig;
use memscale_types::events::{CmdEvent, CmdKind};
use memscale_types::freq::MemFreq;
use memscale_types::ids::{BankId, ChannelId, RankId};
use memscale_types::time::Picos;
use std::collections::VecDeque;
use std::fmt;

/// DDR3 permits postponing at most eight REF commands, bounding the gap
/// between consecutive refreshes to nine `tREFI`.
const MAX_POSTPONED_REFRESH: u64 = 8;

/// The protocol rule a [`Violation`] breaches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Rule {
    /// ACT-to-CAS delay (`tRCD`).
    TRcd,
    /// Precharge duration before the next ACT (`tRP`).
    TRp,
    /// CAS-to-first-data-beat latency (`tCL`), checked exactly.
    TCl,
    /// Minimum ACT-to-PRE interval (`tRAS`).
    TRas,
    /// Read CAS to PRE (`tRTP`).
    TRtp,
    /// End of write burst to PRE (`tWR`).
    TWr,
    /// ACT-to-ACT spacing within a rank (`tRRD`).
    TRrd,
    /// Four-activate window within a rank (`tFAW`).
    TFaw,
    /// Refresh postponement bound (at most eight REFs, nine `tREFI`).
    TRefi,
    /// Refresh duration / overlap (`tRFC`).
    TRfc,
    /// Fast-exit powerdown exit latency (`tXP`).
    TXp,
    /// Slow-exit powerdown exit latency (`tXPDLL`).
    TXpdll,
    /// Frequency re-lock must reserve the full penalty window.
    RelockPenalty,
    /// No command may issue inside a frequency re-lock window.
    RelockWindow,
    /// Bank state machine: CAS needs an open row, ACT a precharged bank,
    /// powerdown entry an idle rank.
    BankState,
    /// Rank power state machine: commands need a powered-up rank; exits need
    /// a powered-down one.
    RankPowerState,
    /// Data bursts on a channel's shared bus must not overlap.
    BusOverlap,
    /// A burst must span exactly `burst_cycles` at the current frequency.
    BurstLength,
    /// Event addresses a channel/rank/bank outside the configured topology,
    /// or an unknown operating point.
    Topology,
    /// Same-bank-group CAS-to-CAS spacing (DDR4 `tCCD_L`).
    TCcdL,
    /// Same-bank-group ACT-to-ACT spacing (DDR4 `tRRD_L`).
    TRrdL,
    /// Deep power-down exit latency (LPDDR `tXDPD`), and deep power-down
    /// events on a generation without the state.
    TXdpd,
    /// Per-bank refresh duration / addressing (LPDDR `tRFCpb`).
    TRfcPb,
}

impl Rule {
    /// Every rule the auditor knows, in declaration order.
    pub const ALL: [Rule; 23] = [
        Rule::TRcd,
        Rule::TRp,
        Rule::TCl,
        Rule::TRas,
        Rule::TRtp,
        Rule::TWr,
        Rule::TRrd,
        Rule::TFaw,
        Rule::TRefi,
        Rule::TRfc,
        Rule::TXp,
        Rule::TXpdll,
        Rule::RelockPenalty,
        Rule::RelockWindow,
        Rule::BankState,
        Rule::RankPowerState,
        Rule::BusOverlap,
        Rule::BurstLength,
        Rule::Topology,
        Rule::TCcdL,
        Rule::TRrdL,
        Rule::TXdpd,
        Rule::TRfcPb,
    ];

    /// Short display name (`tRCD`, `bank-state`, ...).
    pub fn name(self) -> &'static str {
        match self {
            Rule::TRcd => "tRCD",
            Rule::TRp => "tRP",
            Rule::TCl => "tCL",
            Rule::TRas => "tRAS",
            Rule::TRtp => "tRTP",
            Rule::TWr => "tWR",
            Rule::TRrd => "tRRD",
            Rule::TFaw => "tFAW",
            Rule::TRefi => "tREFI",
            Rule::TRfc => "tRFC",
            Rule::TXp => "tXP",
            Rule::TXpdll => "tXPDLL",
            Rule::RelockPenalty => "relock-penalty",
            Rule::RelockWindow => "relock-window",
            Rule::BankState => "bank-state",
            Rule::RankPowerState => "rank-power-state",
            Rule::BusOverlap => "bus-overlap",
            Rule::BurstLength => "burst-length",
            Rule::Topology => "topology",
            Rule::TCcdL => "tCCD_L",
            Rule::TRrdL => "tRRD_L",
            Rule::TXdpd => "tXDPD",
            Rule::TRfcPb => "tRFCpb",
        }
    }

    /// The [`DramTimingConfig`] fields this rule independently re-derives a
    /// latency from when replaying a command stream. A field listed here is
    /// *guarded*: if the timing engine honors the wrong value, this rule's
    /// recomputation from the raw config catches the discrepancy. Structural
    /// rules (state machines, topology) return an empty slice — they guard
    /// command legality, not a numeric parameter.
    ///
    /// Field names match `memscale_types::invariants::TimingParam::field`, so
    /// coverage tooling can cross-reference the two universes mechanically.
    pub fn guarded_params(self) -> &'static [&'static str] {
        match self {
            Rule::TRcd => &["t_rcd_ns"],
            Rule::TRp => &["t_rp_ns"],
            Rule::TCl => &["t_cl_ns"],
            Rule::TRas => &["t_ras_ns"],
            Rule::TRtp => &["t_rtp_ns"],
            Rule::TWr => &["t_wr_ns"],
            Rule::TRrd => &["t_rrd_ns"],
            Rule::TFaw => &["t_faw_ns"],
            Rule::TRefi => &["refresh_period_ms", "refresh_commands"],
            Rule::TRfc => &["t_rfc_ns"],
            Rule::TXp => &["t_xp_ns"],
            Rule::TXpdll => &["t_xpdll_ns"],
            Rule::RelockPenalty | Rule::RelockWindow => &["relock_cycles", "relock_extra_ns"],
            // The bus-overlap check spaces bursts by the larger of the burst
            // itself and the short CAS-to-CAS gap, so it guards both.
            Rule::BusOverlap => &["burst_cycles", "t_ccd_s_cycles"],
            Rule::BurstLength => &["burst_cycles"],
            Rule::TCcdL => &["t_ccd_l_cycles", "bank_groups"],
            Rule::TRrdL => &["t_rrd_l_ns", "bank_groups"],
            Rule::TXdpd => &["t_xdpd_ns"],
            Rule::TRfcPb => &["t_rfc_pb_ns", "per_bank_refresh"],
            Rule::BankState | Rule::RankPowerState | Rule::Topology => &[],
        }
    }

    /// The rules the auditor arms for `cfg`: the DDR3 base pack always, the
    /// bank-group pack when the generation splits banks into groups, the
    /// deep power-down pack when the generation has the state, and the
    /// per-bank-refresh pack when `REFpb` is configured.
    ///
    /// [`TXdpd`](Rule::TXdpd) stays armed on *every* generation in the sense
    /// that deep power-down events on a generation without the state are
    /// violations, but the pack lists only rules that actively re-derive
    /// latencies for the configuration, which is what coverage analysis
    /// needs.
    pub fn rule_pack(cfg: &DramTimingConfig) -> Vec<Rule> {
        let mut pack: Vec<Rule> = Rule::ALL
            .into_iter()
            .filter(|r| !matches!(r, Rule::TCcdL | Rule::TRrdL | Rule::TXdpd | Rule::TRfcPb))
            .collect();
        if cfg.bank_groups > 1 {
            pack.push(Rule::TCcdL);
            pack.push(Rule::TRrdL);
        }
        if cfg.generation.has_deep_power_down() {
            pack.push(Rule::TXdpd);
        }
        if cfg.per_bank_refresh {
            pack.push(Rule::TRfcPb);
        }
        pack
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One conformance violation: which rule, where, when, and against what
/// reference time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// The rule breached.
    pub rule: Rule,
    /// Channel of the offending command.
    pub channel: ChannelId,
    /// Rank of the offending command.
    pub rank: RankId,
    /// Bank, for bank-scoped commands.
    pub bank: Option<BankId>,
    /// When the offending command issued.
    pub at: Picos,
    /// The reference instant the rule measures from (e.g. the prior ACT for
    /// `tRCD`, the bus-free time for an overlap).
    pub reference: Picos,
    /// Human-readable explanation with the concrete latencies involved.
    pub detail: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {} {}", self.rule, self.channel, self.rank)?;
        if let Some(bank) = self.bank {
            write!(f, " {bank}")?;
        }
        write!(
            f,
            " at {} (reference {}): {}",
            self.at, self.reference, self.detail
        )
    }
}

/// Outcome of auditing one event stream.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct AuditReport {
    /// Every violation found, in replay order.
    pub violations: Vec<Violation>,
    /// Number of command events replayed.
    pub commands_checked: usize,
}

impl AuditReport {
    /// Whether the stream was fully conformant.
    #[inline]
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Folds another report into this one. Fault sweeps audit many seeded
    /// runs and want a single conformance verdict over the whole campaign;
    /// violations keep their per-run replay order, concatenated.
    pub fn absorb(&mut self, other: AuditReport) {
        self.commands_checked += other.commands_checked;
        self.violations.extend(other.violations);
    }

    /// A one-line summary plus the first few violations, for test failures.
    pub fn summary(&self) -> String {
        let mut s = format!(
            "{} violation(s) in {} command(s)",
            self.violations.len(),
            self.commands_checked
        );
        for v in self.violations.iter().take(8) {
            s.push_str("\n  ");
            s.push_str(&v.to_string());
        }
        s
    }
}

impl fmt::Display for AuditReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.summary())
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BankState {
    /// Precharged; the next ACT may issue at `ready` (`tRP` accounted).
    Closed { ready: Picos },
    /// A row is latched in the row buffer.
    Open {
        row: u64,
        act_at: Picos,
        /// Latest read CAS since the ACT (for `tRTP`).
        last_read_cas: Option<Picos>,
        /// Latest write-burst end since the ACT (for `tWR`).
        last_write_end: Option<Picos>,
    },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Power {
    Up,
    Down { fast: bool, since: Picos },
    DeepDown { since: Picos },
}

#[derive(Debug, Clone)]
struct RankState {
    power: Power,
    /// Earliest instant a command may issue after a powerdown exit.
    ready_at: Picos,
    /// Up to four most recent ACT issue times (`tRRD`/`tFAW` history).
    acts: VecDeque<Picos>,
    /// Most recent ACT per bank group (`tRRD_L`; one slot when the
    /// generation has no bank groups).
    group_acts: Vec<Option<Picos>>,
    /// Most recent CAS per bank group (`tCCD_L`).
    group_cas: Vec<Option<Picos>>,
    /// Issue time and completion of the most recent REF.
    last_ref: Option<(Picos, Picos)>,
    banks: Vec<BankState>,
}

impl RankState {
    fn new(banks: usize, groups: usize) -> Self {
        let groups = groups.max(1);
        RankState {
            power: Power::Up,
            ready_at: Picos::ZERO,
            acts: VecDeque::with_capacity(4),
            group_acts: vec![None; groups],
            group_cas: vec![None; groups],
            last_ref: None,
            banks: vec![BankState::Closed { ready: Picos::ZERO }; banks],
        }
    }
}

#[derive(Debug, Clone)]
struct ChannelState {
    freq: MemFreq,
    bus_busy_until: Picos,
    /// Start and end of the most recent re-lock window.
    relock: Option<(Picos, Picos)>,
    ranks: Vec<RankState>,
}

/// Replays a [`CmdEvent`] stream against the DDR3 rules of one
/// [`DramTimingConfig`].
///
/// Events may be ingested in any order (emitters future-date auto-precharges
/// and synthesize powerdown entries retroactively); the auditor sorts by
/// timestamp before replay. Typical use:
///
/// ```
/// use memscale_audit::ProtocolAuditor;
/// use memscale_types::config::DramTimingConfig;
/// use memscale_types::freq::MemFreq;
///
/// let cfg = DramTimingConfig::default();
/// let mut auditor = ProtocolAuditor::new(&cfg, 4, 4, 8, MemFreq::F800);
/// auditor.ingest(&[]);
/// let report = auditor.finalize();
/// assert!(report.is_clean());
/// ```
#[derive(Debug, Clone)]
pub struct ProtocolAuditor {
    cfg: DramTimingConfig,
    channels: usize,
    ranks_per_channel: usize,
    banks_per_rank: usize,
    initial: MemFreq,
    events: Vec<CmdEvent>,
}

impl ProtocolAuditor {
    /// Creates an auditor for a system of `channels` × `ranks_per_channel` ×
    /// `banks_per_rank`, all channels initially locked at `initial`.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn new(
        cfg: &DramTimingConfig,
        channels: usize,
        ranks_per_channel: usize,
        banks_per_rank: usize,
        initial: MemFreq,
    ) -> Self {
        assert!(
            channels > 0 && ranks_per_channel > 0 && banks_per_rank > 0,
            "auditor needs a non-empty topology"
        );
        ProtocolAuditor {
            cfg: cfg.clone(),
            channels,
            ranks_per_channel,
            banks_per_rank,
            initial,
            events: Vec::new(),
        }
    }

    /// Adds events to the stream under audit (any order).
    pub fn ingest(&mut self, events: &[CmdEvent]) {
        self.events.extend_from_slice(events);
    }

    /// Replays the ingested stream and reports every violation found.
    pub fn finalize(self) -> AuditReport {
        let mut events = self.events;
        events.sort_by_key(|e| (e.at, replay_priority(&e.kind)));
        let mut replay = Replay::new(
            &self.cfg,
            self.channels,
            self.ranks_per_channel,
            self.banks_per_rank,
            self.initial,
        );
        for e in &events {
            replay.step(e);
        }
        AuditReport {
            violations: replay.violations,
            commands_checked: events.len(),
        }
    }
}

/// Tie-break for same-instant events: state transitions that *enable*
/// commands (powerdown exit, re-lock completion bookkeeping) replay before
/// the commands themselves; powerdown entry replays last.
fn replay_priority(kind: &CmdKind) -> u8 {
    match kind {
        CmdKind::PowerDownExit { .. } | CmdKind::DeepPowerDownExit { .. } => 0,
        CmdKind::FreqSwitch { .. } => 1,
        CmdKind::Refresh { .. } => 2,
        CmdKind::Precharge => 3,
        CmdKind::Activate { .. } => 4,
        CmdKind::CasRead { .. } | CmdKind::CasWrite { .. } => 5,
        CmdKind::PowerDownEnter { .. } | CmdKind::DeepPowerDownEnter => 6,
    }
}

struct Replay {
    cfg: DramTimingConfig,
    channels: Vec<ChannelState>,
    violations: Vec<Violation>,
}

impl Replay {
    fn new(
        cfg: &DramTimingConfig,
        channels: usize,
        ranks_per_channel: usize,
        banks_per_rank: usize,
        initial: MemFreq,
    ) -> Self {
        Replay {
            cfg: cfg.clone(),
            channels: (0..channels)
                .map(|_| ChannelState {
                    freq: initial,
                    bus_busy_until: Picos::ZERO,
                    relock: None,
                    ranks: (0..ranks_per_channel)
                        .map(|_| RankState::new(banks_per_rank, usize::from(cfg.bank_groups)))
                        .collect(),
                })
                .collect(),
            violations: Vec::new(),
        }
    }

    fn burst_len(&self, freq: MemFreq) -> Picos {
        freq.cycle() * u64::from(self.cfg.burst_cycles)
    }

    fn relock_penalty(&self, to: MemFreq) -> Picos {
        to.cycle() * self.cfg.relock_cycles + Picos::from_ns_f64(self.cfg.relock_extra_ns)
    }

    fn violate(&mut self, e: &CmdEvent, rule: Rule, reference: Picos, detail: String) {
        self.violations.push(Violation {
            rule,
            channel: e.channel,
            rank: e.rank,
            bank: e.bank,
            at: e.at,
            reference,
            detail,
        });
    }

    /// Validates topology addressing; returns `false` (after recording a
    /// violation) if the event cannot be replayed at all.
    fn addressable(&mut self, e: &CmdEvent) -> bool {
        let ch_ok = e.channel.index() < self.channels.len();
        let rank_ok = ch_ok && e.rank.index() < self.channels[e.channel.index()].ranks.len();
        let bank_ok = rank_ok
            && e.bank.is_none_or(|b| {
                b.index()
                    < self.channels[e.channel.index()].ranks[e.rank.index()]
                        .banks
                        .len()
            });
        if !(ch_ok && rank_ok && bank_ok) {
            self.violate(
                e,
                Rule::Topology,
                Picos::ZERO,
                "event addresses a channel, rank or bank outside the configured topology"
                    .to_string(),
            );
            return false;
        }
        true
    }

    /// Checks the rank power state and the re-lock window for a command that
    /// requires an operational rank (ACT and CAS; PRE and REF are exempt per
    /// the documented approximations).
    fn check_operational(&mut self, e: &CmdEvent) {
        let ch = &self.channels[e.channel.index()];
        let relock = ch.relock;
        let power = ch.ranks[e.rank.index()].power;
        let ready_at = ch.ranks[e.rank.index()].ready_at;
        if let Some((start, until)) = relock {
            if e.at >= start && e.at < until {
                self.violate(
                    e,
                    Rule::RelockWindow,
                    start,
                    format!("{} inside re-lock window ending {until}", e.kind.mnemonic()),
                );
            }
        }
        match power {
            Power::Down { since, .. } | Power::DeepDown { since } => {
                self.violate(
                    e,
                    Rule::RankPowerState,
                    since,
                    format!("{} to a rank powered down since {since}", e.kind.mnemonic()),
                );
            }
            Power::Up => {
                if e.at < ready_at {
                    self.violate(
                        e,
                        Rule::RankPowerState,
                        ready_at,
                        format!(
                            "{} before the rank finished its powerdown exit at {ready_at}",
                            e.kind.mnemonic()
                        ),
                    );
                }
            }
        }
    }

    fn step(&mut self, e: &CmdEvent) {
        if !self.addressable(e) {
            return;
        }
        match e.kind {
            CmdKind::Activate { row } => self.on_activate(e, row),
            CmdKind::CasRead {
                burst_start,
                burst_end,
            } => {
                self.on_cas(e, burst_start, burst_end, false);
            }
            CmdKind::CasWrite {
                burst_start,
                burst_end,
            } => {
                self.on_cas(e, burst_start, burst_end, true);
            }
            CmdKind::Precharge => self.on_precharge(e),
            CmdKind::Refresh { end } => self.on_refresh(e, end),
            CmdKind::PowerDownEnter { fast } => self.on_pd_enter(e, fast),
            CmdKind::PowerDownExit {
                fast,
                entered_at,
                ready,
            } => {
                self.on_pd_exit(e, fast, entered_at, ready);
            }
            CmdKind::DeepPowerDownEnter => self.on_dpd_enter(e),
            CmdKind::DeepPowerDownExit { entered_at, ready } => {
                self.on_dpd_exit(e, entered_at, ready);
            }
            CmdKind::FreqSwitch {
                from_mhz,
                to_mhz,
                ready,
            } => {
                self.on_freq_switch(e, from_mhz, to_mhz, ready);
            }
        }
    }

    fn on_activate(&mut self, e: &CmdEvent, row: u64) {
        self.check_operational(e);
        let t_rp = self.cfg.t_rp();
        let t_rrd = self.cfg.t_rrd();
        let t_faw = self.cfg.t_faw();
        let Some(bank_id) = e.bank else {
            self.violate(
                e,
                Rule::BankState,
                Picos::ZERO,
                "ACT without a bank".to_string(),
            );
            return;
        };
        let group = self.cfg.bank_group_of(bank_id);
        let rank = &self.channels[e.channel.index()].ranks[e.rank.index()];
        let bank_state = rank.banks[bank_id.index()];
        let last_act = rank.acts.back().copied();
        let last_group_act = rank.group_acts[group % rank.group_acts.len()];
        let four_deep = (rank.acts.len() == 4).then(|| rank.acts[0]);

        // Bank must be precharged, and the precharge must have completed.
        match bank_state {
            BankState::Open {
                row: open, act_at, ..
            } => {
                self.violate(
                    e,
                    Rule::BankState,
                    act_at,
                    format!("ACT row {row} while row {open} is open (no PRE since {act_at})"),
                );
            }
            BankState::Closed { ready } => {
                if e.at < ready {
                    self.violate(
                        e,
                        Rule::TRp,
                        ready,
                        format!(
                            "ACT {} before the precharge completes at {ready} (tRP {t_rp})",
                            e.at
                        ),
                    );
                }
            }
        }

        // Rank-wide activate spacing.
        if let Some(last) = last_act {
            if e.at < last + t_rrd {
                self.violate(
                    e,
                    Rule::TRrd,
                    last,
                    format!("ACT {} within tRRD {t_rrd} of the ACT at {last}", e.at),
                );
            }
        }
        if let Some(oldest) = four_deep {
            if e.at < oldest + t_faw {
                self.violate(
                    e,
                    Rule::TFaw,
                    oldest,
                    format!(
                        "fifth ACT {} within tFAW {t_faw} of the window opened at {oldest}",
                        e.at
                    ),
                );
            }
        }

        // DDR4 rule pack: same-bank-group ACTs must also respect tRRD_L.
        if self.cfg.bank_groups > 1 {
            let t_rrd_l = self.cfg.t_rrd_l();
            if let Some(last) = last_group_act {
                if e.at < last + t_rrd_l {
                    self.violate(
                        e,
                        Rule::TRrdL,
                        last,
                        format!(
                            "ACT {} within tRRD_L {t_rrd_l} of the same-group ACT at {last}",
                            e.at
                        ),
                    );
                }
            }
        }

        let rank = &mut self.channels[e.channel.index()].ranks[e.rank.index()];
        if rank.acts.len() == 4 {
            rank.acts.pop_front();
        }
        rank.acts.push_back(e.at);
        let slot = group % rank.group_acts.len();
        rank.group_acts[slot] = Some(e.at);
        rank.banks[bank_id.index()] = BankState::Open {
            row,
            act_at: e.at,
            last_read_cas: None,
            last_write_end: None,
        };
    }

    fn on_cas(&mut self, e: &CmdEvent, burst_start: Picos, burst_end: Picos, is_write: bool) {
        self.check_operational(e);
        let t_rcd = self.cfg.t_rcd();
        let t_cl = self.cfg.t_cl();
        let Some(bank_id) = e.bank else {
            self.violate(
                e,
                Rule::BankState,
                Picos::ZERO,
                "CAS without a bank".to_string(),
            );
            return;
        };
        let ch_idx = e.channel.index();
        let freq = self.channels[ch_idx].freq;
        let burst = self.burst_len(freq);
        let bus_free = self.channels[ch_idx].bus_busy_until;
        let bank_state = self.channels[ch_idx].ranks[e.rank.index()].banks[bank_id.index()];
        let group = self.cfg.bank_group_of(bank_id);

        // DDR4 rule pack: same-bank-group CAS pairs must respect tCCD_L,
        // which exceeds the burst (tCCD_S) that bus serialization enforces.
        if self.cfg.bank_groups > 1 {
            let t_ccd_l = freq.cycle() * u64::from(self.cfg.t_ccd_l_cycles);
            let rank = &self.channels[ch_idx].ranks[e.rank.index()];
            if let Some(last) = rank.group_cas[group % rank.group_cas.len()] {
                if e.at < last + t_ccd_l {
                    self.violate(
                        e,
                        Rule::TCcdL,
                        last,
                        format!(
                            "CAS {} within tCCD_L {t_ccd_l} of the same-group CAS at {last}",
                            e.at
                        ),
                    );
                }
            }
        }

        match bank_state {
            BankState::Closed { ready } => {
                self.violate(
                    e,
                    Rule::BankState,
                    ready,
                    "CAS to a precharged bank (no row open)".to_string(),
                );
            }
            BankState::Open { act_at, .. } => {
                if e.at < act_at + t_rcd {
                    self.violate(
                        e,
                        Rule::TRcd,
                        act_at,
                        format!("CAS {} within tRCD {t_rcd} of the ACT at {act_at}", e.at),
                    );
                }
            }
        }

        // Data timing: the first beat lands exactly tCL after the CAS, the
        // burst spans exactly burst_cycles at the current frequency, and it
        // may not overlap the previous burst on the shared bus.
        if burst_start != e.at + t_cl {
            self.violate(
                e,
                Rule::TCl,
                burst_start,
                format!(
                    "burst starts {burst_start}, expected CAS {} + tCL {t_cl}",
                    e.at
                ),
            );
        }
        if burst_end.saturating_sub(burst_start) != burst {
            let got = burst_end.saturating_sub(burst_start);
            self.violate(
                e,
                Rule::BurstLength,
                burst_start,
                format!("burst spans {got}, expected {burst} at {freq}"),
            );
        }
        if burst_start < bus_free {
            self.violate(
                e,
                Rule::BusOverlap,
                bus_free,
                format!("burst starts {burst_start} while the bus is busy until {bus_free}"),
            );
        }

        let ch = &mut self.channels[ch_idx];
        ch.bus_busy_until = ch.bus_busy_until.max(burst_end);
        let rank = &mut ch.ranks[e.rank.index()];
        let slot = group % rank.group_cas.len();
        rank.group_cas[slot] = Some(e.at);
        if let BankState::Open {
            last_read_cas,
            last_write_end,
            ..
        } = &mut ch.ranks[e.rank.index()].banks[bank_id.index()]
        {
            if is_write {
                *last_write_end = Some(last_write_end.map_or(burst_end, |p| p.max(burst_end)));
            } else {
                *last_read_cas = Some(last_read_cas.map_or(e.at, |p| p.max(e.at)));
            }
        }
    }

    fn on_precharge(&mut self, e: &CmdEvent) {
        // PRE is exempt from re-lock-window and powerdown-exit checks
        // (documented write-recovery-tail approximation), but not from the
        // powered-down check.
        let Some(bank_id) = e.bank else {
            self.violate(
                e,
                Rule::BankState,
                Picos::ZERO,
                "PRE without a bank".to_string(),
            );
            return;
        };
        let t_ras = self.cfg.t_ras();
        let t_rtp = self.cfg.t_rtp();
        let t_wr = self.cfg.t_wr();
        let t_rp = self.cfg.t_rp();
        let rank = &self.channels[e.channel.index()].ranks[e.rank.index()];
        let power = rank.power;
        let bank_state = rank.banks[bank_id.index()];
        if let Power::Down { since, .. } | Power::DeepDown { since } = power {
            self.violate(
                e,
                Rule::RankPowerState,
                since,
                format!("PRE to a rank powered down since {since}"),
            );
        }
        match bank_state {
            // PRE to a precharged bank is a legal no-op.
            BankState::Closed { .. } => {}
            BankState::Open {
                act_at,
                last_read_cas,
                last_write_end,
                ..
            } => {
                if e.at < act_at + t_ras {
                    self.violate(
                        e,
                        Rule::TRas,
                        act_at,
                        format!("PRE {} within tRAS {t_ras} of the ACT at {act_at}", e.at),
                    );
                }
                if let Some(cas) = last_read_cas {
                    if e.at < cas + t_rtp {
                        self.violate(
                            e,
                            Rule::TRtp,
                            cas,
                            format!("PRE {} within tRTP {t_rtp} of the read CAS at {cas}", e.at),
                        );
                    }
                }
                if let Some(wend) = last_write_end {
                    if e.at < wend + t_wr {
                        self.violate(
                            e,
                            Rule::TWr,
                            wend,
                            format!(
                                "PRE {} within tWR {t_wr} of the write burst ending {wend}",
                                e.at
                            ),
                        );
                    }
                }
                self.channels[e.channel.index()].ranks[e.rank.index()].banks[bank_id.index()] =
                    BankState::Closed { ready: e.at + t_rp };
            }
        }
    }

    fn on_refresh(&mut self, e: &CmdEvent, end: Picos) {
        // REF is exempt from power-state and command-overlap checks
        // (documented approximations) but must not sit inside a re-lock
        // window, must last exactly tRFC (tRFCpb for LPDDR per-bank
        // refresh), must not overlap the previous REF, and must respect the
        // eight-command postponement bound. Per-bank refresh shrinks the
        // effective interval to tREFI / banks and requires a bank tag.
        let per_bank = self.cfg.per_bank_refresh;
        let gen = self.cfg.generation;
        let (t_rfc, dur_rule) = if per_bank {
            (self.cfg.t_rfc_pb(), Rule::TRfcPb)
        } else {
            (self.cfg.t_rfc(), Rule::TRfc)
        };
        let banks = self.channels[e.channel.index()].ranks[e.rank.index()]
            .banks
            .len();
        let t_refi = if per_bank {
            self.cfg.t_refi().scale(1.0 / banks as f64)
        } else {
            self.cfg.t_refi()
        };
        let ch = &self.channels[e.channel.index()];
        let relock = ch.relock;
        let last_ref = ch.ranks[e.rank.index()].last_ref;
        if per_bank && e.bank.is_none() {
            self.violate(
                e,
                Rule::TRfcPb,
                e.at,
                format!("{gen}: per-bank REF without a target bank"),
            );
        }
        if !per_bank && e.bank.is_some() {
            self.violate(
                e,
                Rule::TRfc,
                e.at,
                format!("{gen}: all-bank REF carries a bank tag"),
            );
        }
        if let Some((start, until)) = relock {
            if e.at >= start && e.at < until {
                self.violate(
                    e,
                    Rule::RelockWindow,
                    start,
                    format!("REF inside re-lock window ending {until}"),
                );
            }
        }
        if end.saturating_sub(e.at) != t_rfc {
            let got = end.saturating_sub(e.at);
            self.violate(
                e,
                dur_rule,
                end,
                format!("REF spans {got}, expected {} {t_rfc}", dur_rule.name()),
            );
        }
        if let Some((last_at, last_end)) = last_ref {
            if e.at < last_end {
                self.violate(
                    e,
                    dur_rule,
                    last_end,
                    format!("REF {} overlaps the previous REF ending {last_end}", e.at),
                );
            }
            let bound = last_at + t_refi * (MAX_POSTPONED_REFRESH + 1);
            if e.at > bound {
                self.violate(
                    e,
                    Rule::TRefi,
                    last_at,
                    format!(
                        "REF {} more than nine refresh intervals after the previous REF at {last_at}",
                        e.at
                    ),
                );
            }
        }
        self.channels[e.channel.index()].ranks[e.rank.index()].last_ref = Some((e.at, end));
    }

    fn on_pd_enter(&mut self, e: &CmdEvent, _fast: bool) {
        let rank = &self.channels[e.channel.index()].ranks[e.rank.index()];
        let power = rank.power;
        let banks = rank.banks.clone();
        if let Power::Down { since, .. } | Power::DeepDown { since } = power {
            self.violate(
                e,
                Rule::RankPowerState,
                since,
                format!("powerdown entry while already down since {since}"),
            );
            return;
        }
        // Precharge powerdown requires every bank idle and precharged.
        for (i, bank) in banks.iter().enumerate() {
            match *bank {
                BankState::Open { act_at, .. } => {
                    self.violations.push(Violation {
                        rule: Rule::BankState,
                        channel: e.channel,
                        rank: e.rank,
                        bank: Some(BankId(i)),
                        at: e.at,
                        reference: act_at,
                        detail: format!(
                            "powerdown entry with a row open since the ACT at {act_at}"
                        ),
                    });
                }
                BankState::Closed { ready } => {
                    if e.at < ready {
                        self.violations.push(Violation {
                            rule: Rule::BankState,
                            channel: e.channel,
                            rank: e.rank,
                            bank: Some(BankId(i)),
                            at: e.at,
                            reference: ready,
                            detail: format!(
                                "powerdown entry before the precharge completes at {ready}"
                            ),
                        });
                    }
                }
            }
        }
        self.channels[e.channel.index()].ranks[e.rank.index()].power = Power::Down {
            fast: _fast,
            since: e.at,
        };
    }

    fn on_pd_exit(&mut self, e: &CmdEvent, fast: bool, entered_at: Picos, ready: Picos) {
        let exit = if fast {
            self.cfg.t_xp()
        } else {
            self.cfg.t_xpdll()
        };
        let rule = if fast { Rule::TXp } else { Rule::TXpdll };
        let power = self.channels[e.channel.index()].ranks[e.rank.index()].power;
        match power {
            Power::Up => {
                self.violate(
                    e,
                    Rule::RankPowerState,
                    entered_at,
                    "powerdown exit from a rank that is not powered down".to_string(),
                );
            }
            Power::Down {
                fast: was_fast,
                since,
            } => {
                if was_fast != fast {
                    self.violate(
                        e,
                        Rule::RankPowerState,
                        since,
                        format!(
                            "exit mode (fast={fast}) does not match the entry mode \
                             (fast={was_fast}) at {since}"
                        ),
                    );
                }
            }
            Power::DeepDown { since } => {
                self.violate(
                    e,
                    Rule::RankPowerState,
                    since,
                    format!(
                        "precharge-powerdown exit from a rank in deep power-down \
                         since {since}"
                    ),
                );
            }
        }
        if ready < e.at + exit {
            self.violate(
                e,
                rule,
                ready,
                format!(
                    "rank ready {ready} less than {} {exit} after the exit at {}",
                    rule.name(),
                    e.at
                ),
            );
        }
        let rank = &mut self.channels[e.channel.index()].ranks[e.rank.index()];
        rank.power = Power::Up;
        rank.ready_at = rank.ready_at.max(ready);
    }

    fn on_dpd_enter(&mut self, e: &CmdEvent) {
        let gen = self.cfg.generation;
        if !gen.has_deep_power_down() {
            self.violate(
                e,
                Rule::TXdpd,
                e.at,
                format!("{gen}: deep power-down entry on a generation without it"),
            );
        }
        let rank = &self.channels[e.channel.index()].ranks[e.rank.index()];
        let power = rank.power;
        let banks = rank.banks.clone();
        if let Power::Down { since, .. } | Power::DeepDown { since } = power {
            self.violate(
                e,
                Rule::RankPowerState,
                since,
                format!("deep power-down entry while already down since {since}"),
            );
            return;
        }
        // Like precharge powerdown, deep power-down requires every bank idle
        // and precharged.
        for (i, bank) in banks.iter().enumerate() {
            match *bank {
                BankState::Open { act_at, .. } => {
                    self.violations.push(Violation {
                        rule: Rule::BankState,
                        channel: e.channel,
                        rank: e.rank,
                        bank: Some(BankId(i)),
                        at: e.at,
                        reference: act_at,
                        detail: format!(
                            "deep power-down entry with a row open since the ACT at {act_at}"
                        ),
                    });
                }
                BankState::Closed { ready } => {
                    if e.at < ready {
                        self.violations.push(Violation {
                            rule: Rule::BankState,
                            channel: e.channel,
                            rank: e.rank,
                            bank: Some(BankId(i)),
                            at: e.at,
                            reference: ready,
                            detail: format!(
                                "deep power-down entry before the precharge completes at {ready}"
                            ),
                        });
                    }
                }
            }
        }
        self.channels[e.channel.index()].ranks[e.rank.index()].power =
            Power::DeepDown { since: e.at };
    }

    fn on_dpd_exit(&mut self, e: &CmdEvent, entered_at: Picos, ready: Picos) {
        let t_xdpd = self.cfg.t_xdpd();
        let power = self.channels[e.channel.index()].ranks[e.rank.index()].power;
        match power {
            Power::Up => {
                self.violate(
                    e,
                    Rule::RankPowerState,
                    entered_at,
                    "deep power-down exit from a rank that is not powered down".to_string(),
                );
            }
            Power::Down { since, .. } => {
                self.violate(
                    e,
                    Rule::RankPowerState,
                    since,
                    format!(
                        "deep power-down exit from a rank in precharge powerdown \
                         since {since}"
                    ),
                );
            }
            Power::DeepDown { .. } => {}
        }
        if ready < e.at + t_xdpd {
            self.violate(
                e,
                Rule::TXdpd,
                ready,
                format!(
                    "rank ready {ready} less than tXDPD {t_xdpd} after the exit at {}",
                    e.at
                ),
            );
        }
        let rank = &mut self.channels[e.channel.index()].ranks[e.rank.index()];
        rank.power = Power::Up;
        rank.ready_at = rank.ready_at.max(ready);
    }

    fn on_freq_switch(&mut self, e: &CmdEvent, from_mhz: u32, to_mhz: u32, ready: Picos) {
        let Some(to) = MemFreq::ALL.iter().copied().find(|f| f.mhz() == to_mhz) else {
            self.violate(
                e,
                Rule::Topology,
                Picos::ZERO,
                format!("unknown target operating point {to_mhz} MHz"),
            );
            return;
        };
        let ch_idx = e.channel.index();
        let current = self.channels[ch_idx].freq;
        if from_mhz != current.mhz() {
            self.violate(
                e,
                Rule::RelockPenalty,
                Picos::ZERO,
                format!("switch claims to leave {from_mhz} MHz but the channel is at {current}"),
            );
        }
        let penalty = self.relock_penalty(to);
        if ready.saturating_sub(e.at) < penalty {
            let got = ready.saturating_sub(e.at);
            self.violate(
                e,
                Rule::RelockPenalty,
                ready,
                format!("re-lock window {got} shorter than the {penalty} penalty to {to}"),
            );
        }
        // The window quiesces the channel: every rank powers up (the paper
        // re-locks from precharge powerdown), every bank closes, and the bus
        // stalls until `ready`.
        let ch = &mut self.channels[ch_idx];
        ch.freq = to;
        ch.bus_busy_until = ch.bus_busy_until.max(ready);
        ch.relock = Some((e.at, ready));
        for rank in &mut ch.ranks {
            rank.power = Power::Up;
            rank.ready_at = rank.ready_at.max(ready);
            for bank in &mut rank.banks {
                *bank = BankState::Closed { ready };
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> DramTimingConfig {
        DramTimingConfig::default()
    }

    fn auditor() -> ProtocolAuditor {
        ProtocolAuditor::new(&cfg(), 1, 2, 8, MemFreq::F800)
    }

    fn ev(at_ns: u64, rank: usize, bank: Option<usize>, kind: CmdKind) -> CmdEvent {
        CmdEvent {
            at: Picos::from_ns(at_ns),
            channel: ChannelId(0),
            rank: RankId(rank),
            bank: bank.map(BankId),
            kind,
        }
    }

    fn act(at_ns: u64, rank: usize, bank: usize, row: u64) -> CmdEvent {
        ev(at_ns, rank, Some(bank), CmdKind::Activate { row })
    }

    fn read_cas(at_ns: u64, rank: usize, bank: usize) -> CmdEvent {
        ev(
            at_ns,
            rank,
            Some(bank),
            CmdKind::CasRead {
                burst_start: Picos::from_ns(at_ns + 15),
                burst_end: Picos::from_ns(at_ns + 20),
            },
        )
    }

    fn pre(at_ns: u64, rank: usize, bank: usize) -> CmdEvent {
        ev(at_ns, rank, Some(bank), CmdKind::Precharge)
    }

    fn rules(report: &AuditReport) -> Vec<Rule> {
        report.violations.iter().map(|v| v.rule).collect()
    }

    /// A conformant closed-page read: ACT 0, CAS 15, burst 30..35, PRE 35
    /// (max of CAS+tRTP = 21.25 and ACT+tRAS = 35).
    fn clean_read() -> Vec<CmdEvent> {
        vec![act(0, 0, 0, 7), read_cas(15, 0, 0), pre(35, 0, 0)]
    }

    #[test]
    fn rule_pack_tracks_generation_features() {
        use memscale_types::config::MemGeneration;
        let ddr3 = Rule::rule_pack(&DramTimingConfig::default());
        assert!(!ddr3.contains(&Rule::TCcdL));
        assert!(!ddr3.contains(&Rule::TRrdL));
        assert!(!ddr3.contains(&Rule::TXdpd));
        assert!(!ddr3.contains(&Rule::TRfcPb));
        assert!(ddr3.contains(&Rule::TRcd) && ddr3.contains(&Rule::BusOverlap));

        let ddr4 = Rule::rule_pack(&DramTimingConfig::ddr4());
        assert!(ddr4.contains(&Rule::TCcdL) && ddr4.contains(&Rule::TRrdL));
        assert!(!ddr4.contains(&Rule::TXdpd) && !ddr4.contains(&Rule::TRfcPb));

        let lpddr3 = Rule::rule_pack(&DramTimingConfig::lpddr3());
        assert!(lpddr3.contains(&Rule::TXdpd) && lpddr3.contains(&Rule::TRfcPb));
        assert!(!lpddr3.contains(&Rule::TCcdL));

        // Every pack is drawn from the closed rule universe, no duplicates.
        for gen in MemGeneration::ALL {
            let pack = Rule::rule_pack(&DramTimingConfig::for_generation(gen));
            for (i, r) in pack.iter().enumerate() {
                assert!(Rule::ALL.contains(r));
                assert!(!pack[i + 1..].contains(r), "{r} duplicated");
            }
        }
    }

    #[test]
    fn guarded_params_name_real_config_fields() {
        use memscale_types::invariants::TimingParam;
        let fields: Vec<&str> = TimingParam::ALL.iter().map(|p| p.field()).collect();
        for rule in Rule::ALL {
            for param in rule.guarded_params() {
                assert!(
                    fields.contains(param),
                    "{rule} guards unknown field {param}"
                );
            }
        }
        // Structural rules guard no numeric parameter.
        assert!(Rule::BankState.guarded_params().is_empty());
        assert!(Rule::Topology.guarded_params().is_empty());
    }

    #[test]
    fn clean_stream_passes() {
        let mut a = auditor();
        a.ingest(&clean_read());
        // A second, fully spaced access on another bank.
        a.ingest(&[act(40, 0, 1, 3), read_cas(55, 0, 1), pre(75, 0, 1)]);
        let r = a.finalize();
        assert!(r.is_clean(), "{r}");
        assert_eq!(r.commands_checked, 6);
    }

    #[test]
    fn ingest_order_does_not_matter() {
        let mut a = auditor();
        let mut evs = clean_read();
        evs.reverse();
        a.ingest(&evs);
        assert!(a.finalize().is_clean());
    }

    #[test]
    fn trcd_violation_detected() {
        let mut a = auditor();
        a.ingest(&[act(0, 0, 0, 7), read_cas(10, 0, 0)]);
        let r = a.finalize();
        assert!(rules(&r).contains(&Rule::TRcd), "{r}");
        let v = &r.violations[0];
        assert_eq!(v.at, Picos::from_ns(10));
        assert_eq!(v.reference, Picos::ZERO);
        assert_eq!(v.bank, Some(BankId(0)));
    }

    #[test]
    fn trp_violation_detected() {
        let mut a = auditor();
        let mut evs = clean_read();
        // PRE at 35 finishes at 50; re-activating at 45 is too early.
        evs.push(act(45, 0, 0, 9));
        a.ingest(&evs);
        assert!(rules(&a.finalize()).contains(&Rule::TRp));
    }

    #[test]
    fn tcl_and_burst_length_checked_exactly() {
        let mut a = auditor();
        a.ingest(&[
            act(0, 0, 0, 7),
            ev(
                15,
                0,
                Some(0),
                CmdKind::CasRead {
                    burst_start: Picos::from_ns(31), // expected 30
                    burst_end: Picos::from_ns(41),   // spans 10, expected 5
                },
            ),
        ]);
        let r = a.finalize();
        assert!(rules(&r).contains(&Rule::TCl), "{r}");
        assert!(rules(&r).contains(&Rule::BurstLength), "{r}");
    }

    #[test]
    fn tras_and_trtp_violations_detected() {
        let mut a = auditor();
        a.ingest(&[act(0, 0, 0, 7), read_cas(15, 0, 0), pre(20, 0, 0)]);
        let r = a.finalize();
        assert!(rules(&r).contains(&Rule::TRas), "{r}");
        assert!(rules(&r).contains(&Rule::TRtp), "{r}");
    }

    #[test]
    fn twr_violation_detected() {
        let mut a = auditor();
        a.ingest(&[
            act(0, 0, 0, 7),
            ev(
                15,
                0,
                Some(0),
                CmdKind::CasWrite {
                    burst_start: Picos::from_ns(30),
                    burst_end: Picos::from_ns(35),
                },
            ),
            // tWR requires 35 + 15 = 50; tRAS alone would allow 35.
            pre(40, 0, 0),
        ]);
        let r = a.finalize();
        assert!(rules(&r).contains(&Rule::TWr), "{r}");
        assert!(!rules(&r).contains(&Rule::TRas), "{r}");
    }

    #[test]
    fn trrd_violation_detected() {
        let mut a = auditor();
        a.ingest(&[act(0, 0, 0, 1), act(3, 0, 1, 1)]); // tRRD = 5 ns
        assert!(rules(&a.finalize()).contains(&Rule::TRrd));
    }

    #[test]
    fn tfaw_violation_detected() {
        let mut a = auditor();
        // Four ACTs at 0/5/10/15; the fifth at 20 sits inside tFAW = 25.
        a.ingest(&[
            act(0, 0, 0, 1),
            act(5, 0, 1, 1),
            act(10, 0, 2, 1),
            act(15, 0, 3, 1),
            act(20, 0, 4, 1),
        ]);
        let r = a.finalize();
        assert!(rules(&r).contains(&Rule::TFaw), "{r}");
        assert!(!rules(&r).contains(&Rule::TRrd), "{r}");
    }

    #[test]
    fn tfaw_window_is_per_rank() {
        let mut a = auditor();
        a.ingest(&[
            act(0, 0, 0, 1),
            act(5, 0, 1, 1),
            act(10, 0, 2, 1),
            act(15, 0, 3, 1),
            act(20, 1, 0, 1), // other rank: unconstrained
        ]);
        assert!(a.finalize().is_clean());
    }

    #[test]
    fn refresh_duration_overlap_and_postponement_checked() {
        let mut a = auditor();
        let rfc = Picos::from_ns_f64(110.0);
        let refi = cfg().t_refi();
        a.ingest(&[
            ev(
                1_000,
                0,
                None,
                CmdKind::Refresh {
                    end: Picos::from_us(1) + rfc,
                },
            ),
            // Overlaps the previous refresh.
            ev(
                1_050,
                0,
                None,
                CmdKind::Refresh {
                    end: Picos::from_ns(1_050) + rfc,
                },
            ),
        ]);
        // Wrong duration.
        a.ingest(&[CmdEvent {
            at: Picos::from_us(1) + refi * 12,
            channel: ChannelId(0),
            rank: RankId(0),
            bank: None,
            kind: CmdKind::Refresh {
                end: Picos::from_us(1) + refi * 12 + Picos::from_ns(5),
            },
        }]);
        let r = a.finalize();
        let rs = rules(&r);
        assert!(rs.contains(&Rule::TRfc), "{r}");
        // The third refresh is both too short and more than nine tREFI late.
        assert!(rs.contains(&Rule::TRefi), "{r}");
    }

    #[test]
    fn cas_to_precharged_bank_is_bank_state_violation() {
        let mut a = auditor();
        a.ingest(&[read_cas(100, 0, 0)]);
        assert!(rules(&a.finalize()).contains(&Rule::BankState));
    }

    #[test]
    fn act_to_open_bank_is_bank_state_violation() {
        let mut a = auditor();
        a.ingest(&[act(0, 0, 0, 1), act(60, 0, 0, 2)]);
        assert!(rules(&a.finalize()).contains(&Rule::BankState));
    }

    #[test]
    fn bus_overlap_detected() {
        let mut a = auditor();
        // Both bursts would occupy 30..35 and 32..37 on the shared bus.
        a.ingest(&[
            act(0, 0, 0, 1),
            act(5, 0, 1, 1),
            read_cas(15, 0, 0),
            ev(
                17,
                0,
                Some(1),
                CmdKind::CasRead {
                    burst_start: Picos::from_ns(32),
                    burst_end: Picos::from_ns(37),
                },
            ),
        ]);
        assert!(rules(&a.finalize()).contains(&Rule::BusOverlap));
    }

    #[test]
    fn powerdown_lifecycle_checked() {
        let mut a = auditor();
        a.ingest(&[
            ev(0, 0, None, CmdKind::PowerDownEnter { fast: true }),
            // ACT while the rank is down.
            act(50, 0, 0, 1),
            // Exit with an undersized tXP window.
            ev(
                100,
                0,
                None,
                CmdKind::PowerDownExit {
                    fast: true,
                    entered_at: Picos::ZERO,
                    ready: Picos::from_ns(103),
                },
            ),
        ]);
        let r = a.finalize();
        assert!(rules(&r).contains(&Rule::RankPowerState), "{r}");
        assert!(rules(&r).contains(&Rule::TXp), "{r}");
    }

    #[test]
    fn powerdown_exit_mode_mismatch_detected() {
        let mut a = auditor();
        a.ingest(&[
            ev(0, 0, None, CmdKind::PowerDownEnter { fast: false }),
            ev(
                100,
                0,
                None,
                CmdKind::PowerDownExit {
                    fast: true,
                    entered_at: Picos::ZERO,
                    ready: Picos::from_ns(106),
                },
            ),
        ]);
        assert!(rules(&a.finalize()).contains(&Rule::RankPowerState));
    }

    #[test]
    fn powerdown_with_open_row_detected() {
        let mut a = auditor();
        a.ingest(&[
            act(0, 0, 0, 1),
            ev(100, 0, None, CmdKind::PowerDownEnter { fast: true }),
        ]);
        let r = a.finalize();
        assert!(rules(&r).contains(&Rule::BankState), "{r}");
    }

    #[test]
    fn relock_window_and_penalty_checked() {
        let mut a = auditor();
        let penalty = Picos::from_ns(2_588); // 512 × 5 ns + 28 ns at 200 MHz
        a.ingest(&[
            ev(
                1_000,
                0,
                None,
                CmdKind::FreqSwitch {
                    from_mhz: 800,
                    to_mhz: 200,
                    ready: Picos::from_ns(1_000) + penalty,
                },
            ),
            // ACT inside the window.
            act(2_000, 0, 0, 1),
        ]);
        let r = a.finalize();
        assert!(rules(&r).contains(&Rule::RelockWindow), "{r}");
        assert!(!rules(&r).contains(&Rule::RelockPenalty), "{r}");

        let mut a = auditor();
        a.ingest(&[ev(
            0,
            0,
            None,
            CmdKind::FreqSwitch {
                from_mhz: 800,
                to_mhz: 200,
                ready: Picos::from_ns(100), // far short of 2588 ns
            },
        )]);
        assert!(rules(&a.finalize()).contains(&Rule::RelockPenalty));
    }

    #[test]
    fn relock_retargets_burst_length() {
        let mut a = auditor();
        a.ingest(&[
            ev(
                0,
                0,
                None,
                CmdKind::FreqSwitch {
                    from_mhz: 800,
                    to_mhz: 400,
                    ready: Picos::from_ns(1_308), // 512 × 2.5 ns + 28 ns
                },
            ),
            act(2_000, 0, 0, 1),
            // At 400 MHz a burst spans 10 ns.
            ev(
                2_015,
                0,
                Some(0),
                CmdKind::CasRead {
                    burst_start: Picos::from_ns(2_030),
                    burst_end: Picos::from_ns(2_040),
                },
            ),
        ]);
        let r = a.finalize();
        assert!(r.is_clean(), "{r}");
    }

    #[test]
    fn freq_switch_from_mismatch_detected() {
        let mut a = auditor();
        a.ingest(&[ev(
            0,
            0,
            None,
            CmdKind::FreqSwitch {
                from_mhz: 400, // channel starts at 800
                to_mhz: 200,
                ready: Picos::from_ns(2_588),
            },
        )]);
        assert!(rules(&a.finalize()).contains(&Rule::RelockPenalty));
    }

    #[test]
    fn out_of_range_ids_reported_as_topology() {
        let mut a = auditor();
        a.ingest(&[act(0, 9, 0, 1), act(0, 0, 99, 1)]);
        let r = a.finalize();
        assert_eq!(rules(&r), vec![Rule::Topology, Rule::Topology]);
    }

    #[test]
    fn pre_to_precharged_bank_is_a_no_op() {
        let mut a = auditor();
        a.ingest(&[pre(10, 0, 0)]);
        assert!(a.finalize().is_clean());
    }

    #[test]
    fn report_display_summarizes() {
        let mut a = auditor();
        a.ingest(&[act(0, 0, 0, 7), read_cas(10, 0, 0)]);
        let r = a.finalize();
        let s = r.to_string();
        assert!(s.contains("violation"), "{s}");
        assert!(s.contains("tRCD"), "{s}");
        assert!(s.contains("rank0"), "{s}");
    }
}
