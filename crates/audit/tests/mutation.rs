//! Mutation self-test of the conformance checker.
//!
//! Each case drives the real `DramChannel` engine with a deliberately
//! *weakened* timing configuration (the channel trusts whatever numbers it is
//! given), records the command stream, and replays it against the *strict*
//! default configuration. The auditor must flag the specific rule that was
//! relaxed — proving the checker actually detects timing bugs rather than
//! rubber-stamping whatever the engine emits.

use memscale_audit::{AuditReport, ProtocolAuditor, Rule};
use memscale_dram::channel::{AccessKind, DramChannel};
use memscale_dram::rank::PowerDownMode;
use memscale_types::config::DramTimingConfig;
use memscale_types::freq::MemFreq;
use memscale_types::ids::{BankId, RankId};
use memscale_types::time::Picos;

const RANKS: usize = 2;
const BANKS: usize = 8;

/// Runs `drive` against a channel built from `cfg`, then audits the recorded
/// stream against the strict default configuration.
fn audit_with(cfg: &DramTimingConfig, drive: impl FnOnce(&mut DramChannel)) -> AuditReport {
    let mut ch = DramChannel::new(cfg, RANKS, BANKS, MemFreq::F800);
    ch.set_event_recording(true);
    drive(&mut ch);
    let events = ch.drain_events();
    assert!(!events.is_empty(), "the scenario must emit commands");
    let strict = DramTimingConfig::default();
    let mut auditor = ProtocolAuditor::new(&strict, 1, RANKS, BANKS, MemFreq::F800);
    auditor.ingest(&events);
    auditor.finalize()
}

fn weakened(mutate: impl FnOnce(&mut DramTimingConfig)) -> DramTimingConfig {
    let mut cfg = DramTimingConfig::default();
    mutate(&mut cfg);
    cfg
}

fn read(ch: &mut DramChannel, rank: usize, bank: usize, row: u64, now_ns: u64) {
    ch.service(
        RankId(rank),
        BankId(bank),
        row,
        AccessKind::Read,
        Picos::from_ns(now_ns),
        false,
    );
}

fn rules(report: &AuditReport) -> Vec<Rule> {
    report.violations.iter().map(|v| v.rule).collect()
}

/// The unperturbed engine must produce a conformant stream across every
/// command class: reads, writes, row hits, powerdown and a relock.
#[test]
fn strict_engine_is_clean() {
    let report = audit_with(&DramTimingConfig::default(), |ch| {
        read(ch, 0, 0, 1, 0);
        ch.service(
            RankId(0),
            BankId(1),
            2,
            AccessKind::Write,
            Picos::from_ns(100),
            false,
        );
        // Keep-open row hit pair.
        ch.service(
            RankId(1),
            BankId(0),
            3,
            AccessKind::Read,
            Picos::from_ns(200),
            true,
        );
        read(ch, 1, 0, 3, 300);
        // Explicit powerdown round-trip.
        ch.enter_power_down(RankId(0), PowerDownMode::Slow, Picos::from_us(1));
        read(ch, 0, 2, 5, 2_000);
        // Frequency relock, then traffic at the new operating point.
        ch.set_frequency(MemFreq::F400, Picos::from_us(3));
        read(ch, 0, 3, 6, 7_000);
        read(ch, 1, 4, 7, 7_100);
    });
    assert!(report.is_clean(), "{report}");
    assert!(report.commands_checked > 10);
}

#[test]
fn detects_trcd_mutation() {
    let cfg = weakened(|c| c.t_rcd_ns = 5.0);
    let report = audit_with(&cfg, |ch| read(ch, 0, 0, 1, 0));
    assert!(rules(&report).contains(&Rule::TRcd), "{report}");
}

#[test]
fn detects_trp_mutation() {
    let cfg = weakened(|c| c.t_rp_ns = 2.0);
    let report = audit_with(&cfg, |ch| {
        read(ch, 0, 0, 1, 0);
        // Same bank again: the engine re-activates tRP=2 after the
        // auto-precharge instead of the strict 15.
        read(ch, 0, 0, 2, 30);
    });
    assert!(rules(&report).contains(&Rule::TRp), "{report}");
}

#[test]
fn detects_tras_mutation() {
    let cfg = weakened(|c| c.t_ras_ns = 10.0);
    let report = audit_with(&cfg, |ch| read(ch, 0, 0, 1, 0));
    assert!(rules(&report).contains(&Rule::TRas), "{report}");
}

#[test]
fn detects_trtp_mutation() {
    let cfg = weakened(|c| {
        c.t_rtp_ns = 1.0;
        c.t_ras_ns = 1.0; // so tRTP, not tRAS, gates the auto-precharge
    });
    let report = audit_with(&cfg, |ch| read(ch, 0, 0, 1, 0));
    assert!(rules(&report).contains(&Rule::TRtp), "{report}");
}

#[test]
fn detects_twr_mutation() {
    let cfg = weakened(|c| {
        c.t_wr_ns = 1.0;
        c.t_ras_ns = 1.0; // so tWR, not tRAS, gates the auto-precharge
    });
    let report = audit_with(&cfg, |ch| {
        ch.service(
            RankId(0),
            BankId(0),
            1,
            AccessKind::Write,
            Picos::ZERO,
            false,
        );
    });
    assert!(rules(&report).contains(&Rule::TWr), "{report}");
}

#[test]
fn detects_trrd_mutation() {
    let cfg = weakened(|c| c.t_rrd_ns = 1.0);
    let report = audit_with(&cfg, |ch| {
        read(ch, 0, 0, 1, 0);
        read(ch, 0, 1, 1, 0);
    });
    assert!(rules(&report).contains(&Rule::TRrd), "{report}");
}

#[test]
fn detects_tfaw_mutation() {
    let cfg = weakened(|c| c.t_faw_ns = 12.0);
    let report = audit_with(&cfg, |ch| {
        for bank in 0..5 {
            read(ch, 0, bank, 1, 0);
        }
    });
    let rs = rules(&report);
    assert!(rs.contains(&Rule::TFaw), "{report}");
    // tRRD itself was left strict, so the window rule is the one that fires.
    assert!(!rs.contains(&Rule::TRrd), "{report}");
}

#[test]
fn detects_txp_mutation() {
    let cfg = weakened(|c| c.t_xp_ns = 1.0);
    let report = audit_with(&cfg, |ch| {
        ch.enter_power_down(RankId(0), PowerDownMode::Fast, Picos::ZERO);
        read(ch, 0, 0, 1, 100);
    });
    assert!(rules(&report).contains(&Rule::TXp), "{report}");
}

#[test]
fn detects_txpdll_mutation() {
    let cfg = weakened(|c| c.t_xpdll_ns = 2.0);
    let report = audit_with(&cfg, |ch| {
        ch.enter_power_down(RankId(0), PowerDownMode::Slow, Picos::ZERO);
        read(ch, 0, 0, 1, 100);
    });
    assert!(rules(&report).contains(&Rule::TXpdll), "{report}");
}

#[test]
fn detects_tcl_mutation() {
    let cfg = weakened(|c| c.t_cl_ns = 5.0);
    let report = audit_with(&cfg, |ch| read(ch, 0, 0, 1, 0));
    assert!(rules(&report).contains(&Rule::TCl), "{report}");
}

#[test]
fn detects_relock_penalty_mutation() {
    let cfg = weakened(|c| {
        c.relock_cycles = 0;
        c.relock_extra_ns = 1.0;
    });
    let report = audit_with(&cfg, |ch| {
        ch.set_frequency(MemFreq::F200, Picos::from_us(1));
        read(ch, 0, 0, 1, 1_200);
    });
    assert!(rules(&report).contains(&Rule::RelockPenalty), "{report}");
}

#[test]
fn detects_trfc_mutation() {
    let cfg = weakened(|c| c.t_rfc_ns = 10.0);
    let report = audit_with(&cfg, |ch| {
        // Far enough past the first scheduled refresh that REFs were issued.
        read(ch, 0, 0, 1, 30_000);
    });
    assert!(rules(&report).contains(&Rule::TRfc), "{report}");
}

/// The violation report carries enough structure to localize the bug: the
/// rule, the rank/bank, the offending timestamp and the reference instant.
#[test]
fn violations_are_structured() {
    let cfg = weakened(|c| c.t_rcd_ns = 5.0);
    let report = audit_with(&cfg, |ch| read(ch, 1, 3, 9, 50));
    let v = report
        .violations
        .iter()
        .find(|v| v.rule == Rule::TRcd)
        .expect("tRCD violation");
    assert_eq!(v.rank, RankId(1));
    assert_eq!(v.bank, Some(BankId(3)));
    // ACT at 50 ns, mutated CAS 5 ns later; strict tRCD is 15 ns.
    assert_eq!(v.reference, Picos::from_ns(50));
    assert_eq!(v.at, Picos::from_ns(55));
    assert!(v.detail.contains("tRCD"), "{}", v.detail);
    let line = v.to_string();
    assert!(line.contains("rank1") && line.contains("bank3"), "{line}");
}
