//! Mutation self-test of the conformance checker.
//!
//! Each case drives the real `DramChannel` engine with a deliberately
//! *weakened* timing configuration (the channel trusts whatever numbers it is
//! given), records the command stream, and replays it against the *strict*
//! reference configuration of the same memory generation. The auditor must
//! flag the specific rule that was relaxed — proving the checker actually
//! detects timing bugs rather than rubber-stamping whatever the engine
//! emits. DDR3 rules use the default config; the DDR4 (bank-group) and
//! LPDDR3 (deep power-down, per-bank refresh) rule packs get the same
//! treatment against their generation's reference config.

use memscale_audit::{AuditReport, ProtocolAuditor, Rule};
use memscale_dram::channel::{AccessKind, DramChannel};
use memscale_dram::rank::PowerDownMode;
use memscale_types::config::DramTimingConfig;
use memscale_types::freq::MemFreq;
use memscale_types::ids::{BankId, RankId};
use memscale_types::time::Picos;

const RANKS: usize = 2;
const BANKS: usize = 8;

/// Runs `drive` against a channel built from `cfg`, then audits the recorded
/// stream against the `strict` reference configuration (which selects the
/// rule pack via its generation).
fn audit_against(
    strict: &DramTimingConfig,
    cfg: &DramTimingConfig,
    drive: impl FnOnce(&mut DramChannel),
) -> AuditReport {
    let mut ch = DramChannel::new(cfg, RANKS, BANKS, MemFreq::F800);
    ch.set_event_recording(true);
    drive(&mut ch);
    let events = ch.drain_events();
    assert!(!events.is_empty(), "the scenario must emit commands");
    let mut auditor = ProtocolAuditor::new(strict, 1, RANKS, BANKS, MemFreq::F800);
    auditor.ingest(&events);
    auditor.finalize()
}

/// DDR3 shorthand: audits against the strict default configuration.
fn audit_with(cfg: &DramTimingConfig, drive: impl FnOnce(&mut DramChannel)) -> AuditReport {
    audit_against(&DramTimingConfig::default(), cfg, drive)
}

fn weakened(mutate: impl FnOnce(&mut DramTimingConfig)) -> DramTimingConfig {
    let mut cfg = DramTimingConfig::default();
    mutate(&mut cfg);
    cfg
}

fn weakened_from(
    base: DramTimingConfig,
    mutate: impl FnOnce(&mut DramTimingConfig),
) -> DramTimingConfig {
    let mut cfg = base;
    mutate(&mut cfg);
    cfg
}

fn read(ch: &mut DramChannel, rank: usize, bank: usize, row: u64, now_ns: u64) {
    ch.service(
        RankId(rank),
        BankId(bank),
        row,
        AccessKind::Read,
        Picos::from_ns(now_ns),
        false,
    );
}

fn rules(report: &AuditReport) -> Vec<Rule> {
    report.violations.iter().map(|v| v.rule).collect()
}

/// The unperturbed engine must produce a conformant stream across every
/// command class: reads, writes, row hits, powerdown and a relock.
#[test]
fn strict_engine_is_clean() {
    let report = audit_with(&DramTimingConfig::default(), |ch| {
        read(ch, 0, 0, 1, 0);
        ch.service(
            RankId(0),
            BankId(1),
            2,
            AccessKind::Write,
            Picos::from_ns(100),
            false,
        );
        // Keep-open row hit pair.
        ch.service(
            RankId(1),
            BankId(0),
            3,
            AccessKind::Read,
            Picos::from_ns(200),
            true,
        );
        read(ch, 1, 0, 3, 300);
        // Explicit powerdown round-trip.
        ch.enter_power_down(RankId(0), PowerDownMode::Slow, Picos::from_us(1));
        read(ch, 0, 2, 5, 2_000);
        // Frequency relock, then traffic at the new operating point.
        ch.set_frequency(MemFreq::F400, Picos::from_us(3));
        read(ch, 0, 3, 6, 7_000);
        read(ch, 1, 4, 7, 7_100);
    });
    assert!(report.is_clean(), "{report}");
    assert!(report.commands_checked > 10);
}

#[test]
fn detects_trcd_mutation() {
    let cfg = weakened(|c| c.t_rcd_ns = 5.0);
    let report = audit_with(&cfg, |ch| read(ch, 0, 0, 1, 0));
    assert!(rules(&report).contains(&Rule::TRcd), "{report}");
}

#[test]
fn detects_trp_mutation() {
    let cfg = weakened(|c| c.t_rp_ns = 2.0);
    let report = audit_with(&cfg, |ch| {
        read(ch, 0, 0, 1, 0);
        // Same bank again: the engine re-activates tRP=2 after the
        // auto-precharge instead of the strict 15.
        read(ch, 0, 0, 2, 30);
    });
    assert!(rules(&report).contains(&Rule::TRp), "{report}");
}

#[test]
fn detects_tras_mutation() {
    let cfg = weakened(|c| c.t_ras_ns = 10.0);
    let report = audit_with(&cfg, |ch| read(ch, 0, 0, 1, 0));
    assert!(rules(&report).contains(&Rule::TRas), "{report}");
}

#[test]
fn detects_trtp_mutation() {
    let cfg = weakened(|c| {
        c.t_rtp_ns = 1.0;
        c.t_ras_ns = 1.0; // so tRTP, not tRAS, gates the auto-precharge
    });
    let report = audit_with(&cfg, |ch| read(ch, 0, 0, 1, 0));
    assert!(rules(&report).contains(&Rule::TRtp), "{report}");
}

#[test]
fn detects_twr_mutation() {
    let cfg = weakened(|c| {
        c.t_wr_ns = 1.0;
        c.t_ras_ns = 1.0; // so tWR, not tRAS, gates the auto-precharge
    });
    let report = audit_with(&cfg, |ch| {
        ch.service(
            RankId(0),
            BankId(0),
            1,
            AccessKind::Write,
            Picos::ZERO,
            false,
        );
    });
    assert!(rules(&report).contains(&Rule::TWr), "{report}");
}

#[test]
fn detects_trrd_mutation() {
    let cfg = weakened(|c| c.t_rrd_ns = 1.0);
    let report = audit_with(&cfg, |ch| {
        read(ch, 0, 0, 1, 0);
        read(ch, 0, 1, 1, 0);
    });
    assert!(rules(&report).contains(&Rule::TRrd), "{report}");
}

#[test]
fn detects_tfaw_mutation() {
    let cfg = weakened(|c| c.t_faw_ns = 12.0);
    let report = audit_with(&cfg, |ch| {
        for bank in 0..5 {
            read(ch, 0, bank, 1, 0);
        }
    });
    let rs = rules(&report);
    assert!(rs.contains(&Rule::TFaw), "{report}");
    // tRRD itself was left strict, so the window rule is the one that fires.
    assert!(!rs.contains(&Rule::TRrd), "{report}");
}

#[test]
fn detects_txp_mutation() {
    let cfg = weakened(|c| c.t_xp_ns = 1.0);
    let report = audit_with(&cfg, |ch| {
        ch.enter_power_down(RankId(0), PowerDownMode::Fast, Picos::ZERO);
        read(ch, 0, 0, 1, 100);
    });
    assert!(rules(&report).contains(&Rule::TXp), "{report}");
}

#[test]
fn detects_txpdll_mutation() {
    let cfg = weakened(|c| c.t_xpdll_ns = 2.0);
    let report = audit_with(&cfg, |ch| {
        ch.enter_power_down(RankId(0), PowerDownMode::Slow, Picos::ZERO);
        read(ch, 0, 0, 1, 100);
    });
    assert!(rules(&report).contains(&Rule::TXpdll), "{report}");
}

#[test]
fn detects_tcl_mutation() {
    let cfg = weakened(|c| c.t_cl_ns = 5.0);
    let report = audit_with(&cfg, |ch| read(ch, 0, 0, 1, 0));
    assert!(rules(&report).contains(&Rule::TCl), "{report}");
}

#[test]
fn detects_relock_penalty_mutation() {
    let cfg = weakened(|c| {
        c.relock_cycles = 0;
        c.relock_extra_ns = 1.0;
    });
    let report = audit_with(&cfg, |ch| {
        ch.set_frequency(MemFreq::F200, Picos::from_us(1));
        read(ch, 0, 0, 1, 1_200);
    });
    assert!(rules(&report).contains(&Rule::RelockPenalty), "{report}");
}

#[test]
fn detects_trfc_mutation() {
    let cfg = weakened(|c| c.t_rfc_ns = 10.0);
    let report = audit_with(&cfg, |ch| {
        // Far enough past the first scheduled refresh that REFs were issued.
        read(ch, 0, 0, 1, 30_000);
    });
    assert!(rules(&report).contains(&Rule::TRfc), "{report}");
}

/// A DDR4 engine run — bank-group-split CAS/ACT traffic plus a relock —
/// replayed through the DDR4 rule pack must be conformant.
#[test]
fn ddr4_strict_engine_is_clean() {
    let ddr4 = DramTimingConfig::ddr4();
    let report = audit_against(&ddr4, &ddr4, |ch| {
        // Same group (banks 0 and 4), different groups (banks 0 and 1).
        read(ch, 0, 0, 1, 0);
        read(ch, 0, 4, 1, 0);
        read(ch, 0, 1, 1, 0);
        ch.service(
            RankId(1),
            BankId(4),
            2,
            AccessKind::Write,
            Picos::from_ns(200),
            false,
        );
        ch.set_frequency(MemFreq::F400, Picos::from_us(1));
        read(ch, 0, 0, 3, 3_000);
        read(ch, 0, 4, 3, 3_000);
    });
    assert!(report.is_clean(), "{report}");
    assert!(report.commands_checked > 10);
}

#[test]
fn detects_tccd_l_mutation() {
    // Weakened tCCD_L collapses to the burst; the strict DDR4 pack expects
    // 6 cycles between same-group CASes. Row hits decouple CAS spacing from
    // ACT spacing so only the CAS rule can fire.
    let cfg = weakened_from(DramTimingConfig::ddr4(), |c| c.t_ccd_l_cycles = 4);
    let report = audit_against(&DramTimingConfig::ddr4(), &cfg, |ch| {
        ch.service(RankId(0), BankId(0), 1, AccessKind::Read, Picos::ZERO, true);
        ch.service(RankId(0), BankId(4), 1, AccessKind::Read, Picos::ZERO, true);
        let later = Picos::from_ns(300);
        ch.service(RankId(0), BankId(0), 1, AccessKind::Read, later, true);
        ch.service(RankId(0), BankId(4), 1, AccessKind::Read, later, true);
    });
    let rs = rules(&report);
    assert!(rs.contains(&Rule::TCcdL), "{report}");
    assert!(!rs.contains(&Rule::TRrdL), "{report}");
}

#[test]
fn detects_trrd_l_mutation() {
    // Same-group ACTs squeezed to the cross-group tRRD; strict DDR4 wants
    // the longer tRRD_L.
    let cfg = weakened_from(DramTimingConfig::ddr4(), |c| c.t_rrd_l_ns = 5.0);
    let report = audit_against(&DramTimingConfig::ddr4(), &cfg, |ch| {
        read(ch, 0, 0, 1, 0);
        read(ch, 0, 4, 1, 0);
    });
    assert!(rules(&report).contains(&Rule::TRrdL), "{report}");
}

/// An LPDDR3 engine run — deep power-down round trip plus per-bank refresh
/// catch-up — replayed through the LPDDR3 rule pack must be conformant.
#[test]
fn lpddr3_strict_engine_is_clean() {
    let lpddr3 = DramTimingConfig::lpddr3();
    let report = audit_against(&lpddr3, &lpddr3, |ch| {
        read(ch, 0, 0, 1, 0);
        ch.enter_power_down(RankId(0), PowerDownMode::Deep, Picos::from_us(1));
        // Wakes rank 0 out of deep power-down; rank 1 catches up on
        // per-bank refreshes it owes by now.
        read(ch, 0, 2, 5, 20_000);
        read(ch, 1, 3, 6, 20_100);
        ch.set_frequency(MemFreq::F400, Picos::from_us(30));
        read(ch, 0, 1, 7, 35_000);
    });
    assert!(report.is_clean(), "{report}");
    assert!(report.commands_checked > 10);
}

#[test]
fn detects_txdpd_mutation() {
    // Deep power-down exited after a fraction of the strict 500 ns tXDPD.
    let cfg = weakened_from(DramTimingConfig::lpddr3(), |c| c.t_xdpd_ns = 50.0);
    let report = audit_against(&DramTimingConfig::lpddr3(), &cfg, |ch| {
        ch.enter_power_down(RankId(0), PowerDownMode::Deep, Picos::ZERO);
        read(ch, 0, 0, 1, 2_000);
    });
    assert!(rules(&report).contains(&Rule::TXdpd), "{report}");
}

#[test]
fn detects_trfc_pb_mutation() {
    // Per-bank refreshes lasting 10 ns instead of the strict 60 ns tRFCpb.
    let cfg = weakened_from(DramTimingConfig::lpddr3(), |c| c.t_rfc_pb_ns = 10.0);
    let report = audit_against(&DramTimingConfig::lpddr3(), &cfg, |ch| {
        read(ch, 0, 0, 1, 30_000);
    });
    assert!(rules(&report).contains(&Rule::TRfcPb), "{report}");
}

/// Deep power-down entry on a generation without it is itself a violation —
/// the DDR4 pack rejects the LPDDR-only command.
#[test]
fn ddr4_pack_rejects_deep_powerdown() {
    let ddr4 = DramTimingConfig::ddr4();
    let report = audit_against(&ddr4, &ddr4, |ch| {
        read(ch, 0, 0, 1, 0);
        ch.enter_power_down(RankId(0), PowerDownMode::Deep, Picos::from_us(1));
        read(ch, 0, 1, 2, 5_000);
    });
    assert!(rules(&report).contains(&Rule::TXdpd), "{report}");
}

/// The violation report carries enough structure to localize the bug: the
/// rule, the rank/bank, the offending timestamp and the reference instant.
#[test]
fn violations_are_structured() {
    let cfg = weakened(|c| c.t_rcd_ns = 5.0);
    let report = audit_with(&cfg, |ch| read(ch, 1, 3, 9, 50));
    let v = report
        .violations
        .iter()
        .find(|v| v.rule == Rule::TRcd)
        .expect("tRCD violation");
    assert_eq!(v.rank, RankId(1));
    assert_eq!(v.bank, Some(BankId(3)));
    // ACT at 50 ns, mutated CAS 5 ns later; strict tRCD is 15 ns.
    assert_eq!(v.reference, Picos::from_ns(50));
    assert_eq!(v.at, Picos::from_ns(55));
    assert!(v.detail.contains("tRCD"), "{}", v.detail);
    let line = v.to_string();
    assert!(line.contains("rank1") && line.contains("bank3"), "{line}");
}
