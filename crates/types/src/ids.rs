//! Typed identifiers for the components of the simulated system.
//!
//! Newtypes prevent accidentally indexing a rank table with a bank number
//! (C-NEWTYPE). All IDs are dense, zero-based `usize` indices.

use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $tag:literal) => {
        $(#[$doc])*
        #[derive(
            Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash,
        )]
        pub struct $name(pub usize);

        impl $name {
            /// The raw zero-based index.
            #[inline]
            pub const fn index(self) -> usize {
                self.0
            }
        }

        impl From<usize> for $name {
            #[inline]
            fn from(value: usize) -> Self {
                $name(value)
            }
        }

        impl From<$name> for usize {
            #[inline]
            fn from(value: $name) -> usize {
                value.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($tag, "{}"), self.0)
            }
        }
    };
}

id_type!(
    /// A CPU core (0-based).
    CoreId,
    "core"
);
id_type!(
    /// A memory channel (0-based).
    ChannelId,
    "ch"
);
id_type!(
    /// A rank *within its channel* (0-based across the channel's DIMMs).
    RankId,
    "rank"
);
id_type!(
    /// A bank *within its rank* (0-based).
    BankId,
    "bank"
);
id_type!(
    /// An application instance within a multiprogrammed mix (0-based).
    /// With one thread per core, `AppId(i)` runs on `CoreId(i)`.
    AppId,
    "app"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_usize() {
        let c = CoreId::from(3);
        assert_eq!(c.index(), 3);
        assert_eq!(usize::from(c), 3);
    }

    #[test]
    fn display_is_tagged() {
        assert_eq!(CoreId(2).to_string(), "core2");
        assert_eq!(ChannelId(0).to_string(), "ch0");
        assert_eq!(RankId(1).to_string(), "rank1");
        assert_eq!(BankId(7).to_string(), "bank7");
        assert_eq!(AppId(15).to_string(), "app15");
    }

    #[test]
    fn ids_are_ordered() {
        assert!(BankId(1) < BankId(2));
        assert_eq!(RankId::default(), RankId(0));
    }
}
