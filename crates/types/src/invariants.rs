//! Declarative cross-parameter invariants over DRAM timing and power tables,
//! plus plain-data FSM transition tables.
//!
//! This module is the single source of truth for what a *legal* device table
//! looks like. Two consumers share it so they can never disagree:
//!
//! * [`DramTimingConfig::validate`] (startup validation) maps the **first**
//!   diagnostic to a [`crate::config::ConfigError`];
//! * the `memscale-check` static analyzer collects **every** diagnostic and
//!   extends the pure-table checks here with per-frequency, power-model and
//!   FSM analyses.
//!
//! Each violation is a structured [`Diagnostic`] carrying a stable invariant
//! identifier, the generation, and the offending parameter names and values.
//! The [`FsmSpec`] type lets stateful crates (`memscale-dram`'s rank
//! power-state machine, `memscale`'s governor hardening ladder) publish
//! their transition structure as data that a model checker can enumerate.

use crate::config::{DramTimingConfig, MemGeneration, PowerConfig};
use crate::freq::MemFreq;
use std::fmt;

/// One entry of a generation's timing table, named after the
/// [`DramTimingConfig`] field that stores it.
///
/// The enum gives the analyzers a closed, iterable universe of parameters:
/// the rule-pack coverage pass walks [`TimingParam::ALL`] and demands that
/// every parameter relevant to a generation is guarded by an audit rule or
/// explicitly waived.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TimingParam {
    /// `t_rcd_ns` — ACT-to-CAS delay.
    TRcd,
    /// `t_rp_ns` — precharge duration.
    TRp,
    /// `t_cl_ns` — CAS latency.
    TCl,
    /// `t_ras_ns` — minimum ACT-to-PRE interval.
    TRas,
    /// `t_rrd_ns` — ACT-to-ACT spacing, different banks.
    TRrd,
    /// `t_faw_ns` — four-activate window.
    TFaw,
    /// `t_rtp_ns` — read-to-precharge.
    TRtp,
    /// `t_wr_ns` — write recovery.
    TWr,
    /// `burst_cycles` — data burst length in bus cycles.
    BurstCycles,
    /// `t_ccd_s_cycles` — different-bank-group CAS-to-CAS spacing.
    TCcdS,
    /// `t_ccd_l_cycles` — same-bank-group CAS-to-CAS spacing (DDR4).
    TCcdL,
    /// `t_rrd_l_ns` — same-bank-group ACT-to-ACT spacing (DDR4).
    TRrdL,
    /// `bank_groups` — bank groups per rank (DDR4).
    BankGroups,
    /// `t_xp_ns` — fast-exit powerdown exit latency.
    TXp,
    /// `t_xpdll_ns` — slow-exit (DLL-off) powerdown exit latency.
    TXpdll,
    /// `t_xdpd_ns` — deep power-down exit latency (LPDDR3).
    TXdpd,
    /// `refresh_period_ms` — all-rows refresh period.
    RefreshPeriod,
    /// `refresh_commands` — refresh commands per period.
    RefreshCommands,
    /// `t_rfc_ns` — all-bank refresh duration.
    TRfc,
    /// `t_rfc_pb_ns` — per-bank refresh duration (LPDDR3).
    TRfcPb,
    /// `per_bank_refresh` — per-bank refresh mode flag (LPDDR3).
    PerBankRefresh,
    /// `relock_cycles` — cycle part of the frequency re-lock penalty.
    RelockCycles,
    /// `relock_extra_ns` — fixed part of the frequency re-lock penalty.
    RelockExtra,
    /// `mc_pipeline_cycles` — MC request-pipeline depth.
    McPipeline,
}

impl TimingParam {
    /// Every timing parameter, in [`DramTimingConfig`] declaration order.
    pub const ALL: [TimingParam; 24] = [
        TimingParam::TRcd,
        TimingParam::TRp,
        TimingParam::TCl,
        TimingParam::TRas,
        TimingParam::TRrd,
        TimingParam::TFaw,
        TimingParam::TRtp,
        TimingParam::TWr,
        TimingParam::BurstCycles,
        TimingParam::TCcdS,
        TimingParam::TCcdL,
        TimingParam::TRrdL,
        TimingParam::BankGroups,
        TimingParam::TXp,
        TimingParam::TXpdll,
        TimingParam::TXdpd,
        TimingParam::RefreshPeriod,
        TimingParam::RefreshCommands,
        TimingParam::TRfc,
        TimingParam::TRfcPb,
        TimingParam::PerBankRefresh,
        TimingParam::RelockCycles,
        TimingParam::RelockExtra,
        TimingParam::McPipeline,
    ];

    /// The [`DramTimingConfig`] field holding this parameter.
    pub const fn field(self) -> &'static str {
        match self {
            TimingParam::TRcd => "t_rcd_ns",
            TimingParam::TRp => "t_rp_ns",
            TimingParam::TCl => "t_cl_ns",
            TimingParam::TRas => "t_ras_ns",
            TimingParam::TRrd => "t_rrd_ns",
            TimingParam::TFaw => "t_faw_ns",
            TimingParam::TRtp => "t_rtp_ns",
            TimingParam::TWr => "t_wr_ns",
            TimingParam::BurstCycles => "burst_cycles",
            TimingParam::TCcdS => "t_ccd_s_cycles",
            TimingParam::TCcdL => "t_ccd_l_cycles",
            TimingParam::TRrdL => "t_rrd_l_ns",
            TimingParam::BankGroups => "bank_groups",
            TimingParam::TXp => "t_xp_ns",
            TimingParam::TXpdll => "t_xpdll_ns",
            TimingParam::TXdpd => "t_xdpd_ns",
            TimingParam::RefreshPeriod => "refresh_period_ms",
            TimingParam::RefreshCommands => "refresh_commands",
            TimingParam::TRfc => "t_rfc_ns",
            TimingParam::TRfcPb => "t_rfc_pb_ns",
            TimingParam::PerBankRefresh => "per_bank_refresh",
            TimingParam::RelockCycles => "relock_cycles",
            TimingParam::RelockExtra => "relock_extra_ns",
            TimingParam::McPipeline => "mc_pipeline_cycles",
        }
    }

    /// The JEDEC-style display name (`tRCD`, `tCCD_S`, ...), where one
    /// exists; falls back to the field name for model-level knobs.
    pub const fn jedec(self) -> &'static str {
        match self {
            TimingParam::TRcd => "tRCD",
            TimingParam::TRp => "tRP",
            TimingParam::TCl => "tCL",
            TimingParam::TRas => "tRAS",
            TimingParam::TRrd => "tRRD",
            TimingParam::TFaw => "tFAW",
            TimingParam::TRtp => "tRTP",
            TimingParam::TWr => "tWR",
            TimingParam::BurstCycles => "BL",
            TimingParam::TCcdS => "tCCD_S",
            TimingParam::TCcdL => "tCCD_L",
            TimingParam::TRrdL => "tRRD_L",
            TimingParam::BankGroups => "bank groups",
            TimingParam::TXp => "tXP",
            TimingParam::TXpdll => "tXPDLL",
            TimingParam::TXdpd => "tXDPD",
            TimingParam::RefreshPeriod => "refresh period",
            TimingParam::RefreshCommands => "tREFI divisor",
            TimingParam::TRfc => "tRFC",
            TimingParam::TRfcPb => "tRFCpb",
            TimingParam::PerBankRefresh => "REFpb",
            TimingParam::RelockCycles => "relock cycles",
            TimingParam::RelockExtra => "relock extra",
            TimingParam::McPipeline => "MC pipeline",
        }
    }

    /// This parameter's value in `cfg`, as a plain number (booleans map to
    /// 0/1, integer fields are widened).
    #[allow(clippy::cast_precision_loss)] // counts are small
    pub fn value(self, cfg: &DramTimingConfig) -> f64 {
        match self {
            TimingParam::TRcd => cfg.t_rcd_ns,
            TimingParam::TRp => cfg.t_rp_ns,
            TimingParam::TCl => cfg.t_cl_ns,
            TimingParam::TRas => cfg.t_ras_ns,
            TimingParam::TRrd => cfg.t_rrd_ns,
            TimingParam::TFaw => cfg.t_faw_ns,
            TimingParam::TRtp => cfg.t_rtp_ns,
            TimingParam::TWr => cfg.t_wr_ns,
            TimingParam::BurstCycles => f64::from(cfg.burst_cycles),
            TimingParam::TCcdS => f64::from(cfg.t_ccd_s_cycles),
            TimingParam::TCcdL => f64::from(cfg.t_ccd_l_cycles),
            TimingParam::TRrdL => cfg.t_rrd_l_ns,
            TimingParam::BankGroups => f64::from(cfg.bank_groups),
            TimingParam::TXp => cfg.t_xp_ns,
            TimingParam::TXpdll => cfg.t_xpdll_ns,
            TimingParam::TXdpd => cfg.t_xdpd_ns,
            TimingParam::RefreshPeriod => cfg.refresh_period_ms,
            TimingParam::RefreshCommands => cfg.refresh_commands as f64,
            TimingParam::TRfc => cfg.t_rfc_ns,
            TimingParam::TRfcPb => cfg.t_rfc_pb_ns,
            TimingParam::PerBankRefresh => f64::from(u8::from(cfg.per_bank_refresh)),
            TimingParam::RelockCycles => cfg.relock_cycles as f64,
            TimingParam::RelockExtra => cfg.relock_extra_ns,
            TimingParam::McPipeline => f64::from(cfg.mc_pipeline_cycles),
        }
    }

    /// Whether this parameter carries meaning for `generation`.
    ///
    /// Generations without bank groups collapse `tCCD_L`/`tRRD_L` onto the
    /// short spacings and pin `bank_groups` to 1; generations without deep
    /// power-down pin `tXDPD` to 0; only LPDDR3 refreshes per bank. The
    /// coverage pass skips irrelevant parameters instead of demanding rules
    /// for fields that are structurally inert.
    pub fn relevant_for(self, generation: MemGeneration) -> bool {
        match self {
            TimingParam::TCcdL | TimingParam::TRrdL | TimingParam::BankGroups => {
                generation.has_bank_groups()
            }
            TimingParam::TXdpd => generation.has_deep_power_down(),
            TimingParam::TRfcPb | TimingParam::PerBankRefresh => {
                generation == MemGeneration::Lpddr3
            }
            _ => true,
        }
    }
}

impl fmt::Display for TimingParam {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.field())
    }
}

/// One violated invariant: a stable identifier, the generation it was
/// checked against, a human-readable message, and the parameter names and
/// values involved.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// Stable kebab-case invariant identifier (e.g. `tras-covers-rcd-rtp`).
    /// Mutation self-tests key on this, so identifiers are append-only.
    pub invariant: &'static str,
    /// The generation whose table (or FSM) was being checked.
    pub generation: MemGeneration,
    /// Human-readable explanation with the concrete values involved.
    pub message: String,
    /// `(parameter, value)` pairs the invariant relates.
    pub params: Vec<(&'static str, f64)>,
}

impl Diagnostic {
    /// Builds a diagnostic; `params` name the values the invariant relates.
    pub fn new(
        invariant: &'static str,
        generation: MemGeneration,
        message: impl Into<String>,
        params: Vec<(&'static str, f64)>,
    ) -> Self {
        Diagnostic {
            invariant,
            generation,
            message: message.into(),
            params,
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] {}: {}",
            self.invariant, self.generation, self.message
        )?;
        if !self.params.is_empty() {
            write!(f, " (")?;
            for (i, (name, value)) in self.params.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{name}={value}")?;
            }
            write!(f, ")")?;
        }
        Ok(())
    }
}

/// Checks every pure-table invariant of a timing configuration, returning
/// all diagnostics in deterministic order (positivity first, then
/// cross-parameter, then generation-specific).
///
/// [`DramTimingConfig::validate`] reports the first entry; `memscale-sim
/// check` reports them all. Cross-parameter checks are skipped when an
/// operand already failed the positivity/finiteness stage so one bad value
/// does not cascade into nonsense comparisons.
#[allow(clippy::too_many_lines)] // a linear checklist reads best unsplit
pub fn check_timing(cfg: &DramTimingConfig) -> Vec<Diagnostic> {
    let gen = cfg.generation;
    let mut out = Vec::new();
    let bad = |p: TimingParam| -> bool {
        let v = p.value(cfg);
        !v.is_finite() || v <= 0.0
    };
    let positive = [
        TimingParam::TRcd,
        TimingParam::TRp,
        TimingParam::TCl,
        TimingParam::TRas,
        TimingParam::TRrd,
        TimingParam::TFaw,
        TimingParam::TRtp,
        TimingParam::TWr,
        TimingParam::TXp,
        TimingParam::TXpdll,
        TimingParam::RefreshPeriod,
        TimingParam::TRfc,
    ];
    for p in positive {
        if bad(p) {
            out.push(Diagnostic::new(
                "param-positive",
                gen,
                format!("{} must be positive", p.field()),
                vec![(p.field(), p.value(cfg))],
            ));
        }
    }
    if cfg.burst_cycles == 0 {
        out.push(Diagnostic::new(
            "param-count-positive",
            gen,
            "burst_cycles must be > 0",
            vec![("burst_cycles", 0.0)],
        ));
    }
    if cfg.refresh_commands == 0 {
        out.push(Diagnostic::new(
            "param-count-positive",
            gen,
            "refresh_commands must be > 0",
            vec![("refresh_commands", 0.0)],
        ));
    }
    if cfg.mc_pipeline_cycles == 0 {
        out.push(Diagnostic::new(
            "param-count-positive",
            gen,
            "mc_pipeline_cycles must be > 0",
            vec![("mc_pipeline_cycles", 0.0)],
        ));
    }

    // Cross-parameter consistency: individually plausible values can still
    // describe a device no datasheet would permit, and the timing engine
    // (and the protocol auditor checking it) assume these orderings hold.
    if !bad(TimingParam::TRas)
        && !bad(TimingParam::TRcd)
        && !bad(TimingParam::TRtp)
        && cfg.t_ras_ns < cfg.t_rcd_ns + cfg.t_rtp_ns
    {
        out.push(Diagnostic::new(
            "tras-covers-rcd-rtp",
            gen,
            format!(
                "t_ras_ns ({}) must be >= t_rcd_ns + t_rtp_ns ({}): a read \
                 could otherwise precharge before the row finished activating",
                cfg.t_ras_ns,
                cfg.t_rcd_ns + cfg.t_rtp_ns
            ),
            vec![
                ("t_ras_ns", cfg.t_ras_ns),
                ("t_rcd_ns", cfg.t_rcd_ns),
                ("t_rtp_ns", cfg.t_rtp_ns),
            ],
        ));
    }
    if !bad(TimingParam::TFaw) && !bad(TimingParam::TRrd) && cfg.t_faw_ns < 2.0 * cfg.t_rrd_ns {
        out.push(Diagnostic::new(
            "tfaw-covers-2trrd",
            gen,
            format!(
                "t_faw_ns ({}) must be >= 2 * t_rrd_ns ({}): a four-activate \
                 window shorter than two ACT-to-ACT gaps never constrains",
                cfg.t_faw_ns,
                2.0 * cfg.t_rrd_ns
            ),
            vec![("t_faw_ns", cfg.t_faw_ns), ("t_rrd_ns", cfg.t_rrd_ns)],
        ));
    }
    if !bad(TimingParam::RefreshPeriod) && cfg.refresh_commands > 0 && !bad(TimingParam::TRfc) {
        let refi_ns = cfg.refresh_period_ms * 1e6 / cfg.refresh_commands as f64;
        if cfg.t_rfc_ns >= refi_ns {
            out.push(Diagnostic::new(
                "refresh-duty",
                gen,
                format!(
                    "t_rfc_ns ({}) must be < the refresh interval tREFI ({refi_ns} \
                     ns): refresh would otherwise consume the whole device",
                    cfg.t_rfc_ns
                ),
                vec![("t_rfc_ns", cfg.t_rfc_ns), ("tREFI_ns", refi_ns)],
            ));
        }
    }
    if !bad(TimingParam::TXp) && !bad(TimingParam::TXpdll) && cfg.t_xp_ns > cfg.t_xpdll_ns {
        out.push(Diagnostic::new(
            "powerdown-exit-ladder",
            gen,
            format!(
                "t_xp_ns ({}) must be <= t_xpdll_ns ({}): the fast powerdown \
                 exit cannot be slower than the DLL-relock slow exit",
                cfg.t_xp_ns, cfg.t_xpdll_ns
            ),
            vec![("t_xp_ns", cfg.t_xp_ns), ("t_xpdll_ns", cfg.t_xpdll_ns)],
        ));
    }
    if cfg.t_ccd_s_cycles != 0 && cfg.burst_cycles != 0 && cfg.t_ccd_s_cycles != cfg.burst_cycles {
        out.push(Diagnostic::new(
            "tccds-matches-burst",
            gen,
            format!(
                "t_ccd_s_cycles ({}) must equal burst_cycles ({}): the \
                 different-group CAS-to-CAS spacing is the burst itself on \
                 every supported generation, and the engine schedules it so",
                cfg.t_ccd_s_cycles, cfg.burst_cycles
            ),
            vec![
                ("t_ccd_s_cycles", f64::from(cfg.t_ccd_s_cycles)),
                ("burst_cycles", f64::from(cfg.burst_cycles)),
            ],
        ));
    }
    if !cfg.relock_extra_ns.is_finite() || cfg.relock_extra_ns < 0.0 {
        out.push(Diagnostic::new(
            "relock-extra-nonnegative",
            gen,
            format!(
                "relock_extra_ns ({}) must be finite and >= 0",
                cfg.relock_extra_ns
            ),
            vec![("relock_extra_ns", cfg.relock_extra_ns)],
        ));
    }
    check_generation(cfg, &mut out);
    out
}

/// Generation-specific cross-checks, with messages naming the generation
/// (appended to `out` in the order startup validation historically used).
fn check_generation(cfg: &DramTimingConfig, out: &mut Vec<Diagnostic>) {
    let gen = cfg.generation;
    if cfg.bank_groups == 0 {
        out.push(Diagnostic::new(
            "bank-groups-positive",
            gen,
            format!("{gen}: bank_groups must be > 0"),
            vec![("bank_groups", 0.0)],
        ));
    }
    if cfg.t_ccd_s_cycles == 0 || cfg.t_ccd_l_cycles == 0 {
        out.push(Diagnostic::new(
            "ccd-cycles-positive",
            gen,
            format!("{gen}: tCCD_S/tCCD_L must be > 0 cycles"),
            vec![
                ("t_ccd_s_cycles", f64::from(cfg.t_ccd_s_cycles)),
                ("t_ccd_l_cycles", f64::from(cfg.t_ccd_l_cycles)),
            ],
        ));
    }
    if !cfg.t_rrd_l_ns.is_finite() || cfg.t_rrd_l_ns <= 0.0 {
        out.push(Diagnostic::new(
            "trrdl-positive",
            gen,
            format!("{gen}: t_rrd_l_ns must be positive"),
            vec![("t_rrd_l_ns", cfg.t_rrd_l_ns)],
        ));
    }
    if gen.has_bank_groups() {
        if cfg.bank_groups < 2 {
            out.push(Diagnostic::new(
                "bank-groups-min",
                gen,
                format!("{gen} splits banks into groups: bank_groups must be >= 2"),
                vec![("bank_groups", f64::from(cfg.bank_groups))],
            ));
        }
        if cfg.t_ccd_l_cycles != 0 && cfg.t_ccd_l_cycles < cfg.t_ccd_s_cycles {
            out.push(Diagnostic::new(
                "ccd-ladder",
                gen,
                format!(
                    "{gen}: t_ccd_l_cycles ({}) must be >= t_ccd_s_cycles ({}): \
                     the same-group CAS spacing is the longer one",
                    cfg.t_ccd_l_cycles, cfg.t_ccd_s_cycles
                ),
                vec![
                    ("t_ccd_l_cycles", f64::from(cfg.t_ccd_l_cycles)),
                    ("t_ccd_s_cycles", f64::from(cfg.t_ccd_s_cycles)),
                ],
            ));
        }
        if cfg.t_rrd_l_ns > 0.0 && cfg.t_rrd_l_ns < cfg.t_rrd_ns {
            out.push(Diagnostic::new(
                "trrd-ladder",
                gen,
                format!(
                    "{gen}: t_rrd_l_ns ({}) must be >= t_rrd_ns ({}): the \
                     same-group ACT spacing is the longer one",
                    cfg.t_rrd_l_ns, cfg.t_rrd_ns
                ),
                vec![("t_rrd_l_ns", cfg.t_rrd_l_ns), ("t_rrd_ns", cfg.t_rrd_ns)],
            ));
        }
    } else if cfg.bank_groups != 1 {
        out.push(Diagnostic::new(
            "bank-groups-collapsed",
            gen,
            format!("{gen} has no bank groups: bank_groups must be 1"),
            vec![("bank_groups", f64::from(cfg.bank_groups))],
        ));
    }
    if gen.has_deep_power_down() {
        if !cfg.t_xdpd_ns.is_finite() || cfg.t_xdpd_ns <= cfg.t_xpdll_ns {
            out.push(Diagnostic::new(
                "xdpd-exceeds-xpdll",
                gen,
                format!(
                    "{gen}: deep power-down exit t_xdpd_ns ({}) must exceed \
                     the slow-exit latency t_xpdll_ns ({})",
                    cfg.t_xdpd_ns, cfg.t_xpdll_ns
                ),
                vec![("t_xdpd_ns", cfg.t_xdpd_ns), ("t_xpdll_ns", cfg.t_xpdll_ns)],
            ));
        }
    } else if cfg.t_xdpd_ns != 0.0 {
        out.push(Diagnostic::new(
            "xdpd-zero-without-deep",
            gen,
            format!("{gen} has no deep power-down state: t_xdpd_ns must be 0"),
            vec![("t_xdpd_ns", cfg.t_xdpd_ns)],
        ));
    }
    if cfg.per_bank_refresh {
        if gen != MemGeneration::Lpddr3 {
            out.push(Diagnostic::new(
                "refpb-generation",
                gen,
                format!(
                    "{gen} has no per-bank refresh: per_bank_refresh must be \
                     false"
                ),
                vec![("per_bank_refresh", 1.0)],
            ));
        } else if !cfg.t_rfc_pb_ns.is_finite()
            || cfg.t_rfc_pb_ns <= 0.0
            || cfg.t_rfc_pb_ns >= cfg.t_rfc_ns
        {
            out.push(Diagnostic::new(
                "refpb-duration",
                gen,
                format!(
                    "{gen}: per-bank refresh t_rfc_pb_ns ({}) must be \
                     positive and < the all-bank t_rfc_ns ({})",
                    cfg.t_rfc_pb_ns, cfg.t_rfc_ns
                ),
                vec![("t_rfc_pb_ns", cfg.t_rfc_pb_ns), ("t_rfc_ns", cfg.t_rfc_ns)],
            ));
        }
    }
}

/// Cross-section invariants tying a timing table to the physical topology
/// (shared by [`crate::config::SystemConfig::validate`] and the analyzer).
pub fn check_system_timing(banks_per_rank: u8, cfg: &DramTimingConfig) -> Vec<Diagnostic> {
    let gen = cfg.generation;
    let mut out = Vec::new();
    if cfg.bank_groups > 0 && !banks_per_rank.is_multiple_of(cfg.bank_groups) {
        out.push(Diagnostic::new(
            "bank-group-divisibility",
            gen,
            format!(
                "{gen}: banks_per_rank ({banks_per_rank}) must be divisible by \
                 bank_groups ({}) for the round-robin group mapping",
                cfg.bank_groups
            ),
            vec![
                ("banks_per_rank", f64::from(banks_per_rank)),
                ("bank_groups", f64::from(cfg.bank_groups)),
            ],
        ));
    }
    if cfg.per_bank_refresh && banks_per_rank > 0 && cfg.refresh_commands > 0 {
        let refi_pb_ns =
            cfg.refresh_period_ms * 1e6 / cfg.refresh_commands as f64 / f64::from(banks_per_rank);
        if cfg.t_rfc_pb_ns >= refi_pb_ns {
            out.push(Diagnostic::new(
                "refpb-duty",
                gen,
                format!(
                    "{gen}: t_rfc_pb_ns ({}) must be < the per-bank refresh \
                     interval tREFI/banks ({refi_pb_ns} ns)",
                    cfg.t_rfc_pb_ns
                ),
                vec![
                    ("t_rfc_pb_ns", cfg.t_rfc_pb_ns),
                    ("tREFI_pb_ns", refi_pb_ns),
                ],
            ));
        }
    }
    out
}

/// Static IDD/power-table invariants for one generation.
///
/// The orderings mirror how the power model consumes the currents: powerdown
/// states must not draw more than the standby states they undercut, burst
/// and refresh currents dominate standby, and the deep power-down floor must
/// stay below the *frequency-scaled* precharge-powerdown current at every
/// grid point (`i_dpd_ma` does not scale with frequency, so the binding
/// comparison is at the slowest point).
pub fn check_power(power: &PowerConfig, generation: MemGeneration) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let non_negative = [
        ("i_act_pre_ma", power.i_act_pre_ma),
        ("i_pre_stby_ma", power.i_pre_stby_ma),
        ("i_pre_pd_ma", power.i_pre_pd_ma),
        ("i_act_stby_ma", power.i_act_stby_ma),
        ("i_act_pd_ma", power.i_act_pd_ma),
        ("i_rd_ma", power.i_rd_ma),
        ("i_wr_ma", power.i_wr_ma),
        ("i_ref_ma", power.i_ref_ma),
        ("i_dpd_ma", power.i_dpd_ma),
        ("term_w_per_dimm", power.term_w_per_dimm),
        ("pll_w", power.pll_w),
        ("reg_w_peak", power.reg_w_peak),
        ("mc_w_peak", power.mc_w_peak),
    ];
    let mut sane = true;
    for (name, v) in non_negative {
        if v < 0.0 || !v.is_finite() {
            sane = false;
            out.push(Diagnostic::new(
                "power-nonnegative",
                generation,
                format!("{name} must be >= 0"),
                vec![(name, v)],
            ));
        }
    }
    if power.vdd <= 0.0 || !power.vdd.is_finite() {
        out.push(Diagnostic::new(
            "vdd-positive",
            generation,
            "vdd must be > 0",
            vec![("vdd", power.vdd)],
        ));
    }
    if !sane {
        return out; // orderings over garbage values only cascade
    }
    let orderings: [(&'static str, &'static str, f64, &'static str, f64); 8] = [
        (
            "idd-powerdown-undercuts-standby",
            "i_pre_pd_ma",
            power.i_pre_pd_ma,
            "i_pre_stby_ma",
            power.i_pre_stby_ma,
        ),
        (
            "idd-powerdown-undercuts-standby",
            "i_act_pd_ma",
            power.i_act_pd_ma,
            "i_act_stby_ma",
            power.i_act_stby_ma,
        ),
        (
            "idd-precharge-pd-floor",
            "i_pre_pd_ma",
            power.i_pre_pd_ma,
            "i_act_pd_ma",
            power.i_act_pd_ma,
        ),
        (
            "idd-activate-peak",
            "i_act_stby_ma",
            power.i_act_stby_ma,
            "i_act_pre_ma",
            power.i_act_pre_ma,
        ),
        (
            "idd-burst-dominates-standby",
            "i_act_stby_ma",
            power.i_act_stby_ma,
            "i_rd_ma",
            power.i_rd_ma,
        ),
        (
            "idd-burst-dominates-standby",
            "i_act_stby_ma",
            power.i_act_stby_ma,
            "i_wr_ma",
            power.i_wr_ma,
        ),
        (
            "idd-refresh-dominates-standby",
            "i_act_stby_ma",
            power.i_act_stby_ma,
            "i_ref_ma",
            power.i_ref_ma,
        ),
        (
            "idd-burst-dominates-activate",
            "i_act_pre_ma",
            power.i_act_pre_ma,
            "i_rd_ma",
            power.i_rd_ma,
        ),
    ];
    for (invariant, lo_name, lo, hi_name, hi) in orderings {
        if lo > hi {
            out.push(Diagnostic::new(
                invariant,
                generation,
                format!("{lo_name} ({lo} mA) must be <= {hi_name} ({hi} mA)"),
                vec![(lo_name, lo), (hi_name, hi)],
            ));
        }
    }
    if generation.has_deep_power_down() {
        // Binding at the slowest grid point: powerdown currents scale with
        // frequency, the gated deep power-down floor does not.
        let scaled_pre_pd = power.i_pre_pd_ma * MemFreq::MIN.relative();
        if power.i_dpd_ma <= 0.0 || power.i_dpd_ma >= scaled_pre_pd {
            out.push(Diagnostic::new(
                "idd-deep-floor",
                generation,
                format!(
                    "deep power-down current i_dpd_ma ({} mA) must be positive \
                     and below the frequency-scaled precharge-powerdown \
                     current at {} ({scaled_pre_pd} mA)",
                    power.i_dpd_ma,
                    MemFreq::MIN
                ),
                vec![
                    ("i_dpd_ma", power.i_dpd_ma),
                    ("i_pre_pd_ma", power.i_pre_pd_ma),
                ],
            ));
        }
    } else if power.i_dpd_ma != 0.0 {
        out.push(Diagnostic::new(
            "idd-deep-absent",
            generation,
            format!("{generation} has no deep power-down state: i_dpd_ma must be 0"),
            vec![("i_dpd_ma", power.i_dpd_ma)],
        ));
    }
    out
}

// --- declarative FSM transition tables -------------------------------------

/// A generation capability gating an FSM state or transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FsmFeature {
    /// The generation has a deep power-down rank state.
    DeepPowerDown,
    /// The generation splits banks into bank groups.
    BankGroups,
    /// The generation refreshes one bank at a time.
    PerBankRefresh,
}

impl FsmFeature {
    /// Whether `generation` provides this capability.
    pub fn enabled(self, generation: MemGeneration) -> bool {
        match self {
            FsmFeature::DeepPowerDown => generation.has_deep_power_down(),
            FsmFeature::BankGroups => generation.has_bank_groups(),
            FsmFeature::PerBankRefresh => generation == MemGeneration::Lpddr3,
        }
    }
}

/// One row of an [`FsmSpec`] transition table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FsmTransition {
    /// Source state.
    pub from: &'static str,
    /// Triggering event.
    pub event: &'static str,
    /// Destination state.
    pub to: &'static str,
    /// The timing parameter paid as exit latency on this transition, if
    /// any. Every transition leaving a low-power state must carry one, and
    /// the model checker verifies the parameter exists (is positive) in the
    /// generation's table.
    pub exit_param: Option<TimingParam>,
    /// Generation capability required for this transition to exist.
    pub requires: Option<FsmFeature>,
}

/// A finite state machine published as data: states, events, and an
/// exhaustive transition table.
///
/// The owning crate (the rank power-state machine in `memscale-dram`, the
/// governor hardening ladder in `memscale`) declares its structure here and
/// keeps unit tests proving the executable implementation agrees; the
/// `memscale-check` model checker then proves determinism, reachability,
/// absence of sink states and exit-latency coverage by enumeration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FsmSpec {
    /// Machine name used in diagnostics (e.g. `rank-power`).
    pub name: &'static str,
    /// Every state.
    pub states: &'static [&'static str],
    /// Every event the machine reacts to.
    pub events: &'static [&'static str],
    /// The reset state.
    pub initial: &'static str,
    /// The fully-operational state every state must be able to return to
    /// (the model checker's liveness anchor).
    pub operational: &'static str,
    /// States representing a low-power residency whose exits must be timed.
    pub low_power: &'static [&'static str],
    /// Generation capabilities required for a state to exist at all.
    pub state_requires: &'static [(&'static str, FsmFeature)],
    /// The transition table. Pairs `(from, event)` without a row are
    /// rejections: the machine refuses the event in that state (the
    /// implementation asserts or ignores), which the checker treats as
    /// intentional.
    pub transitions: &'static [FsmTransition],
}

impl FsmSpec {
    /// Whether `state` exists for `generation`.
    pub fn state_active(&self, state: &str, generation: MemGeneration) -> bool {
        self.state_requires
            .iter()
            .all(|&(s, feature)| s != state || feature.enabled(generation))
    }

    /// The transitions active for `generation` (feature-gated rows and rows
    /// touching gated-out states are dropped).
    pub fn active_transitions(
        &self,
        generation: MemGeneration,
    ) -> impl Iterator<Item = &FsmTransition> {
        self.transitions.iter().filter(move |t| {
            t.requires.is_none_or(|f| f.enabled(generation))
                && self.state_active(t.from, generation)
                && self.state_active(t.to, generation)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_tables_are_clean() {
        for gen in MemGeneration::ALL {
            let timing = DramTimingConfig::for_generation(gen);
            let diags = check_timing(&timing);
            assert!(diags.is_empty(), "{gen}: {diags:?}");
            let power = PowerConfig::for_generation(gen);
            let diags = check_power(&power, gen);
            assert!(diags.is_empty(), "{gen}: {diags:?}");
        }
    }

    #[test]
    fn param_universe_is_exhaustive_and_distinct() {
        let mut fields: Vec<&str> = TimingParam::ALL.iter().map(|p| p.field()).collect();
        fields.sort_unstable();
        fields.dedup();
        assert_eq!(fields.len(), TimingParam::ALL.len());
        // Spot-check values read the right fields.
        let cfg = DramTimingConfig::ddr4();
        assert_eq!(TimingParam::TRcd.value(&cfg), 13.75);
        assert_eq!(TimingParam::BankGroups.value(&cfg), 4.0);
        assert_eq!(TimingParam::PerBankRefresh.value(&cfg), 0.0);
    }

    #[test]
    fn relevance_tracks_generation_capabilities() {
        assert!(!TimingParam::TCcdL.relevant_for(MemGeneration::Ddr3));
        assert!(TimingParam::TCcdL.relevant_for(MemGeneration::Ddr4));
        assert!(TimingParam::TXdpd.relevant_for(MemGeneration::Lpddr3));
        assert!(!TimingParam::TXdpd.relevant_for(MemGeneration::Ddr4));
        assert!(TimingParam::TRcd.relevant_for(MemGeneration::Lpddr3));
    }

    #[test]
    fn diagnostics_name_invariant_and_params() {
        let cfg = DramTimingConfig {
            t_ras_ns: 20.0,
            ..DramTimingConfig::default()
        };
        let diags = check_timing(&cfg);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].invariant, "tras-covers-rcd-rtp");
        assert!(diags[0].params.contains(&("t_ras_ns", 20.0)));
        let shown = diags[0].to_string();
        assert!(shown.contains("tras-covers-rcd-rtp") && shown.contains("t_ras_ns"));
    }

    #[test]
    fn garbage_values_do_not_cascade_into_cross_checks() {
        let cfg = DramTimingConfig {
            t_ras_ns: f64::NAN,
            ..DramTimingConfig::default()
        };
        let diags = check_timing(&cfg);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].invariant, "param-positive");
    }

    #[test]
    fn new_ladder_invariants_fire() {
        let cfg = DramTimingConfig {
            t_xp_ns: 30.0, // above tXPDLL (24)
            ..DramTimingConfig::default()
        };
        let diags = check_timing(&cfg);
        assert!(diags.iter().any(|d| d.invariant == "powerdown-exit-ladder"));

        let cfg = DramTimingConfig {
            t_ccd_s_cycles: 5,
            ..DramTimingConfig::default()
        };
        let diags = check_timing(&cfg);
        assert!(diags.iter().any(|d| d.invariant == "tccds-matches-burst"));

        let cfg = DramTimingConfig {
            relock_extra_ns: -1.0,
            ..DramTimingConfig::default()
        };
        let diags = check_timing(&cfg);
        assert!(diags
            .iter()
            .any(|d| d.invariant == "relock-extra-nonnegative"));
    }

    #[test]
    fn system_timing_checks_cover_topology_couplings() {
        let cfg = DramTimingConfig::ddr4();
        assert!(check_system_timing(16, &cfg).is_empty());
        let diags = check_system_timing(6, &cfg);
        assert_eq!(diags[0].invariant, "bank-group-divisibility");

        let lp = DramTimingConfig::lpddr3();
        assert!(check_system_timing(8, &lp).is_empty());
        let tight = DramTimingConfig {
            t_rfc_pb_ns: 2_000.0, // above tREFI/banks (~977 ns) but below tRFC? no — keep below tRFC via larger t_rfc
            t_rfc_ns: 3_000.0,
            ..DramTimingConfig::lpddr3()
        };
        let diags = check_system_timing(8, &tight);
        assert!(diags.iter().any(|d| d.invariant == "refpb-duty"));
    }

    #[test]
    fn power_orderings_fire_on_inversion() {
        let base = PowerConfig::default();
        let p = PowerConfig {
            i_pre_pd_ma: base.i_pre_stby_ma + 1.0,
            ..base
        };
        let diags = check_power(&p, MemGeneration::Ddr3);
        assert!(diags
            .iter()
            .any(|d| d.invariant == "idd-powerdown-undercuts-standby"));

        let base = PowerConfig::lpddr3();
        let p = PowerConfig {
            i_dpd_ma: base.i_pre_pd_ma, // not a floor any more
            ..base
        };
        let diags = check_power(&p, MemGeneration::Lpddr3);
        assert!(diags.iter().any(|d| d.invariant == "idd-deep-floor"));

        let p = PowerConfig {
            i_dpd_ma: 1.0,
            ..PowerConfig::default()
        };
        let diags = check_power(&p, MemGeneration::Ddr3);
        assert!(diags.iter().any(|d| d.invariant == "idd-deep-absent"));
    }

    #[test]
    fn fsm_feature_gating() {
        assert!(FsmFeature::DeepPowerDown.enabled(MemGeneration::Lpddr3));
        assert!(!FsmFeature::DeepPowerDown.enabled(MemGeneration::Ddr3));
        assert!(FsmFeature::BankGroups.enabled(MemGeneration::Ddr4));
        assert!(FsmFeature::PerBankRefresh.enabled(MemGeneration::Lpddr3));
    }
}
