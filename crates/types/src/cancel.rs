//! Cooperative cancellation token shared between the serving layer and the
//! simulation engine.
//!
//! A [`CancelToken`] is a cheap clonable flag: the owner (the sweep server's
//! per-cell watchdog, a deadline, a drain sequence) raises it once, and the
//! worker checks it at safe points (the engine checks between epochs). The
//! token never interrupts anything by force — a run that ignores it keeps
//! running, which is exactly why the server pairs it with a watchdog that
//! converts a stuck cell into a structured `cell_timeout` result.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A shared one-way cancellation flag. Cloning shares the flag; once
/// [`CancelToken::cancel`] is called every clone observes it.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, unraised token.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Raises the flag. Idempotent; never blocks.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Whether the flag has been raised.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }

    /// The underlying shared flag, for consumers that must stay free of
    /// this crate's types (the vendored worker pool takes the raw
    /// `Arc<AtomicBool>`).
    pub fn flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.flag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_the_flag() {
        let token = CancelToken::new();
        let clone = token.clone();
        assert!(!token.is_cancelled() && !clone.is_cancelled());
        clone.cancel();
        assert!(token.is_cancelled() && clone.is_cancelled());
        token.cancel(); // idempotent
        assert!(token.is_cancelled());
    }

    #[test]
    fn raw_flag_observes_cancellation() {
        let token = CancelToken::new();
        let raw = token.flag();
        assert!(!raw.load(Ordering::Acquire));
        token.cancel();
        assert!(raw.load(Ordering::Acquire));
    }
}
