//! System configuration mirroring Table 2 of the paper.
//!
//! All structs here are plain data: the DRAM crate interprets
//! [`DramTimingConfig`], the power crate interprets [`PowerConfig`], and the
//! simulator wires everything together from one [`SystemConfig`].

use crate::time::Picos;

/// Errors raised when validating a configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    message: String,
}

impl ConfigError {
    pub(crate) fn new(message: impl Into<String>) -> Self {
        ConfigError {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid configuration: {}", self.message)
    }
}

impl std::error::Error for ConfigError {}

/// The DRAM standard a [`DramTimingConfig`] describes.
///
/// The paper evaluates DDR3 only; the simulator keeps its mechanism
/// (MC DVFS + channel/DIMM DFS) generation-agnostic and lets the device
/// model plug in later standards:
///
/// * [`MemGeneration::Ddr3`] — Table 2's device, the default everywhere.
/// * [`MemGeneration::Ddr4`] — adds bank groups with split CAS-to-CAS
///   spacing (`tCCD_S`/`tCCD_L`) and same-bank-group `tRRD_L`.
/// * [`MemGeneration::Lpddr3`] — adds deep power-down (a third rank
///   low-power state with exit latency above `tXPDLL` but far cheaper
///   background power) and per-bank refresh.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum MemGeneration {
    /// DDR3 (the paper's Table 2 device).
    #[default]
    Ddr3,
    /// DDR4: bank groups, `tCCD_S`/`tCCD_L`, `tRRD_L`, tighter `tFAW`.
    Ddr4,
    /// LPDDR3: deep power-down and per-bank refresh.
    Lpddr3,
}

impl MemGeneration {
    /// Every supported generation, in introduction order.
    pub const ALL: [MemGeneration; 3] = [
        MemGeneration::Ddr3,
        MemGeneration::Ddr4,
        MemGeneration::Lpddr3,
    ];

    /// Display name matching the JEDEC standard (`DDR3`, `DDR4`, `LPDDR3`).
    pub fn name(&self) -> &'static str {
        match self {
            MemGeneration::Ddr3 => "DDR3",
            MemGeneration::Ddr4 => "DDR4",
            MemGeneration::Lpddr3 => "LPDDR3",
        }
    }

    /// Whether the standard splits banks into bank groups with a longer
    /// same-group CAS-to-CAS spacing.
    #[inline]
    pub fn has_bank_groups(&self) -> bool {
        matches!(self, MemGeneration::Ddr4)
    }

    /// Whether the standard offers a deep power-down rank state below
    /// slow-exit precharge powerdown.
    #[inline]
    pub fn has_deep_power_down(&self) -> bool {
        matches!(self, MemGeneration::Lpddr3)
    }

    /// Parses a case-insensitive generation name (`ddr3`/`ddr4`/`lpddr3`).
    pub fn parse(name: &str) -> Option<MemGeneration> {
        match name.to_ascii_lowercase().as_str() {
            "ddr3" => Some(MemGeneration::Ddr3),
            "ddr4" => Some(MemGeneration::Ddr4),
            "lpddr3" => Some(MemGeneration::Lpddr3),
            _ => None,
        }
    }

    /// Stable one-byte wire code used by serialized artifacts (trace file
    /// headers). Codes are append-only: existing values never change, new
    /// generations take the next free code.
    #[inline]
    pub const fn code(self) -> u8 {
        match self {
            MemGeneration::Ddr3 => 0,
            MemGeneration::Ddr4 => 1,
            MemGeneration::Lpddr3 => 2,
        }
    }

    /// Decodes a [`Self::code`] wire code back into a generation.
    pub const fn from_code(code: u8) -> Option<MemGeneration> {
        match code {
            0 => Some(MemGeneration::Ddr3),
            1 => Some(MemGeneration::Ddr4),
            2 => Some(MemGeneration::Lpddr3),
            _ => None,
        }
    }
}

impl std::fmt::Display for MemGeneration {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Physical organization of the memory subsystem.
///
/// Defaults to Table 2: 4 DDR3 channels, each with two registered dual-rank
/// DIMMs of 18 x8 DRAM chips (ECC), 8 banks per rank.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Topology {
    /// Number of independent memory channels.
    pub channels: u8,
    /// DIMMs per channel.
    pub dimms_per_channel: u8,
    /// Ranks per DIMM.
    pub ranks_per_dimm: u8,
    /// Banks per rank (8 for DDR3).
    pub banks_per_rank: u8,
    /// Rows per bank (folds column bits; used only for address wrapping).
    pub rows_per_bank: u64,
    /// DRAM chips participating in each rank access (9 for x8 + ECC).
    pub chips_per_rank: u8,
}

impl Default for Topology {
    fn default() -> Self {
        Topology {
            channels: 4,
            dimms_per_channel: 2,
            ranks_per_dimm: 2,
            banks_per_rank: 8,
            rows_per_bank: 32_768,
            chips_per_rank: 9,
        }
    }
}

impl Topology {
    /// Ranks per channel (DIMMs × ranks-per-DIMM).
    #[inline]
    pub fn ranks_per_channel(&self) -> u8 {
        self.dimms_per_channel * self.ranks_per_dimm
    }

    /// Total ranks in the system.
    #[inline]
    pub fn total_ranks(&self) -> usize {
        self.channels as usize * self.ranks_per_channel() as usize
    }

    /// Total DIMMs in the system.
    #[inline]
    pub fn total_dimms(&self) -> usize {
        self.channels as usize * self.dimms_per_channel as usize
    }

    /// Checks that every dimension is non-zero.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] naming the offending field.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.channels == 0 {
            return Err(ConfigError::new("channels must be > 0"));
        }
        if self.dimms_per_channel == 0 {
            return Err(ConfigError::new("dimms_per_channel must be > 0"));
        }
        if self.ranks_per_dimm == 0 {
            return Err(ConfigError::new("ranks_per_dimm must be > 0"));
        }
        if self.banks_per_rank == 0 {
            return Err(ConfigError::new("banks_per_rank must be > 0"));
        }
        if self.rows_per_bank == 0 {
            return Err(ConfigError::new("rows_per_bank must be > 0"));
        }
        if self.chips_per_rank == 0 {
            return Err(ConfigError::new("chips_per_rank must be > 0"));
        }
        Ok(())
    }
}

/// CPU-side parameters (Table 2: 16 in-order single-thread cores at 4 GHz).
#[derive(Debug, Clone, PartialEq)]
pub struct CpuConfig {
    /// Number of cores; one application instance per core.
    pub cores: usize,
    /// Core clock in GHz.
    pub freq_ghz: f64,
    /// Default cycles-per-instruction of non-LLC-missing work (the paper's
    /// fixed `E[TPI_cpu]·F_cpu`). Application profiles may override it.
    pub base_cpi: f64,
}

impl Default for CpuConfig {
    fn default() -> Self {
        CpuConfig {
            cores: 16,
            freq_ghz: 4.0,
            base_cpi: 1.0,
        }
    }
}

impl CpuConfig {
    /// Duration of one core cycle.
    #[inline]
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)] // freq_ghz is validated positive
    pub fn cycle(&self) -> Picos {
        Picos::from_ps((1_000.0 / self.freq_ghz).round() as u64)
    }

    /// Checks for physically sensible values.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] naming the offending field.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.cores == 0 {
            return Err(ConfigError::new("cores must be > 0"));
        }
        if self.freq_ghz <= 0.0 || !self.freq_ghz.is_finite() {
            return Err(ConfigError::new("freq_ghz must be > 0"));
        }
        if self.base_cpi <= 0.0 || !self.base_cpi.is_finite() {
            return Err(ConfigError::new("base_cpi must be > 0"));
        }
        Ok(())
    }
}

/// DRAM timing parameters (Table 2 for the DDR3 default; see
/// [`DramTimingConfig::ddr4`] and [`DramTimingConfig::lpddr3`] for the other
/// generations).
///
/// DRAM-core operations are stored in wall-clock nanoseconds because scaling
/// the channel frequency does not change them (§2.2); parameters given in
/// cycles in Table 2 are converted at the 800 MHz reference. Burst length,
/// CAS-to-CAS spacing and MC pipeline depth are stored in cycles because
/// they *do* scale.
#[derive(Debug, Clone, PartialEq)]
pub struct DramTimingConfig {
    /// Which DRAM standard these parameters describe. Selects the audit
    /// rule pack and enables the generation-specific engine features
    /// (bank groups, deep power-down, per-bank refresh).
    pub generation: MemGeneration,
    /// Bank groups per rank (1 when the generation has none; DDR4: 4).
    /// Banks are assigned round-robin: group = bank index mod `bank_groups`.
    pub bank_groups: u8,
    /// CAS-to-CAS spacing to a *different* bank group, in bus cycles
    /// (`tCCD_S`; equals the burst length on every generation).
    pub t_ccd_s_cycles: u32,
    /// CAS-to-CAS spacing within the *same* bank group, in bus cycles
    /// (`tCCD_L`; DDR4: 6 cycles — the shared bank-group datapath cannot
    /// stream back-to-back bursts).
    pub t_ccd_l_cycles: u32,
    /// ACT-to-ACT spacing within the same bank group (ns, `tRRD_L`).
    /// Generations without bank groups set it equal to `t_rrd_ns`.
    pub t_rrd_l_ns: f64,
    /// Exit latency from deep power-down (ns). Only meaningful when the
    /// generation has deep power-down; must then exceed `t_xpdll_ns`.
    pub t_xdpd_ns: f64,
    /// Refresh one bank at a time (LPDDR per-bank refresh, `REFpb`) instead
    /// of all-bank refresh: one REF per bank per `tREFI`, each lasting
    /// `t_rfc_pb_ns` instead of `t_rfc_ns`.
    pub per_bank_refresh: bool,
    /// Duration of one per-bank refresh command (ns, `tRFCpb`); unused
    /// unless `per_bank_refresh` is set.
    pub t_rfc_pb_ns: f64,
    /// Row activate: RAS-to-CAS delay (ns).
    pub t_rcd_ns: f64,
    /// Row precharge time (ns).
    pub t_rp_ns: f64,
    /// Column access (CAS) latency (ns).
    pub t_cl_ns: f64,
    /// Minimum ACT-to-PRE interval (ns; 28 cycles @ 800 MHz).
    pub t_ras_ns: f64,
    /// ACT-to-ACT different banks, same rank (ns; 4 cycles @ 800 MHz).
    pub t_rrd_ns: f64,
    /// Four-activate window per rank (ns; 20 cycles @ 800 MHz).
    pub t_faw_ns: f64,
    /// Read-to-precharge (ns; 5 cycles @ 800 MHz).
    pub t_rtp_ns: f64,
    /// Write recovery time before precharge (ns).
    pub t_wr_ns: f64,
    /// Data burst length in bus cycles (4 for a 64-byte line on DDR3).
    pub burst_cycles: u32,
    /// Exit latency from fast-exit (precharge) powerdown (ns).
    pub t_xp_ns: f64,
    /// Exit latency from slow-exit powerdown / DLL-off (ns).
    pub t_xpdll_ns: f64,
    /// All-rows refresh period (ms); per-rank refreshes are spread evenly.
    pub refresh_period_ms: f64,
    /// Number of refresh commands per refresh period (rows of refresh).
    pub refresh_commands: u64,
    /// Duration of one refresh command, tRFC (ns).
    pub t_rfc_ns: f64,
    /// Frequency-relock penalty: memory cycles (at the *new* frequency)...
    pub relock_cycles: u64,
    /// ...plus this fixed overhead (ns). Paper: 512 cycles + 28 ns.
    pub relock_extra_ns: f64,
    /// MC request-processing pipeline depth in MC cycles (§3.3: five).
    pub mc_pipeline_cycles: u32,
}

impl Default for DramTimingConfig {
    fn default() -> Self {
        // Cycle-denominated Table 2 entries converted at 800 MHz (1.25 ns).
        DramTimingConfig {
            generation: MemGeneration::Ddr3,
            bank_groups: 1,
            t_ccd_s_cycles: 4,
            t_ccd_l_cycles: 4,
            t_rrd_l_ns: 4.0 * 1.25,
            t_xdpd_ns: 0.0,
            per_bank_refresh: false,
            t_rfc_pb_ns: 0.0,
            t_rcd_ns: 15.0,
            t_rp_ns: 15.0,
            t_cl_ns: 15.0,
            t_ras_ns: 28.0 * 1.25,
            t_rrd_ns: 4.0 * 1.25,
            t_faw_ns: 20.0 * 1.25,
            t_rtp_ns: 5.0 * 1.25,
            t_wr_ns: 15.0,
            burst_cycles: 4,
            t_xp_ns: 6.0,
            t_xpdll_ns: 24.0,
            refresh_period_ms: 64.0,
            refresh_commands: 8_192,
            t_rfc_ns: 110.0,
            relock_cycles: 512,
            relock_extra_ns: 28.0,
            mc_pipeline_cycles: 5,
        }
    }
}

impl DramTimingConfig {
    /// DDR4-1600-class timing: four bank groups with split CAS-to-CAS
    /// spacing (`tCCD_S` 4 cycles / `tCCD_L` 6 cycles), same-bank-group
    /// `tRRD_L`, and a tighter four-activate window than DDR3.
    pub fn ddr4() -> Self {
        DramTimingConfig {
            generation: MemGeneration::Ddr4,
            bank_groups: 4,
            t_ccd_s_cycles: 4,
            t_ccd_l_cycles: 6,
            t_rrd_l_ns: 7.5,
            t_rcd_ns: 13.75,
            t_rp_ns: 13.75,
            t_cl_ns: 13.75,
            t_ras_ns: 35.0,
            t_rrd_ns: 5.0,
            t_faw_ns: 20.0,
            t_rtp_ns: 7.5,
            t_rfc_ns: 160.0,
            ..DramTimingConfig::default()
        }
    }

    /// LPDDR3-1600-class timing: deep power-down as a third rank low-power
    /// state (exit far above `tXPDLL`, background power far below `IDD2P`)
    /// and per-bank refresh (`tRFCpb` per bank instead of one all-bank
    /// `tRFCab` per `tREFI`).
    pub fn lpddr3() -> Self {
        DramTimingConfig {
            generation: MemGeneration::Lpddr3,
            t_xdpd_ns: 500.0,
            per_bank_refresh: true,
            t_rfc_pb_ns: 60.0,
            t_rcd_ns: 18.0,
            t_rp_ns: 18.0,
            t_cl_ns: 15.0,
            t_ras_ns: 42.0,
            t_rrd_ns: 10.0,
            t_rrd_l_ns: 10.0,
            t_faw_ns: 50.0,
            t_rtp_ns: 7.5,
            t_xp_ns: 7.5,
            t_rfc_ns: 130.0,
            ..DramTimingConfig::default()
        }
    }

    /// The reference timing for `generation` (DDR3 is [`Default`]).
    pub fn for_generation(generation: MemGeneration) -> Self {
        match generation {
            MemGeneration::Ddr3 => DramTimingConfig::default(),
            MemGeneration::Ddr4 => DramTimingConfig::ddr4(),
            MemGeneration::Lpddr3 => DramTimingConfig::lpddr3(),
        }
    }

    /// The bank group a bank belongs to (round-robin assignment).
    ///
    /// Shared by the engine and the independent auditor so the two can
    /// never disagree on the mapping.
    #[inline]
    pub fn bank_group_of(&self, bank: crate::ids::BankId) -> usize {
        bank.index() % (self.bank_groups.max(1) as usize)
    }

    /// tRCD as simulator time.
    #[inline]
    pub fn t_rcd(&self) -> Picos {
        Picos::from_ns_f64(self.t_rcd_ns)
    }
    /// tRP as simulator time.
    #[inline]
    pub fn t_rp(&self) -> Picos {
        Picos::from_ns_f64(self.t_rp_ns)
    }
    /// tCL as simulator time.
    #[inline]
    pub fn t_cl(&self) -> Picos {
        Picos::from_ns_f64(self.t_cl_ns)
    }
    /// tRAS as simulator time.
    #[inline]
    pub fn t_ras(&self) -> Picos {
        Picos::from_ns_f64(self.t_ras_ns)
    }
    /// tRRD as simulator time.
    #[inline]
    pub fn t_rrd(&self) -> Picos {
        Picos::from_ns_f64(self.t_rrd_ns)
    }
    /// tFAW as simulator time.
    #[inline]
    pub fn t_faw(&self) -> Picos {
        Picos::from_ns_f64(self.t_faw_ns)
    }
    /// tRTP as simulator time.
    #[inline]
    pub fn t_rtp(&self) -> Picos {
        Picos::from_ns_f64(self.t_rtp_ns)
    }
    /// tWR as simulator time.
    #[inline]
    pub fn t_wr(&self) -> Picos {
        Picos::from_ns_f64(self.t_wr_ns)
    }
    /// Fast-exit powerdown exit latency.
    #[inline]
    pub fn t_xp(&self) -> Picos {
        Picos::from_ns_f64(self.t_xp_ns)
    }
    /// Slow-exit powerdown exit latency.
    #[inline]
    pub fn t_xpdll(&self) -> Picos {
        Picos::from_ns_f64(self.t_xpdll_ns)
    }
    /// tRFC as simulator time.
    #[inline]
    pub fn t_rfc(&self) -> Picos {
        Picos::from_ns_f64(self.t_rfc_ns)
    }
    /// Average interval between refresh commands (tREFI).
    #[inline]
    pub fn t_refi(&self) -> Picos {
        Picos::from_ns_f64(self.refresh_period_ms * 1e6 / self.refresh_commands as f64)
    }
    /// Same-bank-group ACT-to-ACT spacing (`tRRD_L`) as simulator time.
    #[inline]
    pub fn t_rrd_l(&self) -> Picos {
        Picos::from_ns_f64(self.t_rrd_l_ns)
    }
    /// Deep power-down exit latency as simulator time.
    #[inline]
    pub fn t_xdpd(&self) -> Picos {
        Picos::from_ns_f64(self.t_xdpd_ns)
    }
    /// Per-bank refresh duration (`tRFCpb`) as simulator time.
    #[inline]
    pub fn t_rfc_pb(&self) -> Picos {
        Picos::from_ns_f64(self.t_rfc_pb_ns)
    }

    /// Checks for physically sensible values.
    ///
    /// The checks themselves live in [`crate::invariants::check_timing`],
    /// shared with the `memscale-check` static analyzer so startup
    /// validation and `memscale-sim check` can never disagree on what a
    /// legal table is. This method reports the first violated invariant.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] naming the offending field(s).
    pub fn validate(&self) -> Result<(), ConfigError> {
        match crate::invariants::check_timing(self).into_iter().next() {
            None => Ok(()),
            Some(d) => Err(ConfigError::new(d.message)),
        }
    }
}

/// Power-model constants (Table 2 currents plus §4.1 MC/register/PLL data).
///
/// DRAM currents are per chip, in milliamps, at the 800 MHz reference
/// frequency and `vdd` volts. Background (standby/powerdown) currents scale
/// linearly with channel frequency, following §2.2 ("lowering frequency
/// lowers background and register/PLL powers linearly").
#[derive(Debug, Clone, PartialEq)]
pub struct PowerConfig {
    /// DRAM supply voltage (V).
    pub vdd: f64,
    /// Activate-precharge current, IDD0-like (mA).
    pub i_act_pre_ma: f64,
    /// Precharge standby current, IDD2N (mA).
    pub i_pre_stby_ma: f64,
    /// Precharge powerdown current, IDD2P (mA).
    pub i_pre_pd_ma: f64,
    /// Active standby current, IDD3N (mA).
    pub i_act_stby_ma: f64,
    /// Active powerdown current, IDD3P (mA).
    pub i_act_pd_ma: f64,
    /// Burst read current, IDD4R (mA).
    pub i_rd_ma: f64,
    /// Burst write current, IDD4W (mA).
    pub i_wr_ma: f64,
    /// Refresh current, IDD5 (mA).
    pub i_ref_ma: f64,
    /// Deep power-down current (mA per chip). Unlike the standby and
    /// powerdown currents it does *not* scale with channel frequency — the
    /// clock tree is gated entirely. Zero for generations without deep
    /// power-down.
    pub i_dpd_ma: f64,
    /// Termination power dissipated in each *non-target* DIMM on a channel
    /// while a burst is in flight (W per DIMM).
    pub term_w_per_dimm: f64,
    /// PLL power per DIMM at 800 MHz (W); scales linearly with frequency,
    /// not with utilization.
    pub pll_w: f64,
    /// Register peak power per DIMM at 800 MHz and full utilization (W).
    pub reg_w_peak: f64,
    /// Memory-controller peak power at 800 MHz bus / 1.2 V and full
    /// utilization (W). §4.1: 15 W (AMD ACP data).
    pub mc_w_peak: f64,
    /// Idle power of the MC and registers as a fraction of peak (Fig 15
    /// knob; §4.1 default 50 %).
    pub mc_reg_idle_fraction: f64,
    /// Fraction of total server power attributed to the memory subsystem at
    /// the baseline (Fig 14 knob; §4.1 default 40 %).
    pub mem_power_fraction: f64,
}

impl Default for PowerConfig {
    fn default() -> Self {
        PowerConfig {
            vdd: 1.575,
            i_act_pre_ma: 120.0,
            i_pre_stby_ma: 70.0,
            i_pre_pd_ma: 45.0,
            i_act_stby_ma: 67.0,
            i_act_pd_ma: 45.0,
            i_rd_ma: 250.0,
            i_wr_ma: 250.0,
            i_ref_ma: 240.0,
            i_dpd_ma: 0.0,
            term_w_per_dimm: 0.5,
            pll_w: 0.5,
            reg_w_peak: 0.5,
            mc_w_peak: 15.0,
            mc_reg_idle_fraction: 0.5,
            mem_power_fraction: 0.4,
        }
    }
}

impl PowerConfig {
    /// DDR4-class currents: 1.2 V supply with proportionally lower
    /// background and burst currents than the 1.575 V DDR3 part.
    pub fn ddr4() -> Self {
        PowerConfig {
            vdd: 1.2,
            i_act_pre_ma: 95.0,
            i_pre_stby_ma: 55.0,
            i_pre_pd_ma: 32.0,
            i_act_stby_ma: 52.0,
            i_act_pd_ma: 32.0,
            i_rd_ma: 210.0,
            i_wr_ma: 210.0,
            i_ref_ma: 200.0,
            ..PowerConfig::default()
        }
    }

    /// LPDDR3-class currents: 1.2 V supply, low standby currents and a
    /// deep power-down floor two orders of magnitude below `IDD2P`.
    pub fn lpddr3() -> Self {
        PowerConfig {
            vdd: 1.2,
            i_act_pre_ma: 70.0,
            i_pre_stby_ma: 28.0,
            i_pre_pd_ma: 12.0,
            i_act_stby_ma: 30.0,
            i_act_pd_ma: 14.0,
            i_rd_ma: 180.0,
            i_wr_ma: 180.0,
            i_ref_ma: 150.0,
            i_dpd_ma: 0.4,
            // Mobile-class DIMMs carry no registers and lighter PLLs.
            term_w_per_dimm: 0.25,
            pll_w: 0.25,
            reg_w_peak: 0.25,
            ..PowerConfig::default()
        }
    }

    /// The reference power constants for `generation` (DDR3 is
    /// [`Default`]).
    pub fn for_generation(generation: MemGeneration) -> Self {
        match generation {
            MemGeneration::Ddr3 => PowerConfig::default(),
            MemGeneration::Ddr4 => PowerConfig::ddr4(),
            MemGeneration::Lpddr3 => PowerConfig::lpddr3(),
        }
    }

    /// Register idle power per DIMM (W) at 800 MHz.
    #[inline]
    pub fn reg_w_idle(&self) -> f64 {
        self.reg_w_peak * self.mc_reg_idle_fraction
    }

    /// MC idle power (W) at 800 MHz / 1.2 V.
    #[inline]
    pub fn mc_w_idle(&self) -> f64 {
        self.mc_w_peak * self.mc_reg_idle_fraction
    }

    /// Checks for physically sensible values.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] naming the offending field.
    pub fn validate(&self) -> Result<(), ConfigError> {
        let non_negative = [
            ("i_act_pre_ma", self.i_act_pre_ma),
            ("i_pre_stby_ma", self.i_pre_stby_ma),
            ("i_pre_pd_ma", self.i_pre_pd_ma),
            ("i_act_stby_ma", self.i_act_stby_ma),
            ("i_act_pd_ma", self.i_act_pd_ma),
            ("i_rd_ma", self.i_rd_ma),
            ("i_wr_ma", self.i_wr_ma),
            ("i_ref_ma", self.i_ref_ma),
            ("i_dpd_ma", self.i_dpd_ma),
            ("term_w_per_dimm", self.term_w_per_dimm),
            ("pll_w", self.pll_w),
            ("reg_w_peak", self.reg_w_peak),
            ("mc_w_peak", self.mc_w_peak),
        ];
        for (name, v) in non_negative {
            if v < 0.0 || !v.is_finite() {
                return Err(ConfigError::new(format!("{name} must be >= 0")));
            }
        }
        if self.vdd <= 0.0 || !self.vdd.is_finite() {
            return Err(ConfigError::new("vdd must be > 0"));
        }
        if !(0.0..=1.0).contains(&self.mc_reg_idle_fraction) {
            return Err(ConfigError::new("mc_reg_idle_fraction must be in [0, 1]"));
        }
        if !(self.mem_power_fraction > 0.0 && self.mem_power_fraction < 1.0) {
            return Err(ConfigError::new("mem_power_fraction must be in (0, 1)"));
        }
        Ok(())
    }
}

/// Complete hardware configuration of the simulated server.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SystemConfig {
    /// Memory-subsystem organization.
    pub topology: Topology,
    /// CPU organization.
    pub cpu: CpuConfig,
    /// DDR3 timing parameters.
    pub timing: DramTimingConfig,
    /// Power-model constants.
    pub power: PowerConfig,
}

impl SystemConfig {
    /// Validates every section.
    ///
    /// # Errors
    ///
    /// Returns the first [`ConfigError`] found in any section.
    pub fn validate(&self) -> Result<(), ConfigError> {
        self.topology.validate()?;
        self.cpu.validate()?;
        self.timing.validate()?;
        self.power.validate()?;
        // Cross-section checks tying timing to topology, shared with the
        // static analyzer.
        match crate::invariants::check_system_timing(self.topology.banks_per_rank, &self.timing)
            .into_iter()
            .next()
        {
            None => Ok(()),
            Some(d) => Err(ConfigError::new(d.message)),
        }
    }

    /// The reference configuration for a memory generation: Table 2 with
    /// the timing and power sections swapped for that standard's parameters
    /// (DDR4 additionally widens each rank to 16 banks in 4 groups).
    pub fn for_generation(generation: MemGeneration) -> Self {
        let mut cfg = SystemConfig {
            timing: DramTimingConfig::for_generation(generation),
            power: PowerConfig::for_generation(generation),
            ..SystemConfig::default()
        };
        if generation == MemGeneration::Ddr4 {
            cfg.topology.banks_per_rank = 16;
        }
        cfg
    }

    /// A configuration with `channels` memory channels and everything else
    /// at Table 2 defaults (Fig 13 sweeps this).
    pub fn with_channels(channels: u8) -> Self {
        let mut cfg = SystemConfig::default();
        cfg.topology.channels = channels;
        cfg
    }

    /// A configuration with `cores` CPU cores and everything else at Table 2
    /// defaults (§4.2.4's 8- and 32-core studies sweep this).
    pub fn with_cores(cores: usize) -> Self {
        let mut cfg = SystemConfig::default();
        cfg.cpu.cores = cores;
        cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_table2() {
        let cfg = SystemConfig::default();
        assert_eq!(cfg.topology.channels, 4);
        assert_eq!(cfg.topology.total_dimms(), 8);
        assert_eq!(cfg.topology.banks_per_rank, 8);
        assert_eq!(cfg.cpu.cores, 16);
        assert_eq!(cfg.cpu.freq_ghz, 4.0);
        assert_eq!(cfg.timing.t_rcd_ns, 15.0);
        assert_eq!(cfg.timing.t_ras_ns, 35.0);
        assert_eq!(cfg.timing.t_faw_ns, 25.0);
        assert_eq!(cfg.power.vdd, 1.575);
        assert_eq!(cfg.power.i_ref_ma, 240.0);
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn refresh_interval_is_7_8_us() {
        let t = DramTimingConfig::default();
        let refi = t.t_refi();
        assert!(refi > Picos::from_ns(7_800) && refi < Picos::from_ns(7_820));
    }

    #[test]
    fn cpu_cycle_at_4ghz_is_250ps() {
        assert_eq!(CpuConfig::default().cycle(), Picos::from_ps(250));
    }

    #[test]
    fn validation_catches_bad_values() {
        let t = Topology {
            channels: 0,
            ..Topology::default()
        };
        assert!(t.validate().is_err());

        let c = CpuConfig {
            freq_ghz: 0.0,
            ..CpuConfig::default()
        };
        assert!(c.validate().is_err());

        let d = DramTimingConfig {
            t_cl_ns: -1.0,
            ..DramTimingConfig::default()
        };
        assert!(d.validate().is_err());

        let p = PowerConfig {
            mem_power_fraction: 1.0,
            ..PowerConfig::default()
        };
        assert!(p.validate().is_err());
        let p = PowerConfig {
            mc_reg_idle_fraction: 1.5,
            ..PowerConfig::default()
        };
        assert!(p.validate().is_err());
    }

    #[test]
    fn cross_parameter_checks_reject_inconsistent_timing() {
        // tRAS shorter than tRCD + tRTP: a read could precharge before the
        // activate completed.
        let d = DramTimingConfig {
            t_ras_ns: 20.0,
            ..DramTimingConfig::default()
        };
        let err = d.validate().unwrap_err();
        assert!(err.to_string().contains("t_ras_ns"), "{err}");

        // tFAW below 2·tRRD never constrains anything.
        let d = DramTimingConfig {
            t_faw_ns: 9.0,
            ..DramTimingConfig::default()
        };
        let err = d.validate().unwrap_err();
        assert!(err.to_string().contains("t_faw_ns"), "{err}");

        // tRFC at or above tREFI leaves no time between refreshes.
        let d = DramTimingConfig {
            t_rfc_ns: 8_000.0,
            ..DramTimingConfig::default()
        };
        let err = d.validate().unwrap_err();
        assert!(err.to_string().contains("t_rfc_ns"), "{err}");

        // The boundary itself is accepted.
        let d = DramTimingConfig {
            t_ras_ns: DramTimingConfig::default().t_rcd_ns + DramTimingConfig::default().t_rtp_ns,
            ..DramTimingConfig::default()
        };
        assert!(d.validate().is_ok());
    }

    #[test]
    fn idle_power_derivation() {
        let p = PowerConfig::default();
        assert_eq!(p.mc_w_idle(), 7.5);
        assert_eq!(p.reg_w_idle(), 0.25);
    }

    #[test]
    fn channel_and_core_sweep_constructors() {
        assert_eq!(SystemConfig::with_channels(2).topology.channels, 2);
        assert_eq!(SystemConfig::with_cores(32).cpu.cores, 32);
    }

    #[test]
    fn generation_reference_configs_validate() {
        for gen in MemGeneration::ALL {
            let cfg = SystemConfig::for_generation(gen);
            assert_eq!(cfg.timing.generation, gen);
            assert!(cfg.validate().is_ok(), "{gen}");
        }
        // DDR3 stays exactly the Table 2 default.
        assert_eq!(
            SystemConfig::for_generation(MemGeneration::Ddr3),
            SystemConfig::default()
        );
        let ddr4 = SystemConfig::for_generation(MemGeneration::Ddr4);
        assert_eq!(ddr4.topology.banks_per_rank, 16);
        assert_eq!(ddr4.timing.bank_groups, 4);
        let lp = SystemConfig::for_generation(MemGeneration::Lpddr3);
        assert!(lp.timing.per_bank_refresh);
        assert!(lp.power.i_dpd_ma > 0.0);
    }

    #[test]
    fn generation_cross_checks_name_the_generation() {
        // DDR4: tCCD_L below tCCD_S.
        let d = DramTimingConfig {
            t_ccd_l_cycles: 2,
            ..DramTimingConfig::ddr4()
        };
        let err = d.validate().unwrap_err().to_string();
        assert!(err.contains("DDR4") && err.contains("t_ccd_l"), "{err}");

        // DDR4: tRRD_L below tRRD.
        let d = DramTimingConfig {
            t_rrd_l_ns: 1.0,
            ..DramTimingConfig::ddr4()
        };
        let err = d.validate().unwrap_err().to_string();
        assert!(err.contains("DDR4") && err.contains("t_rrd_l"), "{err}");

        // LPDDR3: deep power-down exit must exceed tXPDLL.
        let d = DramTimingConfig {
            t_xdpd_ns: 10.0,
            ..DramTimingConfig::lpddr3()
        };
        let err = d.validate().unwrap_err().to_string();
        assert!(err.contains("LPDDR3") && err.contains("t_xdpd"), "{err}");

        // DDR3 has neither bank groups, deep power-down nor REFpb.
        for mutate in [
            |d: &mut DramTimingConfig| d.bank_groups = 4,
            |d: &mut DramTimingConfig| d.t_xdpd_ns = 500.0,
            |d: &mut DramTimingConfig| d.per_bank_refresh = true,
        ] {
            let mut d = DramTimingConfig::default();
            mutate(&mut d);
            let err = d.validate().unwrap_err().to_string();
            assert!(err.contains("DDR3"), "{err}");
        }

        // Topology cross-check: groups must divide the bank count.
        let mut sys = SystemConfig::for_generation(MemGeneration::Ddr4);
        sys.topology.banks_per_rank = 6;
        let err = sys.validate().unwrap_err().to_string();
        assert!(err.contains("bank_groups"), "{err}");
    }

    #[test]
    fn bank_groups_map_round_robin() {
        let d = DramTimingConfig::ddr4();
        assert_eq!(d.bank_group_of(crate::ids::BankId(0)), 0);
        assert_eq!(d.bank_group_of(crate::ids::BankId(5)), 1);
        assert_eq!(d.bank_group_of(crate::ids::BankId(15)), 3);
        // Single-group generations collapse to one group.
        let d3 = DramTimingConfig::default();
        assert_eq!(d3.bank_group_of(crate::ids::BankId(7)), 0);
    }

    #[test]
    fn generation_parse_and_display_round_trip() {
        for gen in MemGeneration::ALL {
            assert_eq!(MemGeneration::parse(gen.name()), Some(gen));
            assert_eq!(MemGeneration::parse(&gen.name().to_lowercase()), Some(gen));
        }
        assert_eq!(MemGeneration::parse("ddr5"), None);
        assert_eq!(MemGeneration::default(), MemGeneration::Ddr3);
    }

    #[test]
    fn config_error_displays() {
        let err = Topology {
            channels: 0,
            ..Topology::default()
        }
        .validate()
        .unwrap_err();
        assert!(err.to_string().contains("channels"));
    }
}
