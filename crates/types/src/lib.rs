//! Shared foundation types for the MemScale memory-DVFS simulator.
//!
//! This crate defines the vocabulary every other crate in the workspace
//! speaks:
//!
//! * [`time::Picos`] — the simulator's picosecond clock, precise enough to
//!   represent every DDR3 frequency in the MemScale grid without rounding
//!   drift.
//! * [`freq::MemFreq`] — the ten-step bus/DIMM frequency grid of the paper
//!   (200–800 MHz) together with the derived memory-controller frequency and
//!   voltage.
//! * [`address`] — physical-address to channel/rank/bank/row mapping with
//!   cache-line channel interleaving and bank interleaving, as assumed by the
//!   paper's memory controller.
//! * [`config`] — plain-data configuration (topology, CPU, DRAM timing,
//!   power constants) mirroring Table 2 of the paper.
//!
//! # Example
//!
//! ```
//! use memscale_types::freq::MemFreq;
//! use memscale_types::time::Picos;
//!
//! let f = MemFreq::F800;
//! assert_eq!(f.mhz(), 800);
//! // A 64-byte cache line takes 4 bus cycles (8 beats, double data rate).
//! let burst = f.cycle() * 4;
//! assert_eq!(burst, Picos::from_ns(5));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod address;
pub mod cancel;
pub mod config;
pub mod events;
pub mod faults;
pub mod freq;
pub mod ids;
pub mod invariants;
pub mod requests;
pub mod serve;
pub mod time;

pub use address::{AddressMap, Location, PhysAddr};
pub use cancel::CancelToken;
pub use config::{CpuConfig, DramTimingConfig, MemGeneration, PowerConfig, SystemConfig, Topology};
pub use events::{CmdEvent, CmdKind};
pub use faults::{CounterFault, FaultPlan, FaultSpecError, RefreshFault, SwitchFault};
pub use freq::MemFreq;
pub use ids::{AppId, BankId, ChannelId, CoreId, RankId};
pub use invariants::{Diagnostic, FsmFeature, FsmSpec, FsmTransition, TimingParam};
pub use requests::{RequestStats, SloSpec};
pub use serve::{
    CellFailure, CellMetrics, CellOutcome, DoneReason, ErrorCode, JobSpec, JobSummary,
};
pub use time::Picos;
