//! Physical-address decomposition onto the DRAM topology.
//!
//! The paper's memory controller "exploits bank interleaving" (§4.1) and
//! channels "access disjoint regions of the physical address space in
//! parallel" (§2.1). We use the standard server mapping for such systems:
//! consecutive cache lines rotate across channels, then across the banks of a
//! channel (covering every rank), and only then advance the row — maximizing
//! channel and bank parallelism for streaming access patterns.

use crate::config::Topology;
use crate::ids::{BankId, ChannelId, RankId};
use std::fmt;

/// A byte-granularity physical address.
///
/// # Example
///
/// ```
/// use memscale_types::address::PhysAddr;
///
/// let a = PhysAddr::new(0x1040);
/// assert_eq!(a.cache_line(), 0x41);
/// ```
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PhysAddr(pub u64);

impl PhysAddr {
    /// Cache-line size assumed throughout the system (Table 2).
    pub const CACHE_LINE_BYTES: u64 = 64;

    /// Creates a physical address from a raw byte address.
    #[inline]
    pub const fn new(addr: u64) -> Self {
        PhysAddr(addr)
    }

    /// Creates the address of the start of cache line `line`.
    #[inline]
    pub const fn from_cache_line(line: u64) -> Self {
        PhysAddr(line * Self::CACHE_LINE_BYTES)
    }

    /// The cache-line index containing this address.
    #[inline]
    pub const fn cache_line(self) -> u64 {
        self.0 / Self::CACHE_LINE_BYTES
    }
}

impl fmt::Display for PhysAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

/// The DRAM coordinates of one cache line.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Location {
    /// The channel servicing this line.
    pub channel: ChannelId,
    /// The rank within that channel.
    pub rank: RankId,
    /// The bank within that rank.
    pub bank: BankId,
    /// The DRAM row within that bank.
    pub row: u64,
}

impl fmt::Display for Location {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}/{}/{}/row{}",
            self.channel, self.rank, self.bank, self.row
        )
    }
}

/// Decodes physical addresses onto a [`Topology`].
///
/// Mapping (line-interleaved, closed-page friendly):
///
/// ```text
/// line = addr / 64
/// channel =  line                          % channels
/// bank    = (line / channels)              % banks_per_rank     (within rank)
/// rank    = (line / channels / banks)      % ranks_per_channel
/// row     = (line / channels / banks / ranks) % rows  (col folded into row)
/// ```
///
/// # Example
///
/// ```
/// use memscale_types::address::{AddressMap, PhysAddr};
/// use memscale_types::config::Topology;
///
/// let map = AddressMap::new(Topology::default());
/// let loc = map.decode(PhysAddr::from_cache_line(5));
/// assert_eq!(loc.channel.index(), 5 % 4);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AddressMap {
    topology: Topology,
}

impl AddressMap {
    /// Creates a map over `topology`.
    ///
    /// # Panics
    ///
    /// Panics if any topology dimension is zero.
    pub fn new(topology: Topology) -> Self {
        topology.validate().expect("invalid topology");
        AddressMap { topology }
    }

    /// The topology this map decodes onto.
    #[inline]
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Decodes `addr` to its DRAM location.
    #[allow(clippy::cast_possible_truncation)] // each modulus is a small topology dimension
    pub fn decode(&self, addr: PhysAddr) -> Location {
        let t = &self.topology;
        let line = addr.cache_line();
        let channels = t.channels as u64;
        let banks = t.banks_per_rank as u64;
        let ranks = t.ranks_per_channel() as u64;

        let channel = ChannelId((line % channels) as usize);
        let in_channel = line / channels;
        let bank = BankId((in_channel % banks) as usize);
        let in_bank = in_channel / banks;
        let rank = RankId((in_bank % ranks) as usize);
        let row = (in_bank / ranks) % t.rows_per_bank;
        Location {
            channel,
            rank,
            bank,
            row,
        }
    }

    /// Builds the physical address of the cache line at the given DRAM
    /// coordinates — the inverse of [`decode`](Self::decode) for in-range
    /// coordinates.
    pub fn encode(&self, loc: Location) -> PhysAddr {
        let t = &self.topology;
        let channels = t.channels as u64;
        let banks = t.banks_per_rank as u64;
        let ranks = t.ranks_per_channel() as u64;
        let line = ((loc.row * ranks + loc.rank.index() as u64) * banks + loc.bank.index() as u64)
            * channels
            + loc.channel.index() as u64;
        PhysAddr::from_cache_line(line)
    }

    /// Total number of ranks across all channels.
    #[inline]
    pub fn total_ranks(&self) -> usize {
        self.topology.channels as usize * self.topology.ranks_per_channel() as usize
    }

    /// Total number of banks across all channels.
    #[inline]
    pub fn total_banks(&self) -> usize {
        self.total_ranks() * self.topology.banks_per_rank as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn map() -> AddressMap {
        AddressMap::new(Topology::default())
    }

    #[test]
    fn consecutive_lines_rotate_channels() {
        let m = map();
        for line in 0..16u64 {
            let loc = m.decode(PhysAddr::from_cache_line(line));
            assert_eq!(loc.channel.index() as u64, line % 4);
        }
    }

    #[test]
    fn lines_within_channel_rotate_banks_then_ranks() {
        let m = map();
        // Lines 0, 4, 8, ... all hit channel 0 with ascending banks.
        for i in 0..8u64 {
            let loc = m.decode(PhysAddr::from_cache_line(i * 4));
            assert_eq!(loc.bank.index() as u64, i % 8);
            assert_eq!(loc.rank.index(), 0);
            assert_eq!(loc.row, 0);
        }
        // After all 8 banks, the rank advances.
        let loc = m.decode(PhysAddr::from_cache_line(8 * 4));
        assert_eq!(loc.bank.index(), 0);
        assert_eq!(loc.rank.index(), 1);
    }

    #[test]
    fn row_advances_after_all_banks_and_ranks() {
        let m = map();
        let t = m.topology().clone();
        let lines_per_row_step =
            t.channels as u64 * t.banks_per_rank as u64 * t.ranks_per_channel() as u64;
        let loc = m.decode(PhysAddr::from_cache_line(lines_per_row_step));
        assert_eq!(loc.row, 1);
        assert_eq!(loc.bank.index(), 0);
        assert_eq!(loc.rank.index(), 0);
        assert_eq!(loc.channel.index(), 0);
    }

    #[test]
    fn totals() {
        let m = map();
        assert_eq!(m.total_ranks(), 4 * 4); // 4 channels x 2 DIMMs x 2 ranks
        assert_eq!(m.total_banks(), 16 * 8);
    }

    proptest! {
        #[test]
        fn encode_decode_round_trip(line in 0u64..1_000_000_000) {
            let m = map();
            let addr = PhysAddr::from_cache_line(line);
            let loc = m.decode(addr);
            let encoded = m.encode(loc);
            // Round trip is exact as long as the row did not wrap.
            let t = m.topology();
            let span = t.channels as u64
                * t.banks_per_rank as u64
                * t.ranks_per_channel() as u64
                * t.rows_per_bank;
            prop_assert_eq!(encoded.cache_line(), line % span);
        }

        #[test]
        fn decode_stays_in_bounds(line in 0u64..=u64::MAX / PhysAddr::CACHE_LINE_BYTES) {
            let m = map();
            let loc = m.decode(PhysAddr::from_cache_line(line));
            let t = m.topology();
            prop_assert!(loc.channel.index() < t.channels as usize);
            prop_assert!(loc.rank.index() < t.ranks_per_channel() as usize);
            prop_assert!(loc.bank.index() < t.banks_per_rank as usize);
            prop_assert!(loc.row < t.rows_per_bank);
        }
    }
}
