//! Fault-injection configuration (`FaultPlan`) and fault vocabulary.
//!
//! MemScale's safety argument rests on the governor recovering `QoS` even when
//! the hardware misbehaves. This module defines the *plan* — which fault
//! classes fire, how often, and how hard — as plain data shared by every
//! layer. The seeded runtime injector that draws from the plan lives in the
//! `memscale-faults` crate; this module only holds configuration and the
//! enums naming each injected perturbation.
//!
//! A plan is usually parsed from a CLI spec string:
//!
//! ```
//! use memscale_types::faults::FaultPlan;
//!
//! let plan = FaultPlan::parse("seed=7,counter=0.3,relock=0.2,cap_mhz=400").unwrap();
//! assert_eq!(plan.seed, 7);
//! assert!((plan.counter_rate - 0.3).abs() < 1e-12);
//! assert!(FaultPlan::parse("bogus=1").is_err());
//! ```

use crate::freq::MemFreq;
use crate::time::Picos;
use std::fmt;

/// A corrupted §3.1 counter read delivered to the governor at a profiling
/// or epoch boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CounterFault {
    /// Counters read back multiplied by `factor` (an overflow-style glitch:
    /// TIC and the queue-occupancy accumulators explode together).
    Corrupt {
        /// Multiplicative corruption factor (drawn large, ≥ 2¹³).
        factor: u64,
    },
    /// The previous window's values are delivered again (stale latch).
    Stale,
    /// The read is lost entirely: every counter reports zero.
    Drop,
}

/// A perturbed frequency-switch attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SwitchFault {
    /// The DLL relock takes `extra` longer than the 512-cycle + settle
    /// budget (VR droop, slow relock).
    Overrun(Picos),
    /// The switch fails outright: the channel stays at the old frequency.
    Fail,
}

/// A perturbed refresh schedule within the postponement (arrears) window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RefreshFault {
    /// The next due REF is issued `late` later than scheduled.
    Slip(Picos),
    /// One REF interval is skipped outright (the due time advances by one
    /// tREFI with no catch-up accounting).
    Drop,
}

/// Seeded, deterministic fault-injection plan.
///
/// Rates are per-opportunity probabilities in `[0, 1]`: counter / refresh /
/// thermal / powerdown-exit faults are drawn once per epoch, switch faults
/// once per frequency-switch attempt. All draws come from one splitmix64
/// stream seeded by `seed`, so a plan replays identically across runs.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed for the injector's private RNG stream.
    pub seed: u64,
    /// Per-epoch probability of a corrupted/stale/dropped counter read.
    pub counter_rate: f64,
    /// Per-switch probability of a relock overrun.
    pub relock_rate: f64,
    /// Per-switch probability of an outright switch failure.
    pub switch_fail_rate: f64,
    /// Per-epoch probability of a late or dropped REF.
    pub refresh_rate: f64,
    /// Per-epoch probability of a thermal-throttle event starting.
    pub thermal_rate: f64,
    /// Per-epoch probability of arming a powerdown-exit latency spike.
    pub pd_exit_rate: f64,
    /// Extra relock latency when an overrun fires.
    pub relock_overrun: Picos,
    /// How late a slipped REF may be pushed (clamped to the safe arrears
    /// window at the injection site).
    pub refresh_slip: Picos,
    /// Frequency-grid cap while a thermal-throttle event is active.
    pub thermal_cap: MemFreq,
    /// Duration of one thermal-throttle event, in epochs.
    pub thermal_epochs: u32,
    /// Extra exit latency (tXP/tXPDLL overrun) when a spike fires.
    pub pd_exit_extra: Picos,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            seed: 0xFA_17,
            counter_rate: 0.0,
            relock_rate: 0.0,
            switch_fail_rate: 0.0,
            refresh_rate: 0.0,
            thermal_rate: 0.0,
            pd_exit_rate: 0.0,
            relock_overrun: Picos::from_ns(500),
            refresh_slip: Picos::from_ns(7_800),
            thermal_cap: MemFreq::F400,
            thermal_epochs: 2,
            pd_exit_extra: Picos::from_ns(100),
        }
    }
}

/// Error from [`FaultPlan::parse`] or [`FaultPlan::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultSpecError {
    msg: String,
}

impl FaultSpecError {
    fn new(msg: impl Into<String>) -> Self {
        FaultSpecError { msg: msg.into() }
    }
}

impl fmt::Display for FaultSpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid fault spec: {}; keys: seed, all, counter, relock, switch, \
             refresh, thermal, pdexit, relock_ns, refresh_ns, cap_mhz, \
             thermal_epochs, pdexit_ns",
            self.msg
        )
    }
}

impl std::error::Error for FaultSpecError {}

impl FaultPlan {
    /// A plan injecting every fault class at `rate`, with default magnitudes.
    pub fn uniform(seed: u64, rate: f64) -> Self {
        FaultPlan {
            seed,
            counter_rate: rate,
            relock_rate: rate,
            switch_fail_rate: rate,
            refresh_rate: rate,
            thermal_rate: rate,
            pd_exit_rate: rate,
            ..FaultPlan::default()
        }
    }

    /// Whether any fault class can fire at all.
    pub fn is_active(&self) -> bool {
        [
            self.counter_rate,
            self.relock_rate,
            self.switch_fail_rate,
            self.refresh_rate,
            self.thermal_rate,
            self.pd_exit_rate,
        ]
        .iter()
        .any(|&r| r > 0.0)
    }

    /// Parses a comma-separated `key=value` spec, e.g.
    /// `seed=42,counter=0.3,relock=0.2,switch=0.1,cap_mhz=400`.
    /// `all=<rate>` sets every per-class rate at once (later keys override).
    ///
    /// # Errors
    ///
    /// Returns a [`FaultSpecError`] on unknown keys, malformed values, or an
    /// out-of-range plan (see [`FaultPlan::validate`]).
    pub fn parse(spec: &str) -> Result<Self, FaultSpecError> {
        let mut plan = FaultPlan::default();
        for item in spec.split(',').filter(|s| !s.trim().is_empty()) {
            let (key, value) = item
                .split_once('=')
                .ok_or_else(|| FaultSpecError::new(format!("`{item}` is not key=value")))?;
            let key = key.trim();
            let value = value.trim();
            let rate = |v: &str| {
                v.parse::<f64>()
                    .map_err(|e| FaultSpecError::new(format!("{key}: {e}")))
            };
            let int = |v: &str| {
                v.parse::<u64>()
                    .map_err(|e| FaultSpecError::new(format!("{key}: {e}")))
            };
            match key {
                "seed" => plan.seed = int(value)?,
                "all" => {
                    let r = rate(value)?;
                    plan.counter_rate = r;
                    plan.relock_rate = r;
                    plan.switch_fail_rate = r;
                    plan.refresh_rate = r;
                    plan.thermal_rate = r;
                    plan.pd_exit_rate = r;
                }
                "counter" => plan.counter_rate = rate(value)?,
                "relock" => plan.relock_rate = rate(value)?,
                "switch" => plan.switch_fail_rate = rate(value)?,
                "refresh" => plan.refresh_rate = rate(value)?,
                "thermal" => plan.thermal_rate = rate(value)?,
                "pdexit" => plan.pd_exit_rate = rate(value)?,
                "relock_ns" => plan.relock_overrun = Picos::from_ns(int(value)?),
                "refresh_ns" => plan.refresh_slip = Picos::from_ns(int(value)?),
                "cap_mhz" => {
                    let mhz = int(value)?;
                    let mhz = u32::try_from(mhz)
                        .map_err(|_| FaultSpecError::new(format!("cap_mhz: {mhz} too large")))?;
                    plan.thermal_cap = MemFreq::ceil_from_mhz(mhz).ok_or_else(|| {
                        FaultSpecError::new(format!("cap_mhz: {mhz} exceeds the 800 MHz grid"))
                    })?;
                }
                "thermal_epochs" => {
                    let n = int(value)?;
                    plan.thermal_epochs = u32::try_from(n).map_err(|_| {
                        FaultSpecError::new(format!("thermal_epochs: {n} too large"))
                    })?;
                }
                "pdexit_ns" => plan.pd_exit_extra = Picos::from_ns(int(value)?),
                other => return Err(FaultSpecError::new(format!("unknown key `{other}`"))),
            }
        }
        plan.validate()?;
        Ok(plan)
    }

    /// Checks that every rate lies in `[0, 1]` and magnitudes are sane.
    ///
    /// # Errors
    ///
    /// Returns a [`FaultSpecError`] naming the offending field.
    pub fn validate(&self) -> Result<(), FaultSpecError> {
        for (name, r) in [
            ("counter", self.counter_rate),
            ("relock", self.relock_rate),
            ("switch", self.switch_fail_rate),
            ("refresh", self.refresh_rate),
            ("thermal", self.thermal_rate),
            ("pdexit", self.pd_exit_rate),
        ] {
            if !(0.0..=1.0).contains(&r) || r.is_nan() {
                return Err(FaultSpecError::new(format!(
                    "{name} rate {r} outside [0, 1]"
                )));
            }
        }
        if self.thermal_epochs == 0 {
            return Err(FaultSpecError::new("thermal_epochs must be > 0"));
        }
        if self.relock_overrun > Picos::from_us(100) {
            return Err(FaultSpecError::new("relock_ns above 100 us is implausible"));
        }
        if self.pd_exit_extra > Picos::from_us(100) {
            return Err(FaultSpecError::new("pdexit_ns above 100 us is implausible"));
        }
        // Bounded so a slipped REF can never leave the nine-interval
        // postponement window the audit rule packs enforce.
        if self.refresh_slip > Picos::from_ns(15_600) {
            return Err(FaultSpecError::new(
                "refresh_ns above 15600 (two tREFI) would breach the arrears window",
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_is_inert() {
        let p = FaultPlan::default();
        assert!(!p.is_active());
        assert!(p.validate().is_ok());
    }

    #[test]
    fn uniform_activates_every_class() {
        let p = FaultPlan::uniform(1, 0.25);
        assert!(p.is_active());
        assert!((p.switch_fail_rate - 0.25).abs() < 1e-12);
    }

    #[test]
    fn parse_round_trips_keys() {
        let p = FaultPlan::parse(
            "seed=9,all=0.1,counter=0.5,relock_ns=250,refresh_ns=1000,\
             cap_mhz=333,thermal_epochs=3,pdexit_ns=50",
        )
        .unwrap();
        assert_eq!(p.seed, 9);
        assert!((p.counter_rate - 0.5).abs() < 1e-12);
        assert!((p.relock_rate - 0.1).abs() < 1e-12);
        assert_eq!(p.relock_overrun, Picos::from_ns(250));
        assert_eq!(p.refresh_slip, Picos::from_ns(1000));
        assert_eq!(p.thermal_cap, MemFreq::F333);
        assert_eq!(p.thermal_epochs, 3);
        assert_eq!(p.pd_exit_extra, Picos::from_ns(50));
    }

    #[test]
    fn parse_rejects_unknown_and_out_of_range() {
        assert!(FaultPlan::parse("bogus=1").is_err());
        assert!(FaultPlan::parse("counter").is_err());
        assert!(FaultPlan::parse("counter=1.5").is_err());
        assert!(FaultPlan::parse("refresh_ns=999999").is_err());
        assert!(FaultPlan::parse("thermal_epochs=0").is_err());
        assert!(FaultPlan::parse("cap_mhz=5000").is_err());
    }

    #[test]
    fn error_display_lists_keys() {
        let e = FaultPlan::parse("bogus=1").unwrap_err();
        let msg = e.to_string();
        assert!(msg.contains("unknown key"));
        assert!(msg.contains("cap_mhz"));
    }
}
