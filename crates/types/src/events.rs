//! Typed DRAM command events for protocol auditing.
//!
//! The DRAM and memory-controller crates can emit one [`CmdEvent`] per
//! device-level command they schedule (behind their `audit` feature); the
//! `memscale-audit` crate replays the stream against an independent model of
//! the DDR3 timing rules. Events are *not* guaranteed to be emitted in
//! timestamp order — auto-precharges are future-dated, and powerdown entries
//! under the auto-powerdown policy are synthesized retroactively at the next
//! access — so consumers must sort by [`CmdEvent::at`] before replay.

use crate::ids::{BankId, ChannelId, RankId};
use crate::time::Picos;

/// The device-level command an event records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmdKind {
    /// ACT: open `row` in the event's bank.
    Activate {
        /// The row being opened.
        row: u64,
    },
    /// Read CAS, with its data burst occupying the channel's shared bus over
    /// `[burst_start, burst_end)`.
    CasRead {
        /// First beat of the data burst.
        burst_start: Picos,
        /// End of the data burst.
        burst_end: Picos,
    },
    /// Write CAS, with its data burst occupying the channel's shared bus over
    /// `[burst_start, burst_end)`.
    CasWrite {
        /// First beat of the data burst.
        burst_start: Picos,
        /// End of the data burst.
        burst_end: Picos,
    },
    /// PRE: close the event's bank (explicit or auto-precharge).
    Precharge,
    /// REF: one refresh command occupying the rank until `end` (tRFC).
    Refresh {
        /// Completion time of the refresh (issue + tRFC).
        end: Picos,
    },
    /// CKE-low: the rank enters precharge powerdown.
    PowerDownEnter {
        /// `true` for fast-exit powerdown, `false` for slow-exit (DLL off).
        fast: bool,
    },
    /// CKE-high: the rank leaves powerdown; commands may issue from `ready`.
    PowerDownExit {
        /// Which powerdown flavor is being exited.
        fast: bool,
        /// When the rank entered the powerdown state being exited.
        entered_at: Picos,
        /// First instant a command may issue (exit request + tXP/tXPDLL).
        ready: Picos,
    },
    /// The rank enters deep power-down (LPDDR generations only): background
    /// power collapses to the `i_dpd` floor, but exiting costs `t_xdpd`.
    DeepPowerDownEnter,
    /// The rank leaves deep power-down; commands may issue from `ready`.
    DeepPowerDownExit {
        /// When the rank entered deep power-down.
        entered_at: Picos,
        /// First instant a command may issue (exit request + `t_xdpd`).
        ready: Picos,
    },
    /// The channel re-locks its bus/DIMM frequency; no command may issue on
    /// any rank of the channel until `ready`.
    FreqSwitch {
        /// Operating point before the switch (MHz).
        from_mhz: u32,
        /// Operating point after the switch (MHz).
        to_mhz: u32,
        /// End of the relock window (issue + relock penalty).
        ready: Picos,
    },
}

impl CmdKind {
    /// Short mnemonic for reports (`ACT`, `CAS-RD`, ...).
    pub fn mnemonic(&self) -> &'static str {
        match self {
            CmdKind::Activate { .. } => "ACT",
            CmdKind::CasRead { .. } => "CAS-RD",
            CmdKind::CasWrite { .. } => "CAS-WR",
            CmdKind::Precharge => "PRE",
            CmdKind::Refresh { .. } => "REF",
            CmdKind::PowerDownEnter { .. } => "PD-ENTER",
            CmdKind::PowerDownExit { .. } => "PD-EXIT",
            CmdKind::DeepPowerDownEnter => "DPD-ENTER",
            CmdKind::DeepPowerDownExit { .. } => "DPD-EXIT",
            CmdKind::FreqSwitch { .. } => "FREQ-SWITCH",
        }
    }
}

/// One device-level command, located in topology and time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CmdEvent {
    /// When the command issues on the command bus.
    pub at: Picos,
    /// The channel the command belongs to. Emitters below the controller
    /// level leave this at `ChannelId(0)`; the controller re-tags it.
    pub channel: ChannelId,
    /// The rank addressed (for [`CmdKind::FreqSwitch`], which is channel-
    /// wide, this is `RankId(0)` by convention).
    pub rank: RankId,
    /// The bank addressed, for bank-scoped commands (ACT/CAS/PRE).
    pub bank: Option<BankId>,
    /// What the command is.
    pub kind: CmdKind,
}

impl std::fmt::Display for CmdEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} {} {}", self.at, self.channel, self.rank)?;
        if let Some(bank) = self.bank {
            write!(f, " {bank}")?;
        }
        write!(f, " {}", self.kind.mnemonic())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_topology_and_mnemonic() {
        let e = CmdEvent {
            at: Picos::from_ns(40),
            channel: ChannelId(2),
            rank: RankId(1),
            bank: Some(BankId(5)),
            kind: CmdKind::Activate { row: 9 },
        };
        let s = e.to_string();
        assert!(s.contains("ch2") && s.contains("rank1") && s.contains("bank5"));
        assert!(s.contains("ACT"));
    }

    #[test]
    fn bankless_commands_omit_bank() {
        let e = CmdEvent {
            at: Picos::ZERO,
            channel: ChannelId(0),
            rank: RankId(0),
            bank: None,
            kind: CmdKind::FreqSwitch {
                from_mhz: 800,
                to_mhz: 400,
                ready: Picos::from_ns(2588),
            },
        };
        assert!(e.to_string().contains("FREQ-SWITCH"));
        assert!(!e.to_string().contains("bank"));
    }

    #[test]
    fn mnemonics_are_distinct() {
        let kinds = [
            CmdKind::Activate { row: 0 },
            CmdKind::CasRead {
                burst_start: Picos::ZERO,
                burst_end: Picos::ZERO,
            },
            CmdKind::CasWrite {
                burst_start: Picos::ZERO,
                burst_end: Picos::ZERO,
            },
            CmdKind::Precharge,
            CmdKind::Refresh { end: Picos::ZERO },
            CmdKind::PowerDownEnter { fast: true },
            CmdKind::PowerDownExit {
                fast: true,
                entered_at: Picos::ZERO,
                ready: Picos::ZERO,
            },
            CmdKind::DeepPowerDownEnter,
            CmdKind::DeepPowerDownExit {
                entered_at: Picos::ZERO,
                ready: Picos::ZERO,
            },
            CmdKind::FreqSwitch {
                from_mhz: 800,
                to_mhz: 800,
                ready: Picos::ZERO,
            },
        ];
        let names: std::collections::HashSet<_> = kinds.iter().map(CmdKind::mnemonic).collect();
        assert_eq!(names.len(), kinds.len());
    }
}
