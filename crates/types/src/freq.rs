//! The MemScale frequency grid.
//!
//! The paper evaluates ten bus/DIMM frequencies — 800 MHz down to 200 MHz in
//! ~67 MHz steps (§4.1). The memory controller (MC) always runs at twice the
//! bus frequency and its supply voltage scales linearly with its frequency
//! over the 0.65 V – 1.2 V range of contemporary server cores (§3.1, §4.1).

use crate::time::Picos;
use std::fmt;

/// One operating point of the memory subsystem: the bus/DIMM/DRAM-device
/// frequency. The MC frequency and voltage are derived.
///
/// Variants are ordered from slowest to fastest so that `MemFreq::F200 <
/// MemFreq::F800` and iteration over [`MemFreq::ALL`] ascends.
///
/// # Example
///
/// ```
/// use memscale_types::freq::MemFreq;
///
/// assert!(MemFreq::F200 < MemFreq::F800);
/// assert_eq!(MemFreq::F800.mc_mhz(), 1600);
/// assert_eq!(MemFreq::MAX, MemFreq::F800);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[allow(missing_docs)]
pub enum MemFreq {
    F200,
    F267,
    F333,
    F400,
    F467,
    F533,
    F600,
    F667,
    F733,
    #[default]
    F800,
}

impl MemFreq {
    /// All operating points, ascending in frequency.
    pub const ALL: [MemFreq; 10] = [
        MemFreq::F200,
        MemFreq::F267,
        MemFreq::F333,
        MemFreq::F400,
        MemFreq::F467,
        MemFreq::F533,
        MemFreq::F600,
        MemFreq::F667,
        MemFreq::F733,
        MemFreq::F800,
    ];

    /// The slowest operating point (200 MHz).
    pub const MIN: MemFreq = MemFreq::F200;
    /// The fastest operating point (800 MHz); the paper's baseline.
    pub const MAX: MemFreq = MemFreq::F800;

    /// Bus/DIMM frequency in MHz.
    #[inline]
    pub const fn mhz(self) -> u32 {
        match self {
            MemFreq::F200 => 200,
            MemFreq::F267 => 267,
            MemFreq::F333 => 333,
            MemFreq::F400 => 400,
            MemFreq::F467 => 467,
            MemFreq::F533 => 533,
            MemFreq::F600 => 600,
            MemFreq::F667 => 667,
            MemFreq::F733 => 733,
            MemFreq::F800 => 800,
        }
    }

    /// Memory-controller frequency in MHz (always 2× the bus, §3.1).
    #[inline]
    pub const fn mc_mhz(self) -> u32 {
        self.mhz() * 2
    }

    /// Bus clock period.
    #[inline]
    pub fn cycle(self) -> Picos {
        Picos::from_ps(1_000_000 / self.mhz() as u64)
    }

    /// MC clock period.
    #[inline]
    pub fn mc_cycle(self) -> Picos {
        Picos::from_ps(1_000_000 / self.mc_mhz() as u64)
    }

    /// Fraction of the maximum frequency, in (0, 1].
    #[inline]
    pub fn relative(self) -> f64 {
        self.mhz() as f64 / MemFreq::MAX.mhz() as f64
    }

    /// MC supply voltage at this operating point, in volts.
    ///
    /// Linear in MC frequency between 0.65 V (at 200 MHz bus) and 1.2 V (at
    /// 800 MHz bus), matching §4.1's "the voltage of the memory controller
    /// varies over the same range as the cores (0.65 V–1.2 V)".
    #[inline]
    pub fn mc_voltage(self) -> f64 {
        const V_MIN: f64 = 0.65;
        const V_MAX: f64 = 1.2;
        let lo = MemFreq::MIN.mhz() as f64;
        let hi = MemFreq::MAX.mhz() as f64;
        let t = (self.mhz() as f64 - lo) / (hi - lo);
        V_MIN + t * (V_MAX - V_MIN)
    }

    /// Zero-based index into [`MemFreq::ALL`] (0 = 200 MHz … 9 = 800 MHz).
    #[inline]
    pub fn index(self) -> usize {
        MemFreq::ALL
            .iter()
            .position(|&f| f == self)
            .expect("in ALL")
    }

    /// The operating point at `index` in [`MemFreq::ALL`], if in range.
    #[inline]
    pub fn from_index(index: usize) -> Option<MemFreq> {
        MemFreq::ALL.get(index).copied()
    }

    /// The next-faster operating point, or `None` at 800 MHz.
    #[inline]
    pub fn step_up(self) -> Option<MemFreq> {
        MemFreq::from_index(self.index() + 1)
    }

    /// The next-slower operating point, or `None` at 200 MHz.
    #[inline]
    pub fn step_down(self) -> Option<MemFreq> {
        self.index().checked_sub(1).and_then(MemFreq::from_index)
    }

    /// The nearest operating point at or above `mhz`, or `None` if `mhz`
    /// exceeds 800.
    pub fn ceil_from_mhz(mhz: u32) -> Option<MemFreq> {
        MemFreq::ALL.iter().copied().find(|f| f.mhz() >= mhz)
    }
}

impl fmt::Display for MemFreq {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}MHz", self.mhz())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_matches_paper() {
        let mhz: Vec<u32> = MemFreq::ALL.iter().map(|f| f.mhz()).collect();
        assert_eq!(mhz, vec![200, 267, 333, 400, 467, 533, 600, 667, 733, 800]);
    }

    #[test]
    fn ordering_ascends_with_frequency() {
        for pair in MemFreq::ALL.windows(2) {
            assert!(pair[0] < pair[1]);
            assert!(pair[0].mhz() < pair[1].mhz());
        }
    }

    #[test]
    fn mc_runs_at_double_bus() {
        for f in MemFreq::ALL {
            assert_eq!(f.mc_mhz(), 2 * f.mhz());
            // MC cycle must be half the bus cycle (to picosecond truncation).
            assert!(f.mc_cycle() <= f.cycle());
        }
    }

    #[test]
    fn cycle_times() {
        assert_eq!(MemFreq::F800.cycle(), Picos::from_ps(1_250));
        assert_eq!(MemFreq::F200.cycle(), Picos::from_ps(5_000));
        assert_eq!(MemFreq::F733.cycle(), Picos::from_ps(1_364));
    }

    #[test]
    fn voltage_range_and_monotonicity() {
        assert!((MemFreq::MIN.mc_voltage() - 0.65).abs() < 1e-12);
        assert!((MemFreq::MAX.mc_voltage() - 1.2).abs() < 1e-12);
        for pair in MemFreq::ALL.windows(2) {
            assert!(pair[0].mc_voltage() < pair[1].mc_voltage());
        }
    }

    #[test]
    fn index_round_trips() {
        for (i, f) in MemFreq::ALL.iter().enumerate() {
            assert_eq!(f.index(), i);
            assert_eq!(MemFreq::from_index(i), Some(*f));
        }
        assert_eq!(MemFreq::from_index(10), None);
    }

    #[test]
    fn stepping() {
        assert_eq!(MemFreq::F200.step_down(), None);
        assert_eq!(MemFreq::F800.step_up(), None);
        assert_eq!(MemFreq::F200.step_up(), Some(MemFreq::F267));
        assert_eq!(MemFreq::F800.step_down(), Some(MemFreq::F733));
    }

    #[test]
    fn ceil_from_mhz_picks_nearest_above() {
        assert_eq!(MemFreq::ceil_from_mhz(1), Some(MemFreq::F200));
        assert_eq!(MemFreq::ceil_from_mhz(400), Some(MemFreq::F400));
        assert_eq!(MemFreq::ceil_from_mhz(401), Some(MemFreq::F467));
        assert_eq!(MemFreq::ceil_from_mhz(801), None);
    }

    #[test]
    fn relative_fraction() {
        assert_eq!(MemFreq::F800.relative(), 1.0);
        assert_eq!(MemFreq::F400.relative(), 0.5);
    }

    #[test]
    fn default_is_max() {
        assert_eq!(MemFreq::default(), MemFreq::MAX);
    }
}
