//! Picosecond-resolution simulated time.
//!
//! The MemScale frequency grid mixes frequencies whose periods are not
//! integral nanoseconds (e.g. 733 MHz ≈ 1364.3 ps), so the simulator clock is
//! kept in picoseconds. A `u64` of picoseconds covers ~213 days of simulated
//! time — far beyond the multi-second horizons of any experiment here.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Rem, Sub, SubAssign};

/// A point in simulated time, or a duration, in picoseconds.
///
/// `Picos` is used for both instants and durations: the simulator starts at
/// `Picos::ZERO` and durations are plain differences. All arithmetic is
/// checked in debug builds through the standard integer operators.
///
/// # Example
///
/// ```
/// use memscale_types::time::Picos;
///
/// let t = Picos::from_ns(15) + Picos::from_ns(15); // tRCD + tRP
/// assert_eq!(t.as_ns_f64(), 30.0);
/// assert!(t < Picos::from_us(1));
/// ```
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Picos(pub u64);

impl Picos {
    /// Zero time; the simulation epoch.
    pub const ZERO: Picos = Picos(0);
    /// The maximum representable time (used as an "infinitely far" sentinel).
    pub const MAX: Picos = Picos(u64::MAX);

    /// Creates a duration from whole picoseconds.
    #[inline]
    pub const fn from_ps(ps: u64) -> Self {
        Picos(ps)
    }

    /// Creates a duration from whole nanoseconds.
    #[inline]
    pub const fn from_ns(ns: u64) -> Self {
        Picos(ns * 1_000)
    }

    /// Creates a duration from whole microseconds.
    #[inline]
    pub const fn from_us(us: u64) -> Self {
        Picos(us * 1_000_000)
    }

    /// Creates a duration from whole milliseconds.
    #[inline]
    pub const fn from_ms(ms: u64) -> Self {
        Picos(ms * 1_000_000_000)
    }

    /// Creates a duration from fractional nanoseconds, rounding to the
    /// nearest picosecond.
    ///
    /// # Panics
    ///
    /// Panics if `ns` is negative or not finite.
    #[inline]
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)] // asserted finite, non-negative
    pub fn from_ns_f64(ns: f64) -> Self {
        assert!(ns.is_finite() && ns >= 0.0, "invalid duration: {ns} ns");
        Picos((ns * 1_000.0).round() as u64)
    }

    /// Raw picosecond count.
    #[inline]
    pub const fn as_ps(self) -> u64 {
        self.0
    }

    /// This time as fractional nanoseconds.
    #[inline]
    pub fn as_ns_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// This time as fractional microseconds.
    #[inline]
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// This time as fractional milliseconds.
    #[inline]
    pub fn as_ms_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// This time as fractional seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e12
    }

    /// Saturating subtraction: returns [`Picos::ZERO`] instead of
    /// underflowing.
    #[inline]
    pub fn saturating_sub(self, rhs: Picos) -> Picos {
        Picos(self.0.saturating_sub(rhs.0))
    }

    /// Checked addition.
    #[inline]
    pub fn checked_add(self, rhs: Picos) -> Option<Picos> {
        self.0.checked_add(rhs.0).map(Picos)
    }

    /// The larger of two times.
    #[inline]
    pub fn max(self, rhs: Picos) -> Picos {
        Picos(self.0.max(rhs.0))
    }

    /// The smaller of two times.
    #[inline]
    pub fn min(self, rhs: Picos) -> Picos {
        Picos(self.0.min(rhs.0))
    }

    /// Multiplies by a non-negative float, rounding to the nearest
    /// picosecond. Useful for scaling durations by utilization factors.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or not finite.
    #[inline]
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)] // asserted finite, non-negative
    pub fn scale(self, factor: f64) -> Picos {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "invalid scale factor: {factor}"
        );
        Picos((self.0 as f64 * factor).round() as u64)
    }

    /// Ratio of two durations as a float. Returns 0 when `denom` is zero.
    #[inline]
    pub fn ratio(self, denom: Picos) -> f64 {
        if denom.0 == 0 {
            0.0
        } else {
            self.0 as f64 / denom.0 as f64
        }
    }

    /// Rounds this instant *up* to the next multiple of `quantum`.
    /// A `quantum` of zero returns `self`.
    #[inline]
    pub fn round_up_to(self, quantum: Picos) -> Picos {
        if quantum.0 == 0 {
            return self;
        }
        let rem = self.0 % quantum.0;
        if rem == 0 {
            self
        } else {
            Picos(self.0 + (quantum.0 - rem))
        }
    }
}

impl Add for Picos {
    type Output = Picos;
    #[inline]
    fn add(self, rhs: Picos) -> Picos {
        Picos(self.0 + rhs.0)
    }
}

impl AddAssign for Picos {
    #[inline]
    fn add_assign(&mut self, rhs: Picos) {
        self.0 += rhs.0;
    }
}

impl Sub for Picos {
    type Output = Picos;
    #[inline]
    fn sub(self, rhs: Picos) -> Picos {
        Picos(self.0 - rhs.0)
    }
}

impl SubAssign for Picos {
    #[inline]
    fn sub_assign(&mut self, rhs: Picos) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for Picos {
    type Output = Picos;
    #[inline]
    fn mul(self, rhs: u64) -> Picos {
        Picos(self.0 * rhs)
    }
}

impl Div<u64> for Picos {
    type Output = Picos;
    #[inline]
    fn div(self, rhs: u64) -> Picos {
        Picos(self.0 / rhs)
    }
}

impl Rem<Picos> for Picos {
    type Output = Picos;
    #[inline]
    fn rem(self, rhs: Picos) -> Picos {
        Picos(self.0 % rhs.0)
    }
}

impl Sum for Picos {
    fn sum<I: Iterator<Item = Picos>>(iter: I) -> Picos {
        iter.fold(Picos::ZERO, Add::add)
    }
}

impl fmt::Display for Picos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ps = self.0;
        if ps == 0 {
            write!(f, "0")
        } else if ps.is_multiple_of(1_000_000_000) {
            write!(f, "{}ms", ps / 1_000_000_000)
        } else if ps.is_multiple_of(1_000_000) {
            write!(f, "{}us", ps / 1_000_000)
        } else if ps.is_multiple_of(1_000) {
            write!(f, "{}ns", ps / 1_000)
        } else {
            write!(f, "{ps}ps")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(Picos::from_ns(1), Picos::from_ps(1_000));
        assert_eq!(Picos::from_us(1), Picos::from_ns(1_000));
        assert_eq!(Picos::from_ms(1), Picos::from_us(1_000));
        assert_eq!(Picos::from_ms(5).as_ms_f64(), 5.0);
        assert_eq!(Picos::from_us(300).as_us_f64(), 300.0);
    }

    #[test]
    fn from_ns_f64_rounds() {
        assert_eq!(Picos::from_ns_f64(1.3643), Picos::from_ps(1364));
        assert_eq!(Picos::from_ns_f64(0.0), Picos::ZERO);
    }

    #[test]
    #[should_panic(expected = "invalid duration")]
    fn from_ns_f64_rejects_negative() {
        let _ = Picos::from_ns_f64(-1.0);
    }

    #[test]
    fn arithmetic() {
        let a = Picos::from_ns(10);
        let b = Picos::from_ns(4);
        assert_eq!(a + b, Picos::from_ns(14));
        assert_eq!(a - b, Picos::from_ns(6));
        assert_eq!(a * 3, Picos::from_ns(30));
        assert_eq!(a / 2, Picos::from_ns(5));
        assert_eq!(b.saturating_sub(a), Picos::ZERO);
        assert_eq!(a.max(b), a);
        assert_eq!(a.min(b), b);
    }

    #[test]
    fn scale_and_ratio() {
        let a = Picos::from_ns(10);
        assert_eq!(a.scale(0.5), Picos::from_ns(5));
        assert_eq!(a.scale(0.0), Picos::ZERO);
        assert_eq!(a.ratio(Picos::from_ns(20)), 0.5);
        assert_eq!(a.ratio(Picos::ZERO), 0.0);
    }

    #[test]
    fn round_up_to_quantum() {
        let q = Picos::from_us(5);
        assert_eq!(Picos::ZERO.round_up_to(q), Picos::ZERO);
        assert_eq!(Picos::from_us(5).round_up_to(q), Picos::from_us(5));
        assert_eq!(Picos::from_us(6).round_up_to(q), Picos::from_us(10));
        assert_eq!(
            Picos::from_us(6).round_up_to(Picos::ZERO),
            Picos::from_us(6)
        );
    }

    #[test]
    fn display_picks_units() {
        assert_eq!(Picos::from_ms(5).to_string(), "5ms");
        assert_eq!(Picos::from_us(300).to_string(), "300us");
        assert_eq!(Picos::from_ns(15).to_string(), "15ns");
        assert_eq!(Picos::from_ps(1364).to_string(), "1364ps");
        assert_eq!(Picos::ZERO.to_string(), "0");
    }

    #[test]
    fn sum_folds() {
        let total: Picos = (1..=4).map(Picos::from_ns).sum();
        assert_eq!(total, Picos::from_ns(10));
    }
}
