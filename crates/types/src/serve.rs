//! Wire-level vocabulary of the sweep-job service (`memscale-serve`).
//!
//! The serving layer speaks a line-delimited JSON protocol over TCP (see
//! DESIGN.md §13). This module holds the *plain-data* shapes both sides of
//! that protocol agree on — the job specification a client submits, the
//! per-cell metrics and job summary the server streams back, and the
//! structured error codes — so the server, the load generator and any other
//! client share one vocabulary without this crate knowing anything about
//! JSON, sockets or the simulator.
//!
//! Policies and workload mixes appear here as *names* (the same strings the
//! `memscale-sim` CLI accepts); resolution against the policy/mix catalogs
//! happens in the serving layer, where those catalogs live.

use crate::config::MemGeneration;
use std::fmt;

/// A sweep job as submitted over the wire: one workload (a Table 1 mix,
/// optionally fed from a server-side recorded trace) crossed with a list of
/// policy cells under one run configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Client-chosen job identifier, echoed on every response line so one
    /// connection can correlate interleaved output. Must be non-empty and
    /// single-line.
    pub id: String,
    /// Table 1 workload name (e.g. `MID1`, case-insensitive).
    pub mix: String,
    /// Server-local path of a recorded trace to replay instead of recording
    /// the mix live. The trace must match the job's configuration
    /// fingerprint, exactly as `memscale-sim --replay` requires.
    pub trace: Option<String>,
    /// Memory generation the sweep runs on.
    pub generation: MemGeneration,
    /// Baseline horizon in milliseconds.
    pub duration_ms: u64,
    /// Trace seed; `None` keeps the server default.
    pub seed: Option<u64>,
    /// CPI degradation bound γ in percent.
    pub gamma_pct: f64,
    /// Epoch length in milliseconds.
    pub epoch_ms: u64,
    /// Core count.
    pub cores: usize,
    /// Memory channels.
    pub channels: u8,
    /// Policy cells to evaluate, named as the CLI names them
    /// (`memscale`, `static:400`, …). Empty means the server's default
    /// frequency × policy grid for the generation.
    pub policies: Vec<String>,
    /// Recording margin in percent (ignored for trace-fed jobs).
    pub margin_pct: usize,
    /// Wall-clock budget for the whole job in milliseconds. When it expires
    /// the server cancels the remaining cells (they come back with code
    /// `cancelled`) and closes the job with `done{reason:"deadline"}`.
    /// `None` defers to the server's `--default-deadline`, if any.
    pub deadline_ms: Option<u64>,
    /// Open-loop arrival spec (`poisson:RATE`, `mmpp:...`, `diurnal:...`)
    /// turning every cell into a service-workload run with per-request
    /// latency percentiles. `None` keeps the classic fixed-work sweep.
    pub arrivals: Option<String>,
    /// p99 latency SLO in milliseconds, judged per cell when `arrivals`
    /// is set. Cells report their violation count and p99 either way;
    /// the target just marks which cells breached.
    pub slo_p99_ms: Option<f64>,
}

impl JobSpec {
    /// A job over `mix` with the server-side defaults the CLI also uses:
    /// DDR3, 4 ms horizon, γ = 10 %, 5 ms epochs, 16 cores, 4 channels,
    /// default policy grid, 50 % margin.
    pub fn for_mix(id: impl Into<String>, mix: impl Into<String>) -> Self {
        JobSpec {
            id: id.into(),
            mix: mix.into(),
            trace: None,
            generation: MemGeneration::Ddr3,
            duration_ms: 4,
            seed: None,
            gamma_pct: 10.0,
            epoch_ms: 5,
            cores: 16,
            channels: 4,
            policies: Vec::new(),
            margin_pct: 50,
            deadline_ms: None,
            arrivals: None,
            slo_p99_ms: None,
        }
    }

    /// Shape checks that need no catalog: identifier present and
    /// single-line, horizon/epoch non-zero, sane bounds on the grid size.
    /// Catalog checks (mix exists, policies parse, hardware validates) are
    /// the serving layer's job.
    ///
    /// # Errors
    ///
    /// A human-readable description of the first malformed field.
    pub fn validate_shape(&self) -> Result<(), String> {
        if self.id.is_empty() || self.id.len() > 128 {
            return Err("job id must be 1..=128 characters".into());
        }
        if self.id.contains(['\n', '\r']) {
            return Err("job id must be a single line".into());
        }
        if self.mix.is_empty() {
            return Err("mix name must not be empty".into());
        }
        if self.duration_ms == 0 {
            return Err("duration_ms must be positive".into());
        }
        if self.epoch_ms == 0 {
            return Err("epoch_ms must be positive".into());
        }
        if self.duration_ms > 10_000 {
            return Err("duration_ms above 10000 is not admissible".into());
        }
        if self.policies.len() > 256 {
            return Err("at most 256 policy cells per job".into());
        }
        if self.deadline_ms == Some(0) {
            return Err("deadline_ms must be positive when present".into());
        }
        if let Some(spec) = &self.arrivals {
            if spec.is_empty() || spec.len() > 1024 || spec.contains(['\n', '\r']) {
                return Err("arrivals spec must be a non-empty single line".into());
            }
        }
        if let Some(slo) = self.slo_p99_ms {
            if !slo.is_finite() || slo <= 0.0 {
                return Err("slo_p99_ms must be a positive, finite number".into());
            }
            if self.arrivals.is_none() {
                return Err("slo_p99_ms requires an arrivals spec".into());
            }
        }
        Ok(())
    }
}

/// Structured error codes of the serve protocol. The wire form
/// ([`ErrorCode::as_str`]) is stable; clients switch on it rather than on
/// the human-readable detail string that accompanies it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ErrorCode {
    /// Admission control rejected the job: the server is at its configured
    /// queue depth. Back off and resubmit — the response carries the depth
    /// and limit so clients can pace themselves.
    Overloaded,
    /// The request line was not valid JSON or not a well-formed job.
    BadRequest,
    /// The mix name is not in the Table 1 catalog.
    UnknownMix,
    /// A policy name did not parse or is unavailable on the generation.
    UnknownPolicy,
    /// The job's hardware configuration failed invariant validation.
    InvalidConfig,
    /// Opening/validating the job's trace failed (including a fingerprint
    /// mismatch against the job configuration).
    Trace,
    /// The simulation itself failed after admission.
    Sim,
    /// The cell exceeded the server's per-cell watchdog budget and was
    /// abandoned. Siblings and the cache are unaffected.
    CellTimeout,
    /// The cell was cancelled cooperatively — its job's deadline expired,
    /// the client disconnected, or the server began draining mid-run.
    Cancelled,
    /// The server is draining after SIGTERM: in-flight jobs finish, new
    /// ones are rejected with this code. Resubmit to another instance.
    Draining,
    /// An unexpected server-side failure.
    Internal,
}

impl ErrorCode {
    /// Every code, for table-driven tests.
    pub const ALL: [ErrorCode; 11] = [
        ErrorCode::Overloaded,
        ErrorCode::BadRequest,
        ErrorCode::UnknownMix,
        ErrorCode::UnknownPolicy,
        ErrorCode::InvalidConfig,
        ErrorCode::Trace,
        ErrorCode::Sim,
        ErrorCode::CellTimeout,
        ErrorCode::Cancelled,
        ErrorCode::Draining,
        ErrorCode::Internal,
    ];

    /// The stable wire spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::Overloaded => "overloaded",
            ErrorCode::BadRequest => "bad_request",
            ErrorCode::UnknownMix => "unknown_mix",
            ErrorCode::UnknownPolicy => "unknown_policy",
            ErrorCode::InvalidConfig => "invalid_config",
            ErrorCode::Trace => "trace",
            ErrorCode::Sim => "sim",
            ErrorCode::CellTimeout => "cell_timeout",
            ErrorCode::Cancelled => "cancelled",
            ErrorCode::Draining => "draining",
            ErrorCode::Internal => "internal",
        }
    }

    /// Parses the wire spelling back.
    pub fn parse(s: &str) -> Option<ErrorCode> {
        ErrorCode::ALL.into_iter().find(|c| c.as_str() == s)
    }
}

impl fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The per-cell result metrics streamed back for each (frequency × policy)
/// grid point, mirroring the headline numbers of the CLI's JSON output.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellMetrics {
    /// Fractional memory-subsystem energy savings versus baseline.
    pub memory_savings: f64,
    /// Fractional full-system energy savings versus baseline.
    pub system_savings: f64,
    /// Mean per-application CPI increase.
    pub cpi_increase_avg: f64,
    /// Worst per-application CPI increase.
    pub cpi_increase_max: f64,
    /// Mean bus frequency over the run, MHz.
    pub mean_frequency_mhz: f64,
    /// p99 request latency in milliseconds (`None` unless the job carried
    /// an open-loop `arrivals` spec).
    pub p99_ms: Option<f64>,
    /// Requests over the cell's SLO target (`None` without `arrivals`; a
    /// zero-valued `Some` when arrivals ran without an SLO target).
    pub slo_violations: Option<u64>,
}

/// A structured per-cell failure: the machine-readable code clients switch
/// on plus the human-readable detail that explains it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellFailure {
    /// Why the cell failed ([`ErrorCode::Sim`], [`ErrorCode::Cancelled`],
    /// [`ErrorCode::CellTimeout`], …).
    pub code: ErrorCode,
    /// Human-readable rendering of the underlying error.
    pub detail: String,
}

impl CellFailure {
    /// A failure with the given code and detail.
    pub fn new(code: ErrorCode, detail: impl Into<String>) -> Self {
        CellFailure {
            code,
            detail: detail.into(),
        }
    }

    /// A simulation failure ([`ErrorCode::Sim`]) — the historical default
    /// for cells that died inside the engine.
    pub fn sim(detail: impl Into<String>) -> Self {
        CellFailure::new(ErrorCode::Sim, detail)
    }
}

impl fmt::Display for CellFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.code, self.detail)
    }
}

/// One evaluated cell: its policy label, whether it was served from the
/// calibration cache, and the metrics or the structured failure.
#[derive(Debug, Clone, PartialEq)]
pub struct CellOutcome {
    /// The policy name the cell ran (as given in [`JobSpec::policies`] or
    /// expanded from the default grid).
    pub label: String,
    /// Whether the result came from the server's result cache.
    pub cached: bool,
    /// Metrics, or the structured failure for a failed cell. A failed
    /// cell never poisons its siblings.
    pub result: Result<CellMetrics, CellFailure>,
}

/// Why a job's `done` line was emitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DoneReason {
    /// Every cell ran to its natural end.
    #[default]
    Complete,
    /// The job's deadline expired; unfinished cells were cancelled.
    Deadline,
    /// The server was draining (SIGTERM); the job still finished its cells
    /// but clients should move new work elsewhere.
    Draining,
}

impl DoneReason {
    /// Every reason, for table-driven tests.
    pub const ALL: [DoneReason; 3] = [
        DoneReason::Complete,
        DoneReason::Deadline,
        DoneReason::Draining,
    ];

    /// The stable wire spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            DoneReason::Complete => "complete",
            DoneReason::Deadline => "deadline",
            DoneReason::Draining => "draining",
        }
    }

    /// Parses the wire spelling back.
    pub fn parse(s: &str) -> Option<DoneReason> {
        DoneReason::ALL.into_iter().find(|r| r.as_str() == s)
    }
}

impl fmt::Display for DoneReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The final summary line of a completed job.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSummary {
    /// Total cells in the job.
    pub cells: usize,
    /// Cells that completed with metrics.
    pub ok: usize,
    /// Cells that failed (structured failure, timeout or cancellation).
    pub failed: usize,
    /// Cache hits this job observed (cells plus the calibration baseline).
    pub cache_hits: u64,
    /// Cache misses this job observed.
    pub cache_misses: u64,
    /// Cache entries this job's inserts evicted (cells plus baselines).
    pub evictions: u64,
    /// Server-side wall-clock of the job, milliseconds.
    pub wall_ms: f64,
    /// Why the job closed ([`DoneReason::Complete`] in the happy path).
    pub reason: DoneReason,
}

impl JobSummary {
    /// Fraction of this job's cache lookups that hit (0 when none).
    pub fn hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_codes_round_trip() {
        for code in ErrorCode::ALL {
            assert_eq!(ErrorCode::parse(code.as_str()), Some(code));
            assert_eq!(code.to_string(), code.as_str());
        }
        assert_eq!(ErrorCode::parse("nope"), None);
    }

    #[test]
    fn done_reasons_round_trip() {
        for reason in DoneReason::ALL {
            assert_eq!(DoneReason::parse(reason.as_str()), Some(reason));
            assert_eq!(reason.to_string(), reason.as_str());
        }
        assert_eq!(DoneReason::parse("nope"), None);
        assert_eq!(DoneReason::default(), DoneReason::Complete);
    }

    #[test]
    fn cell_failure_renders_code_and_detail() {
        let f = CellFailure::new(ErrorCode::CellTimeout, "exceeded 50 ms");
        assert_eq!(f.to_string(), "cell_timeout: exceeded 50 ms");
        assert_eq!(CellFailure::sim("boom").code, ErrorCode::Sim);
    }

    #[test]
    fn service_fields_are_shape_checked() {
        let mut job = JobSpec::for_mix("j1", "MID1");
        job.slo_p99_ms = Some(5.0);
        assert!(job
            .validate_shape()
            .unwrap_err()
            .contains("requires an arrivals spec"));
        job.arrivals = Some("poisson:1500".into());
        assert!(job.validate_shape().is_ok());
        job.slo_p99_ms = Some(0.0);
        assert!(job.validate_shape().unwrap_err().contains("slo_p99_ms"));
        job.slo_p99_ms = Some(f64::NAN);
        assert!(job.validate_shape().unwrap_err().contains("slo_p99_ms"));
        job.slo_p99_ms = None;
        job.arrivals = Some("poi\nsson".into());
        assert!(job.validate_shape().unwrap_err().contains("single line"));
        job.arrivals = Some(String::new());
        assert!(job.validate_shape().unwrap_err().contains("non-empty"));
    }

    #[test]
    fn zero_deadline_is_rejected() {
        let mut job = JobSpec::for_mix("j1", "MID1");
        job.deadline_ms = Some(0);
        assert!(job.validate_shape().unwrap_err().contains("deadline_ms"));
        job.deadline_ms = Some(250);
        assert!(job.validate_shape().is_ok());
    }

    #[test]
    fn job_defaults_pass_shape_checks() {
        let job = JobSpec::for_mix("j1", "MID1");
        assert!(job.validate_shape().is_ok());
        assert_eq!(job.generation, MemGeneration::Ddr3);
        assert!(job.policies.is_empty());
    }

    #[test]
    fn shape_checks_reject_malformed_jobs() {
        let mut job = JobSpec::for_mix("", "MID1");
        assert!(job.validate_shape().unwrap_err().contains("job id"));
        job.id = "a\nb".into();
        assert!(job.validate_shape().unwrap_err().contains("single line"));
        job.id = "ok".into();
        job.duration_ms = 0;
        assert!(job.validate_shape().unwrap_err().contains("duration_ms"));
        job.duration_ms = 4;
        job.mix = String::new();
        assert!(job.validate_shape().unwrap_err().contains("mix"));
        job.mix = "MID1".into();
        job.policies = vec!["memscale".into(); 257];
        assert!(job.validate_shape().unwrap_err().contains("256"));
    }

    #[test]
    fn summary_hit_rate() {
        let mut s = JobSummary {
            cells: 4,
            ok: 4,
            failed: 0,
            cache_hits: 3,
            cache_misses: 1,
            evictions: 0,
            wall_ms: 12.0,
            reason: DoneReason::Complete,
        };
        assert!((s.hit_rate() - 0.75).abs() < 1e-12);
        s.cache_hits = 0;
        s.cache_misses = 0;
        assert_eq!(s.hit_rate(), 0.0);
    }
}
