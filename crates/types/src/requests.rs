//! Service-request latency statistics and SLO targets.
//!
//! The arrivals subsystem (`memscale-arrivals`) injects open-loop service
//! requests into a run and measures each request's submit-to-complete
//! latency. These are the plain-data types the rest of the stack speaks:
//! the simulator attaches a [`RequestStats`] to its `RunResult`, the `slo`
//! CLI subcommand and the sweep server judge policies against an
//! [`SloSpec`]. Keeping them here (dependency-free) lets the serve layer
//! carry SLO verdicts without depending on the simulator or the arrivals
//! crate.

use crate::time::Picos;

/// A service-level objective on request latency.
///
/// The only objective modeled today is a tail-latency bound: the p99
/// request latency must stay at or below `p99_ms`. Violations are counted
/// per *request* (every request slower than the bound), so a breach is
/// visible both in the aggregate percentile and in the raw count.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SloSpec {
    /// The p99 latency bound, in milliseconds of simulated time.
    pub p99_ms: f64,
}

impl SloSpec {
    /// Creates a p99 latency objective.
    ///
    /// # Panics
    ///
    /// Panics if `p99_ms` is not finite and positive.
    pub fn p99(p99_ms: f64) -> Self {
        assert!(
            p99_ms.is_finite() && p99_ms > 0.0,
            "SLO p99 bound must be finite and positive, got {p99_ms}"
        );
        SloSpec { p99_ms }
    }

    /// The bound as simulated time.
    pub fn p99_bound(&self) -> Picos {
        Picos::from_ns_f64(self.p99_ms * 1e6)
    }
}

/// Aggregated per-request latency statistics of one run.
///
/// Latencies are measured submit-to-complete in simulated time: from the
/// request's scheduled (open-loop) arrival instant to the instant the last
/// core finishes the request's memory burst, as observed by the engine at
/// its next event boundary. Percentiles use the nearest-rank method over
/// the exact integer-picosecond latency population, so equal runs produce
/// bit-equal statistics.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RequestStats {
    /// Requests that were submitted within the run horizon.
    pub submitted: u64,
    /// Requests that completed before the run ended.
    pub completed: u64,
    /// Median (p50) latency, milliseconds.
    pub p50_ms: f64,
    /// 95th-percentile latency, milliseconds.
    pub p95_ms: f64,
    /// 99th-percentile latency, milliseconds.
    pub p99_ms: f64,
    /// Mean latency, milliseconds.
    pub mean_ms: f64,
    /// Worst observed latency, milliseconds.
    pub max_ms: f64,
    /// Requests whose latency exceeded the SLO bound (0 when no SLO was
    /// configured).
    pub slo_violations: u64,
}

impl RequestStats {
    /// Builds the statistics from a population of completed-request
    /// latencies. `latencies` need not be sorted; it is consumed so the
    /// sort happens in place. Requests still in flight at the end of the
    /// run count as submitted but not completed (and are *not* judged
    /// against the SLO — the run horizon censors them).
    pub fn from_latencies(mut latencies: Vec<Picos>, submitted: u64, slo: Option<SloSpec>) -> Self {
        latencies.sort_unstable();
        let completed = latencies.len() as u64;
        if latencies.is_empty() {
            return RequestStats {
                submitted,
                ..RequestStats::default()
            };
        }
        let pct = |p: f64| -> f64 {
            // Nearest-rank: the smallest latency with at least p·n
            // observations at or below it.
            let rank = (p * completed as f64).ceil().max(1.0);
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)] // rank in [1, n]
            let idx = (rank as usize).min(latencies.len()) - 1;
            latencies[idx].as_ms_f64()
        };
        let sum_ps: u128 = latencies.iter().map(|l| u128::from(l.as_ps())).sum();
        let mean_ms = (sum_ps as f64 / completed as f64) / 1e9;
        let slo_violations = slo.map_or(0, |s| {
            let bound = s.p99_bound();
            latencies.iter().filter(|&&l| l > bound).count() as u64
        });
        RequestStats {
            submitted,
            completed,
            p50_ms: pct(0.50),
            p95_ms: pct(0.95),
            p99_ms: pct(0.99),
            mean_ms,
            max_ms: latencies[latencies.len() - 1].as_ms_f64(),
            slo_violations,
        }
    }

    /// Whether this run breached `slo` on its p99 latency.
    pub fn breaches(&self, slo: SloSpec) -> bool {
        self.completed > 0 && self.p99_ms > slo.p99_ms
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> Picos {
        Picos::from_ms(v)
    }

    #[test]
    fn empty_population_yields_zeroed_stats() {
        let s = RequestStats::from_latencies(Vec::new(), 3, Some(SloSpec::p99(1.0)));
        assert_eq!(s.submitted, 3);
        assert_eq!(s.completed, 0);
        assert_eq!(s.p99_ms, 0.0);
        assert_eq!(s.slo_violations, 0);
        assert!(!s.breaches(SloSpec::p99(1.0)));
    }

    #[test]
    fn nearest_rank_percentiles() {
        // 100 latencies 1..=100 ms: p50 = 50, p95 = 95, p99 = 99.
        let pop: Vec<Picos> = (1..=100).map(ms).collect();
        let s = RequestStats::from_latencies(pop, 100, None);
        assert_eq!(s.p50_ms, 50.0);
        assert_eq!(s.p95_ms, 95.0);
        assert_eq!(s.p99_ms, 99.0);
        assert_eq!(s.max_ms, 100.0);
        assert_eq!(s.mean_ms, 50.5);
    }

    #[test]
    fn single_sample_population() {
        let s = RequestStats::from_latencies(vec![ms(7)], 1, None);
        assert_eq!(s.p50_ms, 7.0);
        assert_eq!(s.p99_ms, 7.0);
        assert_eq!(s.mean_ms, 7.0);
    }

    #[test]
    fn violations_count_requests_over_the_bound() {
        let pop: Vec<Picos> = (1..=10).map(ms).collect();
        let s = RequestStats::from_latencies(pop, 10, Some(SloSpec::p99(8.0)));
        // 9 ms and 10 ms exceed the 8 ms bound.
        assert_eq!(s.slo_violations, 2);
        assert!(s.breaches(SloSpec::p99(8.0)));
        assert!(!s.breaches(SloSpec::p99(10.0)));
    }

    #[test]
    fn unsorted_input_is_sorted_internally() {
        let s = RequestStats::from_latencies(vec![ms(30), ms(10), ms(20)], 3, None);
        assert_eq!(s.p50_ms, 20.0);
        assert_eq!(s.max_ms, 30.0);
    }

    #[test]
    #[should_panic(expected = "finite and positive")]
    fn slo_rejects_nonpositive_bound() {
        let _ = SloSpec::p99(0.0);
    }
}
