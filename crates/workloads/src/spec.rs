//! The catalog of SPEC-named application profiles.
//!
//! Per-application RPKI/WPKI values were calibrated (iterative proportional
//! fitting over the Table 1 constraints) so that the *mix-level* averages of
//! all twelve workloads reproduce Table 1 of the paper; applications shared
//! between mixes receive a single consistent value. Locality and CPU CPI are
//! assigned by workload class: streaming memory hogs (swim, applu, …) get
//! high sequential locality, ILP applications get low memory intensity and
//! slightly lower CPI.
//!
//! `apsi` carries the Fig 7 phase schedule: a compute-dominated first phase
//! followed by a memory-intensive phase, producing the mid-run frequency
//! bump the paper's timeline shows.

use crate::profile::{AppProfile, Phase};

/// Calibrated `(name, rpki, wpki, locality, base_cpi)` table.
///
/// `base_cpi` is the non-missing-instruction CPI of the in-order core
/// (floating-point dependency stalls, L1/L2 hit latency); it is calibrated
/// per class so that whole-run CPIs and per-core bandwidth demands land in
/// the regime of the paper's Figs 7/8 timelines (MEM applications run at
/// CPI ≈ 5-15 there, not at IPC 1).
const CATALOG: &[(&str, f64, f64, f64, f64)] = &[
    // ILP class.
    ("vortex", 0.2996, 0.2013, 0.40, 1.0),
    ("gcc", 0.4509, 0.0248, 0.45, 1.1),
    ("sixtrack", 0.4196, 0.0013, 0.50, 1.2),
    ("mesa", 0.3100, 0.0126, 0.45, 1.0),
    ("perlbmk", 0.1752, 0.0131, 0.40, 0.9),
    ("crafty", 0.1752, 0.0131, 0.35, 0.9),
    ("gzip", 0.1448, 0.0069, 0.55, 0.9),
    ("eon", 0.1448, 0.0069, 0.40, 1.0),
    // MID class.
    ("ammp", 1.8574, 0.0115, 0.50, 1.4),
    ("gap", 1.8574, 0.0115, 0.50, 1.2),
    ("wupwise", 1.5826, 0.0085, 0.55, 1.3),
    ("vpr", 1.5826, 0.0085, 0.40, 1.2),
    ("astar", 2.6374, 0.1315, 0.35, 1.3),
    ("parser", 2.6374, 0.1315, 0.40, 1.2),
    ("twolf", 2.5826, 0.0485, 0.35, 1.4),
    ("facerec", 2.5826, 0.0485, 0.60, 1.3),
    ("bzip2", 2.9626, 0.3085, 0.55, 1.2),
    // MEM class.
    ("swim", 20.7786, 6.3630, 0.85, 3.0),
    ("applu", 20.7786, 6.3630, 0.85, 2.8),
    ("art", 12.3096, 0.6002, 0.75, 2.4),
    ("lucas", 12.3096, 0.6002, 0.70, 2.2),
    ("fma3d", 5.8717, 0.0155, 0.70, 1.8),
    ("mgrid", 5.8717, 0.0155, 0.80, 1.8),
    ("galgel", 10.8763, 0.5590, 0.75, 2.0),
    ("equake", 10.8763, 0.5590, 0.70, 2.0),
];

/// Instructions of apsi's compute-dominated opening phase (≈45 ms at 4 GHz
/// and CPI ≈ 1.3, matching the Fig 7 timeline).
const APSI_PHASE1_INSTRUCTIONS: u64 = 130_000_000;

/// Looks up an application profile by SPEC name.
///
/// Returns `None` for unknown names.
///
/// # Example
///
/// ```
/// use memscale_workloads::spec::profile;
///
/// let swim = profile("swim").unwrap();
/// assert!(swim.average_rpki() > 20.0);
/// assert!(profile("doom").is_none());
/// ```
pub fn profile(name: &str) -> Option<AppProfile> {
    if name == "apsi" {
        // Calibrated long-run average ≈ 2.96 RPKI; split into a quiet phase
        // and a memory-heavy phase (Fig 7's behaviour).
        return Some(
            AppProfile::steady("apsi", 2.9626, 0.3085)
                .with_locality(0.55)
                .with_base_cpi(1.4)
                .with_phases(vec![
                    Phase::bounded(APSI_PHASE1_INSTRUCTIONS, 1.2, 0.12),
                    Phase::steady(9.0, 0.95),
                ]),
        );
    }
    CATALOG
        .iter()
        .find(|(n, ..)| *n == name)
        .map(|&(n, rpki, wpki, locality, cpi)| {
            AppProfile::steady(n, rpki, wpki)
                .with_locality(locality)
                .with_base_cpi(cpi)
        })
}

/// Every application name in the catalog (including `apsi`).
pub fn all_names() -> Vec<&'static str> {
    let mut names: Vec<&'static str> = CATALOG.iter().map(|(n, ..)| *n).collect();
    names.push("apsi");
    names
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_has_26_applications() {
        assert_eq!(all_names().len(), 26);
    }

    #[test]
    fn every_name_resolves() {
        for name in all_names() {
            let p = profile(name).unwrap_or_else(|| panic!("missing {name}"));
            assert_eq!(p.name, name);
            assert!(p.average_rpki() > 0.0);
        }
    }

    #[test]
    fn apsi_has_a_phase_change() {
        let apsi = profile("apsi").unwrap();
        assert_eq!(apsi.phases.len(), 2);
        assert!(apsi.phase_at(0).rpki < 2.0);
        assert!(apsi.phase_at(200_000_000).rpki > 8.0);
    }

    #[test]
    fn classes_have_expected_intensity_ordering() {
        let ilp = profile("perlbmk").unwrap().average_rpki();
        let mid = profile("astar").unwrap().average_rpki();
        let mem = profile("swim").unwrap().average_rpki();
        assert!(ilp < mid && mid < mem);
    }

    #[test]
    fn unknown_name_is_none() {
        assert!(profile("quake3").is_none());
    }
}
