//! Application behaviour profiles.

/// One execution phase of an application: a memory-intensity level held for
/// a number of instructions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Phase {
    /// Instructions this phase lasts; `None` = until the end of execution.
    pub instructions: Option<u64>,
    /// LLC misses per kilo-instruction during this phase.
    pub rpki: f64,
    /// LLC writebacks per kilo-instruction during this phase.
    pub wpki: f64,
}

impl Phase {
    /// A phase running forever at the given intensities.
    pub const fn steady(rpki: f64, wpki: f64) -> Self {
        Phase {
            instructions: None,
            rpki,
            wpki,
        }
    }

    /// A bounded phase.
    pub const fn bounded(instructions: u64, rpki: f64, wpki: f64) -> Self {
        Phase {
            instructions: Some(instructions),
            rpki,
            wpki,
        }
    }
}

/// Statistical profile of one application.
///
/// # Example
///
/// ```
/// use memscale_workloads::profile::AppProfile;
///
/// let p = AppProfile::steady("swim", 20.8, 6.4).with_locality(0.8);
/// assert_eq!(p.average_rpki(), 20.8);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct AppProfile {
    /// SPEC-style application name.
    pub name: String,
    /// Cycles per instruction of non-missing work (`E[TPI_cpu]·F_cpu`).
    pub base_cpi: f64,
    /// Probability that a miss continues the current sequential stream
    /// rather than jumping to a random location.
    pub locality: f64,
    /// Phase schedule; the last phase should be unbounded.
    pub phases: Vec<Phase>,
}

impl AppProfile {
    /// A single-phase profile with default CPU behaviour.
    pub fn steady(name: &str, rpki: f64, wpki: f64) -> Self {
        AppProfile {
            name: name.to_owned(),
            base_cpi: 1.0,
            locality: 0.5,
            phases: vec![Phase::steady(rpki, wpki)],
        }
    }

    /// Sets the sequential-stream locality (clamped to `[0, 1]`).
    #[must_use]
    pub fn with_locality(mut self, locality: f64) -> Self {
        self.locality = locality.clamp(0.0, 1.0);
        self
    }

    /// Sets the non-miss CPI.
    ///
    /// # Panics
    ///
    /// Panics if `cpi` is not positive.
    #[must_use]
    pub fn with_base_cpi(mut self, cpi: f64) -> Self {
        assert!(cpi > 0.0, "base CPI must be positive");
        self.base_cpi = cpi;
        self
    }

    /// Replaces the phase schedule.
    ///
    /// # Panics
    ///
    /// Panics if `phases` is empty.
    #[must_use]
    pub fn with_phases(mut self, phases: Vec<Phase>) -> Self {
        assert!(!phases.is_empty(), "need at least one phase");
        self.phases = phases;
        self
    }

    /// The phase in effect after `instructions` retired instructions.
    pub fn phase_at(&self, instructions: u64) -> &Phase {
        let mut consumed = 0u64;
        for phase in &self.phases {
            match phase.instructions {
                Some(n) if instructions >= consumed + n => consumed += n,
                _ => return phase,
            }
        }
        self.phases.last().expect("non-empty phases")
    }

    /// RPKI of the first unbounded phase (or the last phase), i.e. the
    /// steady-state intensity.
    pub fn average_rpki(&self) -> f64 {
        self.phases
            .iter()
            .find(|p| p.instructions.is_none())
            .unwrap_or_else(|| self.phases.last().expect("non-empty"))
            .rpki
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn steady_profile_has_one_phase() {
        let p = AppProfile::steady("art", 12.3, 0.6);
        assert_eq!(p.phases.len(), 1);
        assert_eq!(p.phase_at(0).rpki, 12.3);
        assert_eq!(p.phase_at(u64::MAX).rpki, 12.3);
    }

    #[test]
    fn phase_schedule_switches_at_boundaries() {
        let p = AppProfile::steady("apsi", 1.0, 0.1).with_phases(vec![
            Phase::bounded(1_000, 1.0, 0.1),
            Phase::steady(9.0, 0.5),
        ]);
        assert_eq!(p.phase_at(0).rpki, 1.0);
        assert_eq!(p.phase_at(999).rpki, 1.0);
        assert_eq!(p.phase_at(1_000).rpki, 9.0);
        assert_eq!(p.phase_at(5_000_000).rpki, 9.0);
    }

    #[test]
    fn multi_bounded_phases() {
        let p = AppProfile::steady("x", 1.0, 0.0).with_phases(vec![
            Phase::bounded(100, 1.0, 0.0),
            Phase::bounded(100, 2.0, 0.0),
            Phase::steady(3.0, 0.0),
        ]);
        assert_eq!(p.phase_at(50).rpki, 1.0);
        assert_eq!(p.phase_at(150).rpki, 2.0);
        assert_eq!(p.phase_at(250).rpki, 3.0);
    }

    #[test]
    fn builders_clamp_and_validate() {
        let p = AppProfile::steady("x", 1.0, 0.0).with_locality(1.5);
        assert_eq!(p.locality, 1.0);
        let p = p.with_base_cpi(1.4);
        assert_eq!(p.base_cpi, 1.4);
    }

    #[test]
    fn average_rpki_uses_unbounded_phase() {
        let p = AppProfile::steady("apsi", 1.0, 0.0)
            .with_phases(vec![Phase::bounded(100, 1.0, 0.0), Phase::steady(9.0, 0.0)]);
        assert_eq!(p.average_rpki(), 9.0);
    }
}
