//! Minimal deterministic `ChaCha8` pseudo-random generator.
//!
//! The growth container builds fully offline, so this module replaces the
//! `rand`/`rand_chacha` crates with a self-contained implementation of the
//! `ChaCha` stream cipher (8 rounds) driven as a PRNG. Identical seeds produce
//! identical streams on every platform, which is all the trace generator
//! needs: reproducibility, uniformity and independence — not cryptographic
//! strength.
//!
//! Key derivation is domain-separated: [`substream_key`] hashes
//! `(seed, domain, index)` through splitmix64 so that the arrival-process
//! streams ([`DOMAIN_ARRIVALS`]) and the workload-content streams
//! ([`DOMAIN_WORKLOAD`]) of the *same* user seed are statistically
//! independent of each other.

/// The splitmix64 increment (the golden-ratio gamma).
const GOLDEN_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

/// Substream domain of workload content: miss gaps, addresses, writebacks.
pub const DOMAIN_WORKLOAD: u64 = 0x574B_4C44; // "WKLD"

/// Substream domain of service-traffic arrival processes.
pub const DOMAIN_ARRIVALS: u64 = 0x4152_5256; // "ARRV"

/// Advances a splitmix64 state and returns the next output word.
///
/// This is Steele, Lea & Flood's `SplitMix64`: a Weyl sequence stepped by
/// the golden-ratio gamma, pushed through a 64-bit variant of the
/// `MurmurHash3` finalizer. It is used here only to *derive keys*, never as
/// the simulation PRNG itself.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(GOLDEN_GAMMA);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives the 32-byte [`ChaCha8`] key of one `(domain, index)` substream
/// of `seed`.
///
/// Every consumer of randomness draws from its own substream: workload
/// miss generators use [`DOMAIN_WORKLOAD`] with the app index, arrival
/// processes use [`DOMAIN_ARRIVALS`]. Because domain and index are each
/// absorbed through a full splitmix64 step before the key words are
/// squeezed out, the same user-facing seed yields *independent* streams
/// for traffic timing and workload content — raw `(seed, index)` byte
/// concatenation (the pre-substream scheme) made those trivially related.
pub fn substream_key(seed: u64, domain: u64, index: u64) -> [u8; 32] {
    let mut state = seed;
    let a = splitmix64(&mut state);
    state ^= domain.wrapping_mul(GOLDEN_GAMMA) ^ a;
    let b = splitmix64(&mut state);
    state ^= index.wrapping_mul(GOLDEN_GAMMA) ^ b;
    let mut key = [0u8; 32];
    for chunk in key.chunks_exact_mut(8) {
        chunk.copy_from_slice(&splitmix64(&mut state).to_le_bytes());
    }
    key
}

/// A ChaCha8-based pseudo-random number generator.
///
/// Seeded from a 32-byte key; the block counter starts at zero and the
/// nonce words are fixed, so the stream is a pure function of the key.
#[derive(Debug, Clone)]
pub struct ChaCha8 {
    key: [u32; 8],
    counter: u64,
    buf: [u32; 16],
    /// Next unread word in `buf`; 16 means the buffer is exhausted.
    idx: usize,
}

const CHACHA_CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8 {
    /// Creates a generator from a 32-byte seed.
    pub fn from_seed(seed: [u8; 32]) -> Self {
        let mut key = [0u32; 8];
        for (i, word) in key.iter_mut().enumerate() {
            let mut bytes = [0u8; 4];
            bytes.copy_from_slice(&seed[i * 4..i * 4 + 4]);
            *word = u32::from_le_bytes(bytes);
        }
        ChaCha8 {
            key,
            counter: 0,
            buf: [0; 16],
            idx: 16,
        }
    }

    /// Runs the 8-round `ChaCha` block function, refilling the buffer.
    #[allow(clippy::cast_possible_truncation)] // the 64-bit counter is split into two words
    fn refill(&mut self) {
        let input: [u32; 16] = [
            CHACHA_CONSTANTS[0],
            CHACHA_CONSTANTS[1],
            CHACHA_CONSTANTS[2],
            CHACHA_CONSTANTS[3],
            self.key[0],
            self.key[1],
            self.key[2],
            self.key[3],
            self.key[4],
            self.key[5],
            self.key[6],
            self.key[7],
            self.counter as u32,
            (self.counter >> 32) as u32,
            0,
            0,
        ];
        let mut state = input;
        for _ in 0..4 {
            // Column rounds.
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            // Diagonal rounds.
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (out, inp) in state.iter_mut().zip(input.iter()) {
            *out = out.wrapping_add(*inp);
        }
        self.buf = state;
        self.counter = self.counter.wrapping_add(1);
        self.idx = 0;
    }

    /// The next 32 uniformly random bits.
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        if self.idx >= 16 {
            self.refill();
        }
        let w = self.buf[self.idx];
        self.idx += 1;
        w
    }

    /// The next 64 uniformly random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let lo = u64::from(self.next_u32());
        let hi = u64::from(self.next_u32());
        (hi << 32) | lo
    }

    /// A uniform float in the half-open unit interval `[0, 1)`, with 53
    /// bits of precision.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform float in the *open* unit interval `(0, 1)`, safe to pass
    /// to `ln()`.
    #[inline]
    pub fn next_unit_open(&mut self) -> f64 {
        self.next_f64().max(f64::EPSILON)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn next_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// A uniform integer in `[0, bound)` via fixed-point multiplication.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "next_below needs a positive bound");
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng(tag: u8) -> ChaCha8 {
        let mut seed = [0u8; 32];
        seed[0] = tag;
        ChaCha8::from_seed(seed)
    }

    #[test]
    fn identical_seeds_identical_streams() {
        let mut a = rng(7);
        let mut b = rng(7);
        for _ in 0..1_000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = rng(1);
        let mut b = rng(2);
        let same = (0..100).filter(|_| a.next_u32() == b.next_u32()).count();
        assert!(same < 3, "streams should diverge, {same} collisions");
    }

    #[test]
    fn unit_floats_stay_in_range() {
        let mut r = rng(3);
        for _ in 0..10_000 {
            let f = r.next_f64();
            assert!((0.0..1.0).contains(&f));
            let o = r.next_unit_open();
            assert!(o > 0.0 && o < 1.0);
        }
    }

    #[test]
    fn next_below_respects_bound() {
        let mut r = rng(4);
        for _ in 0..10_000 {
            assert!(r.next_below(37) < 37);
        }
    }

    #[test]
    fn next_below_is_roughly_uniform() {
        let mut r = rng(5);
        let mut counts = [0u32; 8];
        for _ in 0..80_000 {
            counts[usize::try_from(r.next_below(8)).unwrap()] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c), "bucket count {c}");
        }
    }

    #[test]
    fn bool_probability_tracks() {
        let mut r = rng(6);
        let hits = (0..100_000).filter(|_| r.next_bool(0.3)).count();
        assert!((28_000..32_000).contains(&hits), "hits {hits}");
    }

    #[test]
    fn splitmix64_matches_reference_vectors() {
        // First three outputs of SplitMix64 from state 0 (the published
        // reference sequence).
        let mut state = 0u64;
        assert_eq!(splitmix64(&mut state), 0xE220_A839_7B1D_CDAF);
        assert_eq!(splitmix64(&mut state), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(splitmix64(&mut state), 0x06C4_5D18_8009_454F);
    }

    #[test]
    fn substream_keys_are_deterministic_and_distinct() {
        let a = substream_key(42, DOMAIN_WORKLOAD, 0);
        assert_eq!(a, substream_key(42, DOMAIN_WORKLOAD, 0));
        // Varying any one input changes the key.
        assert_ne!(a, substream_key(43, DOMAIN_WORKLOAD, 0));
        assert_ne!(a, substream_key(42, DOMAIN_ARRIVALS, 0));
        assert_ne!(a, substream_key(42, DOMAIN_WORKLOAD, 1));
    }

    #[test]
    fn same_seed_substreams_are_uncorrelated_across_domains() {
        // The whole point of domain separation: the arrival stream and the
        // workload stream of one seed must not be the same bit stream.
        let mut work = ChaCha8::from_seed(substream_key(7, DOMAIN_WORKLOAD, 0));
        let mut arr = ChaCha8::from_seed(substream_key(7, DOMAIN_ARRIVALS, 0));
        let same = (0..1_000)
            .filter(|_| work.next_u32() == arr.next_u32())
            .count();
        assert!(same < 5, "domain streams should diverge, {same} collisions");
    }
}
