//! Synthetic SPEC-like workloads for the MemScale evaluation.
//!
//! The paper drives its memory-system simulator with M5-collected LLC
//! miss/writeback traces of SPEC CPU2000/2006 mixes (Table 1). Those traces
//! are not redistributable, so this crate substitutes deterministic synthetic
//! generators whose *statistics* match Table 1: per-application LLC misses
//! and writebacks per kilo-instruction (RPKI/WPKI, calibrated so every mix
//! reproduces its published mix-level averages), spatial locality, and the
//! phase behaviour the paper highlights (apsi's Fig 7 phase change).
//!
//! The policy under study never sees instructions — only the miss/writeback
//! stream and its counter statistics — so matching the stream's rate,
//! burstiness and locality exercises identical code paths (see DESIGN.md §4).
//!
//! # Example
//!
//! ```
//! use memscale_workloads::mix::Mix;
//!
//! let mixes = Mix::table1();
//! assert_eq!(mixes.len(), 12);
//! let mid3 = Mix::by_name("MID3").unwrap();
//! let mut traces = mid3.traces(16, 1 << 24, 42);
//! let ev = traces[0].next_miss();
//! assert!(ev.gap_instructions >= 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod generator;
pub mod mix;
pub mod profile;
pub mod rng;
pub mod spec;

pub use generator::{MissEvent, MissSource, MissStream};
pub use mix::{Mix, UnknownMix, WorkloadClass};
pub use profile::{AppProfile, Phase};
