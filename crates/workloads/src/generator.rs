//! Deterministic synthetic miss-stream generation.
//!
//! Each [`MissStream`] owns a seeded [`ChaCha8`] PRNG (reproducible across runs
//! and platforms) and turns its [`AppProfile`] into a stream of [`MissEvent`]s:
//! geometric inter-miss instruction gaps whose mean follows the profile's
//! current phase, addresses that either continue a sequential stream (cache
//! lines rotate across channels and banks under the system's interleaving)
//! or jump to a random location in the application's address slice, and
//! occasional dirty-line writebacks at the profile's WPKI/RPKI ratio.

use crate::profile::AppProfile;
use crate::rng::ChaCha8;
use memscale_types::address::PhysAddr;
use memscale_types::ids::AppId;

/// One LLC miss produced by a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MissEvent {
    /// Instructions the core retires *before* issuing this miss (≥ 1).
    pub gap_instructions: u64,
    /// Physical address of the missing cache line.
    pub addr: PhysAddr,
    /// Dirty line evicted alongside this miss, if any.
    pub writeback: Option<PhysAddr>,
}

/// Anything that can feed one application's miss/writeback stream to the
/// simulator: the live synthetic generator ([`MissStream`]) or a recorded
/// trace replayed from an artifact (`memscale-trace`'s replay streams).
///
/// The simulation engine is written against this interface only, so a run
/// cannot tell a live generator from a bit-identical replay.
pub trait MissSource: std::fmt::Debug {
    /// The application instance this source belongs to.
    fn app(&self) -> AppId;

    /// Produces the next miss, or `None` when the source is exhausted.
    /// Live generators are infinite and never return `None`; replayed
    /// traces end when the recorded stream runs out.
    fn next_event(&mut self) -> Option<MissEvent>;
}

impl MissSource for MissStream {
    fn app(&self) -> AppId {
        self.app
    }

    fn next_event(&mut self) -> Option<MissEvent> {
        Some(self.next_miss())
    }
}

/// A deterministic synthetic LLC miss/writeback stream for one application
/// instance.
#[derive(Debug, Clone)]
pub struct MissStream {
    profile: AppProfile,
    app: AppId,
    rng: ChaCha8,
    /// First cache line of this instance's address slice.
    slice_start: u64,
    /// Number of cache lines in the slice.
    slice_len: u64,
    /// Next sequential line within the slice (relative).
    cursor: u64,
    instructions: u64,
    misses: u64,
    writebacks: u64,
}

impl MissStream {
    /// Creates the trace for application instance `app`, owning a slice of
    /// `slice_len` cache lines starting at line `app.index() * slice_len`.
    ///
    /// Identical `(profile, app, slice_len, seed)` inputs always produce the
    /// identical stream.
    ///
    /// # Panics
    ///
    /// Panics if `slice_len` is zero.
    pub fn new(profile: AppProfile, app: AppId, slice_len: u64, seed: u64) -> Self {
        assert!(slice_len > 0, "address slice must be non-empty");
        let key = crate::rng::substream_key(seed, crate::rng::DOMAIN_WORKLOAD, app.index() as u64);
        let slice_start = app.index() as u64 * slice_len;
        MissStream {
            profile,
            app,
            rng: ChaCha8::from_seed(key),
            slice_start,
            slice_len,
            cursor: 0,
            instructions: 0,
            misses: 0,
            writebacks: 0,
        }
    }

    /// The application instance this trace belongs to.
    #[inline]
    pub fn app(&self) -> AppId {
        self.app
    }

    /// The profile driving this trace.
    #[inline]
    pub fn profile(&self) -> &AppProfile {
        &self.profile
    }

    /// Instructions emitted so far (including gaps already handed out).
    #[inline]
    pub fn instructions_emitted(&self) -> u64 {
        self.instructions
    }

    /// Misses emitted so far.
    #[inline]
    pub fn misses_emitted(&self) -> u64 {
        self.misses
    }

    /// Writebacks emitted so far.
    #[inline]
    pub fn writebacks_emitted(&self) -> u64 {
        self.writebacks
    }

    /// Observed RPKI of the emitted stream so far.
    pub fn observed_rpki(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.misses as f64 * 1_000.0 / self.instructions as f64
        }
    }

    /// Observed WPKI of the emitted stream so far.
    pub fn observed_wpki(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.writebacks as f64 * 1_000.0 / self.instructions as f64
        }
    }

    /// Produces the next miss event. The stream is infinite.
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)] // -ln(u) >= 0 for u in (0,1)
    pub fn next_miss(&mut self) -> MissEvent {
        let phase = *self.profile.phase_at(self.instructions);
        let rpki = phase.rpki.max(1e-6);
        let mean_gap = 1_000.0 / rpki;
        // Geometric gap via inverse-transform sampling of an exponential.
        let u: f64 = self.rng.next_unit_open();
        let gap = 1 + (-mean_gap * u.ln()) as u64;

        // Address: continue the sequential stream or jump.
        let line = if self.rng.next_bool(self.profile.locality) {
            self.cursor = (self.cursor + 1) % self.slice_len;
            self.slice_start + self.cursor
        } else {
            self.cursor = self.rng.next_below(self.slice_len);
            self.slice_start + self.cursor
        };
        let addr = PhysAddr::from_cache_line(line);

        // Writeback with probability WPKI/RPKI (a miss evicting dirty data).
        let wb_prob = (phase.wpki / phase.rpki).clamp(0.0, 1.0);
        let writeback = if phase.wpki > 0.0 && self.rng.next_bool(wb_prob) {
            self.writebacks += 1;
            let wb_line = self.slice_start + self.rng.next_below(self.slice_len);
            Some(PhysAddr::from_cache_line(wb_line))
        } else {
            None
        };

        self.instructions += gap;
        self.misses += 1;
        MissEvent {
            gap_instructions: gap,
            addr,
            writeback,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::Phase;
    use crate::spec;

    fn trace(name: &str, seed: u64) -> MissStream {
        MissStream::new(spec::profile(name).unwrap(), AppId(0), 1 << 20, seed)
    }

    #[test]
    fn stream_is_deterministic() {
        let mut a = trace("swim", 7);
        let mut b = trace("swim", 7);
        for _ in 0..1_000 {
            assert_eq!(a.next_miss(), b.next_miss());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = trace("swim", 7);
        let mut b = trace("swim", 8);
        let same = (0..100).filter(|_| a.next_miss() == b.next_miss()).count();
        assert!(same < 5);
    }

    #[test]
    fn observed_rpki_matches_profile() {
        let mut t = trace("swim", 1);
        for _ in 0..200_000 {
            t.next_miss();
        }
        let target = spec::profile("swim").unwrap().average_rpki();
        let got = t.observed_rpki();
        assert!(
            (got - target).abs() / target < 0.05,
            "rpki {got} vs {target}"
        );
    }

    #[test]
    fn observed_wpki_matches_profile() {
        let mut t = trace("swim", 1);
        for _ in 0..200_000 {
            t.next_miss();
        }
        let p = spec::profile("swim").unwrap();
        let got = t.observed_wpki();
        let target = p.phases[0].wpki;
        assert!(
            (got - target).abs() / target < 0.10,
            "wpki {got} vs {target}"
        );
    }

    #[test]
    fn addresses_stay_in_slice() {
        let slice_len = 1 << 16;
        let mut t = MissStream::new(spec::profile("art").unwrap(), AppId(3), slice_len, 9);
        for _ in 0..10_000 {
            let ev = t.next_miss();
            let line = ev.addr.cache_line();
            assert!(line >= 3 * slice_len && line < 4 * slice_len);
            if let Some(wb) = ev.writeback {
                let wl = wb.cache_line();
                assert!(wl >= 3 * slice_len && wl < 4 * slice_len);
            }
        }
    }

    #[test]
    fn high_locality_produces_sequential_runs() {
        let p = AppProfile::steady("seq", 10.0, 0.0).with_locality(1.0);
        let mut t = MissStream::new(p, AppId(0), 1 << 20, 5);
        let first = t.next_miss().addr.cache_line();
        let second = t.next_miss().addr.cache_line();
        assert_eq!(second, first + 1);
    }

    #[test]
    fn phase_change_shifts_intensity() {
        let p = AppProfile::steady("p", 1.0, 0.0).with_phases(vec![
            Phase::bounded(100_000, 1.0, 0.0),
            Phase::steady(20.0, 0.0),
        ]);
        let mut t = MissStream::new(p, AppId(0), 1 << 20, 11);
        // Drain phase 1.
        while t.instructions_emitted() < 100_000 {
            t.next_miss();
        }
        let i0 = t.instructions_emitted();
        let m0 = t.misses_emitted();
        for _ in 0..10_000 {
            t.next_miss();
        }
        let rpki2 =
            (t.misses_emitted() - m0) as f64 * 1_000.0 / (t.instructions_emitted() - i0) as f64;
        assert!(rpki2 > 15.0, "phase-2 rpki {rpki2}");
    }

    #[test]
    fn gaps_are_at_least_one_instruction() {
        let mut t = trace("swim", 2);
        for _ in 0..10_000 {
            assert!(t.next_miss().gap_instructions >= 1);
        }
    }
}
