//! The twelve multiprogrammed mixes of Table 1.

use crate::generator::MissStream;
use crate::spec;
use memscale_types::ids::AppId;
use std::fmt;

/// Workload class per Table 1's grouping.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WorkloadClass {
    /// Computation-intensive (low memory traffic).
    Ilp,
    /// Balanced.
    Mid,
    /// Memory-intensive.
    Mem,
}

impl fmt::Display for WorkloadClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkloadClass::Ilp => write!(f, "ILP"),
            WorkloadClass::Mid => write!(f, "MID"),
            WorkloadClass::Mem => write!(f, "MEM"),
        }
    }
}

/// One multiprogrammed workload: four applications, replicated to fill the
/// core count (Table 1: "x4 each" on 16 cores).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Mix {
    /// Workload name (e.g. `MID3`).
    pub name: &'static str,
    /// Class grouping.
    pub class: WorkloadClass,
    /// The four distinct applications in the mix.
    pub apps: [&'static str; 4],
}

/// Table 1 of the paper.
const TABLE1: &[Mix] = &[
    Mix {
        name: "ILP1",
        class: WorkloadClass::Ilp,
        apps: ["vortex", "gcc", "sixtrack", "mesa"],
    },
    Mix {
        name: "ILP2",
        class: WorkloadClass::Ilp,
        apps: ["perlbmk", "crafty", "gzip", "eon"],
    },
    Mix {
        name: "ILP3",
        class: WorkloadClass::Ilp,
        apps: ["sixtrack", "mesa", "perlbmk", "crafty"],
    },
    Mix {
        name: "ILP4",
        class: WorkloadClass::Ilp,
        apps: ["vortex", "mesa", "perlbmk", "crafty"],
    },
    Mix {
        name: "MID1",
        class: WorkloadClass::Mid,
        apps: ["ammp", "gap", "wupwise", "vpr"],
    },
    Mix {
        name: "MID2",
        class: WorkloadClass::Mid,
        apps: ["astar", "parser", "twolf", "facerec"],
    },
    Mix {
        name: "MID3",
        class: WorkloadClass::Mid,
        apps: ["apsi", "bzip2", "ammp", "gap"],
    },
    Mix {
        name: "MID4",
        class: WorkloadClass::Mid,
        apps: ["wupwise", "vpr", "astar", "parser"],
    },
    Mix {
        name: "MEM1",
        class: WorkloadClass::Mem,
        apps: ["swim", "applu", "art", "lucas"],
    },
    Mix {
        name: "MEM2",
        class: WorkloadClass::Mem,
        apps: ["fma3d", "mgrid", "galgel", "equake"],
    },
    Mix {
        name: "MEM3",
        class: WorkloadClass::Mem,
        apps: ["swim", "applu", "galgel", "equake"],
    },
    Mix {
        name: "MEM4",
        class: WorkloadClass::Mem,
        apps: ["art", "lucas", "mgrid", "fma3d"],
    },
];

/// Error returned by [`Mix::by_name`] for a name outside Table 1.
///
/// Its `Display` lists every valid mix name, so surfacing it verbatim in a
/// CLI error is enough for the user to self-correct.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownMix {
    /// The name that failed to resolve.
    pub name: String,
}

impl fmt::Display for UnknownMix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown workload `{}`; valid mixes: ", self.name)?;
        for (i, m) in TABLE1.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}", m.name)?;
        }
        Ok(())
    }
}

impl std::error::Error for UnknownMix {}

impl Mix {
    /// All twelve Table 1 workloads, in paper order.
    pub fn table1() -> Vec<Mix> {
        TABLE1.to_vec()
    }

    /// Looks a workload up by name (case-insensitive).
    ///
    /// # Errors
    ///
    /// Returns an [`UnknownMix`] (whose `Display` lists the valid names)
    /// when `name` is not a Table 1 workload.
    pub fn by_name(name: &str) -> Result<Mix, UnknownMix> {
        TABLE1
            .iter()
            .find(|m| m.name.eq_ignore_ascii_case(name))
            .cloned()
            .ok_or_else(|| UnknownMix { name: name.into() })
    }

    /// The workloads of one class, in paper order.
    pub fn by_class(class: WorkloadClass) -> Vec<Mix> {
        TABLE1
            .iter()
            .filter(|m| m.class == class)
            .cloned()
            .collect()
    }

    /// The application running on core `core` when this mix fills `cores`
    /// cores: apps rotate so each of the four runs `cores / 4` instances.
    pub fn app_on_core(&self, core: usize) -> &'static str {
        self.apps[core % 4]
    }

    /// Builds one trace per core. `slice_lines` is the number of cache lines
    /// in each instance's private address slice; `seed` makes the whole mix
    /// reproducible.
    ///
    /// # Panics
    ///
    /// Panics if an application name is missing from the catalog (impossible
    /// for Table 1 mixes) or `cores` is zero.
    pub fn traces(&self, cores: usize, slice_lines: u64, seed: u64) -> Vec<MissStream> {
        assert!(cores > 0, "need at least one core");
        (0..cores)
            .map(|core| {
                let name = self.app_on_core(core);
                let profile =
                    spec::profile(name).unwrap_or_else(|| panic!("unknown application {name}"));
                MissStream::new(profile, AppId(core), slice_lines, seed)
            })
            .collect()
    }

    /// Expected steady-state mix RPKI (average of the four applications).
    pub fn expected_rpki(&self) -> f64 {
        self.apps
            .iter()
            .map(|n| spec::profile(n).expect("catalog").average_rpki())
            .sum::<f64>()
            / 4.0
    }
}

impl fmt::Display for Mix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} [{}]", self.name, self.class)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twelve_mixes_in_three_classes() {
        let all = Mix::table1();
        assert_eq!(all.len(), 12);
        assert_eq!(Mix::by_class(WorkloadClass::Ilp).len(), 4);
        assert_eq!(Mix::by_class(WorkloadClass::Mid).len(), 4);
        assert_eq!(Mix::by_class(WorkloadClass::Mem).len(), 4);
    }

    #[test]
    fn lookup_is_case_insensitive() {
        assert_eq!(Mix::by_name("mem1").unwrap().name, "MEM1");
        let err = Mix::by_name("MEM9").unwrap_err();
        assert_eq!(err.name, "MEM9");
        let msg = err.to_string();
        assert!(msg.contains("MEM9") && msg.contains("ILP1") && msg.contains("MEM4"));
    }

    #[test]
    fn sixteen_cores_run_four_instances_each() {
        let m = Mix::by_name("MID3").unwrap();
        let traces = m.traces(16, 1 << 20, 1);
        assert_eq!(traces.len(), 16);
        let apsis = (0..16).filter(|&c| m.app_on_core(c) == "apsi").count();
        assert_eq!(apsis, 4);
        // Each trace owns its own slice.
        assert_eq!(traces[0].app(), AppId(0));
        assert_eq!(traces[15].app(), AppId(15));
    }

    #[test]
    fn mix_rpki_matches_table1_targets() {
        // (name, Table 1 RPKI) — calibrated catalog must land within 10%.
        let targets = [
            ("ILP1", 0.37),
            ("ILP2", 0.16),
            ("MID1", 1.72),
            // MID3 is excluded: apsi's phased profile makes its steady-state
            // average intentionally differ from the whole-run Table 1 figure.
            ("MEM1", 17.03),
            ("MEM4", 8.96),
        ];
        for (name, target) in targets {
            let got = Mix::by_name(name).unwrap().expected_rpki();
            assert!(
                (got - target).abs() / target < 0.10,
                "{name}: {got} vs {target}"
            );
        }
    }

    #[test]
    fn display_formats() {
        let m = Mix::by_name("MEM2").unwrap();
        assert_eq!(m.to_string(), "MEM2 [MEM]");
    }
}
