//! Property-based tests of the synthetic workload generator.

use memscale_types::ids::AppId;
use memscale_workloads::profile::{AppProfile, Phase};
use memscale_workloads::MissStream;
use proptest::prelude::*;

fn profile_strategy() -> impl Strategy<Value = AppProfile> {
    (0.05f64..30.0, 0.0f64..5.0, 0.0f64..1.0, 0.5f64..3.0).prop_map(
        |(rpki, wpki_ratio, locality, cpi)| {
            let wpki = rpki * wpki_ratio.min(1.0);
            AppProfile::steady("prop", rpki, wpki)
                .with_locality(locality)
                .with_base_cpi(cpi)
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Gaps are always at least one instruction; addresses stay in the
    /// app's slice; the stream never stalls.
    #[test]
    fn stream_is_well_formed(
        profile in profile_strategy(),
        app in 0usize..16,
        seed in any::<u64>(),
    ) {
        let slice = 1u64 << 18;
        let mut t = MissStream::new(profile, AppId(app), slice, seed);
        for _ in 0..2_000 {
            let ev = t.next_miss();
            prop_assert!(ev.gap_instructions >= 1);
            let line = ev.addr.cache_line();
            prop_assert!(line >= app as u64 * slice && line < (app as u64 + 1) * slice);
            if let Some(wb) = ev.writeback {
                let wl = wb.cache_line();
                prop_assert!(wl >= app as u64 * slice && wl < (app as u64 + 1) * slice);
            }
        }
        prop_assert!(t.instructions_emitted() >= 2_000);
        prop_assert_eq!(t.misses_emitted(), 2_000);
    }

    /// Long-run observed RPKI converges to the profile's setting.
    #[test]
    fn rpki_converges(profile in profile_strategy(), seed in any::<u64>()) {
        let target = profile.average_rpki();
        let mut t = MissStream::new(profile, AppId(0), 1 << 18, seed);
        for _ in 0..60_000 {
            t.next_miss();
        }
        let got = t.observed_rpki();
        let err = (got - target).abs() / target;
        prop_assert!(err < 0.12, "rpki {got} vs target {target}");
    }

    /// WPKI never exceeds RPKI (a writeback accompanies a miss).
    #[test]
    fn wpki_bounded_by_rpki(profile in profile_strategy(), seed in any::<u64>()) {
        let mut t = MissStream::new(profile, AppId(0), 1 << 18, seed);
        for _ in 0..20_000 {
            t.next_miss();
        }
        prop_assert!(t.writebacks_emitted() <= t.misses_emitted());
    }

    /// The stream is a pure function of (profile, app, slice, seed).
    #[test]
    fn identical_inputs_identical_streams(
        profile in profile_strategy(),
        seed in any::<u64>(),
    ) {
        let mut a = MissStream::new(profile.clone(), AppId(3), 1 << 18, seed);
        let mut b = MissStream::new(profile, AppId(3), 1 << 18, seed);
        for _ in 0..500 {
            prop_assert_eq!(a.next_miss(), b.next_miss());
        }
    }

    /// Phase boundaries are honored regardless of where the instruction
    /// counter lands relative to them.
    #[test]
    fn phases_switch_at_declared_boundaries(
        len in 1_000u64..100_000,
        rpki1 in 0.5f64..5.0,
        rpki2 in 10.0f64..30.0,
    ) {
        let p = AppProfile::steady("phased", rpki1, 0.0).with_phases(vec![
            Phase::bounded(len, rpki1, 0.0),
            Phase::steady(rpki2, 0.0),
        ]);
        prop_assert_eq!(p.phase_at(0).rpki, rpki1);
        prop_assert_eq!(p.phase_at(len - 1).rpki, rpki1);
        prop_assert_eq!(p.phase_at(len).rpki, rpki2);
        prop_assert_eq!(p.phase_at(u64::MAX).rpki, rpki2);
    }
}
