//! Seeded wire-level fault proxy for chaos-testing the sweep server.
//!
//! The proxy sits between a client (typically [`crate::loadgen`]) and a
//! `memscale-serve` instance and injects deterministic faults into the
//! client → server byte stream: torn frames (a flipped byte, a truncated
//! line), dropped frames, stalled reads, and mid-stream disconnects. The
//! server → client direction is relayed untouched, so every byte a client
//! sees is either a genuine server response or a clean EOF — which is what
//! lets the chaos harness assert *zero protocol violations* while the
//! request path is being mangled.
//!
//! All randomness flows from one [`ChaosRng`] (splitmix64, the same idiom
//! as `memscale-faults`): the per-connection fault stream is a pure
//! function of `(seed, connection index)`, so a failing chaos run replays
//! with the same `--seed`.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Minimal deterministic RNG (splitmix64), mirroring `memscale-faults`'
/// `FaultRng` so chaos runs replay byte-for-byte from a seed.
#[derive(Debug, Clone)]
pub struct ChaosRng {
    state: u64,
}

impl ChaosRng {
    /// Creates a stream seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        ChaosRng { state: seed }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 mantissa bits of uniformity.
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Bernoulli draw with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        p > 0.0 && self.next_f64() < p
    }

    /// Uniform draw in `[0, n)` (`n > 0`).
    pub fn below(&mut self, n: usize) -> usize {
        debug_assert!(n > 0);
        usize::try_from(self.next_u64() % (n as u64)).unwrap_or(0)
    }
}

/// What the proxy injects and how often. Probabilities are per request
/// frame on the client → server path.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// `host:port` of the real server the proxy forwards to.
    pub upstream: String,
    /// Root seed; every connection derives its own stream from it.
    pub seed: u64,
    /// Probability a frame is torn: one byte flipped or the frame cut
    /// short (partial write) before the newline.
    pub torn_frame: f64,
    /// Probability a frame is dropped entirely (the server never sees it,
    /// the client waits for a response that cannot come).
    pub drop_frame: f64,
    /// Probability the connection is severed (both directions) right
    /// before a frame would be forwarded.
    pub disconnect: f64,
    /// Probability a frame is stalled for [`ChaosConfig::stall_ms`] before
    /// forwarding (a slow-loris client from the server's perspective).
    pub stall: f64,
    /// Stall duration in milliseconds.
    pub stall_ms: u64,
}

impl ChaosConfig {
    /// A config over `upstream` and `seed` with the default fault rates
    /// used by `memscale-sim chaos`: 10 % torn, 5 % dropped, 5 %
    /// disconnect, 10 % stalled at 20 ms.
    pub fn new(upstream: impl Into<String>, seed: u64) -> Self {
        ChaosConfig {
            upstream: upstream.into(),
            seed,
            torn_frame: 0.10,
            drop_frame: 0.05,
            disconnect: 0.05,
            stall: 0.10,
            stall_ms: 20,
        }
    }
}

/// Counts of faults the proxy actually injected.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChaosReport {
    /// Connections the proxy accepted.
    pub connections: u64,
    /// Frames forwarded with a flipped byte or truncated early.
    pub torn_frames: u64,
    /// Frames swallowed whole.
    pub dropped_frames: u64,
    /// Connections severed mid-stream.
    pub disconnects: u64,
    /// Frames delayed before forwarding.
    pub stalls: u64,
}

impl ChaosReport {
    /// Total faults injected (excluding the connection count).
    pub fn total_injected(&self) -> u64 {
        self.torn_frames + self.dropped_frames + self.disconnects + self.stalls
    }
}

#[derive(Debug, Default)]
struct Counters {
    connections: AtomicU64,
    torn_frames: AtomicU64,
    dropped_frames: AtomicU64,
    disconnects: AtomicU64,
    stalls: AtomicU64,
}

impl Counters {
    fn snapshot(&self) -> ChaosReport {
        ChaosReport {
            connections: self.connections.load(Ordering::Relaxed),
            torn_frames: self.torn_frames.load(Ordering::Relaxed),
            dropped_frames: self.dropped_frames.load(Ordering::Relaxed),
            disconnects: self.disconnects.load(Ordering::Relaxed),
            stalls: self.stalls.load(Ordering::Relaxed),
        }
    }
}

/// The fault proxy, bound to a local address. [`ChaosProxy::spawn`] starts
/// the accept loop on a background thread and returns a [`ChaosHandle`]
/// for stopping it and collecting the report.
#[derive(Debug)]
pub struct ChaosProxy {
    listener: TcpListener,
    cfg: ChaosConfig,
    counters: Arc<Counters>,
    stop: Arc<AtomicBool>,
}

/// Control handle of a running proxy.
#[derive(Debug)]
pub struct ChaosHandle {
    addr: SocketAddr,
    counters: Arc<Counters>,
    stop: Arc<AtomicBool>,
    accept_thread: std::thread::JoinHandle<()>,
}

impl ChaosProxy {
    /// Binds the proxy to `addr` (use port 0 for an ephemeral port).
    ///
    /// # Errors
    ///
    /// The bind failure, untouched.
    pub fn bind(addr: &str, cfg: ChaosConfig) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        Ok(ChaosProxy {
            listener,
            cfg,
            counters: Arc::new(Counters::default()),
            stop: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The address clients should connect to.
    ///
    /// # Errors
    ///
    /// Propagates the socket query failure.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Starts the accept loop on a background thread.
    ///
    /// # Errors
    ///
    /// Propagates the local-address query failure.
    pub fn spawn(self) -> std::io::Result<ChaosHandle> {
        let addr = self.local_addr()?;
        let counters = Arc::clone(&self.counters);
        let stop = Arc::clone(&self.stop);
        self.listener.set_nonblocking(true)?;
        let accept_thread = std::thread::spawn(move || accept_loop(&self));
        Ok(ChaosHandle {
            addr,
            counters,
            stop,
            accept_thread,
        })
    }
}

impl ChaosHandle {
    /// The address clients should connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// A live snapshot of the injected-fault counters.
    pub fn report(&self) -> ChaosReport {
        self.counters.snapshot()
    }

    /// Stops accepting, joins the accept loop and returns the final
    /// report. Connections already in flight wind down on their own as
    /// their sockets close.
    pub fn stop(self) -> ChaosReport {
        self.stop.store(true, Ordering::Release);
        let _ = self.accept_thread.join();
        self.counters.snapshot()
    }
}

fn accept_loop(proxy: &ChaosProxy) {
    let mut conn_index: u64 = 0;
    while !proxy.stop.load(Ordering::Acquire) {
        match proxy.listener.accept() {
            Ok((client, _)) => {
                proxy.counters.connections.fetch_add(1, Ordering::Relaxed);
                let _ = client.set_nonblocking(false);
                // Derive the connection's fault stream from (seed, index)
                // so a run replays exactly given the same seed.
                let conn_seed = ChaosRng::new(proxy.cfg.seed.wrapping_add(conn_index)).next_u64();
                conn_index += 1;
                let cfg = proxy.cfg.clone();
                let counters = Arc::clone(&proxy.counters);
                std::thread::spawn(move || pump_connection(client, &cfg, conn_seed, &counters));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => break,
        }
    }
}

/// Relays one client connection through the fault injector. The request
/// path is frame-aware (faults are drawn per line); the response path is a
/// clean byte relay.
fn pump_connection(client: TcpStream, cfg: &ChaosConfig, conn_seed: u64, counters: &Arc<Counters>) {
    let Ok(upstream) = TcpStream::connect(&cfg.upstream) else {
        let _ = client.shutdown(Shutdown::Both);
        return;
    };
    let Ok(client_rd) = client.try_clone() else {
        return;
    };
    let Ok(upstream_rd) = upstream.try_clone() else {
        return;
    };

    // Response path: server → client, byte-for-byte.
    let client_wr = client.try_clone();
    let down = std::thread::spawn(move || {
        let Ok(mut client_wr) = client_wr else {
            return;
        };
        let mut upstream_rd = upstream_rd;
        let mut buf = [0u8; 4096];
        loop {
            match upstream_rd.read(&mut buf) {
                Ok(0) | Err(_) => break,
                Ok(n) => {
                    if client_wr.write_all(&buf[..n]).is_err() {
                        break;
                    }
                }
            }
        }
        let _ = client_wr.shutdown(Shutdown::Write);
    });

    // Request path: client → server, one fault draw per frame.
    let mut rng = ChaosRng::new(conn_seed);
    let mut reader = BufReader::new(client_rd);
    let mut upstream_wr = upstream;
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
        if rng.chance(cfg.disconnect) {
            counters.disconnects.fetch_add(1, Ordering::Relaxed);
            let _ = client.shutdown(Shutdown::Both);
            let _ = upstream_wr.shutdown(Shutdown::Both);
            break;
        }
        if rng.chance(cfg.stall) {
            counters.stalls.fetch_add(1, Ordering::Relaxed);
            std::thread::sleep(Duration::from_millis(cfg.stall_ms));
        }
        if rng.chance(cfg.drop_frame) {
            counters.dropped_frames.fetch_add(1, Ordering::Relaxed);
            continue;
        }
        let payload = if rng.chance(cfg.torn_frame) {
            counters.torn_frames.fetch_add(1, Ordering::Relaxed);
            tear_frame(&line, &mut rng)
        } else {
            line.clone().into_bytes()
        };
        if upstream_wr.write_all(&payload).is_err() {
            break;
        }
    }
    let _ = upstream_wr.shutdown(Shutdown::Write);
    let _ = down.join();
}

/// Mangles one request frame: either flips one byte (staying in printable
/// ASCII so the server sees a decodable-but-wrong line rather than a UTF-8
/// read error) or truncates it mid-line, simulating a partial write. The
/// newline always survives so the server's framing resynchronizes on the
/// next frame.
fn tear_frame(line: &str, rng: &mut ChaosRng) -> Vec<u8> {
    let mut bytes = line.as_bytes().to_vec();
    let body_len = line.trim_end_matches('\n').len();
    if body_len < 2 {
        return bytes;
    }
    if rng.chance(0.5) {
        // Byte flip somewhere in the body.
        let i = rng.below(body_len);
        bytes[i] = u8::try_from(0x21 + rng.below(94)).unwrap_or(b'?');
    } else {
        // Truncation: keep a strict prefix of the body, then newline.
        let keep = 1 + rng.below(body_len - 1);
        bytes.truncate(keep);
        bytes.push(b'\n');
    }
    bytes
}

/// Opens `n` idle connections to `addr` (a connection flood). The sockets
/// are returned so the caller controls their lifetime; the server must
/// survive them (its per-connection read timeout reaps dead weight).
pub fn open_flood(addr: &str, n: usize) -> Vec<TcpStream> {
    (0..n)
        .filter_map(|_| TcpStream::connect(addr).ok())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic_and_uniformish() {
        let mut a = ChaosRng::new(99);
        let mut b = ChaosRng::new(99);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = ChaosRng::new(100);
        assert_ne!(a.next_u64(), c.next_u64());
        let mut r = ChaosRng::new(7);
        for _ in 0..256 {
            let f = r.next_f64();
            assert!((0.0..1.0).contains(&f));
            assert!(r.below(10) < 10);
        }
        assert!(!ChaosRng::new(1).chance(0.0));
        assert!(ChaosRng::new(1).chance(1.0));
    }

    #[test]
    fn fault_decisions_replay_from_the_seed() {
        let cfg = ChaosConfig::new("127.0.0.1:1", 1234);
        let decide = |seed: u64| -> Vec<(bool, bool, bool, bool)> {
            let mut rng = ChaosRng::new(seed);
            (0..32)
                .map(|_| {
                    (
                        rng.chance(cfg.disconnect),
                        rng.chance(cfg.stall),
                        rng.chance(cfg.drop_frame),
                        rng.chance(cfg.torn_frame),
                    )
                })
                .collect()
        };
        assert_eq!(decide(42), decide(42));
        assert_ne!(decide(42), decide(43));
    }

    #[test]
    fn torn_frames_keep_framing_and_ascii() {
        let line = "{\"type\":\"job\",\"id\":\"x\",\"mix\":\"MID1\"}\n";
        let mut rng = ChaosRng::new(5);
        for _ in 0..200 {
            let torn = tear_frame(line, &mut rng);
            assert_eq!(torn.last(), Some(&b'\n'), "newline must survive");
            assert!(torn.len() <= line.len());
            assert!(torn[..torn.len() - 1]
                .iter()
                .all(|b| (0x20..0x7f).contains(b)));
        }
    }

    #[test]
    fn report_totals_add_up() {
        let r = ChaosReport {
            connections: 9,
            torn_frames: 3,
            dropped_frames: 2,
            disconnects: 1,
            stalls: 4,
        };
        assert_eq!(r.total_injected(), 10);
    }
}
