//! The fingerprint-keyed result/calibration cache.
//!
//! Sweep jobs repeat: a parameter study resubmits the same configuration
//! with one knob moved, a dashboard refreshes the same grid, N load-test
//! clients hammer one spec. Every cacheable artifact of a job is keyed by
//! the triple `(SimConfig::fingerprint, trace CRC, label)`:
//!
//! * the **configuration fingerprint** covers every knob that shapes a
//!   run's miss stream and results (see `SimConfig::fingerprint`);
//! * the **trace CRC** identifies the input data — the CRC-32 of the trace
//!   file for replay-fed jobs, or of the mix name for live-recorded jobs
//!   (the fingerprint already pins seed/duration, so the mix name is the
//!   only missing degree of freedom);
//! * the **label** distinguishes the artifacts of one sweep: one entry per
//!   policy cell plus one for the calibrated baseline bundle.
//!
//! Eviction is least-recently-used; hit/miss counters are global to the
//! cache, while per-job counts are tallied by the server as it looks up.

use std::collections::HashMap;

/// Cache key: `(config fingerprint, input CRC, cell label)`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// `SimConfig::fingerprint()` of the job's run configuration.
    pub fingerprint: u64,
    /// CRC-32 of the job's input identity (trace bytes or mix name).
    pub trace_crc: u32,
    /// Which artifact of the sweep this is (policy wire name, or
    /// [`CacheKey::BASELINE`]).
    pub label: String,
}

impl CacheKey {
    /// The label reserved for the calibrated baseline bundle of a
    /// `(fingerprint, trace)` pair.
    pub const BASELINE: &'static str = "__baseline__";
}

/// A bounded least-recently-used map with hit/miss accounting.
#[derive(Debug)]
pub struct LruCache<V> {
    map: HashMap<CacheKey, Entry<V>>,
    capacity: usize,
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

#[derive(Debug)]
struct Entry<V> {
    value: V,
    last_used: u64,
}

impl<V> LruCache<V> {
    /// A cache holding at most `capacity` entries (at least one).
    pub fn new(capacity: usize) -> Self {
        LruCache {
            map: HashMap::new(),
            capacity: capacity.max(1),
            tick: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// Entries currently cached.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Lifetime hit count.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lifetime miss count.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Lifetime eviction count (entries displaced at capacity, not
    /// in-place replacements).
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Maximum entries this cache holds.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Looks `key` up, counting a hit or miss and refreshing recency on a
    /// hit.
    pub fn get(&mut self, key: &CacheKey) -> Option<&V> {
        self.tick += 1;
        match self.map.get_mut(key) {
            Some(entry) => {
                entry.last_used = self.tick;
                self.hits += 1;
                Some(&entry.value)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Inserts (or replaces) `key`, evicting the least-recently-used entry
    /// when at capacity. Inserting counts as a use. Returns `true` when an
    /// unrelated entry was displaced to make room.
    pub fn insert(&mut self, key: CacheKey, value: V) -> bool {
        self.tick += 1;
        let mut evicted = false;
        if !self.map.contains_key(&key) && self.map.len() >= self.capacity {
            if let Some(oldest) = self
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            {
                self.map.remove(&oldest);
                self.evictions += 1;
                evicted = true;
            }
        }
        self.map.insert(
            key,
            Entry {
                value,
                last_used: self.tick,
            },
        );
        evicted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(label: &str) -> CacheKey {
        CacheKey {
            fingerprint: 0xfeed,
            trace_crc: 7,
            label: label.into(),
        }
    }

    #[test]
    fn hit_and_miss_accounting() {
        let mut c: LruCache<u32> = LruCache::new(4);
        assert_eq!(c.get(&key("a")), None);
        c.insert(key("a"), 1);
        assert_eq!(c.get(&key("a")), Some(&1));
        assert_eq!((c.hits(), c.misses()), (1, 1));
    }

    #[test]
    fn distinct_fingerprints_do_not_collide() {
        let mut c: LruCache<u32> = LruCache::new(4);
        c.insert(key("a"), 1);
        let other = CacheKey {
            fingerprint: 0xbeef,
            ..key("a")
        };
        assert_eq!(c.get(&other), None);
        let other_crc = CacheKey {
            trace_crc: 8,
            ..key("a")
        };
        assert_eq!(c.get(&other_crc), None);
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut c: LruCache<u32> = LruCache::new(2);
        assert!(!c.insert(key("a"), 1));
        assert!(!c.insert(key("b"), 2));
        assert_eq!(c.get(&key("a")), Some(&1)); // refresh `a`
        assert!(c.insert(key("c"), 3)); // evicts `b`
        assert_eq!(c.evictions(), 1);
        assert_eq!(c.len(), 2);
        assert_eq!(c.get(&key("b")), None);
        assert_eq!(c.get(&key("a")), Some(&1));
        assert_eq!(c.get(&key("c")), Some(&3));
    }

    #[test]
    fn replacing_does_not_evict() {
        let mut c: LruCache<u32> = LruCache::new(2);
        c.insert(key("a"), 1);
        c.insert(key("b"), 2);
        assert!(!c.insert(key("a"), 10));
        assert_eq!(c.evictions(), 0);
        assert_eq!(c.capacity(), 2);
        assert_eq!(c.len(), 2);
        assert_eq!(c.get(&key("a")), Some(&10));
        assert_eq!(c.get(&key("b")), Some(&2));
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let mut c: LruCache<u32> = LruCache::new(0);
        c.insert(key("a"), 1);
        assert_eq!(c.get(&key("a")), Some(&1));
        c.insert(key("b"), 2);
        assert_eq!(c.len(), 1);
        assert!(!c.is_empty());
    }
}
