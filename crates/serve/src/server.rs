//! The sweep-job server: TCP accept loop, admission control, cell
//! scheduling and result streaming.
//!
//! The server is generic over a [`SweepBackend`] so the serving layer
//! (protocol, cache, backpressure) stays free of simulator types; the
//! `memscale-simulator` crate provides the real backend over its replay
//! and shard machinery. One connection carries any number of jobs,
//! submitted one line at a time; responses for a job are streamed as its
//! cells complete (completion order, not submission order — each line
//! carries its cell label).
//!
//! Concurrency model:
//!
//! * one OS thread per connection (bounded in practice by the client
//!   population — the load generator's closed loop keeps this small);
//! * per-job **admission control**: at most `queue_depth` jobs in service
//!   across all connections; a job beyond that is rejected immediately
//!   with a structured [`ErrorCode::Overloaded`] response carrying the
//!   observed depth and the limit — backpressure, never a hang. The slot
//!   is held by an RAII guard, so it is released on *every* exit path —
//!   normal completion, client disconnect, and panic alike;
//! * admitted jobs fan their cells out on a shared bounded-queue
//!   [`rayon::ThreadPool`]; a full cell queue blocks the producing
//!   connection thread (producer-side backpressure), never the accept
//!   loop.
//!
//! Failure containment (see DESIGN.md §14):
//!
//! * **deadlines** — a job carrying `deadline_ms` (or the server's
//!   `--default-deadline`) has its unfinished cells cancelled when the
//!   budget expires; each comes back as a structured `cancelled` cell and
//!   the job closes with `done{reason:"deadline"}`;
//! * **cell watchdog** — a cell that ignores its [`CancelToken`] longer
//!   than `cell_timeout_ms` is abandoned as a structured `cell_timeout`
//!   without poisoning siblings; its late result is discarded, never
//!   cached;
//! * **socket timeouts** — per-connection read/write timeouts
//!   (`io_timeout_ms`) reap slow-loris and dead clients;
//! * **graceful drain** — [`SweepServer::run_with_shutdown`] stops
//!   admitting once the flag raises (new jobs get a `draining` error),
//!   waits for in-flight jobs (bounded by `drain_timeout_ms`), and
//!   returns cleanly.

use crate::cache::{CacheKey, LruCache};
use crate::persist::{DurableState, JournalRecord, RecoveryReport};
use crate::wire::{decode_job, encode_response, Response};
use memscale_store::StoreError;
use memscale_types::cancel::CancelToken;
use memscale_types::serve::{CellFailure, CellOutcome, DoneReason, ErrorCode, JobSpec, JobSummary};
use rayon::ThreadPool;
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// Longest request line the server will buffer before rejecting the
/// connection — an unframed (newline-free) flood cannot grow memory
/// unboundedly.
pub const MAX_LINE_BYTES: u64 = 64 * 1024;

/// What a backend resolves a job to before any expensive work: the cache
/// identity and the cell labels to evaluate.
#[derive(Debug, Clone, PartialEq)]
pub struct JobPlan {
    /// `SimConfig::fingerprint()` of the job's run configuration.
    pub fingerprint: u64,
    /// CRC-32 of the job's input identity (trace file bytes, or the mix
    /// name for live-recorded jobs).
    pub trace_crc: u32,
    /// Cell labels (policy wire names), in grid order.
    pub cells: Vec<String>,
}

/// The simulation side of the server, kept behind a trait so this crate
/// depends only on `memscale-types` (the simulator crate implements it).
pub trait SweepBackend: Send + Sync + 'static {
    /// The expensive per-`(config, trace)` artifact shared by every cell
    /// of a job: calibrated baseline plus replayable trace.
    type Baseline: Send + Sync + 'static;

    /// Validates `job` against the catalogs and invariant machinery and
    /// resolves its plan. Called *before* admission; must be cheap relative
    /// to a cell (opening a trace file to checksum it is acceptable,
    /// simulating is not).
    ///
    /// # Errors
    ///
    /// A structured code plus human-readable detail; the server forwards
    /// both verbatim.
    fn plan(&self, job: &JobSpec) -> Result<JobPlan, (ErrorCode, String)>;

    /// Produces the baseline bundle for `job` (record or load the trace,
    /// run the calibration). Called once per cache miss.
    ///
    /// # Errors
    ///
    /// A structured code plus human-readable detail.
    fn calibrate(&self, job: &JobSpec) -> Result<Self::Baseline, (ErrorCode, String)>;

    /// Evaluates one cell against the baseline bundle. Long-running
    /// backends should poll `cancel` at their natural boundaries (the
    /// simulator checks between epochs) and bail out with
    /// [`ErrorCode::Cancelled`] when it raises — that is what lets
    /// deadlines, disconnects and drains free worker threads promptly.
    ///
    /// # Errors
    ///
    /// The structured failure for this cell; a failed cell must not
    /// affect its siblings.
    fn run_cell(
        &self,
        baseline: &Self::Baseline,
        label: &str,
        cancel: &CancelToken,
    ) -> Result<memscale_types::serve::CellMetrics, CellFailure>;

    /// Serialises a baseline bundle for the on-disk calibration cache
    /// (`--state-dir`). The default — `None` — marks the backend's
    /// baselines as memory-only; such servers still persist cells and
    /// the job journal, they just recalibrate cold after a restart.
    fn encode_baseline(&self, job: &JobSpec, baseline: &Self::Baseline) -> Option<Vec<u8>> {
        let _ = (job, baseline);
        None
    }

    /// Reconstructs a baseline bundle persisted by
    /// [`SweepBackend::encode_baseline`]. Returning `None` rejects the
    /// bytes: recovery counts them as corrupt and skips the entry.
    fn decode_baseline(&self, bytes: &[u8]) -> Option<Self::Baseline> {
        let _ = bytes;
        None
    }
}

/// Server tuning knobs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServerConfig {
    /// Maximum jobs in service at once; job N+1 is rejected with
    /// [`ErrorCode::Overloaded`]. Zero rejects everything (useful to probe
    /// a client's backpressure path).
    pub queue_depth: usize,
    /// Worker threads evaluating cells.
    pub threads: usize,
    /// Bounded cell-queue capacity of the worker pool.
    pub cell_queue: usize,
    /// Entries in each of the result and baseline caches.
    pub cache_cap: usize,
    /// Deadline applied to jobs that do not carry their own
    /// `deadline_ms`. `None` means no server-side default.
    pub default_deadline_ms: Option<u64>,
    /// Per-cell watchdog budget in milliseconds; a cell still running
    /// past it is abandoned as [`ErrorCode::CellTimeout`]. Zero disables
    /// the watchdog.
    pub cell_timeout_ms: u64,
    /// Read/write timeout applied to every connection socket, in
    /// milliseconds. Zero disables socket timeouts.
    pub io_timeout_ms: u64,
    /// How long [`SweepServer::run_with_shutdown`] waits for in-flight
    /// jobs before giving up on a clean drain, in milliseconds.
    pub drain_timeout_ms: u64,
    /// Directory for the durable journal and baseline logs. `None` (the
    /// default) serves purely from memory; see DESIGN.md §15.
    pub state_dir: Option<PathBuf>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            queue_depth: 8,
            threads: rayon::current_num_threads(),
            cell_queue: 256,
            cache_cap: 512,
            default_deadline_ms: None,
            cell_timeout_ms: 60_000,
            io_timeout_ms: 30_000,
            drain_timeout_ms: 30_000,
            state_dir: None,
        }
    }
}

/// Aggregate counters a server exposes (for logs and tests).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServerStats {
    /// Jobs accepted and run to completion (successfully or with failed
    /// cells).
    pub jobs_done: usize,
    /// Jobs rejected by admission control.
    pub jobs_overloaded: usize,
    /// Lines rejected before admission (parse/validation failures and
    /// draining rejections).
    pub jobs_rejected: usize,
    /// Jobs whose deadline expired before every cell finished.
    pub jobs_deadline: usize,
    /// Cells abandoned by the per-cell watchdog.
    pub cells_timed_out: usize,
    /// Cells cancelled cooperatively (deadline, disconnect, drain).
    pub cells_cancelled: usize,
}

struct Shared<B: SweepBackend> {
    backend: B,
    cfg: ServerConfig,
    pool: ThreadPool,
    /// Result cache: one entry per completed cell.
    cells: Mutex<LruCache<memscale_types::serve::CellMetrics>>,
    /// Calibration cache: one entry per `(fingerprint, trace)` baseline.
    baselines: Mutex<LruCache<Arc<B::Baseline>>>,
    /// Jobs currently in service (admission-control gauge).
    active: AtomicUsize,
    /// The open WAL/baseline logs of a `--state-dir` server. `None` when
    /// the server is memory-only — either unconfigured, or degraded after
    /// a journal write failure (a full disk must not kill serving).
    durable: Mutex<Option<DurableState>>,
    /// Raised by [`SweepServer::run_with_shutdown`]: stop admitting.
    draining: AtomicBool,
    jobs_done: AtomicUsize,
    jobs_overloaded: AtomicUsize,
    jobs_rejected: AtomicUsize,
    jobs_deadline: AtomicUsize,
    cells_timed_out: AtomicUsize,
    cells_cancelled: AtomicUsize,
}

impl<B: SweepBackend> Shared<B> {
    /// Write-ahead step: appends and fsyncs one journal record. On an
    /// I/O failure durability is disabled for the rest of the process —
    /// the server keeps serving from memory rather than wedging every
    /// job behind a dead disk.
    fn journal(&self, rec: &JournalRecord) {
        let mut guard = lock_recover(&self.durable);
        if let Some(state) = guard.as_mut() {
            if let Err(e) = state.record(rec) {
                eprintln!(
                    "memscale-serve: journal write failed ({e}); continuing without durability"
                );
                *guard = None;
            }
        }
    }

    /// Persists one calibration bundle. An oversized bundle is skipped
    /// (that baseline just recalibrates after a restart); real I/O
    /// failures disable durability like [`Shared::journal`].
    fn persist_baseline(&self, fingerprint: u64, trace_crc: u32, payload: &[u8]) {
        let mut guard = lock_recover(&self.durable);
        if let Some(state) = guard.as_mut() {
            match state.record_baseline(fingerprint, trace_crc, payload) {
                Ok(()) => {}
                Err(StoreError::RecordTooLarge { len }) => {
                    eprintln!(
                        "memscale-serve: baseline bundle of {len} bytes exceeds the frame limit; not persisted"
                    );
                }
                Err(e) => {
                    eprintln!(
                        "memscale-serve: baseline log write failed ({e}); continuing without durability"
                    );
                    *guard = None;
                }
            }
        }
    }
}

/// Locks `m`, recovering the guard if a panicking holder poisoned it. The
/// protected structures (LRU caches) are updated atomically under the
/// lock, so a poisoned lock only records that *some* thread panicked — the
/// data itself is still coherent, and refusing to serve would turn one
/// crashed cell into a dead server.
fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// RAII ownership of one admission slot: dropping the guard releases the
/// slot, so disconnects and panics can never leak queue depth.
struct SlotGuard<'a> {
    active: &'a AtomicUsize,
}

impl Drop for SlotGuard<'_> {
    fn drop(&mut self) {
        self.active.fetch_sub(1, Ordering::AcqRel);
    }
}

/// The sweep-job server. Bind with [`SweepServer::bind`], read the bound
/// address back with [`SweepServer::local_addr`], then run the accept
/// loop on the current thread with [`SweepServer::run`] (or
/// [`SweepServer::run_with_shutdown`] for drain support).
pub struct SweepServer<B: SweepBackend> {
    shared: Arc<Shared<B>>,
    listener: TcpListener,
    recovery: Option<RecoveryReport>,
}

impl<B: SweepBackend> SweepServer<B> {
    /// Binds `addr` (e.g. `127.0.0.1:7119`; port 0 picks an ephemeral
    /// port — read it back with [`SweepServer::local_addr`]).
    ///
    /// With `cfg.state_dir` set, this also opens the durable logs,
    /// replays the journal into the caches (decoding persisted baselines
    /// through the backend) and marks interrupted jobs abandoned; the
    /// result is available from [`SweepServer::recovery_report`].
    ///
    /// # Errors
    ///
    /// Propagates the bind failure, and unrepairable state-dir defects
    /// (foreign files, newer formats) as [`std::io::ErrorKind::InvalidData`].
    pub fn bind(addr: &str, cfg: ServerConfig, backend: B) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let pool = ThreadPool::new(cfg.threads, cfg.cell_queue);
        let mut cells = LruCache::new(cfg.cache_cap);
        let mut baselines = LruCache::new(cfg.cache_cap);
        let mut durable = None;
        let mut recovery = None;
        if let Some(dir) = &cfg.state_dir {
            let (state, recovered) = DurableState::open(dir)
                .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
            let mut report = recovered.report;
            for (key, metrics) in recovered.cells {
                cells.insert(key, metrics);
            }
            for (key, bytes) in recovered.baselines {
                // The backend owns the bundle format; bytes it rejects
                // (version skew) are skipped, never fatal.
                match backend.decode_baseline(&bytes) {
                    Some(b) => {
                        baselines.insert(key, Arc::new(b));
                    }
                    None => {
                        report.baselines_recovered -= 1;
                        report.corrupt_records += 1;
                    }
                }
            }
            durable = Some(state);
            recovery = Some(report);
        }
        let shared = Arc::new(Shared {
            pool,
            cells: Mutex::new(cells),
            baselines: Mutex::new(baselines),
            active: AtomicUsize::new(0),
            durable: Mutex::new(durable),
            draining: AtomicBool::new(false),
            jobs_done: AtomicUsize::new(0),
            jobs_overloaded: AtomicUsize::new(0),
            jobs_rejected: AtomicUsize::new(0),
            jobs_deadline: AtomicUsize::new(0),
            cells_timed_out: AtomicUsize::new(0),
            cells_cancelled: AtomicUsize::new(0),
            cfg,
            backend,
        });
        Ok(SweepServer {
            shared,
            listener,
            recovery,
        })
    }

    /// What startup recovery replayed from `state_dir`; `None` for a
    /// memory-only server.
    pub fn recovery_report(&self) -> Option<&RecoveryReport> {
        self.recovery.as_ref()
    }

    /// The bound socket address.
    ///
    /// # Errors
    ///
    /// Propagates the socket introspection failure.
    pub fn local_addr(&self) -> std::io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// Aggregate admission/completion counters.
    pub fn stats(&self) -> ServerStats {
        ServerStats {
            jobs_done: self.shared.jobs_done.load(Ordering::Relaxed),
            jobs_overloaded: self.shared.jobs_overloaded.load(Ordering::Relaxed),
            jobs_rejected: self.shared.jobs_rejected.load(Ordering::Relaxed),
            jobs_deadline: self.shared.jobs_deadline.load(Ordering::Relaxed),
            cells_timed_out: self.shared.cells_timed_out.load(Ordering::Relaxed),
            cells_cancelled: self.shared.cells_cancelled.load(Ordering::Relaxed),
        }
    }

    /// Accepts connections until an accept error, spawning one handler
    /// thread per connection. Equivalent to
    /// [`SweepServer::run_with_shutdown`] with a flag that never raises.
    ///
    /// # Errors
    ///
    /// The first accept failure.
    pub fn run(&self) -> std::io::Result<()> {
        self.run_with_shutdown(&AtomicBool::new(false))
    }

    /// Accepts connections until `shutdown` raises, then drains: admission
    /// flips to [`ErrorCode::Draining`], in-flight jobs run to completion
    /// (their `done` lines carry `reason:"draining"`), and the call
    /// returns once the server is idle or `drain_timeout_ms` elapses.
    ///
    /// The accept loop polls the flag every ~20 ms, so a signal handler
    /// only needs to store into the `AtomicBool`.
    ///
    /// # Errors
    ///
    /// The first non-transient accept failure.
    pub fn run_with_shutdown(&self, shutdown: &AtomicBool) -> std::io::Result<()> {
        self.listener.set_nonblocking(true)?;
        while !shutdown.load(Ordering::Acquire) {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    // Handler threads use blocking reads (with socket
                    // timeouts); only the accept loop polls.
                    let _ = stream.set_nonblocking(false);
                    let shared = Arc::clone(&self.shared);
                    std::thread::spawn(move || handle_connection(&shared, stream));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(20));
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        self.shared.draining.store(true, Ordering::Release);
        let drain_deadline =
            Instant::now() + Duration::from_millis(self.shared.cfg.drain_timeout_ms.max(1));
        while self.shared.active.load(Ordering::Acquire) > 0 && Instant::now() < drain_deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
        Ok(())
    }
}

enum LineRead {
    /// A complete (or EOF-terminated) line landed in the buffer.
    Line,
    /// Orderly end of stream.
    Eof,
    /// The line exceeded [`MAX_LINE_BYTES`] without a newline.
    TooLong,
    /// Read error — timeout, reset, or torn mid-line by a fault.
    IoError,
}

/// Reads one newline-terminated line into `buf`, refusing to buffer more
/// than [`MAX_LINE_BYTES`].
fn read_line_bounded(reader: &mut BufReader<TcpStream>, buf: &mut String) -> LineRead {
    let mut limited = reader.by_ref().take(MAX_LINE_BYTES);
    match limited.read_line(buf) {
        Ok(0) => LineRead::Eof,
        Ok(_) => {
            if buf.ends_with('\n') || (buf.len() as u64) < MAX_LINE_BYTES {
                // A newline-free short read means EOF mid-line: serve the
                // partial line; the next read reports EOF.
                LineRead::Line
            } else {
                LineRead::TooLong
            }
        }
        Err(_) => LineRead::IoError,
    }
}

/// Serves one connection: reads request lines until EOF/timeout, streaming
/// each job's responses back on the same socket.
fn handle_connection<B: SweepBackend>(shared: &Arc<Shared<B>>, stream: TcpStream) {
    let io_timeout =
        (shared.cfg.io_timeout_ms > 0).then(|| Duration::from_millis(shared.cfg.io_timeout_ms));
    // A dead or stalled client must not pin this thread: bound both
    // directions of the socket.
    let _ = stream.set_read_timeout(io_timeout);
    let _ = stream.set_write_timeout(io_timeout);
    let mut reader = match stream.try_clone() {
        Ok(s) => BufReader::new(s),
        Err(_) => return,
    };
    let mut writer = stream;
    let mut buf = String::new();
    loop {
        buf.clear();
        match read_line_bounded(&mut reader, &mut buf) {
            LineRead::Eof | LineRead::IoError => break,
            LineRead::TooLong => {
                shared.jobs_rejected.fetch_add(1, Ordering::Relaxed);
                let mut encoded = encode_response(&Response::Error {
                    id: None,
                    code: ErrorCode::BadRequest,
                    detail: format!("request line exceeds {MAX_LINE_BYTES} bytes"),
                    depth: None,
                    limit: None,
                });
                encoded.push('\n');
                let _ = writer.write_all(encoded.as_bytes());
                break; // framing is lost; close the connection
            }
            LineRead::Line => {
                let line = buf.trim();
                if line.is_empty() {
                    continue;
                }
                if !serve_line(shared, line, &mut writer) {
                    break; // client went away mid-stream
                }
            }
        }
    }
}

/// Handles one request line; returns `false` when the client's socket is
/// no longer writable.
fn serve_line<B: SweepBackend>(
    shared: &Arc<Shared<B>>,
    line: &str,
    writer: &mut TcpStream,
) -> bool {
    let mut send = |resp: &Response| -> bool {
        let mut encoded = encode_response(resp);
        encoded.push('\n');
        writer.write_all(encoded.as_bytes()).is_ok()
    };

    // Parse + shape-validate.
    let job = match decode_job(line) {
        Ok(job) => job,
        Err(detail) => {
            shared.jobs_rejected.fetch_add(1, Ordering::Relaxed);
            return send(&Response::Error {
                id: None,
                code: ErrorCode::BadRequest,
                detail,
                depth: None,
                limit: None,
            });
        }
    };

    // A draining server admits nothing new (in-flight jobs keep running).
    if shared.draining.load(Ordering::Acquire) {
        shared.jobs_rejected.fetch_add(1, Ordering::Relaxed);
        return send(&Response::Error {
            id: Some(job.id.clone()),
            code: ErrorCode::Draining,
            detail: "server is draining after a shutdown signal; resubmit elsewhere".into(),
            depth: None,
            limit: None,
        });
    }

    // Catalog/invariant validation, still before admission.
    let plan = match shared.backend.plan(&job) {
        Ok(plan) => plan,
        Err((code, detail)) => {
            shared.jobs_rejected.fetch_add(1, Ordering::Relaxed);
            return send(&Response::Error {
                id: Some(job.id.clone()),
                code,
                detail,
                depth: None,
                limit: None,
            });
        }
    };

    // Admission control: reject — never queue unboundedly, never hang.
    let limit = shared.cfg.queue_depth;
    let admitted = shared
        .active
        .fetch_update(Ordering::AcqRel, Ordering::Acquire, |n| {
            (n < limit).then_some(n + 1)
        });
    if admitted.is_err() {
        shared.jobs_overloaded.fetch_add(1, Ordering::Relaxed);
        return send(&Response::Error {
            id: Some(job.id.clone()),
            code: ErrorCode::Overloaded,
            detail: format!("admission queue full ({limit} jobs in service)"),
            depth: Some(shared.active.load(Ordering::Relaxed)),
            limit: Some(limit),
        });
    }
    // The slot is owned by the guard from here on: client disconnects and
    // panicking backends release it on unwind just like normal returns.
    let _slot = SlotGuard {
        active: &shared.active,
    };
    let ok = run_job(shared, &job, &plan, &mut send);
    if !ok {
        // The client went away mid-stream: close the journal entry so a
        // restart does not report this socket death as a crash. (Replay
        // tolerates a duplicate close, so the rare "done recorded but the
        // done line failed to send" overlap is harmless.)
        shared.journal(&JournalRecord::Abandoned { id: job.id.clone() });
    }
    shared.jobs_done.fetch_add(1, Ordering::Relaxed);
    ok
}

/// A scheduled (not yet finished) cell of an in-flight job.
struct PendingCell {
    label: String,
    token: CancelToken,
    spawned: Instant,
}

/// Cancels every still-pending cell (client gone, deadline, …); their late
/// results are discarded by the caller's bookkeeping.
fn cancel_all(pending: &HashMap<usize, PendingCell>) {
    for cell in pending.values() {
        cell.token.cancel();
    }
}

/// Deadline expiry: cancels every pending cell and reports each to the
/// client as a structured `cancelled` cell, in grid order. Returns `false`
/// when the client's socket died mid-report.
fn report_deadline_cancellations(
    pending: &mut HashMap<usize, PendingCell>,
    id: &str,
    cells_cancelled: &AtomicUsize,
    failed_cells: &mut usize,
    send: &mut impl FnMut(&Response) -> bool,
) -> bool {
    let mut expired: Vec<(usize, PendingCell)> = pending.drain().collect();
    expired.sort_by_key(|(idx, _)| *idx);
    for (_, cell) in expired {
        cell.token.cancel();
        cells_cancelled.fetch_add(1, Ordering::Relaxed);
        *failed_cells += 1;
        if !send(&Response::Cell {
            id: id.to_string(),
            outcome: CellOutcome {
                label: cell.label,
                cached: false,
                result: Err(CellFailure::new(
                    ErrorCode::Cancelled,
                    "job deadline expired",
                )),
            },
        }) {
            return false;
        }
    }
    true
}

/// Runs one admitted job end to end, streaming cell lines as they land.
#[allow(clippy::too_many_lines)]
fn run_job<B: SweepBackend>(
    shared: &Arc<Shared<B>>,
    job: &JobSpec,
    plan: &JobPlan,
    send: &mut impl FnMut(&Response) -> bool,
) -> bool {
    let started = Instant::now();
    let id = job.id.clone();
    let deadline = job
        .deadline_ms
        .or(shared.cfg.default_deadline_ms)
        .map(|ms| started + Duration::from_millis(ms));
    let cell_timeout =
        (shared.cfg.cell_timeout_ms > 0).then(|| Duration::from_millis(shared.cfg.cell_timeout_ms));
    // Write-ahead: the admission is durable before it is visible, so a
    // crash after this line reports the job as interrupted on restart.
    shared.journal(&JournalRecord::Admitted {
        id: id.clone(),
        fingerprint: plan.fingerprint,
        trace_crc: plan.trace_crc,
        cells: plan.cells.clone(),
    });
    if !send(&Response::Admitted {
        id: id.clone(),
        cells: plan.cells.len(),
    }) {
        return false;
    }
    let mut hits = 0u64;
    let mut misses = 0u64;
    let mut evictions = 0u64;
    let mut ok_cells = 0usize;
    let mut failed_cells = 0usize;

    // First pass: answer cached cells immediately (a resumed or repeated
    // job streams its warm cells without waiting on anything), collect
    // the rest for the worker pool.
    let mut todo: Vec<(usize, &String)> = Vec::new();
    for (idx, label) in plan.cells.iter().enumerate() {
        let key = CacheKey {
            fingerprint: plan.fingerprint,
            trace_crc: plan.trace_crc,
            label: label.clone(),
        };
        let hit = lock_recover(&shared.cells).get(&key).copied();
        if let Some(metrics) = hit {
            hits += 1;
            ok_cells += 1;
            if !send(&Response::Cell {
                id: id.clone(),
                outcome: CellOutcome {
                    label: label.clone(),
                    cached: true,
                    result: Ok(metrics),
                },
            }) {
                return false;
            }
        } else {
            misses += 1;
            todo.push((idx, label));
        }
    }

    let mut deadline_hit = false;
    let mut pending: HashMap<usize, PendingCell> = HashMap::new();
    type CellMsg = (
        usize,
        Result<memscale_types::serve::CellMetrics, CellFailure>,
    );
    let (tx, rx) = mpsc::channel::<CellMsg>();

    // Baseline bundle, resolved lazily: a fully cached job (the warm
    // resubmit after a restart) never touches the calibration cache or
    // the backend at all.
    let baseline = if todo.is_empty() {
        None
    } else {
        let baseline_key = CacheKey {
            fingerprint: plan.fingerprint,
            trace_crc: plan.trace_crc,
            label: CacheKey::BASELINE.into(),
        };
        let cached_baseline = lock_recover(&shared.baselines).get(&baseline_key).cloned();
        match cached_baseline {
            Some(b) => {
                hits += 1;
                Some(b)
            }
            None => {
                misses += 1;
                // Calibrate outside the cache lock: concurrent cold jobs
                // may duplicate the work, but never serialize behind it.
                match shared.backend.calibrate(job) {
                    Ok(b) => {
                        if let Some(bundle) = shared.backend.encode_baseline(job, &b) {
                            shared.persist_baseline(plan.fingerprint, plan.trace_crc, &bundle);
                        }
                        let b = Arc::new(b);
                        if lock_recover(&shared.baselines).insert(baseline_key, Arc::clone(&b)) {
                            evictions += 1;
                        }
                        Some(b)
                    }
                    Err((code, detail)) => {
                        // Terminal error: close the journal entry so the
                        // restart does not count this as a crash.
                        shared.journal(&JournalRecord::Abandoned { id: id.clone() });
                        return send(&Response::Error {
                            id: Some(id),
                            code,
                            detail,
                            depth: None,
                            limit: None,
                        });
                    }
                }
            }
        }
    };

    // Fan the misses out on the worker pool. Each gets its own cancel
    // token so deadlines and disconnects can reach it individually.
    for (idx, label) in todo {
        if !deadline_hit && deadline.is_some_and(|d| Instant::now() >= d) {
            deadline_hit = true;
        }
        let mut report_unscheduled = deadline_hit;
        if !report_unscheduled {
            let token = CancelToken::new();
            let worker_token = token.clone();
            let backend_shared = Arc::clone(shared);
            let baseline = Arc::clone(baseline.as_ref().expect("todo is non-empty"));
            let worker_label = label.clone();
            let tx = tx.clone();
            // The submit itself is bounded by the job deadline: a stuffed
            // cell queue cannot pin this connection past it.
            let enqueued = shared.pool.execute_cancellable(
                &token.flag(),
                deadline,
                move |cancelled_while_queued| {
                    let result = if cancelled_while_queued {
                        Err(CellFailure::new(
                            ErrorCode::Cancelled,
                            "cancelled before execution",
                        ))
                    } else {
                        backend_shared
                            .backend
                            .run_cell(&baseline, &worker_label, &worker_token)
                    };
                    let _ = tx.send((idx, result));
                },
            );
            if enqueued {
                pending.insert(
                    idx,
                    PendingCell {
                        label: label.clone(),
                        token,
                        spawned: Instant::now(),
                    },
                );
            } else {
                deadline_hit = true;
                report_unscheduled = true;
            }
        }
        if report_unscheduled {
            // Deadline expired before this cell could even be scheduled.
            shared.cells_cancelled.fetch_add(1, Ordering::Relaxed);
            failed_cells += 1;
            if !send(&Response::Cell {
                id: id.clone(),
                outcome: CellOutcome {
                    label: label.clone(),
                    cached: false,
                    result: Err(CellFailure::new(
                        ErrorCode::Cancelled,
                        "job deadline expired before the cell was scheduled",
                    )),
                },
            }) {
                cancel_all(&pending);
                return false;
            }
        }
    }
    // Workers hold their own sender clones; dropping ours makes a fully
    // dead channel detectable (every remaining worker panicked).
    drop(tx);

    // A deadline that struck during scheduling must reach the cells that
    // did get scheduled before it hit.
    if deadline_hit
        && !report_deadline_cancellations(
            &mut pending,
            &id,
            &shared.cells_cancelled,
            &mut failed_cells,
            send,
        )
    {
        return false;
    }

    // Stream results as workers finish them, waking early for the job
    // deadline and the per-cell watchdog.
    while !pending.is_empty() {
        let mut wake: Option<Instant> = if deadline_hit { None } else { deadline };
        if let Some(ct) = cell_timeout {
            for cell in pending.values() {
                let t = cell.spawned + ct;
                wake = Some(wake.map_or(t, |w| w.min(t)));
            }
        }
        let msg = match wake {
            None => rx.recv().ok(),
            Some(w) => {
                let dur = w
                    .saturating_duration_since(Instant::now())
                    .max(Duration::from_millis(1));
                match rx.recv_timeout(dur) {
                    Ok(m) => Some(m),
                    Err(mpsc::RecvTimeoutError::Timeout) => {
                        let now = Instant::now();
                        if !deadline_hit && deadline.is_some_and(|d| now >= d) {
                            // Job deadline: cancel everything still in
                            // flight and report each cell as cancelled.
                            deadline_hit = true;
                            if !report_deadline_cancellations(
                                &mut pending,
                                &id,
                                &shared.cells_cancelled,
                                &mut failed_cells,
                                send,
                            ) {
                                return false;
                            }
                        }
                        if let Some(ct) = cell_timeout {
                            // Per-cell watchdog: abandon stuck cells
                            // without touching their siblings.
                            let stuck: Vec<usize> = pending
                                .iter()
                                .filter(|(_, c)| now.duration_since(c.spawned) >= ct)
                                .map(|(i, _)| *i)
                                .collect();
                            for idx in stuck {
                                let Some(cell) = pending.remove(&idx) else {
                                    continue;
                                };
                                cell.token.cancel();
                                shared.cells_timed_out.fetch_add(1, Ordering::Relaxed);
                                failed_cells += 1;
                                if !send(&Response::Cell {
                                    id: id.clone(),
                                    outcome: CellOutcome {
                                        label: cell.label,
                                        cached: false,
                                        result: Err(CellFailure::new(
                                            ErrorCode::CellTimeout,
                                            format!(
                                                "cell exceeded the {} ms watchdog and was abandoned",
                                                shared.cfg.cell_timeout_ms
                                            ),
                                        )),
                                    },
                                }) {
                                    cancel_all(&pending);
                                    return false;
                                }
                            }
                        }
                        continue;
                    }
                    Err(mpsc::RecvTimeoutError::Disconnected) => None,
                }
            }
        };
        let Some((idx, result)) = msg else {
            // Every sender is gone but cells remain: their workers died
            // without reporting (a panicking backend). Surface each as a
            // structured internal failure.
            let mut orphaned: Vec<(usize, PendingCell)> = pending.drain().collect();
            orphaned.sort_by_key(|(idx, _)| *idx);
            for (_, cell) in orphaned {
                failed_cells += 1;
                if !send(&Response::Cell {
                    id: id.clone(),
                    outcome: CellOutcome {
                        label: cell.label,
                        cached: false,
                        result: Err(CellFailure::new(
                            ErrorCode::Internal,
                            "cell worker died before reporting a result",
                        )),
                    },
                }) {
                    return false;
                }
            }
            break;
        };
        let Some(cell) = pending.remove(&idx) else {
            // Late result of an abandoned cell (watchdog or deadline
            // already reported it): discard — and never cache it, the
            // abandonment is what the client was told.
            continue;
        };
        match &result {
            Ok(metrics) => {
                ok_cells += 1;
                // Write-ahead: the cell is durable before its line is
                // visible — a client never sees a result a crash loses.
                shared.journal(&JournalRecord::CellDone {
                    fingerprint: plan.fingerprint,
                    trace_crc: plan.trace_crc,
                    label: cell.label.clone(),
                    metrics: *metrics,
                });
                if lock_recover(&shared.cells).insert(
                    CacheKey {
                        fingerprint: plan.fingerprint,
                        trace_crc: plan.trace_crc,
                        label: cell.label.clone(),
                    },
                    *metrics,
                ) {
                    evictions += 1;
                }
            }
            Err(failure) => {
                if failure.code == ErrorCode::Cancelled {
                    shared.cells_cancelled.fetch_add(1, Ordering::Relaxed);
                }
                failed_cells += 1;
            }
        }
        if !send(&Response::Cell {
            id: id.clone(),
            outcome: CellOutcome {
                label: cell.label,
                cached: false,
                result,
            },
        }) {
            // Client went away: stop the remaining work instead of
            // computing into a dead socket.
            cancel_all(&pending);
            return false;
        }
    }

    let reason = if deadline_hit {
        shared.jobs_deadline.fetch_add(1, Ordering::Relaxed);
        DoneReason::Deadline
    } else if shared.draining.load(Ordering::Acquire) {
        DoneReason::Draining
    } else {
        DoneReason::Complete
    };
    // Write-ahead: the job is closed in the journal before the client
    // sees `done`.
    shared.journal(&JournalRecord::JobDone { id: id.clone() });
    send(&Response::Done {
        id,
        summary: JobSummary {
            cells: plan.cells.len(),
            ok: ok_cells,
            failed: failed_cells,
            cache_hits: hits,
            cache_misses: misses,
            evictions,
            wall_ms: started.elapsed().as_secs_f64() * 1e3,
            reason,
        },
    })
}
