//! The sweep-job server: TCP accept loop, admission control, cell
//! scheduling and result streaming.
//!
//! The server is generic over a [`SweepBackend`] so the serving layer
//! (protocol, cache, backpressure) stays free of simulator types; the
//! `memscale-simulator` crate provides the real backend over its replay
//! and shard machinery. One connection carries any number of jobs,
//! submitted one line at a time; responses for a job are streamed as its
//! cells complete (completion order, not submission order — each line
//! carries its cell label).
//!
//! Concurrency model:
//!
//! * one OS thread per connection (bounded in practice by the client
//!   population — the load generator's closed loop keeps this small);
//! * per-job **admission control**: at most `queue_depth` jobs in service
//!   across all connections; a job beyond that is rejected immediately
//!   with a structured [`ErrorCode::Overloaded`] response carrying the
//!   observed depth and the limit — backpressure, never a hang;
//! * admitted jobs fan their cells out on a shared bounded-queue
//!   [`rayon::ThreadPool`]; a full cell queue blocks the producing
//!   connection thread (producer-side backpressure), never the accept
//!   loop.

use crate::cache::{CacheKey, LruCache};
use crate::wire::{decode_job, encode_response, Response};
use memscale_types::serve::{CellOutcome, ErrorCode, JobSpec, JobSummary};
use rayon::ThreadPool;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::Instant;

/// What a backend resolves a job to before any expensive work: the cache
/// identity and the cell labels to evaluate.
#[derive(Debug, Clone, PartialEq)]
pub struct JobPlan {
    /// `SimConfig::fingerprint()` of the job's run configuration.
    pub fingerprint: u64,
    /// CRC-32 of the job's input identity (trace file bytes, or the mix
    /// name for live-recorded jobs).
    pub trace_crc: u32,
    /// Cell labels (policy wire names), in grid order.
    pub cells: Vec<String>,
}

/// The simulation side of the server, kept behind a trait so this crate
/// depends only on `memscale-types` (the simulator crate implements it).
pub trait SweepBackend: Send + Sync + 'static {
    /// The expensive per-`(config, trace)` artifact shared by every cell
    /// of a job: calibrated baseline plus replayable trace.
    type Baseline: Send + Sync + 'static;

    /// Validates `job` against the catalogs and invariant machinery and
    /// resolves its plan. Called *before* admission; must be cheap relative
    /// to a cell (opening a trace file to checksum it is acceptable,
    /// simulating is not).
    ///
    /// # Errors
    ///
    /// A structured code plus human-readable detail; the server forwards
    /// both verbatim.
    fn plan(&self, job: &JobSpec) -> Result<JobPlan, (ErrorCode, String)>;

    /// Produces the baseline bundle for `job` (record or load the trace,
    /// run the calibration). Called once per cache miss.
    ///
    /// # Errors
    ///
    /// A structured code plus human-readable detail.
    fn calibrate(&self, job: &JobSpec) -> Result<Self::Baseline, (ErrorCode, String)>;

    /// Evaluates one cell against the baseline bundle.
    ///
    /// # Errors
    ///
    /// The `SimError` rendering for this cell; a failed cell must not
    /// affect its siblings.
    fn run_cell(
        &self,
        baseline: &Self::Baseline,
        label: &str,
    ) -> Result<memscale_types::serve::CellMetrics, String>;
}

/// Server tuning knobs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServerConfig {
    /// Maximum jobs in service at once; job N+1 is rejected with
    /// [`ErrorCode::Overloaded`]. Zero rejects everything (useful to probe
    /// a client's backpressure path).
    pub queue_depth: usize,
    /// Worker threads evaluating cells.
    pub threads: usize,
    /// Bounded cell-queue capacity of the worker pool.
    pub cell_queue: usize,
    /// Entries in each of the result and baseline caches.
    pub cache_cap: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            queue_depth: 8,
            threads: rayon::current_num_threads(),
            cell_queue: 256,
            cache_cap: 512,
        }
    }
}

/// Aggregate counters a server exposes (for logs and tests).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServerStats {
    /// Jobs accepted and run to completion (successfully or with failed
    /// cells).
    pub jobs_done: usize,
    /// Jobs rejected by admission control.
    pub jobs_overloaded: usize,
    /// Lines rejected before admission (parse/validation failures).
    pub jobs_rejected: usize,
}

struct Shared<B: SweepBackend> {
    backend: B,
    cfg: ServerConfig,
    pool: ThreadPool,
    /// Result cache: one entry per completed cell.
    cells: Mutex<LruCache<memscale_types::serve::CellMetrics>>,
    /// Calibration cache: one entry per `(fingerprint, trace)` baseline.
    baselines: Mutex<LruCache<Arc<B::Baseline>>>,
    /// Jobs currently in service (admission-control gauge).
    active: AtomicUsize,
    jobs_done: AtomicUsize,
    jobs_overloaded: AtomicUsize,
    jobs_rejected: AtomicUsize,
}

/// The sweep-job server. Bind with [`SweepServer::bind`], read the bound
/// address back with [`SweepServer::local_addr`], then run the accept
/// loop on the current thread with [`SweepServer::run`].
pub struct SweepServer<B: SweepBackend> {
    shared: Arc<Shared<B>>,
    listener: TcpListener,
}

impl<B: SweepBackend> SweepServer<B> {
    /// Binds `addr` (e.g. `127.0.0.1:7119`; port 0 picks an ephemeral
    /// port — read it back with [`SweepServer::local_addr`]).
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn bind(addr: &str, cfg: ServerConfig, backend: B) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let pool = ThreadPool::new(cfg.threads, cfg.cell_queue);
        let shared = Arc::new(Shared {
            pool,
            cells: Mutex::new(LruCache::new(cfg.cache_cap)),
            baselines: Mutex::new(LruCache::new(cfg.cache_cap)),
            active: AtomicUsize::new(0),
            jobs_done: AtomicUsize::new(0),
            jobs_overloaded: AtomicUsize::new(0),
            jobs_rejected: AtomicUsize::new(0),
            cfg,
            backend,
        });
        Ok(SweepServer { shared, listener })
    }

    /// The bound socket address.
    ///
    /// # Errors
    ///
    /// Propagates the socket introspection failure.
    pub fn local_addr(&self) -> std::io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// Aggregate admission/completion counters.
    pub fn stats(&self) -> ServerStats {
        ServerStats {
            jobs_done: self.shared.jobs_done.load(Ordering::Relaxed),
            jobs_overloaded: self.shared.jobs_overloaded.load(Ordering::Relaxed),
            jobs_rejected: self.shared.jobs_rejected.load(Ordering::Relaxed),
        }
    }

    /// Accepts connections forever, spawning one handler thread per
    /// connection. Returns only on an accept error.
    ///
    /// # Errors
    ///
    /// The first accept failure.
    pub fn run(&self) -> std::io::Result<()> {
        loop {
            let (stream, _) = self.listener.accept()?;
            let shared = Arc::clone(&self.shared);
            std::thread::spawn(move || handle_connection(&shared, stream));
        }
    }
}

/// Serves one connection: reads request lines until EOF, streaming each
/// job's responses back on the same socket.
fn handle_connection<B: SweepBackend>(shared: &Arc<Shared<B>>, stream: TcpStream) {
    let peer = stream.peer_addr().ok();
    let reader = match stream.try_clone() {
        Ok(s) => BufReader::new(s),
        Err(_) => return,
    };
    let mut writer = stream;
    for line in reader.lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        let responses_ok = serve_line(shared, &line, &mut writer);
        if !responses_ok {
            break; // client went away mid-stream
        }
    }
    let _ = peer; // reserved for future per-peer accounting
}

/// Handles one request line; returns `false` when the client's socket is
/// no longer writable.
fn serve_line<B: SweepBackend>(
    shared: &Arc<Shared<B>>,
    line: &str,
    writer: &mut TcpStream,
) -> bool {
    let mut send = |resp: &Response| -> bool {
        let mut encoded = encode_response(resp);
        encoded.push('\n');
        writer.write_all(encoded.as_bytes()).is_ok()
    };

    // Parse + shape-validate.
    let job = match decode_job(line) {
        Ok(job) => job,
        Err(detail) => {
            shared.jobs_rejected.fetch_add(1, Ordering::Relaxed);
            return send(&Response::Error {
                id: None,
                code: ErrorCode::BadRequest,
                detail,
                depth: None,
                limit: None,
            });
        }
    };

    // Catalog/invariant validation, still before admission.
    let plan = match shared.backend.plan(&job) {
        Ok(plan) => plan,
        Err((code, detail)) => {
            shared.jobs_rejected.fetch_add(1, Ordering::Relaxed);
            return send(&Response::Error {
                id: Some(job.id.clone()),
                code,
                detail,
                depth: None,
                limit: None,
            });
        }
    };

    // Admission control: reject — never queue unboundedly, never hang.
    let limit = shared.cfg.queue_depth;
    let admitted = shared
        .active
        .fetch_update(Ordering::AcqRel, Ordering::Acquire, |n| {
            (n < limit).then_some(n + 1)
        });
    if admitted.is_err() {
        shared.jobs_overloaded.fetch_add(1, Ordering::Relaxed);
        return send(&Response::Error {
            id: Some(job.id.clone()),
            code: ErrorCode::Overloaded,
            detail: format!("admission queue full ({limit} jobs in service)"),
            depth: Some(shared.active.load(Ordering::Relaxed)),
            limit: Some(limit),
        });
    }
    let ok = run_job(shared, &job, &plan, &mut send);
    shared.active.fetch_sub(1, Ordering::AcqRel);
    shared.jobs_done.fetch_add(1, Ordering::Relaxed);
    ok
}

/// Runs one admitted job end to end, streaming cell lines as they land.
fn run_job<B: SweepBackend>(
    shared: &Arc<Shared<B>>,
    job: &JobSpec,
    plan: &JobPlan,
    send: &mut impl FnMut(&Response) -> bool,
) -> bool {
    let started = Instant::now();
    let id = job.id.clone();
    if !send(&Response::Admitted {
        id: id.clone(),
        cells: plan.cells.len(),
    }) {
        return false;
    }
    let mut hits = 0u64;
    let mut misses = 0u64;

    // Baseline bundle: cached per (fingerprint, trace).
    let baseline_key = CacheKey {
        fingerprint: plan.fingerprint,
        trace_crc: plan.trace_crc,
        label: CacheKey::BASELINE.into(),
    };
    let cached_baseline = shared
        .baselines
        .lock()
        .expect("baseline cache poisoned")
        .get(&baseline_key)
        .cloned();
    let baseline = match cached_baseline {
        Some(b) => {
            hits += 1;
            b
        }
        None => {
            misses += 1;
            // Calibrate outside the cache lock: concurrent cold jobs may
            // duplicate the work, but never serialize behind it.
            match shared.backend.calibrate(job) {
                Ok(b) => {
                    let b = Arc::new(b);
                    shared
                        .baselines
                        .lock()
                        .expect("baseline cache poisoned")
                        .insert(baseline_key, Arc::clone(&b));
                    b
                }
                Err((code, detail)) => {
                    return send(&Response::Error {
                        id: Some(id),
                        code,
                        detail,
                        depth: None,
                        limit: None,
                    });
                }
            }
        }
    };

    // Split cells into cache hits (streamed immediately) and misses
    // (fanned out on the worker pool).
    let mut ok_cells = 0usize;
    let mut failed_cells = 0usize;
    let mut pending = 0usize;
    let (tx, rx) = mpsc::channel::<(String, Result<memscale_types::serve::CellMetrics, String>)>();
    let tx = Arc::new(Mutex::new(tx));
    for label in &plan.cells {
        let key = CacheKey {
            fingerprint: plan.fingerprint,
            trace_crc: plan.trace_crc,
            label: label.clone(),
        };
        let hit = shared
            .cells
            .lock()
            .expect("cell cache poisoned")
            .get(&key)
            .copied();
        if let Some(metrics) = hit {
            hits += 1;
            ok_cells += 1;
            if !send(&Response::Cell {
                id: id.clone(),
                outcome: CellOutcome {
                    label: label.clone(),
                    cached: true,
                    result: Ok(metrics),
                },
            }) {
                return false;
            }
            continue;
        }
        misses += 1;
        pending += 1;
        let backend_shared = Arc::clone(shared);
        let baseline = Arc::clone(&baseline);
        let label = label.clone();
        let tx = Arc::clone(&tx);
        // `execute` blocks when the cell queue is full: producer-side
        // backpressure on this connection only.
        shared.pool.execute(move || {
            let result = backend_shared.backend.run_cell(&baseline, &label);
            let tx = tx.lock().expect("cell channel poisoned");
            let _ = tx.send((label, result));
        });
    }

    // Stream results as workers finish them.
    let mut client_gone = false;
    for _ in 0..pending {
        let Ok((label, result)) = rx.recv() else {
            break;
        };
        match &result {
            Ok(metrics) => {
                ok_cells += 1;
                shared.cells.lock().expect("cell cache poisoned").insert(
                    CacheKey {
                        fingerprint: plan.fingerprint,
                        trace_crc: plan.trace_crc,
                        label: label.clone(),
                    },
                    *metrics,
                );
            }
            Err(_) => failed_cells += 1,
        }
        // Even if the client went away we must drain the channel so the
        // workers' sends never error into a poisoned state.
        if !client_gone {
            client_gone = !send(&Response::Cell {
                id: id.clone(),
                outcome: CellOutcome {
                    label,
                    cached: false,
                    result,
                },
            });
        }
    }
    if client_gone {
        return false;
    }
    send(&Response::Done {
        id,
        summary: JobSummary {
            cells: plan.cells.len(),
            ok: ok_cells,
            failed: failed_cells,
            cache_hits: hits,
            cache_misses: misses,
            wall_ms: started.elapsed().as_secs_f64() * 1e3,
        },
    })
}
