//! Closed-loop load generator for the sweep server.
//!
//! Spawns `clients` threads, each holding one connection and submitting
//! `jobs_per_client` jobs back to back — a new job is sent only after the
//! previous job's `done` (or error) line arrives, so offered load tracks
//! service rate (closed loop). Per-job latency is measured submit-to-done
//! on the client side; the run report aggregates throughput, latency
//! percentiles, cache behaviour, and protocol health into
//! `BENCH_serve.json`.

use crate::json::Json;
use crate::wire::{decode_response, encode_job, Response};
use memscale_types::serve::{ErrorCode, JobSpec};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Instant;

/// Load-generator parameters.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Server address, e.g. `127.0.0.1:7119`.
    pub addr: String,
    /// Concurrent closed-loop clients.
    pub clients: usize,
    /// Jobs each client submits sequentially.
    pub jobs_per_client: usize,
    /// Job template; each submission gets a unique id derived from it.
    pub template: JobSpec,
}

/// Aggregated outcome of a load-generator run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LoadgenStats {
    /// Jobs that completed with a `done` line.
    pub jobs_ok: usize,
    /// Jobs rejected by admission control.
    pub jobs_overloaded: usize,
    /// Jobs rejected or failed with any other error line.
    pub jobs_failed: usize,
    /// Malformed or out-of-protocol server lines, plus transport failures.
    pub protocol_errors: usize,
    /// Cells evaluated successfully, summed over `done` lines.
    pub cells_ok: usize,
    /// Cells that failed, summed over `done` lines.
    pub cells_failed: usize,
    /// Cache hits summed over `done` lines.
    pub cache_hits: u64,
    /// Cache misses summed over `done` lines.
    pub cache_misses: u64,
    /// Per-job submit-to-done latencies, milliseconds, unsorted.
    pub latencies_ms: Vec<f64>,
    /// Whole-run wall clock, seconds.
    pub wall_s: f64,
}

impl LoadgenStats {
    /// Completed jobs per second of run wall clock.
    pub fn jobs_per_sec(&self) -> f64 {
        if self.wall_s > 0.0 {
            #[allow(clippy::cast_precision_loss)]
            let n = self.jobs_ok as f64;
            n / self.wall_s
        } else {
            0.0
        }
    }

    /// Cache hit rate over all lookups reported by the server, in `[0, 1]`.
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            #[allow(clippy::cast_precision_loss)]
            let rate = self.cache_hits as f64 / total as f64;
            rate
        }
    }

    /// The `q`-quantile (`0.0..=1.0`) of job latency, by nearest-rank on
    /// the sorted sample; `0.0` when no jobs completed.
    pub fn latency_quantile(&self, q: f64) -> f64 {
        if self.latencies_ms.is_empty() {
            return 0.0;
        }
        let mut sorted = self.latencies_ms.clone();
        sorted.sort_by(f64::total_cmp);
        #[allow(clippy::cast_precision_loss)]
        let n = sorted.len() as f64;
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let rank = ((q * n).ceil() as usize).clamp(1, sorted.len());
        sorted[rank - 1]
    }

    /// Renders the `BENCH_serve.json` artifact (single line, stable field
    /// order).
    pub fn to_bench_json(&self, cfg: &LoadgenConfig) -> String {
        let obj = Json::Obj(vec![
            ("benchmark".into(), Json::Str("serve_loadgen".into())),
            ("clients".into(), Json::num(cfg.clients.to_string())),
            (
                "jobs_per_client".into(),
                Json::num(cfg.jobs_per_client.to_string()),
            ),
            ("mix".into(), Json::Str(cfg.template.mix.clone())),
            ("jobs_ok".into(), Json::num(self.jobs_ok.to_string())),
            (
                "jobs_overloaded".into(),
                Json::num(self.jobs_overloaded.to_string()),
            ),
            (
                "jobs_failed".into(),
                Json::num(self.jobs_failed.to_string()),
            ),
            (
                "protocol_errors".into(),
                Json::num(self.protocol_errors.to_string()),
            ),
            ("cells_ok".into(), Json::num(self.cells_ok.to_string())),
            (
                "cells_failed".into(),
                Json::num(self.cells_failed.to_string()),
            ),
            ("cache_hits".into(), Json::num(self.cache_hits.to_string())),
            (
                "cache_misses".into(),
                Json::num(self.cache_misses.to_string()),
            ),
            (
                "cache_hit_rate".into(),
                Json::num(format!("{:.4}", self.cache_hit_rate())),
            ),
            (
                "jobs_per_sec".into(),
                Json::num(format!("{:.3}", self.jobs_per_sec())),
            ),
            (
                "p50_ms".into(),
                Json::num(format!("{:.3}", self.latency_quantile(0.50))),
            ),
            (
                "p99_ms".into(),
                Json::num(format!("{:.3}", self.latency_quantile(0.99))),
            ),
            ("wall_s".into(), Json::num(format!("{:.3}", self.wall_s))),
        ]);
        obj.render()
    }
}

/// Outcome of one submitted job, folded into [`LoadgenStats`].
struct JobOutcome {
    done: bool,
    overloaded: bool,
    failed: bool,
    protocol_errors: usize,
    cells_ok: usize,
    cells_failed: usize,
    cache_hits: u64,
    cache_misses: u64,
    latency_ms: f64,
}

/// Runs the closed-loop fleet to completion and aggregates the outcome.
///
/// # Errors
///
/// Only connection setup failures abort the run; every in-protocol error
/// is counted in the returned stats instead.
pub fn run(cfg: &LoadgenConfig) -> Result<LoadgenStats, String> {
    let started = Instant::now();
    let mut handles = Vec::with_capacity(cfg.clients);
    for client in 0..cfg.clients {
        let addr = cfg.addr.clone();
        let template = cfg.template.clone();
        let jobs = cfg.jobs_per_client;
        handles.push(std::thread::spawn(move || {
            run_client(&addr, client, jobs, &template)
        }));
    }
    let mut stats = LoadgenStats::default();
    for handle in handles {
        let outcomes = handle
            .join()
            .map_err(|_| "load-generator client panicked".to_string())??;
        for o in outcomes {
            if o.done {
                stats.jobs_ok += 1;
                stats.latencies_ms.push(o.latency_ms);
            }
            if o.overloaded {
                stats.jobs_overloaded += 1;
            }
            if o.failed {
                stats.jobs_failed += 1;
            }
            stats.protocol_errors += o.protocol_errors;
            stats.cells_ok += o.cells_ok;
            stats.cells_failed += o.cells_failed;
            stats.cache_hits += o.cache_hits;
            stats.cache_misses += o.cache_misses;
        }
    }
    stats.wall_s = started.elapsed().as_secs_f64();
    Ok(stats)
}

/// One client's closed loop: submit, read lines until `done`/error, repeat.
fn run_client(
    addr: &str,
    client: usize,
    jobs: usize,
    template: &JobSpec,
) -> Result<Vec<JobOutcome>, String> {
    let stream = TcpStream::connect(addr).map_err(|e| format!("connect to {addr} failed: {e}"))?;
    let mut writer = stream
        .try_clone()
        .map_err(|e| format!("socket clone failed: {e}"))?;
    let mut reader = BufReader::new(stream);
    let mut outcomes = Vec::with_capacity(jobs);
    for job_idx in 0..jobs {
        let mut spec = template.clone();
        spec.id = format!("c{client}-j{job_idx}");
        outcomes.push(submit_one(&mut writer, &mut reader, &spec));
    }
    Ok(outcomes)
}

/// Submits one job and consumes its response stream.
fn submit_one(
    writer: &mut TcpStream,
    reader: &mut BufReader<TcpStream>,
    spec: &JobSpec,
) -> JobOutcome {
    let mut outcome = JobOutcome {
        done: false,
        overloaded: false,
        failed: false,
        protocol_errors: 0,
        cells_ok: 0,
        cells_failed: 0,
        cache_hits: 0,
        cache_misses: 0,
        latency_ms: 0.0,
    };
    let started = Instant::now();
    let mut line = encode_job(spec);
    line.push('\n');
    if writer.write_all(line.as_bytes()).is_err() {
        outcome.protocol_errors += 1;
        return outcome;
    }
    let mut expected_cells: Option<usize> = None;
    let mut seen_cells = 0usize;
    loop {
        let mut buf = String::new();
        match reader.read_line(&mut buf) {
            Ok(0) | Err(_) => {
                outcome.protocol_errors += 1;
                return outcome;
            }
            Ok(_) => {}
        }
        let trimmed = buf.trim();
        if trimmed.is_empty() {
            continue;
        }
        let resp = match decode_response(trimmed) {
            Ok(resp) => resp,
            Err(_) => {
                outcome.protocol_errors += 1;
                continue;
            }
        };
        // Every line of a job's stream must carry the job's id (errors
        // for unparseable requests carry none, which cannot happen for a
        // well-formed submission we just encoded ourselves).
        if resp.id().is_some_and(|id| id != spec.id) {
            outcome.protocol_errors += 1;
            continue;
        }
        match resp {
            Response::Admitted { cells, .. } => expected_cells = Some(cells),
            Response::Cell { outcome: cell, .. } => {
                seen_cells += 1;
                if cell.result.is_ok() {
                    outcome.cells_ok += 1;
                } else {
                    outcome.cells_failed += 1;
                }
            }
            Response::Done { summary, .. } => {
                outcome.done = true;
                outcome.latency_ms = started.elapsed().as_secs_f64() * 1e3;
                outcome.cache_hits += summary.cache_hits;
                outcome.cache_misses += summary.cache_misses;
                if expected_cells != Some(seen_cells) || summary.cells != seen_cells {
                    outcome.protocol_errors += 1;
                }
                return outcome;
            }
            Response::Error { code, .. } => {
                if code == ErrorCode::Overloaded {
                    outcome.overloaded = true;
                } else {
                    outcome.failed = true;
                }
                return outcome;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats_with(lat: &[f64]) -> LoadgenStats {
        LoadgenStats {
            jobs_ok: lat.len(),
            latencies_ms: lat.to_vec(),
            wall_s: 2.0,
            cache_hits: 3,
            cache_misses: 1,
            ..LoadgenStats::default()
        }
    }

    #[test]
    fn quantiles_nearest_rank() {
        let s = stats_with(&[10.0, 20.0, 30.0, 40.0]);
        assert!((s.latency_quantile(0.50) - 20.0).abs() < 1e-12);
        assert!((s.latency_quantile(0.99) - 40.0).abs() < 1e-12);
        assert!((s.latency_quantile(1.0) - 40.0).abs() < 1e-12);
        assert_eq!(LoadgenStats::default().latency_quantile(0.5), 0.0);
    }

    #[test]
    fn derived_rates() {
        let s = stats_with(&[10.0, 20.0]);
        assert!((s.jobs_per_sec() - 1.0).abs() < 1e-12);
        assert!((s.cache_hit_rate() - 0.75).abs() < 1e-12);
        assert_eq!(LoadgenStats::default().cache_hit_rate(), 0.0);
    }

    #[test]
    fn bench_json_is_parseable_and_complete() {
        let cfg = LoadgenConfig {
            addr: "127.0.0.1:0".into(),
            clients: 2,
            jobs_per_client: 3,
            template: JobSpec::for_mix("t", "MID1"),
        };
        let s = stats_with(&[10.0, 20.0]);
        let rendered = s.to_bench_json(&cfg);
        let parsed = crate::json::parse(&rendered).expect("artifact parses");
        assert_eq!(
            parsed.get("benchmark").and_then(Json::as_str),
            Some("serve_loadgen")
        );
        assert_eq!(parsed.get("jobs_ok").and_then(Json::as_u64), Some(2));
        assert_eq!(
            parsed.get("protocol_errors").and_then(Json::as_u64),
            Some(0)
        );
        assert_eq!(
            parsed.get("cache_hit_rate").and_then(Json::as_f64),
            Some(0.75)
        );
        assert!(parsed.get("p99_ms").is_some());
        assert!(parsed.get("wall_s").is_some());
    }
}
