//! Closed-loop load generator for the sweep server.
//!
//! Spawns `clients` threads, each holding one connection and submitting
//! `jobs_per_client` jobs back to back — a new job is sent only after the
//! previous job's `done` (or error) line arrives, so offered load tracks
//! service rate (closed loop). Per-job latency is measured submit-to-done
//! on the client side; the run report aggregates throughput, latency
//! percentiles, cache behaviour, and protocol health into
//! `BENCH_serve.json`.
//!
//! With `open_loop_rps > 0` the fleet switches to an open loop: the
//! offered rate is split evenly across clients and each client submits
//! on a seeded Poisson arrival schedule ([`memscale_arrivals`]) instead
//! of waiting for the previous completion — a submission whose slot has
//! already passed goes out immediately, so a saturated server shows up
//! as achieved throughput falling below the offered rate rather than as
//! a silently throttled schedule.
//!
//! The client side is chaos-hardened to match the server (DESIGN.md §14):
//! connects and reads are bounded by timeouts, `overloaded` rejections are
//! retried with exponential backoff plus seeded jitter, a connection that
//! dies mid-job is replaced for the next attempt, and the report separates
//! *transport* failures (expected under fault injection) from *protocol*
//! violations (never acceptable — the server sent a malformed or
//! inconsistent stream).

use crate::chaos::ChaosRng;
use crate::json::Json;
use crate::wire::{decode_response, encode_job, Response};
use memscale_arrivals::{ArrivalProcess, ArrivalSpec};
use memscale_types::serve::{DoneReason, ErrorCode, JobSpec};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// Load-generator parameters.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Server address, e.g. `127.0.0.1:7119`.
    pub addr: String,
    /// Concurrent closed-loop clients.
    pub clients: usize,
    /// Jobs each client submits sequentially.
    pub jobs_per_client: usize,
    /// Job template; each submission gets a unique id derived from it.
    pub template: JobSpec,
    /// TCP connect timeout, milliseconds (0 = OS default, unbounded).
    pub connect_timeout_ms: u64,
    /// Socket read/write timeout, milliseconds (0 = unbounded). A job
    /// whose response stream stalls past this is counted as a transport
    /// failure, not left hanging.
    pub read_timeout_ms: u64,
    /// Resubmissions attempted after an `overloaded` rejection before the
    /// job is recorded as overloaded.
    pub max_retries: usize,
    /// Base of the exponential backoff between retries, milliseconds
    /// (doubled per attempt, plus seeded jitter in `[0, backoff)`).
    pub backoff_base_ms: u64,
    /// Extra connection attempts after a failed connect (upfront probe
    /// and per-client reconnects alike), each preceded by the same
    /// seeded-jitter backoff as `overloaded` retries. The default `0`
    /// keeps connection refusal a fail-fast error; set it when the server
    /// is expected to bounce (e.g. the kill-9 recovery smoke test).
    pub reconnect_retries: usize,
    /// Seed of the per-client jitter streams (replayable backoff).
    pub seed: u64,
    /// Total offered arrival rate, requests per second, split evenly
    /// across clients. `0.0` (the default) keeps the classic closed
    /// loop; any positive rate switches every client to a seeded
    /// Poisson submission schedule.
    pub open_loop_rps: f64,
}

impl LoadgenConfig {
    /// A config over `addr` and `template` with the defaults the CLI
    /// uses: 3 s connect timeout, 30 s read timeout, 3 retries on
    /// `overloaded` with 10 ms backoff base.
    pub fn new(
        addr: impl Into<String>,
        clients: usize,
        jobs_per_client: usize,
        template: JobSpec,
    ) -> Self {
        LoadgenConfig {
            addr: addr.into(),
            clients,
            jobs_per_client,
            template,
            connect_timeout_ms: 3_000,
            read_timeout_ms: 30_000,
            max_retries: 3,
            backoff_base_ms: 10,
            reconnect_retries: 0,
            seed: 0x5ca1_ab1e,
            open_loop_rps: 0.0,
        }
    }
}

/// Aggregated outcome of a load-generator run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LoadgenStats {
    /// Jobs that completed with a `done` line.
    pub jobs_ok: usize,
    /// Jobs still rejected by admission control after every retry.
    pub jobs_overloaded: usize,
    /// Jobs rejected or failed with any other error line.
    pub jobs_failed: usize,
    /// Jobs lost to transport faults (connect/read/write failures,
    /// timeouts, mid-stream disconnects). Expected under chaos; fatal in
    /// a clean run.
    pub jobs_transport: usize,
    /// Malformed or out-of-protocol server lines — content violations
    /// only, never transport noise. Must be zero even under chaos.
    pub protocol_errors: usize,
    /// Resubmissions performed after `overloaded` rejections.
    pub retries: usize,
    /// Jobs whose `done` line carried `reason:"deadline"`.
    pub deadline_misses: usize,
    /// Cells evaluated successfully, summed over `done` lines.
    pub cells_ok: usize,
    /// Cells that failed, summed over `done` lines.
    pub cells_failed: usize,
    /// Cells reported as cooperatively cancelled (code `cancelled`).
    pub cells_cancelled: usize,
    /// Cells abandoned by the server's watchdog (code `cell_timeout`).
    pub cells_timed_out: usize,
    /// Cache hits summed over `done` lines.
    pub cache_hits: u64,
    /// Cache misses summed over `done` lines.
    pub cache_misses: u64,
    /// Cache evictions summed over `done` lines — how much the working
    /// set overflowed the configured `--cache-capacity`.
    pub evictions: u64,
    /// Faults a chaos proxy injected during the run, when one was in the
    /// path (filled in by the chaos orchestrator, not by `run`).
    pub chaos_faults_injected: u64,
    /// Open-loop submissions that went out after their scheduled arrival
    /// instant — the schedule slipped because the previous job on that
    /// client was still in flight. Always zero in closed-loop runs.
    pub late_submissions: usize,
    /// Per-job submit-to-done latencies, milliseconds, unsorted.
    pub latencies_ms: Vec<f64>,
    /// Whole-run wall clock, seconds.
    pub wall_s: f64,
}

impl LoadgenStats {
    /// Completed jobs per second of run wall clock.
    pub fn jobs_per_sec(&self) -> f64 {
        if self.wall_s > 0.0 {
            #[allow(clippy::cast_precision_loss)]
            let n = self.jobs_ok as f64;
            n / self.wall_s
        } else {
            0.0
        }
    }

    /// Cache hit rate over all lookups reported by the server, in `[0, 1]`.
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            #[allow(clippy::cast_precision_loss)]
            let rate = self.cache_hits as f64 / total as f64;
            rate
        }
    }

    /// The `q`-quantile (`0.0..=1.0`) of job latency, by nearest-rank on
    /// the sorted sample; `0.0` when no jobs completed.
    pub fn latency_quantile(&self, q: f64) -> f64 {
        if self.latencies_ms.is_empty() {
            return 0.0;
        }
        let mut sorted = self.latencies_ms.clone();
        sorted.sort_by(f64::total_cmp);
        #[allow(clippy::cast_precision_loss)]
        let n = sorted.len() as f64;
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let rank = ((q * n).ceil() as usize).clamp(1, sorted.len());
        sorted[rank - 1]
    }

    /// Every job submitted is accounted for exactly once: completed,
    /// overloaded (terminally), failed with a structured error, or lost
    /// to transport. The chaos harness asserts this equals the offered
    /// job count.
    pub fn jobs_accounted(&self) -> usize {
        self.jobs_ok + self.jobs_overloaded + self.jobs_failed + self.jobs_transport
    }

    /// Renders the `BENCH_serve.json` artifact (single line, stable field
    /// order).
    pub fn to_bench_json(&self, cfg: &LoadgenConfig) -> String {
        self.to_bench_json_named(cfg, "serve_loadgen")
    }

    /// Same artifact under a caller-chosen benchmark name (the chaos
    /// harness writes `serve_chaos` so its reports never masquerade as a
    /// clean loadgen run).
    pub fn to_bench_json_named(&self, cfg: &LoadgenConfig, benchmark: &str) -> String {
        let obj = Json::Obj(vec![
            ("benchmark".into(), Json::Str(benchmark.into())),
            ("clients".into(), Json::num(cfg.clients.to_string())),
            (
                "jobs_per_client".into(),
                Json::num(cfg.jobs_per_client.to_string()),
            ),
            ("mix".into(), Json::Str(cfg.template.mix.clone())),
            ("jobs_ok".into(), Json::num(self.jobs_ok.to_string())),
            (
                "jobs_overloaded".into(),
                Json::num(self.jobs_overloaded.to_string()),
            ),
            (
                "jobs_failed".into(),
                Json::num(self.jobs_failed.to_string()),
            ),
            (
                "jobs_transport".into(),
                Json::num(self.jobs_transport.to_string()),
            ),
            (
                "protocol_errors".into(),
                Json::num(self.protocol_errors.to_string()),
            ),
            ("retries".into(), Json::num(self.retries.to_string())),
            (
                "deadline_misses".into(),
                Json::num(self.deadline_misses.to_string()),
            ),
            ("cells_ok".into(), Json::num(self.cells_ok.to_string())),
            (
                "cells_failed".into(),
                Json::num(self.cells_failed.to_string()),
            ),
            (
                "cells_cancelled".into(),
                Json::num(self.cells_cancelled.to_string()),
            ),
            (
                "cells_timed_out".into(),
                Json::num(self.cells_timed_out.to_string()),
            ),
            ("cache_hits".into(), Json::num(self.cache_hits.to_string())),
            (
                "cache_misses".into(),
                Json::num(self.cache_misses.to_string()),
            ),
            ("evictions".into(), Json::num(self.evictions.to_string())),
            (
                "cache_hit_rate".into(),
                Json::num(format!("{:.4}", self.cache_hit_rate())),
            ),
            (
                "jobs_per_sec".into(),
                Json::num(format!("{:.3}", self.jobs_per_sec())),
            ),
            ("open_loop".into(), Json::Bool(cfg.open_loop_rps > 0.0)),
            (
                "offered_rps".into(),
                Json::num(format!("{:.3}", cfg.open_loop_rps)),
            ),
            (
                "achieved_rps".into(),
                Json::num(format!("{:.3}", self.jobs_per_sec())),
            ),
            (
                "late_submissions".into(),
                Json::num(self.late_submissions.to_string()),
            ),
            (
                "p50_ms".into(),
                Json::num(format!("{:.3}", self.latency_quantile(0.50))),
            ),
            (
                "p99_ms".into(),
                Json::num(format!("{:.3}", self.latency_quantile(0.99))),
            ),
            (
                "chaos_faults_injected".into(),
                Json::num(self.chaos_faults_injected.to_string()),
            ),
            ("wall_s".into(), Json::num(format!("{:.3}", self.wall_s))),
        ]);
        obj.render()
    }
}

/// Outcome of one submitted job, folded into [`LoadgenStats`].
#[derive(Debug, Default)]
struct JobOutcome {
    done: bool,
    overloaded: bool,
    failed: bool,
    transport: bool,
    protocol_errors: usize,
    retries: usize,
    deadline_miss: bool,
    cells_ok: usize,
    cells_failed: usize,
    cells_cancelled: usize,
    cells_timed_out: usize,
    cache_hits: u64,
    cache_misses: u64,
    evictions: u64,
    latency_ms: f64,
    late: bool,
}

/// One client connection: a writer half and a buffered reader half.
struct ClientConn {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

/// Connects to `addr` with the configured timeouts.
fn connect(
    addr: &str,
    connect_timeout_ms: u64,
    read_timeout_ms: u64,
) -> Result<ClientConn, String> {
    use std::net::ToSocketAddrs;
    let sock_addr = addr
        .to_socket_addrs()
        .map_err(|e| format!("cannot resolve {addr}: {e}"))?
        .next()
        .ok_or_else(|| format!("cannot resolve {addr}: no addresses"))?;
    let stream = if connect_timeout_ms > 0 {
        TcpStream::connect_timeout(&sock_addr, Duration::from_millis(connect_timeout_ms))
    } else {
        TcpStream::connect(sock_addr)
    }
    .map_err(|e| format!("cannot connect to {addr}: {e} — is the server running?"))?;
    if read_timeout_ms > 0 {
        let timeout = Some(Duration::from_millis(read_timeout_ms));
        let _ = stream.set_read_timeout(timeout);
        let _ = stream.set_write_timeout(timeout);
    }
    let writer = stream
        .try_clone()
        .map_err(|e| format!("socket clone failed: {e}"))?;
    Ok(ClientConn {
        writer,
        reader: BufReader::new(stream),
    })
}

/// Connects with up to `cfg.reconnect_retries` extra attempts, sleeping
/// the same exponential backoff plus seeded jitter as `overloaded`
/// retries between them. With the default of zero retries this is a
/// single fail-fast attempt.
fn connect_with_retries(cfg: &LoadgenConfig, rng: &mut ChaosRng) -> Result<ClientConn, String> {
    let mut attempt = 0usize;
    loop {
        match connect(&cfg.addr, cfg.connect_timeout_ms, cfg.read_timeout_ms) {
            Ok(conn) => return Ok(conn),
            Err(e) if attempt >= cfg.reconnect_retries => return Err(e),
            Err(_) => {
                attempt += 1;
                let backoff = cfg
                    .backoff_base_ms
                    .max(1)
                    .saturating_mul(1u64 << (attempt - 1).min(6));
                let jitter = rng.next_u64() % backoff;
                std::thread::sleep(Duration::from_millis(backoff + jitter));
            }
        }
    }
}

/// Runs the closed-loop fleet to completion and aggregates the outcome.
///
/// # Errors
///
/// A human-readable message when the server is unreachable (an upfront
/// probe connection fails after `reconnect_retries` extra attempts —
/// e.g. connection refused); every in-protocol and per-job transport
/// error is counted in the returned stats instead.
pub fn run(cfg: &LoadgenConfig) -> Result<LoadgenStats, String> {
    // Fail fast with a clear message when nothing is listening, instead
    // of surfacing one raw io error per client.
    let mut probe_rng = ChaosRng::new(cfg.seed ^ 0x70b3_7059);
    drop(connect_with_retries(cfg, &mut probe_rng)?);
    let started = Instant::now();
    let mut handles = Vec::with_capacity(cfg.clients);
    for client in 0..cfg.clients {
        let cfg = cfg.clone();
        handles.push(std::thread::spawn(move || {
            run_client(&cfg, client, started)
        }));
    }
    let mut stats = LoadgenStats::default();
    for handle in handles {
        let outcomes = handle
            .join()
            .map_err(|_| "load-generator client panicked".to_string())?;
        for o in outcomes {
            if o.done {
                stats.jobs_ok += 1;
                stats.latencies_ms.push(o.latency_ms);
            } else if o.overloaded {
                stats.jobs_overloaded += 1;
            } else if o.transport {
                stats.jobs_transport += 1;
            }
            if o.failed {
                stats.jobs_failed += 1;
            }
            if o.deadline_miss {
                stats.deadline_misses += 1;
            }
            stats.protocol_errors += o.protocol_errors;
            stats.retries += o.retries;
            stats.late_submissions += usize::from(o.late);
            stats.cells_ok += o.cells_ok;
            stats.cells_failed += o.cells_failed;
            stats.cells_cancelled += o.cells_cancelled;
            stats.cells_timed_out += o.cells_timed_out;
            stats.cache_hits += o.cache_hits;
            stats.cache_misses += o.cache_misses;
            stats.evictions += o.evictions;
        }
    }
    stats.wall_s = started.elapsed().as_secs_f64();
    Ok(stats)
}

/// One client's loop: submit, read lines until `done`/error, retry
/// overloaded rejections with backoff, replace dead connections, repeat.
/// Closed loop by default; with `open_loop_rps > 0` each submission
/// waits for its seeded Poisson arrival instant instead of the previous
/// completion.
fn run_client(cfg: &LoadgenConfig, client: usize, fleet_start: Instant) -> Vec<JobOutcome> {
    let mut rng = ChaosRng::new(cfg.seed ^ (client as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let mut schedule = (cfg.open_loop_rps > 0.0).then(|| {
        #[allow(clippy::cast_precision_loss)]
        let per_client = cfg.open_loop_rps / cfg.clients.max(1) as f64;
        ArrivalProcess::new(
            &ArrivalSpec::Poisson {
                rate_rps: per_client,
            },
            cfg.seed,
            client as u64,
        )
    });
    let mut conn: Option<ClientConn> = None;
    let mut outcomes = Vec::with_capacity(cfg.jobs_per_client);
    for job_idx in 0..cfg.jobs_per_client {
        // Open loop: wait for this job's scheduled arrival. A slot that
        // has already passed submits immediately, and the slip counts
        // toward the job's latency — the queueing delay a real open-loop
        // client would observe when the server cannot keep up.
        let mut slip_ms = 0.0;
        let mut late = false;
        if let Some(process) = schedule.as_mut() {
            let due = Duration::from_nanos(process.next_arrival().as_ps() / 1_000);
            let elapsed = fleet_start.elapsed();
            if elapsed < due {
                std::thread::sleep(due - elapsed);
            } else {
                late = true;
                slip_ms = (elapsed - due).as_secs_f64() * 1e3;
            }
        }
        let mut retries = 0usize;
        let outcome = loop {
            if conn.is_none() {
                conn = connect_with_retries(cfg, &mut rng).ok();
            }
            let Some(c) = conn.as_mut() else {
                break JobOutcome {
                    transport: true,
                    ..JobOutcome::default()
                };
            };
            let mut spec = cfg.template.clone();
            // Unique per attempt so a retried job can never be confused
            // with stale lines of its previous incarnation.
            spec.id = format!("c{client}-j{job_idx}-a{retries}");
            let (mut o, usable) = submit_one(&mut c.writer, &mut c.reader, &spec);
            if !usable {
                conn = None;
            }
            if o.overloaded && retries < cfg.max_retries {
                retries += 1;
                let backoff = cfg
                    .backoff_base_ms
                    .max(1)
                    .saturating_mul(1u64 << (retries - 1).min(6));
                let jitter = rng.next_u64() % backoff;
                std::thread::sleep(Duration::from_millis(backoff + jitter));
                continue;
            }
            o.retries = retries;
            break o;
        };
        let mut outcome = outcome;
        outcome.late = late;
        if outcome.done {
            outcome.latency_ms += slip_ms;
        }
        outcomes.push(outcome);
    }
    outcomes
}

/// Submits one job and consumes its response stream. Returns the outcome
/// plus whether the connection is still usable for the next submission.
fn submit_one(
    writer: &mut TcpStream,
    reader: &mut BufReader<TcpStream>,
    spec: &JobSpec,
) -> (JobOutcome, bool) {
    let mut outcome = JobOutcome::default();
    let started = Instant::now();
    let mut line = encode_job(spec);
    line.push('\n');
    if writer.write_all(line.as_bytes()).is_err() {
        outcome.transport = true;
        return (outcome, false);
    }
    let mut expected_cells: Option<usize> = None;
    let mut seen_cells = 0usize;
    loop {
        let mut buf = String::new();
        match reader.read_line(&mut buf) {
            Ok(0) | Err(_) => {
                // EOF, reset or read timeout mid-job: the transport died,
                // not the protocol.
                outcome.transport = true;
                return (outcome, false);
            }
            Ok(_) => {}
        }
        let trimmed = buf.trim();
        if trimmed.is_empty() {
            continue;
        }
        let resp = match decode_response(trimmed) {
            Ok(resp) => resp,
            Err(_) => {
                outcome.protocol_errors += 1;
                continue;
            }
        };
        // Connections serve one job at a time, so a line carrying a
        // different id means the request was corrupted in flight (a
        // chaos-proxy torn frame that landed inside the id): the server
        // is processing the mutated incarnation. Its terminal line
        // terminates this submission as failed — not a protocol
        // violation, the server answered what it was (mis)given.
        if resp.id().is_some_and(|id| id != spec.id) {
            if matches!(resp, Response::Done { .. } | Response::Error { .. }) {
                outcome.failed = true;
                return (outcome, true);
            }
            continue;
        }
        match resp {
            Response::Admitted { cells, .. } => expected_cells = Some(cells),
            Response::Cell { outcome: cell, .. } => {
                seen_cells += 1;
                match &cell.result {
                    Ok(_) => outcome.cells_ok += 1,
                    Err(failure) => {
                        outcome.cells_failed += 1;
                        match failure.code {
                            ErrorCode::Cancelled => outcome.cells_cancelled += 1,
                            ErrorCode::CellTimeout => outcome.cells_timed_out += 1,
                            _ => {}
                        }
                    }
                }
            }
            Response::Done { summary, .. } => {
                outcome.done = true;
                outcome.latency_ms = started.elapsed().as_secs_f64() * 1e3;
                outcome.cache_hits += summary.cache_hits;
                outcome.cache_misses += summary.cache_misses;
                outcome.evictions += summary.evictions;
                outcome.deadline_miss = summary.reason == DoneReason::Deadline;
                if expected_cells != Some(seen_cells) || summary.cells != seen_cells {
                    outcome.protocol_errors += 1;
                }
                return (outcome, true);
            }
            Response::Error { code, .. } => {
                match code {
                    ErrorCode::Overloaded => outcome.overloaded = true,
                    _ => outcome.failed = true,
                }
                return (outcome, true);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats_with(lat: &[f64]) -> LoadgenStats {
        LoadgenStats {
            jobs_ok: lat.len(),
            latencies_ms: lat.to_vec(),
            wall_s: 2.0,
            cache_hits: 3,
            cache_misses: 1,
            ..LoadgenStats::default()
        }
    }

    #[test]
    fn quantiles_nearest_rank() {
        let s = stats_with(&[10.0, 20.0, 30.0, 40.0]);
        assert!((s.latency_quantile(0.50) - 20.0).abs() < 1e-12);
        assert!((s.latency_quantile(0.99) - 40.0).abs() < 1e-12);
        assert!((s.latency_quantile(1.0) - 40.0).abs() < 1e-12);
        assert_eq!(LoadgenStats::default().latency_quantile(0.5), 0.0);
    }

    #[test]
    fn derived_rates() {
        let s = stats_with(&[10.0, 20.0]);
        assert!((s.jobs_per_sec() - 1.0).abs() < 1e-12);
        assert!((s.cache_hit_rate() - 0.75).abs() < 1e-12);
        assert_eq!(LoadgenStats::default().cache_hit_rate(), 0.0);
    }

    #[test]
    fn accounting_covers_every_terminal_state() {
        let s = LoadgenStats {
            jobs_ok: 5,
            jobs_overloaded: 2,
            jobs_failed: 1,
            jobs_transport: 3,
            ..LoadgenStats::default()
        };
        assert_eq!(s.jobs_accounted(), 11);
    }

    #[test]
    fn bench_json_is_parseable_and_complete() {
        let cfg = LoadgenConfig::new("127.0.0.1:0", 2, 3, JobSpec::for_mix("t", "MID1"));
        let mut s = stats_with(&[10.0, 20.0]);
        s.retries = 4;
        s.deadline_misses = 1;
        s.jobs_transport = 2;
        s.evictions = 5;
        s.chaos_faults_injected = 7;
        let rendered = s.to_bench_json(&cfg);
        let parsed = crate::json::parse(&rendered).expect("artifact parses");
        assert_eq!(
            parsed.get("benchmark").and_then(Json::as_str),
            Some("serve_loadgen")
        );
        assert_eq!(parsed.get("jobs_ok").and_then(Json::as_u64), Some(2));
        assert_eq!(
            parsed.get("protocol_errors").and_then(Json::as_u64),
            Some(0)
        );
        assert_eq!(parsed.get("retries").and_then(Json::as_u64), Some(4));
        assert_eq!(
            parsed.get("deadline_misses").and_then(Json::as_u64),
            Some(1)
        );
        assert_eq!(parsed.get("jobs_transport").and_then(Json::as_u64), Some(2));
        assert_eq!(parsed.get("evictions").and_then(Json::as_u64), Some(5));
        assert_eq!(
            parsed.get("chaos_faults_injected").and_then(Json::as_u64),
            Some(7)
        );
        assert_eq!(
            parsed.get("cache_hit_rate").and_then(Json::as_f64),
            Some(0.75)
        );
        assert!(parsed.get("p99_ms").is_some());
        assert!(parsed.get("wall_s").is_some());
        assert_eq!(parsed.get("open_loop").and_then(Json::as_bool), Some(false));
        assert_eq!(parsed.get("offered_rps").and_then(Json::as_f64), Some(0.0));
        assert_eq!(parsed.get("achieved_rps").and_then(Json::as_f64), Some(1.0));
        assert_eq!(
            parsed.get("late_submissions").and_then(Json::as_u64),
            Some(0)
        );
    }

    #[test]
    fn open_loop_config_is_reported_in_the_artifact() {
        let mut cfg = LoadgenConfig::new("127.0.0.1:0", 2, 3, JobSpec::for_mix("t", "MID1"));
        cfg.open_loop_rps = 40.0;
        let mut s = stats_with(&[10.0, 20.0]);
        s.late_submissions = 3;
        let parsed = crate::json::parse(&s.to_bench_json(&cfg)).expect("artifact parses");
        assert_eq!(parsed.get("open_loop").and_then(Json::as_bool), Some(true));
        assert_eq!(parsed.get("offered_rps").and_then(Json::as_f64), Some(40.0));
        assert_eq!(
            parsed.get("late_submissions").and_then(Json::as_u64),
            Some(3)
        );
    }

    #[test]
    fn connection_refused_is_a_clear_error() {
        // Port 1 is essentially never listening; the probe must fail with
        // the actionable message, not a raw io error.
        let cfg = LoadgenConfig::new("127.0.0.1:1", 1, 1, JobSpec::for_mix("t", "MID1"));
        let err = run(&cfg).unwrap_err();
        assert!(err.contains("cannot connect"), "{err}");
        assert!(err.contains("is the server running"), "{err}");
    }

    #[test]
    fn reconnect_retries_are_bounded_and_still_fail_clearly() {
        let mut cfg = LoadgenConfig::new("127.0.0.1:1", 1, 1, JobSpec::for_mix("t", "MID1"));
        cfg.reconnect_retries = 2;
        cfg.backoff_base_ms = 1;
        let started = Instant::now();
        let err = run(&cfg).unwrap_err();
        assert!(err.contains("cannot connect"), "{err}");
        // Two retries at 1-2 ms + 2-4 ms of backoff: bounded, not a hang.
        assert!(started.elapsed() < Duration::from_secs(5));
    }
}
