//! Encoding and decoding of protocol lines.
//!
//! One request line (a [`JobSpec`]) flows client → server; a stream of
//! [`Response`] lines flows back. Every line is one compact JSON object
//! terminated by `\n`; every response carries the job `id` it belongs to,
//! so a client can correlate responses even if it pipelines jobs. See
//! DESIGN.md §13 for the schema.

use crate::json::{parse, Json};
use memscale_types::config::MemGeneration;
use memscale_types::serve::{
    CellFailure, CellMetrics, CellOutcome, DoneReason, ErrorCode, JobSpec, JobSummary,
};

/// One server → client protocol line.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// The job passed validation and admission; `cells` results will
    /// follow (in completion order, not submission order).
    Admitted {
        /// Job id this response belongs to.
        id: String,
        /// Number of cell results the client should expect.
        cells: usize,
    },
    /// One evaluated grid cell.
    Cell {
        /// Job id this response belongs to.
        id: String,
        /// The cell's label, cache flag and metrics/failure.
        outcome: CellOutcome,
    },
    /// The job finished; no further lines for this id will follow.
    Done {
        /// Job id this response belongs to.
        id: String,
        /// Aggregate counts, cache statistics and wall clock.
        summary: JobSummary,
    },
    /// The job was rejected or died; no further lines for this id.
    Error {
        /// Job id, when the request parsed far enough to learn it.
        id: Option<String>,
        /// Structured, stable error code.
        code: ErrorCode,
        /// Human-readable detail.
        detail: String,
        /// For [`ErrorCode::Overloaded`]: jobs in service when rejected.
        depth: Option<usize>,
        /// For [`ErrorCode::Overloaded`]: the admission limit.
        limit: Option<usize>,
    },
}

impl Response {
    /// The job id this line belongs to, when known.
    pub fn id(&self) -> Option<&str> {
        match self {
            Response::Admitted { id, .. }
            | Response::Cell { id, .. }
            | Response::Done { id, .. } => Some(id),
            Response::Error { id, .. } => id.as_deref(),
        }
    }
}

fn obj(fields: Vec<(&str, Json)>) -> Json {
    Json::Obj(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

/// Encodes a job request as one compact protocol line (no trailing
/// newline).
pub fn encode_job(job: &JobSpec) -> String {
    let mut fields = vec![
        ("type", Json::Str("job".into())),
        ("id", Json::Str(job.id.clone())),
        ("mix", Json::Str(job.mix.clone())),
    ];
    if let Some(trace) = &job.trace {
        fields.push(("trace", Json::Str(trace.clone())));
    }
    fields.push(("generation", Json::Str(job.generation.to_string())));
    fields.push(("duration_ms", Json::num(job.duration_ms)));
    if let Some(seed) = job.seed {
        fields.push(("seed", Json::num(seed)));
    }
    fields.push(("gamma_pct", Json::num(job.gamma_pct)));
    fields.push(("epoch_ms", Json::num(job.epoch_ms)));
    fields.push(("cores", Json::num(job.cores)));
    fields.push(("channels", Json::num(job.channels)));
    fields.push((
        "policies",
        Json::Arr(job.policies.iter().map(|p| Json::Str(p.clone())).collect()),
    ));
    fields.push(("margin_pct", Json::num(job.margin_pct)));
    if let Some(d) = job.deadline_ms {
        fields.push(("deadline_ms", Json::num(d)));
    }
    if let Some(a) = &job.arrivals {
        fields.push(("arrivals", Json::Str(a.clone())));
    }
    if let Some(s) = job.slo_p99_ms {
        fields.push(("slo_p99_ms", Json::num(s)));
    }
    obj(fields).render()
}

fn field_u64(v: &Json, key: &str) -> Result<Option<u64>, String> {
    match v.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(f) => f
            .as_u64()
            .map(Some)
            .ok_or_else(|| format!("field `{key}` must be an unsigned integer")),
    }
}

fn field_f64(v: &Json, key: &str) -> Result<Option<f64>, String> {
    match v.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(f) => f
            .as_f64()
            .map(Some)
            .ok_or_else(|| format!("field `{key}` must be a number")),
    }
}

fn field_str(v: &Json, key: &str) -> Result<Option<String>, String> {
    match v.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(f) => f
            .as_str()
            .map(str::to_string)
            .map(Some)
            .ok_or_else(|| format!("field `{key}` must be a string")),
    }
}

/// Decodes a request line into a [`JobSpec`], applying the
/// [`JobSpec::for_mix`] defaults for absent optional fields.
///
/// # Errors
///
/// A human-readable description of the first malformed field (the server
/// maps it to [`ErrorCode::BadRequest`]).
pub fn decode_job(line: &str) -> Result<JobSpec, String> {
    let v = parse(line).map_err(|e| e.to_string())?;
    if !matches!(v, Json::Obj(_)) {
        return Err("request must be a JSON object".into());
    }
    match field_str(&v, "type")?.as_deref() {
        Some("job") => {}
        other => {
            return Err(format!(
                "unsupported request type {other:?} (expected \"job\")"
            ))
        }
    }
    let id = field_str(&v, "id")?.ok_or("field `id` is required")?;
    let mix = field_str(&v, "mix")?.ok_or("field `mix` is required")?;
    let mut job = JobSpec::for_mix(id, mix);
    job.trace = field_str(&v, "trace")?;
    if let Some(name) = field_str(&v, "generation")? {
        job.generation = MemGeneration::parse(&name)
            .ok_or_else(|| format!("unknown generation `{name}`; use ddr3|ddr4|lpddr3"))?;
    }
    if let Some(d) = field_u64(&v, "duration_ms")? {
        job.duration_ms = d;
    }
    job.seed = field_u64(&v, "seed")?;
    if let Some(g) = field_f64(&v, "gamma_pct")? {
        job.gamma_pct = g;
    }
    if let Some(e) = field_u64(&v, "epoch_ms")? {
        job.epoch_ms = e;
    }
    if let Some(c) = field_u64(&v, "cores")? {
        job.cores = usize::try_from(c).map_err(|_| "field `cores` out of range")?;
    }
    if let Some(c) = field_u64(&v, "channels")? {
        job.channels = u8::try_from(c).map_err(|_| "field `channels` out of range")?;
    }
    if let Some(m) = field_u64(&v, "margin_pct")? {
        job.margin_pct = usize::try_from(m).map_err(|_| "field `margin_pct` out of range")?;
    }
    job.deadline_ms = field_u64(&v, "deadline_ms")?;
    job.arrivals = field_str(&v, "arrivals")?;
    job.slo_p99_ms = field_f64(&v, "slo_p99_ms")?;
    if let Some(p) = v.get("policies") {
        let items = p.as_arr().ok_or("field `policies` must be an array")?;
        job.policies = items
            .iter()
            .map(|i| {
                i.as_str()
                    .map(str::to_string)
                    .ok_or_else(|| "policies entries must be strings".to_string())
            })
            .collect::<Result<_, _>>()?;
    }
    job.validate_shape()?;
    Ok(job)
}

/// Encodes a response as one compact protocol line (no trailing newline).
pub fn encode_response(resp: &Response) -> String {
    match resp {
        Response::Admitted { id, cells } => obj(vec![
            ("type", Json::Str("admitted".into())),
            ("id", Json::Str(id.clone())),
            ("cells", Json::num(cells)),
        ]),
        Response::Cell { id, outcome } => {
            let mut fields = vec![
                ("type", Json::Str("cell".into())),
                ("id", Json::Str(id.clone())),
                ("label", Json::Str(outcome.label.clone())),
                ("cached", Json::Bool(outcome.cached)),
            ];
            match &outcome.result {
                Ok(m) => {
                    fields.push(("ok", Json::Bool(true)));
                    fields.push(("memory_savings", Json::num(m.memory_savings)));
                    fields.push(("system_savings", Json::num(m.system_savings)));
                    fields.push(("cpi_increase_avg", Json::num(m.cpi_increase_avg)));
                    fields.push(("cpi_increase_max", Json::num(m.cpi_increase_max)));
                    fields.push(("mean_frequency_mhz", Json::num(m.mean_frequency_mhz)));
                    if let Some(p) = m.p99_ms {
                        fields.push(("p99_ms", Json::num(p)));
                    }
                    if let Some(viol) = m.slo_violations {
                        fields.push(("slo_violations", Json::num(viol)));
                    }
                }
                Err(e) => {
                    fields.push(("ok", Json::Bool(false)));
                    fields.push(("code", Json::Str(e.code.as_str().into())));
                    fields.push(("error", Json::Str(e.detail.clone())));
                }
            }
            obj(fields)
        }
        Response::Done { id, summary } => {
            let mut fields = vec![
                ("type", Json::Str("done".into())),
                ("id", Json::Str(id.clone())),
                ("cells", Json::num(summary.cells)),
                ("ok", Json::num(summary.ok)),
                ("failed", Json::num(summary.failed)),
                ("cache_hits", Json::num(summary.cache_hits)),
                ("cache_misses", Json::num(summary.cache_misses)),
                ("evictions", Json::num(summary.evictions)),
                ("wall_ms", Json::num(format!("{:.3}", summary.wall_ms))),
            ];
            if summary.reason != DoneReason::Complete {
                fields.push(("reason", Json::Str(summary.reason.as_str().into())));
            }
            obj(fields)
        }
        Response::Error {
            id,
            code,
            detail,
            depth,
            limit,
        } => {
            let mut fields = vec![("type", Json::Str("error".into()))];
            if let Some(id) = id {
                fields.push(("id", Json::Str(id.clone())));
            }
            fields.push(("code", Json::Str(code.as_str().into())));
            fields.push(("detail", Json::Str(detail.clone())));
            if let Some(d) = depth {
                fields.push(("depth", Json::num(d)));
            }
            if let Some(l) = limit {
                fields.push(("limit", Json::num(l)));
            }
            obj(fields)
        }
    }
    .render()
}

/// Decodes one server response line (the client/loadgen side).
///
/// # Errors
///
/// A human-readable description of the malformed line — the load
/// generator counts these as protocol errors.
pub fn decode_response(line: &str) -> Result<Response, String> {
    let v = parse(line).map_err(|e| e.to_string())?;
    let ty = field_str(&v, "type")?.ok_or("field `type` is required")?;
    match ty.as_str() {
        "admitted" => Ok(Response::Admitted {
            id: field_str(&v, "id")?.ok_or("admitted: field `id` is required")?,
            cells: usize::try_from(
                field_u64(&v, "cells")?.ok_or("admitted: field `cells` is required")?,
            )
            .map_err(|_| "admitted: `cells` out of range")?,
        }),
        "cell" => {
            let id = field_str(&v, "id")?.ok_or("cell: field `id` is required")?;
            let label = field_str(&v, "label")?.ok_or("cell: field `label` is required")?;
            let cached = v
                .get("cached")
                .and_then(Json::as_bool)
                .ok_or("cell: field `cached` is required")?;
            let ok = v
                .get("ok")
                .and_then(Json::as_bool)
                .ok_or("cell: field `ok` is required")?;
            let result = if ok {
                Ok(CellMetrics {
                    memory_savings: field_f64(&v, "memory_savings")?
                        .ok_or("cell: `memory_savings` is required")?,
                    system_savings: field_f64(&v, "system_savings")?
                        .ok_or("cell: `system_savings` is required")?,
                    cpi_increase_avg: field_f64(&v, "cpi_increase_avg")?
                        .ok_or("cell: `cpi_increase_avg` is required")?,
                    cpi_increase_max: field_f64(&v, "cpi_increase_max")?
                        .ok_or("cell: `cpi_increase_max` is required")?,
                    mean_frequency_mhz: field_f64(&v, "mean_frequency_mhz")?
                        .ok_or("cell: `mean_frequency_mhz` is required")?,
                    p99_ms: field_f64(&v, "p99_ms")?,
                    slo_violations: field_u64(&v, "slo_violations")?,
                })
            } else {
                let code_str = field_str(&v, "code")?.ok_or("cell: failed cells carry `code`")?;
                let code = ErrorCode::parse(&code_str)
                    .ok_or_else(|| format!("cell: unknown code `{code_str}`"))?;
                Err(CellFailure::new(
                    code,
                    field_str(&v, "error")?.ok_or("cell: failed cells carry `error`")?,
                ))
            };
            Ok(Response::Cell {
                id,
                outcome: CellOutcome {
                    label,
                    cached,
                    result,
                },
            })
        }
        "done" => Ok(Response::Done {
            id: field_str(&v, "id")?.ok_or("done: field `id` is required")?,
            summary: JobSummary {
                cells: usize::try_from(field_u64(&v, "cells")?.ok_or("done: `cells` required")?)
                    .map_err(|_| "done: `cells` out of range")?,
                ok: usize::try_from(field_u64(&v, "ok")?.ok_or("done: `ok` required")?)
                    .map_err(|_| "done: `ok` out of range")?,
                failed: usize::try_from(field_u64(&v, "failed")?.ok_or("done: `failed` required")?)
                    .map_err(|_| "done: `failed` out of range")?,
                cache_hits: field_u64(&v, "cache_hits")?.ok_or("done: `cache_hits` required")?,
                cache_misses: field_u64(&v, "cache_misses")?
                    .ok_or("done: `cache_misses` required")?,
                // Tolerate pre-eviction-counter servers.
                evictions: field_u64(&v, "evictions")?.unwrap_or(0),
                wall_ms: field_f64(&v, "wall_ms")?.ok_or("done: `wall_ms` required")?,
                reason: match field_str(&v, "reason")? {
                    None => DoneReason::Complete,
                    Some(r) => DoneReason::parse(&r)
                        .ok_or_else(|| format!("done: unknown reason `{r}`"))?,
                },
            },
        }),
        "error" => {
            let code_str = field_str(&v, "code")?.ok_or("error: field `code` is required")?;
            let code = ErrorCode::parse(&code_str)
                .ok_or_else(|| format!("error: unknown code `{code_str}`"))?;
            Ok(Response::Error {
                id: field_str(&v, "id")?,
                code,
                detail: field_str(&v, "detail")?.unwrap_or_default(),
                depth: field_u64(&v, "depth")?
                    .map(|d| usize::try_from(d).map_err(|_| "error: `depth` out of range"))
                    .transpose()?,
                limit: field_u64(&v, "limit")?
                    .map(|l| usize::try_from(l).map_err(|_| "error: `limit` out of range"))
                    .transpose()?,
            })
        }
        other => Err(format!("unknown response type `{other}`")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn job_round_trips_with_all_fields() {
        let mut job = JobSpec::for_mix("j-1", "MEM1");
        job.trace = Some("/tmp/mem1.trace".into());
        job.generation = MemGeneration::Lpddr3;
        job.duration_ms = 6;
        job.seed = Some(u64::MAX);
        job.gamma_pct = 7.5;
        job.epoch_ms = 3;
        job.cores = 8;
        job.channels = 2;
        job.policies = vec!["memscale".into(), "static:400".into()];
        job.margin_pct = 75;
        job.deadline_ms = Some(1_500);
        job.arrivals = Some("diurnal:2x1000,2x3000".into());
        job.slo_p99_ms = Some(5.0);
        let line = encode_job(&job);
        assert_eq!(decode_job(&line).unwrap(), job);
    }

    #[test]
    fn job_defaults_fill_absent_fields() {
        let job = decode_job(r#"{"type":"job","id":"a","mix":"MID1"}"#).unwrap();
        assert_eq!(job, JobSpec::for_mix("a", "MID1"));
    }

    #[test]
    fn job_decode_rejects_malformed_requests() {
        for (line, needle) in [
            ("nonsense", "invalid JSON"),
            ("[1,2]", "object"),
            (r#"{"type":"job","mix":"MID1"}"#, "`id`"),
            (r#"{"type":"job","id":"a"}"#, "`mix`"),
            (r#"{"type":"nope","id":"a","mix":"M"}"#, "type"),
            (
                r#"{"type":"job","id":"a","mix":"M","generation":"ddr9"}"#,
                "generation",
            ),
            (
                r#"{"type":"job","id":"a","mix":"M","duration_ms":-3}"#,
                "duration_ms",
            ),
            (
                r#"{"type":"job","id":"a","mix":"M","policies":"memscale"}"#,
                "array",
            ),
            (
                r#"{"type":"job","id":"a","mix":"M","duration_ms":0}"#,
                "positive",
            ),
            (
                r#"{"type":"job","id":"a","mix":"M","deadline_ms":0}"#,
                "deadline_ms",
            ),
            (
                r#"{"type":"job","id":"a","mix":"M","deadline_ms":-1}"#,
                "deadline_ms",
            ),
        ] {
            let err = decode_job(line).unwrap_err();
            assert!(err.contains(needle), "{line}: {err}");
        }
    }

    #[test]
    fn responses_round_trip() {
        let responses = [
            Response::Admitted {
                id: "j".into(),
                cells: 12,
            },
            Response::Cell {
                id: "j".into(),
                outcome: CellOutcome {
                    label: "memscale".into(),
                    cached: true,
                    result: Ok(CellMetrics {
                        memory_savings: 0.21,
                        system_savings: 0.08,
                        cpi_increase_avg: 0.02,
                        cpi_increase_max: 0.05,
                        mean_frequency_mhz: 512.5,
                        p99_ms: None,
                        slo_violations: None,
                    }),
                },
            },
            Response::Cell {
                id: "j".into(),
                outcome: CellOutcome {
                    label: "memscale".into(),
                    cached: false,
                    result: Ok(CellMetrics {
                        memory_savings: 0.18,
                        system_savings: 0.06,
                        cpi_increase_avg: 0.03,
                        cpi_increase_max: 0.07,
                        mean_frequency_mhz: 400.0,
                        p99_ms: Some(3.75),
                        slo_violations: Some(2),
                    }),
                },
            },
            Response::Cell {
                id: "j".into(),
                outcome: CellOutcome {
                    label: "static:200".into(),
                    cached: false,
                    result: Err(CellFailure::sim("replay trace for app 3 exhausted")),
                },
            },
            Response::Cell {
                id: "j".into(),
                outcome: CellOutcome {
                    label: "memscale".into(),
                    cached: false,
                    result: Err(CellFailure::new(
                        ErrorCode::CellTimeout,
                        "exceeded the 50 ms cell watchdog",
                    )),
                },
            },
            Response::Done {
                id: "j".into(),
                summary: JobSummary {
                    cells: 12,
                    ok: 11,
                    failed: 1,
                    cache_hits: 5,
                    cache_misses: 8,
                    evictions: 2,
                    wall_ms: 103.25,
                    reason: DoneReason::Complete,
                },
            },
            Response::Done {
                id: "j".into(),
                summary: JobSummary {
                    cells: 3,
                    ok: 1,
                    failed: 2,
                    cache_hits: 0,
                    cache_misses: 3,
                    evictions: 0,
                    wall_ms: 55.0,
                    reason: DoneReason::Deadline,
                },
            },
            Response::Done {
                id: "j".into(),
                summary: JobSummary {
                    cells: 1,
                    ok: 1,
                    failed: 0,
                    cache_hits: 1,
                    cache_misses: 0,
                    evictions: 0,
                    wall_ms: 2.5,
                    reason: DoneReason::Draining,
                },
            },
            Response::Error {
                id: Some("j".into()),
                code: ErrorCode::Overloaded,
                detail: "queue full".into(),
                depth: Some(4),
                limit: Some(4),
            },
            Response::Error {
                id: None,
                code: ErrorCode::BadRequest,
                detail: "invalid JSON at byte 0".into(),
                depth: None,
                limit: None,
            },
        ];
        for resp in responses {
            let line = encode_response(&resp);
            assert_eq!(decode_response(&line).unwrap(), resp, "{line}");
        }
    }

    #[test]
    fn overloaded_line_is_structured() {
        let line = encode_response(&Response::Error {
            id: Some("j9".into()),
            code: ErrorCode::Overloaded,
            detail: "admission queue full".into(),
            depth: Some(8),
            limit: Some(8),
        });
        assert!(line.contains("\"code\":\"overloaded\""));
        assert!(line.contains("\"depth\":8") && line.contains("\"limit\":8"));
    }

    #[test]
    fn cell_without_service_fields_decodes_as_none() {
        // Lines from a pre-service-workload server stay decodable.
        let line = r#"{"type":"cell","id":"j","label":"memscale","cached":false,"ok":true,"memory_savings":0.2,"system_savings":0.07,"cpi_increase_avg":0.01,"cpi_increase_max":0.03,"mean_frequency_mhz":500}"#;
        let Response::Cell { outcome, .. } = decode_response(line).expect("decodes") else {
            panic!("not a cell line");
        };
        let metrics = outcome.result.expect("ok cell");
        assert_eq!(metrics.p99_ms, None);
        assert_eq!(metrics.slo_violations, None);
    }

    #[test]
    fn done_without_evictions_field_decodes_as_zero() {
        // Lines from a pre-eviction-counter server stay decodable.
        let line = r#"{"type":"done","id":"j","cells":2,"ok":2,"failed":0,"cache_hits":1,"cache_misses":1,"wall_ms":4.0}"#;
        let Response::Done { summary, .. } = decode_response(line).expect("decodes") else {
            panic!("not a done line");
        };
        assert_eq!(summary.evictions, 0);
    }

    /// Wire-level fuzzing: arbitrary corruption of valid frames — the
    /// torn-frame and truncation faults the chaos proxy injects — must
    /// come back as structured decode errors (or, rarely, a differently
    /// valid frame), never a panic or a hang.
    mod fuzz {
        use super::*;
        use crate::chaos::ChaosRng;
        use proptest::prelude::*;

        /// Valid frames of every shape the protocol can produce.
        fn sample_frames() -> Vec<String> {
            let mut job = JobSpec::for_mix("fuzz-1", "MID1");
            job.trace = Some("/tmp/m.trace".into());
            job.seed = Some(42);
            job.policies = vec!["memscale".into(), "static:400".into()];
            job.deadline_ms = Some(250);
            job.arrivals = Some("poisson:1500".into());
            job.slo_p99_ms = Some(5.0);
            vec![
                encode_job(&job),
                encode_response(&Response::Admitted {
                    id: "fuzz-1".into(),
                    cells: 4,
                }),
                encode_response(&Response::Cell {
                    id: "fuzz-1".into(),
                    outcome: CellOutcome {
                        label: "memscale".into(),
                        cached: false,
                        result: Err(CellFailure::new(ErrorCode::CellTimeout, "watchdog")),
                    },
                }),
                encode_response(&Response::Done {
                    id: "fuzz-1".into(),
                    summary: JobSummary {
                        cells: 4,
                        ok: 3,
                        failed: 1,
                        cache_hits: 2,
                        cache_misses: 2,
                        evictions: 1,
                        wall_ms: 9.5,
                        reason: DoneReason::Deadline,
                    },
                }),
                encode_response(&Response::Error {
                    id: None,
                    code: ErrorCode::BadRequest,
                    detail: "invalid JSON".into(),
                    depth: None,
                    limit: None,
                }),
            ]
        }

        /// Flips `flips` bytes of `frame` to seeded arbitrary values,
        /// then repairs the result into a `str` the reader could have
        /// produced (`read_line` only ever yields valid UTF-8).
        fn mutate(frame: &str, seed: u64, flips: usize) -> String {
            let mut bytes = frame.as_bytes().to_vec();
            let mut rng = ChaosRng::new(seed);
            for _ in 0..flips {
                if bytes.is_empty() {
                    break;
                }
                let idx = rng.below(bytes.len());
                bytes[idx] = u8::try_from(rng.next_u64() & 0xff).unwrap_or(b'?');
            }
            String::from_utf8_lossy(&bytes).into_owned()
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(192))]

            #[test]
            fn corrupted_frames_decode_or_error_but_never_panic(
                seed in any::<u64>(),
                frame_idx in 0usize..5,
                flips in 1usize..8,
            ) {
                let frame = &sample_frames()[frame_idx];
                let mutated = mutate(frame, seed, flips);
                // Outcome (Ok or Err) is irrelevant; surviving the call
                // without panicking is the property.
                let _ = decode_job(&mutated);
                let _ = decode_response(&mutated);
            }

            #[test]
            fn random_garbage_never_decodes_as_panic(seed in any::<u64>(), len in 0usize..200) {
                let mut rng = ChaosRng::new(seed);
                let bytes: Vec<u8> =
                    (0..len).map(|_| u8::try_from(rng.next_u64() & 0xff).unwrap_or(0)).collect();
                let garbage = String::from_utf8_lossy(&bytes).into_owned();
                let _ = decode_job(&garbage);
                let _ = decode_response(&garbage);
            }
        }

        #[test]
        fn every_truncation_point_is_a_structured_error() {
            for frame in sample_frames() {
                for cut in 0..frame.len() {
                    if !frame.is_char_boundary(cut) {
                        continue;
                    }
                    let prefix = &frame[..cut];
                    assert!(
                        decode_job(prefix).is_err(),
                        "job decode accepted truncated frame: {prefix}"
                    );
                    assert!(
                        decode_response(prefix).is_err(),
                        "response decode accepted truncated frame: {prefix}"
                    );
                }
            }
        }
    }
}
