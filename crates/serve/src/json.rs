//! A minimal JSON value model, parser and renderer.
//!
//! The build container is offline, so the serve protocol cannot lean on
//! `serde`; this module implements the subset of JSON the wire format needs
//! with two properties the server relies on:
//!
//! * **no panics on arbitrary input** — every malformed byte sequence
//!   becomes a [`JsonError`] naming the offset;
//! * **integer exactness** — numbers keep their source lexeme
//!   ([`Json::Num`] stores the text), so a `u64` seed survives a round trip
//!   that an `f64`-only model would silently round.

use std::fmt;

/// A parsed JSON value. Objects preserve key order (the wire format is
/// diffable in tests); duplicate keys are rejected at parse time.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, kept as its source lexeme for integer exactness.
    Num(String),
    /// A string (already unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in key order.
    Obj(Vec<(String, Json)>),
}

/// A structured parse failure: what was expected, at which byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// What the parser expected.
    pub expected: String,
    /// Byte offset in the input where the failure was detected.
    pub at: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid JSON at byte {}: expected {}",
            self.at, self.expected
        )
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Builds a number value from anything rust can format as a number.
    pub fn num(n: impl fmt::Display) -> Json {
        Json::Num(n.to_string())
    }

    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// This number as `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(s) => s.parse().ok(),
            _ => None,
        }
    }

    /// This number as `u64` (exact — parses the lexeme, no float round
    /// trip).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(s) => s.parse().ok(),
            _ => None,
        }
    }

    /// The array items, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Renders the value as compact single-line JSON.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(s) => out.push_str(s),
            Json::Str(s) => render_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    render_string(k, out);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses one complete JSON value from `input`; trailing non-whitespace is
/// an error (one value per protocol line).
///
/// # Errors
///
/// A [`JsonError`] naming the expected token and the byte offset; arbitrary
/// input can never panic the parser.
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
        depth: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("end of input"));
    }
    Ok(value)
}

const MAX_DEPTH: usize = 32;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl Parser<'_> {
    fn err(&self, expected: &str) -> JsonError {
        JsonError {
            expected: expected.to_string(),
            at: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8, what: &str) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(what))
        }
    }

    fn eat_keyword(&mut self, kw: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(value)
        } else {
            Err(self.err(kw))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        if self.depth >= MAX_DEPTH {
            return Err(self.err("shallower nesting"));
        }
        match self.peek() {
            Some(b'n') => self.eat_keyword("null", Json::Null),
            Some(b't') => self.eat_keyword("true", Json::Bool(true)),
            Some(b'f') => self.eat_keyword("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.eat(b'[', "[")?;
        self.depth += 1;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("`,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.eat(b'{', "{")?;
        self.depth += 1;
        let mut fields: Vec<(String, Json)> = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key_at = self.pos;
            let key = self.string()?;
            if fields.iter().any(|(k, _)| *k == key) {
                return Err(JsonError {
                    expected: format!("unique key (duplicate `{key}`)"),
                    at: key_at,
                });
            }
            self.skip_ws();
            self.eat(b':', ":")?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("`,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"', "\"")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("closing `\"`")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let c = self.unicode_escape()?;
                            out.push(c);
                            continue;
                        }
                        _ => return Err(self.err("a valid escape")),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x20 => return Err(self.err("no raw control characters")),
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // byte stream is valid UTF-8 by construction).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("valid UTF-8"))?;
                    let c = s.chars().next().ok_or_else(|| self.err("a character"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn unicode_escape(&mut self) -> Result<char, JsonError> {
        let hi = self.hex4()?;
        // Surrogate pair handling: a high surrogate must be followed by
        // `\u` and a low surrogate.
        if (0xD800..=0xDBFF).contains(&hi) {
            self.eat(b'\\', "\\ of a surrogate pair")?;
            self.eat(b'u', "u of a surrogate pair")?;
            let lo = self.hex4()?;
            if !(0xDC00..=0xDFFF).contains(&lo) {
                return Err(self.err("a low surrogate"));
            }
            let c = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
            char::from_u32(c).ok_or_else(|| self.err("a valid code point"))
        } else {
            char::from_u32(hi).ok_or_else(|| self.err("a valid code point"))
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v: u32 = 0;
        for _ in 0..4 {
            let d = match self.peek() {
                Some(b @ b'0'..=b'9') => u32::from(b - b'0'),
                Some(b @ b'a'..=b'f') => u32::from(b - b'a') + 10,
                Some(b @ b'A'..=b'F') => u32::from(b - b'A') + 10,
                _ => return Err(self.err("4 hex digits")),
            };
            v = (v << 4) | d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digits_start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.pos == digits_start {
            return Err(self.err("digits"));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            let frac_start = self.pos;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
            if self.pos == frac_start {
                return Err(self.err("fraction digits"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            let exp_start = self.pos;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
            if self.pos == exp_start {
                return Err(self.err("exponent digits"));
            }
        }
        let lexeme =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number lexemes are ASCII");
        // Guard against lexemes no reader could accept (overflow parses to
        // infinity in rust, which JSON cannot represent).
        if !lexeme.parse::<f64>().is_ok_and(f64::is_finite) {
            return Err(JsonError {
                expected: "a representable number".into(),
                at: start,
            });
        }
        Ok(Json::Num(lexeme.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(parse("false").unwrap(), Json::Bool(false));
        assert_eq!(parse("42").unwrap().as_u64(), Some(42));
        assert_eq!(parse("-1.5e3").unwrap().as_f64(), Some(-1500.0));
        assert_eq!(parse("\"hi\"").unwrap().as_str(), Some("hi"));
    }

    #[test]
    fn u64_seeds_survive_exactly() {
        let max = u64::MAX.to_string();
        let v = parse(&max).unwrap();
        assert_eq!(v.as_u64(), Some(u64::MAX));
        assert_eq!(v.render(), max);
    }

    #[test]
    fn objects_and_arrays_round_trip() {
        let src = r#"{"a":[1,2,3],"b":{"c":"x","d":null},"e":true}"#;
        let v = parse(src).unwrap();
        assert_eq!(v.render(), src);
        assert_eq!(
            v.get("b").and_then(|b| b.get("c")).and_then(Json::as_str),
            Some("x")
        );
        assert_eq!(
            v.get("a").and_then(Json::as_arr).map(<[Json]>::len),
            Some(3)
        );
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn string_escapes_round_trip() {
        let v = Json::Str("line\nquote\"back\\tab\tnul\u{1}".into());
        let rendered = v.render();
        assert_eq!(parse(&rendered).unwrap(), v);
        assert_eq!(
            parse(r#""\u0041\u00e9\ud83d\ude00""#).unwrap().as_str(),
            Some("Aé😀")
        );
    }

    #[test]
    fn malformed_inputs_error_and_never_panic() {
        for bad in [
            "",
            "{",
            "[",
            "\"",
            "{\"a\"}",
            "{\"a\":}",
            "[1,]",
            "tru",
            "01x",
            "-",
            "1e",
            "\"\\q\"",
            "\"\\u12\"",
            "\"\\ud800x\"",
            "{\"a\":1,\"a\":2}",
            "1 2",
            "\u{7}",
            "1e99999",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert!(parse(&deep).is_err(), "depth limit must trip");
    }

    #[test]
    fn error_reports_offset() {
        let e = parse("{\"a\": nope}").unwrap_err();
        assert_eq!(e.at, 6);
        assert!(e.to_string().contains("byte 6"));
    }
}
