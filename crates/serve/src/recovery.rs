//! Process-level crash/recovery harness: `kill -9` the real server
//! mid-job, restart it against the same state directory, and check the
//! recovery invariants.
//!
//! The in-process chaos machinery ([`crate::chaos`]) can tear frames and
//! drop connections, but it cannot prove crash consistency — for that
//! the actual server process must die without any destructor running.
//! This harness spawns the server binary three times:
//!
//! 1. **control** — an uninterrupted run against a scratch state dir,
//!    recording every cell's metrics bit-exactly;
//! 2. **crash** — the same job against a second state dir, `SIGKILL`ed at
//!    a seeded point mid-stream (after a seeded number of cell lines),
//!    optionally followed by tearing bytes off the journal tail to
//!    simulate a torn final frame;
//! 3. **restart** — the server relaunched on the crash state dir; the
//!    job is resubmitted and the harness asserts:
//!    * zero protocol violations and no duplicate cell labels,
//!    * at least one warm cache hit (the journaled cells),
//!    * results byte-identical (`f64::to_bits`) to the control run.
//!
//! The outcome feeds `BENCH_recovery.json` via
//! [`RecoveryOutcome::to_bench_json`].

use crate::chaos::ChaosRng;
use crate::json::Json;
use crate::wire::{decode_response, encode_job, Response};
use memscale_types::serve::{CellMetrics, JobSpec, JobSummary};
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

/// Scenario knobs for one recovery run.
#[derive(Debug, Clone)]
pub struct RecoveryConfig {
    /// The server binary to spawn (e.g. `memscale-sim`).
    pub server_bin: PathBuf,
    /// Arguments placed before the harness-owned `--addr`/`--state-dir`
    /// pair (subcommand and tuning flags, e.g. `["serve", "--threads",
    /// "2"]`).
    pub server_args: Vec<String>,
    /// Scratch directory; the harness uses `control/` and `crash/`
    /// subdirectories beneath it.
    pub state_dir: PathBuf,
    /// The job to run, crash, and resubmit. Must resolve to at least
    /// three cells so the kill can land mid-job.
    pub template: JobSpec,
    /// Seeds the kill point and the torn-tail size.
    pub seed: u64,
    /// How long to keep polling for the spawned server to accept, ms.
    pub connect_timeout_ms: u64,
    /// Per-read socket timeout, ms.
    pub read_timeout_ms: u64,
}

impl RecoveryConfig {
    /// Defaults for `server_bin` serving under `state_dir`.
    pub fn new(server_bin: PathBuf, state_dir: PathBuf, template: JobSpec) -> Self {
        RecoveryConfig {
            server_bin,
            server_args: vec!["serve".into()],
            state_dir,
            template,
            seed: 42,
            connect_timeout_ms: 30_000,
            read_timeout_ms: 60_000,
        }
    }
}

/// What the scenario measured and proved.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryOutcome {
    /// Cells in the job's plan.
    pub cells: usize,
    /// Fresh cell lines observed before the SIGKILL landed.
    pub cells_before_kill: usize,
    /// Bytes torn off the journal tail after the kill.
    pub torn_tail_bytes: u64,
    /// True when the kill interrupted the job (no `done` line was seen).
    pub interrupted_job: bool,
    /// Wall-clock from restart spawn until the server accepted a
    /// connection again (includes journal replay and baseline decoding).
    pub recovery_wall_ms: f64,
    /// Wall-clock of the post-restart resubmission.
    pub resubmit_wall_ms: f64,
    /// Cache hits the resubmitted job reported.
    pub warm_hits: u64,
    /// Cache misses the resubmitted job reported.
    pub warm_misses: u64,
    /// Resubmitted results match the control run bit-for-bit.
    pub byte_identical: bool,
    /// Undecodable or protocol-violating lines across control and
    /// resubmit streams (the crashed stream is exempt — its tail died
    /// with the server).
    pub protocol_errors: usize,
}

impl RecoveryOutcome {
    /// Post-restart warm hit rate (0 when the job saw no lookups).
    pub fn warm_hit_rate(&self) -> f64 {
        let total = self.warm_hits + self.warm_misses;
        if total == 0 {
            0.0
        } else {
            self.warm_hits as f64 / total as f64
        }
    }

    /// The `BENCH_recovery.json` artifact (stable field order).
    pub fn to_bench_json(&self, seed: u64) -> String {
        Json::Obj(vec![
            ("benchmark".into(), Json::Str("serve_recovery".into())),
            ("seed".into(), Json::num(seed.to_string())),
            ("cells".into(), Json::num(self.cells.to_string())),
            (
                "cells_before_kill".into(),
                Json::num(self.cells_before_kill.to_string()),
            ),
            (
                "torn_tail_bytes".into(),
                Json::num(self.torn_tail_bytes.to_string()),
            ),
            ("interrupted_job".into(), Json::Bool(self.interrupted_job)),
            (
                "recovery_wall_ms".into(),
                Json::num(format!("{:.3}", self.recovery_wall_ms)),
            ),
            (
                "resubmit_wall_ms".into(),
                Json::num(format!("{:.3}", self.resubmit_wall_ms)),
            ),
            ("warm_hits".into(), Json::num(self.warm_hits.to_string())),
            (
                "warm_misses".into(),
                Json::num(self.warm_misses.to_string()),
            ),
            (
                "warm_hit_rate".into(),
                Json::num(format!("{:.4}", self.warm_hit_rate())),
            ),
            ("byte_identical".into(), Json::Bool(self.byte_identical)),
            (
                "protocol_errors".into(),
                Json::num(self.protocol_errors.to_string()),
            ),
        ])
        .render()
    }
}

/// A spawned server child, `SIGKILL`ed (and reaped) on drop so a failing
/// harness never leaks processes.
struct ServerProc {
    child: Child,
}

impl ServerProc {
    fn spawn(cfg: &RecoveryConfig, addr: &str, state_dir: &Path) -> Result<Self, String> {
        let child = Command::new(&cfg.server_bin)
            .args(&cfg.server_args)
            .arg("--addr")
            .arg(addr)
            .arg("--state-dir")
            .arg(state_dir)
            .stdin(Stdio::null())
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .spawn()
            .map_err(|e| format!("cannot spawn {}: {e}", cfg.server_bin.display()))?;
        Ok(ServerProc { child })
    }

    /// The process-level fault: SIGKILL — no destructors, no flushes.
    fn kill9(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

impl Drop for ServerProc {
    fn drop(&mut self) {
        self.kill9();
    }
}

/// Picks a free loopback port by binding port 0 and dropping the socket.
fn free_addr() -> Result<String, String> {
    let listener = std::net::TcpListener::bind("127.0.0.1:0")
        .map_err(|e| format!("cannot probe for a free port: {e}"))?;
    let addr = listener
        .local_addr()
        .map_err(|e| format!("cannot read probe address: {e}"))?;
    Ok(addr.to_string())
}

/// Polls `addr` until the server accepts or `timeout_ms` elapses.
fn connect_poll(addr: &str, timeout_ms: u64) -> Result<TcpStream, String> {
    let deadline = Instant::now() + Duration::from_millis(timeout_ms.max(1));
    loop {
        match TcpStream::connect(addr) {
            Ok(stream) => return Ok(stream),
            Err(e) => {
                if Instant::now() >= deadline {
                    return Err(format!("server at {addr} never accepted: {e}"));
                }
                std::thread::sleep(Duration::from_millis(25));
            }
        }
    }
}

/// One observed job stream.
#[derive(Debug, Default)]
struct JobObservation {
    /// label → (served from cache, bit-images of the five metrics).
    cells: HashMap<String, (bool, Option<[u64; 5]>)>,
    summary: Option<JobSummary>,
    protocol_errors: usize,
    duplicate_labels: usize,
    wall_ms: f64,
}

fn metric_bits(m: &CellMetrics) -> [u64; 5] {
    [
        m.memory_savings.to_bits(),
        m.system_savings.to_bits(),
        m.cpi_increase_avg.to_bits(),
        m.cpi_increase_max.to_bits(),
        m.mean_frequency_mhz.to_bits(),
    ]
}

/// Submits `job` to `addr` and reads its stream. With
/// `stop_after_cells = Some(k)` the read loop returns as soon as `k`
/// fresh (non-cached) cell lines have arrived — the caller then kills
/// the server mid-job. Reads that die after the kill are expected and
/// not counted as protocol errors by the caller.
fn run_job_against(
    cfg: &RecoveryConfig,
    addr: &str,
    job: &JobSpec,
    stop_after_cells: Option<usize>,
) -> Result<JobObservation, String> {
    let started = Instant::now();
    let stream = connect_poll(addr, cfg.connect_timeout_ms)?;
    stream
        .set_read_timeout(Some(Duration::from_millis(cfg.read_timeout_ms.max(1))))
        .map_err(|e| format!("cannot set read timeout: {e}"))?;
    let mut writer = stream
        .try_clone()
        .map_err(|e| format!("cannot clone socket: {e}"))?;
    let mut line = encode_job(job);
    line.push('\n');
    writer
        .write_all(line.as_bytes())
        .map_err(|e| format!("cannot submit job: {e}"))?;

    let mut obs = JobObservation::default();
    let mut fresh_cells = 0usize;
    let mut reader = BufReader::new(stream);
    let mut buf = String::new();
    loop {
        buf.clear();
        match reader.read_line(&mut buf) {
            Ok(0) => break,
            Err(_) => break,
            Ok(_) => {}
        }
        let trimmed = buf.trim();
        if trimmed.is_empty() {
            continue;
        }
        match decode_response(trimmed) {
            Err(_) => obs.protocol_errors += 1,
            Ok(Response::Admitted { .. }) => {}
            Ok(Response::Cell { outcome, .. }) => {
                let bits = outcome.result.as_ref().ok().map(metric_bits);
                if obs
                    .cells
                    .insert(outcome.label.clone(), (outcome.cached, bits))
                    .is_some()
                {
                    obs.duplicate_labels += 1;
                }
                if !outcome.cached {
                    fresh_cells += 1;
                    if stop_after_cells.is_some_and(|k| fresh_cells >= k) {
                        obs.wall_ms = started.elapsed().as_secs_f64() * 1e3;
                        return Ok(obs);
                    }
                }
            }
            Ok(Response::Done { summary, .. }) => {
                obs.summary = Some(summary);
                break;
            }
            Ok(Response::Error { code, detail, .. }) => {
                return Err(format!("server rejected the job: {code}: {detail}"));
            }
        }
    }
    obs.wall_ms = started.elapsed().as_secs_f64() * 1e3;
    Ok(obs)
}

/// Tears `tear` bytes off the end of `path` (never into the 16-byte
/// header), simulating a frame torn mid-write by the crash. Returns the
/// bytes actually removed.
fn tear_tail(path: &Path, tear: u64) -> Result<u64, String> {
    let len = std::fs::metadata(path)
        .map_err(|e| format!("cannot stat {}: {e}", path.display()))?
        .len();
    let keep_at_least = 16u64; // the store header
    if len <= keep_at_least {
        return Ok(0);
    }
    let removable = (len - keep_at_least).min(tear);
    let file = std::fs::OpenOptions::new()
        .write(true)
        .open(path)
        .map_err(|e| format!("cannot open {}: {e}", path.display()))?;
    file.set_len(len - removable)
        .map_err(|e| format!("cannot truncate {}: {e}", path.display()))?;
    Ok(removable)
}

/// Runs the full crash/recovery scenario.
///
/// # Errors
///
/// Environmental failures (cannot spawn, connect, or submit) and every
/// violated recovery invariant, as a human-readable description.
#[allow(clippy::too_many_lines)]
pub fn run(cfg: &RecoveryConfig) -> Result<RecoveryOutcome, String> {
    let cells = cfg.template.policies.len();
    if cells < 3 {
        return Err(format!(
            "recovery scenario needs at least 3 explicit policies so the kill lands mid-job (got {cells})"
        ));
    }
    let control_dir = cfg.state_dir.join("control");
    let crash_dir = cfg.state_dir.join("crash");
    for dir in [&control_dir, &crash_dir] {
        std::fs::create_dir_all(dir)
            .map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
    }
    let mut rng = ChaosRng::new(cfg.seed);
    // Kill after at least two fresh cells so one warm cell survives even
    // if the torn tail eats the final journal frame.
    let kill_after = 2 + rng.below(cells - 2);
    let tear = 1 + rng.below(12) as u64;

    // Phase 1: control run — the uninterrupted ground truth.
    let control = {
        let addr = free_addr()?;
        let mut server = ServerProc::spawn(cfg, &addr, &control_dir)?;
        let mut job = cfg.template.clone();
        job.id = format!("{}-control", cfg.template.id);
        let obs = run_job_against(cfg, &addr, &job, None)?;
        server.kill9();
        obs
    };
    let control_summary = control
        .summary
        .clone()
        .ok_or("control run ended without a done line")?;
    if control_summary.failed > 0 || control.cells.len() != cells {
        return Err(format!(
            "control run is not clean ({} cells seen, {} failed) — fix the template before crash-testing",
            control.cells.len(),
            control_summary.failed
        ));
    }

    // Phase 2: crash run — SIGKILL mid-job at the seeded point.
    let cells_before_kill = {
        let addr = free_addr()?;
        let mut server = ServerProc::spawn(cfg, &addr, &crash_dir)?;
        let mut job = cfg.template.clone();
        job.id = format!("{}-crash", cfg.template.id);
        let obs = run_job_against(cfg, &addr, &job, Some(kill_after))?;
        server.kill9();
        obs.cells.len()
    };

    // Phase 3: tear the journal tail, as a crash mid-append would.
    let torn_tail_bytes = tear_tail(&crash_dir.join("journal.log"), tear)?;

    // Phase 4: restart on the crashed state dir and resubmit.
    let addr = free_addr()?;
    let restart_started = Instant::now();
    let mut server = ServerProc::spawn(cfg, &addr, &crash_dir)?;
    let probe = connect_poll(&addr, cfg.connect_timeout_ms)?;
    let recovery_wall_ms = restart_started.elapsed().as_secs_f64() * 1e3;
    drop(probe);
    let mut job = cfg.template.clone();
    job.id = format!("{}-resubmit", cfg.template.id);
    let resubmit = run_job_against(cfg, &addr, &job, None)?;
    server.kill9();

    // Invariants.
    let summary = resubmit
        .summary
        .clone()
        .ok_or("resubmitted job ended without a done line")?;
    let mut violations = Vec::new();
    let protocol_errors = control.protocol_errors
        + control.duplicate_labels
        + resubmit.protocol_errors
        + resubmit.duplicate_labels;
    if protocol_errors > 0 {
        violations.push(format!("{protocol_errors} protocol violations"));
    }
    if resubmit.cells.len() != cells || summary.failed > 0 {
        violations.push(format!(
            "resubmitted job incomplete: {} of {cells} cells, {} failed",
            resubmit.cells.len(),
            summary.failed
        ));
    }
    if summary.cache_hits == 0 {
        violations.push("resubmitted job saw no warm cache hits".into());
    }
    let mut byte_identical = true;
    for (label, (_, control_bits)) in &control.cells {
        let resubmit_bits = resubmit.cells.get(label).map(|(_, b)| *b);
        if resubmit_bits != Some(*control_bits) {
            byte_identical = false;
            violations.push(format!("cell {label} differs from the control run"));
        }
    }
    if !violations.is_empty() {
        return Err(format!(
            "recovery invariants violated: {}",
            violations.join("; ")
        ));
    }
    Ok(RecoveryOutcome {
        cells,
        cells_before_kill,
        torn_tail_bytes,
        interrupted_job: true,
        recovery_wall_ms,
        resubmit_wall_ms: resubmit.wall_ms,
        warm_hits: summary.cache_hits,
        warm_misses: summary.cache_misses,
        byte_identical,
        protocol_errors,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_json_has_stable_fields() {
        let outcome = RecoveryOutcome {
            cells: 4,
            cells_before_kill: 2,
            torn_tail_bytes: 7,
            interrupted_job: true,
            recovery_wall_ms: 123.456,
            resubmit_wall_ms: 45.0,
            warm_hits: 3,
            warm_misses: 2,
            byte_identical: true,
            protocol_errors: 0,
        };
        let json = outcome.to_bench_json(42);
        assert!(
            json.starts_with(r#"{"benchmark":"serve_recovery""#),
            "{json}"
        );
        for field in [
            "\"seed\":42",
            "\"cells\":4",
            "\"cells_before_kill\":2",
            "\"torn_tail_bytes\":7",
            "\"interrupted_job\":true",
            "\"recovery_wall_ms\":123.456",
            "\"warm_hits\":3",
            "\"warm_misses\":2",
            "\"warm_hit_rate\":0.6000",
            "\"byte_identical\":true",
            "\"protocol_errors\":0",
        ] {
            assert!(json.contains(field), "missing {field} in {json}");
        }
        assert!((outcome.warm_hit_rate() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn too_small_grids_are_rejected_up_front() {
        let mut template = JobSpec::for_mix("r", "MID1");
        template.policies = vec!["memscale".into()];
        let cfg = RecoveryConfig::new(
            PathBuf::from("/nonexistent"),
            PathBuf::from("/tmp"),
            template,
        );
        let err = run(&cfg).unwrap_err();
        assert!(err.contains("at least 3"), "{err}");
    }

    #[test]
    fn tearing_never_cuts_into_the_header() {
        let dir = std::env::temp_dir().join(format!("memscale_tear_{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("journal.log");
        std::fs::write(&path, vec![0u8; 20]).expect("write");
        assert_eq!(tear_tail(&path, 100).expect("tear"), 4);
        assert_eq!(std::fs::metadata(&path).expect("stat").len(), 16);
        assert_eq!(tear_tail(&path, 5).expect("tear"), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
