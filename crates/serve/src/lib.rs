//! memscale-serve: sweep-as-a-service for the `MemScale` simulator.
//!
//! This crate turns one-shot sweep runs into a long-running batch server:
//! clients submit sweep jobs (a workload mix or pre-recorded trace, a
//! memory generation, and a policy grid) as line-delimited JSON over TCP
//! and receive a streamed response — one admission line, one line per
//! completed cell, one summary line. Three serving-layer concerns live
//! here, deliberately separated from the simulator itself:
//!
//! * **Caching** ([`cache`]): results and calibration baselines are kept
//!   in an LRU keyed by `(SimConfig::fingerprint, trace CRC, policy)`, so
//!   a resubmitted grid answers from memory and a moved knob re-simulates
//!   only the moved cells.
//! * **Admission control** ([`server`]): at most `queue_depth` jobs are in
//!   service at once; excess jobs get a structured `overloaded` error with
//!   the observed depth and limit rather than an unbounded queue or a
//!   timeout.
//! * **Load generation** ([`loadgen`]): a closed-loop client fleet that
//!   measures jobs/sec, p50/p99 job latency, and cache hit rate, writing
//!   the `BENCH_serve.json` artifact consumed by CI.
//!
//! * **Fault injection** ([`chaos`]): a seeded TCP proxy that tears
//!   frames, drops requests, stalls reads, and kills connections on the
//!   client→server path, used by the chaos harness to prove the server
//!   degrades into structured errors rather than hangs or leaks.
//! * **Durability** ([`persist`]): with `--state-dir`, job lifecycle and
//!   completed cells go through a write-ahead journal and calibration
//!   bundles to an on-disk baseline log (both `memscale-store` record
//!   logs), so a crashed server restarts with warm caches and resumable
//!   jobs.
//! * **Crash recovery harness** ([`recovery`]): spawns the real server
//!   binary, SIGKILLs it mid-job at a seeded point, restarts it against
//!   the same state directory, and asserts the recovery invariants
//!   (warm hits, byte-identical results, a cleanly truncated journal).
//!
//! The crate depends only on `memscale-types` and the worker pool; the
//! simulation work is injected through [`server::SweepBackend`], which
//! `memscale-simulator` implements. The wire protocol is specified in
//! `DESIGN.md` §13; deadlines, cancellation, drain, and the chaos
//! harness in §14.

#![forbid(unsafe_code)]

pub mod cache;
pub mod chaos;
pub mod json;
pub mod loadgen;
pub mod persist;
pub mod recovery;
pub mod server;
pub mod wire;

pub use cache::{CacheKey, LruCache};
pub use chaos::{open_flood, ChaosConfig, ChaosHandle, ChaosProxy, ChaosReport, ChaosRng};
pub use loadgen::{LoadgenConfig, LoadgenStats};
pub use persist::{DurableState, JournalRecord, RecoveryReport};
pub use recovery::{RecoveryConfig, RecoveryOutcome};
pub use server::{JobPlan, ServerConfig, ServerStats, SweepBackend, SweepServer};
pub use wire::Response;
