//! Durable sweep state: the write-ahead job journal and the on-disk
//! baseline cache (see DESIGN.md §15).
//!
//! With `--state-dir` the server keeps two [`RecordLog`]s:
//!
//! * **`journal.log`** — job lifecycle and completed cells. Before a
//!   response becomes externally visible, its record is appended and
//!   fsynced: `admitted` before the admission line, `cell_done` before
//!   each fresh cell line, `job_done` before the `done` line. A crash
//!   therefore never loses a result the client saw, and replaying the
//!   journal at startup repopulates the cell LRU and identifies jobs
//!   that were admitted but never closed (*interrupted* jobs, marked
//!   `abandoned` so a second restart does not re-report them).
//! * **`baselines.log`** — backend-encoded calibration bundles keyed by
//!   `(fingerprint, trace CRC)`, appended after each successful
//!   calibration. Replay keeps the last record per key.
//!
//! Records are opaque payloads behind the store's frame CRCs; the codecs
//! here are total — a malformed payload decodes to `None` and is counted
//! as corrupt, never panicking the server.

use crate::cache::CacheKey;
use memscale_store::codec::{put_bytes, put_str, put_u64, Cursor};
use memscale_store::{RecordLog, StoreError};
use memscale_types::serve::CellMetrics;
use std::collections::{HashMap, HashSet};
use std::path::Path;
use std::time::Instant;

/// Purpose byte of `journal.log`.
pub const PURPOSE_JOURNAL: u8 = 1;
/// Purpose byte of `baselines.log`.
pub const PURPOSE_BASELINES: u8 = 2;

const TAG_ADMITTED: u64 = 1;
const TAG_CELL_DONE: u64 = 2;
const TAG_JOB_DONE: u64 = 3;
const TAG_BASELINE: u64 = 4;
const TAG_ABANDONED: u64 = 5;

/// One entry of the write-ahead job journal.
#[derive(Debug, Clone, PartialEq)]
pub enum JournalRecord {
    /// A job passed admission control; its cells may start landing.
    Admitted {
        /// Client-chosen job id.
        id: String,
        /// `SimConfig::fingerprint()` of the job.
        fingerprint: u64,
        /// CRC-32 of the job's input identity.
        trace_crc: u32,
        /// Cell labels of the job's plan, in grid order.
        cells: Vec<String>,
    },
    /// A cell completed with metrics (cache-key addressed, so any future
    /// job with the same identity reuses it).
    CellDone {
        /// `SimConfig::fingerprint()` of the producing job.
        fingerprint: u64,
        /// CRC-32 of the producing job's input identity.
        trace_crc: u32,
        /// Policy wire name of the cell.
        label: String,
        /// The metrics, persisted bit-exactly.
        metrics: CellMetrics,
    },
    /// The job's terminal `done` line was about to be sent.
    JobDone {
        /// Client-chosen job id.
        id: String,
    },
    /// The job terminated without a `done` line (terminal error, client
    /// disconnect) — or was found interrupted during recovery.
    Abandoned {
        /// Client-chosen job id.
        id: String,
    },
}

/// Encodes a [`CellMetrics`] as five bit-exact `f64` images, followed —
/// only when the cell carried service-workload results — by a flags word
/// and the flagged optional fields. Records without service fields stay
/// byte-identical to the pre-service format, so old logs replay
/// unchanged and old servers can still read the common case.
fn put_metrics(out: &mut Vec<u8>, m: &CellMetrics) {
    put_u64(out, m.memory_savings.to_bits());
    put_u64(out, m.system_savings.to_bits());
    put_u64(out, m.cpi_increase_avg.to_bits());
    put_u64(out, m.cpi_increase_max.to_bits());
    put_u64(out, m.mean_frequency_mhz.to_bits());
    let flags = u64::from(m.p99_ms.is_some()) | (u64::from(m.slo_violations.is_some()) << 1);
    if flags != 0 {
        put_u64(out, flags);
        if let Some(p) = m.p99_ms {
            put_u64(out, p.to_bits());
        }
        if let Some(v) = m.slo_violations {
            put_u64(out, v);
        }
    }
}

fn take_metrics(cur: &mut Cursor<'_>) -> Option<CellMetrics> {
    let memory_savings = f64::from_bits(cur.take_u64()?);
    let system_savings = f64::from_bits(cur.take_u64()?);
    let cpi_increase_avg = f64::from_bits(cur.take_u64()?);
    let cpi_increase_max = f64::from_bits(cur.take_u64()?);
    let mean_frequency_mhz = f64::from_bits(cur.take_u64()?);
    // Metrics are the final field of their record: an exhausted cursor is
    // a pre-service record, anything else is the flagged tail.
    let (p99_ms, slo_violations) = if cur.is_empty() {
        (None, None)
    } else {
        let flags = cur.take_u64()?;
        // The encoder omits the tail entirely when no field is present, so
        // a zero flags word is corruption (e.g. a trailing garbage byte).
        if flags == 0 || flags & !0b11 != 0 {
            return None;
        }
        let p99 = if flags & 0b01 != 0 {
            Some(f64::from_bits(cur.take_u64()?))
        } else {
            None
        };
        let violations = if flags & 0b10 != 0 {
            Some(cur.take_u64()?)
        } else {
            None
        };
        (p99, violations)
    };
    Some(CellMetrics {
        memory_savings,
        system_savings,
        cpi_increase_avg,
        cpi_increase_max,
        mean_frequency_mhz,
        p99_ms,
        slo_violations,
    })
}

impl JournalRecord {
    /// Serialises the record into a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            JournalRecord::Admitted {
                id,
                fingerprint,
                trace_crc,
                cells,
            } => {
                put_u64(&mut out, TAG_ADMITTED);
                put_str(&mut out, id);
                put_u64(&mut out, *fingerprint);
                put_u64(&mut out, u64::from(*trace_crc));
                put_u64(&mut out, cells.len() as u64);
                for label in cells {
                    put_str(&mut out, label);
                }
            }
            JournalRecord::CellDone {
                fingerprint,
                trace_crc,
                label,
                metrics,
            } => {
                put_u64(&mut out, TAG_CELL_DONE);
                put_u64(&mut out, *fingerprint);
                put_u64(&mut out, u64::from(*trace_crc));
                put_str(&mut out, label);
                put_metrics(&mut out, metrics);
            }
            JournalRecord::JobDone { id } => {
                put_u64(&mut out, TAG_JOB_DONE);
                put_str(&mut out, id);
            }
            JournalRecord::Abandoned { id } => {
                put_u64(&mut out, TAG_ABANDONED);
                put_str(&mut out, id);
            }
        }
        out
    }

    /// Decodes a frame payload, or `None` when malformed.
    pub fn decode(bytes: &[u8]) -> Option<Self> {
        let mut cur = Cursor::new(bytes);
        let record = match cur.take_u64()? {
            TAG_ADMITTED => {
                let id = cur.take_str()?.to_string();
                let fingerprint = cur.take_u64()?;
                let trace_crc = u32::try_from(cur.take_u64()?).ok()?;
                let n = usize::try_from(cur.take_u64()?).ok()?;
                if n > 1_000_000 {
                    return None;
                }
                let mut cells = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    cells.push(cur.take_str()?.to_string());
                }
                JournalRecord::Admitted {
                    id,
                    fingerprint,
                    trace_crc,
                    cells,
                }
            }
            TAG_CELL_DONE => JournalRecord::CellDone {
                fingerprint: cur.take_u64()?,
                trace_crc: u32::try_from(cur.take_u64()?).ok()?,
                label: cur.take_str()?.to_string(),
                metrics: take_metrics(&mut cur)?,
            },
            TAG_JOB_DONE => JournalRecord::JobDone {
                id: cur.take_str()?.to_string(),
            },
            TAG_ABANDONED => JournalRecord::Abandoned {
                id: cur.take_str()?.to_string(),
            },
            _ => return None,
        };
        cur.is_empty().then_some(record)
    }
}

/// Encodes a baseline-cache record: key plus the backend's opaque bundle.
pub fn encode_baseline_record(fingerprint: u64, trace_crc: u32, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::new();
    put_u64(&mut out, TAG_BASELINE);
    put_u64(&mut out, fingerprint);
    put_u64(&mut out, u64::from(trace_crc));
    put_bytes(&mut out, payload);
    out
}

/// Decodes a baseline-cache record, or `None` when malformed.
pub fn decode_baseline_record(bytes: &[u8]) -> Option<(u64, u32, Vec<u8>)> {
    let mut cur = Cursor::new(bytes);
    if cur.take_u64()? != TAG_BASELINE {
        return None;
    }
    let fingerprint = cur.take_u64()?;
    let trace_crc = u32::try_from(cur.take_u64()?).ok()?;
    let payload = cur.take_bytes()?.to_vec();
    cur.is_empty().then_some((fingerprint, trace_crc, payload))
}

/// What startup recovery found and repaired (surfaced by
/// `SweepServer::recovery_report` and the CLI banner).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RecoveryReport {
    /// Completed cells replayed into the result cache.
    pub cells_recovered: usize,
    /// Baseline bundles replayed into the calibration cache (after
    /// backend decoding; bundles the backend rejects count as corrupt).
    pub baselines_recovered: usize,
    /// Jobs admitted but never closed before the crash, now marked
    /// abandoned. Resubmitting them re-runs only their missing cells.
    pub interrupted_jobs: Vec<String>,
    /// Frame-valid records whose payload failed to decode (version skew
    /// or writer bug) — skipped, never fatal.
    pub corrupt_records: usize,
    /// Torn-tail bytes truncated from `journal.log`.
    pub journal_truncated_bytes: u64,
    /// Torn-tail bytes truncated from `baselines.log`.
    pub baseline_truncated_bytes: u64,
    /// Wall-clock spent scanning and replaying both logs, milliseconds
    /// (excludes backend baseline decoding, which the server times
    /// separately).
    pub replay_wall_ms: f64,
}

/// Everything recovery replayed out of the logs, ready to seed the LRUs.
#[derive(Debug, Default)]
pub struct RecoveredState {
    /// Completed cells in journal order (later duplicates win).
    pub cells: Vec<(CacheKey, CellMetrics)>,
    /// Baseline bundles in log order (later duplicates win), still
    /// backend-opaque.
    pub baselines: Vec<(CacheKey, Vec<u8>)>,
    /// Scan/replay accounting.
    pub report: RecoveryReport,
}

/// The open journal and baseline logs of a `--state-dir` server.
#[derive(Debug)]
pub struct DurableState {
    journal: RecordLog,
    baselines: RecordLog,
}

impl DurableState {
    /// Opens (creating as needed) the logs under `dir`, replays them, and
    /// marks interrupted jobs abandoned.
    ///
    /// # Errors
    ///
    /// Unrepairable store defects (foreign files, newer format) and real
    /// I/O failures; torn tails and corrupt payloads are recovered, not
    /// errors.
    pub fn open(dir: &Path) -> Result<(Self, RecoveredState), StoreError> {
        std::fs::create_dir_all(dir).map_err(|e| StoreError::io("creating state directory", &e))?;
        let replay_started = Instant::now();
        let (mut journal, journal_rec) =
            RecordLog::open(&dir.join("journal.log"), PURPOSE_JOURNAL)?;
        let (baselines, baseline_rec) =
            RecordLog::open(&dir.join("baselines.log"), PURPOSE_BASELINES)?;

        let mut state = RecoveredState::default();
        state.report.journal_truncated_bytes = journal_rec.truncated_bytes;
        state.report.baseline_truncated_bytes = baseline_rec.truncated_bytes;

        // Journal replay: completed cells seed the result cache; jobs
        // admitted but never closed are the interrupted ones.
        let mut cell_index: HashMap<CacheKey, usize> = HashMap::new();
        let mut open_jobs: Vec<String> = Vec::new();
        let mut open_set: HashSet<String> = HashSet::new();
        for payload in &journal_rec.records {
            match JournalRecord::decode(payload) {
                Some(JournalRecord::Admitted { id, .. }) => {
                    if open_set.insert(id.clone()) {
                        open_jobs.push(id);
                    }
                }
                Some(JournalRecord::JobDone { id } | JournalRecord::Abandoned { id }) => {
                    if open_set.remove(&id) {
                        open_jobs.retain(|j| j != &id);
                    }
                }
                Some(JournalRecord::CellDone {
                    fingerprint,
                    trace_crc,
                    label,
                    metrics,
                }) => {
                    let key = CacheKey {
                        fingerprint,
                        trace_crc,
                        label,
                    };
                    match cell_index.get(&key) {
                        Some(&i) => state.cells[i].1 = metrics,
                        None => {
                            cell_index.insert(key.clone(), state.cells.len());
                            state.cells.push((key, metrics));
                        }
                    }
                }
                None => state.report.corrupt_records += 1,
            }
        }

        // Baseline replay: last record per key wins.
        let mut baseline_index: HashMap<CacheKey, usize> = HashMap::new();
        for payload in &baseline_rec.records {
            match decode_baseline_record(payload) {
                Some((fingerprint, trace_crc, bundle)) => {
                    let key = CacheKey {
                        fingerprint,
                        trace_crc,
                        label: CacheKey::BASELINE.into(),
                    };
                    match baseline_index.get(&key) {
                        Some(&i) => state.baselines[i].1 = bundle,
                        None => {
                            baseline_index.insert(key.clone(), state.baselines.len());
                            state.baselines.push((key, bundle));
                        }
                    }
                }
                None => state.report.corrupt_records += 1,
            }
        }

        // Mark interrupted jobs so a second restart does not re-report
        // them; their completed cells stay recovered above.
        if !open_jobs.is_empty() {
            for id in &open_jobs {
                journal.append(&JournalRecord::Abandoned { id: id.clone() }.encode())?;
            }
            journal.commit()?;
        }
        state.report.cells_recovered = state.cells.len();
        state.report.baselines_recovered = state.baselines.len();
        state.report.interrupted_jobs = open_jobs;
        state.report.replay_wall_ms = replay_started.elapsed().as_secs_f64() * 1e3;
        Ok((DurableState { journal, baselines }, state))
    }

    /// Appends and fsyncs one journal record (the write-ahead step).
    ///
    /// # Errors
    ///
    /// The underlying append/sync failure.
    pub fn record(&mut self, rec: &JournalRecord) -> Result<(), StoreError> {
        self.journal.append_commit(&rec.encode())
    }

    /// Appends and fsyncs one baseline bundle.
    ///
    /// # Errors
    ///
    /// The underlying append/sync failure (including
    /// [`StoreError::RecordTooLarge`] for oversized bundles, which the
    /// server skips without disabling durability).
    pub fn record_baseline(
        &mut self,
        fingerprint: u64,
        trace_crc: u32,
        payload: &[u8],
    ) -> Result<(), StoreError> {
        self.baselines
            .append_commit(&encode_baseline_record(fingerprint, trace_crc, payload))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU64, Ordering};

    static SEQ: AtomicU64 = AtomicU64::new(0);

    struct ScratchDir(PathBuf);

    impl ScratchDir {
        fn new(tag: &str) -> Self {
            let n = SEQ.fetch_add(1, Ordering::Relaxed);
            ScratchDir(
                std::env::temp_dir()
                    .join(format!("memscale_persist_{tag}_{}_{n}", std::process::id())),
            )
        }
    }

    impl Drop for ScratchDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    fn metrics(seed: f64) -> CellMetrics {
        CellMetrics {
            memory_savings: seed,
            system_savings: seed / 2.0,
            cpi_increase_avg: seed / 3.0,
            cpi_increase_max: seed / 4.0,
            mean_frequency_mhz: 800.0 - seed,
            p99_ms: None,
            slo_violations: None,
        }
    }

    fn sample_records() -> Vec<JournalRecord> {
        vec![
            JournalRecord::Admitted {
                id: "job-1".into(),
                fingerprint: 0xDEAD_BEEF_u64,
                trace_crc: 0x1234_5678,
                cells: vec!["static:800".into(), "memscale".into()],
            },
            JournalRecord::CellDone {
                fingerprint: 0xDEAD_BEEF_u64,
                trace_crc: 0x1234_5678,
                label: "memscale".into(),
                metrics: metrics(17.25),
            },
            JournalRecord::CellDone {
                fingerprint: 0xDEAD_BEEF_u64,
                trace_crc: 0x1234_5678,
                label: "memscale".into(),
                metrics: CellMetrics {
                    p99_ms: Some(3.25),
                    slo_violations: Some(7),
                    ..metrics(4.5)
                },
            },
            JournalRecord::CellDone {
                fingerprint: 0xDEAD_BEEF_u64,
                trace_crc: 0x1234_5678,
                label: "memscale".into(),
                metrics: CellMetrics {
                    slo_violations: Some(0),
                    ..metrics(4.5)
                },
            },
            JournalRecord::JobDone { id: "job-1".into() },
            JournalRecord::Abandoned { id: "job-2".into() },
        ]
    }

    #[test]
    fn journal_records_round_trip() {
        for rec in sample_records() {
            let bytes = rec.encode();
            assert_eq!(JournalRecord::decode(&bytes), Some(rec.clone()), "{rec:?}");
            // Trailing garbage must be rejected, not silently accepted.
            let mut padded = bytes.clone();
            padded.push(0);
            assert_eq!(JournalRecord::decode(&padded), None);
            // Every truncation of the payload is a decode failure, with one
            // inherent exception: cutting a service-tailed `CellDone` exactly
            // at the pre-service boundary yields a valid legacy record (that's
            // what backward compatibility means). Real torn writes are caught
            // by the record-log frame CRC, not this codec.
            let stripped = match &rec {
                JournalRecord::CellDone {
                    fingerprint,
                    trace_crc,
                    label,
                    metrics,
                } if metrics.p99_ms.is_some() || metrics.slo_violations.is_some() => {
                    Some(JournalRecord::CellDone {
                        fingerprint: *fingerprint,
                        trace_crc: *trace_crc,
                        label: label.clone(),
                        metrics: CellMetrics {
                            p99_ms: None,
                            slo_violations: None,
                            ..*metrics
                        },
                    })
                }
                _ => None,
            };
            for cut in 0..bytes.len() {
                let decoded = JournalRecord::decode(&bytes[..cut]);
                if decoded.is_some() && decoded == stripped {
                    continue;
                }
                assert_eq!(decoded, None, "cut {cut}");
            }
        }
    }

    #[test]
    fn metrics_persist_bit_exactly() {
        let odd = CellMetrics {
            memory_savings: f64::from_bits(0x7FF0_0000_0000_0001), // a NaN payload
            system_savings: -0.0,
            cpi_increase_avg: f64::MIN_POSITIVE / 2.0, // subnormal
            cpi_increase_max: f64::INFINITY,
            mean_frequency_mhz: 1e-308,
            p99_ms: Some(f64::from_bits(0xFFF8_0000_0000_0002)),
            slo_violations: Some(u64::MAX),
        };
        let rec = JournalRecord::CellDone {
            fingerprint: 1,
            trace_crc: 2,
            label: "static:400".into(),
            metrics: odd,
        };
        let Some(JournalRecord::CellDone { metrics: back, .. }) =
            JournalRecord::decode(&rec.encode())
        else {
            panic!("decode failed");
        };
        assert_eq!(back.memory_savings.to_bits(), odd.memory_savings.to_bits());
        assert_eq!(back.system_savings.to_bits(), odd.system_savings.to_bits());
        assert_eq!(
            back.cpi_increase_avg.to_bits(),
            odd.cpi_increase_avg.to_bits()
        );
        assert_eq!(
            back.cpi_increase_max.to_bits(),
            odd.cpi_increase_max.to_bits()
        );
        assert_eq!(
            back.mean_frequency_mhz.to_bits(),
            odd.mean_frequency_mhz.to_bits()
        );
        assert_eq!(back.p99_ms.map(f64::to_bits), odd.p99_ms.map(f64::to_bits));
        assert_eq!(back.slo_violations, odd.slo_violations);
    }

    #[test]
    fn pre_service_cell_records_decode_with_none_fields() {
        // A CellDone frame written before the service-workload fields
        // existed: tag + key + label + exactly five metric words.
        let mut bytes = Vec::new();
        put_u64(&mut bytes, TAG_CELL_DONE);
        put_u64(&mut bytes, 11);
        put_u64(&mut bytes, 22);
        put_str(&mut bytes, "memscale");
        for v in [0.2f64, 0.07, 0.01, 0.03, 512.5] {
            put_u64(&mut bytes, v.to_bits());
        }
        let Some(JournalRecord::CellDone { metrics: m, .. }) = JournalRecord::decode(&bytes) else {
            panic!("pre-service record must decode");
        };
        assert_eq!(m.p99_ms, None);
        assert_eq!(m.slo_violations, None);
        assert_eq!(m.mean_frequency_mhz, 512.5);
        // An unknown flag bit in the tail is corruption, not a guess.
        let mut flagged = bytes.clone();
        put_u64(&mut flagged, 0b100);
        assert_eq!(JournalRecord::decode(&flagged), None);
    }

    #[test]
    fn baseline_records_round_trip() {
        let bytes = encode_baseline_record(7, 9, b"bundle-bytes");
        assert_eq!(
            decode_baseline_record(&bytes),
            Some((7, 9, b"bundle-bytes".to_vec()))
        );
        for cut in 0..bytes.len() {
            assert_eq!(decode_baseline_record(&bytes[..cut]), None);
        }
        // A journal record is not a baseline record and vice versa.
        assert_eq!(
            decode_baseline_record(&JournalRecord::JobDone { id: "x".into() }.encode()),
            None
        );
        assert_eq!(JournalRecord::decode(&bytes), None);
    }

    #[test]
    fn open_replays_cells_and_marks_interrupted_jobs() {
        let scratch = ScratchDir::new("replay");
        {
            let (mut state, rec) = DurableState::open(&scratch.0).expect("open");
            assert!(rec.report.interrupted_jobs.is_empty());
            state
                .record(&JournalRecord::Admitted {
                    id: "done-job".into(),
                    fingerprint: 1,
                    trace_crc: 2,
                    cells: vec!["memscale".into()],
                })
                .expect("record");
            state
                .record(&JournalRecord::CellDone {
                    fingerprint: 1,
                    trace_crc: 2,
                    label: "memscale".into(),
                    metrics: metrics(5.0),
                })
                .expect("record");
            state
                .record(&JournalRecord::JobDone {
                    id: "done-job".into(),
                })
                .expect("record");
            state
                .record(&JournalRecord::Admitted {
                    id: "crashed-job".into(),
                    fingerprint: 1,
                    trace_crc: 2,
                    cells: vec!["memscale".into(), "static:800".into()],
                })
                .expect("record");
            state
                .record(&JournalRecord::CellDone {
                    fingerprint: 1,
                    trace_crc: 2,
                    label: "static:800".into(),
                    metrics: metrics(9.0),
                })
                .expect("record");
            state
                .record_baseline(1, 2, b"calibration-bundle")
                .expect("baseline");
            // No JobDone for crashed-job: this is the kill -9 point.
        }
        let (_, rec) = DurableState::open(&scratch.0).expect("reopen");
        assert_eq!(rec.report.interrupted_jobs, vec!["crashed-job".to_string()]);
        assert_eq!(rec.report.cells_recovered, 2);
        assert_eq!(rec.report.baselines_recovered, 1);
        assert_eq!(rec.report.corrupt_records, 0);
        let labels: Vec<&str> = rec.cells.iter().map(|(k, _)| k.label.as_str()).collect();
        assert_eq!(labels, vec!["memscale", "static:800"]);
        assert_eq!(rec.baselines[0].1, b"calibration-bundle");
        assert_eq!(rec.baselines[0].0.label, CacheKey::BASELINE);

        // Third open: the abandoned mark written above closes the job.
        let (_, rec) = DurableState::open(&scratch.0).expect("third open");
        assert!(rec.report.interrupted_jobs.is_empty());
        assert_eq!(rec.report.cells_recovered, 2);
    }

    #[test]
    fn duplicate_cells_and_baselines_keep_the_last_record() {
        let scratch = ScratchDir::new("dups");
        {
            let (mut state, _) = DurableState::open(&scratch.0).expect("open");
            for v in [1.0, 2.0, 3.0] {
                state
                    .record(&JournalRecord::CellDone {
                        fingerprint: 4,
                        trace_crc: 4,
                        label: "memscale".into(),
                        metrics: metrics(v),
                    })
                    .expect("record");
            }
            state.record_baseline(4, 4, b"old").expect("baseline");
            state.record_baseline(4, 4, b"new").expect("baseline");
        }
        let (_, rec) = DurableState::open(&scratch.0).expect("reopen");
        assert_eq!(rec.cells.len(), 1);
        assert_eq!(rec.cells[0].1.memory_savings, 3.0);
        assert_eq!(rec.baselines.len(), 1);
        assert_eq!(rec.baselines[0].1, b"new");
    }

    mod fuzz {
        use super::*;
        use crate::chaos::ChaosRng;
        use proptest::prelude::*;

        /// Seed-derived label: ASCII letters, digits, and colons so labels
        /// look like real policy names, plus the occasional multibyte
        /// character to exercise UTF-8 handling.
        fn label_from(rng: &mut ChaosRng) -> String {
            const ALPHABET: &[char] = &[
                'a', 'b', 'c', 'm', 's', 't', ':', '0', '1', '4', '8', '9', 'µ', '≤',
            ];
            let len = 1 + rng.below(16);
            (0..len)
                .map(|_| ALPHABET[rng.below(ALPHABET.len())])
                .collect()
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(128))]

            #[test]
            fn admitted_records_round_trip(
                seed in any::<u64>(),
                fingerprint in any::<u64>(),
                trace_crc in any::<u32>(),
                n_cells in 0usize..8,
            ) {
                let mut rng = ChaosRng::new(seed);
                let id = label_from(&mut rng);
                let cells: Vec<String> = (0..n_cells).map(|_| label_from(&mut rng)).collect();
                let rec = JournalRecord::Admitted { id, fingerprint, trace_crc, cells };
                prop_assert_eq!(JournalRecord::decode(&rec.encode()), Some(rec.clone()));
            }

            #[test]
            fn cell_done_records_round_trip(
                seed in any::<u64>(),
                fingerprint in any::<u64>(),
                trace_crc in any::<u32>(),
            ) {
                let mut rng = ChaosRng::new(seed);
                let label = label_from(&mut rng);
                let bits: Vec<u64> = (0..7).map(|_| rng.next_u64()).collect();
                let with_p99 = rng.next_u64() & 1 != 0;
                let with_viol = rng.next_u64() & 1 != 0;
                let metrics = CellMetrics {
                    memory_savings: f64::from_bits(bits[0]),
                    system_savings: f64::from_bits(bits[1]),
                    cpi_increase_avg: f64::from_bits(bits[2]),
                    cpi_increase_max: f64::from_bits(bits[3]),
                    mean_frequency_mhz: f64::from_bits(bits[4]),
                    p99_ms: with_p99.then(|| f64::from_bits(bits[5])),
                    slo_violations: with_viol.then_some(bits[6]),
                };
                let rec = JournalRecord::CellDone { fingerprint, trace_crc, label, metrics };
                let back = JournalRecord::decode(&rec.encode()).expect("decodes");
                let JournalRecord::CellDone { metrics: m2, .. } = &back else {
                    panic!("wrong variant");
                };
                // Bit-exact equality (PartialEq would reject NaN metrics).
                prop_assert_eq!(m2.memory_savings.to_bits(), bits[0]);
                prop_assert_eq!(m2.system_savings.to_bits(), bits[1]);
                prop_assert_eq!(m2.cpi_increase_avg.to_bits(), bits[2]);
                prop_assert_eq!(m2.cpi_increase_max.to_bits(), bits[3]);
                prop_assert_eq!(m2.mean_frequency_mhz.to_bits(), bits[4]);
                prop_assert_eq!(m2.p99_ms.map(f64::to_bits), with_p99.then_some(bits[5]));
                prop_assert_eq!(m2.slo_violations, with_viol.then_some(bits[6]));
            }

            #[test]
            fn arbitrary_bytes_never_panic_the_decoders(
                seed in any::<u64>(),
                len in 0usize..128,
            ) {
                let mut rng = ChaosRng::new(seed);
                let bytes: Vec<u8> =
                    (0..len).map(|_| u8::try_from(rng.next_u64() & 0xff).unwrap_or(0)).collect();
                let _ = JournalRecord::decode(&bytes);
                let _ = decode_baseline_record(&bytes);
            }
        }
    }
}
