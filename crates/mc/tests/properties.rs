//! Property-based tests of the memory controller's counters and scheduling.

use memscale_mc::MemoryController;
use memscale_types::address::PhysAddr;
use memscale_types::config::SystemConfig;
use memscale_types::freq::MemFreq;
use memscale_types::time::Picos;
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct Op {
    line: u64,
    write: bool,
    gap_ns: u64,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    (0u64..4096, any::<bool>(), 0u64..300).prop_map(|(line, write, gap_ns)| Op {
        line,
        write,
        gap_ns,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Counter identities hold for arbitrary request streams.
    #[test]
    fn counter_identities(ops in prop::collection::vec(op_strategy(), 1..200)) {
        let mut mc = MemoryController::new(&SystemConfig::default(), MemFreq::F800);
        let mut now = Picos::ZERO;
        let mut reads = 0u64;
        for op in &ops {
            now += Picos::from_ns(op.gap_ns);
            if op.write {
                mc.writeback(PhysAddr::from_cache_line(op.line), now);
            } else {
                mc.read(PhysAddr::from_cache_line(op.line), now);
                reads += 1;
            }
        }
        mc.drain_all_writebacks(now);
        let c = mc.counters();
        prop_assert_eq!(c.reads, reads);
        prop_assert_eq!(c.btc, reads);
        prop_assert_eq!(c.ctc, reads);
        prop_assert_eq!(c.reads + c.writes, ops.len() as u64);
        prop_assert_eq!(c.row_classified(), c.reads + c.writes);
        prop_assert_eq!(c.pocc, c.obmc + c.cbmc);
        prop_assert!(c.epdc == 0, "no powerdown policy must mean no exits");
    }

    /// Read completions are causal and bounded below by the raw latency.
    #[test]
    fn read_latency_bounds(ops in prop::collection::vec(op_strategy(), 1..200)) {
        let mut mc = MemoryController::new(&SystemConfig::default(), MemFreq::F800);
        // Raw closed-page read: T_MC + tRCD + tCL + burst = 38.125 ns.
        let floor = Picos::from_ps(38_125);
        let mut now = Picos::ZERO;
        for op in &ops {
            now += Picos::from_ns(op.gap_ns);
            if op.write {
                mc.writeback(PhysAddr::from_cache_line(op.line), now);
            } else {
                let r = mc.read(PhysAddr::from_cache_line(op.line), now);
                prop_assert!(r.completion >= now + Picos::from_ns(15));
                // A row hit skips tRCD, so the absolute floor is lower, but
                // a closed miss must pay the full pipeline.
                if r.timeline.outcome == memscale_dram::RowOutcome::ClosedMiss {
                    prop_assert!(
                        r.completion >= now + floor,
                        "completion {} < floor {} after {}",
                        r.completion,
                        now + floor,
                        now
                    );
                }
            }
        }
    }

    /// The controller is deterministic: identical streams, identical state.
    #[test]
    fn deterministic_replay(ops in prop::collection::vec(op_strategy(), 1..100)) {
        let run = || {
            let mut mc = MemoryController::new(&SystemConfig::default(), MemFreq::F800);
            let mut now = Picos::ZERO;
            let mut completions = Vec::new();
            for op in &ops {
                now += Picos::from_ns(op.gap_ns);
                if op.write {
                    mc.writeback(PhysAddr::from_cache_line(op.line), now);
                } else {
                    completions.push(mc.read(PhysAddr::from_cache_line(op.line), now).completion);
                }
            }
            (completions, *mc.counters())
        };
        let (ca, sa) = run();
        let (cb, sb) = run();
        prop_assert_eq!(ca, cb);
        prop_assert_eq!(sa, sb);
    }

    /// Frequency changes never reorder causality: post-change reads
    /// complete after the relock horizon.
    #[test]
    fn relock_is_a_barrier(
        ops in prop::collection::vec(op_strategy(), 1..60),
        freq_idx in 0usize..9,
    ) {
        let target = MemFreq::ALL[freq_idx]; // anything but a guaranteed 800
        let mut mc = MemoryController::new(&SystemConfig::default(), MemFreq::F800);
        let mut now = Picos::ZERO;
        for op in &ops {
            now += Picos::from_ns(op.gap_ns);
            mc.read(PhysAddr::from_cache_line(op.line), now);
        }
        let ready = mc.set_frequency(target, now);
        // Every channel begins its relock no earlier than `now` (channels
        // with in-flight data may start later), so the returned horizon and
        // any post-switch completion sit at least one full penalty out.
        let penalty =
            memscale_dram::timing::TimingSet::relock_penalty(&SystemConfig::default().timing, target);
        if target != MemFreq::F800 {
            prop_assert!(ready >= now + penalty);
        }
        let r = mc.read(PhysAddr::from_cache_line(1), now);
        prop_assert!(r.timeline.cas_at >= now);
        if target != MemFreq::F800 {
            prop_assert!(r.completion >= now + penalty);
        }
        prop_assert_eq!(mc.frequency(), target);
    }

    /// Writebacks never get lost: queued == pushed − dispatched.
    #[test]
    fn writebacks_conserved(ops in prop::collection::vec(op_strategy(), 1..200)) {
        let mut mc = MemoryController::new(&SystemConfig::default(), MemFreq::F800);
        let mut now = Picos::ZERO;
        let mut pushed = 0u64;
        for op in &ops {
            now += Picos::from_ns(op.gap_ns);
            if op.write {
                mc.writeback(PhysAddr::from_cache_line(op.line), now);
                pushed += 1;
            } else {
                mc.read(PhysAddr::from_cache_line(op.line), now);
            }
        }
        let queued: usize = (0..4)
            .map(|c| mc.pending_writebacks(memscale_types::ids::ChannelId(c)))
            .sum();
        prop_assert_eq!(mc.counters().writes + queued as u64, pushed);
        mc.drain_all_writebacks(now);
        prop_assert_eq!(mc.counters().writes, pushed);
    }
}
