//! The §3.1 memory-controller performance counters.
//!
//! One set of counters exists for the whole controller — the paper stresses
//! that averages (not per-bank/per-channel counts) suffice for the model.

use memscale_types::faults::CounterFault;
use memscale_types::time::Picos;

/// Monotonic controller counters; snapshot and subtract with
/// [`McCounters::delta`] at epoch/profiling boundaries.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct McCounters {
    /// Bank Transactions Outstanding: sum over arrivals of the number of
    /// requests already queued/in service for the same bank.
    pub bto: u64,
    /// Bank Transaction Counter: arrivals.
    pub btc: u64,
    /// Channel Transactions Outstanding (same, for the channel data bus).
    pub cto: u64,
    /// Channel Transactions Counter.
    pub ctc: u64,
    /// Row Buffer Hit Counter.
    pub rbhc: u64,
    /// Open-row Buffer Miss Counter (different row was open).
    pub obmc: u64,
    /// Closed-row Buffer Miss Counter (bank precharged; the common case).
    pub cbmc: u64,
    /// Exit-PowerDown Counter.
    pub epdc: u64,
    /// Exit-Deep-PowerDown Counter (LPDDR generations; zero elsewhere).
    pub edpc: u64,
    /// Page open/close command pairs (the paper's POCC).
    pub pocc: u64,
    /// Demand reads serviced.
    pub reads: u64,
    /// Writebacks serviced.
    pub writes: u64,
    /// Sum of read latencies (arrival → data end), for diagnostics.
    pub read_latency_sum: Picos,
}

impl McCounters {
    /// Fresh counters.
    pub fn new() -> Self {
        McCounters::default()
    }

    /// Counter activity since an `earlier` snapshot.
    pub fn delta(&self, earlier: &McCounters) -> McCounters {
        McCounters {
            bto: self.bto - earlier.bto,
            btc: self.btc - earlier.btc,
            cto: self.cto - earlier.cto,
            ctc: self.ctc - earlier.ctc,
            rbhc: self.rbhc - earlier.rbhc,
            obmc: self.obmc - earlier.obmc,
            cbmc: self.cbmc - earlier.cbmc,
            epdc: self.epdc - earlier.epdc,
            edpc: self.edpc - earlier.edpc,
            pocc: self.pocc - earlier.pocc,
            reads: self.reads - earlier.reads,
            writes: self.writes - earlier.writes,
            read_latency_sum: self.read_latency_sum - earlier.read_latency_sum,
        }
    }

    /// Average number of same-bank requests an arrival finds ahead of it
    /// (BTO/BTC; the paper's `ξ_bank` minus the request itself).
    pub fn bank_queue_avg(&self) -> f64 {
        if self.btc == 0 {
            0.0
        } else {
            self.bto as f64 / self.btc as f64
        }
    }

    /// Average number of same-channel requests an arrival finds ahead of it
    /// (CTO/CTC).
    pub fn channel_queue_avg(&self) -> f64 {
        if self.ctc == 0 {
            0.0
        } else {
            self.cto as f64 / self.ctc as f64
        }
    }

    /// Total row-buffer-classified accesses.
    pub fn row_classified(&self) -> u64 {
        self.rbhc + self.obmc + self.cbmc
    }

    /// Row-buffer hit rate in [0, 1].
    pub fn row_hit_rate(&self) -> f64 {
        let n = self.row_classified();
        if n == 0 {
            0.0
        } else {
            self.rbhc as f64 / n as f64
        }
    }

    /// Mean read latency, if any read was serviced.
    pub fn mean_read_latency(&self) -> Option<Picos> {
        if self.reads == 0 {
            None
        } else {
            Some(self.read_latency_sum / self.reads)
        }
    }

    /// Perturbs this counter *read* the way the given fault class would (the
    /// underlying monotonic accumulators are untouched — only the value
    /// delivered to the governor is poisoned). `Corrupt` explodes the
    /// occupancy accumulators as an overflow-style glitch; `Drop` loses the
    /// read entirely; `Stale` is resolved by the caller, which substitutes
    /// the previous window's delta.
    pub fn apply_fault(&mut self, fault: CounterFault) {
        match fault {
            CounterFault::Corrupt { factor } => {
                self.bto = self.bto.saturating_mul(factor);
                self.cto = self.cto.saturating_mul(factor);
                self.read_latency_sum = self.read_latency_sum.scale(factor as f64);
            }
            CounterFault::Drop => *self = McCounters::new(),
            CounterFault::Stale => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delta_subtracts_fieldwise() {
        let a = McCounters {
            bto: 10,
            btc: 5,
            reads: 3,
            read_latency_sum: Picos::from_ns(100),
            ..McCounters::new()
        };
        let b = McCounters {
            bto: 25,
            btc: 10,
            reads: 9,
            read_latency_sum: Picos::from_ns(400),
            ..McCounters::new()
        };
        let d = b.delta(&a);
        assert_eq!(d.bto, 15);
        assert_eq!(d.btc, 5);
        assert_eq!(d.reads, 6);
        assert_eq!(d.read_latency_sum, Picos::from_ns(300));
    }

    #[test]
    fn queue_averages() {
        let c = McCounters {
            bto: 30,
            btc: 10,
            cto: 5,
            ctc: 10,
            ..McCounters::new()
        };
        assert_eq!(c.bank_queue_avg(), 3.0);
        assert_eq!(c.channel_queue_avg(), 0.5);
        assert_eq!(McCounters::new().bank_queue_avg(), 0.0);
    }

    #[test]
    fn row_hit_rate() {
        let c = McCounters {
            rbhc: 1,
            obmc: 1,
            cbmc: 8,
            ..McCounters::new()
        };
        assert_eq!(c.row_classified(), 10);
        assert!((c.row_hit_rate() - 0.1).abs() < 1e-12);
        assert_eq!(McCounters::new().row_hit_rate(), 0.0);
    }

    #[test]
    fn apply_fault_perturbs_only_the_read() {
        let base = McCounters {
            bto: 10,
            btc: 5,
            cto: 4,
            ctc: 8,
            reads: 3,
            read_latency_sum: Picos::from_ns(100),
            ..McCounters::new()
        };
        let mut corrupted = base;
        corrupted.apply_fault(CounterFault::Corrupt { factor: 1 << 13 });
        assert_eq!(corrupted.bto, 10 << 13);
        assert_eq!(corrupted.cto, 4 << 13);
        assert_eq!(corrupted.btc, 5, "denominators untouched");
        let mut dropped = base;
        dropped.apply_fault(CounterFault::Drop);
        assert_eq!(dropped, McCounters::new());
        let mut stale = base;
        stale.apply_fault(CounterFault::Stale);
        assert_eq!(stale, base, "stale is substituted by the caller");
    }

    #[test]
    fn mean_read_latency() {
        let c = McCounters {
            reads: 4,
            read_latency_sum: Picos::from_ns(200),
            ..McCounters::new()
        };
        assert_eq!(c.mean_read_latency(), Some(Picos::from_ns(50)));
        assert_eq!(McCounters::new().mean_read_latency(), None);
    }
}
