//! Per-channel writeback queue.
//!
//! §4.1: "Reads are given priority over writebacks until the writeback queue
//! is half-full." Writebacks park here and are drained either *forcibly*
//! (whenever occupancy reaches half capacity) or *opportunistically* (when
//! the channel's data bus is idle at a read's arrival).

use memscale_types::address::PhysAddr;
use memscale_types::time::Picos;
use std::collections::VecDeque;

/// A pending writeback.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PendingWriteback {
    /// The dirty line's address.
    pub addr: PhysAddr,
    /// When the writeback entered the queue.
    pub arrived: Picos,
}

/// Bounded writeback queue for one channel.
#[derive(Debug, Clone)]
pub struct WritebackQueue {
    entries: VecDeque<PendingWriteback>,
    capacity: usize,
    /// Highest occupancy ever reached (sizing/diagnostic counter).
    high_water: usize,
}

impl WritebackQueue {
    /// Creates a queue of `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "writeback queue needs capacity");
        WritebackQueue {
            entries: VecDeque::with_capacity(capacity),
            capacity,
            high_water: 0,
        }
    }

    /// Highest occupancy the queue has ever reached.
    #[inline]
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// Queue capacity.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current occupancy.
    #[inline]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the queue is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether occupancy has reached the half-full priority threshold.
    #[inline]
    pub fn over_half(&self) -> bool {
        self.entries.len() * 2 >= self.capacity
    }

    /// Enqueues a writeback.
    pub fn push(&mut self, addr: PhysAddr, now: Picos) {
        self.entries
            .push_back(PendingWriteback { addr, arrived: now });
        self.high_water = self.high_water.max(self.entries.len());
    }

    /// Removes the oldest writeback for servicing.
    pub fn pop(&mut self) -> Option<PendingWriteback> {
        self.entries.pop_front()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order() {
        let mut q = WritebackQueue::new(8);
        q.push(PhysAddr::new(0x40), Picos::ZERO);
        q.push(PhysAddr::new(0x80), Picos::from_ns(1));
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop().unwrap().addr, PhysAddr::new(0x40));
        assert_eq!(q.pop().unwrap().addr, PhysAddr::new(0x80));
        assert!(q.pop().is_none());
        assert!(q.is_empty());
    }

    #[test]
    fn half_full_threshold() {
        let mut q = WritebackQueue::new(4);
        assert!(!q.over_half());
        q.push(PhysAddr::new(0), Picos::ZERO);
        assert!(!q.over_half());
        q.push(PhysAddr::new(64), Picos::ZERO);
        assert!(q.over_half()); // 2 of 4
    }

    #[test]
    fn odd_capacity_threshold_rounds_up() {
        let mut q = WritebackQueue::new(5);
        q.push(PhysAddr::new(0), Picos::ZERO);
        q.push(PhysAddr::new(64), Picos::ZERO);
        assert!(!q.over_half()); // 2*2=4 < 5
        q.push(PhysAddr::new(128), Picos::ZERO);
        assert!(q.over_half()); // 3*2=6 >= 5
    }

    #[test]
    fn high_water_tracks_peak_occupancy() {
        let mut q = WritebackQueue::new(8);
        assert_eq!(q.high_water(), 0);
        q.push(PhysAddr::new(0), Picos::ZERO);
        q.push(PhysAddr::new(64), Picos::ZERO);
        q.pop();
        q.push(PhysAddr::new(128), Picos::ZERO);
        assert_eq!(q.len(), 2);
        assert_eq!(q.high_water(), 2); // peak, not current
        q.push(PhysAddr::new(192), Picos::ZERO);
        assert_eq!(q.high_water(), 3);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_rejected() {
        WritebackQueue::new(0);
    }
}
