//! The §3.1 power-modeling counters: PTC, PTCKEL, ATCKEL and POCC.
//!
//! The paper instantiates its Micron power model from four counters: the
//! Precharge Time Counter (percentage of time all banks of a rank are
//! precharged), Precharge Time With CKE Low, Active Time With CKE Low, and
//! the Page Open/Close Counter. In this implementation the underlying
//! quantities live in the DRAM crate's [`RankStats`] accumulators; this
//! module presents them under the paper's names, averaged across ranks the
//! way the paper's single counter set is ("only a single set of these
//! counters is needed to model power accurately").

use memscale_dram::stats::RankStats;
use memscale_types::time::Picos;

/// The paper's power-model counter sample over one window.
#[derive(Debug, Default, Clone, Copy, PartialEq)]
pub struct PowerCounters {
    /// PTC: fraction of time all banks of a rank are precharged
    /// (rank-averaged), in `[0, 1]`.
    pub ptc: f64,
    /// PTCKEL: fraction of time precharged *and* CKE low (powerdown).
    pub ptckel: f64,
    /// ATCKEL: fraction of time some bank active and CKE low. Always zero
    /// here — only precharge powerdown is modeled, as in the paper's
    /// evaluation (active powerdown is never entered by its policies).
    pub atckel: f64,
    /// POCC: page open/close command pairs in the window.
    pub pocc: u64,
}

impl PowerCounters {
    /// Samples the counters from per-rank activity deltas over `window`,
    /// with `pocc` page open/close pairs observed by the controller.
    ///
    /// Returns the zero sample for an empty window or rank set.
    pub fn sample(rank_deltas: &[RankStats], pocc: u64, window: Picos) -> Self {
        if window == Picos::ZERO || rank_deltas.is_empty() {
            return PowerCounters {
                pocc,
                ..PowerCounters::default()
            };
        }
        let w = window.as_secs_f64();
        let n = rank_deltas.len() as f64;
        let active: f64 = rank_deltas
            .iter()
            .map(|d| (d.active_time.as_secs_f64() / w).min(1.0))
            .sum::<f64>()
            / n;
        let pd: f64 = rank_deltas
            .iter()
            .map(|d| (d.pd_time().as_secs_f64() / w).min(1.0))
            .sum::<f64>()
            / n;
        PowerCounters {
            ptc: (1.0 - active).clamp(0.0, 1.0),
            ptckel: pd.min(1.0),
            atckel: 0.0,
            pocc,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn delta(active_us: u64, pd_us: u64) -> RankStats {
        let mut d = RankStats::new();
        d.active_time = Picos::from_us(active_us);
        d.fast_pd_time = Picos::from_us(pd_us);
        d
    }

    #[test]
    fn idle_rank_is_fully_precharged() {
        let p = PowerCounters::sample(&[RankStats::new()], 0, Picos::from_ms(1));
        assert_eq!(p.ptc, 1.0);
        assert_eq!(p.ptckel, 0.0);
        assert_eq!(p.atckel, 0.0);
    }

    #[test]
    fn active_time_reduces_ptc() {
        let p = PowerCounters::sample(&[delta(400, 0)], 7, Picos::from_ms(1));
        assert!((p.ptc - 0.6).abs() < 1e-12);
        assert_eq!(p.pocc, 7);
    }

    #[test]
    fn powerdown_time_shows_as_ptckel() {
        let p = PowerCounters::sample(&[delta(0, 900)], 0, Picos::from_ms(1));
        assert!((p.ptckel - 0.9).abs() < 1e-12);
        assert_eq!(p.atckel, 0.0);
    }

    #[test]
    fn averages_across_ranks() {
        let p = PowerCounters::sample(&[delta(1_000, 0), delta(0, 0)], 0, Picos::from_ms(1));
        assert!((p.ptc - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_window_is_zero() {
        let p = PowerCounters::sample(&[delta(1, 1)], 3, Picos::ZERO);
        assert_eq!(p.ptc, 0.0);
        assert_eq!(p.pocc, 3);
    }
}
