//! Outstanding-transaction tracking behind the BTO/CTO accumulators.
//!
//! Each resource (bank or channel) keeps a FIFO of the *completion times* of
//! requests dispatched to it. When a new request arrives, entries whose
//! completion lies in the past are pruned and the remaining count is the
//! number of requests the arrival finds ahead of it — exactly what the
//! paper's hardware accumulators add to BTO/CTO on each arrival.

use memscale_types::time::Picos;
use std::collections::VecDeque;

/// Completion-time FIFO for one resource.
#[derive(Debug, Default, Clone)]
pub struct OutstandingTracker {
    completions: VecDeque<Picos>,
}

impl OutstandingTracker {
    /// An empty tracker.
    pub fn new() -> Self {
        OutstandingTracker::default()
    }

    /// Registers an arrival at `now` that will complete at `completion`,
    /// returning how many earlier requests are still outstanding.
    ///
    /// Completion times must be registered in non-decreasing order per
    /// resource (true for FCFS dispatch); out-of-order completions are
    /// tolerated but may briefly over-count.
    pub fn arrive(&mut self, now: Picos, completion: Picos) -> u64 {
        while let Some(&front) = self.completions.front() {
            if front <= now {
                self.completions.pop_front();
            } else {
                break;
            }
        }
        let ahead = self.completions.len() as u64;
        self.completions.push_back(completion);
        ahead
    }

    /// Requests still outstanding at `now` (without registering anything).
    pub fn outstanding_at(&self, now: Picos) -> u64 {
        self.completions.iter().filter(|&&c| c > now).count() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_requests_ahead() {
        let mut t = OutstandingTracker::new();
        assert_eq!(t.arrive(Picos::ZERO, Picos::from_ns(50)), 0);
        assert_eq!(t.arrive(Picos::from_ns(10), Picos::from_ns(90)), 1);
        assert_eq!(t.arrive(Picos::from_ns(20), Picos::from_ns(130)), 2);
    }

    #[test]
    fn prunes_completed_requests() {
        let mut t = OutstandingTracker::new();
        t.arrive(Picos::ZERO, Picos::from_ns(50));
        t.arrive(Picos::ZERO, Picos::from_ns(60));
        // Both completed by 100 ns.
        assert_eq!(t.arrive(Picos::from_ns(100), Picos::from_ns(150)), 0);
    }

    #[test]
    fn outstanding_at_is_non_destructive() {
        let mut t = OutstandingTracker::new();
        t.arrive(Picos::ZERO, Picos::from_ns(50));
        assert_eq!(t.outstanding_at(Picos::from_ns(10)), 1);
        assert_eq!(t.outstanding_at(Picos::from_ns(50)), 0);
        assert_eq!(t.outstanding_at(Picos::from_ns(10)), 1); // unchanged
    }

    #[test]
    fn boundary_completion_counts_as_done() {
        let mut t = OutstandingTracker::new();
        t.arrive(Picos::ZERO, Picos::from_ns(50));
        assert_eq!(t.arrive(Picos::from_ns(50), Picos::from_ns(100)), 0);
    }
}
