//! The controller proper.

use crate::counters::McCounters;
use crate::outstanding::OutstandingTracker;
use crate::wbqueue::WritebackQueue;
use memscale_dram::channel::{AccessKind, AccessTimeline, DramChannel};
use memscale_dram::rank::PowerDownMode;
use memscale_dram::stats::{ChannelStats, RankStats};
use memscale_types::address::{AddressMap, Location, PhysAddr};
use memscale_types::config::SystemConfig;
use memscale_types::freq::MemFreq;
use memscale_types::ids::{ChannelId, RankId};
use memscale_types::time::Picos;

/// Default writeback-queue capacity per channel.
const WB_CAPACITY: usize = 32;

/// Row-buffer management policy.
///
/// The paper uses closed-page management (§4.1, better for multicore);
/// open-page is provided for the DESIGN.md §5 ablation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RowPolicy {
    /// Precharge after every access unless a same-row request is pending.
    #[default]
    ClosedPage,
    /// Keep the row open after every access (pay PRE+ACT on conflicts).
    OpenPage,
}

/// Outcome of servicing a demand read.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReadResult {
    /// When the fill reaches the LLC and the blocked core resumes.
    pub completion: Picos,
    /// The channel this read used.
    pub channel: ChannelId,
    /// The resolved device-level schedule.
    pub timeline: AccessTimeline,
}

/// The memory controller: address decode, FCFS dispatch, writeback queueing,
/// powerdown policy and performance counters over a set of channels.
#[derive(Debug, Clone)]
pub struct MemoryController {
    map: AddressMap,
    channels: Vec<DramChannel>,
    wb_queues: Vec<WritebackQueue>,
    bank_track: Vec<OutstandingTracker>,
    chan_track: Vec<OutstandingTracker>,
    counters: McCounters,
    banks_per_rank: usize,
    ranks_per_channel: usize,
    row_policy: RowPolicy,
}

impl MemoryController {
    /// Builds the controller for `cfg`'s topology, all channels at `freq`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn new(cfg: &SystemConfig, freq: MemFreq) -> Self {
        cfg.validate().expect("valid configuration");
        let t = &cfg.topology;
        let ranks_per_channel = t.ranks_per_channel() as usize;
        let banks_per_rank = t.banks_per_rank as usize;
        let channels: Vec<DramChannel> = (0..t.channels as usize)
            .map(|_| DramChannel::new(&cfg.timing, ranks_per_channel, banks_per_rank, freq))
            .collect();
        let total_banks = channels.len() * ranks_per_channel * banks_per_rank;
        MemoryController {
            map: AddressMap::new(t.clone()),
            wb_queues: (0..channels.len())
                .map(|_| WritebackQueue::new(WB_CAPACITY))
                .collect(),
            bank_track: vec![OutstandingTracker::new(); total_banks],
            chan_track: vec![OutstandingTracker::new(); channels.len()],
            channels,
            counters: McCounters::new(),
            banks_per_rank,
            ranks_per_channel,
            row_policy: RowPolicy::ClosedPage,
        }
    }

    /// Selects the row-buffer management policy (default closed-page).
    pub fn set_row_policy(&mut self, policy: RowPolicy) {
        self.row_policy = policy;
    }

    /// The row-buffer management policy in effect.
    #[inline]
    pub fn row_policy(&self) -> RowPolicy {
        self.row_policy
    }

    /// Current operating frequency (all channels scale in tandem).
    #[inline]
    pub fn frequency(&self) -> MemFreq {
        self.channels[0].frequency()
    }

    /// The controller's performance counters.
    #[inline]
    pub fn counters(&self) -> &McCounters {
        &self.counters
    }

    /// The address map in use.
    #[inline]
    pub fn address_map(&self) -> &AddressMap {
        &self.map
    }

    /// Number of channels.
    #[inline]
    pub fn channel_count(&self) -> usize {
        self.channels.len()
    }

    /// Pending writebacks on `channel`.
    #[inline]
    pub fn pending_writebacks(&self, channel: ChannelId) -> usize {
        self.wb_queues[channel.index()].len()
    }

    fn bank_index(&self, loc: &Location) -> usize {
        (loc.channel.index() * self.ranks_per_channel + loc.rank.index()) * self.banks_per_rank
            + loc.bank.index()
    }

    /// Services a demand read (LLC miss) arriving at `now`.
    pub fn read(&mut self, addr: PhysAddr, now: Picos) -> ReadResult {
        let loc = self.map.decode(addr);
        let ch = loc.channel.index();

        // Opportunistic writeback drain while the bus is idle.
        while !self.wb_queues[ch].is_empty() && self.channels[ch].bus_free_at() <= now {
            self.dispatch_writeback(ch, now);
        }

        // Transactions-outstanding accumulators sample at arrival.
        let bank_idx = self.bank_index(&loc);
        let bank_ahead = self.bank_track[bank_idx].outstanding_at(now);
        let chan_ahead = self.chan_track[ch].outstanding_at(now);
        self.counters.bto += bank_ahead;
        self.counters.btc += 1;
        self.counters.cto += chan_ahead;
        self.counters.ctc += 1;

        // The request spends the controller pipeline (five MC cycles, §3.3)
        // before its first device command can issue.
        let device_now = now + self.channels[ch].timing().mc_proc;
        let keep_open = self.row_policy == RowPolicy::OpenPage;
        let timeline = self.channels[ch].service(
            loc.rank,
            loc.bank,
            loc.row,
            AccessKind::Read,
            device_now,
            keep_open,
        );
        self.bank_track[bank_idx].arrive(now, timeline.bank_free_at);
        self.chan_track[ch].arrive(now, timeline.data_end);

        self.record_outcome(&timeline);
        self.counters.reads += 1;
        self.counters.read_latency_sum += timeline.data_end - now;

        ReadResult {
            completion: timeline.data_end,
            channel: loc.channel,
            timeline,
        }
    }

    /// Accepts a writeback at `now`. It is queued and drained either when
    /// its channel queue reaches half capacity or opportunistically when the
    /// channel's bus idles at a read arrival.
    pub fn writeback(&mut self, addr: PhysAddr, now: Picos) {
        let ch = self.map.decode(addr).channel.index();
        self.wb_queues[ch].push(addr, now);
        while self.wb_queues[ch].over_half() {
            self.dispatch_writeback(ch, now);
        }
    }

    /// Forces all queued writebacks out (used before frequency re-locks and
    /// at end of simulation).
    pub fn drain_all_writebacks(&mut self, now: Picos) {
        for ch in 0..self.channels.len() {
            while !self.wb_queues[ch].is_empty() {
                self.dispatch_writeback(ch, now);
            }
        }
    }

    fn dispatch_writeback(&mut self, ch: usize, now: Picos) {
        let Some(wb) = self.wb_queues[ch].pop() else {
            return;
        };
        let loc = self.map.decode(wb.addr);
        debug_assert_eq!(loc.channel.index(), ch);
        let dispatch_at = now.max(wb.arrived) + self.channels[ch].timing().mc_proc;
        let keep_open = self.row_policy == RowPolicy::OpenPage;
        let timeline = self.channels[ch].service(
            loc.rank,
            loc.bank,
            loc.row,
            AccessKind::Write,
            dispatch_at,
            keep_open,
        );
        // Writebacks occupy banks and the bus: register them so later reads
        // see them ahead in the queues, but only reads sample BTO/CTO.
        let bank_idx = self.bank_index(&loc);
        self.bank_track[bank_idx].arrive(dispatch_at, timeline.bank_free_at);
        self.chan_track[ch].arrive(dispatch_at, timeline.data_end);
        self.record_outcome(&timeline);
        self.counters.writes += 1;
    }

    fn record_outcome(&mut self, timeline: &AccessTimeline) {
        use memscale_dram::channel::RowOutcome;
        match timeline.outcome {
            RowOutcome::Hit => self.counters.rbhc += 1,
            RowOutcome::OpenMiss => self.counters.obmc += 1,
            RowOutcome::ClosedMiss => self.counters.cbmc += 1,
        }
        if timeline.act_at.is_some() {
            self.counters.pocc += 1;
        }
        if timeline.deep_pd_exit {
            self.counters.edpc += 1;
        } else if timeline.pd_exit {
            self.counters.epdc += 1;
        }
    }

    /// Re-locks every channel to `freq` at `now`, draining writebacks first;
    /// returns when the subsystem is operational again.
    pub fn set_frequency(&mut self, freq: MemFreq, now: Picos) -> Picos {
        if self.channel_frequencies().iter().all(|&f| f == freq) {
            return now;
        }
        self.drain_all_writebacks(now);
        let mut ready = now;
        for channel in &mut self.channels {
            ready = ready.max(channel.set_frequency(freq, now));
        }
        ready
    }

    /// Re-locks a single channel (the paper's §6 per-channel future-work
    /// extension). Only that channel's queued writebacks are flushed.
    ///
    /// # Panics
    ///
    /// Panics if `channel` is out of range.
    pub fn set_channel_frequency(
        &mut self,
        channel: ChannelId,
        freq: MemFreq,
        now: Picos,
    ) -> Picos {
        let ch = channel.index();
        if self.channels[ch].frequency() == freq {
            return now;
        }
        while !self.wb_queues[ch].is_empty() {
            self.dispatch_writeback(ch, now);
        }
        self.channels[ch].set_frequency(freq, now)
    }

    /// The operating point of every channel.
    pub fn channel_frequencies(&self) -> Vec<MemFreq> {
        self.channels
            .iter()
            .map(memscale_dram::DramChannel::frequency)
            .collect()
    }

    /// Per-channel data-bus utilization over the window since `snapshots`
    /// (one earlier [`ChannelStats`] per channel).
    ///
    /// # Panics
    ///
    /// Panics if `snapshots` length differs from the channel count.
    pub fn channel_utilizations(&self, snapshots: &[ChannelStats], window: Picos) -> Vec<f64> {
        assert_eq!(snapshots.len(), self.channels.len());
        self.channels
            .iter()
            .zip(snapshots)
            .map(|(c, s)| c.stats().delta(s).utilization(window))
            .collect()
    }

    /// Enables or disables aggressive idle powerdown on every rank.
    ///
    /// # Panics
    ///
    /// Panics if `mode` does not exist on the configured memory generation
    /// (deep power-down is LPDDR-only).
    pub fn set_auto_power_down(&mut self, mode: Option<PowerDownMode>) {
        if let Some(m) = mode {
            let generation = self.channels[0].generation();
            assert!(
                generation.supports_power_down(m),
                "{}: power-down mode {m:?} is not available on this generation",
                generation.generation()
            );
        }
        for channel in &mut self.channels {
            channel.set_auto_power_down(mode);
        }
    }

    /// Flushes time-based accounting up to `now` on every channel; call
    /// before sampling statistics.
    pub fn sync(&mut self, now: Picos) {
        for channel in &mut self.channels {
            channel.sync(now);
        }
    }

    /// Fault-injection hook: arms a one-shot relock overrun on every
    /// channel — the next frequency switch pays `extra` on top of its
    /// budgeted 512-cycle + settle penalty.
    pub fn arm_relock_overrun(&mut self, extra: Picos) {
        for channel in &mut self.channels {
            channel.arm_relock_overrun(extra);
        }
    }

    /// Fault-injection hook: arms a one-shot powerdown-exit latency spike
    /// (tXP/tXPDLL/tXDPD overrun) on every rank.
    pub fn arm_pd_exit_spike(&mut self, extra: Picos) {
        for channel in &mut self.channels {
            channel.arm_pd_exit_spike(extra);
        }
    }

    /// Fault-injection hook: slips the next scheduled REF later by `by` on
    /// every caught-up rank. Returns how many ranks the fault landed on (a
    /// rank already in refresh arrears refuses the slip, keeping the
    /// postponement window conformant).
    pub fn delay_refresh(&mut self, by: Picos, now: Picos) -> u64 {
        self.channels
            .iter_mut()
            .map(|c| c.delay_refresh(by, now))
            .sum()
    }

    /// One full refresh interval at the current timing (the magnitude of a
    /// dropped-REF fault).
    pub fn refresh_interval(&self) -> Picos {
        self.channels[0].timing().t_refi
    }

    /// Applied fault-injection tallies across the device hierarchy:
    /// `(relock overruns, spiked powerdown exits)`.
    pub fn fault_stats(&self) -> (u64, u64) {
        let overruns = self.channels.iter().map(DramChannel::relock_overruns).sum();
        let spikes = self.channels.iter().map(DramChannel::spiked_pd_exits).sum();
        (overruns, spikes)
    }

    /// Samples the paper's §3.1 power-model counters (PTC/PTCKEL/ATCKEL/
    /// POCC) over the window since `earlier_ranks`/`earlier_pocc` snapshots.
    pub fn power_counters(
        &self,
        earlier_ranks: &[RankStats],
        earlier_pocc: u64,
        window: Picos,
    ) -> crate::power_counters::PowerCounters {
        let deltas: Vec<RankStats> = self
            .rank_stats()
            .iter()
            .zip(earlier_ranks)
            .map(|(now, then)| now.delta(then))
            .collect();
        crate::power_counters::PowerCounters::sample(
            &deltas,
            self.counters.pocc - earlier_pocc,
            window,
        )
    }

    /// Snapshot of every rank's cumulative statistics (channel-major order).
    pub fn rank_stats(&self) -> Vec<RankStats> {
        self.channels
            .iter()
            .flat_map(|c| (0..c.rank_count()).map(move |r| c.rank_stats(RankId(r)).clone()))
            .collect()
    }

    /// Snapshot of every channel's cumulative statistics.
    pub fn channel_stats(&self) -> Vec<ChannelStats> {
        self.channels.iter().map(|c| c.stats().clone()).collect()
    }

    /// Starts or stops DRAM command-event recording on every channel (for
    /// the `memscale-audit` conformance checker).
    #[cfg(feature = "audit")]
    pub fn set_event_recording(&mut self, on: bool) {
        for channel in &mut self.channels {
            channel.set_event_recording(on);
        }
    }

    /// Drains every channel's recorded command events, re-tagged with their
    /// channel ids. Drain once, at end of simulation (see
    /// [`DramChannel::drain_events`]).
    #[cfg(feature = "audit")]
    pub fn drain_command_events(&mut self) -> Vec<memscale_types::events::CmdEvent> {
        let mut events = Vec::new();
        for (i, channel) in self.channels.iter_mut().enumerate() {
            for mut e in channel.drain_events() {
                e.channel = ChannelId(i);
                events.push(e);
            }
        }
        events
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mc() -> MemoryController {
        MemoryController::new(&SystemConfig::default(), MemFreq::F800)
    }

    #[test]
    fn single_read_latency_is_closed_page() {
        let mut m = mc();
        let r = m.read(PhysAddr::from_cache_line(0), Picos::ZERO);
        // MC pipeline (3.125 ns) + tRCD + tCL + burst.
        assert_eq!(r.completion, Picos::from_ps(38_125));
        assert_eq!(m.counters().reads, 1);
        assert_eq!(m.counters().cbmc, 1);
        assert_eq!(m.counters().bto, 0);
        assert_eq!(m.counters().cto, 0);
    }

    #[test]
    fn reads_to_different_channels_do_not_queue() {
        let mut m = mc();
        let a = m.read(PhysAddr::from_cache_line(0), Picos::ZERO);
        let b = m.read(PhysAddr::from_cache_line(1), Picos::ZERO);
        assert_eq!(a.completion, b.completion);
        assert_eq!(m.counters().cto, 0);
    }

    #[test]
    fn same_bank_reads_count_outstanding() {
        let mut m = mc();
        // Lines 0 and 128 hit channel 0; 128/4 % 8 = 0 -> same bank 0.
        let a = m.read(PhysAddr::from_cache_line(0), Picos::ZERO);
        let b = m.read(PhysAddr::from_cache_line(128), Picos::ZERO);
        assert!(b.completion > a.completion);
        assert_eq!(m.counters().bto, 1);
        assert_eq!(m.counters().btc, 2);
    }

    #[test]
    fn same_channel_different_bank_counts_channel_queue() {
        let mut m = mc();
        // Lines 0 and 4: channel 0, banks 0 and 1.
        m.read(PhysAddr::from_cache_line(0), Picos::ZERO);
        m.read(PhysAddr::from_cache_line(4), Picos::ZERO);
        assert_eq!(m.counters().bto, 0);
        assert_eq!(m.counters().cto, 1);
    }

    #[test]
    fn writebacks_wait_until_half_full() {
        let mut m = mc();
        // 15 writebacks to channel 0 stay queued (half of 32 is 16).
        for i in 0..15 {
            m.writeback(PhysAddr::from_cache_line(i * 4 * 8), Picos::ZERO);
        }
        assert_eq!(m.pending_writebacks(ChannelId(0)), 15);
        assert_eq!(m.counters().writes, 0);
        // The 16th forces a drain below half.
        m.writeback(PhysAddr::from_cache_line(15 * 32), Picos::ZERO);
        assert!(m.pending_writebacks(ChannelId(0)) < 16);
        assert!(m.counters().writes >= 1);
    }

    #[test]
    fn idle_bus_drains_writebacks_before_read() {
        let mut m = mc();
        m.writeback(PhysAddr::from_cache_line(0), Picos::ZERO);
        assert_eq!(m.pending_writebacks(ChannelId(0)), 1);
        // A read to the same channel arrives much later: bus is idle, so the
        // writeback goes first.
        let r = m.read(PhysAddr::from_cache_line(4), Picos::from_us(1));
        assert_eq!(m.pending_writebacks(ChannelId(0)), 0);
        assert_eq!(m.counters().writes, 1);
        assert!(r.completion > Picos::from_us(1));
    }

    #[test]
    fn drain_all_writebacks_empties_queues() {
        let mut m = mc();
        for i in 0..5 {
            m.writeback(PhysAddr::from_cache_line(i), Picos::ZERO);
        }
        m.drain_all_writebacks(Picos::from_ns(100));
        for ch in 0..4 {
            assert_eq!(m.pending_writebacks(ChannelId(ch)), 0);
        }
        assert_eq!(m.counters().writes, 5);
    }

    #[test]
    fn frequency_change_affects_later_reads() {
        let mut m = mc();
        let ready = m.set_frequency(MemFreq::F200, Picos::ZERO);
        assert!(ready > Picos::ZERO);
        let r = m.read(PhysAddr::from_cache_line(0), Picos::ZERO);
        // Stalled until relock finished, then 15+15 ns + 20 ns burst.
        assert!(r.completion >= ready + Picos::from_ns(50));
        assert_eq!(m.frequency(), MemFreq::F200);
        // Same-frequency change is free.
        assert_eq!(m.set_frequency(MemFreq::F200, ready), ready);
    }

    #[test]
    fn auto_powerdown_counts_exits() {
        let mut m = mc();
        m.set_auto_power_down(Some(PowerDownMode::Fast));
        // Fast-PD (section 4.2.3) enters powerdown the *instant* a rank is
        // idle, so even the first access (after the MC pipeline delay) pays
        // an exit.
        m.read(PhysAddr::from_cache_line(0), Picos::ZERO);
        // Long idle gap: rank dropped into powerdown; next read exits again.
        let r = m.read(PhysAddr::from_cache_line(0), Picos::from_us(100));
        assert!(r.timeline.pd_exit);
        assert_eq!(m.counters().epdc, 2);
        m.sync(Picos::from_us(200));
        let pd: Picos = m.rank_stats().iter().map(|s| s.fast_pd_time).sum();
        assert!(pd > Picos::from_us(90));
    }

    #[test]
    fn deep_auto_powerdown_counts_deep_exits_separately() {
        use memscale_types::config::MemGeneration;
        let cfg = SystemConfig::for_generation(MemGeneration::Lpddr3);
        let mut m = MemoryController::new(&cfg, MemFreq::F800);
        m.set_auto_power_down(Some(PowerDownMode::Deep));
        m.read(PhysAddr::from_cache_line(0), Picos::ZERO);
        let r = m.read(PhysAddr::from_cache_line(0), Picos::from_us(100));
        assert!(r.timeline.pd_exit);
        assert!(r.timeline.deep_pd_exit);
        assert_eq!(m.counters().edpc, 2);
        assert_eq!(m.counters().epdc, 0);
        m.sync(Picos::from_us(200));
        let deep: Picos = m.rank_stats().iter().map(|s| s.deep_pd_time).sum();
        assert!(deep > Picos::from_us(90));
    }

    #[test]
    #[should_panic(expected = "DDR3: power-down mode Deep")]
    fn deep_powerdown_is_rejected_on_ddr3() {
        let mut m = mc();
        m.set_auto_power_down(Some(PowerDownMode::Deep));
    }

    #[test]
    fn stats_snapshots_cover_topology() {
        let m = mc();
        assert_eq!(m.rank_stats().len(), 16);
        assert_eq!(m.channel_stats().len(), 4);
    }

    #[test]
    fn row_hit_via_reopen_window() {
        let mut m = mc();
        // Two reads to the same row, second arriving while the first is
        // still pre-CAS (same cycle): the second becomes a row hit.
        let a = m.read(PhysAddr::from_cache_line(0), Picos::ZERO);
        // Same bank row: lines within a row step of channel 0 bank 0: the
        // row advances every 4*8*4 = 128 lines... line 512 -> row 1. Use the
        // exact same line for a guaranteed same-row target.
        let b = m.read(PhysAddr::from_cache_line(0), Picos::from_ns(1));
        assert_eq!(m.counters().rbhc, 1);
        assert!(b.completion > a.completion);
    }

    #[test]
    fn mean_latency_reported() {
        let mut m = mc();
        m.read(PhysAddr::from_cache_line(0), Picos::ZERO);
        m.read(PhysAddr::from_cache_line(1), Picos::ZERO);
        let mean = m.counters().mean_read_latency().unwrap();
        assert_eq!(mean, Picos::from_ps(38_125));
    }
}
