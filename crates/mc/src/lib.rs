//! The memory controller of the MemScale system.
//!
//! Implements the §4.1 controller: FCFS read servicing with bank-level
//! parallelism, a per-channel writeback queue whose entries gain priority
//! once the queue is half full, closed-page row management (via the DRAM
//! crate's reopen windows), optional aggressive powerdown (the Fast-PD /
//! Slow-PD baselines), and — centrally for the paper — the §3.1 performance
//! counters: BTO/BTC and CTO/CTC transactions-outstanding accumulators,
//! RBHC/OBMC/CBMC row-buffer counters and the EPDC powerdown-exit counter.
//!
//! # Example
//!
//! ```
//! use memscale_mc::MemoryController;
//! use memscale_types::{config::SystemConfig, freq::MemFreq, time::Picos};
//! use memscale_types::address::PhysAddr;
//!
//! let mut mc = MemoryController::new(&SystemConfig::default(), MemFreq::F800);
//! let result = mc.read(PhysAddr::from_cache_line(7), Picos::ZERO);
//! // tMC (3.125 ns) + tRCD + tCL + burst = 38.125 ns.
//! assert_eq!(result.completion, Picos::from_ps(38_125));
//! assert_eq!(mc.counters().btc, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod counters;
pub mod outstanding;
pub mod power_counters;
pub mod wbqueue;

mod controller;

pub use controller::{MemoryController, ReadResult, RowPolicy};
pub use counters::McCounters;
pub use power_counters::PowerCounters;
