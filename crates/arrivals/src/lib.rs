//! Open-loop service workloads for the MemScale simulator
//! (`memscale-arrivals`).
//!
//! The paper's evaluation judges policies on *average* slowdown of batch
//! mixes; the datacenter scenario the ROADMAP describes judges them on
//! **tail latency under open-loop traffic**. This crate supplies that
//! evaluation axis:
//!
//! * [`spec::ArrivalSpec`] — seeded deterministic arrival processes:
//!   Poisson, bursty MMPP (on/off modulated Poisson) and piecewise-constant
//!   diurnal rate schedules loadable from a small JSON trace;
//! * [`process::ArrivalProcess`] — turns a spec + seed into the exact
//!   arrival-instant sequence (exponential inverse-transform sampling with
//!   memoryless restart at rate-segment boundaries, which is *exact* for
//!   piecewise-constant rates);
//! * [`source::RequestSource`] — fans each request out across cores as a
//!   burst of LLC-miss activity, implementing the same
//!   [`memscale_workloads::MissSource`] interface as the synthetic mix
//!   generators, so service traffic records and replays through
//!   `memscale-trace` like everything else;
//! * [`tracker::RequestTracker`] — per-request submit-to-complete latency
//!   tracking, aggregated into the p50/p95/p99 + SLO-violation statistics
//!   of [`memscale_types::requests::RequestStats`].
//!
//! Randomness is domain-separated from workload content
//! ([`memscale_workloads::rng::DOMAIN_ARRIVALS`] vs
//! [`memscale_workloads::rng::DOMAIN_WORKLOAD`]): the same user seed never
//! correlates *when* requests arrive with *what* they touch.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod process;
pub mod source;
pub mod spec;
pub mod tracker;

pub use process::ArrivalProcess;
pub use source::{RequestModel, RequestSource};
pub use spec::{ArrivalError, ArrivalSpec, RateSegment};
pub use tracker::RequestTracker;
